package cellqos

// One benchmark per reproduced table and figure. Each runs the
// corresponding experiment at reduced scale (shorter simulated time,
// fewer load points) so `go test -bench=.` finishes in minutes; use
// cmd/experiments for paper-scale regeneration. BenchmarkRunnerParallel
// additionally compares the scenario runner at one worker vs all cores
// on a reduced Fig. 7 sweep, capturing the parallel speedup.

import (
	"fmt"
	"runtime"
	"testing"

	"cellqos/internal/experiments"
)

// benchOpts shrinks experiment runs to benchmark scale.
func benchOpts() experiments.Options {
	return experiments.Options{
		Duration:      600,
		TraceDuration: 400,
		Days:          1,
		Loads:         []float64{100, 300},
		Seed:          1,
	}
}

func benchExperiment(b *testing.B, run func(experiments.Options) (*experiments.Report, error)) {
	b.Helper()
	opt := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkRunnerParallel measures the runner's wall-clock speedup: the
// same reduced Fig. 7 sweep (12 scenario points) at one worker and at
// GOMAXPROCS workers. The reports are byte-identical either way (see
// TestReportDeterministicAcrossWorkers); only the wall time differs.
func BenchmarkRunnerParallel(b *testing.B) {
	workers := []int{1, runtime.GOMAXPROCS(0)}
	for _, par := range workers {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			opt := benchOpts()
			opt.Parallel = par
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.Fig7(opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Tables) == 0 {
					b.Fatal("experiment produced no tables")
				}
			}
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7: P_CB/P_HD vs load under static
// G=10 reservation.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, experiments.Fig7) }

// BenchmarkFig8 regenerates Fig. 8: P_CB/P_HD vs load under AC3.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, experiments.Fig8) }

// BenchmarkFig9 regenerates Fig. 9: average B_r and B_u vs load.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, experiments.Fig9) }

// BenchmarkFig10 regenerates Fig. 10: T_est and B_r traces.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, experiments.Fig10) }

// BenchmarkFig11 regenerates Fig. 11: cumulative P_HD traces.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, experiments.Fig11) }

// BenchmarkFig12 regenerates Fig. 12: AC1/AC2/AC3 comparison.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, experiments.Fig12) }

// BenchmarkFig13 regenerates Fig. 13: N_calc vs load.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, experiments.Fig13) }

// BenchmarkTable2 regenerates Table 2: per-cell status, AC1 vs AC3.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, experiments.Table2) }

// BenchmarkTable3 regenerates Table 3: one-directional mobiles.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, experiments.Table3) }

// BenchmarkFig14 regenerates Fig. 14: the two-day time-varying scenario
// (one day at bench scale).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, experiments.Fig14) }

// BenchmarkBaselineExpDwell measures the §6 exponential-dwell baseline
// comparison.
func BenchmarkBaselineExpDwell(b *testing.B) { benchExperiment(b, experiments.BaselineExpDwell) }

// BenchmarkBaselineMobSpec measures the §6 mobility-specification
// baseline comparison.
func BenchmarkBaselineMobSpec(b *testing.B) { benchExperiment(b, experiments.BaselineMobSpec) }

// BenchmarkExtensionHints measures the §7 ITS/GPS path-informed
// reservation extension.
func BenchmarkExtensionHints(b *testing.B) { benchExperiment(b, experiments.ExtensionHints) }

// BenchmarkExtensionWired measures the §2/§7 wired-reservation extension.
func BenchmarkExtensionWired(b *testing.B) { benchExperiment(b, experiments.ExtensionWired) }

// BenchmarkExtensionCDMA measures the §7 CDMA soft hand-off / soft
// capacity extension.
func BenchmarkExtensionCDMA(b *testing.B) { benchExperiment(b, experiments.ExtensionCDMA) }

// BenchmarkIntegrationAdaptiveQoS measures the §1 adaptive-QoS
// integration.
func BenchmarkIntegrationAdaptiveQoS(b *testing.B) {
	benchExperiment(b, experiments.IntegrationAdaptiveQoS)
}

// BenchmarkAblationStep measures the §4.2 T_est step-policy ablation.
func BenchmarkAblationStep(b *testing.B) { benchExperiment(b, experiments.AblationStep) }

// BenchmarkAblationNQuad measures the N_quad sensitivity ablation.
func BenchmarkAblationNQuad(b *testing.B) { benchExperiment(b, experiments.AblationNQuad) }

// BenchmarkAblationDropped measures the dropped-departure recording
// ablation.
func BenchmarkAblationDropped(b *testing.B) { benchExperiment(b, experiments.AblationDropped) }
