package cellqos

// One benchmark per reproduced table and figure. Each runs the
// corresponding experiment at reduced scale (shorter simulated time,
// fewer load points) so `go test -bench=.` finishes in minutes; use
// cmd/experiments for paper-scale regeneration. BenchmarkRunnerParallel
// additionally compares the scenario runner at one worker vs all cores
// on a reduced Fig. 7 sweep, capturing the parallel speedup.

import (
	"fmt"
	"runtime"
	"testing"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/experiments"
	"cellqos/internal/mobility"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// benchOpts shrinks experiment runs to benchmark scale.
func benchOpts() experiments.Options {
	return experiments.Options{
		Duration:      600,
		TraceDuration: 400,
		Days:          1,
		Loads:         []float64{100, 300},
		Seed:          1,
	}
}

func benchExperiment(b *testing.B, run func(experiments.Options) (*experiments.Report, error)) {
	b.Helper()
	opt := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkRunnerParallel measures the runner's wall-clock speedup: the
// same reduced Fig. 7 sweep (12 scenario points) at one worker and at
// GOMAXPROCS workers. The reports are byte-identical either way (see
// TestReportDeterministicAcrossWorkers); only the wall time differs.
func BenchmarkRunnerParallel(b *testing.B) {
	workers := []int{1, runtime.GOMAXPROCS(0)}
	for _, par := range workers {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			opt := benchOpts()
			opt.Parallel = par
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.Fig7(opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Tables) == 0 {
					b.Fatal("experiment produced no tables")
				}
			}
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7: P_CB/P_HD vs load under static
// G=10 reservation.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, experiments.Fig7) }

// BenchmarkFig8 regenerates Fig. 8: P_CB/P_HD vs load under AC3.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, experiments.Fig8) }

// BenchmarkFig9 regenerates Fig. 9: average B_r and B_u vs load.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, experiments.Fig9) }

// BenchmarkFig10 regenerates Fig. 10: T_est and B_r traces.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, experiments.Fig10) }

// BenchmarkFig11 regenerates Fig. 11: cumulative P_HD traces.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, experiments.Fig11) }

// BenchmarkFig12 regenerates Fig. 12: AC1/AC2/AC3 comparison.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, experiments.Fig12) }

// BenchmarkFig13 regenerates Fig. 13: N_calc vs load.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, experiments.Fig13) }

// BenchmarkTable2 regenerates Table 2: per-cell status, AC1 vs AC3.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, experiments.Table2) }

// BenchmarkTable3 regenerates Table 3: one-directional mobiles.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, experiments.Table3) }

// BenchmarkFig14 regenerates Fig. 14: the two-day time-varying scenario
// (one day at bench scale).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, experiments.Fig14) }

// BenchmarkBaselineExpDwell measures the §6 exponential-dwell baseline
// comparison.
func BenchmarkBaselineExpDwell(b *testing.B) { benchExperiment(b, experiments.BaselineExpDwell) }

// BenchmarkBaselineMobSpec measures the §6 mobility-specification
// baseline comparison.
func BenchmarkBaselineMobSpec(b *testing.B) { benchExperiment(b, experiments.BaselineMobSpec) }

// BenchmarkExtensionHints measures the §7 ITS/GPS path-informed
// reservation extension.
func BenchmarkExtensionHints(b *testing.B) { benchExperiment(b, experiments.ExtensionHints) }

// BenchmarkExtensionWired measures the §2/§7 wired-reservation extension.
func BenchmarkExtensionWired(b *testing.B) { benchExperiment(b, experiments.ExtensionWired) }

// BenchmarkExtensionCDMA measures the §7 CDMA soft hand-off / soft
// capacity extension.
func BenchmarkExtensionCDMA(b *testing.B) { benchExperiment(b, experiments.ExtensionCDMA) }

// BenchmarkIntegrationAdaptiveQoS measures the §1 adaptive-QoS
// integration.
func BenchmarkIntegrationAdaptiveQoS(b *testing.B) {
	benchExperiment(b, experiments.IntegrationAdaptiveQoS)
}

// BenchmarkAblationStep measures the §4.2 T_est step-policy ablation.
func BenchmarkAblationStep(b *testing.B) { benchExperiment(b, experiments.AblationStep) }

// BenchmarkAblationNQuad measures the N_quad sensitivity ablation.
func BenchmarkAblationNQuad(b *testing.B) { benchExperiment(b, experiments.AblationNQuad) }

// BenchmarkAblationDropped measures the dropped-departure recording
// ablation.
func BenchmarkAblationDropped(b *testing.B) { benchExperiment(b, experiments.AblationDropped) }

// metroWorkload is the BenchmarkShardedMetro scenario: a 10,000-cell
// wrapped hex metro under AC3 with the asynchronous signaling model
// (0.25 s inter-BS latency), the workload the sharded kernel exists
// for. Results are identical at every shard count (the async model is
// shard-count invariant); only wall time changes.
func metroWorkload(shards int) cellnet.Config {
	top := topology.Hex(100, 100, true)
	cfg := cellnet.PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 0.8}
	cfg.Mobility = &mobility.HexWalk{Top: top, DiameterKm: 1, Speed: mobility.HighMobility, Persistence: 0.8}
	cfg.Schedule = traffic.Constant{
		Lambda: traffic.RateForLoad(150, cfg.Mix, cfg.MeanLifetime),
		MinKmh: mobility.HighMobility.MinKmh, MaxKmh: mobility.HighMobility.MaxKmh,
	}
	cfg.Seed = 1
	cfg.Sharding = cellnet.ShardingConfig{Shards: shards, SignalingLatency: 0.25, ExchangePeriod: 5}
	return cfg
}

// BenchmarkShardedMetro runs the metro workload at 1, 2 and 8 kernel
// shards; cmd/benchjson turns the sub-benchmark timings into the
// per-shard-count scaling ratios pinned in BENCH_sim.json. Speedup is
// bounded by the cores the machine actually has — on a single-core
// host every shard count collapses to the same serial wall time.
func BenchmarkShardedMetro(b *testing.B) {
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := cellnet.New(metroWorkload(shards))
				if err != nil {
					b.Fatal(err)
				}
				res := n.Run(30)
				if res.Total.Requested == 0 {
					b.Fatal("metro run generated no traffic")
				}
			}
		})
	}
}
