GO ?= go

.PHONY: build test vet lint lint-update-baseline race bench bench-json bench-sim golden arena arena-smoke fuzz chaos soak soak-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint is the full static-analysis gate: stock go vet, then the nine
# repo-specific analyzers (see the DESIGN.md §12 table) swept
# module-wide in one standalone process — the lint-baseline.json
# ratchet needs every finding in one place to fingerprint them (known
# findings are suppressed, new ones fail, stale entries are advisory) —
# then staticcheck and govulncheck when installed (CI pins and installs
# both; locally they are optional extras). The cellqos-vet binary also
# still speaks the vet -vettool protocol for incremental per-package
# runs: `go vet -vettool=$(abspath bin/cellqos-vet) ./...`.
lint: vet
	$(GO) build -o bin/cellqos-vet ./cmd/cellqos-vet
	bin/cellqos-vet -baseline lint-baseline.json ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipping (CI runs it)"; fi

# lint-update-baseline rewrites lint-baseline.json from the current
# findings. Use it only to deliberately accept a finding the team has
# reviewed (or to drop stale entries after fixing one); the diff of the
# baseline file is the review artifact.
lint-update-baseline:
	$(GO) build -o bin/cellqos-vet ./cmd/cellqos-vet
	bin/cellqos-vet -baseline lint-baseline.json -update-baseline ./...

# race exercises the scenario runner's worker pool and the engine
# property test under the race detector; -short skips the long sweeps
# but keeps every concurrent path. internal/cellnet alone runs ~8–9
# minutes under the race detector, so the default 10 m per-package
# timeout leaves no headroom — raise it explicitly.
race:
	$(GO) test -race -short -timeout 20m ./...
	$(GO) test -race ./internal/runner/ ./internal/sim/shard/
	$(GO) test -race -run 'TestReportDeterministicAcrossWorkers|TestReportDeterministicAcrossShards|TestMetroShardedDeterministic|TestCanceledContextAborts' ./internal/experiments/
	$(GO) test -race -run 'TestPropertyEngineRandomOps|TestPropertyEq5Incremental|TestPropertyIncrementalBr' ./internal/core/
	$(GO) test -race -run 'TestCompatShardedMatchesSingleHeap|TestAsyncShardCountInvariance|TestPartitionBoundaryRouting' ./internal/cellnet/

# bench runs each table/figure once at reduced scale, including the
# parallel-vs-serial runner comparison, across every package that
# defines benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json measures the admission fast path at full benchtime,
# refreshes the "current" side of BENCH_admission.json, and fails on a
# regression beyond 10% of the pinned baseline: the allocation profile
# always, and — since this target assumes the machine that recorded the
# baseline — mean ns/op and tail p99-ns/op as well (-check-time). CI's
# bench-smoke runs the same gate without -check-time, so cross-machine
# wall-clock noise cannot fail a build while an allocation regression
# still does. Delete the file or pass -rebaseline to cmd/benchjson to
# re-baseline deliberately.
bench-json:
	$(GO) test -bench 'BenchmarkAdmitNew|BenchmarkOutgoingReservation' -benchmem -run '^$$' -count=1 ./internal/core/ \
		| $(GO) run ./cmd/benchjson -out BENCH_admission.json -check -check-time

# bench-sim measures the sharded kernel on the 10,000-cell metro
# workload and refreshes BENCH_sim.json, including the per-shard-count
# scaling ratios. The gate asks for 3x at 8 shards, capped by the cores
# the machine actually has (cmd/benchjson adjusts on small hosts).
bench-sim:
	$(GO) test -bench 'BenchmarkShardedMetro' -benchtime=3x -benchmem -run '^$$' -count=1 . \
		| $(GO) run ./cmd/benchjson -out BENCH_sim.json -check -min-scaling 3

# golden checks the pinned reduced-scale corpus for all experiments;
# regenerate deliberately with `go test ./internal/golden/ -update`.
golden:
	$(GO) test ./internal/golden/

# arena regenerates the admission-policy arena report and checks it
# against the pinned results/arena/arena.txt; regenerate deliberately
# with `go test ./internal/arena/ -update`.
arena:
	$(GO) test -run 'TestArenaGolden' -count=1 ./internal/arena/

# arena-smoke is the CI-sized arena: the full contender roster on a
# reduced grid under the race detector, with the runtime invariant
# auditor attached (internal/arena.TestArenaSmoke).
arena-smoke:
	$(GO) test -race -count=1 -run 'TestArenaSmoke|TestArenaUnknownPolicy|TestRosterRegistered' -v ./internal/arena/

# fuzz gives every fuzz target a short smoke run (the CI budget; run
# targets individually with a longer -fuzztime for real hunting).
fuzz:
	$(GO) test -fuzz=FuzzPersistRoundTrip -fuzztime=30s ./internal/predict/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/signaling/
	$(GO) test -fuzz=FuzzIncrementalBr -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzSnapshotDecode -fuzztime=30s ./internal/service/

# soak-smoke is the CI-sized service soak: one full pass up the
# internal/faults chaos ladder of crash-and-restart checkpoint cycles,
# under the race detector, with exact intake conservation plus
# goroutine-leak and heap-growth gates (internal/service/soak_test.go).
soak-smoke:
	$(GO) test -race -count=1 -run 'TestSoak' -v ./internal/service/

# soak keeps climbing the ladder until the wall budget is spent:
# `make soak` runs 60 s, `make soak CELLQOS_SOAK=10m` runs ten minutes.
CELLQOS_SOAK ?= 60s
soak:
	CELLQOS_SOAK=$(CELLQOS_SOAK) $(GO) test -race -count=1 -run 'TestSoak' -v -timeout 0 ./internal/service/

# chaos drives the distributed signaling plane through scripted
# partitions, crashes and lossy links under the race detector; -count=2
# also proves the suite leaves no state behind between runs.
chaos:
	$(GO) test -race -count=2 ./internal/chaos/ ./internal/signaling/ ./internal/faults/

# verify is the tier-1 gate: build + lint + race. Performance is tracked
# separately — `make bench-json` refreshes BENCH_admission.json, and CI's
# bench-smoke job keeps the harness compiling.
verify: build lint race
