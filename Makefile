GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the scenario runner's worker pool under the race
# detector; -short skips the long sweeps but keeps every concurrent path.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/runner/
	$(GO) test -race -run 'TestReportDeterministicAcrossWorkers|TestCanceledContextAborts' ./internal/experiments/

# bench runs each table/figure once at reduced scale, including the
# parallel-vs-serial runner comparison.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

verify: vet race
