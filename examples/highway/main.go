// Highway: the scenario the paper's simulations model — cars on a
// straight road crossing a string of 1-km cells. All traffic flows one
// way (commuter direction), the offered load follows the rush-hour
// schedule of Fig. 14(a), and blocked callers redial per §5.3.
//
// The example contrasts the mid-80s static guard-channel scheme with the
// paper's AC3 during the morning peak: static reservation either wastes
// bandwidth off-peak or under-protects at the peak, while AC3 adapts.
package main

import (
	"fmt"
	"log"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

func run(policy core.Policy, reserve int) *cellnet.Result {
	top := topology.Line(10) // an open highway segment; cars exit at the end
	cfg := cellnet.PaperBase()
	cfg.Topology = top
	cfg.Policy = policy
	cfg.StaticReserve = reserve
	cfg.Estimation = predict.DailyConfig() // time-of-day windowed estimation
	cfg.Mix = traffic.Mix{VoiceRatio: 0.8} // mostly voice, some video calls
	cfg.Mobility = &mobility.Linear{
		Top: top, DiameterKm: 1,
		Speed:     mobility.HighMobility,
		Direction: mobility.ForwardOnly, // commuter flow: everyone rides 1→10
	}
	cfg.Schedule = traffic.PaperDay(cfg.Mix, cfg.MeanLifetime)
	cfg.Retry = traffic.PaperRetry
	cfg.Seed = 7

	net, err := cellnet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return net.Run(12 * traffic.SecondsPerHour) // midnight through the morning peak
}

func main() {
	fmt.Println("highway: 10 cells, one-way commuter flow, rush-hour schedule")
	fmt.Println()

	results := map[string]*cellnet.Result{
		"static G=10": run(core.Static, 10),
		"AC3":         run(core.AC3, 0),
	}

	for _, name := range []string{"static G=10", "AC3"} {
		res := results[name]
		fmt.Printf("--- %s ---\n", name)
		tb := stats.NewTable("hour", "PCB", "PHD")
		for h := 6; h < len(res.Hourly) && h < 12; h++ { // commute window
			hc := res.Hourly[h]
			tb.AddRowStrings(fmt.Sprintf("%02d:00", h),
				stats.FormatProb(hc.PCB()), stats.FormatProb(hc.PHD()))
		}
		fmt.Print(tb.String())
		fmt.Printf("whole morning: PCB=%s PHD=%s (target 0.01), avg reserved %.1f BUs\n\n",
			stats.FormatProb(res.PCB), stats.FormatProb(res.PHD), res.AvgBr)
	}

	fmt.Println("AC3 keeps P_HD under the 0.01 target through the 9:00 peak by")
	fmt.Println("reserving according to the estimated inflow from upstream cells;")
	fmt.Println("the fixed guard band cannot adapt to the time-varying demand.")
}
