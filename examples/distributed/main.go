// Distributed: run the reservation protocol across base stations that
// communicate over real TCP connections (loopback), in both of the
// paper's Fig. 1 deployments — BS full mesh and MSC star — and show that
// the two produce identical admission decisions while the star moves
// twice the signaling frames.
package main

import (
	"fmt"
	"log"
	"net"

	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/signaling"
	"cellqos/internal/topology"
)

// buildNodes creates a 5-cell ring of BS nodes with identical QoS state:
// each holds a 60-BU load and history saying mobiles dwell ~25 s.
func buildNodes(top *topology.Topology) []*signaling.BSNode {
	nodes := make([]*signaling.BSNode, top.NumCells())
	var id core.ConnID
	for i := range nodes {
		n := signaling.NewBSNode(topology.CellID(i), top, core.Config{
			Capacity:   100,
			Policy:     core.AC3,
			PHDTarget:  0.01,
			TStart:     5,
			Estimation: predict.StationaryConfig(),
		})
		for k := 0; k < 30; k++ {
			n.Engine().RecordDeparture(predict.Quadruplet{
				Event: float64(k), Prev: topology.Self,
				Next: topology.LocalIndex(1 + k%2), Sojourn: 20 + float64(k%10),
			})
		}
		for n.Engine().UsedBandwidth() < 60 {
			id++
			n.Engine().AddConnection(id, core.ConnSpec{Min: 4, Prev: topology.Self}, 95)
		}
		nodes[i] = n
	}
	return nodes
}

// frames sums sent frames across peers.
func frames(peers []*signaling.Peer) uint64 {
	var total uint64
	for _, p := range peers {
		total += p.Stats().Sent.Load()
	}
	return total
}

func main() {
	top := topology.Ring(5)

	// --- full mesh over loopback TCP ---
	mesh := buildNodes(top)
	var meshPeers []*signaling.Peer
	for a := 0; a < top.NumCells(); a++ {
		for _, nb := range top.Neighbors(topology.CellID(a)) {
			if int(nb) <= a {
				continue
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			done := make(chan struct{})
			go func(a int) {
				defer close(done)
				conn, err := ln.Accept()
				if err != nil {
					log.Fatal(err)
				}
				remote, err := signaling.AcceptHello(conn)
				if err != nil {
					log.Fatal(err)
				}
				meshPeers = append(meshPeers, mesh[a].Attach(remote, conn))
			}(a)
			conn, err := signaling.DialTCP(ln.Addr().String(), signaling.NodeID(nb))
			if err != nil {
				log.Fatal(err)
			}
			meshPeers = append(meshPeers, mesh[nb].Attach(signaling.NodeID(a), conn))
			<-done
			ln.Close()
		}
	}

	// --- star through an MSC, in-memory pipes for brevity ---
	star := buildNodes(top)
	msc := signaling.NewMSC()
	signaling.ConnectStar(msc, star)

	fmt.Println("distributed AC3 admission decisions, mesh vs star:")
	fmt.Println()
	agree := true
	for i := 0; i < top.NumCells(); i++ {
		dm := mesh[i].Engine().AdmitNew(100, 4, mesh[i].Peers())
		ds := star[i].Engine().AdmitNew(100, 4, star[i].Peers())
		fmt.Printf("cell %d: mesh admitted=%v (Ncalc %d)   star admitted=%v (Ncalc %d)\n",
			i+1, dm.Admitted, dm.BrCalcs, ds.Admitted, ds.BrCalcs)
		if dm.Admitted != ds.Admitted || dm.BrCalcs != ds.BrCalcs {
			agree = false
		}
	}
	fmt.Println()
	if agree {
		fmt.Println("decisions identical across deployments (same engine, different wires)")
	} else {
		fmt.Println("WARNING: deployments disagreed")
	}

	fmt.Printf("mesh signaling frames sent: %d\n", frames(meshPeers))
	fmt.Println("(the star deployment relays every frame through the MSC, doubling link traversals)")

	for _, n := range append(mesh, star...) {
		n.Close()
	}
	msc.Close()
}
