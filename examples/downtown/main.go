// Downtown: the paper's future-work setting — a two-dimensional
// hexagonal cellular layout (Fig. 2(b)) over a city center. Mobiles walk
// the hex grid with direction persistence (drivers mostly continue
// straight, sometimes turn at intersections) and a fraction never move
// (pedestrians indoors).
//
// The example compares AC1, AC2 and AC3 at heavy load, reproducing the
// paper's §5 conclusions on a 2-D topology: all three block comparably,
// AC1 lets P_HD escape the target, and AC3 matches AC2's protection at a
// fraction of its signaling cost (N_calc).
package main

import (
	"fmt"
	"log"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

func main() {
	top := topology.Hex(5, 5, true) // 25 cells, torus to avoid border artifacts

	fmt.Println("downtown: 5x5 hexagonal grid, mixed vehicular/stationary mobiles")
	fmt.Println("offered load 250 BUs/cell (2.5x over-loaded), Rvo = 0.8")
	fmt.Println()

	tb := stats.NewTable("policy", "PCB", "PHD", "Ncalc", "avgBr")
	for _, policy := range []core.Policy{core.AC1, core.AC2, core.AC3} {
		cfg := cellnet.PaperBase()
		cfg.Topology = top
		cfg.Policy = policy
		cfg.Mix = traffic.Mix{VoiceRatio: 0.8}
		cfg.Mobility = &mobility.HexWalk{
			Top: top, DiameterKm: 1,
			Speed:          mobility.SpeedRange{MinKmh: 30, MaxKmh: 70}, // city speeds
			Persistence:    0.7,                                         // mostly straight, turns at junctions
			StationaryProb: 0.2,                                         // pedestrians who stay put
		}
		cfg.Schedule = traffic.Constant{
			Lambda: traffic.RateForLoad(250, cfg.Mix, cfg.MeanLifetime),
			MinKmh: 30, MaxKmh: 70,
		}
		cfg.Seed = 11

		net, err := cellnet.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := net.Run(8000)
		tb.AddRowStrings(policy.String(),
			stats.FormatProb(res.PCB), stats.FormatProb(res.PHD),
			fmt.Sprintf("%.2f", res.NCalc), fmt.Sprintf("%.1f", res.AvgBr))
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("On a degree-6 topology AC2 pays ~7 B_r calculations per admission")
	fmt.Println("test; AC3 recomputes only for suspect neighbors, staying near 1-2")
	fmt.Println("while still holding P_HD at the 0.01 target.")
}
