// Quickstart: build the paper's default scenario — a 10-cell ring with
// AC3 predictive/adaptive reservation — run it for an hour of simulated
// time, and print the connection-level QoS results.
package main

import (
	"fmt"
	"log"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

func main() {
	// The paper's §5.1 setting: 10 cells of 1 km on a ring, 100 BUs per
	// cell, voice-only traffic, high user mobility (80–120 km/h).
	top := topology.Ring(10)
	cfg := cellnet.PaperBase() // capacity 100, P_HD target 0.01, T_start 1 s
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 1.0}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}

	// Offered load of 150 BUs per cell — 1.5× over-loaded (Eq. 7).
	load := 150.0
	cfg.Schedule = traffic.Constant{
		Lambda: traffic.RateForLoad(load, cfg.Mix, cfg.MeanLifetime),
		MinKmh: 80, MaxKmh: 120,
	}
	cfg.Seed = 42

	net, err := cellnet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := net.Run(3600) // one simulated hour

	fmt.Printf("offered load %.0f BUs/cell for %.0f s\n", load, res.Duration)
	fmt.Printf("new-connection blocking  P_CB = %s\n", stats.FormatProb(res.PCB))
	fmt.Printf("hand-off dropping        P_HD = %s (target %.2f)\n",
		stats.FormatProb(res.PHD), cfg.PHDTarget)
	fmt.Printf("hand-offs %d, dropped %d; avg reserved %.1f BUs, avg used %.1f BUs\n",
		res.Total.HandOffs, res.Total.Dropped, res.AvgBr, res.AvgBu)

	if res.PHD <= cfg.PHDTarget {
		fmt.Println("→ the adaptive reservation met the hand-off QoS target")
	} else {
		fmt.Println("→ target exceeded (short run / cold start); try a longer run")
	}
}
