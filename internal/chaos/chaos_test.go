// Package chaos proves the distributed signaling plane degrades
// predictably and reconverges after healing. Each test builds a control
// deployment (no faults) and a chaos deployment (internal/faults links)
// with byte-identical engine state, scripts partitions or crashes,
// asserts exact degraded-mode counters during the outage, heals, and
// requires the chaos plane to reconverge to the control plane's B_r.
// Every test also checks the audit invariants on the final ledgers and
// that no goroutines leak past teardown. CI runs this package under
// -race with -count=2 (the chaos Makefile target).
package chaos

import (
	"fmt"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"cellqos/internal/audit"
	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/faults"
	"cellqos/internal/predict"
	"cellqos/internal/signaling"
	"cellqos/internal/testleak"
	"cellqos/internal/topology"
)

// engineConfig is the shared per-node engine shape (AC1, paper
// constants, default decay fallback).
func engineConfig() core.Config {
	return core.Config{
		Capacity:   100,
		Policy:     core.AC1,
		PHDTarget:  0.01,
		TStart:     1,
		Estimation: predict.StationaryConfig(),
	}
}

// seedRing gives every ring node one connection and a departure history
// toward its local-1 neighbor with sojourn 10.5 s, so at now=10 with
// T_est=1 each Eq. 5 term is exactly the sending cell's connection
// bandwidth — deterministic, distinct per node (bw = 1+id).
func seedRing(nodes []*signaling.BSNode) {
	for i, n := range nodes {
		n.Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
		n.Engine().AddConnection(core.ConnID(i+1), core.ConnSpec{Min: 1 + i, Prev: topology.Self}, 0)
	}
}

func ringNodes(top *topology.Topology) []*signaling.BSNode {
	nodes := make([]*signaling.BSNode, top.NumCells())
	for i := range nodes {
		nodes[i] = signaling.NewBSNode(topology.CellID(i), top, engineConfig())
	}
	return nodes
}

func closeAll(nodes []*signaling.BSNode) {
	for _, n := range nodes {
		n.Close()
	}
}

// computeAll recomputes B_r on every node sequentially.
func computeAll(nodes []*signaling.BSNode, now float64) []float64 {
	out := make([]float64, len(nodes))
	for i, n := range nodes {
		out[i] = n.Engine().ComputeTargetReservation(now, n.Peers())
	}
	return out
}

// controlBr runs the never-faulted deployment and returns its B_r
// vector at now=10.
func controlBr(t *testing.T, top *topology.Topology) []float64 {
	t.Helper()
	nodes := ringNodes(top)
	seedRing(nodes)
	signaling.ConnectMesh(nodes)
	defer closeAll(nodes)
	br := computeAll(nodes, 10)
	sum := 0.0
	for _, v := range br {
		sum += v
	}
	if sum == 0 {
		t.Fatal("control deployment produced an all-zero B_r vector — seeding broken")
	}
	return br
}

// connectMeshFaulty wires a mesh like signaling.ConnectMesh but routes
// every pipe end through a faults.Link; the returned map is keyed
// "a->b" for the link carrying a's writes toward b.
func connectMeshFaulty(nodes []*signaling.BSNode, top *topology.Topology,
	cfg func(a, b topology.CellID) faults.Config) map[string]*faults.Link {
	links := make(map[string]*faults.Link)
	for _, a := range nodes {
		for _, nbID := range top.Neighbors(a.ID()) {
			if nbID <= a.ID() {
				continue
			}
			b := nodes[nbID]
			la, lb := faults.Pipe(cfg(a.ID(), b.ID()), cfg(b.ID(), a.ID()))
			a.Attach(signaling.NodeID(b.ID()), la)
			b.Attach(signaling.NodeID(a.ID()), lb)
			links[fmt.Sprintf("%d->%d", a.ID(), b.ID())] = la
			links[fmt.Sprintf("%d->%d", b.ID(), a.ID())] = lb
		}
	}
	return links
}

// checkLedgers runs the audit invariants on every node's final ledger.
func checkLedgers(t *testing.T, nodes []*signaling.BSNode, now float64) {
	t.Helper()
	ck := &audit.Checker{}
	for _, n := range nodes {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("audit violation at node %d: %v", n.ID(), r)
				}
			}()
			ck.Engine(fmt.Sprintf("cell %d", n.ID()), now, n.Engine().Ledger())
		}()
	}
}

func eq(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

// TestChaosMeshPartitionHealReconverges scripts a one-way partition on
// one mesh edge, asserts exact RemoteErrors/Timeouts during the outage
// and that the decay fallback holds B_r at its last-known value, then
// heals and requires exact reconvergence with the never-faulted run.
func TestChaosMeshPartitionHealReconverges(t *testing.T) {
	top := topology.Ring(5)
	want := controlBr(t, top)
	defer testleak.Check(t)()

	nodes := ringNodes(top)
	seedRing(nodes)
	links := connectMeshFaulty(nodes, top, func(a, b topology.CellID) faults.Config {
		return faults.Config{} // partitions are scripted below
	})
	for _, n := range nodes {
		n.SetCallPolicy(signaling.CallPolicy{
			Timeout: 40 * time.Millisecond, MaxAttempts: 2,
			Backoff: time.Millisecond, JitterSeed: 7,
		})
	}

	// Healthy phase: identical to control, nothing degraded.
	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("healthy mesh B_r = %v, want %v", got, want)
	}
	for _, n := range nodes {
		if n.Engine().BrDegraded() || n.RemoteErrors() != 0 {
			t.Fatalf("node %d degraded in the healthy phase", n.ID())
		}
	}

	// Outage: black-hole everything node 0 writes on the (0,1) edge —
	// its requests to node 1 AND its responses to node 1's requests.
	links["0->1"].Partition()
	during := computeAll(nodes, 10)
	// The decay fallback substitutes the last-known Eq. 5 value, and at
	// unchanged `now` the decay factor is 1: B_r must HOLD at the
	// control value rather than collapse toward zero — that is the
	// graceful-degradation contract.
	if !eq(during, want) {
		t.Fatalf("B_r during partition = %v, want held at %v", during, want)
	}
	for _, n := range nodes {
		wantErrs, wantDegraded := uint64(0), false
		if n.ID() == 0 || n.ID() == 1 {
			wantErrs, wantDegraded = 1, true // exactly the one dark neighbor
		}
		if got := n.RemoteErrors(); got != wantErrs {
			t.Fatalf("node %d RemoteErrors = %d, want %d", n.ID(), got, wantErrs)
		}
		if got := n.Engine().BrDegraded(); got != wantDegraded {
			t.Fatalf("node %d BrDegraded = %v, want %v", n.ID(), got, wantDegraded)
		}
	}
	// Both attempts of each failed call timed out on the edge's links.
	if got := nodes[0].Link(signaling.NodeID(1)).Stats().Timeouts.Load(); got != 2 {
		t.Fatalf("node 0 link timeouts = %d, want 2", got)
	}
	if got := nodes[1].Link(signaling.NodeID(0)).Stats().Timeouts.Load(); got != 2 {
		t.Fatalf("node 1 link timeouts = %d, want 2", got)
	}

	// Heal: the next computation must reconverge exactly, degraded
	// flags must clear, and no further errors accrue.
	links["0->1"].Heal()
	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("B_r after heal = %v, want %v", got, want)
	}
	for _, n := range nodes {
		if n.Engine().BrDegraded() {
			t.Fatalf("node %d still degraded after heal", n.ID())
		}
	}
	if got := nodes[0].RemoteErrors() + nodes[1].RemoteErrors(); got != 2 {
		t.Fatalf("post-heal total RemoteErrors = %d, want 2 (no new failures)", got)
	}

	checkLedgers(t, nodes, 10)
	closeAll(nodes)
}

// TestChaosMeshBreakerOpensAndRecovers drives a partitioned edge into
// the circuit breaker: exact open/probe accounting, fail-fast behavior
// while open, and recovery to the control B_r after heal + cooldown.
func TestChaosMeshBreakerOpensAndRecovers(t *testing.T) {
	top := topology.Ring(5)
	want := controlBr(t, top)
	defer testleak.Check(t)()

	nodes := ringNodes(top)
	seedRing(nodes)
	links := connectMeshFaulty(nodes, top, func(a, b topology.CellID) faults.Config {
		return faults.Config{}
	})
	const cooldown = 80 * time.Millisecond
	for _, n := range nodes {
		n.SetCallPolicy(signaling.CallPolicy{Timeout: 30 * time.Millisecond, MaxAttempts: 1, JitterSeed: 7})
		n.SetBreakerConfig(2, cooldown)
	}
	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("healthy mesh B_r = %v, want %v", got, want)
	}

	links["0->1"].Partition()
	node0 := nodes[0]
	// Two failed computations trip the threshold-2 breaker on 0→1.
	for i := 0; i < 2; i++ {
		node0.Engine().ComputeTargetReservation(10, node0.Peers())
	}
	link := node0.Link(signaling.NodeID(1))
	if s := link.Breaker().State(); s != signaling.BreakerOpen {
		t.Fatalf("breaker state after 2 failures = %v, want open", s)
	}
	if got := link.Breaker().Opens(); got != 1 {
		t.Fatalf("breaker opens = %d, want 1", got)
	}
	if got := node0.RemoteErrors(); got != 2 {
		t.Fatalf("RemoteErrors = %d, want 2", got)
	}
	// While open, the dark neighbor is skipped without burning a
	// timeout; B_r still holds via the decay fallback.
	wall := clock.Wall{}
	start := wall.Now()
	br := node0.Engine().ComputeTargetReservation(10, node0.Peers())
	if d := wall.Since(start); d > cooldown {
		t.Fatalf("open-breaker computation took %v, want fail-fast", d)
	}
	if math.Abs(br-want[0]) > 1e-12 {
		t.Fatalf("open-breaker B_r = %v, want held at %v", br, want[0])
	}
	if got := link.Stats().Timeouts.Load(); got != 2 {
		t.Fatalf("link timeouts = %d, want 2 (fail-fast adds none)", got)
	}
	if got := node0.RemoteErrors(); got != 3 {
		t.Fatalf("RemoteErrors after fail-fast = %d, want 3", got)
	}

	// Heal, wait out the cooldown: the half-open probe closes the
	// breaker and the plane reconverges exactly.
	links["0->1"].Heal()
	time.Sleep(cooldown + 20*time.Millisecond)
	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("B_r after heal = %v, want %v", got, want)
	}
	if s := link.Breaker().State(); s != signaling.BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", s)
	}
	for _, n := range nodes {
		if n.Engine().BrDegraded() {
			t.Fatalf("node %d still degraded after recovery", n.ID())
		}
	}

	checkLedgers(t, nodes, 10)
	closeAll(nodes)
}

// TestChaosMeshCrashReconnect crashes a link outright (connection
// closed, read pumps die) and verifies the reconnect hook restores the
// mesh transparently: the very next computation re-dials and matches
// the control B_r with zero RemoteErrors.
func TestChaosMeshCrashReconnect(t *testing.T) {
	top := topology.Ring(5)
	want := controlBr(t, top)
	defer testleak.Check(t)()

	nodes := ringNodes(top)
	seedRing(nodes)
	links := connectMeshFaulty(nodes, top, func(a, b topology.CellID) faults.Config {
		return faults.Config{}
	})
	for _, n := range nodes {
		n.SetCallPolicy(signaling.CallPolicy{Timeout: 100 * time.Millisecond, MaxAttempts: 2, Backoff: 5 * time.Millisecond, JitterSeed: 3})
	}
	nodes[0].SetReconnect(func(remote signaling.NodeID) (io.ReadWriteCloser, error) {
		a, b := faults.Pipe(faults.Config{}, faults.Config{})
		nodes[remote].Attach(signaling.NodeID(0), b)
		return a, nil
	})

	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("healthy mesh B_r = %v, want %v", got, want)
	}

	// Crash the (0,1) link and wait for both read pumps to notice.
	links["0->1"].Fail()
	for _, pair := range []struct {
		n  *signaling.BSNode
		to signaling.NodeID
	}{{nodes[0], 1}, {nodes[1], 0}} {
		select {
		case <-pair.n.Link(pair.to).Done():
		case <-time.After(2 * time.Second):
			t.Fatalf("node %d link never observed the crash", pair.n.ID())
		}
	}

	// Node 0's next computation re-dials mid-call and succeeds.
	br := nodes[0].Engine().ComputeTargetReservation(10, nodes[0].Peers())
	if math.Abs(br-want[0]) > 1e-12 {
		t.Fatalf("post-crash B_r = %v, want %v", br, want[0])
	}
	if got := nodes[0].Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	if got := nodes[0].RemoteErrors(); got != 0 {
		t.Fatalf("RemoteErrors = %d, want 0 (reconnect saved the call)", got)
	}
	// The replacement link serves node 1's queries of node 0 too.
	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("B_r after reconnect = %v, want %v", got, want)
	}

	checkLedgers(t, nodes, 10)
	closeAll(nodes)
}

// TestChaosStarPartitionHeal runs the Fig. 1(a) star deployment: one
// BS's uplink to the MSC goes dark one-way, queries involving it fail
// with exact counts (including MSC-relayed ones from other cells),
// and after healing the star reconverges to the control values.
func TestChaosStarPartitionHeal(t *testing.T) {
	defer testleak.Check(t)()
	top := topology.Line(3)
	mk := func() []*signaling.BSNode {
		nodes := make([]*signaling.BSNode, 3)
		for i := range nodes {
			nodes[i] = signaling.NewBSNode(topology.CellID(i), top, engineConfig())
		}
		// threeNodeLine shape: at now=10, T_est=1, node 1's B_r = 4+1.
		nodes[0].Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
		nodes[0].Engine().AddConnection(1, core.ConnSpec{Min: 4, Prev: topology.Self}, 0)
		nodes[2].Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
		nodes[2].Engine().AddConnection(2, core.ConnSpec{Min: 1, Prev: topology.Self}, 0)
		return nodes
	}

	control := mk()
	controlMSC := signaling.NewMSC()
	signaling.ConnectStar(controlMSC, control)
	want := computeAll(control, 10)
	closeAll(control)
	controlMSC.Close()
	if want[1] != 5 {
		t.Fatalf("control star B_r[1] = %v, want 5", want[1])
	}

	nodes := mk()
	msc := signaling.NewMSC()
	uplinks := make(map[topology.CellID]*faults.Link)
	for _, n := range nodes {
		a, b := faults.Pipe(faults.Config{}, faults.Config{})
		n.Attach(signaling.MSCNode, a)
		msc.Attach(signaling.NodeID(n.ID()), b)
		uplinks[n.ID()] = a
	}
	for _, n := range nodes {
		n.SetCallPolicy(signaling.CallPolicy{Timeout: 40 * time.Millisecond, MaxAttempts: 2, Backoff: time.Millisecond, JitterSeed: 5})
	}

	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("healthy star B_r = %v, want %v", got, want)
	}

	// Node 0's uplink goes dark: its requests and its responses to
	// relayed queries both vanish.
	uplinks[0].Partition()
	during := computeAll(nodes, 10)
	if !eq(during, want) { // decay fallback at age 0 holds every value
		t.Fatalf("B_r during star partition = %v, want held at %v", during, want)
	}
	wantErrs := []uint64{1, 1, 0} // node 0: its 1 neighbor unreachable; node 1: query to 0 fails; node 2 talks only to 1
	for i, n := range nodes {
		if got := n.RemoteErrors(); got != wantErrs[i] {
			t.Fatalf("node %d RemoteErrors = %d, want %d", i, got, wantErrs[i])
		}
	}

	uplinks[0].Heal()
	if got := computeAll(nodes, 10); !eq(got, want) {
		t.Fatalf("B_r after star heal = %v, want %v", got, want)
	}
	for i, n := range nodes {
		if got := n.RemoteErrors(); got != wantErrs[i] {
			t.Fatalf("node %d RemoteErrors after heal = %d, want %d (no new failures)", i, got, wantErrs[i])
		}
		if n.Engine().BrDegraded() {
			t.Fatalf("node %d still degraded after heal", i)
		}
	}

	checkLedgers(t, nodes, 10)
	closeAll(nodes)
	msc.Close()
}

// TestChaosMeshLossySoak hammers a 30%-loss mesh with concurrent
// recomputations from every node (the -race workload), then verifies
// the plane is still sane: ledgers pass the audit, every B_r is finite,
// and — because retries make per-call failure rare but not impossible —
// repeated computation eventually reconverges to the control values.
func TestChaosMeshLossySoak(t *testing.T) {
	top := topology.Ring(5)
	want := controlBr(t, top)
	defer testleak.Check(t)()

	nodes := ringNodes(top)
	seedRing(nodes)
	connectMeshFaulty(nodes, top, func(a, b topology.CellID) faults.Config {
		return faults.Config{Seed: uint64(a)*31 + uint64(b), Drop: 0.3}
	})
	for _, n := range nodes {
		n.SetCallPolicy(signaling.CallPolicy{
			Timeout: 25 * time.Millisecond, MaxAttempts: 4,
			Backoff: time.Millisecond, JitterSeed: 11,
		})
	}

	var wg sync.WaitGroup
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				br := n.Engine().ComputeTargetReservation(10, n.Peers())
				if math.IsNaN(br) || math.IsInf(br, 0) || br < 0 {
					t.Errorf("node %d produced B_r = %v under loss", n.ID(), br)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Eventual reconvergence: with 4 attempts per call the per-node
	// failure probability is a few percent; 50 rounds make a miss
	// astronomically unlikely (p < 1e-60).
	for _, n := range nodes {
		i := int(n.ID())
		ok := false
		for round := 0; round < 50; round++ {
			br := n.Engine().ComputeTargetReservation(10, n.Peers())
			if math.Abs(br-want[i]) <= 1e-12 && !n.Engine().BrDegraded() {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d never reconverged to %v through the lossy mesh", i, want[i])
		}
	}

	checkLedgers(t, nodes, 10)
	closeAll(nodes)
}
