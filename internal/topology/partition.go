package topology

import "fmt"

// Partition splits a topology's cells into contiguous cell-cluster
// shards for the sharded simulation kernel (internal/sim/shard). Every
// cell is owned by exactly one shard; ownership is a pure function of
// the topology and the shard count, so all shard counts agree on which
// shard owns a given cell and partitioning never depends on run state.
//
// Cells are assigned by contiguous global-ID ranges. For hex grids the
// range boundaries are additionally rounded to whole rows (cell ID =
// r*cols + q, so a row is a contiguous ID block): each shard then owns a
// horizontal band of the metro and only cells in the first and last row
// of a band can have cross-shard neighbors. For rings and lines the
// plain near-equal ranges already give at most two boundary cells per
// shard.
//
// A Partition is immutable and safe for concurrent use after
// construction.
type Partition struct {
	t      *Topology
	shards int
	start  []CellID // len shards+1; shard s owns [start[s], start[s+1])
}

// NewPartition divides t into shards contiguous cell ranges. shards must
// be in [1, t.NumCells()]. For wrapped hex grids with fewer rows than
// shards the row rounding is skipped and plain ID ranges are used.
func NewPartition(t *Topology, shards int) *Partition {
	n := t.NumCells()
	if shards < 1 || shards > n {
		panic(fmt.Sprintf("topology: shard count %d out of range [1,%d]", shards, n))
	}
	p := &Partition{t: t, shards: shards, start: make([]CellID, shards+1)}
	if t.kind == KindHex && t.rows >= shards {
		// Round boundaries to whole hex rows: shard s starts at row
		// ⌈s·rows/shards⌉ (balanced bands, monotone, first band starts
		// at row 0, one-past-last is row `rows`).
		for s := 0; s <= shards; s++ {
			row := (s*t.rows + shards - 1) / shards
			if row > t.rows {
				row = t.rows
			}
			p.start[s] = CellID(row * t.cols)
		}
		// ⌈s·rows/shards⌉ is strictly increasing for rows ≥ shards, so
		// every shard owns at least one row; assert rather than trust.
		for s := 0; s < shards; s++ {
			if p.start[s] >= p.start[s+1] {
				panic("topology: hex partition produced an empty shard")
			}
		}
		return p
	}
	for s := 0; s <= shards; s++ {
		p.start[s] = CellID(s * n / shards)
	}
	return p
}

// Topology returns the partitioned topology.
func (p *Partition) Topology() *Topology { return p.t }

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return p.shards }

// ShardOf returns the shard owning cell c, by binary search over the
// contiguous range starts.
func (p *Partition) ShardOf(c CellID) int {
	p.t.check(c)
	lo, hi := 0, p.shards-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.start[mid] <= c {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Range returns the half-open global-ID interval [lo, hi) owned by shard s.
func (p *Partition) Range(s int) (lo, hi CellID) {
	p.checkShard(s)
	return p.start[s], p.start[s+1]
}

// Cells returns the cells owned by shard s in ascending ID order.
func (p *Partition) Cells(s int) []CellID {
	lo, hi := p.Range(s)
	out := make([]CellID, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

// IsBoundary reports whether cell c has at least one neighbor owned by a
// different shard. Hand-offs leaving a non-boundary cell never cross
// shards, so the simulation layer only routes boundary-cell traffic
// through the inter-shard mailbox.
func (p *Partition) IsBoundary(c CellID) bool {
	s := p.ShardOf(c)
	for _, nb := range p.t.Neighbors(c) {
		if p.ShardOf(nb) != s {
			return true
		}
	}
	return false
}

// BoundaryCells returns shard s's cells with cross-shard neighbors, in
// ascending ID order.
func (p *Partition) BoundaryCells(s int) []CellID {
	lo, hi := p.Range(s)
	var out []CellID
	for c := lo; c < hi; c++ {
		if p.IsBoundary(c) {
			out = append(out, c)
		}
	}
	return out
}

func (p *Partition) checkShard(s int) {
	if s < 0 || s >= p.shards {
		panic(fmt.Sprintf("topology: shard %d out of range [0,%d)", s, p.shards))
	}
}
