package topology

import "testing"

func checkPartitionInvariants(t *testing.T, p *Partition) {
	t.Helper()
	top := p.Topology()
	n := top.NumCells()
	seen := make([]int, n)
	total := 0
	for s := 0; s < p.NumShards(); s++ {
		cells := p.Cells(s)
		if len(cells) == 0 {
			t.Fatalf("shard %d owns no cells", s)
		}
		lo, hi := p.Range(s)
		if int(hi-lo) != len(cells) {
			t.Fatalf("shard %d: Range [%d,%d) disagrees with %d cells", s, lo, hi, len(cells))
		}
		for _, c := range cells {
			seen[c]++
			total++
			if got := p.ShardOf(c); got != s {
				t.Fatalf("ShardOf(%d) = %d, want %d", c, got, s)
			}
		}
	}
	if total != n {
		t.Fatalf("partition covers %d cells, want %d", total, n)
	}
	for c, k := range seen {
		if k != 1 {
			t.Fatalf("cell %d owned by %d shards", c, k)
		}
	}
}

func TestPartitionRing(t *testing.T) {
	top := Ring(10)
	for _, shards := range []int{1, 2, 3, 8, 10} {
		p := NewPartition(top, shards)
		checkPartitionInvariants(t, p)
	}
}

func TestPartitionHexRowAligned(t *testing.T) {
	top := Hex(12, 7, true)
	for _, shards := range []int{1, 2, 3, 4, 8, 12} {
		p := NewPartition(top, shards)
		checkPartitionInvariants(t, p)
		for s := 0; s < shards; s++ {
			lo, hi := p.Range(s)
			if int(lo)%7 != 0 || int(hi)%7 != 0 {
				t.Fatalf("shards=%d shard %d range [%d,%d) not row-aligned (cols=7)", shards, s, lo, hi)
			}
		}
	}
}

func TestPartitionHexMoreShardsThanRows(t *testing.T) {
	// 3 rows but 5 shards: row rounding impossible, falls back to plain
	// contiguous ID ranges, which must still cover every cell.
	p := NewPartition(Hex(3, 4, true), 5)
	checkPartitionInvariants(t, p)
}

func TestPartitionBoundaryCellsHexBand(t *testing.T) {
	top := Hex(9, 5, true)
	p := NewPartition(top, 3)
	for s := 0; s < 3; s++ {
		bc := p.BoundaryCells(s)
		// Each band is 3 rows of 5 cells; exactly the first and last
		// row of the band touch other shards (wrapped grid).
		if len(bc) != 10 {
			t.Fatalf("shard %d: %d boundary cells, want 10 (first+last row)", s, len(bc))
		}
		for _, c := range bc {
			if !p.IsBoundary(c) {
				t.Fatalf("BoundaryCells returned non-boundary cell %d", c)
			}
			found := false
			for _, nb := range top.Neighbors(c) {
				if p.ShardOf(nb) != s {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cell %d has no cross-shard neighbor", c)
			}
		}
	}
	// Middle row of each band must be interior.
	if p.IsBoundary(CellID(1*5 + 2)) {
		t.Fatal("middle-row cell reported as boundary")
	}
}

func TestPartitionSingleShardHasNoBoundary(t *testing.T) {
	p := NewPartition(Hex(6, 6, true), 1)
	for c := CellID(0); int(c) < 36; c++ {
		if p.IsBoundary(c) {
			t.Fatalf("cell %d boundary in single-shard partition", c)
		}
	}
	if bc := p.BoundaryCells(0); len(bc) != 0 {
		t.Fatalf("BoundaryCells(0) = %v, want empty", bc)
	}
}

func TestPartitionRejectsBadShardCounts(t *testing.T) {
	top := Ring(5)
	for _, shards := range []int{0, -1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPartition(ring5, %d) did not panic", shards)
				}
			}()
			NewPartition(top, shards)
		}()
	}
}
