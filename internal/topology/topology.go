// Package topology models the cell-adjacency structure of a cellular
// network: one-dimensional rings and open lines (the paper's highway
// scenarios, Fig. 2(a)) and two-dimensional hexagonal grids (Fig. 2(b)).
//
// Cells carry global IDs 0..N-1. In addition each cell has a *local*,
// cell-centric index space used by the paper's mobility estimation: from
// cell A's point of view, A itself is index 0 and its neighbors are
// numbered 1..deg(A) (Fig. 2). Hand-off event quadruplets store prev/next
// in this local space, with prev = 0 meaning "the connection was born in
// this cell".
package topology

import "fmt"

// CellID is a global cell identifier in [0, NumCells).
type CellID int

// None is the invalid cell; used e.g. for "mobile left the coverage area".
const None CellID = -1

// LocalIndex is a cell-centric neighbor index: 0 is the cell itself,
// 1..deg are its neighbors in Neighbors order.
type LocalIndex int

// Self is the local index of the cell itself (paper: prev = 0 marks a
// connection that started in the current cell).
const Self LocalIndex = 0

// Kind distinguishes the supported topology families.
type Kind int

const (
	// KindRing is a 1-D array of cells with the two border cells joined
	// (the paper's default: "we connected two border cells ... so that the
	// whole cellular system forms a ring").
	KindRing Kind = iota
	// KindLine is a 1-D open array; border cells have one neighbor
	// (used for the paper's Table 3 one-directional scenario).
	KindLine
	// KindHex is a 2-D hexagonal grid (axial coordinates), optionally
	// wrapped into a torus to avoid border effects.
	KindHex
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindRing:
		return "ring"
	case KindLine:
		return "line"
	case KindHex:
		return "hex"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Topology is an immutable cell-adjacency graph. All methods are safe for
// concurrent use after construction.
type Topology struct {
	kind       Kind
	n          int
	neighbors  [][]CellID
	local      []map[CellID]LocalIndex // inverse of neighbors, per cell
	rows, cols int                     // hex only
	wrap       bool                    // hex only
}

// Kind returns the topology family.
func (t *Topology) Kind() Kind { return t.kind }

// NumCells returns the number of cells.
func (t *Topology) NumCells() int { return t.n }

// Valid reports whether c is a cell of this topology.
func (t *Topology) Valid(c CellID) bool { return c >= 0 && int(c) < t.n }

// Neighbors returns the adjacent cells of c in canonical order. The
// returned slice must not be modified.
func (t *Topology) Neighbors(c CellID) []CellID {
	t.check(c)
	return t.neighbors[c]
}

// Degree returns the number of neighbors of c.
func (t *Topology) Degree(c CellID) int { return len(t.Neighbors(c)) }

// MaxDegree returns the largest cell degree in the topology.
func (t *Topology) MaxDegree() int {
	max := 0
	for _, ns := range t.neighbors {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// Adjacent reports whether a and b are distinct neighboring cells.
func (t *Topology) Adjacent(a, b CellID) bool {
	t.check(a)
	t.check(b)
	for _, n := range t.neighbors[a] {
		if n == b {
			return true
		}
	}
	return false
}

// WithinHops returns every cell reachable from c in at most h hops,
// excluding c itself, in breadth-first (hence deterministic) order.
func (t *Topology) WithinHops(c CellID, h int) []CellID {
	t.check(c)
	if h <= 0 {
		return nil
	}
	visited := make(map[CellID]bool, t.n)
	visited[c] = true
	frontier := []CellID{c}
	var out []CellID
	for hop := 0; hop < h && len(frontier) > 0; hop++ {
		var next []CellID
		for _, u := range frontier {
			for _, nb := range t.neighbors[u] {
				if !visited[nb] {
					visited[nb] = true
					out = append(out, nb)
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return out
}

// LocalOf returns cell other's index in center's cell-centric space:
// Self (0) when other == center, 1..deg when adjacent. ok is false when
// other is neither center nor one of its neighbors.
func (t *Topology) LocalOf(center, other CellID) (LocalIndex, bool) {
	t.check(center)
	if other == center {
		return Self, true
	}
	li, ok := t.local[center][other]
	return li, ok
}

// FromLocal resolves a local index in center's space back to a global
// cell ID. ok is false for out-of-range indices.
func (t *Topology) FromLocal(center CellID, li LocalIndex) (CellID, bool) {
	t.check(center)
	if li == Self {
		return center, true
	}
	i := int(li) - 1
	if i < 0 || i >= len(t.neighbors[center]) {
		return None, false
	}
	return t.neighbors[center][i], true
}

func (t *Topology) check(c CellID) {
	if !t.Valid(c) {
		panic(fmt.Sprintf("topology: cell %d out of range [0,%d)", c, t.n))
	}
}

// finish builds the inverse local-index maps and validates symmetry.
func finish(t *Topology) *Topology {
	t.local = make([]map[CellID]LocalIndex, t.n)
	for c := 0; c < t.n; c++ {
		m := make(map[CellID]LocalIndex, len(t.neighbors[c]))
		for i, nb := range t.neighbors[c] {
			m[nb] = LocalIndex(i + 1)
		}
		t.local[CellID(c)] = m
	}
	for c := CellID(0); int(c) < t.n; c++ {
		for _, nb := range t.neighbors[c] {
			if !t.Adjacent(nb, c) {
				panic(fmt.Sprintf("topology: asymmetric adjacency %d->%d", c, nb))
			}
		}
	}
	return t
}

// Ring builds a 1-D cellular system of n ≥ 3 cells with wrap-around, the
// paper's default simulation layout. Neighbor order is [left, right]
// (left = lower index modulo n).
func Ring(n int) *Topology {
	if n < 3 {
		panic("topology: ring needs n >= 3")
	}
	t := &Topology{kind: KindRing, n: n, neighbors: make([][]CellID, n)}
	for i := 0; i < n; i++ {
		left := CellID((i - 1 + n) % n)
		right := CellID((i + 1) % n)
		t.neighbors[i] = []CellID{left, right}
	}
	return finish(t)
}

// Line builds a 1-D open cellular system of n ≥ 2 cells; the border cells
// have a single neighbor. Neighbor order is [left, right] where present.
func Line(n int) *Topology {
	if n < 2 {
		panic("topology: line needs n >= 2")
	}
	t := &Topology{kind: KindLine, n: n, neighbors: make([][]CellID, n)}
	for i := 0; i < n; i++ {
		var ns []CellID
		if i > 0 {
			ns = append(ns, CellID(i-1))
		}
		if i < n-1 {
			ns = append(ns, CellID(i+1))
		}
		t.neighbors[i] = ns
	}
	return finish(t)
}
