package topology

import (
	"testing"
	"testing/quick"
)

func TestRingStructure(t *testing.T) {
	top := Ring(10)
	if top.Kind() != KindRing {
		t.Fatalf("Kind = %v, want ring", top.Kind())
	}
	if top.NumCells() != 10 {
		t.Fatalf("NumCells = %d, want 10", top.NumCells())
	}
	for c := CellID(0); c < 10; c++ {
		if top.Degree(c) != 2 {
			t.Fatalf("cell %d degree = %d, want 2", c, top.Degree(c))
		}
	}
	// The paper joins cells <1> and <10> (our 0 and 9).
	if !top.Adjacent(0, 9) {
		t.Fatal("ring borders not joined")
	}
	if !top.Adjacent(4, 5) {
		t.Fatal("interior adjacency missing")
	}
	if top.Adjacent(0, 5) {
		t.Fatal("non-adjacent cells reported adjacent")
	}
}

func TestRingNeighborOrder(t *testing.T) {
	top := Ring(5)
	ns := top.Neighbors(0)
	if ns[0] != 4 || ns[1] != 1 {
		t.Fatalf("Neighbors(0) = %v, want [4 1] (left, right)", ns)
	}
}

func TestRingTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) did not panic")
		}
	}()
	Ring(2)
}

func TestLineStructure(t *testing.T) {
	top := Line(10)
	if top.Degree(0) != 1 || top.Degree(9) != 1 {
		t.Fatal("line border cells must have one neighbor")
	}
	for c := CellID(1); c < 9; c++ {
		if top.Degree(c) != 2 {
			t.Fatalf("interior cell %d degree = %d, want 2", c, top.Degree(c))
		}
	}
	if top.Adjacent(0, 9) {
		t.Fatal("line borders must be disconnected (Table 3 scenario)")
	}
}

func TestLocalIndexRoundTrip(t *testing.T) {
	for _, top := range []*Topology{Ring(10), Line(7), Hex(4, 5, true), Hex(3, 3, false)} {
		for c := CellID(0); int(c) < top.NumCells(); c++ {
			// Self maps to 0 and back.
			li, ok := top.LocalOf(c, c)
			if !ok || li != Self {
				t.Fatalf("%v: LocalOf(%d,%d) = %d,%v want Self", top.Kind(), c, c, li, ok)
			}
			if back, ok := top.FromLocal(c, Self); !ok || back != c {
				t.Fatalf("%v: FromLocal(%d, Self) = %d,%v", top.Kind(), c, back, ok)
			}
			for i, nb := range top.Neighbors(c) {
				li, ok := top.LocalOf(c, nb)
				if !ok || li != LocalIndex(i+1) {
					t.Fatalf("%v: LocalOf(%d,%d) = %d,%v want %d", top.Kind(), c, nb, li, ok, i+1)
				}
				back, ok := top.FromLocal(c, li)
				if !ok || back != nb {
					t.Fatalf("%v: FromLocal(%d,%d) = %d,%v want %d", top.Kind(), c, li, back, ok, nb)
				}
			}
		}
	}
}

func TestWithinHops(t *testing.T) {
	top := Ring(10)
	got := top.WithinHops(0, 2)
	want := map[CellID]bool{9: true, 1: true, 8: true, 2: true}
	if len(got) != len(want) {
		t.Fatalf("WithinHops(0,2) = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected cell %d in %v", id, got)
		}
	}
	if len(top.WithinHops(0, 0)) != 0 {
		t.Fatal("WithinHops(0,0) non-empty")
	}
	// Whole ring reachable in 5 hops from any cell.
	if len(top.WithinHops(3, 5)) != 9 {
		t.Fatalf("WithinHops(3,5) = %v", top.WithinHops(3, 5))
	}
	// Hex: 1 hop = degree, 2 hops on a big torus = 18.
	hex := Hex(7, 7, true)
	if len(hex.WithinHops(0, 1)) != 6 {
		t.Fatalf("hex 1-hop = %d", len(hex.WithinHops(0, 1)))
	}
	if len(hex.WithinHops(0, 2)) != 18 {
		t.Fatalf("hex 2-hop = %d, want 18", len(hex.WithinHops(0, 2)))
	}
}

func TestLocalOfNonNeighbor(t *testing.T) {
	top := Ring(10)
	if _, ok := top.LocalOf(0, 5); ok {
		t.Fatal("LocalOf for non-neighbor returned ok")
	}
}

func TestFromLocalOutOfRange(t *testing.T) {
	top := Ring(10)
	if _, ok := top.FromLocal(0, 3); ok {
		t.Fatal("FromLocal(0,3) ok on degree-2 cell")
	}
	if _, ok := top.FromLocal(0, -1); ok {
		t.Fatal("FromLocal(0,-1) ok")
	}
}

func TestHexWrappedDegrees(t *testing.T) {
	top := Hex(4, 5, true)
	if top.NumCells() != 20 {
		t.Fatalf("NumCells = %d, want 20", top.NumCells())
	}
	for c := CellID(0); int(c) < top.NumCells(); c++ {
		if top.Degree(c) != 6 {
			t.Fatalf("wrapped hex cell %d degree = %d, want 6", c, top.Degree(c))
		}
	}
	if top.MaxDegree() != 6 {
		t.Fatalf("MaxDegree = %d, want 6", top.MaxDegree())
	}
}

func TestHexUnwrappedBorders(t *testing.T) {
	top := Hex(3, 3, false)
	// Corner cell 0 (q=0, r=0): dirs east, (ne), (se...) — expect 3 in-grid
	// neighbors: (+1,0)=1, (0,+1)? wait r+1 -> cell 3... just check bounds.
	for c := CellID(0); int(c) < top.NumCells(); c++ {
		d := top.Degree(c)
		if d < 2 || d > 6 {
			t.Fatalf("cell %d degree = %d out of [2,6]", c, d)
		}
	}
	// Center cell of a 3x3 grid has all six neighbors.
	center := CellID(1*3 + 1)
	if top.Degree(center) != 6 {
		t.Fatalf("center degree = %d, want 6", top.Degree(center))
	}
}

func TestHexCoordRoundTrip(t *testing.T) {
	top := Hex(4, 5, true)
	for c := CellID(0); int(c) < top.NumCells(); c++ {
		q, r := top.HexCoord(c)
		if CellID(r*5+q) != c {
			t.Fatalf("HexCoord(%d) = (%d,%d) does not round-trip", c, q, r)
		}
	}
}

func TestHexStepWrapped(t *testing.T) {
	top := Hex(4, 5, true)
	for c := CellID(0); int(c) < top.NumCells(); c++ {
		for dir := 0; dir < NumHexDirs; dir++ {
			nb, ok := top.HexStep(c, dir)
			if !ok {
				t.Fatalf("wrapped HexStep(%d,%d) not ok", c, dir)
			}
			if !top.Adjacent(c, nb) {
				t.Fatalf("HexStep(%d,%d) = %d not adjacent", c, dir, nb)
			}
		}
	}
}

func TestHexStepUnwrappedEdges(t *testing.T) {
	top := Hex(3, 3, false)
	// Cell 2 is (q=2, r=0); stepping east (dir 0) leaves the grid.
	if _, ok := top.HexStep(2, 0); ok {
		t.Fatal("HexStep off-grid returned ok")
	}
	// Opposite directions cancel where both moves are in-grid.
	mid := CellID(4)
	east, ok1 := top.HexStep(mid, 0)
	if !ok1 {
		t.Fatal("center east step failed")
	}
	back, ok2 := top.HexStep(east, 3)
	if !ok2 || back != mid {
		t.Fatalf("east then west = %d,%v want %d", back, ok2, mid)
	}
}

func TestHexStepOppositeDirectionsCancelOnTorus(t *testing.T) {
	top := Hex(5, 7, true)
	for c := CellID(0); int(c) < top.NumCells(); c++ {
		for dir := 0; dir < NumHexDirs; dir++ {
			fwd, _ := top.HexStep(c, dir)
			rev, _ := top.HexStep(fwd, (dir+3)%NumHexDirs)
			if rev != c {
				t.Fatalf("dir %d then %d from %d lands on %d", dir, (dir+3)%NumHexDirs, c, rev)
			}
		}
	}
}

func TestHexCoordPanicsOnRing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HexCoord on ring did not panic")
		}
	}()
	Ring(5).HexCoord(0)
}

func TestOutOfRangeCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Neighbors(99) did not panic")
		}
	}()
	Ring(5).Neighbors(99)
}

// Property: adjacency is symmetric and irreflexive in every topology.
func TestPropertyAdjacencySymmetric(t *testing.T) {
	f := func(nRaw uint8, kindRaw uint8) bool {
		var top *Topology
		switch kindRaw % 3 {
		case 0:
			top = Ring(3 + int(nRaw%20))
		case 1:
			top = Line(2 + int(nRaw%20))
		default:
			top = Hex(3+int(nRaw%4), 3+int(nRaw%5), nRaw%2 == 0)
		}
		n := top.NumCells()
		for a := CellID(0); int(a) < n; a++ {
			if top.Adjacent(a, a) {
				return false
			}
			for b := CellID(0); int(b) < n; b++ {
				if top.Adjacent(a, b) != top.Adjacent(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every neighbor list has no duplicates and never contains the
// cell itself.
func TestPropertyNeighborListsClean(t *testing.T) {
	f := func(nRaw uint8, wrap bool) bool {
		for _, top := range []*Topology{
			Ring(3 + int(nRaw%30)),
			Line(2 + int(nRaw%30)),
			Hex(3+int(nRaw%5), 3+int(nRaw/16%5), wrap),
		} {
			for c := CellID(0); int(c) < top.NumCells(); c++ {
				seen := map[CellID]bool{}
				for _, nb := range top.Neighbors(c) {
					if nb == c || seen[nb] || !top.Valid(nb) {
						return false
					}
					seen[nb] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
