package topology

import "fmt"

// hexDirs are the six axial-coordinate neighbor offsets of a hexagonal
// grid, in counter-clockwise order starting from "east". The order is the
// canonical neighbor order of every hex cell, matching the paper's
// Fig. 2(b) style indexing (neighbor k of every cell lies in the same
// geographic direction).
var hexDirs = [6][2]int{
	{+1, 0}, {+1, -1}, {0, -1}, {-1, 0}, {-1, +1}, {0, +1},
}

// NumHexDirs is the number of neighbor directions in a hex grid.
const NumHexDirs = len(hexDirs)

// Hex builds a rows×cols hexagonal grid in axial coordinates
// (q = column, r = row; cell ID = r*cols + q). When wrap is true the grid
// is a torus: every cell has exactly six neighbors and there are no
// border effects, mirroring the paper's ring construction in 2-D. When
// wrap is false, off-grid directions are simply absent and border cells
// have fewer neighbors.
//
// With wrap, both rows and cols must be ≥ 3 so that a cell never wraps
// onto itself or lists the same neighbor twice.
func Hex(rows, cols int, wrap bool) *Topology {
	if rows < 1 || cols < 1 {
		panic("topology: hex needs rows, cols >= 1")
	}
	if wrap && (rows < 3 || cols < 3) {
		panic("topology: wrapped hex needs rows, cols >= 3")
	}
	n := rows * cols
	t := &Topology{kind: KindHex, n: n, neighbors: make([][]CellID, n), rows: rows, cols: cols, wrap: wrap}
	for r := 0; r < rows; r++ {
		for q := 0; q < cols; q++ {
			id := r*cols + q
			ns := make([]CellID, 0, NumHexDirs)
			for _, d := range hexDirs {
				nq, nr := q+d[0], r+d[1]
				if wrap {
					nq = (nq + cols) % cols
					nr = (nr + rows) % rows
				} else if nq < 0 || nq >= cols || nr < 0 || nr >= rows {
					continue
				}
				ns = append(ns, CellID(nr*cols+nq))
			}
			t.neighbors[id] = ns
		}
	}
	return finish(t)
}

// HexCoord returns the axial coordinates (q, r) of cell c in a hex
// topology. It panics for non-hex topologies.
func (t *Topology) HexCoord(c CellID) (q, r int) {
	if t.kind != KindHex {
		panic("topology: HexCoord on non-hex topology")
	}
	t.check(c)
	return int(c) % t.cols, int(c) / t.cols
}

// HexStep returns the cell reached from c by moving in hex direction
// dir ∈ [0, NumHexDirs). ok is false when the move leaves an unwrapped
// grid. It panics for non-hex topologies.
func (t *Topology) HexStep(c CellID, dir int) (CellID, bool) {
	if t.kind != KindHex {
		panic("topology: HexStep on non-hex topology")
	}
	if dir < 0 || dir >= NumHexDirs {
		panic(fmt.Sprintf("topology: hex direction %d out of range", dir))
	}
	q, r := t.HexCoord(c)
	d := hexDirs[dir]
	nq, nr := q+d[0], r+d[1]
	if t.wrap {
		nq = (nq + t.cols) % t.cols
		nr = (nr + t.rows) % t.rows
	} else if nq < 0 || nq >= t.cols || nr < 0 || nr >= t.rows {
		return None, false
	}
	return CellID(nr*t.cols + nq), true
}
