package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func mustSave(t *testing.T, ck *Checkpointer, simNow float64, payload string) {
	t.Helper()
	if err := ck.Save(&Snapshot{SimNow: simNow, Payload: []byte(payload)}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, ck, 42.5, "history A")
	snap, source, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if source != "current" {
		t.Fatalf("source = %q, want current", source)
	}
	if snap.SimNow != 42.5 || snap.Seq != 1 || !bytes.Equal(snap.Payload, []byte("history A")) {
		t.Fatalf("loaded %+v", snap)
	}
}

func TestCheckpointRotatesPrevious(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, ck, 1, "first")
	mustSave(t, ck, 2, "second")

	snap, _, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.Payload) != "second" || snap.Seq != 2 {
		t.Fatalf("current = %+v", snap)
	}
	prev, err := loadFile(filepath.Join(ck.Dir(), checkpointPrev))
	if err != nil {
		t.Fatal(err)
	}
	if string(prev.Payload) != "first" || prev.Seq != 1 {
		t.Fatalf("prev = %+v", prev)
	}
	// The temp file never survives a completed Save.
	if _, err := os.Stat(filepath.Join(ck.Dir(), checkpointTmp)); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// corruptFile flips one bit in the middle of a file on disk.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointFallsBackToPrevOnCorruptCurrent(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, ck, 1, "first")
	mustSave(t, ck, 2, "second")
	corruptFile(t, ck.CurrentPath())

	snap, source, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if source != "prev" {
		t.Fatalf("source = %q, want prev", source)
	}
	if string(snap.Payload) != "first" {
		t.Fatalf("fallback payload = %q", snap.Payload)
	}
}

func TestCheckpointFallsBackToPrevOnTruncatedCurrent(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, ck, 1, "first")
	mustSave(t, ck, 2, "second")
	data, err := os.ReadFile(ck.CurrentPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ck.CurrentPath(), data[:len(data)/2], 0o644); err != nil { //cellqos:allow crashorder deliberate truncation to exercise the prev-checkpoint fallback
		t.Fatal(err)
	}

	snap, source, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if source != "prev" || string(snap.Payload) != "first" {
		t.Fatalf("source = %q, payload = %q", source, snap.Payload)
	}
}

func TestCheckpointColdStart(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap, source, err := ck.Load()
	if snap != nil || source != "" || err != nil {
		t.Fatalf("cold start: snap=%v source=%q err=%v", snap, source, err)
	}
}

// TestCheckpointBothCorruptIsAnError: durable state existed and none of
// it is readable — that must not masquerade as a cold start.
func TestCheckpointBothCorruptIsAnError(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, ck, 1, "first")
	mustSave(t, ck, 2, "second")
	corruptFile(t, ck.CurrentPath())
	corruptFile(t, filepath.Join(ck.Dir(), checkpointPrev))

	if _, _, err := ck.Load(); err == nil {
		t.Fatal("both files corrupt, Load succeeded")
	}
}

// TestCheckpointSeqAdoption: a restarted process continues the sequence
// instead of numbering its checkpoints from 1 again.
func TestCheckpointSeqAdoption(t *testing.T) {
	dir := t.TempDir()
	ck1, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, ck1, 1, "first")
	mustSave(t, ck1, 2, "second")

	ck2, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck2.Load(); err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{SimNow: 3, Payload: []byte("third")}
	if err := ck2.Save(s); err != nil {
		t.Fatal(err)
	}
	if s.Seq != 3 {
		t.Fatalf("post-restore Seq = %d, want 3", s.Seq)
	}
}
