package service

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"cellqos/internal/audit"
	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// Exit codes for the service lifecycle. They are distinct so
// supervisors can tell a clean drain from a shutdown that shed load or
// leaned on degraded data, and both from a failure.
const (
	// ExitClean: drained in time, final checkpoint flushed, no
	// degradation observed.
	ExitClean = 0
	// ExitFailed: the shutdown contract was broken — drain timed out,
	// the final checkpoint could not be written, or an audit invariant
	// tripped.
	ExitFailed = 1
	// ExitDegraded: shut down correctly, but the run shed new calls,
	// made degraded admission decisions, or restored from the rotated
	// (previous) checkpoint.
	ExitDegraded = 3
)

// TimeSource supplies simulation timestamps for engine-visible events.
// clock.Bridge implements it for production (wall-derived, monotone);
// StepSource implements it for deterministic drives.
type TimeSource interface {
	SimNow() float64
}

var _ TimeSource = (*clock.Bridge)(nil)

// StepSource is a deterministic TimeSource: the i-th call returns
// start + i·step. Two runs with the same start and step see identical
// timestamps, which is what makes crash-recovery comparisons exact.
// Safe for concurrent use.
type StepSource struct {
	mu   sync.Mutex
	next float64
	step float64
}

// NewStepSource starts at start, advancing by step per call.
func NewStepSource(start, step float64) *StepSource {
	return &StepSource{next: start, step: step}
}

// SimNow implements TimeSource.
func (s *StepSource) SimNow() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.next
	s.next += s.step
	return t
}

// Cell pairs one engine with its view of the neighbors.
type Cell struct {
	Engine *core.Engine
	Peers  core.Peers
}

// Config parameterizes a Server.
type Config struct {
	// Cells are the base stations this process hosts.
	Cells []Cell
	// Time stamps engine-visible events. Serve requires it; it may be
	// set after Restore, whose SimNow is the natural starting point.
	Time TimeSource
	// Clock paces the loop and the checkpoint cadence (nil = wall).
	Clock clock.Clock
	// Checkpointer persists estimator history (nil = stateless).
	Checkpointer *Checkpointer
	// CheckpointEvery is the wall cadence between periodic checkpoints;
	// ≤ 0 checkpoints only at shutdown.
	CheckpointEvery time.Duration
	// Pace sleeps between events (0 = flat out).
	Pace time.Duration
	// Gate sheds new calls under overload (nil = no shedding).
	Gate *Gate
	// DrainTimeout bounds the shutdown drain (default 5s).
	DrainTimeout time.Duration
	// Workers > 0 dispatches admissions to that many goroutines — the
	// production shape, with genuinely in-flight work to drain. 0 runs
	// admissions inline on the loop, keeping the drive deterministic.
	Workers int
	// Seed drives the workload RNG.
	Seed uint64
	// NewCallEvery makes every k-th event a new-call admission, the
	// rest hand-off departures (default 4).
	NewCallEvery int
	// CallHold is how long an admitted call occupies its cell, in
	// simulation seconds (default 200).
	CallHold float64
	// Audit verifies every cell's ledger (and, after a restore, the
	// history fixed point) with internal/audit; a violation fails the
	// run.
	Audit bool
}

// Report is the drive's final accounting. Offered always equals
// Admitted + Blocked + Shed — the soak harness asserts this exactly,
// so any intake path that forgets to classify its outcome is caught.
type Report struct {
	Events      uint64
	Offered     uint64
	Admitted    uint64
	Blocked     uint64
	Shed        uint64
	HandOffs    uint64
	Completions uint64
	BrCalcs     uint64
	Degraded    uint64 // admission decisions that leaned on fallback data

	Checkpoints  uint64
	Seq          uint64 // last checkpoint sequence written
	RestoredFrom string // "", "current", or "prev"
	RestoredSeq  uint64
	ResumeSimNow float64
	FinalSimNow  float64

	DrainOK      bool
	FinalFlushOK bool
	Err          string // first fatal error, for the JSON report
	ExitCode     int
}

// activeCall is one admitted connection awaiting its completion time.
type activeCall struct {
	id     core.ConnID
	cell   int
	expire float64
}

// Server is the long-running admission service.
type Server struct {
	cfg     Config
	drainer *Drainer
	rng     *rand.Rand
	mix     traffic.Mix

	nextID core.ConnID // loop goroutine only

	callsMu sync.Mutex
	calls   []activeCall // expiry-ordered: holds are constant, so FIFO

	events, offered, admitted, blocked, shed atomic.Uint64
	handOffs, completions, brCalcs, degraded atomic.Uint64
	checkpoints, lastSeq                     atomic.Uint64
	restoredFrom                             string
	restoredSeq                              uint64
	resumeSimNow                             float64

	jobs chan func()
	wg   sync.WaitGroup
}

// New builds a Server; it panics on empty Cells (programmer error,
// same convention as core.NewEngine). Config.Time may still be nil
// here — Restore does not need it — but Serve panics without one.
func New(cfg Config) *Server {
	if len(cfg.Cells) == 0 {
		panic("service: no cells to serve")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.NewCallEvery <= 0 {
		cfg.NewCallEvery = 4
	}
	if cfg.CallHold <= 0 {
		cfg.CallHold = 200
	}
	return &Server{
		cfg:     cfg,
		drainer: NewDrainer(),
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x6265)),
		mix:     traffic.Mix{VoiceRatio: 0.8},
	}
}

// SetTime installs the TimeSource; the usual sequence is New →
// Restore → SetTime (starting from the restored SimNow) → Serve.
func (s *Server) SetTime(ts TimeSource) { s.cfg.Time = ts }

// RestoreInfo describes what Restore found.
type RestoreInfo struct {
	// Found is false on a cold start (no checkpoint on disk).
	Found bool
	// SimNow is the simulation instant to resume from: the snapshot's
	// cut, raised to the restored history's newest event if that is
	// later, so Record's event-order invariant holds.
	SimNow float64
	// Seq is the restored checkpoint's sequence number.
	Seq uint64
	// Source is the file that supplied the snapshot: "current" or
	// "prev" (the fallback — reported as degradation at exit).
	Source string
}

// Restore loads the best available checkpoint into the cells'
// estimators. Call it before Serve, then build the TimeSource from the
// returned SimNow. With Audit set, every restored engine must pass the
// history fixed-point re-derivation (audit.Checker.History).
func (s *Server) Restore() (RestoreInfo, error) {
	if s.cfg.Checkpointer == nil {
		return RestoreInfo{}, nil
	}
	snap, source, err := s.cfg.Checkpointer.Load()
	if err != nil {
		return RestoreInfo{}, err
	}
	if snap == nil {
		return RestoreInfo{}, nil
	}
	if err := s.restorePayload(snap.Payload); err != nil {
		return RestoreInfo{}, err
	}
	resume := snap.SimNow
	for _, c := range s.cfg.Cells {
		if le := c.Engine.HistoryLastEvent(); le > resume {
			resume = le
		}
	}
	if s.cfg.Audit {
		if err := s.auditHistory(resume); err != nil {
			return RestoreInfo{}, err
		}
	}
	s.restoredFrom = source
	s.restoredSeq = snap.Seq
	s.resumeSimNow = resume
	return RestoreInfo{Found: true, SimNow: resume, Seq: snap.Seq, Source: source}, nil
}

// snapshotPayload serializes every cell's history: a cell count
// followed by the cells' self-delimiting WriteHistory streams.
func (s *Server) snapshotPayload() ([]byte, error) {
	var buf payloadBuffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(s.cfg.Cells)))
	buf.Write(hdr[:])
	for i, c := range s.cfg.Cells {
		if _, err := c.Engine.WriteHistory(&buf); err != nil {
			return nil, fmt.Errorf("service: checkpoint cell %d: %w", i, err)
		}
	}
	return buf.b, nil
}

// payloadBuffer is a minimal append-only io.Writer.
type payloadBuffer struct{ b []byte }

func (p *payloadBuffer) Write(d []byte) (int, error) {
	p.b = append(p.b, d...)
	return len(d), nil
}

// restorePayload decodes a snapshotPayload into the cells' engines.
func (s *Server) restorePayload(payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("service: checkpoint payload too short (%d bytes)", len(payload))
	}
	if n := binary.BigEndian.Uint32(payload); int(n) != len(s.cfg.Cells) {
		return fmt.Errorf("service: checkpoint holds %d cells, server hosts %d", n, len(s.cfg.Cells))
	}
	r := &payloadReader{b: payload[4:]}
	for i, c := range s.cfg.Cells {
		if _, err := c.Engine.RestoreHistory(r, false); err != nil {
			return fmt.Errorf("service: restore cell %d: %w", i, err)
		}
	}
	if len(r.b) != 0 {
		return fmt.Errorf("service: %d trailing bytes after the last cell's history", len(r.b))
	}
	return nil
}

// payloadReader is a minimal consuming io.Reader over a byte slice.
type payloadReader struct{ b []byte }

func (p *payloadReader) Read(d []byte) (int, error) {
	if len(p.b) == 0 {
		return 0, io.EOF
	}
	n := copy(d, p.b)
	p.b = p.b[n:]
	return n, nil
}

// Serve drives the admission loop for budget events (0 = until stop),
// then shuts down gracefully: stop intake, drain in-flight admissions,
// flush the final checkpoint, audit, and report with the exit code.
func (s *Server) Serve(budget uint64, stop <-chan struct{}) *Report {
	if s.cfg.Time == nil {
		panic("service: Config.Time is required to serve")
	}
	w := s.cfg.Clock
	if s.cfg.Workers > 0 {
		s.jobs = make(chan func(), s.cfg.Workers*2)
		for i := 0; i < s.cfg.Workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for job := range s.jobs {
					job()
				}
			}()
		}
	}

	var fatal error
	lastCkpt := w.Now()
loop:
	for i := uint64(0); budget == 0 || i < budget; i++ {
		select {
		case <-stop:
			break loop // graceful shutdown below
		default:
		}
		t := s.cfg.Time.SimNow()
		s.expire(t)
		if int(i)%s.cfg.NewCallEvery == 0 {
			s.newCall(t)
		} else {
			s.handOff(t)
		}
		s.events.Add(1)
		if s.cfg.Checkpointer != nil && s.cfg.CheckpointEvery > 0 && w.Since(lastCkpt) >= s.cfg.CheckpointEvery {
			if err := s.checkpoint(t); err != nil {
				fatal = err
				break
			}
			lastCkpt = w.Now()
		}
		if s.cfg.Pace > 0 {
			w.Sleep(s.cfg.Pace)
		}
	}

	// Graceful shutdown: stop intake and wait out the in-flight
	// admissions, then stop the workers.
	drained := s.drainer.Drain(w, s.cfg.DrainTimeout)
	if s.jobs != nil {
		close(s.jobs)
		s.wg.Wait()
	}

	// Final checkpoint: the estimators' latest samples must survive
	// this shutdown even if the periodic cadence never fired.
	finalT := s.cfg.Time.SimNow()
	flushOK := true
	if s.cfg.Checkpointer != nil && fatal == nil {
		if err := s.checkpoint(finalT); err != nil {
			fatal = err
			flushOK = false
		}
	}
	var auditErr error
	if s.cfg.Audit && fatal == nil {
		auditErr = s.auditLedgers(finalT)
	}

	r := &Report{
		Events:       s.events.Load(),
		Offered:      s.offered.Load(),
		Admitted:     s.admitted.Load(),
		Blocked:      s.blocked.Load(),
		Shed:         s.shed.Load(),
		HandOffs:     s.handOffs.Load(),
		Completions:  s.completions.Load(),
		BrCalcs:      s.brCalcs.Load(),
		Degraded:     s.degraded.Load(),
		Checkpoints:  s.checkpoints.Load(),
		Seq:          s.lastSeq.Load(),
		RestoredFrom: s.restoredFrom,
		RestoredSeq:  s.restoredSeq,
		ResumeSimNow: s.resumeSimNow,
		FinalSimNow:  finalT,
		DrainOK:      drained,
		FinalFlushOK: flushOK,
	}
	switch {
	case fatal != nil:
		r.Err = fatal.Error()
		r.ExitCode = ExitFailed
	case auditErr != nil:
		r.Err = auditErr.Error()
		r.ExitCode = ExitFailed
	case !drained:
		r.Err = fmt.Sprintf("drain timed out with %d admissions in flight", s.drainer.Inflight())
		r.ExitCode = ExitFailed
	case r.Shed > 0 || r.Degraded > 0 || r.RestoredFrom == "prev":
		r.ExitCode = ExitDegraded
	default:
		r.ExitCode = ExitClean
	}
	return r
}

// newCall runs one new-call admission at simulation time t: through
// the overload gate, then the drainer, then the engine. Every offered
// call is classified exactly once as admitted, blocked, or shed.
func (s *Server) newCall(t float64) {
	s.offered.Add(1)
	ci := s.rng.IntN(len(s.cfg.Cells))
	bw := s.mix.Sample(s.rng).Bandwidth
	if !s.cfg.Gate.Allow() {
		s.shed.Add(1)
		return
	}
	if !s.drainer.Enter() {
		// Intake raced shutdown: the call is shed, not lost.
		s.shed.Add(1)
		return
	}
	s.nextID++
	id := s.nextID
	cell := s.cfg.Cells[ci]
	job := func() {
		defer s.drainer.Exit()
		d := cell.Engine.AdmitNew(t, bw, cell.Peers)
		s.brCalcs.Add(uint64(d.BrCalcs))
		if d.Degraded {
			s.degraded.Add(1)
		}
		if !d.Admitted {
			s.blocked.Add(1)
			return
		}
		cell.Engine.AddConnection(id, core.ConnSpec{Min: bw, Prev: topology.Self}, t)
		s.admitted.Add(1)
		s.callsMu.Lock()
		s.calls = append(s.calls, activeCall{id: id, cell: ci, expire: t + s.cfg.CallHold})
		s.callsMu.Unlock()
	}
	if s.jobs != nil {
		s.jobs <- job
	} else {
		job()
	}
}

// handOff records one hand-off departure at simulation time t — the
// estimator's food (§3.1). Departures come from the loop goroutine
// only, so event times reach each estimator in monotone order.
func (s *Server) handOff(t float64) {
	ci := s.rng.IntN(len(s.cfg.Cells))
	eng := s.cfg.Cells[ci].Engine
	deg := eng.Config().Degree
	eng.RecordDeparture(predictQuad(t, s.rng, deg))
	s.handOffs.Add(1)
}

// expire completes calls whose hold elapsed. Holds are constant, so
// the list is expiry-ordered and only a prefix ever completes.
func (s *Server) expire(t float64) {
	s.callsMu.Lock()
	defer s.callsMu.Unlock()
	n := 0
	for n < len(s.calls) && s.calls[n].expire <= t {
		c := s.calls[n]
		s.cfg.Cells[c.cell].Engine.RemoveConnection(c.id)
		s.completions.Add(1)
		n++
	}
	if n > 0 {
		s.calls = append(s.calls[:0], s.calls[n:]...)
	}
}

// checkpoint cuts and persists a snapshot at simulation time t.
func (s *Server) checkpoint(t float64) error {
	payload, err := s.snapshotPayload()
	if err != nil {
		return err
	}
	snap := &Snapshot{SimNow: t, Payload: payload}
	if err := s.cfg.Checkpointer.Save(snap); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	s.lastSeq.Store(snap.Seq)
	return nil
}

// auditHistory verifies the post-restore fixed point on every cell.
func (s *Server) auditHistory(now float64) (err error) {
	defer func() { err = asViolation(recover(), err) }()
	var ck audit.Checker
	for i, c := range s.cfg.Cells {
		ck.History(fmt.Sprintf("bs %d", i), now, c.Engine)
	}
	return nil
}

// auditLedgers verifies every cell's bandwidth ledger.
func (s *Server) auditLedgers(now float64) (err error) {
	defer func() { err = asViolation(recover(), err) }()
	var ck audit.Checker
	for i, c := range s.cfg.Cells {
		ck.Engine(fmt.Sprintf("bs %d", i), now, c.Engine.Ledger())
	}
	return nil
}

// asViolation converts a recovered audit.Violation into an error,
// re-panicking on anything else.
func asViolation(r any, prev error) error {
	if r == nil {
		return prev
	}
	if v, ok := r.(*audit.Violation); ok {
		return v
	}
	panic(r)
}

// predictQuad draws one departure quadruplet at time t for a cell of
// the given degree.
func predictQuad(t float64, rng *rand.Rand, deg int) predict.Quadruplet {
	return predict.Quadruplet{
		Event:   t,
		Prev:    topology.LocalIndex(rng.IntN(deg + 1)),
		Next:    topology.LocalIndex(1 + rng.IntN(deg)),
		Sojourn: 20 + rng.Float64()*300,
	}
}
