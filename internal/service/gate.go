package service

import (
	"sync"
	"time"

	"cellqos/internal/clock"
)

// Gate is a token-bucket overload shield for new-call intake: the
// bucket starts full, refills continuously at a fixed rate up to its
// capacity, and each admitted request spends one token. When the
// bucket is empty the request is shed before any admission work runs —
// the paper's hand-off priority carries into overload behavior, since
// hand-off processing never passes through the gate, only new calls
// do (§4.3 already favors hand-offs with the reserved pool; shedding
// new calls first under overload is the same preference applied to
// CPU and signaling budget).
//
// Refill is computed from elapsed time on the supplied clock, so tests
// drive the bucket deterministically with a clock.Manual. A nil *Gate
// admits everything — the disabled state needs no branches at call
// sites.
type Gate struct {
	mu       sync.Mutex
	capacity float64
	tokens   float64
	rate     float64 // tokens per second
	last     time.Time
	c        clock.Clock

	admitted uint64
	shed     uint64
}

// NewGate builds a gate with the given burst capacity and refill rate
// (tokens per second). A nil clock means the wall clock. Non-positive
// capacity or rate returns nil — the disabled gate.
func NewGate(capacity, ratePerSec float64, c clock.Clock) *Gate {
	if capacity <= 0 || ratePerSec <= 0 {
		return nil
	}
	if c == nil {
		c = clock.Wall{}
	}
	return &Gate{capacity: capacity, tokens: capacity, rate: ratePerSec, last: c.Now(), c: c}
}

// Allow spends one token if available; a false return means the
// request must be shed. A nil gate always allows.
func (g *Gate) Allow() bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.c.Now()
	if elapsed := now.Sub(g.last).Seconds(); elapsed > 0 {
		g.tokens += elapsed * g.rate
		if g.tokens > g.capacity {
			g.tokens = g.capacity
		}
	}
	g.last = now
	if g.tokens < 1 {
		g.shed++
		return false
	}
	g.tokens--
	g.admitted++
	return true
}

// Stats returns how many requests the gate has passed and shed.
func (g *Gate) Stats() (admitted, shed uint64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted, g.shed
}
