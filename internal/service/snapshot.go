// Package service turns the deterministic admission engine into a
// long-running base-station process: a paced drive loop with periodic
// crash-safe estimator checkpointing, an overload gate for new calls,
// and a graceful drain-flush-exit lifecycle (DESIGN.md §15).
//
// The package sits between two time domains. Wall-clock time — always
// read through internal/clock, never directly — paces the loop and the
// checkpoint cadence; simulation time stamps every engine-visible
// event, drawn from a TimeSource (a deterministic StepSource under
// test, a clock.Bridge in production). Engine-visible bytes therefore
// never depend on wall-clock readings, which is what makes the
// crash-recovery tests exact.
package service

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Snapshot framing: a checkpoint file is one self-validating frame.
//
//	uint32  magic "CQSC"
//	uint16  version
//	uint32  CRC-32 (IEEE) over the body
//	body:
//	  float64 SimNow   — simulation clock at the cut
//	  uint64  Seq      — checkpoint sequence number
//	  uint32  payload length
//	  []byte  payload  — engine history streams (see Server)
//
// Decode rejects any frame whose total length disagrees with the
// declared payload length, so truncated and padded files fail before
// the checksum is even consulted; the CRC catches every single-bit
// flip (property-tested exhaustively in snapshot_test.go).
const (
	snapshotMagic     = 0x43515343 // "CQSC"
	snapshotVersion   = 1
	snapshotHeaderLen = 10 // magic + version + crc
	snapshotBodyFixed = 20 // SimNow + Seq + payload length
)

// Snapshot is one decoded checkpoint.
type Snapshot struct {
	// SimNow is the simulation clock at the moment of the cut; a
	// restored service resumes its clock at or after it.
	SimNow float64
	// Seq numbers checkpoints monotonically within a state directory.
	Seq uint64
	// Payload is the serialized engine history (opaque at this layer).
	Payload []byte
}

// Encode serializes the snapshot into one framed byte slice.
func (s *Snapshot) Encode() []byte {
	out := make([]byte, snapshotHeaderLen+snapshotBodyFixed+len(s.Payload))
	body := out[snapshotHeaderLen:]
	binary.BigEndian.PutUint64(body[0:], math.Float64bits(s.SimNow))
	binary.BigEndian.PutUint64(body[8:], s.Seq)
	binary.BigEndian.PutUint32(body[16:], uint32(len(s.Payload)))
	copy(body[snapshotBodyFixed:], s.Payload)
	binary.BigEndian.PutUint32(out[0:], snapshotMagic)
	binary.BigEndian.PutUint16(out[4:], snapshotVersion)
	binary.BigEndian.PutUint32(out[6:], crc32.ChecksumIEEE(body))
	return out
}

// DecodeSnapshot parses and validates one framed snapshot. The frame
// must be exact: wrong magic or version, any length disagreement,
// checksum mismatch, or a non-finite/negative SimNow all reject.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapshotHeaderLen+snapshotBodyFixed {
		return nil, fmt.Errorf("service: snapshot too short (%d bytes)", len(data))
	}
	if m := binary.BigEndian.Uint32(data[0:]); m != snapshotMagic {
		return nil, fmt.Errorf("service: bad snapshot magic %#x", m)
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != snapshotVersion {
		return nil, fmt.Errorf("service: unsupported snapshot version %d", v)
	}
	want := binary.BigEndian.Uint32(data[6:])
	body := data[snapshotHeaderLen:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("service: snapshot checksum mismatch (%#x != %#x)", got, want)
	}
	plen := binary.BigEndian.Uint32(body[16:])
	if int64(plen) != int64(len(body)-snapshotBodyFixed) {
		return nil, fmt.Errorf("service: snapshot declares %d payload bytes, frame carries %d",
			plen, len(body)-snapshotBodyFixed)
	}
	simNow := math.Float64frombits(binary.BigEndian.Uint64(body[0:]))
	if math.IsNaN(simNow) || math.IsInf(simNow, 0) || simNow < 0 {
		return nil, fmt.Errorf("service: corrupt snapshot SimNow %v", simNow)
	}
	return &Snapshot{
		SimNow:  simNow,
		Seq:     binary.BigEndian.Uint64(body[8:]),
		Payload: append([]byte(nil), body[snapshotBodyFixed:]...),
	}, nil
}
