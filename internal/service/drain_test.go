package service

import (
	"testing"
	"time"

	"cellqos/internal/clock"
	"cellqos/internal/testleak"
)

func TestDrainerImmediateWhenIdle(t *testing.T) {
	d := NewDrainer()
	if !d.Drain(clock.NewManual(time.Unix(0, 0)), time.Second) {
		t.Fatal("idle drainer did not drain")
	}
}

func TestDrainerWaitsForStraggler(t *testing.T) {
	defer testleak.Check(t)()
	d := NewDrainer()
	if !d.Enter() {
		t.Fatal("Enter rejected before drain")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		d.Exit()
	}()
	// Wall clock: the straggler finishes in real time, well inside the
	// timeout; the outcome is deterministic even though the latency
	// is not.
	if !d.Drain(nil, 5*time.Second) {
		t.Fatal("drain timed out waiting for a straggler that exited")
	}
	if d.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", d.Inflight())
	}
}

func TestDrainerTimesOut(t *testing.T) {
	d := NewDrainer()
	d.Enter() // never exits
	mc := clock.NewManual(time.Unix(0, 0))
	if d.Drain(mc, 100*time.Millisecond) {
		t.Fatal("drain reported success with work still in flight")
	}
	if d.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", d.Inflight())
	}
}

func TestDrainerRejectsEnterAfterDrain(t *testing.T) {
	d := NewDrainer()
	if !d.Drain(clock.NewManual(time.Unix(0, 0)), time.Second) {
		t.Fatal("idle drain failed")
	}
	if d.Enter() {
		t.Fatal("Enter accepted after drain")
	}
}

func TestDrainerExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Exit did not panic")
		}
	}()
	NewDrainer().Exit()
}
