package service

import (
	"testing"
	"time"

	"cellqos/internal/clock"
)

func TestGateShedsWhenEmpty(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	g := NewGate(3, 1, mc)
	for i := 0; i < 3; i++ {
		if !g.Allow() {
			t.Fatalf("request %d shed with tokens left", i)
		}
	}
	if g.Allow() {
		t.Fatal("request passed an empty bucket")
	}
	if a, s := g.Stats(); a != 3 || s != 1 {
		t.Fatalf("stats = (%d, %d), want (3, 1)", a, s)
	}
}

func TestGateRefillsOnClock(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	g := NewGate(3, 1, mc) // 1 token/s
	for i := 0; i < 3; i++ {
		g.Allow()
	}
	if g.Allow() {
		t.Fatal("empty bucket allowed without time passing")
	}
	mc.Advance(2 * time.Second)
	if !g.Allow() || !g.Allow() {
		t.Fatal("2 s at 1 token/s should refill 2 tokens")
	}
	if g.Allow() {
		t.Fatal("third request passed after a 2-token refill")
	}
}

func TestGateRefillCapsAtCapacity(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	g := NewGate(3, 1, mc)
	for i := 0; i < 3; i++ {
		g.Allow()
	}
	mc.Advance(time.Hour) // far more than capacity's worth
	allowed := 0
	for i := 0; i < 10; i++ {
		if g.Allow() {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("allowed %d after a long idle, want capacity 3", allowed)
	}
}

func TestGateDisabled(t *testing.T) {
	if NewGate(0, 1, nil) != nil || NewGate(1, 0, nil) != nil {
		t.Fatal("non-positive parameters should disable the gate")
	}
	var g *Gate
	for i := 0; i < 100; i++ {
		if !g.Allow() {
			t.Fatal("nil gate shed a request")
		}
	}
	if a, s := g.Stats(); a != 0 || s != 0 {
		t.Fatalf("nil gate stats = (%d, %d)", a, s)
	}
}
