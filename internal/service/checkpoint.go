package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint file names within a state directory. Save never writes
// the current file in place: the frame lands in the temp file, is
// fsynced, and only then renamed over the current name — a crash at
// any instant leaves either the old checkpoint or the new one, never a
// torn file under the current name. The previous checkpoint is rotated
// aside first so Load can fall back if the current file is later found
// corrupt (bit rot, filesystem damage — rename atomicity already rules
// out torn writes).
const (
	checkpointFile = "checkpoint.cqsc"
	checkpointPrev = "checkpoint.cqsc.prev"
	checkpointTmp  = "checkpoint.cqsc.tmp"
)

// Checkpointer persists snapshots atomically in one state directory.
// Safe for concurrent use, though the server serializes saves anyway.
type Checkpointer struct {
	dir string

	mu  sync.Mutex
	seq uint64 // last sequence number written (or adopted from a restore)
}

// NewCheckpointer creates the state directory if needed.
func NewCheckpointer(dir string) (*Checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	return &Checkpointer{dir: dir}, nil
}

// Dir returns the state directory.
func (c *Checkpointer) Dir() string { return c.dir }

// CurrentPath returns the path of the current checkpoint file.
func (c *Checkpointer) CurrentPath() string { return filepath.Join(c.dir, checkpointFile) }

// Save assigns the snapshot the next sequence number and writes it
// atomically: temp file → fsync → rotate current to .prev → rename
// temp to current → fsync directory.
func (c *Checkpointer) Save(s *Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	s.Seq = c.seq
	data := s.Encode()

	tmp := filepath.Join(c.dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: checkpoint tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("service: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("service: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: checkpoint close: %w", err)
	}

	cur := filepath.Join(c.dir, checkpointFile)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(c.dir, checkpointPrev)); err != nil {
			return fmt.Errorf("service: checkpoint rotate: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("service: checkpoint commit: %w", err)
	}
	// Persist the renames themselves; without the directory fsync a
	// power cut can forget the commit even though the data blocks hit
	// disk. Some filesystems reject directory syncs — then rename
	// durability is the platform's best effort and there is nothing
	// more to do.
	if d, err := os.Open(c.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads the best available checkpoint: the current file, or the
// rotated previous one when the current is missing or fails
// validation. It returns the snapshot and which file supplied it
// ("current" or "prev"); a state directory with no checkpoint at all
// returns (nil, "", nil) — a cold start, not an error. Both files
// present but invalid is an error: there was durable state and none of
// it is readable. The loaded sequence number is adopted, so subsequent
// saves continue the sequence instead of restarting it.
func (c *Checkpointer) Load() (*Snapshot, string, error) {
	cur := filepath.Join(c.dir, checkpointFile)
	prev := filepath.Join(c.dir, checkpointPrev)

	snap, curErr := loadFile(cur)
	if snap != nil {
		c.adopt(snap.Seq)
		return snap, "current", nil
	}
	snap, prevErr := loadFile(prev)
	if snap != nil {
		c.adopt(snap.Seq)
		return snap, "prev", nil
	}
	if os.IsNotExist(curErr) && os.IsNotExist(prevErr) {
		return nil, "", nil
	}
	return nil, "", fmt.Errorf("service: no loadable checkpoint (current: %v; prev: %v)", curErr, prevErr)
}

// adopt continues the sequence from a restored snapshot.
func (c *Checkpointer) adopt(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq > c.seq {
		c.seq = seq
	}
}

// loadFile reads and decodes one checkpoint file.
func loadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}
