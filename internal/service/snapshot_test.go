package service

import (
	"bytes"
	"math"
	"testing"
)

func testSnapshot() *Snapshot {
	return &Snapshot{SimNow: 86400.25, Seq: 7, Payload: []byte("estimator history bytes")}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := testSnapshot()
	got, err := DecodeSnapshot(src.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.SimNow != src.SimNow || got.Seq != src.Seq || !bytes.Equal(got.Payload, src.Payload) {
		t.Fatalf("round trip: got %+v, want %+v", got, src)
	}
}

func TestSnapshotEmptyPayloadRoundTrip(t *testing.T) {
	src := &Snapshot{SimNow: 0, Seq: 1}
	got, err := DecodeSnapshot(src.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.SimNow != 0 || got.Seq != 1 || len(got.Payload) != 0 {
		t.Fatalf("round trip: got %+v", got)
	}
}

// TestSnapshotRejectsEveryBitFlip is the exhaustive single-bit-flip
// property: flipping any one bit anywhere in a valid frame must make
// DecodeSnapshot reject it. Flips in the magic/version fail the
// equality checks, flips in the stored CRC no longer match the body,
// and flips anywhere in the body (including the declared payload
// length) are caught by CRC-32, which detects all single-bit errors.
func TestSnapshotRejectsEveryBitFlip(t *testing.T) {
	frame := testSnapshot().Encode()
	for i := range frame {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << b
			if _, err := DecodeSnapshot(mut); err == nil {
				t.Fatalf("flip of byte %d bit %d decoded successfully", i, b)
			}
		}
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	frame := testSnapshot().Encode()
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeSnapshot(frame[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(frame))
		}
	}
}

func TestSnapshotRejectsTrailingBytes(t *testing.T) {
	frame := testSnapshot().Encode()
	for _, extra := range [][]byte{{0}, {1, 2, 3, 4}} {
		if _, err := DecodeSnapshot(append(append([]byte(nil), frame...), extra...)); err == nil {
			t.Fatalf("%d trailing bytes decoded successfully", len(extra))
		}
	}
}

// TestSnapshotRejectsBadSimNow: a frame can be internally consistent
// (valid CRC) yet carry a nonsense clock; Decode still rejects it.
func TestSnapshotRejectsBadSimNow(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		frame := (&Snapshot{SimNow: bad, Seq: 1, Payload: []byte("p")}).Encode()
		if _, err := DecodeSnapshot(frame); err == nil {
			t.Fatalf("SimNow %v decoded successfully", bad)
		}
	}
}
