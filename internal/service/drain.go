package service

import (
	"sync"
	"time"

	"cellqos/internal/clock"
)

// Drainer separates intake from in-flight work so shutdown can first
// stop accepting and then wait — bounded — for the work already
// accepted. Admission jobs bracket themselves with Enter/Exit; Drain
// flips the intake gate and blocks until the in-flight count reaches
// zero or the timeout passes.
type Drainer struct {
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{}
	closed   bool
}

// NewDrainer builds a Drainer accepting work.
func NewDrainer() *Drainer {
	return &Drainer{idle: make(chan struct{})}
}

// Enter registers one unit of in-flight work; false means the drainer
// is already draining and the work must be rejected.
func (d *Drainer) Enter() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return false
	}
	d.inflight++
	return true
}

// Exit retires one unit of in-flight work.
func (d *Drainer) Exit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inflight--
	if d.inflight < 0 {
		panic("service: Drainer.Exit without matching Enter")
	}
	d.signalIfIdle()
}

// Inflight returns the current in-flight count.
func (d *Drainer) Inflight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inflight
}

// signalIfIdle closes the idle channel once drained; callers hold mu.
func (d *Drainer) signalIfIdle() {
	if d.draining && d.inflight == 0 && !d.closed {
		d.closed = true
		close(d.idle)
	}
}

// drainPoll bounds the latency between a straggler's Exit and Drain
// noticing the timeout; the idle channel delivers the common
// fully-drained case without polling at all.
const drainPoll = time.Millisecond

// Drain stops intake and waits until in-flight work reaches zero,
// returning false if the timeout passes first. Time is measured on the
// supplied clock (nil = wall), so a clock.Manual drains at test speed.
// Drain is idempotent; intake never reopens.
func (d *Drainer) Drain(c clock.Clock, timeout time.Duration) bool {
	if c == nil {
		c = clock.Wall{}
	}
	d.mu.Lock()
	d.draining = true
	d.signalIfIdle()
	d.mu.Unlock()
	start := c.Now()
	for {
		select {
		case <-d.idle:
			return true
		default:
		}
		if c.Since(start) >= timeout {
			return false
		}
		c.Sleep(drainPoll)
	}
}
