package service

import (
	"fmt"

	"cellqos/internal/core"
	"cellqos/internal/topology"
)

// MeshPeers implements core.Peers by direct in-process calls between
// the engines a Server hosts — the single-process deployment where all
// of a metro area's base stations share one binary and no signaling
// network sits between them. The soak harness and the crash-recovery
// tests use it to exercise full Eq. 5/6 neighbor traffic without TCP;
// cmd/bsnet's serve mode wires signaling.BSNode peers instead.
type MeshPeers struct {
	top     *topology.Topology
	id      topology.CellID
	engines []*core.Engine
	peers   []core.Peers // aligned with engines; for recursive recompute
}

// NewMeshCells builds one Cell per topology cell, each wired to its
// neighbors through a MeshPeers view. build constructs the engine for
// a cell given its id and degree.
func NewMeshCells(top *topology.Topology, build func(id topology.CellID, degree int) *core.Engine) []Cell {
	n := top.NumCells()
	engines := make([]*core.Engine, n)
	peers := make([]core.Peers, n)
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		id := topology.CellID(i)
		engines[i] = build(id, top.Degree(id))
	}
	for i := 0; i < n; i++ {
		peers[i] = &MeshPeers{top: top, id: topology.CellID(i), engines: engines, peers: peers}
	}
	for i := 0; i < n; i++ {
		cells[i] = Cell{Engine: engines[i], Peers: peers[i]}
	}
	return cells
}

// neighbor resolves a local index to the neighbor's engine and the
// local index of this cell as seen from there.
func (m *MeshPeers) neighbor(li topology.LocalIndex) (*core.Engine, topology.LocalIndex, topology.CellID) {
	gid, ok := m.top.FromLocal(m.id, li)
	if !ok {
		panic(fmt.Sprintf("service: bad local index %d for cell %d", li, m.id))
	}
	toward, ok := m.top.LocalOf(gid, m.id)
	if !ok {
		panic("service: asymmetric neighborhood")
	}
	return m.engines[gid], toward, gid
}

// OutgoingReservation implements core.Peers (Eq. 5 at the neighbor).
func (m *MeshPeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	nb, toward, _ := m.neighbor(li)
	return nb.OutgoingReservation(now, toward, test), true
}

// Snapshot implements core.Peers.
func (m *MeshPeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	nb, _, _ := m.neighbor(li)
	return nb.UsedBandwidth(), nb.Capacity(), nb.LastTargetReservation(), true
}

// RecomputeReservation implements core.Peers: the neighbor recomputes
// its own B_r with its own peers view.
func (m *MeshPeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	nb, _, gid := m.neighbor(li)
	br := nb.ComputeTargetReservation(now, m.peers[gid])
	return nb.UsedBandwidth(), nb.Capacity(), br, true
}

// MaxSojourn implements core.Peers.
func (m *MeshPeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	nb, _, _ := m.neighbor(li)
	return nb.MaxSojourn(now), true
}
