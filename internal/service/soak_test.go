// Soak harness: repeated crash-and-restart service cycles over a
// faulty signaling mesh, climbing the internal/faults chaos ladder.
// Every cycle must conserve its intake exactly, drain cleanly, flush a
// final checkpoint, and restore into the next cycle; across the whole
// soak the process must not leak goroutines or grow its heap beyond a
// fixed bound.
//
// The default run is a CI-sized smoke (a few cycles, one pass up the
// ladder). Set CELLQOS_SOAK to a duration ("60s", "10m") to keep
// cycling until the wall budget is spent: `make soak` / `make
// soak-smoke`.
package service_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/faults"
	"cellqos/internal/predict"
	"cellqos/internal/service"
	"cellqos/internal/signaling"
	"cellqos/internal/testleak"
	"cellqos/internal/topology"
)

// soakRungs is the chaos ladder: each restart cycle runs under the next
// rung's fault profile, wrapping around for long soaks. Rung 0 is
// fault-free so the first checkpoint chain starts from a clean cycle.
var soakRungs = []faults.Config{
	{},
	{Drop: 0.05},
	{Drop: 0.15, Corrupt: 0.02},
	{Drop: 0.30, Corrupt: 0.05, Delay: 200 * time.Microsecond},
}

// soakDuration returns the wall budget: the CELLQOS_SOAK duration, or
// 0 for the default smoke (one pass up the ladder, no wall target).
func soakDuration(t *testing.T) time.Duration {
	v := os.Getenv("CELLQOS_SOAK")
	if v == "" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		t.Fatalf("CELLQOS_SOAK=%q: %v", v, err)
	}
	return d
}

// soakDeployment is one cycle's process: signaling nodes wired through
// faults.Pipe links, exposed to the service as cells.
type soakDeployment struct {
	nodes []*signaling.BSNode
	cells []service.Cell
}

func newSoakDeployment(top *topology.Topology, rung faults.Config, seed uint64) *soakDeployment {
	d := &soakDeployment{nodes: make([]*signaling.BSNode, top.NumCells())}
	for i := range d.nodes {
		d.nodes[i] = signaling.NewBSNode(topology.CellID(i), top, core.Config{
			Capacity: 100, Policy: core.AC3, PHDTarget: 0.01, TStart: 1,
			Estimation: predict.Config{Tint: math.Inf(1), NQuad: 16},
		})
		// Bounded retries: under frame loss a peer query must fail fast
		// and degrade rather than stall the admission worker.
		d.nodes[i].SetCallPolicy(signaling.CallPolicy{
			Timeout: 10 * time.Millisecond, MaxAttempts: 2,
			Backoff: time.Millisecond, JitterSeed: seed,
		})
	}
	n := 0
	for _, a := range d.nodes {
		for _, nbID := range top.Neighbors(a.ID()) {
			if nbID <= a.ID() {
				continue
			}
			b := d.nodes[nbID]
			ca, cb := rung, rung
			ca.Seed = seed + uint64(n)*2 + 1
			cb.Seed = seed + uint64(n)*2 + 2
			n++
			la, lb := faults.Pipe(ca, cb)
			a.Attach(signaling.NodeID(b.ID()), la)
			b.Attach(signaling.NodeID(a.ID()), lb)
		}
	}
	for _, node := range d.nodes {
		d.cells = append(d.cells, service.Cell{Engine: node.Engine(), Peers: node.Peers()})
	}
	return d
}

func (d *soakDeployment) close() {
	for _, n := range d.nodes {
		n.Close()
	}
}

// TestSoakChaosLadder is the soak: service cycles over an increasingly
// hostile mesh, each cycle restoring the previous cycle's checkpoint
// (the crash-and-restart loop), with exact accounting and leak gates.
func TestSoakChaosLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness")
	}
	defer testleak.Check(t)()

	var m0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	const cycleEvents = 600
	top := topology.Ring(5)
	stateDir := t.TempDir()
	w := clock.Wall{}
	start := w.Now()
	budget := soakDuration(t)
	minCycles := len(soakRungs) // at least one full pass up the ladder

	var totalEvents, totalOffered, totalHandled uint64
	simNow := 0.0
	lastSeq := uint64(0)
	for cycle := 0; cycle < minCycles || (budget > 0 && w.Since(start) < budget); cycle++ {
		rung := soakRungs[cycle%len(soakRungs)]
		dep := newSoakDeployment(top, rung, uint64(cycle)*1000+1)

		ck, err := service.NewCheckpointer(stateDir)
		if err != nil {
			t.Fatal(err)
		}
		srv := service.New(service.Config{
			Cells:        dep.cells,
			Checkpointer: ck,
			Gate:         service.NewGate(5000, 100000, nil),
			DrainTimeout: 30 * time.Second,
			Workers:      2,
			Seed:         uint64(cycle) + 1,
			Audit:        true,
		})
		info, err := srv.Restore()
		if err != nil {
			t.Fatalf("cycle %d: restore: %v", cycle, err)
		}
		if cycle == 0 {
			if info.Found {
				t.Fatalf("cycle 0 found a checkpoint in a fresh dir: %+v", info)
			}
		} else {
			if !info.Found || info.Source != "current" {
				t.Fatalf("cycle %d: restore info %+v", cycle, info)
			}
			if info.Seq != lastSeq {
				t.Fatalf("cycle %d: restored seq %d, previous cycle wrote %d", cycle, info.Seq, lastSeq)
			}
			if info.SimNow < simNow {
				t.Fatalf("cycle %d: resume sim time %v went backward (was %v)", cycle, info.SimNow, simNow)
			}
		}
		srv.SetTime(service.NewStepSource(info.SimNow, 1))

		rep := srv.Serve(cycleEvents, nil)
		dep.close()

		// Every cycle — at every rung — must conserve intake exactly,
		// drain in time, and flush its final checkpoint. Faults may
		// degrade decisions (exit 3) but never break the lifecycle.
		if rep.ExitCode != service.ExitClean && rep.ExitCode != service.ExitDegraded {
			t.Fatalf("cycle %d (rung %+v): exit %d, err %q", cycle, rung, rep.ExitCode, rep.Err)
		}
		if !rep.DrainOK || !rep.FinalFlushOK {
			t.Fatalf("cycle %d: drain %v, flush %v", cycle, rep.DrainOK, rep.FinalFlushOK)
		}
		if rep.Offered != rep.Admitted+rep.Blocked+rep.Shed {
			t.Fatalf("cycle %d: conservation broke: offered %d != %d+%d+%d",
				cycle, rep.Offered, rep.Admitted, rep.Blocked, rep.Shed)
		}
		if rep.Events != cycleEvents {
			t.Fatalf("cycle %d: events %d, want %d", cycle, rep.Events, cycleEvents)
		}
		totalEvents += rep.Events
		totalOffered += rep.Offered
		totalHandled += rep.Admitted + rep.Blocked + rep.Shed
		simNow = rep.FinalSimNow
		lastSeq = rep.Seq
		t.Logf("cycle %d rung %d: exit %d, offered %d (adm %d blk %d shed %d), degraded %d, seq %d",
			cycle, cycle%len(soakRungs), rep.ExitCode, rep.Offered,
			rep.Admitted, rep.Blocked, rep.Shed, rep.Degraded, rep.Seq)
	}

	if totalOffered != totalHandled {
		t.Fatalf("soak totals: offered %d != handled %d", totalOffered, totalHandled)
	}
	if totalEvents < uint64(minCycles*cycleEvents) {
		t.Fatalf("soak ran only %d events", totalEvents)
	}

	// Heap gate: after the deployments are gone, the soak must not have
	// pinned memory proportional to its length.
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if growth := int64(m1.HeapAlloc) - int64(m0.HeapAlloc); growth > 64<<20 {
		t.Fatalf("heap grew %d bytes over the soak (gate: 64 MiB)", growth)
	}
}

// TestSoakCorruptCheckpointMidChain: a corrupted current checkpoint
// between cycles falls back to the rotated .prev, the restore audits
// clean, and the cycle reports the degradation in its exit code.
func TestSoakCorruptCheckpointMidChain(t *testing.T) {
	defer testleak.Check(t)()
	top := topology.Ring(5)
	stateDir := t.TempDir()

	run := func(cycle int) (*service.Report, service.RestoreInfo) {
		dep := newSoakDeployment(top, faults.Config{}, uint64(cycle)*1000+1)
		defer dep.close()
		ck, err := service.NewCheckpointer(stateDir)
		if err != nil {
			t.Fatal(err)
		}
		srv := service.New(service.Config{
			Cells: dep.cells, Checkpointer: ck,
			DrainTimeout: 30 * time.Second, Seed: uint64(cycle) + 1, Audit: true,
		})
		info, err := srv.Restore()
		if err != nil {
			t.Fatalf("cycle %d: restore: %v", cycle, err)
		}
		srv.SetTime(service.NewStepSource(info.SimNow, 1))
		return srv.Serve(400, nil), info
	}

	// Two clean cycles build the current + prev pair.
	if rep, _ := run(0); rep.ExitCode != service.ExitClean {
		t.Fatalf("cycle 0 exit %d (%s)", rep.ExitCode, rep.Err)
	}
	if rep, _ := run(1); rep.ExitCode != service.ExitClean {
		t.Fatalf("cycle 1 exit %d (%s)", rep.ExitCode, rep.Err)
	}

	// Bit rot on the current file: the chain must survive via .prev.
	path := fmt.Sprintf("%s/checkpoint.cqsc", stateDir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil { //cellqos:allow crashorder deliberate corruption: the soak run must recover from a flipped byte
		t.Fatal(err)
	}

	rep, info := run(2)
	if info.Source != "prev" {
		t.Fatalf("restore source %q, want prev", info.Source)
	}
	if rep.ExitCode != service.ExitDegraded {
		t.Fatalf("exit %d after a prev-file restore, want %d", rep.ExitCode, service.ExitDegraded)
	}
	if !rep.DrainOK || !rep.FinalFlushOK {
		t.Fatalf("lifecycle broke: %+v", rep)
	}
}
