package service

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/testleak"
	"cellqos/internal/topology"
)

// meshCells builds a 4-cell ring of AC3 engines with a stationary
// estimator capped at nquad quadruplets per pair. Each engine gets its
// own lock so worker goroutines and the drive loop can interleave; the
// engines never hold a lock across a peer call, so per-engine locks
// cannot deadlock.
func meshCells(nquad int) []Cell {
	return NewMeshCells(topology.Ring(4), func(id topology.CellID, degree int) *core.Engine {
		return core.NewEngine(core.Config{
			Capacity: 100, Degree: degree, Policy: core.AC3,
			PHDTarget: 0.01, TStart: 1,
			Estimation: predict.Config{Tint: math.Inf(1), NQuad: nquad},
			Lock:       &sync.Mutex{},
		})
	})
}

// TestServeDeterministicDrive: a bounded inline drive conserves its
// intake exactly, checkpoints on the paced cadence, and exits clean.
func TestServeDeterministicDrive(t *testing.T) {
	defer testleak.Check(t)()
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc := clock.NewManual(time.Unix(0, 0))
	srv := New(Config{
		Cells:           meshCells(32),
		Time:            NewStepSource(0, 1),
		Clock:           mc,
		Checkpointer:    ck,
		CheckpointEvery: 10 * time.Millisecond,
		Pace:            time.Millisecond, // advances the Manual clock: checkpoint every 10 events
		Seed:            42,
		Audit:           true,
	})
	rep := srv.Serve(400, nil)

	if rep.ExitCode != ExitClean {
		t.Fatalf("exit = %d (err %q), want clean", rep.ExitCode, rep.Err)
	}
	if rep.Events != 400 {
		t.Fatalf("events = %d, want 400", rep.Events)
	}
	if rep.Offered != rep.Admitted+rep.Blocked+rep.Shed {
		t.Fatalf("conservation: offered %d != admitted %d + blocked %d + shed %d",
			rep.Offered, rep.Admitted, rep.Blocked, rep.Shed)
	}
	if rep.Offered != 100 || rep.HandOffs != 300 {
		t.Fatalf("offered %d / hand-offs %d, want 100 / 300 (NewCallEvery=4)", rep.Offered, rep.HandOffs)
	}
	if rep.Shed != 0 || rep.Degraded != 0 {
		t.Fatalf("shed %d / degraded %d on an unloaded in-process mesh", rep.Shed, rep.Degraded)
	}
	if !rep.DrainOK || !rep.FinalFlushOK {
		t.Fatalf("drain %v / flush %v", rep.DrainOK, rep.FinalFlushOK)
	}
	// Pace 1 ms × 400 events at a 10 ms cadence → ~40 periodic cuts
	// plus the final flush, numbered consecutively.
	if rep.Checkpoints < 10 {
		t.Fatalf("checkpoints = %d, want the periodic cadence to fire", rep.Checkpoints)
	}
	if rep.Seq != rep.Checkpoints {
		t.Fatalf("seq %d != checkpoints %d", rep.Seq, rep.Checkpoints)
	}
	snap, source, err := ck.Load()
	if err != nil || source != "current" {
		t.Fatalf("load after serve: source %q err %v", source, err)
	}
	if snap.SimNow != rep.FinalSimNow {
		t.Fatalf("final checkpoint SimNow %v != report %v", snap.SimNow, rep.FinalSimNow)
	}
}

// TestServeStopChannel: a stop signal pending before the first event
// still shuts down gracefully (budget 0 means "until stopped").
func TestServeStopChannel(t *testing.T) {
	defer testleak.Check(t)()
	stop := make(chan struct{})
	close(stop)
	srv := New(Config{Cells: meshCells(32), Time: NewStepSource(0, 1), Clock: clock.NewManual(time.Unix(0, 0))})
	rep := srv.Serve(0, stop)
	if rep.Events != 0 {
		t.Fatalf("events = %d after pre-closed stop", rep.Events)
	}
	if rep.ExitCode != ExitClean {
		t.Fatalf("exit = %d, want clean", rep.ExitCode)
	}
}

// TestServeWorkersDrainCleanly: the production shape — admissions on a
// worker pool — still conserves intake exactly and drains at shutdown.
func TestServeWorkersDrainCleanly(t *testing.T) {
	defer testleak.Check(t)()
	srv := New(Config{
		Cells:   meshCells(32),
		Time:    NewStepSource(0, 1),
		Workers: 4,
		Seed:    7,
		Audit:   true,
	})
	rep := srv.Serve(2000, nil)
	if rep.ExitCode != ExitClean {
		t.Fatalf("exit = %d (err %q), want clean", rep.ExitCode, rep.Err)
	}
	if !rep.DrainOK {
		t.Fatal("drain failed")
	}
	if rep.Offered != rep.Admitted+rep.Blocked+rep.Shed {
		t.Fatalf("conservation: offered %d != admitted %d + blocked %d + shed %d",
			rep.Offered, rep.Admitted, rep.Blocked, rep.Shed)
	}
	if rep.Offered != 500 {
		t.Fatalf("offered = %d, want 500", rep.Offered)
	}
}

// TestServeGateSheds: with an exhausted gate and a frozen clock, every
// new call beyond the burst is shed — counted, not lost — and the run
// reports degradation.
func TestServeGateSheds(t *testing.T) {
	defer testleak.Check(t)()
	mc := clock.NewManual(time.Unix(0, 0))
	srv := New(Config{
		Cells: meshCells(32),
		Time:  NewStepSource(0, 1),
		Clock: mc,
		Gate:  NewGate(2, 0.001, mc), // burst of 2, effectively no refill
		Seed:  42,
	})
	rep := srv.Serve(40, nil) // 10 new calls
	if rep.Offered != 10 {
		t.Fatalf("offered = %d, want 10", rep.Offered)
	}
	if rep.Shed != 8 {
		t.Fatalf("shed = %d, want 8 (burst capacity 2)", rep.Shed)
	}
	if rep.Offered != rep.Admitted+rep.Blocked+rep.Shed {
		t.Fatalf("conservation: offered %d != admitted %d + blocked %d + shed %d",
			rep.Offered, rep.Admitted, rep.Blocked, rep.Shed)
	}
	if rep.ExitCode != ExitDegraded {
		t.Fatalf("exit = %d, want degraded after shedding", rep.ExitCode)
	}
}

func TestServeRestoreColdStart(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Cells: meshCells(32), Time: NewStepSource(0, 1), Checkpointer: ck})
	info, err := srv.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info.Found {
		t.Fatalf("cold start reported a restore: %+v", info)
	}
}

// TestServeRestoreRejectsCellCountMismatch: a checkpoint from a 4-cell
// deployment must not restore into a differently-shaped server.
func TestServeRestoreRejectsCellCountMismatch(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Cells: meshCells(32), Time: NewStepSource(0, 1), Clock: clock.NewManual(time.Unix(0, 0)), Checkpointer: ck})
	if rep := a.Serve(40, nil); rep.ExitCode != ExitClean {
		t.Fatalf("setup serve failed: %+v", rep)
	}

	two := meshCells(32)[:2]
	b := New(Config{Cells: two, Time: NewStepSource(0, 1), Checkpointer: ck})
	_, err = b.Restore()
	if err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("mismatched restore error = %v", err)
	}
}

// TestServeCrashRecoveryReconverges is the acceptance-criteria test at
// the package level: run a server partway, abandon it (the in-process
// stand-in for kill -9 — the cmd/bsnet test does it with a real
// SIGKILL), restore a fresh server from its checkpoint directory, and
// drive the full workload. Because the estimator selection is
// translation-invariant under a stationary configuration and the small
// NQuad cap turns the quadruplet cache over completely during the
// replay, the restored server's final B_r must match a never-crashed
// control to floating-point noise, and a live admission probe must
// decide identically.
func TestServeCrashRecoveryReconverges(t *testing.T) {
	defer testleak.Check(t)()
	const (
		nquad      = 8
		seed       = 7
		budgetFull = 600
		budgetPre  = 200
		hold       = 30.0
	)
	cfg := func(cells []Cell, ck *Checkpointer, ts TimeSource) Config {
		return Config{
			Cells: cells, Time: ts, Clock: clock.NewManual(time.Unix(0, 0)),
			Checkpointer: ck, CheckpointEvery: 10 * time.Millisecond,
			Pace: time.Millisecond, Seed: seed, CallHold: hold, Audit: true,
		}
	}

	// Control: never crashes, sees the whole workload.
	control := meshCells(nquad)
	ctrlRep := New(cfg(control, nil, NewStepSource(0, 1))).Serve(budgetFull, nil)
	if ctrlRep.ExitCode != ExitClean {
		t.Fatalf("control exit = %d (err %q)", ctrlRep.ExitCode, ctrlRep.Err)
	}
	if ctrlRep.Blocked != 0 {
		// The comparison below assumes both runs admit everything (the
		// mesh is far under capacity); a blocked call would let the
		// connection tables diverge silently.
		t.Fatalf("control blocked %d calls; the load assumption broke", ctrlRep.Blocked)
	}

	// Crashed run: serve the first budgetPre events with checkpointing,
	// then abandon the server and its engines where they stand.
	dir := t.TempDir()
	ckA, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	cellsA := meshCells(nquad)
	repA := New(cfg(cellsA, ckA, NewStepSource(0, 1))).Serve(budgetPre, nil)
	if repA.ExitCode != ExitClean || repA.Checkpoints == 0 {
		t.Fatalf("pre-crash run: %+v", repA)
	}

	// Restart: fresh engines, restore from disk, verify the restore.
	cellsB := meshCells(nquad)
	ckB, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvB := New(cfg(cellsB, ckB, nil))
	info, err := srvB.Restore() // Audit on: history fixed point must hold
	if err != nil {
		t.Fatal(err)
	}
	if !info.Found || info.Source != "current" || info.Seq != repA.Seq {
		t.Fatalf("restore info = %+v (pre-crash seq %d)", info, repA.Seq)
	}
	for i := range cellsB {
		if got, want := cellsB[i].Engine.HistoryLastEvent(), cellsA[i].Engine.HistoryLastEvent(); got != want {
			t.Fatalf("cell %d restored last event %v, want %v", i, got, want)
		}
	}

	// Resume: the clock continues at the restore point, the workload
	// RNG replays from the seed. After the full budget the NQuad=8
	// caches hold only replay-era samples, which match the control's
	// newest samples value-for-value.
	srvB.SetTime(NewStepSource(info.SimNow, 1))
	repB := srvB.Serve(budgetFull, nil)
	if repB.ExitCode != ExitClean {
		t.Fatalf("restored run exit = %d (err %q)", repB.ExitCode, repB.Err)
	}
	if repB.Blocked != 0 {
		t.Fatalf("restored run blocked %d calls; the load assumption broke", repB.Blocked)
	}
	if repB.Seq <= repA.Seq {
		t.Fatalf("restored run's checkpoints (seq %d) did not continue the sequence (%d)", repB.Seq, repA.Seq)
	}

	// B_r reconvergence, cell by cell.
	for i := range control {
		want := control[i].Engine.ComputeTargetReservation(ctrlRep.FinalSimNow, control[i].Peers)
		got := cellsB[i].Engine.ComputeTargetReservation(repB.FinalSimNow, cellsB[i].Peers)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("cell %d: restored B_r = %v, control = %v", i, got, want)
		}
	}
	// A live admission must decide identically on both meshes.
	for i := range control {
		dc := control[i].Engine.AdmitNew(ctrlRep.FinalSimNow+1, 4, control[i].Peers)
		db := cellsB[i].Engine.AdmitNew(repB.FinalSimNow+1, 4, cellsB[i].Peers)
		if dc.Admitted != db.Admitted || dc.Degraded != db.Degraded {
			t.Fatalf("cell %d: probe decision diverged: control %+v, restored %+v", i, dc, db)
		}
	}
}

// TestServeRestoreFromPrevExitsDegraded: a corrupt current checkpoint
// falls back to the rotated previous one, and the run's exit code
// reports the degradation.
func TestServeRestoreFromPrevExitsDegraded(t *testing.T) {
	defer testleak.Check(t)()
	dir := t.TempDir()
	ckA, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{
		Cells: meshCells(32), Time: NewStepSource(0, 1),
		Clock: clock.NewManual(time.Unix(0, 0)), Checkpointer: ckA,
		CheckpointEvery: 5 * time.Millisecond, Pace: time.Millisecond, Seed: 3,
	})
	if rep := a.Serve(100, nil); rep.Checkpoints < 2 {
		t.Fatalf("setup wrote %d checkpoints, need ≥ 2 for a .prev", rep.Checkpoints)
	}
	corruptFile(t, ckA.CurrentPath())

	ckB, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{
		Cells: meshCells(32), Time: nil,
		Clock: clock.NewManual(time.Unix(0, 0)), Checkpointer: ckB, Audit: true,
	})
	info, err := b.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "prev" {
		t.Fatalf("source = %q, want prev", info.Source)
	}
	b.SetTime(NewStepSource(info.SimNow, 1))
	rep := b.Serve(50, nil)
	if rep.ExitCode != ExitDegraded {
		t.Fatalf("exit = %d, want degraded after a prev-file restore", rep.ExitCode)
	}
	if rep.RestoredFrom != "prev" || rep.RestoredSeq != info.Seq {
		t.Fatalf("report restore fields: %+v", rep)
	}
}
