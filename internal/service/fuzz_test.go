package service

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode: DecodeSnapshot must never panic, and any frame it
// accepts must be a fixed point — re-encoding the decoded snapshot
// reproduces the input byte-for-byte (the header is fully determined by
// the body, and the body by the decoded fields). Together with the
// exhaustive bit-flip test this pins down the frame validation: there
// is exactly one accepted encoding per snapshot.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(testSnapshot().Encode())
	f.Add((&Snapshot{SimNow: 0, Seq: 1}).Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte("CQSC arbitrary junk that starts like the magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if snap != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		re := snap.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not a fixed point:\n in  %x\n out %x", data, re)
		}
		// The decoded payload is a copy: mutating it must not alter
		// what a second decode of the same bytes sees.
		for i := range snap.Payload {
			snap.Payload[i] ^= 0xff
		}
		again, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Payload) != len(snap.Payload) {
			t.Fatal("payload length changed between decodes")
		}
	})
}
