package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasics(t *testing.T) {
	c := New("P_CB vs load", "offered load", "probability")
	c.Add("AC3", []float64{60, 100, 200, 300}, []float64{0.01, 0.1, 0.4, 0.7})
	out := c.Render()
	if !strings.Contains(out, "P_CB vs load") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* AC3") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "offered load") {
		t.Fatal("x label missing")
	}
	if strings.Count(out, "*") < 4 {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := New("empty", "", "")
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output:\n%s", out)
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	c := New("", "", "")
	c.Add("a", []float64{0, 1}, []float64{0, 10})
	c.Add("b", []float64{0, 1}, []float64{10, 0})
	out := c.Render()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("per-series markers missing:\n%s", out)
	}
}

func TestLogYAxisLabels(t *testing.T) {
	c := New("", "", "")
	c.LogY = true
	c.Add("p", []float64{1, 2, 3}, []float64{0.0001, 0.01, 1})
	out := c.Render()
	// Tick labels back-transform to decades.
	if !strings.Contains(out, "1") || !strings.Contains(out, "0.0001") {
		t.Fatalf("log ticks missing:\n%s", out)
	}
}

func TestLogYClampsNonPositive(t *testing.T) {
	c := New("", "", "")
	c.LogY = true
	c.Add("p", []float64{1, 2}, []float64{0, 0.5}) // zero must clamp, not NaN
	out := c.Render()
	if strings.Contains(out, "NaN") {
		t.Fatalf("NaN leaked:\n%s", out)
	}
}

func TestMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	New("", "", "").Add("bad", []float64{1}, []float64{1, 2})
}

func TestConstantSeries(t *testing.T) {
	c := New("", "", "")
	c.Add("flat", []float64{1, 2, 3}, []float64{5, 5, 5})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series invisible:\n%s", out)
	}
}

func TestRenderDimensions(t *testing.T) {
	c := New("", "", "")
	c.Width, c.Height = 30, 8
	c.Add("s", []float64{0, 1, 2}, []float64{1, 4, 9})
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	// 8 plot rows + axis + x labels + legend (no title/labels here... axis labels line appears only with labels).
	if len(lines) != 8+3 {
		t.Fatalf("line count = %d:\n%s", len(lines), c.Render())
	}
}

// Property: Render never panics and always contains every series marker
// for arbitrary finite data.
func TestPropertyRenderTotal(t *testing.T) {
	f := func(xs []float64, logy bool) bool {
		// sanitize: drop NaN/Inf inputs, quick can generate extremes
		clean := xs[:0]
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		xs = clean
		c := New("t", "x", "y")
		c.LogY = logy
		ys := make([]float64, len(xs))
		for i, v := range xs {
			ys[i] = math.Abs(v) + 0.001
		}
		idx := make([]float64, len(xs))
		for i := range idx {
			idx[i] = float64(i)
		}
		c.Add("s", idx, ys)
		out := c.Render()
		if len(xs) == 0 {
			return strings.Contains(out, "(no data)")
		}
		return strings.Contains(out, "* s") && strings.Contains(out, "*")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
