// Package plot renders line charts as ASCII/Unicode text, so the
// regenerated paper figures can be eyeballed in a terminal next to the
// originals. It supports linear and logarithmic y-axes (the paper's
// probability plots are log-scale), multiple series with distinct
// markers, axis tick labels and a legend.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// markers cycle across series.
var markers = []byte{'*', '+', 'x', 'o', '#', '@', '%', '&'}

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a renderable chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots y on a log10 axis; non-positive values are clamped to
	// FloorY (which must then be positive).
	LogY bool
	// FloorY is the smallest plottable y in LogY mode (default 1e-5).
	FloorY float64
	// Width and Height are the plot-area size in characters (defaults
	// 64×20).
	Width, Height int

	series []Series
}

// New creates a chart.
func New(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series; x and y must have equal length.
func (c *Chart) Add(name string, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("plot: series %q has %d x vs %d y", name, len(x), len(y)))
	}
	c.series = append(c.series, Series{Name: name, X: x, Y: y})
}

// SeriesCount returns the number of series added.
func (c *Chart) SeriesCount() int { return len(c.series) }

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

func (c *Chart) floorY() float64 {
	if c.FloorY > 0 {
		return c.FloorY
	}
	return 1e-5
}

// yTransform maps a data y to plot space.
func (c *Chart) yTransform(y float64) float64 {
	if !c.LogY {
		return y
	}
	if y < c.floorY() {
		y = c.floorY()
	}
	return math.Log10(y)
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.dims()
	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			x, y := s.X[i], c.yTransform(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	// Plot points; later series overwrite earlier at collisions.
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], c.yTransform(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			grid[row][col] = m
		}
	}

	yLabels := c.yAxisLabels(ymin, ymax, h)
	labelW := 0
	for _, l := range yLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for r := 0; r < h; r++ {
		fmt.Fprintf(&b, "%*s |%s\n", labelW, yLabels[r], string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	// X axis: min, mid, max.
	xAxis := fmt.Sprintf("%-*.4g%*s%*.4g",
		w/3, xmin, w/3, fmt.Sprintf("%.4g", (xmin+xmax)/2), w-2*(w/3), xmax)
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), xAxis)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	// Legend.
	var legend []string
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "   "))
	return b.String()
}

// yAxisLabels builds one label per row, populated at a few tick rows.
func (c *Chart) yAxisLabels(ymin, ymax float64, h int) []string {
	labels := make([]string, h)
	ticks := 4
	if h < 8 {
		ticks = 2
	}
	for t := 0; t <= ticks; t++ {
		row := int(math.Round(float64(t) / float64(ticks) * float64(h-1)))
		v := ymax - (ymax-ymin)*float64(t)/float64(ticks)
		if c.LogY {
			labels[row] = fmt.Sprintf("%.3g", math.Pow(10, v))
		} else {
			labels[row] = fmt.Sprintf("%.3g", v)
		}
	}
	return labels
}
