package predict

import (
	"math"
	"testing"
)

// TestRecordSelectionVisibility pins Record's return value: under a
// stationary configuration, recording into a full pair a sojourn equal
// to the one being evicted is invisible to every query the estimator
// serves and Record reports false; any other stationary record, and
// every windowed record, reports true.
func TestRecordSelectionVisibility(t *testing.T) {
	cfg := Config{Tint: math.Inf(1), NQuad: 3}
	e := New(cfg)
	// Filling the pair is always visible.
	for i, soj := range []float64{30, 30, 30} {
		if !e.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: soj}) {
			t.Fatalf("record %d into non-full pair reported invisible", i)
		}
	}
	// The pair is full of 30s; FIFO eviction drops a 30. Recording
	// another 30 replaces like with like: invisible.
	if e.Record(Quadruplet{Event: 10, Prev: 1, Next: 2, Sojourn: 30}) {
		t.Fatal("equal-sojourn replacement reported visible")
	}
	// A different sojourn changes the selection multiset: visible.
	if !e.Record(Quadruplet{Event: 11, Prev: 1, Next: 2, Sojourn: 45}) {
		t.Fatal("sojourn change reported invisible")
	}
	// The pair now holds [30, 30, 45] oldest-first; evicting a 30 while
	// adding a 30 is invisible even though the pair is not uniform.
	if e.Record(Quadruplet{Event: 12, Prev: 1, Next: 2, Sojourn: 30}) {
		t.Fatal("equal-to-evicted replacement reported visible")
	}
	// [30, 45, 30]: a 50 evicts the oldest 30 — visible — leaving
	// [45, 30, 50] with the 45 oldest.
	if !e.Record(Quadruplet{Event: 13, Prev: 1, Next: 2, Sojourn: 50}) {
		t.Fatal("new sojourn value reported invisible")
	}
	// Recording a 30 now evicts the 45: visible even though the pair
	// already contains 30s — the multiset changes.
	if !e.Record(Quadruplet{Event: 14, Prev: 1, Next: 2, Sojourn: 30}) {
		t.Fatal("eviction of a different sojourn reported invisible")
	}
}

// TestInvisibleRecordQueriesIdentical verifies the claim behind the
// visibility report: after an invisible record, every query is
// bit-identical to before.
func TestInvisibleRecordQueriesIdentical(t *testing.T) {
	cfg := Config{Tint: math.Inf(1), NQuad: 2}
	e := New(cfg)
	e.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 30})
	e.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 60})
	e.Record(Quadruplet{Event: 2, Prev: 1, Next: 1, Sojourn: 40})

	type snapshot struct {
		prob, surv, probOther, maxSoj float64
	}
	take := func() snapshot {
		return snapshot{
			prob:      e.HandOffProb(100, 1, 0, 35, 2),
			surv:      e.SurvivorWeight(100, 1, 10),
			probOther: e.HandOffProb(100, 1, 5, 50, 1),
			maxSoj:    e.MaxSojourn(100),
		}
	}
	before := take()
	// Pair (1,2) is full holding {30, 60}; oldest is 30. Record a 30.
	if e.Record(Quadruplet{Event: 50, Prev: 1, Next: 2, Sojourn: 30}) {
		t.Fatal("replacement record reported visible")
	}
	if after := take(); after != before {
		t.Fatalf("queries moved after invisible record:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestRecordWindowedAlwaysVisible: finite-T_int selections depend on
// event times, so every record must report visible.
func TestRecordWindowedAlwaysVisible(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NQuad: 2, Weights: []float64{1}}
	e := New(cfg)
	for i, soj := range []float64{30, 30, 30, 30} {
		if !e.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: soj}) {
			t.Fatalf("windowed record %d reported invisible", i)
		}
	}
}

// TestPatternSetRecordPropagatesVisibility: the day-class router must
// return its estimator's report, not invent one.
func TestPatternSetRecordPropagatesVisibility(t *testing.T) {
	ps := NewPatternSet(Config{Tint: math.Inf(1), NQuad: 1}, nil)
	if !ps.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 30}) {
		t.Fatal("first record through PatternSet reported invisible")
	}
	if ps.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 30}) {
		t.Fatal("replacement through PatternSet reported visible")
	}
}
