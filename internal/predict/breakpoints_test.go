package predict

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"cellqos/internal/topology"
)

// TestEnsureCurrentStabilizesGeneration pins the contract core's
// materialized Eq. 5 view depends on: after EnsureCurrent(t0), no query
// at the same t0 may move the generation (no lazy rebuild can fire), so
// a caller that captured the returned value can trust every subsequent
// derived read at t0.
func TestEnsureCurrentStabilizesGeneration(t *testing.T) {
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"stationary", StationaryConfig()},
		{"windowed", Config{Tint: 40, Period: 200, NwinPeriods: 1, NQuad: 30, RebuildEvery: 5}},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			e := New(tc.cfg)
			for i := 0; i < 25; i++ {
				e.Record(Quadruplet{Event: float64(i * 3), Prev: topology.LocalIndex(i % 3), Next: topology.LocalIndex(1 + i%2), Sojourn: float64(5 + i%40)})
			}
			for _, t0 := range []float64{80, 92.5, 140} {
				gen := e.EnsureCurrent(t0)
				if g := e.Generation(); g != gen {
					t.Fatalf("t0=%v: EnsureCurrent returned %d but Generation() = %d", t0, gen, g)
				}
				// Exercise every query family at the pinned t0.
				e.SurvivorWeight(t0, 1, 7)
				e.HandOffWeight(t0, 1, 2, 7, 20)
				e.SojournProb(t0, 0, 1, 3, 20)
				e.MaxSojourn(t0)
				e.AppendSojournBreakpoints(nil, t0, 2)
				if g := e.Generation(); g != gen {
					t.Fatalf("t0=%v: queries after EnsureCurrent moved the generation %d -> %d", t0, gen, g)
				}
			}
			// A Record must still move it.
			gen := e.EnsureCurrent(150)
			e.Record(Quadruplet{Event: 150, Prev: 1, Next: 2, Sojourn: 9})
			if g := e.Generation(); g == gen {
				t.Fatal("Record did not move the generation")
			}
		})
	}
}

// TestAppendSojournBreakpoints checks content and ordering: the list is
// the sorted multiset union of the prev-group's selected sojourns, and
// reusing the buffer keeps the call allocation-free.
func TestAppendSojournBreakpoints(t *testing.T) {
	e := stationary(100)
	e.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 30})
	e.Record(Quadruplet{Event: 1, Prev: 1, Next: 3, Sojourn: 10})
	e.Record(Quadruplet{Event: 2, Prev: 1, Next: 2, Sojourn: 20})
	e.Record(Quadruplet{Event: 3, Prev: 2, Next: 1, Sojourn: 99})

	got := e.AppendSojournBreakpoints(nil, 10, 1)
	want := []float64{10, 20, 30}
	if !slices.Equal(got, want) {
		t.Fatalf("breakpoints for prev 1 = %v, want %v", got, want)
	}
	if bp := e.AppendSojournBreakpoints(nil, 10, 7); len(bp) != 0 {
		t.Fatalf("breakpoints for unseen prev = %v, want empty", bp)
	}
	// Appending preserves the prefix and sorts only the tail.
	pre := []float64{-1}
	got = e.AppendSojournBreakpoints(pre, 10, 2)
	if !slices.Equal(got, []float64{-1, 99}) {
		t.Fatalf("append with prefix = %v, want [-1 99]", got)
	}
	buf := make([]float64, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		buf = e.AppendSojournBreakpoints(buf[:0], 10, 1)
	})
	if allocs != 0 {
		t.Fatalf("AppendSojournBreakpoints with a reused buffer allocated %v times per run", allocs)
	}
}

// TestQueriesPiecewiseConstantBetweenBreakpoints is the property the
// incremental view's staleness guards rest on: every Eq. 4 query from a
// prev is a step function of the extant sojourn whose discontinuities
// all lie on the group's breakpoint list — between two adjacent
// breakpoints the value is bit-identical.
func TestQueriesPiecewiseConstantBetweenBreakpoints(t *testing.T) {
	e := stationary(100)
	r := rand.New(rand.NewPCG(0xB4EA4, 7))
	for i := 0; i < 60; i++ {
		e.Record(Quadruplet{
			Event:   float64(i),
			Prev:    topology.LocalIndex(r.IntN(3)),
			Next:    topology.LocalIndex(1 + r.IntN(3)),
			Sojourn: float64(1 + r.IntN(25)),
		})
	}
	const t0, test = 100.0, 6.0
	for prev := topology.LocalIndex(0); prev < 3; prev++ {
		bp := e.AppendSojournBreakpoints(nil, t0, prev)
		// Probe points strictly inside each inter-breakpoint interval,
		// plus beyond the last breakpoint.
		probes := [][2]float64{}
		lo := 0.0
		for _, b := range append(slices.Clone(bp), bp[len(bp)-1]+10) {
			if b <= lo {
				continue
			}
			mid := lo + (b-lo)/2
			hi := math.Nextafter(b, lo) // greatest float still below b
			probes = append(probes, [2]float64{mid, hi})
			lo = b
		}
		for _, pr := range probes {
			a, b := pr[0], pr[1]
			if e.SurvivorWeight(t0, prev, a) != e.SurvivorWeight(t0, prev, b) {
				t.Fatalf("prev %d: SurvivorWeight not constant on [%v, %v]", prev, a, b)
			}
			for next := topology.LocalIndex(1); next <= 3; next++ {
				// Same-interval probes with the same +test offset keep the
				// numerator constant only when ext+test also stays inside
				// one interval; check the lower edge alone by pinning the
				// upper edge far beyond every breakpoint.
				far := bp[len(bp)-1] + 100
				wa := e.pair(prev, next)
				if wa == nil {
					continue
				}
				if wa.weightIn(a, far) != wa.weightIn(b, far) {
					t.Fatalf("prev %d -> %d: numerator lower edge not constant on [%v, %v]", prev, next, a, b)
				}
			}
			_ = test
		}
	}
}
