package predict

import (
	"math"

	"cellqos/internal/topology"
)

// DayClass labels a calendar-pattern class. The paper keeps separate
// quadruplet sets for weekdays and for weekends/holidays, whose mobility
// patterns differ (§3.1).
type DayClass int

const (
	// Weekday is the default Monday–Friday pattern (period T_day).
	Weekday DayClass = iota
	// Weekend covers Saturdays, Sundays and holidays (period T_week).
	Weekend
	numDayClasses
)

// Calendar classifies simulation times into day classes. Day 0 is the
// simulation epoch.
type Calendar interface {
	ClassAt(t float64) DayClass
}

// WeekdayOnly is a Calendar for runs that never leave the weekday
// pattern (all of the paper's experiments).
type WeekdayOnly struct{}

// ClassAt implements Calendar.
func (WeekdayOnly) ClassAt(float64) DayClass { return Weekday }

// WeekCalendar maps a repeating 7-day week: days FirstWeekendDay and
// FirstWeekendDay+1 (mod 7) are Weekend.
type WeekCalendar struct {
	// FirstWeekendDay is the zero-based day-of-week index, counted from
	// the simulation epoch, of the first weekend day (e.g. 5 when the
	// epoch is a Monday).
	FirstWeekendDay int
}

// ClassAt implements Calendar.
func (c WeekCalendar) ClassAt(t float64) DayClass {
	if t < 0 {
		t = 0
	}
	day := int(math.Floor(t/86400)) % 7
	if day == c.FirstWeekendDay%7 || day == (c.FirstWeekendDay+1)%7 {
		return Weekend
	}
	return Weekday
}

// PatternSet routes quadruplets and queries to per-day-class estimators:
// weekday observations never pollute weekend predictions and vice versa.
type PatternSet struct {
	cal  Calendar
	ests [numDayClasses]*Estimator
}

// NewPatternSet builds a PatternSet. The weekend estimator uses the same
// config with the period stretched to one week (T_week), as §3.1
// prescribes. A nil calendar defaults to WeekdayOnly.
func NewPatternSet(cfg Config, cal Calendar) *PatternSet {
	if cal == nil {
		cal = WeekdayOnly{}
	}
	weekendCfg := cfg
	if !math.IsInf(cfg.Tint, 1) {
		weekendCfg.Period = cfg.Period * 7
	}
	ps := &PatternSet{cal: cal}
	ps.ests[Weekday] = New(cfg)
	ps.ests[Weekend] = New(weekendCfg)
	return ps
}

// Estimator returns the estimator in force at time t.
func (ps *PatternSet) Estimator(t float64) *Estimator {
	return ps.ests[ps.cal.ClassAt(t)]
}

// ByClass returns the estimator for an explicit day class.
func (ps *PatternSet) ByClass(c DayClass) *Estimator { return ps.ests[c] }

// Classes returns the number of day classes the set maintains — the
// count a serializer framing one stream per class must write.
func (ps *PatternSet) Classes() int { return int(numDayClasses) }

// LastEvent returns the newest event time recorded across all classes,
// zero when every estimator is empty.
func (ps *PatternSet) LastEvent() float64 {
	last := 0.0
	for _, e := range ps.ests {
		if le := e.LastEvent(); le > last {
			last = le
		}
	}
	return last
}

// Record routes a quadruplet to the estimator of its event time's
// class, propagating that estimator's selection-visibility report (see
// Estimator.Record).
func (ps *PatternSet) Record(q Quadruplet) bool {
	return ps.Estimator(q.Event).Record(q)
}

// HandOffProb evaluates Eq. 4 against the estimator in force at t0.
func (ps *PatternSet) HandOffProb(t0 float64, prev topology.LocalIndex, extSoj, test float64, next topology.LocalIndex) float64 {
	return ps.Estimator(t0).HandOffProb(t0, prev, extSoj, test, next)
}

// MaxSojourn queries the estimator in force at t0.
func (ps *PatternSet) MaxSojourn(t0 float64) float64 {
	return ps.Estimator(t0).MaxSojourn(t0)
}

// SweepAt applies cache eviction to every pattern's estimator.
func (ps *PatternSet) SweepAt(t float64) {
	for _, e := range ps.ests {
		e.SweepAt(t)
	}
}
