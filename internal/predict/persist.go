package predict

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"cellqos/internal/topology"
)

// Persistence lets a base station keep its learned hand-off history
// across restarts: WriteTo serializes the estimator's quadruplet cache
// in a small versioned binary format, ReadFrom restores it into a fresh
// estimator with the same configuration. Only the raw quadruplets are
// stored; indexes are rebuilt lazily on the next query.

// persistMagic identifies the format; persistVersion gates decoding.
const (
	persistMagic   = 0x43514844 // "CQHD"
	persistVersion = 1
)

// WriteTo implements io.WriterTo: it writes the cached quadruplets.
func (e *Estimator) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(persistMagic)); err != nil {
		return n, err
	}
	if err := write(uint16(persistVersion)); err != nil {
		return n, err
	}
	if err := write(e.lastEvent); err != nil {
		return n, err
	}
	// Deterministic pair order: sort keys.
	keys := append([]pairKey(nil), e.allKeys...)
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].prev != keys[b].prev {
			return keys[a].prev < keys[b].prev
		}
		return keys[a].next < keys[b].next
	})
	if err := write(uint32(len(keys))); err != nil {
		return n, err
	}
	for _, k := range keys {
		p := e.pair(k.prev, k.next)
		if err := write(int32(k.prev)); err != nil {
			return n, err
		}
		if err := write(int32(k.next)); err != nil {
			return n, err
		}
		if err := write(uint32(len(p.raw))); err != nil {
			return n, err
		}
		for _, s := range p.raw {
			if err := write(s.event); err != nil {
				return n, err
			}
			if err := write(s.sojourn); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom implements io.ReaderFrom: it loads a previously serialized
// cache into this estimator, which must be freshly constructed (no
// quadruplets recorded yet). An estimator that already holds history
// has two documented restore modes instead of a silent overwrite:
// Reset followed by ReadFrom replaces the history, Merge unions the
// serialized samples with the live ones.
func (e *Estimator) ReadFrom(r io.Reader) (int64, error) {
	if e.recorded > 0 {
		return 0, fmt.Errorf("predict: ReadFrom into a non-empty estimator (Reset first to replace, or Merge to combine)")
	}
	// No read-ahead buffering: ReadFrom consumes exactly its own stream
	// so several streams can be concatenated (one per day class in
	// core.WriteHistory) and decoded back to back from one reader.
	var n int64
	read := func(v any) error {
		if err := binary.Read(r, binary.BigEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	var magic uint32
	if err := read(&magic); err != nil {
		return n, err
	}
	if magic != persistMagic {
		return n, fmt.Errorf("predict: bad magic %#x", magic)
	}
	var version uint16
	if err := read(&version); err != nil {
		return n, err
	}
	if version != persistVersion {
		return n, fmt.Errorf("predict: unsupported version %d", version)
	}
	var lastEvent float64
	if err := read(&lastEvent); err != nil {
		return n, err
	}
	if math.IsNaN(lastEvent) || lastEvent < 0 {
		return n, fmt.Errorf("predict: corrupt lastEvent %v", lastEvent)
	}
	var pairs uint32
	if err := read(&pairs); err != nil {
		return n, err
	}
	const maxPairs = 1 << 16
	if pairs > maxPairs {
		return n, fmt.Errorf("predict: implausible pair count %d", pairs)
	}
	for i := uint32(0); i < pairs; i++ {
		var prev32, next32 int32
		var count uint32
		if err := read(&prev32); err != nil {
			return n, err
		}
		if err := read(&next32); err != nil {
			return n, err
		}
		if err := read(&count); err != nil {
			return n, err
		}
		const maxSamples = 1 << 24
		if count > maxSamples {
			return n, fmt.Errorf("predict: implausible sample count %d", count)
		}
		prev, next := topology.LocalIndex(prev32), topology.LocalIndex(next32)
		if prev < 0 || next < 0 || prev >= maxLocalIndex || next >= maxLocalIndex {
			// Local indices are cell-degree-sized; anything outside the
			// dense-table bound is corrupt input, not a real topology.
			return n, fmt.Errorf("predict: local index out of range in pair (%d,%d)", prev, next)
		}
		if e.pair(prev, next) != nil {
			// WriteTo emits each pair exactly once; a duplicate means the
			// input is corrupt (and concatenating the sample lists could
			// break their event ordering, making the result unserializable).
			return n, fmt.Errorf("predict: duplicate pair (%d,%d)", prev, next)
		}
		p := e.addPair(prev, next)
		lastSample := math.Inf(-1)
		for j := uint32(0); j < count; j++ {
			var ev, soj float64
			if err := read(&ev); err != nil {
				return n, err
			}
			if err := read(&soj); err != nil {
				return n, err
			}
			if math.IsNaN(ev) || math.IsNaN(soj) || soj < 0 || ev < lastSample {
				return n, fmt.Errorf("predict: corrupt sample (event %v, sojourn %v)", ev, soj)
			}
			lastSample = ev
			p.raw = append(p.raw, sample{event: ev, sojourn: soj})
			e.recorded++
		}
		p.dirty = true
	}
	if lastEvent > e.lastEvent {
		e.lastEvent = lastEvent
	}
	e.gen++ // restored history invalidates any generation-keyed caches
	return n, nil
}

// Merge decodes a serialized cache and unions it with the estimator's
// live history: the merge-on-restore mode for a base station that kept
// serving (and recording) while its checkpoint aged. Samples for each
// (prev, next) pair are interleaved in event order, the cache cap is
// re-applied at the newest event time, and the generation advances
// once. The stream is validated with the same strictness as ReadFrom;
// on error the estimator is unchanged.
func (e *Estimator) Merge(r io.Reader) (int64, error) {
	scratch := New(e.cfg)
	n, err := scratch.ReadFrom(r)
	if err != nil {
		return n, err
	}
	for i, k := range scratch.allKeys {
		src := scratch.allPairs[i]
		if len(src.raw) == 0 {
			continue
		}
		p := e.pair(k.prev, k.next)
		if p == nil {
			p = e.addPair(k.prev, k.next)
		}
		p.raw = mergeSamples(p.raw, src.raw)
		p.dirty = true
	}
	e.recorded += scratch.recorded
	if scratch.lastEvent > e.lastEvent {
		e.lastEvent = scratch.lastEvent
	}
	// Re-apply the paper's cache-management rules: a merged pair may
	// exceed N_quad, and restored samples may predate the retention
	// horizon at the (possibly newer) live time.
	for _, p := range e.allPairs {
		if p.dirty {
			e.prune(p, e.lastEvent)
		}
	}
	e.gen++
	return n, nil
}

// mergeSamples interleaves two event-ordered sample lists into one,
// keeping a's samples first on equal event times.
func mergeSamples(a, b []sample) []sample {
	out := make([]sample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].event < a[i].event {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
