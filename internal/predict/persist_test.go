package predict

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cellqos/internal/topology"
)

func TestPersistRoundTrip(t *testing.T) {
	src := stationary(100)
	r := rand.New(rand.NewPCG(5, 0))
	for i := 0; i < 300; i++ {
		src.Record(Quadruplet{
			Event:   float64(i),
			Prev:    topology.LocalIndex(r.IntN(3)),
			Next:    topology.LocalIndex(1 + r.IntN(3)),
			Sojourn: r.Float64() * 80,
		})
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := stationary(100)
	if _, err := dst.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Identical predictions on a grid of queries.
	for _, prev := range []topology.LocalIndex{0, 1, 2} {
		for _, next := range []topology.LocalIndex{1, 2, 3} {
			for _, ext := range []float64{0, 10, 40, 100} {
				want := src.HandOffProb(400, prev, ext, 25, next)
				got := dst.HandOffProb(400, prev, ext, 25, next)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("restored ph(%d,%d,%v) = %v, want %v", prev, next, ext, got, want)
				}
			}
		}
	}
	if dst.MaxSojourn(400) != src.MaxSojourn(400) {
		t.Fatal("MaxSojourn differs after restore")
	}
	// The restored estimator accepts further recording in time order.
	dst.Record(Quadruplet{Event: 500, Prev: 1, Next: 2, Sojourn: 5})
}

func TestPersistEmptyEstimator(t *testing.T) {
	var buf bytes.Buffer
	if _, err := stationary(10).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := stationary(10)
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Recorded() != 0 {
		t.Fatalf("empty restore recorded %d", dst.Recorded())
	}
}

func TestPersistRejectsNonEmptyTarget(t *testing.T) {
	src := stationary(10)
	src.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 3})
	var buf bytes.Buffer
	src.WriteTo(&buf)
	dst := stationary(10)
	dst.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 3})
	if _, err := dst.ReadFrom(&buf); err == nil {
		t.Fatal("ReadFrom into non-empty estimator succeeded")
	}
}

// TestResetThenReadFrom pins the replace-on-restore mode: Reset
// returns the estimator to its fresh state (advancing the generation),
// after which ReadFrom accepts a serialized history.
func TestResetThenReadFrom(t *testing.T) {
	src := stationary(10)
	for i := 0; i < 5; i++ {
		src.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 3 + float64(i)})
	}
	var buf bytes.Buffer
	src.WriteTo(&buf)

	dst := stationary(10)
	dst.Record(Quadruplet{Event: 99, Prev: 2, Next: 1, Sojourn: 7})
	genBefore := dst.Generation()
	dst.Reset()
	if dst.Generation() <= genBefore {
		t.Fatal("Reset did not advance the generation")
	}
	if dst.Recorded() != 0 || dst.Evicted() != 0 || dst.LastEvent() != 0 {
		t.Fatalf("Reset left state: recorded=%d evicted=%d last=%v",
			dst.Recorded(), dst.Evicted(), dst.LastEvent())
	}
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom after Reset: %v", err)
	}
	if dst.Recorded() != 5 || dst.LastEvent() != 4 {
		t.Fatalf("restored recorded=%d last=%v, want 5/4", dst.Recorded(), dst.LastEvent())
	}
	// The pre-Reset pair (prev 2) must be gone, the restored one present.
	if got := dst.SurvivorWeight(100, 2, 0); got != 0 {
		t.Fatalf("pre-Reset history survived: SurvivorWeight = %v", got)
	}
	if got := dst.SurvivorWeight(100, 1, 0); got != 5 {
		t.Fatalf("restored SurvivorWeight = %v, want 5", got)
	}
}

// TestMergeUnionsHistories pins the merge-on-restore mode: a checkpoint
// taken at event time 10 merged into an estimator that kept recording
// through event time 20 behaves exactly like an estimator that saw all
// samples in order.
func TestMergeUnionsHistories(t *testing.T) {
	// The checkpointed prefix: events 0..9.
	early := stationary(100)
	for i := 0; i < 10; i++ {
		early.Record(Quadruplet{Event: float64(i), Prev: 0, Next: 1, Sojourn: 10 + float64(i)})
	}
	var ckpt bytes.Buffer
	early.WriteTo(&ckpt)

	// The live estimator lost the prefix but recorded events 10..19,
	// including a pair the checkpoint never saw.
	live := stationary(100)
	for i := 10; i < 20; i++ {
		live.Record(Quadruplet{Event: float64(i), Prev: 0, Next: 1, Sojourn: 10 + float64(i)})
	}
	live.Record(Quadruplet{Event: 20, Prev: 0, Next: 2, Sojourn: 4})
	genBefore := live.Generation()
	if _, err := live.Merge(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if live.Generation() <= genBefore {
		t.Fatal("Merge did not advance the generation")
	}
	if live.Recorded() != 21 {
		t.Fatalf("Recorded = %d, want 21", live.Recorded())
	}
	if live.LastEvent() != 20 {
		t.Fatalf("LastEvent = %v, want 20", live.LastEvent())
	}
	// Control: one estimator that saw everything in order.
	control := stationary(100)
	for i := 0; i < 20; i++ {
		control.Record(Quadruplet{Event: float64(i), Prev: 0, Next: 1, Sojourn: 10 + float64(i)})
	}
	control.Record(Quadruplet{Event: 20, Prev: 0, Next: 2, Sojourn: 4})
	for _, ext := range []float64{0, 5, 12, 25} {
		for _, next := range []topology.LocalIndex{1, 2} {
			want := control.HandOffProb(30, 0, ext, 10, next)
			got := live.HandOffProb(30, 0, ext, 10, next)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("merged ph(next=%d, ext=%v) = %v, want %v", next, ext, got, want)
			}
		}
	}
	// The merged estimator keeps recording in time order.
	live.Record(Quadruplet{Event: 21, Prev: 0, Next: 1, Sojourn: 1})
}

// TestMergeReappliesCacheCap: merging must not grow a pair past N_quad —
// the newest samples win, exactly as if all had been recorded in order.
func TestMergeReappliesCacheCap(t *testing.T) {
	early := stationary(8)
	for i := 0; i < 8; i++ {
		early.Record(Quadruplet{Event: float64(i), Prev: 0, Next: 1, Sojourn: 1})
	}
	var ckpt bytes.Buffer
	early.WriteTo(&ckpt)

	live := stationary(8)
	for i := 8; i < 14; i++ {
		live.Record(Quadruplet{Event: float64(i), Prev: 0, Next: 1, Sojourn: 100})
	}
	if _, err := live.Merge(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := live.SelectedCount(20); got != 8 {
		t.Fatalf("SelectedCount after merge = %d, want N_quad = 8", got)
	}
	// Cap keeps the newest: 6 live samples (sojourn 100) plus the 2
	// newest checkpointed ones (sojourn 1).
	if got := live.SurvivorWeight(20, 0, 50); got != 6 {
		t.Fatalf("weight above 50 = %v, want the 6 live samples", got)
	}
	if got := live.SurvivorWeight(20, 0, 0); got != 8 {
		t.Fatalf("total weight = %v, want 8", got)
	}
}

// TestMergeRejectsCorruptStreamUnchanged: a corrupt stream must leave
// the live estimator exactly as it was.
func TestMergeRejectsCorruptStreamUnchanged(t *testing.T) {
	live := stationary(10)
	live.Record(Quadruplet{Event: 1, Prev: 0, Next: 1, Sojourn: 5})
	gen := live.Generation()
	if _, err := live.Merge(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("corrupt merge accepted")
	}
	if live.Recorded() != 1 || live.Generation() != gen {
		t.Fatalf("failed merge mutated estimator: recorded=%d gen=%d, want 1/%d",
			live.Recorded(), live.Generation(), gen)
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	dst := stationary(10)
	if _, err := dst.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong magic.
	var buf bytes.Buffer
	buf.Write(make([]byte, 64))
	if _, err := stationary(10).ReadFrom(&buf); err == nil {
		t.Fatal("zero magic accepted")
	}
}

func TestPersistTruncated(t *testing.T) {
	src := stationary(10)
	for i := 0; i < 20; i++ {
		src.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 3})
	}
	var buf bytes.Buffer
	src.WriteTo(&buf)
	raw := buf.Bytes()
	for _, cut := range []int{7, 15, len(raw) / 2, len(raw) - 1} {
		dst := stationary(10)
		if _, err := dst.ReadFrom(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: round-trip preserves all raw samples for random histories.
func TestPropertyPersistRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 9))
		src := stationary(50)
		n := r.IntN(200)
		for i := 0; i < n; i++ {
			src.Record(Quadruplet{
				Event:   float64(i),
				Prev:    topology.LocalIndex(r.IntN(2)),
				Next:    topology.LocalIndex(1 + r.IntN(2)),
				Sojourn: r.Float64() * 50,
			})
		}
		var buf bytes.Buffer
		if _, err := src.WriteTo(&buf); err != nil {
			return false
		}
		dst := stationary(50)
		if _, err := dst.ReadFrom(&buf); err != nil {
			return false
		}
		if dst.Recorded() != src.Recorded()-src.Evicted() {
			return false
		}
		for q := 0; q < 10; q++ {
			prev := topology.LocalIndex(r.IntN(2))
			next := topology.LocalIndex(1 + r.IntN(2))
			ext := r.Float64() * 60
			if math.Abs(src.HandOffProb(1000, prev, ext, 20, next)-dst.HandOffProb(1000, prev, ext, 20, next)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
