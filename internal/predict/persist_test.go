package predict

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cellqos/internal/topology"
)

func TestPersistRoundTrip(t *testing.T) {
	src := stationary(100)
	r := rand.New(rand.NewPCG(5, 0))
	for i := 0; i < 300; i++ {
		src.Record(Quadruplet{
			Event:   float64(i),
			Prev:    topology.LocalIndex(r.IntN(3)),
			Next:    topology.LocalIndex(1 + r.IntN(3)),
			Sojourn: r.Float64() * 80,
		})
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := stationary(100)
	if _, err := dst.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Identical predictions on a grid of queries.
	for _, prev := range []topology.LocalIndex{0, 1, 2} {
		for _, next := range []topology.LocalIndex{1, 2, 3} {
			for _, ext := range []float64{0, 10, 40, 100} {
				want := src.HandOffProb(400, prev, ext, 25, next)
				got := dst.HandOffProb(400, prev, ext, 25, next)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("restored ph(%d,%d,%v) = %v, want %v", prev, next, ext, got, want)
				}
			}
		}
	}
	if dst.MaxSojourn(400) != src.MaxSojourn(400) {
		t.Fatal("MaxSojourn differs after restore")
	}
	// The restored estimator accepts further recording in time order.
	dst.Record(Quadruplet{Event: 500, Prev: 1, Next: 2, Sojourn: 5})
}

func TestPersistEmptyEstimator(t *testing.T) {
	var buf bytes.Buffer
	if _, err := stationary(10).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := stationary(10)
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Recorded() != 0 {
		t.Fatalf("empty restore recorded %d", dst.Recorded())
	}
}

func TestPersistRejectsNonEmptyTarget(t *testing.T) {
	src := stationary(10)
	src.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 3})
	var buf bytes.Buffer
	src.WriteTo(&buf)
	dst := stationary(10)
	dst.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 3})
	if _, err := dst.ReadFrom(&buf); err == nil {
		t.Fatal("ReadFrom into non-empty estimator succeeded")
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	dst := stationary(10)
	if _, err := dst.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong magic.
	var buf bytes.Buffer
	buf.Write(make([]byte, 64))
	if _, err := stationary(10).ReadFrom(&buf); err == nil {
		t.Fatal("zero magic accepted")
	}
}

func TestPersistTruncated(t *testing.T) {
	src := stationary(10)
	for i := 0; i < 20; i++ {
		src.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 3})
	}
	var buf bytes.Buffer
	src.WriteTo(&buf)
	raw := buf.Bytes()
	for _, cut := range []int{7, 15, len(raw) / 2, len(raw) - 1} {
		dst := stationary(10)
		if _, err := dst.ReadFrom(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: round-trip preserves all raw samples for random histories.
func TestPropertyPersistRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 9))
		src := stationary(50)
		n := r.IntN(200)
		for i := 0; i < n; i++ {
			src.Record(Quadruplet{
				Event:   float64(i),
				Prev:    topology.LocalIndex(r.IntN(2)),
				Next:    topology.LocalIndex(1 + r.IntN(2)),
				Sojourn: r.Float64() * 50,
			})
		}
		var buf bytes.Buffer
		if _, err := src.WriteTo(&buf); err != nil {
			return false
		}
		dst := stationary(50)
		if _, err := dst.ReadFrom(&buf); err != nil {
			return false
		}
		if dst.Recorded() != src.Recorded()-src.Evicted() {
			return false
		}
		for q := 0; q < 10; q++ {
			prev := topology.LocalIndex(r.IntN(2))
			next := topology.LocalIndex(1 + r.IntN(2))
			ext := r.Float64() * 60
			if math.Abs(src.HandOffProb(1000, prev, ext, 20, next)-dst.HandOffProb(1000, prev, ext, 20, next)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
