package predict_test

import (
	"fmt"

	"cellqos/internal/predict"
)

// A base station caches hand-off event quadruplets as mobiles leave its
// cell, then answers Eq. 4 queries: how likely is a given connection to
// hand off into a given neighbor within T_est seconds?
func ExampleEstimator_HandOffProb() {
	est := predict.New(predict.StationaryConfig())

	// History: mobiles that entered from neighbor 1 usually continue to
	// neighbor 2 after ~30 s; one slower mobile went back to 1 after 60 s.
	for i := 0; i < 3; i++ {
		est.Record(predict.Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 30})
	}
	est.Record(predict.Quadruplet{Event: 3, Prev: 1, Next: 1, Sojourn: 60})

	// A connection from neighbor 1 has been here 10 s. Within the next
	// 25 s only the 30-s sojourns can fire.
	p := est.HandOffProb(100, 1, 10, 25, 2)
	fmt.Printf("p_h(→2) = %.2f\n", p)

	// After 40 s in the cell, the fast crowd is ruled out: the remaining
	// evidence says it behaves like the slow mobile.
	p = est.HandOffProb(100, 1, 40, 25, 1)
	fmt.Printf("p_h(→1 | extant 40s) = %.2f\n", p)

	// Output:
	// p_h(→2) = 0.75
	// p_h(→1 | extant 40s) = 1.00
}
