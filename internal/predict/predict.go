// Package predict implements the paper's mobility estimation (§3): each
// base station caches a hand-off event quadruplet (T_event, prev, next,
// T_soj) for every mobile that hands off out of its cell, builds
// *hand-off estimation functions* from the quadruplets that fall within
// periodic daily windows, and answers Bayesian hand-off probability
// queries (Eq. 4):
//
//	p_h(C → next) = P(next cell = next, T_soj ≤ T_ext-soj + T_est | T_soj > T_ext-soj)
//
// All cell references are in the owning cell's *local* index space
// (topology.LocalIndex): prev/next are 0 for "this cell" (prev = 0 marks
// a connection born here) and 1..deg for neighbors.
//
// One Estimator serves one cell and one day-pattern class (weekday or
// weekend/holiday; see PatternSet). It is not safe for concurrent use.
package predict

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"cellqos/internal/topology"
)

// Quadruplet is one observed hand-off departure (paper §3.1).
type Quadruplet struct {
	Event   float64             // T_event: when the mobile left this cell (s)
	Prev    topology.LocalIndex // cell the mobile came from (Self = born here)
	Next    topology.LocalIndex // cell the mobile entered (must be a neighbor)
	Sojourn float64             // T_soj: time spent in this cell (s)
}

// Config holds the estimation-function design parameters of §3.1.
type Config struct {
	// Tint is the estimation interval T_int: quadruplets within
	// [t0−T_int−n·Period, t0+T_int−n·Period) contribute with weight
	// Weights[n]. math.Inf(1) (the paper's stationary-scenario choice)
	// makes the single n=0 window cover all history.
	Tint float64
	// Period is T_day (86400 s) for weekday estimators or T_week for
	// weekend ones. Ignored when Tint is infinite.
	Period float64
	// NwinPeriods is N_win-days: quadruplets older than
	// NwinPeriods·Period + Tint are out of date.
	NwinPeriods int
	// Weights are w_0..w_NwinPeriods, non-increasing, w_0 ≤ 1. A nil
	// slice means all-ones.
	Weights []float64
	// NQuad caps the number of quadruplets used per (prev, next) pair
	// (the paper's N_quad, 100 in the experiments).
	NQuad int
	// RebuildEvery bounds index staleness for finite Tint: the windowed
	// sample selection is recomputed when the query time has advanced
	// more than this since the last rebuild (and always after Record).
	// Zero means rebuild on every query-time change. Irrelevant for
	// infinite Tint, where the selection only changes on Record.
	RebuildEvery float64
}

// Validate checks config invariants.
func (c Config) Validate() error {
	if c.Tint <= 0 {
		return fmt.Errorf("predict: Tint must be positive, got %v", c.Tint)
	}
	if c.NQuad < 1 {
		return fmt.Errorf("predict: NQuad must be ≥ 1, got %d", c.NQuad)
	}
	if !math.IsInf(c.Tint, 1) {
		if c.Period <= 0 {
			return fmt.Errorf("predict: finite Tint requires positive Period")
		}
		if c.NwinPeriods < 0 {
			return fmt.Errorf("predict: negative NwinPeriods")
		}
	}
	w := c.weights()
	for n := 1; n < len(w); n++ {
		if w[n] > w[n-1] {
			return fmt.Errorf("predict: weights must be non-increasing, got %v", w)
		}
	}
	for _, v := range w {
		if v < 0 || v > 1 {
			return fmt.Errorf("predict: weights must lie in [0,1], got %v", w)
		}
	}
	return nil
}

// weights returns the effective weight vector (all ones when nil).
func (c Config) weights() []float64 {
	n := c.NwinPeriods
	if math.IsInf(c.Tint, 1) {
		n = 0
	}
	if c.Weights != nil {
		return c.Weights
	}
	w := make([]float64, n+1)
	for i := range w {
		w[i] = 1
	}
	return w
}

// StationaryConfig is the configuration used for the paper's stationary
// experiments (§5.2): T_int = ∞, N_quad = 100.
func StationaryConfig() Config {
	return Config{Tint: math.Inf(1), NQuad: 100}
}

// DailyConfig is the §5.3 time-varying configuration: T_int = 1 h,
// N_win-days = 1, w_0 = w_1 = 1.
func DailyConfig() Config {
	return Config{
		Tint:         3600,
		Period:       86400,
		NwinPeriods:  1,
		Weights:      []float64{1, 1},
		NQuad:        100,
		RebuildEvery: 60,
	}
}

type pairKey struct{ prev, next topology.LocalIndex }

// searchEvent returns the first index in raw (sorted by event time) whose
// event is ≥ t.
func searchEvent(raw []sample, t float64) int {
	lo, hi := 0, len(raw)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if raw[mid].event < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sample is a cached quadruplet, reduced to what selection needs.
type sample struct {
	event, sojourn float64
}

// pairData is the cache and query index for one (prev, next) pair.
type pairData struct {
	raw []sample // ordered by event time (simulation time is monotone)

	// Index over the currently selected (windowed, weighted, capped)
	// samples, rebuilt lazily: sojourn times ascending with aligned
	// cumulative weights; wCum[i] = Σ weight of sojSorted[0..i].
	sojSorted []float64
	wCum      []float64

	// Per-pair index staleness: the selection is recomputed when dirty
	// (a Record or eviction touched raw) or, for finite T_int, when the
	// query time drifted past the staleness budget.
	dirty    bool
	builtAt  float64
	hasIndex bool
	maxSoj   float64 // largest selected sojourn
}

// totalWeight is the selected weight mass of the pair.
func (p *pairData) totalWeight() float64 {
	if len(p.wCum) == 0 {
		return 0
	}
	return p.wCum[len(p.wCum)-1]
}

// weightAbove returns the selected weight with sojourn strictly greater
// than x. The binary search is hand-rolled: this is the innermost loop of
// every Eq. 4 evaluation and closure-based sort.Search shows up hot in
// profiles.
func (p *pairData) weightAbove(x float64) float64 {
	s := p.sojSorted
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first index with sojourn > x.
	if lo == 0 {
		return p.totalWeight()
	}
	if lo >= len(s) {
		return 0
	}
	return p.totalWeight() - p.wCum[lo-1]
}

// weightIn returns the selected weight with sojourn in (lo, hi].
func (p *pairData) weightIn(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return p.weightAbove(lo) - p.weightAbove(hi)
}

// maxLocalIndex bounds the local indices an Estimator accepts. Cell
// degrees are single digits; the bound only exists so the dense
// per-index tables cannot be grown without limit by corrupt persisted
// input.
const maxLocalIndex = 1 << 12

// prevGroup holds every pair sharing one prev, in first-Record order —
// the iteration order of the Eq. 4 denominator sum, which must stay
// stable so repeated queries produce bit-identical floats.
type prevGroup struct {
	pairs  []*pairData
	nexts  []topology.LocalIndex // aligned with pairs
	byNext []*pairData           // dense by int(next); nil = pair never seen
}

// Estimator accumulates quadruplets and answers Eq. 4 queries for one cell.
type Estimator struct {
	cfg     Config
	weights []float64
	// Dense pair tables (local indices are tiny): prevs is indexed by
	// int(prev), allPairs/allKeys list every pair in first-Record order.
	// No maps on the query path — lookups are two slice indexings.
	prevs    []*prevGroup
	allPairs []*pairData
	allKeys  []pairKey // aligned with allPairs

	// gen is the cache epoch: it advances whenever the selection backing
	// probability queries may have changed — on Record, on an eviction
	// that dropped samples, and on every per-pair index rebuild
	// (including lazy rebuilds triggered by query-time drift past
	// RebuildEvery, the "window shift"). Callers that memoize derived
	// values key them on Generation and recompute on mismatch.
	gen uint64

	recorded  uint64 // total quadruplets ever recorded
	evicted   uint64 // total quadruplets dropped from the cache
	lastEvent float64
}

// New builds an Estimator; it panics on invalid config (programmer error).
func New(cfg Config) *Estimator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Estimator{
		cfg:     cfg,
		weights: cfg.weights(),
	}
}

// group returns the prev's pair group, nil when prev was never recorded.
func (e *Estimator) group(prev topology.LocalIndex) *prevGroup {
	if prev < 0 || int(prev) >= len(e.prevs) {
		return nil
	}
	return e.prevs[prev]
}

// pair returns the (prev, next) pair, nil when it was never recorded.
func (e *Estimator) pair(prev, next topology.LocalIndex) *pairData {
	g := e.group(prev)
	if g == nil || next < 0 || int(next) >= len(g.byNext) {
		return nil
	}
	return g.byNext[next]
}

// addPair registers a new (prev, next) pair in the dense tables. Callers
// validate the index range first.
func (e *Estimator) addPair(prev, next topology.LocalIndex) *pairData {
	for int(prev) >= len(e.prevs) {
		e.prevs = append(e.prevs, nil)
	}
	g := e.prevs[prev]
	if g == nil {
		g = &prevGroup{}
		e.prevs[prev] = g
	}
	for int(next) >= len(g.byNext) {
		g.byNext = append(g.byNext, nil)
	}
	p := &pairData{}
	g.byNext[next] = p
	g.pairs = append(g.pairs, p)
	g.nexts = append(g.nexts, next)
	e.allPairs = append(e.allPairs, p)
	e.allKeys = append(e.allKeys, pairKey{prev, next})
	return p
}

// Generation returns the estimator's cache epoch. Two queries bracketed
// by equal Generation values (at the same query time) are backed by the
// same sample selection; a caller-side cache of derived results is
// invalidated exactly when the epoch moves.
func (e *Estimator) Generation() uint64 { return e.gen }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Recorded returns the number of quadruplets ever recorded.
func (e *Estimator) Recorded() uint64 { return e.recorded }

// LastEvent returns the event time of the newest quadruplet ever
// recorded (or restored), zero when there is none. A service restoring
// from a checkpoint resumes its simulation clock at or after this
// instant so Record's event-order invariant holds across the restart.
func (e *Estimator) LastEvent() float64 { return e.lastEvent }

// Reset discards all recorded history and counters, returning the
// estimator to its freshly-constructed state with the same
// configuration. The generation advances so generation-keyed caches
// invalidate; it never rolls back. Reset-then-ReadFrom is the
// replace-on-restore mode for an estimator that already holds samples.
func (e *Estimator) Reset() {
	e.prevs = nil
	e.allPairs = nil
	e.allKeys = nil
	e.recorded = 0
	e.evicted = 0
	e.lastEvent = 0
	e.gen++
}

// Evicted returns the number of quadruplets dropped by cache management.
func (e *Estimator) Evicted() uint64 { return e.evicted }

// Record caches a hand-off event quadruplet. Events must arrive in
// non-decreasing T_event order (simulation time is monotone); Record
// panics otherwise, and on negative sojourns.
//
// The return value reports whether the record is *selection-visible*:
// whether any sample selection the estimator serves can differ from
// before. Under a stationary configuration (infinite T_int) the
// selection of the affected (prev, next) pair is the multiset of its
// newest N_quad sojourns with uniform weight, so recording into a full
// pair a sojourn equal to the one evicted leaves every query —
// probabilities, survivor weights, breakpoints, max sojourn —
// bit-identical, and Record returns false. Generation-keyed caches may
// then adopt the new generation instead of rebuilding. Windowed
// configurations always return true: selections there depend on event
// times, not just sojourn values.
//
// To make the post-Record generation stable for such adoption, the
// stationary path rebuilds the pair's selection eagerly (it is
// query-time-independent); the generation a caller observes after
// Record is then final until the next mutation.
func (e *Estimator) Record(q Quadruplet) bool {
	if q.Sojourn < 0 || math.IsNaN(q.Sojourn) {
		panic(fmt.Sprintf("predict: bad sojourn %v", q.Sojourn))
	}
	if q.Event < e.lastEvent {
		panic(fmt.Sprintf("predict: out-of-order event %v after %v", q.Event, e.lastEvent))
	}
	if q.Prev < 0 || q.Next < 0 || q.Prev >= maxLocalIndex || q.Next >= maxLocalIndex {
		panic(fmt.Sprintf("predict: local index out of range in quadruplet (prev %d, next %d)", q.Prev, q.Next))
	}
	e.lastEvent = q.Event
	p := e.pair(q.Prev, q.Next)
	if p == nil {
		p = e.addPair(q.Prev, q.Next)
	}
	stationary := math.IsInf(e.cfg.Tint, 1)
	visible := true
	if stationary && len(p.raw) > 0 && len(p.raw) == e.cfg.NQuad && p.raw[0].sojourn == q.Sojourn {
		// The append below evicts exactly p.raw[0]; trading it for an
		// equal sojourn leaves the selected multiset unchanged.
		visible = false
	}
	p.raw = append(p.raw, sample{event: q.Event, sojourn: q.Sojourn})
	e.recorded++
	e.prune(p, q.Event)
	p.dirty = true
	e.gen++
	if stationary {
		e.rebuildPair(p, q.Event)
	}
	return visible
}

// prune applies the paper's cache-management rules to one pair at the
// current time t: (1) drop quadruplets past the retention horizon
// (older than N_win·Period + T_int); (2) if the n=0 window alone already
// holds more than N_quad samples, drop the oldest ones in it — "they are
// unlikely to be used for the hand-off estimation function next day".
func (e *Estimator) prune(p *pairData, t float64) {
	if math.IsInf(e.cfg.Tint, 1) {
		// Priority within the single infinite window is recency, so only
		// the newest NQuad can ever be selected.
		if excess := len(p.raw) - e.cfg.NQuad; excess > 0 {
			p.raw = append(p.raw[:0], p.raw[excess:]...)
			e.evicted += uint64(excess)
		}
		return
	}
	horizon := t - (float64(e.cfg.NwinPeriods)*e.cfg.Period + e.cfg.Tint)
	drop := 0
	for drop < len(p.raw) && p.raw[drop].event < horizon {
		drop++
	}
	if drop > 0 {
		p.raw = append(p.raw[:0], p.raw[drop:]...)
		e.evicted += uint64(drop)
	}
	// Rule (2): count samples inside the current n=0 window [t−Tint, t].
	lo := t - e.cfg.Tint
	i := searchEvent(p.raw, lo)
	if inWin := len(p.raw) - i; inWin > e.cfg.NQuad {
		excess := inWin - e.cfg.NQuad
		p.raw = append(p.raw[:i], p.raw[i+excess:]...)
		e.evicted += uint64(excess)
	}
}

// EvictBefore drops every cached quadruplet with event time before t.
// The per-Record pruning only touches the pair being appended to; this
// sweep lets the owner reclaim long-idle pairs (the paper's rule that
// quadruplets unused for more than T_day + T_int may be deleted).
func (e *Estimator) EvictBefore(t float64) {
	dropped := false
	for _, p := range e.allPairs {
		drop := 0
		for drop < len(p.raw) && p.raw[drop].event < t {
			drop++
		}
		if drop > 0 {
			p.raw = append(p.raw[:0], p.raw[drop:]...)
			e.evicted += uint64(drop)
			p.dirty = true
			dropped = true
		}
	}
	if dropped {
		e.gen++
	}
}

// SweepAt drops every quadruplet that can no longer fall inside any
// window at or after time t (older than N_win·Period + T_int) — the
// paper's rule that out-of-date quadruplets "can be deleted from the
// cache memory". No-op for infinite T_int, where per-Record pruning
// already bounds the cache.
func (e *Estimator) SweepAt(t float64) {
	if math.IsInf(e.cfg.Tint, 1) {
		return
	}
	e.EvictBefore(t - (float64(e.cfg.NwinPeriods)*e.cfg.Period + e.cfg.Tint))
}

// ensurePair rebuilds one pair's windowed selection for query time t0 if
// it is missing or stale. Per-pair laziness keeps the common path — many
// probability queries between occasional Records — cheap.
func (e *Estimator) ensurePair(p *pairData, t0 float64) {
	if p.hasIndex && !p.dirty {
		if math.IsInf(e.cfg.Tint, 1) {
			return // selection is time-independent between Records
		}
		if math.Abs(t0-p.builtAt) <= e.cfg.RebuildEvery {
			return
		}
	}
	e.rebuildPair(p, t0)
}

// ensurePrev refreshes every pair reachable from prev.
func (e *Estimator) ensurePrev(prev topology.LocalIndex, t0 float64) {
	if g := e.group(prev); g != nil {
		for _, p := range g.pairs {
			e.ensurePair(p, t0)
		}
	}
}

// ensureAll refreshes every pair.
func (e *Estimator) ensureAll(t0 float64) {
	for _, p := range e.allPairs {
		e.ensurePair(p, t0)
	}
}

// WeightedSample is one selected quadruplet with its window weight;
// exposed for tests and diagnostics.
type WeightedSample struct {
	Sojourn float64
	Weight  float64
	Next    topology.LocalIndex
}

// rebuildPair recomputes one pair's capped weighted sample selection of
// §3.1 at query time t0, then the sorted prefix-sum index used by
// probability queries.
func (e *Estimator) rebuildPair(p *pairData, t0 float64) {
	e.gen++ // the selection (and its prefix-sum table) changes here
	p.builtAt = t0
	p.hasIndex = true
	p.dirty = false
	p.maxSoj = 0
	type ws struct{ soj, w float64 }
	var sel []ws
	{
		if math.IsInf(e.cfg.Tint, 1) {
			// Single window, unit weight, newest-first priority; prune
			// already capped raw at NQuad.
			for _, s := range p.raw {
				sel = append(sel, ws{s.sojourn, e.weights[0]})
			}
		} else {
			// Fill windows n = 0, 1, ... in priority order until NQuad.
			type cand struct {
				dist float64
				soj  float64
			}
			var cands []cand
			room := e.cfg.NQuad
			for n := 0; n <= e.cfg.NwinPeriods && room > 0; n++ {
				w := e.weights[n]
				if w == 0 {
					continue
				}
				center := t0 - float64(n)*e.cfg.Period
				lo := t0 - e.cfg.Tint - float64(n)*e.cfg.Period
				hi := t0 + e.cfg.Tint - float64(n)*e.cfg.Period
				i := searchEvent(p.raw, lo)
				cands = cands[:0]
				for ; i < len(p.raw) && p.raw[i].event < hi; i++ {
					s := p.raw[i]
					if s.event > t0 { // future events cannot exist, but guard
						break
					}
					cands = append(cands, cand{dist: math.Abs(s.event - center), soj: s.sojourn})
				}
				// Second-level priority: smaller |T_event − (t0 − n·T_day)|,
				// i.e. closest to the same time-of-day, first.
				slices.SortFunc(cands, func(a, b cand) int {
					switch {
					case a.dist < b.dist:
						return -1
					case a.dist > b.dist:
						return 1
					default:
						return 0
					}
				})
				for _, c := range cands {
					if room == 0 {
						break
					}
					sel = append(sel, ws{c.soj, w})
					room--
				}
			}
		}
	}
	// Build the sorted sojourn index with cumulative weights.
	slices.SortFunc(sel, func(a, b ws) int {
		switch {
		case a.soj < b.soj:
			return -1
		case a.soj > b.soj:
			return 1
		default:
			return 0
		}
	})
	p.sojSorted = p.sojSorted[:0]
	p.wCum = p.wCum[:0]
	cum := 0.0
	for _, s := range sel {
		cum += s.w
		p.sojSorted = append(p.sojSorted, s.soj)
		p.wCum = append(p.wCum, cum)
	}
	if len(sel) > 0 {
		p.maxSoj = p.sojSorted[len(p.sojSorted)-1]
	}
}

// HandOffProb evaluates Eq. 4: the probability that a connection that
// entered this cell from prev, with extant sojourn time extSoj, hands off
// into next within test seconds. It returns 0 (estimated stationary)
// when no selected quadruplet from prev has a sojourn exceeding extSoj.
func (e *Estimator) HandOffProb(t0 float64, prev topology.LocalIndex, extSoj, test float64, next topology.LocalIndex) float64 {
	den := e.SurvivorWeight(t0, prev, extSoj)
	if den == 0 {
		return 0
	}
	num := e.pair(prev, next)
	if num == nil {
		return 0
	}
	return num.weightIn(extSoj, extSoj+test) / den
}

// SurvivorWeight returns the Eq. 4 denominator: the total selected
// weight from prev whose sojourn strictly exceeds extSoj, at query time
// t0 (summed in first-Record pair order, the order every probability
// query uses). Splitting the denominator out lets a caller evaluating
// many (next, toward) queries for one connection pay for it once.
func (e *Estimator) SurvivorWeight(t0 float64, prev topology.LocalIndex, extSoj float64) float64 {
	e.ensurePrev(prev, t0)
	g := e.group(prev)
	if g == nil {
		return 0
	}
	den := 0.0
	for _, p := range g.pairs {
		den += p.weightAbove(extSoj)
	}
	return den
}

// HandOffWeight returns the Eq. 4 numerator for (prev, next): the
// selected weight with sojourn in (extSoj, extSoj+test]. Dividing by
// SurvivorWeight at the same arguments yields HandOffProb exactly.
func (e *Estimator) HandOffWeight(t0 float64, prev, next topology.LocalIndex, extSoj, test float64) float64 {
	p := e.pair(prev, next)
	if p == nil {
		return 0
	}
	// Only this pair's selection feeds the numerator, so only it needs
	// refreshing — the caller's SurvivorWeight already walked the whole
	// group, and re-walking it here would double the per-query ensure
	// cost on the hot single-direction path.
	e.ensurePair(p, t0)
	return p.weightIn(extSoj, extSoj+test)
}

// VisitHandOffProbs calls visit with p_h for every next cell seen from
// prev whose probability is positive, sharing one denominator
// computation across nexts and allocating nothing. Nexts are visited in
// first-Record order.
func (e *Estimator) VisitHandOffProbs(t0 float64, prev topology.LocalIndex, extSoj, test float64, visit func(next topology.LocalIndex, p float64)) {
	den := e.SurvivorWeight(t0, prev, extSoj)
	if den == 0 {
		return
	}
	g := e.group(prev)
	for i, p := range g.pairs {
		if v := p.weightIn(extSoj, extSoj+test) / den; v > 0 {
			visit(g.nexts[i], v)
		}
	}
}

// HandOffProbsInto appends (next, p_h) for every next cell seen from
// prev with positive probability to the caller's buffers and returns
// them — the reusable-buffer replacement for the retired map-returning
// HandOffProbs. Passing slices with spare capacity makes the call
// allocation-free.
func (e *Estimator) HandOffProbsInto(t0 float64, prev topology.LocalIndex, extSoj, test float64,
	nexts []topology.LocalIndex, probs []float64) ([]topology.LocalIndex, []float64) {
	den := e.SurvivorWeight(t0, prev, extSoj)
	if den == 0 {
		return nexts, probs
	}
	g := e.group(prev)
	for i, p := range g.pairs {
		if v := p.weightIn(extSoj, extSoj+test) / den; v > 0 {
			nexts = append(nexts, g.nexts[i])
			probs = append(probs, v)
		}
	}
	return nexts, probs
}

// SojournProb evaluates the conditional sojourn distribution for a
// mobile whose next cell is already known (the paper's §7 ITS/GPS
// extension: "the mobility estimation function is used to estimate the
// sojourn time of a mobile only"): P(T_soj ≤ extSoj + test | T_soj >
// extSoj) over the (prev, next) pair's samples, falling back to the
// prev-marginal distribution when that pair has no usable history.
func (e *Estimator) SojournProb(t0 float64, prev, next topology.LocalIndex, extSoj, test float64) float64 {
	e.ensurePrev(prev, t0)
	if p := e.pair(prev, next); p != nil {
		if den := p.weightAbove(extSoj); den > 0 {
			return p.weightIn(extSoj, extSoj+test) / den
		}
	}
	g := e.group(prev)
	if g == nil {
		return 0
	}
	den, num := 0.0, 0.0
	for _, p := range g.pairs {
		den += p.weightAbove(extSoj)
		num += p.weightIn(extSoj, extSoj+test)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// MaxSojourn returns the largest sojourn among currently selected
// quadruplets (the paper's T_soj,max ingredient for capping T_est).
// Zero when the estimator has no usable samples.
func (e *Estimator) MaxSojourn(t0 float64) float64 {
	e.ensureAll(t0)
	max := 0.0
	for _, p := range e.allPairs {
		if p.maxSoj > max {
			max = p.maxSoj
		}
	}
	return max
}

// SelectedCount returns the number of quadruplets in the current
// selection (for diagnostics and tests).
func (e *Estimator) SelectedCount(t0 float64) int {
	e.ensureAll(t0)
	n := 0
	for _, p := range e.allPairs {
		n += len(p.sojSorted)
	}
	return n
}

// AppendSelected appends the current weighted selection for a given
// prev to dst, in ascending sojourn order, and returns dst. Passing a
// buffer with spare capacity makes the call allocation-free.
func (e *Estimator) AppendSelected(dst []WeightedSample, t0 float64, prev topology.LocalIndex) []WeightedSample {
	e.ensurePrev(prev, t0)
	g := e.group(prev)
	if g == nil {
		return dst
	}
	start := len(dst)
	for i, p := range g.pairs {
		next := g.nexts[i]
		prevCum := 0.0
		for j, soj := range p.sojSorted {
			w := p.wCum[j] - prevCum
			prevCum = p.wCum[j]
			dst = append(dst, WeightedSample{Sojourn: soj, Weight: w, Next: next})
		}
	}
	tail := dst[start:]
	sort.Slice(tail, func(a, b int) bool { return tail[a].Sojourn < tail[b].Sojourn })
	return dst
}

// Selected returns the current weighted selection for a given prev, in
// ascending sojourn order. Intended for tests and diagnostics; hot
// paths use AppendSelected with a reused buffer.
func (e *Estimator) Selected(t0 float64, prev topology.LocalIndex) []WeightedSample {
	return e.AppendSelected(nil, t0, prev)
}

// EnsureCurrent refreshes every pair's windowed selection for query time
// t0 and returns the resulting generation. It is the synchronization
// point for callers that maintain state derived incrementally from the
// selection (core's materialized Eq. 5 view): after EnsureCurrent(t0)
// returns, no further query at the same t0 can trigger a lazy rebuild,
// so the returned generation is stable for the rest of the caller's
// work at t0. A caller compares it against the generation its derived
// state was built under and falls back to a full rebuild on mismatch.
func (e *Estimator) EnsureCurrent(t0 float64) uint64 {
	e.ensureAll(t0)
	return e.gen
}

// AppendSojournBreakpoints appends the sojourn time of every currently
// selected sample reachable from prev to dst, sorts the appended tail
// ascending, and returns dst. These are the breakpoints of the
// piecewise-constant Eq. 4 queries in their extant-sojourn argument:
// SurvivorWeight, HandOffWeight and SojournProb from prev change value
// only when the (clamped) extant sojourn crosses one of them, because
// every query reduces to binary searches over the pairs' selected
// sojourns and the group selection is the union of its pairs'
// selections. The list is valid for the generation under which it was
// taken; callers re-fetch after the epoch moves. Passing a buffer with
// spare capacity makes the call allocation-free.
func (e *Estimator) AppendSojournBreakpoints(dst []float64, t0 float64, prev topology.LocalIndex) []float64 {
	e.ensurePrev(prev, t0)
	g := e.group(prev)
	if g == nil {
		return dst
	}
	start := len(dst)
	for _, p := range g.pairs {
		dst = append(dst, p.sojSorted...)
	}
	slices.Sort(dst[start:])
	return dst
}
