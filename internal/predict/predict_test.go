package predict

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cellqos/internal/topology"
)

func stationary(nquad int) *Estimator {
	return New(Config{Tint: math.Inf(1), NQuad: nquad})
}

func TestEmptyEstimator(t *testing.T) {
	e := stationary(100)
	if got := e.HandOffProb(0, 1, 0, 100, 2); got != 0 {
		t.Fatalf("ph on empty estimator = %v, want 0", got)
	}
	if got := e.MaxSojourn(0); got != 0 {
		t.Fatalf("MaxSojourn empty = %v, want 0", got)
	}
	if nexts, probs := e.HandOffProbsInto(0, 1, 0, 100, nil, nil); len(nexts) != 0 || len(probs) != 0 {
		t.Fatalf("HandOffProbsInto empty = %v, %v", nexts, probs)
	}
	e.VisitHandOffProbs(0, 1, 0, 100, func(next topology.LocalIndex, p float64) {
		t.Fatalf("VisitHandOffProbs on empty estimator visited (%d, %v)", next, p)
	})
}

func TestSingleQuadrupletBayes(t *testing.T) {
	e := stationary(100)
	e.Record(Quadruplet{Event: 100, Prev: 1, Next: 2, Sojourn: 30})

	// Mobile still here after 10 s; within the next 30 s it should hand
	// off into cell 2 with certainty (the only observation says so).
	if got := e.HandOffProb(200, 1, 10, 30, 2); got != 1 {
		t.Fatalf("ph = %v, want 1", got)
	}
	// Window (10, 20] excludes the 30 s sojourn: no hand-off predicted yet.
	if got := e.HandOffProb(200, 1, 10, 10, 2); got != 0 {
		t.Fatalf("ph with short Test = %v, want 0", got)
	}
	// Extant sojourn beyond every observation ⇒ estimated stationary.
	if got := e.HandOffProb(200, 1, 35, 100, 2); got != 0 {
		t.Fatalf("ph stationary case = %v, want 0", got)
	}
	// Different prev has no data.
	if got := e.HandOffProb(200, 2, 10, 30, 2); got != 0 {
		t.Fatalf("ph unknown prev = %v, want 0", got)
	}
}

func TestExactBoundarySemantics(t *testing.T) {
	// Eq. 4 denominator is over T_soj > T_ext-soj (strict); the numerator
	// window is (T_ext-soj, T_ext-soj + T_est] (closed on the right).
	e := stationary(100)
	e.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 10})
	if got := e.HandOffProb(2, 1, 10, 5, 2); got != 0 {
		t.Fatalf("sojourn equal to extant: ph = %v, want 0 (strict >)", got)
	}
	if got := e.HandOffProb(2, 1, 5, 5, 2); got != 1 {
		t.Fatalf("sojourn at window right edge: ph = %v, want 1 (≤)", got)
	}
}

func TestMultiNextDistribution(t *testing.T) {
	e := stationary(100)
	// From prev 1: 3 hand-offs to next 2 (soj 10) and 1 to next 3 (soj 40).
	for i := 0; i < 3; i++ {
		e.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 10})
	}
	e.Record(Quadruplet{Event: 3, Prev: 1, Next: 3, Sojourn: 40})

	// Fresh mobile (extSoj 0), long window: splits 3/4 vs 1/4.
	if got := e.HandOffProb(10, 1, 0, 100, 2); got != 0.75 {
		t.Fatalf("ph(→2) = %v, want 0.75", got)
	}
	if got := e.HandOffProb(10, 1, 0, 100, 3); got != 0.25 {
		t.Fatalf("ph(→3) = %v, want 0.25", got)
	}
	// After 20 s the next-2 sojourns are ruled out: only next 3 remains.
	if got := e.HandOffProb(10, 1, 20, 100, 3); got != 1 {
		t.Fatalf("ph(→3 | extSoj 20) = %v, want 1", got)
	}
	if got := e.HandOffProb(10, 1, 20, 100, 2); got != 0 {
		t.Fatalf("ph(→2 | extSoj 20) = %v, want 0", got)
	}
	// Short Test window reaches only part of the mass: (0, 10] contains
	// the three next-2 sojourns; denominator is all four.
	if got := e.HandOffProb(10, 1, 0, 10, 2); got != 0.75 {
		t.Fatalf("ph(→2, Test=10) = %v, want 0.75", got)
	}
	if got := e.HandOffProb(10, 1, 0, 10, 3); got != 0 {
		t.Fatalf("ph(→3, Test=10) = %v, want 0", got)
	}
}

func TestHandOffProbsMatchesScalarQueries(t *testing.T) {
	e := stationary(100)
	r := rand.New(rand.NewPCG(1, 0))
	for i := 0; i < 200; i++ {
		e.Record(Quadruplet{
			Event:   float64(i),
			Prev:    topology.LocalIndex(r.IntN(3)),
			Next:    topology.LocalIndex(1 + r.IntN(3)),
			Sojourn: r.Float64() * 100,
		})
	}
	var nexts []topology.LocalIndex
	var probs []float64
	for _, prev := range []topology.LocalIndex{0, 1, 2} {
		for _, extSoj := range []float64{0, 10, 50, 200} {
			nexts, probs = e.HandOffProbsInto(300, prev, extSoj, 25, nexts[:0], probs[:0])
			byNext := map[topology.LocalIndex]float64{}
			for i, next := range nexts {
				byNext[next] = probs[i]
			}
			visited := map[topology.LocalIndex]float64{}
			e.VisitHandOffProbs(300, prev, extSoj, 25, func(next topology.LocalIndex, p float64) {
				visited[next] = p
			})
			sum := 0.0
			for next := topology.LocalIndex(1); next <= 3; next++ {
				want := e.HandOffProb(300, prev, extSoj, 25, next)
				if got := byNext[next]; math.Abs(got-want) > 1e-12 {
					t.Fatalf("HandOffProbsInto[%d] = %v, scalar = %v", next, got, want)
				}
				if got := visited[next]; math.Abs(got-want) > 1e-12 {
					t.Fatalf("VisitHandOffProbs[%d] = %v, scalar = %v", next, got, want)
				}
				sum += want
			}
			if sum > 1+1e-9 {
				t.Fatalf("Σ ph = %v > 1", sum)
			}
		}
	}
}

func TestNQuadRecencyCap(t *testing.T) {
	e := stationary(100)
	// 150 samples; the oldest 50 (sojourn 1000, distinguishable) must be
	// evicted, leaving only the newest 100 (sojourn 10).
	for i := 0; i < 50; i++ {
		e.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 1000})
	}
	for i := 50; i < 150; i++ {
		e.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 10})
	}
	if e.Recorded() != 150 || e.Evicted() != 50 {
		t.Fatalf("recorded/evicted = %d/%d, want 150/50", e.Recorded(), e.Evicted())
	}
	if got := e.SelectedCount(200); got != 100 {
		t.Fatalf("SelectedCount = %d, want 100", got)
	}
	if got := e.MaxSojourn(200); got != 10 {
		t.Fatalf("MaxSojourn = %v, want 10 (old samples evicted)", got)
	}
}

func TestMaxSojourn(t *testing.T) {
	e := stationary(100)
	e.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 33})
	e.Record(Quadruplet{Event: 1, Prev: 2, Next: 1, Sojourn: 77})
	if got := e.MaxSojourn(10); got != 77 {
		t.Fatalf("MaxSojourn = %v, want 77", got)
	}
}

func TestFiniteWindowWeights(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 1, Weights: []float64{1, 0.5}, NQuad: 100}
	e := New(cfg)
	// Out of every window: 05:00 yesterday.
	e.Record(Quadruplet{Event: 5 * 3600, Prev: 1, Next: 3, Sojourn: 10})
	// Same time-of-day yesterday (n=1 window): weight 0.5.
	e.Record(Quadruplet{Event: 43200, Prev: 1, Next: 2, Sojourn: 10})
	// n=0 window today: weight 1.
	e.Record(Quadruplet{Event: 127800, Prev: 1, Next: 3, Sojourn: 20})

	t0 := 129600.0 // 12:00 on day 1
	// den = 1 + 0.5; num(→2) = 0.5; num(→3) = 1.
	if got := e.HandOffProb(t0, 1, 5, 100, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("ph(→2) = %v, want 1/3", got)
	}
	if got := e.HandOffProb(t0, 1, 5, 100, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("ph(→3) = %v, want 2/3", got)
	}
	// The out-of-window event (next 3, soj 10) must not contribute: with
	// extSoj 15 only the day-1 soj-20 event remains.
	if got := e.HandOffProb(t0, 1, 15, 100, 3); got != 1 {
		t.Fatalf("ph(→3 | extSoj 15) = %v, want 1", got)
	}
}

func TestFiniteWindowPriorityClosestToNow(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 0, Weights: []float64{1}, NQuad: 2}
	e := New(cfg)
	e.Record(Quadruplet{Event: 7000, Prev: 1, Next: 2, Sojourn: 1})
	e.Record(Quadruplet{Event: 8000, Prev: 1, Next: 2, Sojourn: 2})
	e.Record(Quadruplet{Event: 9500, Prev: 1, Next: 2, Sojourn: 3})
	sel := e.Selected(10000, 1)
	if len(sel) != 2 {
		t.Fatalf("selected %d samples, want 2 (NQuad)", len(sel))
	}
	// Events 8000 and 9500 are closest to t0=10000; their sojourns are 2, 3.
	if sel[0].Sojourn != 2 || sel[1].Sojourn != 3 {
		t.Fatalf("selected sojourns = %v,%v want 2,3", sel[0].Sojourn, sel[1].Sojourn)
	}
}

func TestFiniteWindowN0OutranksN1(t *testing.T) {
	// With NQuad=1 and candidates in both windows, n=0 wins (first
	// priority rule: smaller n).
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 1, Weights: []float64{1, 1}, NQuad: 1}
	e := New(cfg)
	e.Record(Quadruplet{Event: 43200, Prev: 1, Next: 2, Sojourn: 111})  // yesterday noon
	e.Record(Quadruplet{Event: 129000, Prev: 1, Next: 2, Sojourn: 222}) // today, near noon
	sel := e.Selected(129600, 1)
	if len(sel) != 1 || sel[0].Sojourn != 222 {
		t.Fatalf("selected = %+v, want single n=0 sample (soj 222)", sel)
	}
}

func TestCacheRuleTwoTrimsCurrentWindow(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 1, Weights: []float64{1, 1}, NQuad: 2}
	e := New(cfg)
	e.Record(Quadruplet{Event: 1000, Prev: 1, Next: 2, Sojourn: 1})
	e.Record(Quadruplet{Event: 2000, Prev: 1, Next: 2, Sojourn: 2})
	e.Record(Quadruplet{Event: 3000, Prev: 1, Next: 2, Sojourn: 3})
	// All three are inside the n=0 window at t=3000; rule (2) keeps NQuad.
	if e.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1 (oldest in saturated window)", e.Evicted())
	}
}

func TestHorizonEvictionOnRecord(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 1, Weights: []float64{1, 1}, NQuad: 100}
	e := New(cfg)
	e.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 5})
	// Horizon is t − (1·86400 + 3600) = t − 90000.
	e.Record(Quadruplet{Event: 100000, Prev: 1, Next: 2, Sojourn: 6})
	if e.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1 (past horizon)", e.Evicted())
	}
}

func TestEvictBeforeSweepsIdlePairs(t *testing.T) {
	e := stationary(100)
	e.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 5})
	e.Record(Quadruplet{Event: 1, Prev: 2, Next: 1, Sojourn: 6})
	e.EvictBefore(0.5)
	if e.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", e.Evicted())
	}
	if got := e.HandOffProb(10, 1, 0, 100, 2); got != 0 {
		t.Fatalf("swept sample still predicted: ph = %v", got)
	}
	if got := e.HandOffProb(10, 2, 0, 100, 1); got != 1 {
		t.Fatalf("surviving sample lost: ph = %v", got)
	}
}

func TestSweepAt(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 1, Weights: []float64{1, 1}, NQuad: 100}
	e := New(cfg)
	e.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 5})
	e.Record(Quadruplet{Event: 50000, Prev: 2, Next: 1, Sojourn: 6})
	// Horizon at t=120000 is 120000 − 90000 = 30000: only the first
	// quadruplet is out of date.
	e.SweepAt(120000)
	if e.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", e.Evicted())
	}
	// Infinite-Tint estimators never sweep (recency pruning suffices).
	inf := stationary(10)
	inf.Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 5})
	inf.SweepAt(1e12)
	if inf.Evicted() != 0 {
		t.Fatal("infinite-Tint sweep evicted")
	}
}

func TestPatternSetSweepAt(t *testing.T) {
	ps := NewPatternSet(DailyConfig(), WeekCalendar{FirstWeekendDay: 5})
	ps.Record(Quadruplet{Event: 1000, Prev: 1, Next: 2, Sojourn: 5})
	day := 86400.0
	ps.Record(Quadruplet{Event: 5 * day, Prev: 1, Next: 2, Sojourn: 5}) // weekend set
	ps.SweepAt(20 * day)
	// Weekday estimator horizon: 20d − (1d + 1h) → the day-0 sample goes.
	if got := ps.ByClass(Weekday).Evicted(); got != 1 {
		t.Fatalf("weekday evicted = %d, want 1", got)
	}
	// Weekend estimator period is 7d: horizon 20d − (7d + 1h) → day-5
	// sample also out of date.
	if got := ps.ByClass(Weekend).Evicted(); got != 1 {
		t.Fatalf("weekend evicted = %d, want 1", got)
	}
}

func TestOutOfOrderRecordPanics(t *testing.T) {
	e := stationary(10)
	e.Record(Quadruplet{Event: 10, Prev: 1, Next: 2, Sojourn: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	e.Record(Quadruplet{Event: 5, Prev: 1, Next: 2, Sojourn: 1})
}

func TestNegativeSojournPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative sojourn did not panic")
		}
	}()
	stationary(10).Record(Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: -1})
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"stationary", StationaryConfig(), true},
		{"daily", DailyConfig(), true},
		{"zero Tint", Config{Tint: 0, NQuad: 10}, false},
		{"zero NQuad", Config{Tint: math.Inf(1), NQuad: 0}, false},
		{"finite Tint no period", Config{Tint: 100, NQuad: 10}, false},
		{"increasing weights", Config{Tint: 100, Period: 1000, NwinPeriods: 1, Weights: []float64{0.5, 1}, NQuad: 10}, false},
		{"weight above one", Config{Tint: 100, Period: 1000, NwinPeriods: 1, Weights: []float64{2, 1}, NQuad: 10}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestStaleIndexRebuild(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 0, Weights: []float64{1}, NQuad: 100, RebuildEvery: 0}
	e := New(cfg)
	e.Record(Quadruplet{Event: 1000, Prev: 1, Next: 2, Sojourn: 7})
	if got := e.HandOffProb(1500, 1, 0, 100, 2); got != 1 {
		t.Fatalf("in-window ph = %v, want 1", got)
	}
	// Four hours later the sample has slid out of the n=0 window.
	if got := e.HandOffProb(1000+4*3600, 1, 0, 100, 2); got != 0 {
		t.Fatalf("out-of-window ph = %v, want 0", got)
	}
}

func TestRebuildEveryStaleness(t *testing.T) {
	cfg := Config{Tint: 3600, Period: 86400, NwinPeriods: 0, Weights: []float64{1}, NQuad: 100, RebuildEvery: 10000}
	e := New(cfg)
	e.Record(Quadruplet{Event: 1000, Prev: 1, Next: 2, Sojourn: 7})
	if got := e.HandOffProb(1500, 1, 0, 100, 2); got != 1 {
		t.Fatal("in-window ph != 1")
	}
	// Within the staleness budget the stale index may still answer 1;
	// past it, the rebuild must happen. 1500 + 10001 > budget.
	if got := e.HandOffProb(1500+10001, 1, 0, 100, 2); got != 0 {
		t.Fatalf("ph after staleness budget = %v, want 0", got)
	}
}

// naiveProb recomputes Eq. 4 from the exposed selection, independently of
// the prefix-sum index.
func naiveProb(e *Estimator, t0 float64, prev topology.LocalIndex, extSoj, test float64, next topology.LocalIndex) float64 {
	sel := e.Selected(t0, prev)
	den, num := 0.0, 0.0
	for _, s := range sel {
		if s.Sojourn > extSoj {
			den += s.Weight
			if s.Next == next && s.Sojourn <= extSoj+test {
				num += s.Weight
			}
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Property: the indexed ph equals a naive recomputation over the
// selection, for random histories and queries.
func TestPropertyIndexedMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		e := stationary(50)
		n := 1 + r.IntN(300)
		for i := 0; i < n; i++ {
			e.Record(Quadruplet{
				Event:   float64(i),
				Prev:    topology.LocalIndex(r.IntN(3)),
				Next:    topology.LocalIndex(1 + r.IntN(4)),
				Sojourn: math.Floor(r.Float64()*50) / 2, // coarse grid → ties
			})
		}
		for q := 0; q < 40; q++ {
			prev := topology.LocalIndex(r.IntN(3))
			next := topology.LocalIndex(1 + r.IntN(4))
			extSoj := math.Floor(r.Float64()*60) / 2
			test := math.Floor(r.Float64() * 30)
			got := e.HandOffProb(float64(n), prev, extSoj, test, next)
			want := naiveProb(e, float64(n), prev, extSoj, test, next)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
			if got < 0 || got > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ph is non-decreasing in Test and Σ_next ph ≤ 1.
func TestPropertyMonotoneInTest(t *testing.T) {
	f := func(seed uint64, extRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		e := stationary(100)
		n := 1 + r.IntN(200)
		for i := 0; i < n; i++ {
			e.Record(Quadruplet{
				Event: float64(i), Prev: 1,
				Next:    topology.LocalIndex(1 + r.IntN(3)),
				Sojourn: r.Float64() * 100,
			})
		}
		extSoj := float64(extRaw) / 2
		prevSum := -1.0
		for test := 1.0; test <= 128; test *= 2 {
			sum := 0.0
			last := map[topology.LocalIndex]float64{}
			for next := topology.LocalIndex(1); next <= 3; next++ {
				v := e.HandOffProb(float64(n), 1, extSoj, test, next)
				if v < last[next] { // per-next monotonicity across doublings
					return false
				}
				last[next] = v
				sum += v
			}
			if sum > 1+1e-9 || sum+1e-9 < prevSum {
				return false
			}
			prevSum = sum
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternSetRouting(t *testing.T) {
	cal := WeekCalendar{FirstWeekendDay: 5}
	ps := NewPatternSet(StationaryConfig(), cal)
	day := 86400.0
	// Weekday observation on day 0 (Monday).
	ps.Record(Quadruplet{Event: 1000, Prev: 1, Next: 2, Sojourn: 10})
	// Weekend observation on day 5 (Saturday).
	ps.Record(Quadruplet{Event: 5*day + 1000, Prev: 1, Next: 3, Sojourn: 10})

	// A weekday query sees only the weekday sample.
	if got := ps.HandOffProb(1*day, 1, 0, 100, 2); got != 1 {
		t.Fatalf("weekday ph(→2) = %v, want 1", got)
	}
	if got := ps.HandOffProb(1*day, 1, 0, 100, 3); got != 0 {
		t.Fatalf("weekday ph(→3) = %v, want 0", got)
	}
	// A weekend query sees only the weekend sample.
	if got := ps.HandOffProb(6*day, 1, 0, 100, 3); got != 1 {
		t.Fatalf("weekend ph(→3) = %v, want 1", got)
	}
}

func TestWeekCalendar(t *testing.T) {
	cal := WeekCalendar{FirstWeekendDay: 5}
	day := 86400.0
	for d, want := range map[int]DayClass{0: Weekday, 4: Weekday, 5: Weekend, 6: Weekend, 7: Weekday, 12: Weekend} {
		if got := cal.ClassAt(float64(d)*day + 100); got != want {
			t.Errorf("day %d class = %v, want %v", d, got, want)
		}
	}
	if (WeekdayOnly{}).ClassAt(12*day) != Weekday {
		t.Error("WeekdayOnly returned weekend")
	}
}

func TestPatternSetWeekendPeriodStretched(t *testing.T) {
	ps := NewPatternSet(DailyConfig(), WeekCalendar{FirstWeekendDay: 5})
	if got := ps.ByClass(Weekend).Config().Period; got != 7*86400 {
		t.Fatalf("weekend period = %v, want one week", got)
	}
	if got := ps.ByClass(Weekday).Config().Period; got != 86400 {
		t.Fatalf("weekday period = %v, want one day", got)
	}
}

// TestPatternSetClassesAndLastEvent pins the serializer-facing
// accessors: Classes frames the per-class checkpoint streams, and
// LastEvent is the newest event across all classes (the instant a
// restored service resumes its simulation clock from).
func TestPatternSetClassesAndLastEvent(t *testing.T) {
	ps := NewPatternSet(DailyConfig(), WeekCalendar{FirstWeekendDay: 0})
	if got := ps.Classes(); got != 2 {
		t.Fatalf("Classes = %d, want 2", got)
	}
	if got := ps.LastEvent(); got != 0 {
		t.Fatalf("empty LastEvent = %v, want 0", got)
	}
	// Day 0 is a weekend under FirstWeekendDay 0; day 2 is a weekday.
	ps.Record(Quadruplet{Event: 3600, Prev: 0, Next: 1, Sojourn: 5})
	ps.Record(Quadruplet{Event: 2*86400 + 100, Prev: 0, Next: 1, Sojourn: 5})
	if got := ps.LastEvent(); got != 2*86400+100 {
		t.Fatalf("LastEvent = %v, want the weekday sample's time", got)
	}
	if got := ps.ByClass(Weekend).LastEvent(); got != 3600 {
		t.Fatalf("weekend LastEvent = %v, want 3600", got)
	}
}

// TestGenerationEpochs pins the cache-epoch contract: Generation moves
// exactly when the selection backing queries may have changed — Record,
// an eviction that drops samples, and index rebuilds (including lazy
// window-shift rebuilds) — and holds still across pure queries.
func TestGenerationEpochs(t *testing.T) {
	e := stationary(100)
	g0 := e.Generation()
	e.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 10})
	if e.Generation() == g0 {
		t.Fatal("Record did not move the generation")
	}
	e.HandOffProb(5, 1, 0, 100, 2) // first query rebuilds the pair index
	g1 := e.Generation()
	e.HandOffProb(5, 1, 0, 100, 2)
	e.HandOffProb(7, 1, 3, 50, 2) // infinite Tint: selection is time-independent
	e.SurvivorWeight(9, 1, 0)
	e.HandOffWeight(9, 1, 2, 0, 100)
	if e.Generation() != g1 {
		t.Fatalf("pure queries moved the generation %d -> %d", g1, e.Generation())
	}
	e.EvictBefore(0.5) // drops nothing
	if e.Generation() != g1 {
		t.Fatal("no-op eviction moved the generation")
	}
	e.EvictBefore(2) // drops the only sample
	if e.Generation() == g1 {
		t.Fatal("eviction that dropped a sample kept the generation")
	}

	// Finite Tint: query-time drift past RebuildEvery is a window shift
	// and must show up as a new epoch on the next query.
	f := New(Config{Tint: 3600, Period: 86400, NwinPeriods: 0, Weights: []float64{1}, NQuad: 10, RebuildEvery: 100})
	f.Record(Quadruplet{Event: 1000, Prev: 1, Next: 2, Sojourn: 7})
	f.HandOffProb(1000, 1, 0, 50, 2)
	g2 := f.Generation()
	f.HandOffProb(1050, 1, 0, 50, 2) // within the staleness budget
	if f.Generation() != g2 {
		t.Fatal("in-budget query moved the generation")
	}
	f.HandOffProb(1500, 1, 0, 50, 2) // past the budget: rebuild
	if f.Generation() == g2 {
		t.Fatal("window shift past RebuildEvery kept the generation")
	}
}

func TestRecordRejectsBadLocalIndex(t *testing.T) {
	for _, q := range []Quadruplet{
		{Event: 0, Prev: -1, Next: 2, Sojourn: 1},
		{Event: 0, Prev: 1, Next: -2, Sojourn: 1},
		{Event: 0, Prev: 1 << 20, Next: 2, Sojourn: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Record(%+v) did not panic", q)
				}
			}()
			stationary(10).Record(q)
		}()
	}
}

func BenchmarkHandOffProbIndexed(b *testing.B) {
	e := stationary(100)
	r := rand.New(rand.NewPCG(3, 0))
	for i := 0; i < 1000; i++ {
		e.Record(Quadruplet{
			Event: float64(i), Prev: topology.LocalIndex(r.IntN(3)),
			Next: topology.LocalIndex(1 + r.IntN(6)), Sojourn: r.Float64() * 100,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.HandOffProb(1000, 1, 20, 30, 2)
	}
}

// BenchmarkHandOffProbsInto measures the reusable-buffer fan-out query;
// with warm buffers it must run allocation-free (the bench fails the
// acceptance bar if -benchmem reports nonzero allocs/op).
func BenchmarkHandOffProbsInto(b *testing.B) {
	e := stationary(100)
	r := rand.New(rand.NewPCG(3, 0))
	for i := 0; i < 1000; i++ {
		e.Record(Quadruplet{
			Event: float64(i), Prev: topology.LocalIndex(r.IntN(3)),
			Next: topology.LocalIndex(1 + r.IntN(6)), Sojourn: r.Float64() * 100,
		})
	}
	nexts := make([]topology.LocalIndex, 0, 8)
	probs := make([]float64, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nexts, probs = e.HandOffProbsInto(1000, 1, 20, 30, nexts[:0], probs[:0])
	}
	_ = nexts
	_ = probs
}

func BenchmarkRecord(b *testing.B) {
	e := stationary(100)
	for i := 0; i < b.N; i++ {
		e.Record(Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 30})
	}
}
