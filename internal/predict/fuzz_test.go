package predict

import (
	"bytes"
	"testing"

	"cellqos/internal/topology"
)

// FuzzPersistRoundTrip fuzzes the quadruplet-cache binary codec: any
// input ReadFrom accepts must re-serialize to a canonical form that is
// itself readable and byte-stable (decode → encode → decode → encode
// yields identical bytes), and everything else must be rejected with an
// error — never a panic, never a silently inconsistent estimator.
func FuzzPersistRoundTrip(f *testing.F) {
	encode := func(build func(e *Estimator)) []byte {
		e := stationary(50)
		build(e)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	// Seed corpus: valid encodings of empty, single- and multi-pair
	// caches, plus corrupt variants (truncated, bit-flipped, zeroed).
	f.Add(encode(func(e *Estimator) {}))
	f.Add(encode(func(e *Estimator) {
		e.Record(Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 3.5})
	}))
	multi := encode(func(e *Estimator) {
		for i := 0; i < 40; i++ {
			e.Record(Quadruplet{
				Event:   float64(i),
				Prev:    topology.LocalIndex(i % 3),
				Next:    topology.LocalIndex(1 + i%3),
				Sojourn: float64(i%7) * 4,
			})
		}
	})
	f.Add(multi)
	f.Add(multi[:len(multi)/2])
	flipped := append([]byte(nil), multi...)
	flipped[9] ^= 0xff
	f.Add(flipped)
	f.Add(make([]byte, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := stationary(50)
		if _, err := dst.ReadFrom(bytes.NewReader(data)); err != nil {
			return // graceful rejection is the correct outcome for corrupt input
		}
		var first bytes.Buffer
		if _, err := dst.WriteTo(&first); err != nil {
			t.Fatalf("WriteTo after accepting input: %v", err)
		}
		again := stationary(50)
		if _, err := again.ReadFrom(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("own serialization rejected on re-read: %v", err)
		}
		if again.Recorded() != dst.Recorded() {
			t.Fatalf("recorded count drifted across round-trip: %d -> %d", dst.Recorded(), again.Recorded())
		}
		var second bytes.Buffer
		if _, err := again.WriteTo(&second); err != nil {
			t.Fatalf("second WriteTo: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form not byte-stable: first %d bytes, second %d bytes", first.Len(), second.Len())
		}
	})
}
