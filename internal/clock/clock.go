// Package clock is the single adapter through which wall-clock time
// enters the repository. The deterministic core (internal/{core,
// predict, sim, cellnet, runner, experiments}) is timed exclusively by
// simulation timestamps; everything that genuinely needs real time —
// the bsnet service mode's pacing and checkpoint cadence, diagnostics
// like runner.PointResult.Wall, circuit-breaker cooldowns — takes a
// Clock (or calls Wall explicitly) so every wall-clock read in the
// module is greppable, mockable, and machine-enforced: the cellqos-vet
// nodeterm analyzer flags time.Now and time.Since anywhere outside
// this package (DESIGN.md §15).
//
// Wall time never stamps engine-visible events directly. Service code
// converts it to monotone simulation seconds through a Bridge, whose
// output is clamped non-decreasing — the estimator's event-order
// invariant survives wall-clock steps (NTP slew, VM suspend).
package clock

import (
	"sync"
	"time"
)

// Clock provides time. Implementations: Wall (real time) and Manual
// (deterministic, test-driven).
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
	// Sleep pauses the caller for d (a Manual clock advances instead,
	// so paced loops run at test speed).
	Sleep(d time.Duration)
}

// Wall is the real wall clock: the module's only approved time.Now
// site. Use it directly for diagnostics-only reads; use a Bridge to
// derive simulation time from it.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Now().Sub(t) }

// Sleep implements Clock.
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Manual is a deterministic clock for tests: it only moves when
// advanced, and Sleep advances it by the requested duration so code
// paced against the clock runs at full speed under test. Safe for
// concurrent use.
type Manual struct {
	mu  sync.Mutex
	cur time.Time
}

// NewManual builds a Manual clock starting at t.
func NewManual(t time.Time) *Manual { return &Manual{cur: t} }

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.Sub(t)
}

// Sleep implements Clock by advancing the clock; it never blocks.
func (m *Manual) Sleep(d time.Duration) { m.Advance(d) }

// Advance moves the clock forward by d (negative d panics: the clock
// is monotone by construction).
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: Manual.Advance with negative duration")
	}
	m.mu.Lock()
	m.cur = m.cur.Add(d)
	m.mu.Unlock()
}

// Bridge maps wall instants to monotone simulation seconds: the one
// place real time is converted into the float64 timestamps the
// deterministic core consumes. SimNow never decreases even if the
// underlying clock steps backward, so feeding its output to
// predict.Estimator.Record (which panics on out-of-order events) is
// always safe. Safe for concurrent use.
type Bridge struct {
	c     Clock
	start time.Time
	base  float64 // sim seconds at start
	scale float64 // sim seconds per wall second

	mu   sync.Mutex
	last float64
}

// NewBridge anchors a bridge at the clock's current instant: SimNow
// returns base + scale·(elapsed wall seconds). A scale ≤ 0 defaults
// to 1 (one sim second per wall second).
func NewBridge(c Clock, base, scale float64) *Bridge {
	if scale <= 0 {
		scale = 1
	}
	return &Bridge{c: c, start: c.Now(), base: base, scale: scale, last: base}
}

// SimNow returns the current simulation time in seconds, clamped
// non-decreasing across calls.
func (b *Bridge) SimNow() float64 {
	t := b.base + b.c.Since(b.start).Seconds()*b.scale
	b.mu.Lock()
	defer b.mu.Unlock()
	if t < b.last {
		t = b.last
	}
	b.last = t
	return t
}
