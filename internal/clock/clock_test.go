package clock_test

import (
	"testing"
	"time"

	"cellqos/internal/clock"
)

// TestWallMonotone: Wall produces non-decreasing instants and Since
// measures against the same source.
func TestWallMonotone(t *testing.T) {
	w := clock.Wall{}
	a := w.Now()
	b := w.Now()
	if b.Before(a) {
		t.Fatalf("Wall.Now went backward: %v then %v", a, b)
	}
	if d := w.Since(a); d < 0 {
		t.Fatalf("Wall.Since negative: %v", d)
	}
}

// TestManual: the clock moves only on Advance/Sleep, and Since is
// computed against the frozen instant.
func TestManual(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := clock.NewManual(epoch)
	if got := m.Now(); !got.Equal(epoch) {
		t.Fatalf("Now = %v, want %v", got, epoch)
	}
	m.Advance(3 * time.Second)
	m.Sleep(2 * time.Second) // Sleep advances, never blocks
	if got := m.Since(epoch); got != 5*time.Second {
		t.Fatalf("Since(epoch) = %v, want 5s", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	m.Advance(-time.Second)
}

// TestBridgeMapsAndScales: SimNow = base + scale·elapsed, driven by a
// Manual clock.
func TestBridgeMapsAndScales(t *testing.T) {
	m := clock.NewManual(time.Unix(0, 0))
	b := clock.NewBridge(m, 100, 2)
	if got := b.SimNow(); got != 100 {
		t.Fatalf("SimNow at anchor = %v, want 100", got)
	}
	m.Advance(1500 * time.Millisecond)
	if got := b.SimNow(); got != 103 {
		t.Fatalf("SimNow after 1.5s at scale 2 = %v, want 103", got)
	}
}

// TestBridgeMonotoneUnderClockStep: a clock that steps backward must
// not drag SimNow backward — the estimator's event-order invariant
// depends on it. Manual cannot step back, so wrap it.
func TestBridgeMonotoneUnderClockStep(t *testing.T) {
	s := &steppable{cur: time.Unix(50, 0)}
	b := clock.NewBridge(s, 0, 1)
	s.cur = s.cur.Add(10 * time.Second)
	if got := b.SimNow(); got != 10 {
		t.Fatalf("SimNow = %v, want 10", got)
	}
	s.cur = s.cur.Add(-4 * time.Second) // wall clock stepped back
	if got := b.SimNow(); got != 10 {
		t.Fatalf("SimNow after backward step = %v, want held at 10", got)
	}
	s.cur = s.cur.Add(5 * time.Second)
	if got := b.SimNow(); got != 11 {
		t.Fatalf("SimNow after recovery = %v, want 11", got)
	}
}

// TestBridgeDefaultScale: scale ≤ 0 means 1:1.
func TestBridgeDefaultScale(t *testing.T) {
	m := clock.NewManual(time.Unix(0, 0))
	b := clock.NewBridge(m, 7, 0)
	m.Advance(2 * time.Second)
	if got := b.SimNow(); got != 9 {
		t.Fatalf("SimNow = %v, want 9", got)
	}
}

// steppable is a Clock whose current instant tests set directly,
// including backward.
type steppable struct{ cur time.Time }

func (s *steppable) Now() time.Time                  { return s.cur }
func (s *steppable) Since(t time.Time) time.Duration { return s.cur.Sub(t) }
func (s *steppable) Sleep(d time.Duration)           { s.cur = s.cur.Add(d) }
