package testleak

import (
	"strings"
	"testing"
	"time"
)

// recorder captures failures instead of failing the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Fatal(args ...any) {
	r.failed = true
	if len(args) == 1 {
		if s, ok := args[0].(string); ok {
			r.msg = s
		}
	}
}
func (r *recorder) Cleanup(f func()) { f() }

// TestCleanPasses: a body that spawns and joins goroutines passes.
func TestCleanPasses(t *testing.T) {
	r := &recorder{TB: t}
	check := Check(r)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
	if r.failed {
		t.Fatalf("clean body reported a leak:\n%s", r.msg)
	}
}

// TestLeakDetected: a goroutine that outlives the body is reported,
// and the report names the leaking function rather than dumping the
// whole process.
func TestLeakDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the full leak deadline")
	}
	r := &recorder{TB: t}
	check := Check(r)
	release := make(chan struct{})
	go leakyFunction(release)
	check()
	close(release)
	if !r.failed {
		t.Fatal("leaked goroutine not detected")
	}
	if !strings.Contains(r.msg, "leakyFunction") {
		t.Fatalf("report does not name the leaking function:\n%s", r.msg)
	}
	if !strings.HasPrefix(r.msg, "goroutine leak: 1 goroutine(s)") {
		t.Fatalf("report should contain exactly the one leaked goroutine:\n%s", r.msg)
	}
}

func leakyFunction(release <-chan struct{}) { <-release }

// TestSlowUnwindTolerated: a goroutine that exits shortly after the
// body (the read-pump pattern: Close returns before the pump notices)
// must not be reported — verification polls.
func TestSlowUnwindTolerated(t *testing.T) {
	r := &recorder{TB: t}
	check := Check(r)
	go func() { time.Sleep(150 * time.Millisecond) }()
	check()
	if r.failed {
		t.Fatalf("slow-unwinding goroutine reported as leak:\n%s", r.msg)
	}
}

// TestCheckCleanup: the t.Cleanup registration path works end to end.
func TestCheckCleanup(t *testing.T) {
	r := &recorder{TB: t}
	CheckCleanup(r) // recorder runs cleanups immediately; nothing leaked
	if r.failed {
		t.Fatalf("CheckCleanup on clean state failed:\n%s", r.msg)
	}
}
