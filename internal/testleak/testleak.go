// Package testleak is the repo's reusable goroutine-leak gate. It
// generalizes the snapshot-and-diff check the chaos suite grew in PR 3:
// record the set of live goroutines before a test body runs, and after
// teardown poll (goroutine exits are asynchronous — read pumps and
// serve goroutines unwind after Close returns) until every goroutine
// created during the test has exited or a deadline passes. On failure
// the report contains only the leaked goroutines' stacks, not the whole
// process dump, so the culprit is the first thing in the log.
//
// Usage, first line of a test (or subtest) that spawns goroutines:
//
//	defer testleak.Check(t)()
//
// or, to gate at cleanup time (after parallel subtests finish):
//
//	testleak.CheckCleanup(t)
package testleak

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"cellqos/internal/clock"
)

// deadline bounds how long Check waits for stragglers to unwind.
const deadline = 5 * time.Second

// Check snapshots the live goroutines and returns the verification
// func. Call it as `defer testleak.Check(t)()` so verification runs at
// the end of the enclosing function.
func Check(t testing.TB) func() {
	t.Helper()
	before := goroutineIDs()
	return func() {
		t.Helper()
		verify(t, before)
	}
}

// CheckCleanup registers the verification with t.Cleanup: the snapshot
// is taken now, the check runs after the test (and its subtests and
// earlier cleanups) complete.
func CheckCleanup(t testing.TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() { verify(t, before) })
}

// verify polls until no goroutine outside the baseline remains, then
// fails with the stack diff if the deadline passes first.
func verify(t testing.TB, before map[string]bool) {
	t.Helper()
	w := clock.Wall{}
	start := w.Now()
	var leaked []string
	for {
		runtime.GC() // finalizer-driven teardown (e.g. pollers) needs a nudge
		leaked = diff(before)
		if len(leaked) == 0 {
			return
		}
		if w.Since(start) > deadline {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "goroutine leak: %d goroutine(s) survived teardown:\n", len(leaked))
	for _, g := range leaked {
		b.WriteString(g)
		b.WriteString("\n")
	}
	t.Fatal(b.String())
}

// diff returns the stacks of goroutines not present in the baseline,
// excluding the caller's own goroutine and the runtime's test helpers.
func diff(before map[string]bool) []string {
	var leaked []string
	for _, g := range goroutines() {
		id := goroutineID(g)
		if id == "" || before[id] {
			continue
		}
		if ignorable(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// goroutineIDs returns the IDs of all currently live goroutines.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range goroutines() {
		if id := goroutineID(g); id != "" {
			ids[id] = true
		}
	}
	return ids
}

// goroutines captures one stack record per live goroutine.
func goroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range bytes.Split(buf, []byte("\n\n")) {
		if len(g) > 0 {
			out = append(out, string(g))
		}
	}
	return out
}

// goroutineID extracts the "goroutine N" prefix that uniquely names a
// goroutine for the process's lifetime.
func goroutineID(stack string) string {
	if !strings.HasPrefix(stack, "goroutine ") {
		return ""
	}
	end := strings.IndexByte(stack, '[')
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(stack[:end])
}

// ignorable filters goroutines that come and go on the runtime's or the
// testing package's own schedule and are not leaks: the current
// goroutine running the check, testing's test runners (a parallel
// subtest's tRunner parks after the snapshot), and runtime-internal
// helpers like GC background workers.
func ignorable(stack string) bool {
	for _, frag := range []string{
		"testleak.verify",    // the checking goroutine itself
		"testing.tRunner",    // test runners parked between phases
		"testing.(*T).Run",   // ditto
		"runtime.gc",         // GC helper goroutines
		"runtime.bgsweep",    // background sweeper
		"runtime.bgscavenge", // background scavenger
		"runtime.forcegchelper",
		"os/signal.signal_recv", // signal handling goroutine (lazily started)
		"os/signal.loop",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}
