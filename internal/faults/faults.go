// Package faults injects deterministic, seedable link faults into the
// distributed signaling plane. A Link wraps one direction of an
// io.ReadWriteCloser and perturbs its writes — dropping, delaying,
// duplicating, corrupting or truncating whole frames, black-holing them
// during a one-way partition, or crashing the link outright after a
// scheduled number of writes. Reads pass through untouched: faults on
// the reverse direction belong to the remote end's own Link, so a
// one-way partition is simply one side's Partition() while the other
// keeps flowing.
//
// All randomness comes from a PCG stream seeded by Config.Seed, so a
// chaos run replays exactly; all counters are atomic, so tests can
// assert exact fault tallies while the signaling goroutines are live.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLinkFailed is returned by writes after the crash schedule fires or
// Fail is called; the underlying connection is closed at that point, so
// the remote read pump observes the crash too.
var ErrLinkFailed = errors.New("faults: link failed (crash schedule)")

// Config parameterizes one direction's fault process. Probabilities are
// per write (the signaling codec issues exactly one Write per frame, so
// "per write" is "per frame"); the zero value injects nothing.
type Config struct {
	// Seed seeds the link's private PCG stream. Two links with equal
	// seeds and configs draw identical fault sequences.
	Seed uint64
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is written twice (the
	// duplicate carries the same seq, so the receiver's pump discards
	// the second response as stale).
	Duplicate float64
	// Corrupt is the probability one random byte of the frame is
	// bit-flipped before writing.
	Corrupt float64
	// Truncate is the probability the frame is cut short (a random
	// strict prefix is written), desynchronizing the remote decoder.
	Truncate float64
	// Delay stalls every write; DelayJitter adds a uniform random extra
	// in [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration
	// FailAfter crashes the link (closes the underlying connection)
	// when the FailAfter-th write is attempted; 0 never crashes. A
	// restart is the owner's job — see BSNode.SetReconnect.
	FailAfter uint64
}

// Validate checks probability ranges.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"duplicate", c.Duplicate}, {"corrupt", c.Corrupt}, {"truncate", c.Truncate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.Delay < 0 || c.DelayJitter < 0 {
		return fmt.Errorf("faults: negative delay")
	}
	return nil
}

// Counters is a snapshot of one Link's fault tallies.
type Counters struct {
	Writes      uint64 // write attempts seen (faulted or not)
	Dropped     uint64 // frames discarded by the drop process
	Blackholed  uint64 // frames discarded by an active partition
	Duplicated  uint64
	Corrupted   uint64
	Truncated   uint64
	Delayed     uint64
	Crashes     uint64 // 0 or 1: the crash schedule fired
	ReadsPassed uint64 // reads forwarded untouched
}

// Link is one fault-injected direction of a connection.
type Link struct {
	inner io.ReadWriteCloser
	cfg   Config

	mu  sync.Mutex // guards rng and the write path's draw order
	rng *rand.Rand

	writes      atomic.Uint64
	dropped     atomic.Uint64
	blackholed  atomic.Uint64
	duplicated  atomic.Uint64
	corrupted   atomic.Uint64
	truncated   atomic.Uint64
	delayed     atomic.Uint64
	crashes     atomic.Uint64
	readsPassed atomic.Uint64

	partitioned atomic.Bool
	failed      atomic.Bool
}

// Wrap builds a fault-injected Link over conn. It panics on an invalid
// config — fault plans are test/CLI inputs, not runtime data.
func Wrap(conn io.ReadWriteCloser, cfg Config) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Link{
		inner: conn,
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0xfa17_fa17_fa17_fa17)),
	}
}

// Pipe returns the two ends of an in-memory connection (net.Pipe), each
// wrapped with its own fault config — the a side's faults afflict
// frames a writes toward b, and vice versa.
func Pipe(aCfg, bCfg Config) (a, b *Link) {
	ca, cb := net.Pipe()
	return Wrap(ca, aCfg), Wrap(cb, bCfg)
}

// Partition starts a one-way partition: every write is black-holed
// (reported as successful to the writer) until Heal. Reads still flow.
func (l *Link) Partition() { l.partitioned.Store(true) }

// Heal ends the partition.
func (l *Link) Heal() { l.partitioned.Store(false) }

// Partitioned reports whether a partition is active.
func (l *Link) Partitioned() bool { return l.partitioned.Load() }

// Fail crashes the link immediately (same effect as the FailAfter
// schedule firing): the underlying connection closes and every further
// write returns ErrLinkFailed.
func (l *Link) Fail() {
	if l.failed.CompareAndSwap(false, true) {
		l.crashes.Add(1)
		l.inner.Close()
	}
}

// Failed reports whether the link has crashed.
func (l *Link) Failed() bool { return l.failed.Load() }

// Counters snapshots the fault tallies.
func (l *Link) Counters() Counters {
	return Counters{
		Writes:      l.writes.Load(),
		Dropped:     l.dropped.Load(),
		Blackholed:  l.blackholed.Load(),
		Duplicated:  l.duplicated.Load(),
		Corrupted:   l.corrupted.Load(),
		Truncated:   l.truncated.Load(),
		Delayed:     l.delayed.Load(),
		Crashes:     l.crashes.Load(),
		ReadsPassed: l.readsPassed.Load(),
	}
}

// Read forwards to the underlying connection untouched.
func (l *Link) Read(p []byte) (int, error) {
	n, err := l.inner.Read(p)
	if err == nil {
		l.readsPassed.Add(1)
	}
	return n, err
}

// Write applies the fault process to one frame. Drops and black holes
// report success to the writer — the frame vanishes in flight, exactly
// like a lossy link; the caller discovers the loss by timeout.
func (l *Link) Write(p []byte) (int, error) {
	if l.failed.Load() {
		return 0, ErrLinkFailed
	}
	seq := l.writes.Add(1)
	if fa := l.cfg.FailAfter; fa > 0 && seq >= fa {
		l.Fail()
		return 0, ErrLinkFailed
	}
	if l.partitioned.Load() {
		l.blackholed.Add(1)
		return len(p), nil
	}

	// Draw the whole fault plan for this frame under the lock, in a
	// fixed order, so a seed fully determines the sequence regardless of
	// writer scheduling.
	l.mu.Lock()
	drop := l.cfg.Drop > 0 && l.rng.Float64() < l.cfg.Drop
	dup := l.cfg.Duplicate > 0 && l.rng.Float64() < l.cfg.Duplicate
	corrupt := l.cfg.Corrupt > 0 && l.rng.Float64() < l.cfg.Corrupt
	truncate := l.cfg.Truncate > 0 && l.rng.Float64() < l.cfg.Truncate
	var flipAt, flipBit, cutAt int
	if corrupt && len(p) > 0 {
		flipAt = l.rng.IntN(len(p))
		flipBit = l.rng.IntN(8)
	}
	if truncate && len(p) > 1 {
		cutAt = 1 + l.rng.IntN(len(p)-1)
	}
	jitter := time.Duration(0)
	if l.cfg.DelayJitter > 0 {
		jitter = time.Duration(l.rng.Int64N(int64(l.cfg.DelayJitter)))
	}
	l.mu.Unlock()

	if d := l.cfg.Delay + jitter; d > 0 {
		l.delayed.Add(1)
		time.Sleep(d)
	}
	if drop {
		l.dropped.Add(1)
		return len(p), nil
	}
	buf := p
	if corrupt && len(p) > 0 {
		buf = append([]byte(nil), p...)
		buf[flipAt] ^= 1 << flipBit
		l.corrupted.Add(1)
	}
	if truncate && len(buf) > 1 {
		buf = buf[:cutAt]
		l.truncated.Add(1)
		if _, err := l.inner.Write(buf); err != nil {
			return 0, err
		}
		// Report full success: the writer believes the frame left whole.
		return len(p), nil
	}
	if _, err := l.inner.Write(buf); err != nil {
		return 0, err
	}
	if dup {
		l.duplicated.Add(1)
		if _, err := l.inner.Write(buf); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Close closes the underlying connection.
func (l *Link) Close() error { return l.inner.Close() }
