package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// memConn collects writes; reads drain what was written.
type memConn struct {
	bytes.Buffer
	closed bool
}

func (m *memConn) Close() error { m.closed = true; return nil }

func frame() []byte {
	b := make([]byte, 45)
	for i := range b {
		b[i] = byte(i + 1)
	}
	return b
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Drop: -0.1}, {Drop: 1.1}, {Duplicate: 2}, {Corrupt: -1},
		{Truncate: 1.5}, {Delay: -time.Second}, {DelayJitter: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if err := (Config{Drop: 0.5, Duplicate: 1, Corrupt: 0, Truncate: 1}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDropSwallowsFrame(t *testing.T) {
	conn := &memConn{}
	l := Wrap(conn, Config{Drop: 1})
	n, err := l.Write(frame())
	if err != nil || n != 45 {
		t.Fatalf("dropped write = %d,%v, want 45,nil (loss is silent)", n, err)
	}
	if conn.Len() != 0 {
		t.Fatalf("%d bytes leaked through a certain drop", conn.Len())
	}
	c := l.Counters()
	if c.Writes != 1 || c.Dropped != 1 {
		t.Fatalf("counters = %+v, want Writes=1 Dropped=1", c)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	conn := &memConn{}
	l := Wrap(conn, Config{})
	l.Partition()
	if !l.Partitioned() {
		t.Fatal("Partitioned() = false after Partition()")
	}
	if n, err := l.Write(frame()); err != nil || n != 45 {
		t.Fatalf("partitioned write = %d,%v", n, err)
	}
	if conn.Len() != 0 {
		t.Fatal("partitioned frame reached the wire")
	}
	l.Heal()
	if _, err := l.Write(frame()); err != nil {
		t.Fatal(err)
	}
	if conn.Len() != 45 {
		t.Fatalf("healed write delivered %d bytes, want 45", conn.Len())
	}
	c := l.Counters()
	if c.Blackholed != 1 || c.Dropped != 0 || c.Writes != 2 {
		t.Fatalf("counters = %+v, want Blackholed=1 Writes=2", c)
	}
}

func TestCrashSchedule(t *testing.T) {
	conn := &memConn{}
	l := Wrap(conn, Config{FailAfter: 3})
	for i := 0; i < 2; i++ {
		if _, err := l.Write(frame()); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := l.Write(frame()); !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("3rd write err = %v, want ErrLinkFailed", err)
	}
	if !conn.closed {
		t.Fatal("crash did not close the underlying connection")
	}
	if !l.Failed() {
		t.Fatal("Failed() = false after crash")
	}
	if _, err := l.Write(frame()); !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if c := l.Counters(); c.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", c.Crashes)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	conn := &memConn{}
	l := Wrap(conn, Config{Seed: 7, Corrupt: 1})
	in := frame()
	if _, err := l.Write(in); err != nil {
		t.Fatal(err)
	}
	out := conn.Bytes()
	if len(out) != len(in) {
		t.Fatalf("corrupted frame length %d, want %d", len(out), len(in))
	}
	diffBits := 0
	for i := range in {
		for b := 0; b < 8; b++ {
			if (in[i]^out[i])>>b&1 == 1 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diffBits)
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(in, frame()) {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestTruncateWritesStrictPrefix(t *testing.T) {
	conn := &memConn{}
	l := Wrap(conn, Config{Seed: 3, Truncate: 1})
	n, err := l.Write(frame())
	if err != nil || n != 45 {
		t.Fatalf("truncated write = %d,%v, want 45,nil", n, err)
	}
	if conn.Len() == 0 || conn.Len() >= 45 {
		t.Fatalf("wire saw %d bytes, want a strict non-empty prefix of 45", conn.Len())
	}
	if !bytes.Equal(conn.Bytes(), frame()[:conn.Len()]) {
		t.Fatal("truncated bytes are not a prefix of the frame")
	}
	if c := l.Counters(); c.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", c.Truncated)
	}
}

func TestDuplicateWritesTwice(t *testing.T) {
	conn := &memConn{}
	l := Wrap(conn, Config{Duplicate: 1})
	if _, err := l.Write(frame()); err != nil {
		t.Fatal(err)
	}
	if conn.Len() != 90 {
		t.Fatalf("wire saw %d bytes, want 90 (frame twice)", conn.Len())
	}
	if !bytes.Equal(conn.Bytes()[:45], conn.Bytes()[45:]) {
		t.Fatal("duplicate differs from the original")
	}
}

// TestDeterministicReplay: same seed and config ⇒ identical fault plan,
// byte-for-byte and counter-for-counter.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]byte, Counters) {
		conn := &memConn{}
		l := Wrap(conn, Config{Seed: 99, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.2, Truncate: 0.1})
		for i := 0; i < 200; i++ {
			if _, err := l.Write(frame()); err != nil {
				t.Fatal(err)
			}
		}
		return conn.Bytes(), l.Counters()
	}
	b1, c1 := run()
	b2, c2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different wire bytes")
	}
	if c1 != c2 {
		t.Fatalf("same seed produced different counters: %+v vs %+v", c1, c2)
	}
	if c1.Dropped == 0 || c1.Duplicated == 0 || c1.Corrupted == 0 || c1.Truncated == 0 {
		t.Fatalf("200 frames at these rates should hit every fault type: %+v", c1)
	}
}

func TestPipeOneWayPartition(t *testing.T) {
	a, b := Pipe(Config{}, Config{})
	defer a.Close()
	defer b.Close()

	a.Partition() // a → b dark; b → a still flows

	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 45)
		if _, err := a.Read(buf); err == nil {
			done <- buf
		}
	}()
	if _, err := b.Write(frame()); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if !bytes.Equal(got, frame()) {
			t.Fatal("healthy direction corrupted the frame")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healthy direction blocked")
	}
	// The dark direction: the write "succeeds" but nothing arrives.
	if n, err := a.Write(frame()); err != nil || n != 45 {
		t.Fatalf("partitioned write = %d,%v", n, err)
	}
	arrived := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		if _, err := b.Read(buf); err == nil {
			close(arrived)
		}
	}()
	select {
	case <-arrived:
		t.Fatal("frame crossed a partitioned link")
	case <-time.After(50 * time.Millisecond):
	}
}
