package mobility

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cellqos/internal/topology"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0)) }

func TestSpeedRangeSample(t *testing.T) {
	r := rng(1)
	for i := 0; i < 1000; i++ {
		v := HighMobility.Sample(r)
		if v < 80*KmhToKms || v > 120*KmhToKms {
			t.Fatalf("speed %v km/s outside [80,120] km/h", v)
		}
	}
}

func TestSpeedRangeDegenerate(t *testing.T) {
	r := SpeedRange{100, 100}
	if got := r.Sample(rng(2)); got != 100*KmhToKms {
		t.Fatalf("degenerate range sampled %v, want %v", got, 100*KmhToKms)
	}
}

func TestSpeedRangeInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted speed range did not panic")
		}
	}()
	SpeedRange{100, 50}.Sample(rng(3))
}

func TestLinearRingHopsAreAdjacent(t *testing.T) {
	top := topology.Ring(10)
	m := &Linear{Top: top, DiameterKm: 1, Speed: HighMobility}
	r := rng(4)
	for trial := 0; trial < 50; trial++ {
		start := topology.CellID(r.IntN(10))
		p := m.NewPath(r, start)
		cur := start
		for hop := 0; hop < 30; hop++ {
			h, ok := p.NextHop()
			if !ok {
				t.Fatal("ring path ended; mobiles never leave a ring")
			}
			if !top.Adjacent(cur, h.Next) {
				t.Fatalf("hop %d: %d -> %d not adjacent", hop, cur, h.Next)
			}
			if h.Sojourn <= 0 {
				t.Fatalf("non-positive sojourn %v", h.Sojourn)
			}
			cur = h.Next
		}
	}
}

func TestLinearNeverTurnsAround(t *testing.T) {
	// A4: mobiles run straight, so on a ring the hop sequence is strictly
	// monotone modulo n.
	top := topology.Ring(10)
	m := &Linear{Top: top, DiameterKm: 1, Speed: LowMobility}
	r := rng(5)
	for trial := 0; trial < 50; trial++ {
		p := m.NewPath(r, 0)
		h0, _ := p.NextHop()
		step := (int(h0.Next) - 0 + 10) % 10
		if step != 1 && step != 9 {
			t.Fatalf("first hop lands on %d", h0.Next)
		}
		cur := h0.Next
		for i := 0; i < 25; i++ {
			h, _ := p.NextHop()
			if (int(h.Next)-int(cur)+10)%10 != step {
				t.Fatalf("direction changed mid-path: %d -> %d (step %d)", cur, h.Next, step)
			}
			cur = h.Next
		}
	}
}

func TestLinearFullCellSojournConstant(t *testing.T) {
	// After the first (partial) cell, every sojourn is diameter/speed.
	top := topology.Ring(5)
	m := &Linear{Top: top, DiameterKm: 2, Speed: SpeedRange{72, 72}} // 72 km/h = 0.02 km/s
	p := m.NewPath(rng(6), 0)
	first, _ := p.NextHop()
	want := 2.0 / (72 * KmhToKms)
	if first.Sojourn > want {
		t.Fatalf("first sojourn %v exceeds full-cell time %v", first.Sojourn, want)
	}
	for i := 0; i < 10; i++ {
		h, _ := p.NextHop()
		if math.Abs(h.Sojourn-want) > 1e-9 {
			t.Fatalf("hop %d sojourn = %v, want %v", i, h.Sojourn, want)
		}
	}
}

func TestLinearFirstSojournUniform(t *testing.T) {
	// The entry point is uniform in the cell, so the mean first-cell
	// sojourn should be about half the full traversal time.
	top := topology.Ring(5)
	m := &Linear{Top: top, DiameterKm: 1, Speed: SpeedRange{100, 100}}
	full := 1.0 / (100 * KmhToKms)
	r := rng(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		p := m.NewPath(r, 0)
		h, _ := p.NextHop()
		if h.Sojourn <= 0 || h.Sojourn > full {
			t.Fatalf("first sojourn %v outside (0, %v]", h.Sojourn, full)
		}
		sum += h.Sojourn
	}
	mean := sum / n
	if math.Abs(mean-full/2) > full*0.02 {
		t.Fatalf("mean first sojourn %v, want ≈ %v", mean, full/2)
	}
}

func TestLinearDirectionsBalanced(t *testing.T) {
	top := topology.Ring(10)
	m := &Linear{Top: top, DiameterKm: 1, Speed: HighMobility}
	r := rng(8)
	fwd := 0
	const n = 10000
	for i := 0; i < n; i++ {
		p := m.NewPath(r, 3)
		h, _ := p.NextHop()
		if h.Next == 4 {
			fwd++
		}
	}
	if fwd < n*45/100 || fwd > n*55/100 {
		t.Fatalf("forward fraction %d/%d not ≈ 1/2", fwd, n)
	}
}

func TestLinearForwardOnly(t *testing.T) {
	top := topology.Line(10)
	m := &Linear{Top: top, DiameterKm: 1, Speed: HighMobility, Direction: ForwardOnly}
	r := rng(9)
	for trial := 0; trial < 20; trial++ {
		p := m.NewPath(r, 7)
		cells := []topology.CellID{}
		for {
			h, ok := p.NextHop()
			if !ok {
				break
			}
			cells = append(cells, h.Next)
		}
		// From cell 7 on a 10-cell line: visits 8, 9, then leaves (None).
		if len(cells) != 3 || cells[0] != 8 || cells[1] != 9 || cells[2] != topology.None {
			t.Fatalf("forward path from 7 = %v", cells)
		}
	}
}

func TestLinearBackwardOnly(t *testing.T) {
	top := topology.Line(5)
	m := &Linear{Top: top, DiameterKm: 1, Speed: HighMobility, Direction: BackwardOnly}
	p := m.NewPath(rng(10), 1)
	h1, ok := p.NextHop()
	if !ok || h1.Next != 0 {
		t.Fatalf("first hop = %v,%v want cell 0", h1.Next, ok)
	}
	h2, ok := p.NextHop()
	if !ok || h2.Next != topology.None {
		t.Fatalf("exit hop = %v,%v want None,true", h2.Next, ok)
	}
	if _, ok := p.NextHop(); ok {
		t.Fatal("path continued after leaving coverage")
	}
}

func TestLinearStationaryProb(t *testing.T) {
	top := topology.Ring(5)
	m := &Linear{Top: top, DiameterKm: 1, Speed: HighMobility, StationaryProb: 1}
	p := m.NewPath(rng(11), 2)
	h, ok := p.NextHop()
	if !ok || !math.IsInf(h.Sojourn, 1) || h.Next != topology.None {
		t.Fatalf("stationary mobile hop = %+v,%v", h, ok)
	}
}

func TestStationaryModel(t *testing.T) {
	p := Stationary{}.NewPath(rng(12), 0)
	h, ok := p.NextHop()
	if !ok || !math.IsInf(h.Sojourn, 1) {
		t.Fatalf("stationary hop = %+v,%v", h, ok)
	}
}

func TestLinearOnHexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Linear on hex topology did not panic")
		}
	}()
	m := &Linear{Top: topology.Hex(3, 3, true), DiameterKm: 1, Speed: HighMobility}
	m.NewPath(rng(13), 0)
}

func TestHexWalkHopsAdjacent(t *testing.T) {
	top := topology.Hex(5, 5, true)
	m := &HexWalk{Top: top, DiameterKm: 1, Speed: HighMobility, Persistence: 0.7}
	r := rng(14)
	for trial := 0; trial < 30; trial++ {
		start := topology.CellID(r.IntN(top.NumCells()))
		p := m.NewPath(r, start)
		cur := start
		for hop := 0; hop < 40; hop++ {
			h, ok := p.NextHop()
			if !ok {
				t.Fatal("wrapped hex path ended")
			}
			if !top.Adjacent(cur, h.Next) {
				t.Fatalf("hex hop %d -> %d not adjacent", cur, h.Next)
			}
			cur = h.Next
		}
	}
}

func TestHexWalkFullPersistenceGoesStraight(t *testing.T) {
	top := topology.Hex(6, 6, true)
	m := &HexWalk{Top: top, DiameterKm: 1, Speed: SpeedRange{60, 60}, Persistence: 1}
	r := rng(15)
	p := m.NewPath(r, 0)
	h1, _ := p.NextHop()
	// Direction is fixed; the step from each cell to the next must be the
	// same hex direction every time. Verify via repeated stepping.
	prev := h1.Next
	var dir = -1
	for d := 0; d < topology.NumHexDirs; d++ {
		if nb, ok := top.HexStep(0, d); ok && nb == h1.Next {
			dir = d
			break
		}
	}
	if dir == -1 {
		t.Fatal("first hex hop not a neighbor step")
	}
	for i := 0; i < 20; i++ {
		h, _ := p.NextHop()
		want, _ := top.HexStep(prev, dir)
		if h.Next != want {
			t.Fatalf("persistent walk deviated: got %d want %d", h.Next, want)
		}
		prev = h.Next
	}
}

func TestHexWalkLeavesUnwrappedGrid(t *testing.T) {
	top := topology.Hex(3, 3, false)
	m := &HexWalk{Top: top, DiameterKm: 1, Speed: HighMobility, Persistence: 1}
	r := rng(16)
	left := false
	for trial := 0; trial < 50 && !left; trial++ {
		p := m.NewPath(r, 4)
		for i := 0; i < 10; i++ {
			h, ok := p.NextHop()
			if !ok {
				break
			}
			if h.Next == topology.None {
				left = true
				break
			}
		}
	}
	if !left {
		t.Fatal("no mobile ever left a 3x3 unwrapped grid going straight")
	}
}

func TestHexWalkSojournTimes(t *testing.T) {
	top := topology.Hex(4, 4, true)
	m := &HexWalk{Top: top, DiameterKm: 1.5, Speed: SpeedRange{54, 54}, Persistence: 0.5}
	full := 1.5 / (54 * KmhToKms)
	p := m.NewPath(rng(17), 0)
	h, _ := p.NextHop()
	if h.Sojourn <= 0 || h.Sojourn > full {
		t.Fatalf("first hex sojourn %v outside (0,%v]", h.Sojourn, full)
	}
	for i := 0; i < 10; i++ {
		h, _ = p.NextHop()
		if math.Abs(h.Sojourn-full) > 1e-9 {
			t.Fatalf("hex sojourn %v, want %v", h.Sojourn, full)
		}
	}
}

func TestHexWalkBadPersistencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Persistence=2 did not panic")
		}
	}()
	m := &HexWalk{Top: topology.Hex(3, 3, true), DiameterKm: 1, Speed: HighMobility, Persistence: 2}
	m.NewPath(rng(18), 0)
}

// Property: every Linear path on a ring, for any seed, produces adjacent
// hops with positive finite sojourns, and its per-hop speed is constant.
func TestPropertyLinearPathWellFormed(t *testing.T) {
	top := topology.Ring(8)
	f := func(seed uint64, startRaw uint8) bool {
		r := rng(seed)
		m := &Linear{Top: top, DiameterKm: 1, Speed: SpeedRange{30, 130}}
		start := topology.CellID(int(startRaw) % 8)
		p := m.NewPath(r, start)
		cur := start
		var fullSojourn float64
		for i := 0; i < 20; i++ {
			h, ok := p.NextHop()
			if !ok || h.Sojourn <= 0 || math.IsInf(h.Sojourn, 0) {
				return false
			}
			if !top.Adjacent(cur, h.Next) {
				return false
			}
			if i >= 1 {
				if fullSojourn == 0 {
					fullSojourn = h.Sojourn
				} else if math.Abs(h.Sojourn-fullSojourn) > 1e-9 {
					return false
				}
			}
			cur = h.Next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: HexWalk on a torus never terminates and visits only valid cells.
func TestPropertyHexWalkWellFormed(t *testing.T) {
	top := topology.Hex(5, 7, true)
	f := func(seed uint64, persRaw uint8) bool {
		r := rng(seed)
		m := &HexWalk{
			Top: top, DiameterKm: 1, Speed: SpeedRange{20, 150},
			Persistence: float64(persRaw) / 255,
		}
		p := m.NewPath(r, topology.CellID(seed%uint64(top.NumCells())))
		for i := 0; i < 50; i++ {
			h, ok := p.NextHop()
			if !ok || !top.Valid(h.Next) || h.Sojourn <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
