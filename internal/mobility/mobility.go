// Package mobility generates mobile movement: which cell a mobile visits
// next and how long it stays in the current one. It implements the
// paper's simulation assumption A4 (1-D constant-speed travel in a random
// direction, never turning around), the Table 3 variant (all mobiles in
// one direction on an open line), and a 2-D hexagonal walk with direction
// persistence for the paper's future-work two-dimensional scenarios.
//
// A Model mints a Path per mobile; the Path is an iterator over
// (next cell, sojourn time) hops. Leaving the coverage area is reported
// as next == topology.None with ok == false thereafter.
package mobility

import (
	"fmt"
	"math"
	"math/rand/v2"

	"cellqos/internal/topology"
)

// KmhToKms converts km/h to km/s.
const KmhToKms = 1.0 / 3600.0

// Hop describes one cell visit.
type Hop struct {
	// Next is the cell the mobile enters when the sojourn elapses, or
	// topology.None if the mobile leaves the coverage area then.
	Next topology.CellID
	// Sojourn is the time in seconds the mobile spends in the current
	// cell before crossing. math.Inf(1) means the mobile never leaves.
	Sojourn float64
}

// Path iterates a single mobile's movement. Implementations are not safe
// for concurrent use.
type Path interface {
	// NextHop returns the upcoming hop out of the cell the mobile is
	// currently in. ok is false once the mobile has left the coverage
	// area. The first call describes the departure from the start cell.
	NextHop() (Hop, bool)
}

// Model mints movement paths for new mobiles.
type Model interface {
	// NewPath creates the movement of a mobile whose connection begins in
	// cell start. Randomness must come only from rng so runs are
	// reproducible.
	NewPath(rng *rand.Rand, start topology.CellID) Path
}

// SpeedAware is an optional Model extension for time-varying scenarios:
// the caller supplies the speed range in force when the mobile appears,
// overriding the model's configured range.
type SpeedAware interface {
	Model
	NewPathWithSpeed(rng *rand.Rand, start topology.CellID, sr SpeedRange) Path
}

// SpeedRange is a uniform speed distribution in km/h (paper A4:
// "a speed chosen randomly between SPmin and SPmax").
type SpeedRange struct {
	MinKmh, MaxKmh float64
}

// Sample draws a speed in km/s.
func (r SpeedRange) Sample(rng *rand.Rand) float64 {
	if r.MinKmh < 0 || r.MaxKmh < r.MinKmh {
		panic(fmt.Sprintf("mobility: bad speed range [%v,%v]", r.MinKmh, r.MaxKmh))
	}
	kmh := r.MinKmh + rng.Float64()*(r.MaxKmh-r.MinKmh)
	return kmh * KmhToKms
}

// HighMobility and LowMobility are the paper's two stationary-scenario
// speed ranges (§5.2).
var (
	HighMobility = SpeedRange{80, 120}
	LowMobility  = SpeedRange{40, 60}
)

// Direction selection for 1-D models.
type DirectionPolicy int

const (
	// RandomDirection picks +1 or −1 with equal probability (paper A4).
	RandomDirection DirectionPolicy = iota
	// ForwardOnly forces all mobiles to travel toward increasing cell
	// index (paper Table 3: "all mobiles follow the direction from cell
	// <1> to cell <10>").
	ForwardOnly
	// BackwardOnly forces travel toward decreasing cell index.
	BackwardOnly
)

// Linear is the 1-D constant-speed model of paper assumption A4: a mobile
// appears uniformly within its start cell, picks a speed and a direction,
// and runs straight forever. It works on ring and line topologies; on a
// line, crossing a border leaves the coverage area.
type Linear struct {
	Top        *topology.Topology
	DiameterKm float64 // cell diameter (paper A1: 1 km)
	Speed      SpeedRange
	Direction  DirectionPolicy
	// StationaryProb is the probability that a mobile never moves
	// (0 in the paper's experiments; used for mixed-mobility extensions).
	StationaryProb float64
}

// NewPath implements Model.
func (m *Linear) NewPath(rng *rand.Rand, start topology.CellID) Path {
	return m.NewPathWithSpeed(rng, start, m.Speed)
}

// NewPathWithSpeed implements SpeedAware: the time-varying scenarios pick
// the speed range in force at connection-setup time (§5.3).
func (m *Linear) NewPathWithSpeed(rng *rand.Rand, start topology.CellID, sr SpeedRange) Path {
	if m.Top.Kind() != topology.KindRing && m.Top.Kind() != topology.KindLine {
		panic("mobility: Linear requires a ring or line topology")
	}
	if m.DiameterKm <= 0 {
		panic("mobility: Linear.DiameterKm must be positive")
	}
	if m.StationaryProb > 0 && rng.Float64() < m.StationaryProb {
		return stationaryPath{cell: start}
	}
	dir := +1
	switch m.Direction {
	case RandomDirection:
		if rng.IntN(2) == 0 {
			dir = -1
		}
	case BackwardOnly:
		dir = -1
	}
	return &linearPath{
		m:      m,
		cell:   start,
		offset: rng.Float64() * m.DiameterKm, // A2: uniform within the cell
		speed:  sr.Sample(rng),
		dir:    dir,
	}
}

type linearPath struct {
	m      *Linear
	cell   topology.CellID
	offset float64 // km from the cell's low edge; only meaningful pre-first-hop
	speed  float64 // km/s
	dir    int     // ±1
	gone   bool
	first  bool // set after the first hop has been consumed
}

func (p *linearPath) NextHop() (Hop, bool) {
	if p.gone {
		return Hop{Next: topology.None}, false
	}
	d := p.m.DiameterKm
	dist := d
	if !p.first {
		p.first = true
		if p.dir > 0 {
			dist = d - p.offset
		} else {
			dist = p.offset
		}
		if dist <= 0 { // landed exactly on the boundary; treat as full next cell? no: cross immediately
			dist = 1e-12
		}
	}
	sojourn := dist / p.speed
	next := p.neighborInDir()
	if next == topology.None {
		p.gone = true
		return Hop{Next: topology.None, Sojourn: sojourn}, true
	}
	p.cell = next
	return Hop{Next: next, Sojourn: sojourn}, true
}

// neighborInDir resolves the adjacent cell in the travel direction, or
// None when the mobile exits an open line.
func (p *linearPath) neighborInDir() topology.CellID {
	n := p.m.Top.NumCells()
	i := int(p.cell)
	j := i + p.dir
	if p.m.Top.Kind() == topology.KindRing {
		return topology.CellID((j + n) % n)
	}
	if j < 0 || j >= n {
		return topology.None
	}
	return topology.CellID(j)
}

// stationaryPath never leaves its cell.
type stationaryPath struct{ cell topology.CellID }

func (stationaryPath) NextHop() (Hop, bool) {
	return Hop{Next: topology.None, Sojourn: math.Inf(1)}, true
}

// Stationary is a Model whose mobiles never move; useful for indoor
// scenarios and as a degenerate case in tests.
type Stationary struct{}

// NewPath implements Model.
func (Stationary) NewPath(_ *rand.Rand, start topology.CellID) Path {
	return stationaryPath{cell: start}
}
