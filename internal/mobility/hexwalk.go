package mobility

import (
	"math/rand/v2"

	"cellqos/internal/topology"
)

// HexWalk is a 2-D mobility model on a hexagonal grid, our substitution
// for the paper's future-work "two-dimensional cellular structures". A
// mobile picks a speed and an initial hex direction; in each cell it
// continues straight with probability Persistence, otherwise it turns
// ±60° with equal probability (road-network observation O4: direction is
// largely predictable from the path so far). Per-cell sojourn is
// DiameterKm/speed; the first cell's sojourn is a uniform fraction of
// that, since the mobile appears anywhere in the cell (A2).
//
// This keeps exactly what the paper's estimator consumes — correlated
// (prev, next, sojourn) triples — without simulating hexagon geometry.
type HexWalk struct {
	Top        *topology.Topology
	DiameterKm float64
	Speed      SpeedRange
	// Persistence is the probability of keeping the current direction at
	// each crossing; 1 means perfectly straight travel.
	Persistence float64
	// StationaryProb is the fraction of mobiles that never move.
	StationaryProb float64
}

// NewPath implements Model.
func (m *HexWalk) NewPath(rng *rand.Rand, start topology.CellID) Path {
	return m.NewPathWithSpeed(rng, start, m.Speed)
}

// NewPathWithSpeed implements SpeedAware.
func (m *HexWalk) NewPathWithSpeed(rng *rand.Rand, start topology.CellID, sr SpeedRange) Path {
	if m.Top.Kind() != topology.KindHex {
		panic("mobility: HexWalk requires a hex topology")
	}
	if m.DiameterKm <= 0 {
		panic("mobility: HexWalk.DiameterKm must be positive")
	}
	if m.Persistence < 0 || m.Persistence > 1 {
		panic("mobility: HexWalk.Persistence must be in [0,1]")
	}
	if m.StationaryProb > 0 && rng.Float64() < m.StationaryProb {
		return stationaryPath{cell: start}
	}
	return &hexPath{
		m:     m,
		rng:   rng,
		cell:  start,
		dir:   rng.IntN(topology.NumHexDirs),
		speed: sr.Sample(rng),
	}
}

type hexPath struct {
	m     *HexWalk
	rng   *rand.Rand
	cell  topology.CellID
	dir   int
	speed float64
	first bool
	gone  bool
}

func (p *hexPath) NextHop() (Hop, bool) {
	if p.gone {
		return Hop{Next: topology.None}, false
	}
	full := p.m.DiameterKm / p.speed
	sojourn := full
	if !p.first {
		p.first = true
		sojourn = full * p.rng.Float64()
		if sojourn <= 0 {
			sojourn = 1e-12
		}
	} else if p.rng.Float64() >= p.m.Persistence {
		if p.rng.IntN(2) == 0 {
			p.dir = (p.dir + 1) % topology.NumHexDirs
		} else {
			p.dir = (p.dir + topology.NumHexDirs - 1) % topology.NumHexDirs
		}
	}
	next, ok := p.m.Top.HexStep(p.cell, p.dir)
	if !ok {
		p.gone = true
		return Hop{Next: topology.None, Sojourn: sojourn}, true
	}
	p.cell = next
	return Hop{Next: next, Sojourn: sojourn}, true
}
