package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersProbabilities(t *testing.T) {
	var c Counters
	if c.PCB() != 0 || c.PHD() != 0 || c.NCalc() != 0 {
		t.Fatal("zero counters must yield zero ratios")
	}
	for i := 0; i < 100; i++ {
		c.RecordRequest(i < 25)
	}
	if got := c.PCB(); got != 0.25 {
		t.Fatalf("PCB = %v, want 0.25", got)
	}
	for i := 0; i < 200; i++ {
		c.RecordHandOff(i < 2)
	}
	if got := c.PHD(); got != 0.01 {
		t.Fatalf("PHD = %v, want 0.01", got)
	}
}

func TestCountersNCalc(t *testing.T) {
	var c Counters
	c.RecordAdmissionTest(1)
	c.RecordAdmissionTest(3)
	c.RecordAdmissionTest(2)
	if got := c.NCalc(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("NCalc = %v, want 2", got)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Requested: 10, Blocked: 1, HandOffs: 5, Dropped: 1, Completed: 3, Exited: 2, AdmissionTests: 10, BrCalcs: 12}
	b := Counters{Requested: 20, Blocked: 2, HandOffs: 15, Dropped: 0, Completed: 6, Exited: 1, AdmissionTests: 20, BrCalcs: 25}
	a.Add(&b)
	if a.Requested != 30 || a.Blocked != 3 || a.HandOffs != 20 || a.Dropped != 1 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Completed != 9 || a.Exited != 3 || a.AdmissionTests != 30 || a.BrCalcs != 37 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10)
	w.Set(10, 20) // 10 for [0,10)
	w.Set(30, 0)  // 20 for [10,30)
	// Mean over [0,40]: (10·10 + 20·20 + 0·10)/40 = 500/40 = 12.5
	if got := w.Mean(40); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 12.5", got)
	}
	if w.Value() != 0 {
		t.Fatalf("Value = %v, want 0", w.Value())
	}
}

func TestTimeWeightedBeforeAnySet(t *testing.T) {
	var w TimeWeighted
	if w.Mean(100) != 0 {
		t.Fatal("Mean before Set should be 0")
	}
}

func TestTimeWeightedNonZeroStart(t *testing.T) {
	var w TimeWeighted
	w.Set(100, 5)
	if got := w.Mean(200); got != 5 {
		t.Fatalf("Mean = %v, want 5 (constant since start)", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set did not panic")
		}
	}()
	w.Set(5, 2)
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	ti, v := s.At(1)
	if ti != 2 || v != 20 {
		t.Fatalf("At(1) = %v,%v", ti, v)
	}
}

func TestSeriesThinning(t *testing.T) {
	s := Series{MinGap: 10}
	s.Append(0, 1)
	s.Append(3, 2)  // within gap: replaces
	s.Append(9, 3)  // within gap: replaces
	s.Append(20, 4) // new point
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if ti, v := s.At(0); ti != 9 || v != 3 {
		t.Fatalf("thinned point = %v,%v, want last of burst (9,3)", ti, v)
	}
}

func TestSeriesValueAt(t *testing.T) {
	var s Series
	s.Append(10, 1)
	s.Append(20, 2)
	s.Append(30, 3)
	if _, ok := s.ValueAt(5); ok {
		t.Fatal("ValueAt before first point returned ok")
	}
	cases := map[float64]float64{10: 1, 15: 1, 20: 2, 29.9: 2, 30: 3, 100: 3}
	for at, want := range cases {
		if got, ok := s.ValueAt(at); !ok || got != want {
			t.Errorf("ValueAt(%v) = %v,%v want %v", at, got, ok, want)
		}
	}
}

func TestHourlyBuckets(t *testing.T) {
	var h Hourly
	h.RecordRequest(100, true)
	h.RecordRequest(3700, false)
	h.RecordHandOff(3800, true)
	h.RecordHandOff(3900, false)
	if h.Hours() != 2 {
		t.Fatalf("Hours = %d, want 2", h.Hours())
	}
	h0 := h.Hour(0)
	if h0.Requested != 1 || h0.Blocked != 1 {
		t.Fatalf("hour 0 = %+v", h0)
	}
	h1 := h.Hour(1)
	if h1.HandOffs != 2 || h1.Dropped != 1 || h1.PHD() != 0.5 {
		t.Fatalf("hour 1 = %+v", h1)
	}
	if out := h.Hour(99); out.Requested != 0 {
		t.Fatal("out-of-range hour not zero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Cell", "PCB", "PHD")
	tb.AddRow(1, 0.623, 6.53e-3)
	tb.AddRow(2, 0.0, 0.25)
	out := tb.String()
	if !strings.Contains(out, "Cell") || !strings.Contains(out, "6.53e-03") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "Cell,PCB,PHD\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
}

func TestFormatProb(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.623:   "0.623",
		0.01:    "0.010",
		6.53e-3: "6.53e-03",
	}
	for in, want := range cases {
		if got := FormatProb(in); got != want {
			t.Errorf("FormatProb(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: TimeWeighted Mean always lies within [min, max] of set values.
func TestPropertyTimeWeightedBounded(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var w TimeWeighted
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			fv := float64(v)
			w.Set(float64(i), fv)
			if fv < lo {
				lo = fv
			}
			if fv > hi {
				hi = fv
			}
		}
		m := w.Mean(float64(len(vals)))
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PCB and PHD are always in [0,1] and Add preserves totals.
func TestPropertyCountersAddConsistent(t *testing.T) {
	f := func(reqs, blocks, hos, drops uint16) bool {
		a := Counters{
			Requested: uint64(reqs), Blocked: uint64(blocks) % (uint64(reqs) + 1),
			HandOffs: uint64(hos), Dropped: uint64(drops) % (uint64(hos) + 1),
		}
		b := a
		sum := a
		sum.Add(&b)
		if sum.Requested != 2*a.Requested || sum.Dropped != 2*a.Dropped {
			return false
		}
		for _, c := range []*Counters{&a, &sum} {
			if c.PCB() < 0 || c.PCB() > 1 || c.PHD() < 0 || c.PHD() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
