// Package stats collects the paper's evaluation metrics: new-connection
// blocking probability P_CB, hand-off dropping probability P_HD,
// time-averaged target-reservation and used bandwidth (B_r, B_u),
// admission-test complexity N_calc, per-hour buckets for the
// time-varying plots, and time series for the per-cell traces.
package stats

import (
	"fmt"
	"math"
)

// Counters tallies connection-level events for one cell (or aggregated
// over a whole system).
type Counters struct {
	Requested uint64 // new-connection admission attempts
	Blocked   uint64 // ... of which rejected
	HandOffs  uint64 // hand-off arrivals into the cell
	Dropped   uint64 // ... of which dropped for lack of bandwidth
	Completed uint64 // connections that ended naturally in the cell
	Exited    uint64 // connections whose mobile left the coverage area

	AdmissionTests uint64 // admission tests run
	BrCalcs        uint64 // target-reservation-bandwidth calculations (Σ for N_calc)
}

// RecordRequest tallies a new-connection attempt.
func (c *Counters) RecordRequest(blocked bool) {
	c.Requested++
	if blocked {
		c.Blocked++
	}
}

// RecordHandOff tallies a hand-off arrival.
func (c *Counters) RecordHandOff(dropped bool) {
	c.HandOffs++
	if dropped {
		c.Dropped++
	}
}

// RecordAdmissionTest tallies one admission test that required n B_r
// calculations (the paper's N_calc numerator and denominator).
func (c *Counters) RecordAdmissionTest(nBrCalcs int) {
	c.AdmissionTests++
	c.BrCalcs += uint64(nBrCalcs)
}

// PCB returns the observed new-connection blocking probability; 0 when
// nothing was requested.
func (c *Counters) PCB() float64 { return ratio(c.Blocked, c.Requested) }

// PHD returns the observed hand-off dropping probability; 0 when no
// hand-offs occurred.
func (c *Counters) PHD() float64 { return ratio(c.Dropped, c.HandOffs) }

// NCalc returns the average number of B_r calculations per admission test.
func (c *Counters) NCalc() float64 { return fratio(float64(c.BrCalcs), float64(c.AdmissionTests)) }

// Add accumulates other into c (for aggregating cells into a system view).
func (c *Counters) Add(other *Counters) {
	c.Requested += other.Requested
	c.Blocked += other.Blocked
	c.HandOffs += other.HandOffs
	c.Dropped += other.Dropped
	c.Completed += other.Completed
	c.Exited += other.Exited
	c.AdmissionTests += other.AdmissionTests
	c.BrCalcs += other.BrCalcs
}

func ratio(num, den uint64) float64 { return fratio(float64(num), float64(den)) }

func fratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// TimeWeighted tracks a piecewise-constant value and its time integral,
// yielding exact time averages (used for the paper's average B_r / B_u).
type TimeWeighted struct {
	value    float64
	integral float64
	start    float64
	last     float64
	started  bool
}

// Set records that the value changed to v at time t. Times must be
// non-decreasing.
func (w *TimeWeighted) Set(t, v float64) {
	if math.IsNaN(v) {
		panic("stats: NaN value")
	}
	if !w.started {
		w.started = true
		w.start, w.last, w.value = t, t, v
		return
	}
	if t < w.last {
		panic(fmt.Sprintf("stats: time went backwards: %v after %v", t, w.last))
	}
	w.integral += w.value * (t - w.last)
	w.last, w.value = t, v
}

// Value returns the current value.
func (w *TimeWeighted) Value() float64 { return w.value }

// Mean returns the time average over [start, now]. now must be ≥ the last
// Set time. Zero before any Set.
func (w *TimeWeighted) Mean(now float64) float64 {
	if !w.started || now <= w.start {
		return w.value
	}
	if now < w.last {
		panic("stats: Mean before last Set")
	}
	return (w.integral + w.value*(now-w.last)) / (now - w.start)
}

// Series is an append-only (time, value) trace with optional thinning:
// points closer than MinGap seconds to the previous kept point are
// dropped (the final point of a burst is what plots need anyway).
type Series struct {
	MinGap float64
	T, V   []float64
}

// Append adds a point, honoring MinGap thinning.
func (s *Series) Append(t, v float64) {
	if n := len(s.T); n > 0 && s.MinGap > 0 && t-s.T[n-1] < s.MinGap {
		// Within the gap: replace the last point so the trace ends on the
		// most recent value.
		s.T[n-1], s.V[n-1] = t, v
		return
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of stored points.
func (s *Series) Len() int { return len(s.T) }

// At returns point i.
func (s *Series) At(i int) (t, v float64) { return s.T[i], s.V[i] }

// ValueAt returns the value of the last point at or before t (sample-and-
// hold), and false when no point precedes t.
func (s *Series) ValueAt(t float64) (float64, bool) {
	lo, hi := 0, len(s.T)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.T[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return s.V[lo-1], true
}

// Hourly buckets counters by hour-of-run for the time-varying plots
// (Fig. 14(b) reports per-hour P_CB and P_HD).
type Hourly struct {
	buckets []Counters
}

// bucket returns the counter set for time t, growing as needed.
func (h *Hourly) bucket(t float64) *Counters {
	i := int(t / 3600)
	if i < 0 {
		i = 0
	}
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, Counters{})
	}
	return &h.buckets[i]
}

// RecordRequest tallies a new-connection attempt at time t.
func (h *Hourly) RecordRequest(t float64, blocked bool) { h.bucket(t).RecordRequest(blocked) }

// RecordHandOff tallies a hand-off arrival at time t.
func (h *Hourly) RecordHandOff(t float64, dropped bool) { h.bucket(t).RecordHandOff(dropped) }

// Hours returns the number of buckets.
func (h *Hourly) Hours() int { return len(h.buckets) }

// Hour returns bucket i (zero value beyond the recorded range).
func (h *Hourly) Hour(i int) Counters {
	if i < 0 || i >= len(h.buckets) {
		return Counters{}
	}
	return h.buckets[i]
}
