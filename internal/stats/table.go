package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned ASCII tables for the experiment harness output
// (the per-cell status tables and figure row dumps).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatProb(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a pre-formatted row.
func (t *Table) AddRowStrings(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatProb formats a probability the way the paper's tables do
// (e.g. 6.53e-3, or 0 for exact zero).
func FormatProb(p float64) string {
	if p == 0 {
		return "0"
	}
	if p >= 0.01 {
		return fmt.Sprintf("%.3f", p)
	}
	return fmt.Sprintf("%.2e", p)
}
