package experiments

import (
	"fmt"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/plot"
	"cellqos/internal/stats"
)

// stationaryRvos is the paper's voice-ratio sweep for Figs. 7–9.
var stationaryRvos = []float64{1.0, 0.8, 0.5}

// mobilityGroups orders the paper's two speed ranges as grid groups.
var mobilityGroups = []bool{true, false}

// mobilityRvoProbTables fills rep with the Fig. 7/8 output shape: per
// mobility group, a (load, Rvo, PCB, PHD) table plus a log-probability
// chart, from a loadGrid result indexed [mobility][rvo][load].
func mobilityRvoProbTables(rep *Report, res [][][]*cellnet.Result, loads []float64, figName string) {
	for g, high := range mobilityGroups {
		tb := stats.NewTable("load", "Rvo", "PCB", "PHD")
		sc := newCollector()
		for s, rvo := range stationaryRvos {
			for li, load := range loads {
				r := res[g][s][li]
				tb.AddRowStrings(fmtF(load), fmtF(rvo), stats.FormatProb(r.PCB), stats.FormatProb(r.PHD))
				sc.add(fmt.Sprintf("PCB Rvo=%.1f", rvo), load, r.PCB)
				sc.add(fmt.Sprintf("PHD Rvo=%.1f", rvo), load, r.PHD)
			}
		}
		label := fmt.Sprintf("(%s user mobility)", mobilityName(high))
		rep.Tables = append(rep.Tables, LabeledTable{Label: label, Table: tb})
		rep.Charts = append(rep.Charts, sc.into(probChart(figName+" "+label)))
	}
}

// Fig7 regenerates Figure 7: P_CB and P_HD versus offered load under
// static reservation of G = 10 BUs, for R_vo ∈ {1.0, 0.8, 0.5} and both
// mobility ranges.
func Fig7(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "fig7",
		Title: "P_CB and P_HD vs offered load: static reservation, G = 10 BUs",
		PaperClaim: "10-BU static reservation keeps P_HD ≤ 0.01 for R_vo = 1.0 but " +
			"violates the target for R_vo = 0.5; for R_vo = 0.8 it holds under low " +
			"mobility but fails under high mobility at heavy load. P_CB grows with load.",
	}
	res, err := loadGrid(opt, rep.ID, len(mobilityGroups), len(stationaryRvos),
		func(g, s int, load float64) cellnet.Config {
			cfg := stationaryConfig(core.Static, load, stationaryRvos[s], mobilityGroups[g], opt.Seed)
			cfg.StaticReserve = 10
			return cfg
		})
	if err != nil {
		return nil, err
	}
	mobilityRvoProbTables(rep, res, sortedLoads(opt), "Fig. 7 static G=10")
	return rep, nil
}

// Fig8 regenerates Figure 8: the same sweep under AC3; P_HD must stay at
// or below the 0.01 target everywhere.
func Fig8(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "fig8",
		Title: "P_CB and P_HD vs offered load: AC3",
		PaperClaim: "P_HD ≤ P_HD,target = 0.01 across the whole load range, both " +
			"mobility ranges and all voice ratios; the P_CB–P_HD gap narrows as the " +
			"load decreases (less bandwidth is reserved when less is needed).",
	}
	res, err := loadGrid(opt, rep.ID, len(mobilityGroups), len(stationaryRvos),
		func(g, s int, load float64) cellnet.Config {
			return stationaryConfig(core.AC3, load, stationaryRvos[s], mobilityGroups[g], opt.Seed)
		})
	if err != nil {
		return nil, err
	}
	mobilityRvoProbTables(rep, res, sortedLoads(opt), "Fig. 8 AC3")
	return rep, nil
}

// Fig9 regenerates Figure 9: average target reservation bandwidth B_r
// and average used bandwidth B_u versus load under AC3.
func Fig9(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "fig9",
		Title: "Average target reservation B_r and used bandwidth B_u vs load: AC3",
		PaperClaim: "B_r increases monotonically with load and saturates in the " +
			"over-loaded region; more video (smaller R_vo) and higher mobility both " +
			"raise B_r; B_u moves inversely to B_r.",
	}
	res, err := loadGrid(opt, rep.ID, len(mobilityGroups), len(stationaryRvos),
		func(g, s int, load float64) cellnet.Config {
			return stationaryConfig(core.AC3, load, stationaryRvos[s], mobilityGroups[g], opt.Seed)
		})
	if err != nil {
		return nil, err
	}
	loads := sortedLoads(opt)
	for g, high := range mobilityGroups {
		tb := stats.NewTable("load", "Rvo", "avgBr", "avgBu")
		sc := newCollector()
		for s, rvo := range stationaryRvos {
			for li, load := range loads {
				r := res[g][s][li]
				tb.AddRowStrings(fmtF(load), fmtF(rvo),
					fmt.Sprintf("%.2f", r.AvgBr), fmt.Sprintf("%.2f", r.AvgBu))
				sc.add(fmt.Sprintf("Br Rvo=%.1f", rvo), load, r.AvgBr)
				sc.add(fmt.Sprintf("Bu Rvo=%.1f", rvo), load, r.AvgBu)
			}
		}
		label := fmt.Sprintf("(%s user mobility)", mobilityName(high))
		rep.Tables = append(rep.Tables, LabeledTable{Label: label, Table: tb})
		ch := plot.New("Fig. 9 AC3 "+label, "offered load (BU)", "bandwidth (BU)")
		rep.Charts = append(rep.Charts, sc.into(ch))
	}
	return rep, nil
}

// comparedPolicies is the Fig. 12/13 admission-scheme comparison set.
var comparedPolicies = []core.Policy{core.AC1, core.AC2, core.AC3}

// Fig12 regenerates Figure 12: P_CB and P_HD versus load for AC1, AC2
// and AC3 under high mobility, for R_vo = 1.0 and 0.5.
func Fig12(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "fig12",
		Title: "P_CB and P_HD vs offered load: AC1 vs AC2 vs AC3 (high mobility)",
		PaperClaim: "The three schemes have nearly identical P_CB (AC1 slightly " +
			"lowest). AC2 and AC3 keep P_HD bounded; AC1 exceeds the 0.01 target in " +
			"the heavily over-loaded region (L > 150) but stays below ~0.02.",
	}
	rvos := []float64{1.0, 0.5}
	res, err := loadGrid(opt, rep.ID, len(rvos), len(comparedPolicies),
		func(g, s int, load float64) cellnet.Config {
			return stationaryConfig(comparedPolicies[s], load, rvos[g], true, opt.Seed)
		})
	if err != nil {
		return nil, err
	}
	loads := sortedLoads(opt)
	for g, rvo := range rvos {
		tb := stats.NewTable("load", "policy", "PCB", "PHD")
		sc := newCollector()
		for s, policy := range comparedPolicies {
			for li, load := range loads {
				r := res[g][s][li]
				tb.AddRowStrings(fmtF(load), policy.String(), stats.FormatProb(r.PCB), stats.FormatProb(r.PHD))
				sc.add("PCB "+policy.String(), load, r.PCB)
				sc.add("PHD "+policy.String(), load, r.PHD)
			}
		}
		label := fmt.Sprintf("(Rvo = %.1f)", rvo)
		rep.Tables = append(rep.Tables, LabeledTable{Label: label, Table: tb})
		rep.Charts = append(rep.Charts, sc.into(probChart("Fig. 12 "+label)))
	}
	return rep, nil
}

// Fig13 regenerates Figure 13: average number of B_r calculations per
// admission test (N_calc) versus load.
func Fig13(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "fig13",
		Title: "Average N_calc per admission test vs offered load",
		PaperClaim: "N_calc = 1 for AC1 and 3 for AC2 at every load (1-D ring). " +
			"AC3 stays at 1 under light load and rises from roughly L = 80, " +
			"remaining below 1.5 — less than half of AC2.",
	}
	res, err := loadGrid(opt, rep.ID, len(mobilityGroups), len(comparedPolicies),
		func(g, s int, load float64) cellnet.Config {
			return stationaryConfig(comparedPolicies[s], load, 1.0, mobilityGroups[g], opt.Seed)
		})
	if err != nil {
		return nil, err
	}
	loads := sortedLoads(opt)
	for g, high := range mobilityGroups {
		tb := stats.NewTable("load", "policy", "Ncalc")
		sc := newCollector()
		for s, policy := range comparedPolicies {
			for li, load := range loads {
				r := res[g][s][li]
				tb.AddRowStrings(fmtF(load), policy.String(), fmt.Sprintf("%.3f", r.NCalc))
				sc.add(policy.String(), load, r.NCalc)
			}
		}
		label := fmt.Sprintf("(%s user mobility)", mobilityName(high))
		rep.Tables = append(rep.Tables, LabeledTable{Label: label, Table: tb})
		ch := plot.New("Fig. 13 "+label, "offered load (BU)", "avg B_r calculations per admission")
		rep.Charts = append(rep.Charts, sc.into(ch))
	}
	return rep, nil
}
