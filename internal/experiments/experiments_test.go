package experiments

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"cellqos/internal/audit"
)

// quickOpt shrinks runs so the whole suite stays test-sized; shape
// assertions are correspondingly lenient. Every experiment test runs
// with the invariant audit attached (sampled; full check per Snapshot).
func quickOpt() Options {
	return Options{
		Duration:      900,
		TraceDuration: 600,
		Days:          1,
		Loads:         []float64{100, 300},
		Seed:          7,
		Audit:         &audit.Checker{EveryN: 64},
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Days = 0 // fig14 is exercised separately (it dominates runtime)
	for _, e := range All() {
		if e.ID == "fig14" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			if rep.Title == "" || rep.PaperClaim == "" {
				t.Fatal("report missing title or claim")
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, lt := range rep.Tables {
				out := lt.Table.String()
				if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
					t.Fatalf("table %q has no data rows:\n%s", lt.Label, out)
				}
				if csv := lt.Table.CSV(); !strings.Contains(csv, ",") {
					t.Fatalf("CSV malformed: %s", csv)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig8"); !ok {
		t.Fatal("fig8 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus experiment found")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

// parse helpers for table CSV assertions.
func csvRows(tb LabeledTable) [][]string {
	lines := strings.Split(strings.TrimSpace(tb.Table.CSV()), "\n")
	var rows [][]string
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	return rows
}

func parseProb(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestFig8ShapeAC3MeetsTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Duration = 3000
	rep, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range rep.Tables {
		for _, row := range csvRows(lt) {
			if phd := parseProb(row[3]); phd > 0.02 {
				t.Errorf("%s load=%s Rvo=%s: PHD %v far above target", lt.Label, row[0], row[1], phd)
			}
		}
	}
}

func TestFig13ShapeNCalc(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rep, err := Fig13(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range rep.Tables {
		for _, row := range csvRows(lt) {
			nc := parseProb(row[2])
			switch row[1] {
			case "AC1":
				if nc != 1 {
					t.Errorf("AC1 Ncalc = %v, want 1", nc)
				}
			case "AC2":
				if nc != 3 {
					t.Errorf("AC2 Ncalc = %v, want 3", nc)
				}
			case "AC3":
				if nc < 1 || nc > 3 {
					t.Errorf("AC3 Ncalc = %v outside [1,3]", nc)
				}
			}
		}
	}
}

func TestFig9ShapeBrMonotoneBroadly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Loads = []float64{60, 300}
	rep, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Within each (mobility, Rvo) group, B_r at load 300 must exceed B_r
	// at load 60 (monotone increase per the paper).
	for _, lt := range rep.Tables {
		rows := csvRows(lt)
		for i := 0; i+1 < len(rows); i += 2 {
			lo, hi := parseProb(rows[i][2]), parseProb(rows[i+1][2])
			if rows[i][1] != rows[i+1][1] {
				t.Fatalf("row pairing broken: %v / %v", rows[i], rows[i+1])
			}
			if hi <= lo {
				t.Errorf("%s Rvo=%s: avgBr(300)=%v !> avgBr(60)=%v", lt.Label, rows[i][1], hi, lo)
			}
		}
	}
}

func TestTable3ShapeCellOne(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rep, err := Table3(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range rep.Tables {
		rows := csvRows(lt)
		if got := parseProb(rows[0][2]); got != 0 {
			t.Errorf("%s: cell <1> PHD = %v, want 0 (no incoming hand-offs)", lt.Label, got)
		}
	}
	// AC1's cell <1> accepts everything under one-way flow.
	ac1 := csvRows(rep.Tables[0])
	if got := parseProb(ac1[0][1]); got > 0.05 {
		t.Errorf("AC1 cell <1> PCB = %v, paper reports 0", got)
	}
}

func TestFig14Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long time-varying run")
	}
	opt := quickOpt()
	rep, err := Fig14(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("fig14 tables = %d, want 2", len(rep.Tables))
	}
	probs := csvRows(rep.Tables[1])
	if len(probs) < 24*3 {
		t.Fatalf("fig14 probability rows = %d, want ≥ 72 (24h × 3 schemes)", len(probs))
	}
	// Night hours (hour 2) have negligible blocking for every scheme.
	for _, row := range probs {
		if row[0] == "2" {
			if pcb := parseProb(row[2]); pcb > 0.1 {
				t.Errorf("night-hour PCB = %v for %s", pcb, row[1])
			}
		}
	}
}

// TestReportDeterministicAcrossWorkers is the end-to-end determinism
// guarantee: a full experiment serialized with Report.Bytes is
// byte-identical whether the sweep ran on one worker or eight.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Parallel = 1
	rep1, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 8
	rep8, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	b1, b8 := rep1.Bytes(), rep8.Bytes()
	if len(b1) == 0 {
		t.Fatal("empty serialized report")
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("reports differ between parallel=1 and parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", b1, b8)
	}
}

// TestCanceledContextAborts: a pre-canceled context makes an experiment
// fail fast with context.Canceled instead of running the sweep.
func TestCanceledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := quickOpt()
	opt.Context = ctx
	if _, err := Fig8(opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReportDeterministicAcrossShards extends the worker guarantee to
// the sharded kernel: with Options.Shards the scenarios run on a
// partitioned event kernel (zero-latency compat mode), and the
// serialized Report must stay byte-identical at any shard count.
func TestReportDeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	ref, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Bytes()
	for _, shards := range []int{2, 3, 8} {
		opt := quickOpt()
		opt.Shards = shards
		rep, err := Fig7(opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Bytes(); !bytes.Equal(got, want) {
			t.Fatalf("report differs between shards=1 and shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
				shards, want, shards, got)
		}
	}
}

// TestMetroShardedDeterministic: the async metro experiment — which
// itself compares shard counts 1/2/8 and embeds an invariance verdict —
// serializes identically across two full executions.
func TestMetroShardedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Duration = 300
	a, err := MetroSharded(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MetroSharded(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("metro-sharded reports differ between two identical runs")
	}
	if !bytes.Contains(a.Bytes(), []byte("shard-count invariance,identical")) {
		t.Fatalf("metro-sharded verdict not 'identical':\n%s", a.Bytes())
	}
}
