package experiments

import (
	"fmt"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/plot"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// tracedRun executes the Fig. 10/11 scenario: AC3, offered load 300,
// R_vo = 1.0, high mobility, tracing cells <5> and <6> (IDs 4 and 5)
// from the cold start.
func tracedRun(key string, opt Options) (*cellnet.Result, error) {
	cfg := stationaryConfig(core.AC3, 300, 1.0, true, opt.Seed)
	cfg.TraceCells = []topology.CellID{4, 5}
	return runOne(opt, scenario(key, cfg, opt.TraceDuration))
}

// Fig10 regenerates Figure 10: T_est and B_r over time in cells <5> and
// <6> for the over-loaded high-mobility run.
func Fig10(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	res, err := tracedRun("fig10/trace", opt)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig10",
		Title: "T_est and B_r vs time (load 300, Rvo 1.0, high mobility, AC3)",
		PaperClaim: "T_est climbs from T_start = 1 s as cold-start drops occur, then " +
			"oscillates around a working point instead of settling; B_r fluctuates " +
			"between over- and under-reservation, tracking T_est and neighbor state.",
	}
	const step = 50
	for _, id := range []topology.CellID{4, 5} {
		tr := res.Traces[id]
		tb := stats.NewTable("t(s)", "Test(s)", "Br(BU)")
		testVals := seriesGrid(&tr.Test, opt.TraceDuration, step)
		brVals := seriesGrid(&tr.Br, opt.TraceDuration, step)
		grid := make([]float64, len(testVals))
		for i := range testVals {
			grid[i] = float64(i) * step
			tb.AddRowStrings(fmt.Sprintf("%.0f", grid[i]),
				fmt.Sprintf("%.0f", testVals[i]), fmt.Sprintf("%.2f", brVals[i]))
		}
		label := fmt.Sprintf("(cell <%d>)", id+1)
		rep.Tables = append(rep.Tables, LabeledTable{Label: label, Table: tb})
		ch := plot.New("Fig. 10 "+label, "time (s)", "T_est (s) / B_r (BU)")
		ch.Add("Test", grid, testVals)
		ch.Add("Br", grid, brVals)
		rep.Charts = append(rep.Charts, ch)
	}
	return rep, nil
}

// Fig11 regenerates Figure 11: cumulative P_HD over time for the same
// run and cells.
func Fig11(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	res, err := tracedRun("fig11/trace", opt)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig11",
		Title: "Cumulative P_HD vs time (load 300, Rvo 1.0, high mobility, AC3)",
		PaperClaim: "P_HD peaks above the 0.01 target early (no estimation history, " +
			"T_est = T_start), then settles below it as quadruplets accumulate, T_est " +
			"adapts, and the averaging effect kicks in.",
	}
	const step = 50
	tb := stats.NewTable("t(s)", "PHD cell<5>", "PHD cell<6>")
	g5 := seriesGrid(&res.Traces[4].PHD, opt.TraceDuration, step)
	g6 := seriesGrid(&res.Traces[5].PHD, opt.TraceDuration, step)
	grid := make([]float64, len(g5))
	for i := range g5 {
		grid[i] = float64(i) * step
		tb.AddRowStrings(fmt.Sprintf("%.0f", grid[i]),
			stats.FormatProb(g5[i]), stats.FormatProb(g6[i]))
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	ch := plot.New("Fig. 11 cumulative P_HD", "time (s)", "P_HD (log)")
	ch.LogY = true
	ch.FloorY = 1e-4
	ch.Add("cell <5>", grid, g5)
	ch.Add("cell <6>", grid, g6)
	rep.Charts = append(rep.Charts, ch)
	return rep, nil
}

// perCellTable renders a Table 2/3 style end-of-run status table.
func perCellTable(res *cellnet.Result) *stats.Table {
	tb := stats.NewTable("Cell", "PCB", "PHD", "Test", "Br", "Bu")
	for _, c := range res.Cells {
		tb.AddRowStrings(
			fmt.Sprintf("%d", c.ID+1), // the paper numbers cells from 1
			stats.FormatProb(c.PCB),
			stats.FormatProb(c.PHD),
			fmt.Sprintf("%.0f", c.Test),
			fmt.Sprintf("%.2f", c.Br),
			fmt.Sprintf("%d", c.Bu),
		)
	}
	return tb
}

// Table2 regenerates Table 2: per-cell status at the end of over-loaded
// runs (load 300, R_vo = 1.0, high mobility) under AC1 and AC3.
func Table2(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "table2",
		Title: "Per-cell status at end of run (load 300, Rvo 1.0, high mobility)",
		PaperClaim: "Under AC1 performance oscillates roughly every other cell — " +
			"alternating near-zero and near-one P_CB with unbounded P_HD in the " +
			"starved cells. AC3 is balanced: similar P_CB everywhere and P_HD ≤ 0.01 " +
			"in every cell.",
	}
	policies := []core.Policy{core.AC1, core.AC3}
	scens := make([]runner.Scenario, len(policies))
	for i, policy := range policies {
		scens[i] = scenario(fmt.Sprintf("table2/%s", policy),
			stationaryConfig(policy, 300, 1.0, true, opt.Seed), opt.Duration)
	}
	res, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		rep.Tables = append(rep.Tables, LabeledTable{
			Label: fmt.Sprintf("(%s)", policy),
			Table: perCellTable(res[i]),
		})
	}
	return rep, nil
}

// Table3 regenerates Table 3: the one-directional scenario — all mobiles
// travel from cell <1> toward cell <10> on an open line (borders
// disconnected), load 300, R_vo = 1.0, high mobility.
func Table3(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "table3",
		Title: "Per-cell status, one-directional mobiles on an open line (load 300)",
		PaperClaim: "Cell <1> receives no hand-offs (P_HD = 0) and under AC1 accepts " +
			"everything (P_CB = 0), overloading its downstream neighbors in an " +
			"every-other-cell pattern with over-target P_HD. AC3 blocks some new " +
			"connections in <1> and balances the line while meeting the target.",
	}
	policies := []core.Policy{core.AC1, core.AC3}
	scens := make([]runner.Scenario, len(policies))
	for i, policy := range policies {
		top := topology.Line(10)
		cfg := cellnet.PaperBase()
		cfg.Topology = top
		cfg.Policy = policy
		cfg.Mix = traffic.Mix{VoiceRatio: 1.0}
		cfg.Mobility = &mobility.Linear{
			Top: top, DiameterKm: 1,
			Speed: mobility.HighMobility, Direction: mobility.ForwardOnly,
		}
		cfg.Schedule = traffic.Constant{
			Lambda: traffic.RateForLoad(300, cfg.Mix, cfg.MeanLifetime),
			MinKmh: 80, MaxKmh: 120,
		}
		cfg.Seed = opt.Seed
		scens[i] = scenario(fmt.Sprintf("table3/%s", policy), cfg, opt.Duration)
	}
	res, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		rep.Tables = append(rep.Tables, LabeledTable{
			Label: fmt.Sprintf("(%s)", policy),
			Table: perCellTable(res[i]),
		})
	}
	return rep, nil
}
