package experiments

import (
	"fmt"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/stats"
)

// ExtensionFaults sweeps signaling-plane fault probability against the
// paper's QoS metrics under AC3: every peer information exchange fails
// independently with probability p (drawn from a dedicated RNG stream,
// so the traffic and mobility processes are identical across variants),
// and the engines degrade per the configured core.Fallback policy
// instead of silently treating dead neighbors as absent or infinitely
// healthy. The fault-free variant doubles as a control: its counters
// must all be zero and its metrics match the unfaulted simulation.
func ExtensionFaults(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "extension-faults",
		Title: "Robustness: signaling faults and graceful degradation, AC3",
		PaperClaim: "The paper's distributed admission control assumes reliable BS-to-BS " +
			"signaling; it never evaluates losing it. Expectation: with conservative " +
			"fallbacks (last-known decay, guard fraction) P_HD degrades gracefully as the " +
			"fault rate rises, at some P_CB cost from fail-closed admission; the legacy " +
			"zero fallback under-reserves and lets P_HD drift above target instead.",
	}
	type variant struct {
		name string
		drop float64
		mode core.FallbackMode
	}
	variants := []variant{
		{"fault-free", 0, core.FallbackDecay},
		{"drop 5% decay", 0.05, core.FallbackDecay},
		{"drop 20% decay", 0.20, core.FallbackDecay},
		{"drop 20% guard", 0.20, core.FallbackGuard},
		{"drop 20% zero", 0.20, core.FallbackZero},
		{"drop 50% decay", 0.50, core.FallbackDecay},
	}
	loads := []float64{200, 300}
	res, err := variantSweep(opt, rep.ID, len(variants), loads,
		func(v int, load float64) cellnet.Config {
			cfg := stationaryConfig(core.AC3, load, 0.5, true, opt.Seed)
			if variants[v].drop > 0 {
				cfg.Faults = cellnet.FaultConfig{
					Enabled:  true,
					Drop:     variants[v].drop,
					Fallback: core.Fallback{Mode: variants[v].mode},
				}
			}
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("variant", "load", "PCB", "PHD", "peer-faults", "degraded-Br", "degraded-admits")
	for v, vr := range variants {
		for li, load := range loads {
			r := res[v][li]
			tb.AddRowStrings(vr.name, fmtF(load),
				stats.FormatProb(r.PCB), stats.FormatProb(r.PHD),
				fmt.Sprintf("%d", r.PeerFaults),
				fmt.Sprintf("%d", r.DegradedBrCalcs),
				fmt.Sprintf("%d", r.DegradedAdmissions))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}
