package experiments

import (
	"bytes"
	"testing"
)

// TestExtensionFaultsShape checks the control row and the degradation
// accounting: the fault-free variant reports zero faults and zero
// degraded decisions, every faulted variant reports all three counters
// nonzero (at a 5%+ drop rate over a full run, silence would mean the
// injection isn't wired through).
func TestExtensionFaultsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Duration = 400
	rep, err := ExtensionFaults(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := csvRows(rep.Tables[0])
	if len(rows) != 12 { // 6 variants × 2 loads
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, row := range rows {
		variant := row[0]
		faults, degBr, degAdm := atoiMust(t, row[4]), atoiMust(t, row[5]), atoiMust(t, row[6])
		if variant == "fault-free" {
			if faults != 0 || degBr != 0 || degAdm != 0 {
				t.Fatalf("fault-free row has nonzero fault counters: %v", row)
			}
			continue
		}
		if faults == 0 || degBr == 0 {
			t.Fatalf("faulted variant %q shows no injected faults: %v", variant, row)
		}
	}
}

func atoiMust(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("non-numeric counter %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// TestExtensionFaultsDeterministicAcrossWorkers is the acceptance bar
// for the fault extension: the fault RNG is a dedicated per-network
// stream, so the sweep must stay byte-deterministic at any worker count.
func TestExtensionFaultsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opt := quickOpt()
	opt.Duration = 400
	opt.Parallel = 1
	rep1, err := ExtensionFaults(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 8
	rep8, err := ExtensionFaults(opt)
	if err != nil {
		t.Fatal(err)
	}
	b1, b8 := rep1.Bytes(), rep8.Bytes()
	if len(b1) == 0 {
		t.Fatal("empty serialized report")
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("extension-faults differs between parallel=1 and parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", b1, b8)
	}
}
