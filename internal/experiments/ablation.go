package experiments

import (
	"fmt"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

// overloadLoads is the two-point load sweep the baseline/ablation tables
// use: the over-loaded region boundary and the heavy-overload point.
var overloadLoads = []float64{150, 300}

// AblationStep compares the paper's unit T_est step against the additive
// and multiplicative alternatives §4.2 tried and rejected for causing
// reservation oscillation.
func AblationStep(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "ablation-step",
		Title: "T_est adjustment step policy (paper §4.2 design discussion)",
		PaperClaim: "Additive/multiplicative step growth over-reacts, swinging the " +
			"reserved bandwidth between over- and under-reservation; the unit step " +
			"achieves the target with the lowest P_CB.",
	}
	steps := []core.StepPolicy{core.UnitStep, core.AdditiveStep, core.MultiplicativeStep}
	var scens []runner.Scenario
	for _, step := range steps {
		for _, load := range overloadLoads {
			cfg := stationaryConfig(core.AC3, load, 1.0, true, opt.Seed)
			cfg.Step = step
			s := scenario(fmt.Sprintf("%s/%s/load%g", rep.ID, step, load), cfg, opt.Duration)
			// The adjustment count lives in the per-cell controllers, which
			// only the live Network exposes.
			s.Post = func(n *cellnet.Network, _ *cellnet.Result) any {
				var adjustments uint64
				for c := 0; c < cfg.Topology.NumCells(); c++ {
					if tc := n.Engine(cellID(c)).Controller(); tc != nil {
						up, down := tc.Adjustments()
						adjustments += up + down
					}
				}
				return adjustments
			}
			scens = append(scens, s)
		}
	}
	points, err := runAll(opt, scens)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("step", "load", "PCB", "PHD", "Test-adjustments")
	i := 0
	for _, step := range steps {
		for _, load := range overloadLoads {
			p := points[i]
			i++
			tb.AddRowStrings(step.String(), fmtF(load),
				stats.FormatProb(p.Result.PCB), stats.FormatProb(p.Result.PHD),
				fmt.Sprintf("%d", p.Extra.(uint64)))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// AblationNQuad varies the maximum estimation-function size N_quad
// around the paper's 100.
func AblationNQuad(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "ablation-nquad",
		Title: "N_quad sensitivity (estimation-function size)",
		PaperClaim: "Not reported in the paper (design parameter fixed at 100); " +
			"expectation: very small N_quad gives noisy estimates and more target " +
			"violations or over-reservation, while larger N_quad changes little once " +
			"the per-pair sample is statistically stable.",
	}
	nquads := []int{10, 25, 100, 400}
	res, err := variantSweep(opt, rep.ID, len(nquads), overloadLoads,
		func(v int, load float64) cellnet.Config {
			cfg := stationaryConfig(core.AC3, load, 1.0, true, opt.Seed)
			cfg.Estimation.NQuad = nquads[v]
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Nquad", "load", "PCB", "PHD")
	for v, nquad := range nquads {
		for li, load := range overloadLoads {
			r := res[v][li]
			tb.AddRowStrings(fmt.Sprintf("%d", nquad), fmtF(load),
				stats.FormatProb(r.PCB), stats.FormatProb(r.PHD))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// BaselineExpDwell compares AC3 against the Naghshineh–Schwartz-style
// analytical baseline the paper discusses in §6 (ref. [10]): exponential
// dwell, uniform direction, fixed window — with the dwell parameter both
// well-tuned and mis-tuned.
func BaselineExpDwell(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "baseline-expdwell",
		Title: "AC3 vs exponential-dwell analytical reservation (§6, ref. [10])",
		PaperClaim: "The paper argues (§6) that exponential-sojourn, direction-blind " +
			"reservation is unrealistic and non-adaptive. Expectation: with a " +
			"well-tuned τ the baseline roughly holds the target at matching load, " +
			"but a mis-tuned τ (traffic conditions changed) either violates the " +
			"P_HD target or over-blocks, while AC3 needs no tuning.",
	}
	// True mean dwell at high mobility: 1 km at U[80,120] km/h ≈ 36.8 s
	// for through-traffic (plus shorter first-cell residues).
	type variant struct {
		name        string
		tau, window float64
	}
	variants := []variant{
		{"exp-dwell τ=35s T=30s", 35, 30},
		{"exp-dwell τ=35s T=5s", 35, 5},
		{"exp-dwell τ=35s T=1s", 35, 1},
		{"exp-dwell τ=120s T=30s", 120, 30},
		{"exp-dwell τ=10s T=30s", 10, 30},
		{"AC3", 0, 0}, // the adaptive scheme, for comparison
	}
	res, err := variantSweep(opt, rep.ID, len(variants), overloadLoads,
		func(v int, load float64) cellnet.Config {
			if variants[v].name == "AC3" {
				return stationaryConfig(core.AC3, load, 1.0, true, opt.Seed)
			}
			cfg := stationaryConfig(core.ExpDwell, load, 1.0, true, opt.Seed)
			cfg.ExpDwellMean = variants[v].tau
			cfg.ExpDwellWindow = variants[v].window
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("scheme", "load", "PCB", "PHD")
	for v, vr := range variants {
		for li, load := range overloadLoads {
			r := res[v][li]
			tb.AddRowStrings(vr.name, fmtF(load), stats.FormatProb(r.PCB), stats.FormatProb(r.PHD))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// BaselineMobSpec compares AC3 against the ref. [14]-style
// mobility-specification reservation the paper critiques in §6: each
// admitted connection pledges its bandwidth in every cell within the
// specification horizon for its whole lifetime.
func BaselineMobSpec(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "baseline-mobspec",
		Title: "AC3 vs mobility-specification reservation (§6, ref. [14])",
		PaperClaim: "The paper criticizes [14] twice: the predictable-mobility " +
			"assumption \"does not hold for most wireless/mobile networks\", and " +
			"reserving at every cell in the specification \"is usually excessive\". " +
			"Expectation: a full spec gives P_HD = 0 with far higher blocking than " +
			"AC3; partial specs (mobiles outlive them) fail both ways — excessive " +
			"blocking *and* drops beyond the spec.",
	}
	horizons := []int{2, 3, 5, 0} // 0 = the AC3 comparison row
	res, err := variantSweep(opt, rep.ID, len(horizons), overloadLoads,
		func(v int, load float64) cellnet.Config {
			if horizons[v] == 0 {
				return stationaryConfig(core.AC3, load, 1.0, true, opt.Seed)
			}
			cfg := stationaryConfig(core.MobSpec, load, 1.0, true, opt.Seed)
			cfg.MobSpecHorizon = horizons[v]
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("scheme", "load", "PCB", "PHD")
	for v, horizon := range horizons {
		name := "AC3"
		if horizon > 0 {
			name = fmt.Sprintf("mob-spec H=%d", horizon)
		}
		for li, load := range overloadLoads {
			r := res[v][li]
			tb.AddRowStrings(name, fmtF(load), stats.FormatProb(r.PCB), stats.FormatProb(r.PHD))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// ExtensionHints evaluates the paper's §7 ITS/GPS extension: with route
// guidance the next cell of every mobile is known, so Eq. 5 only
// estimates hand-off times. Run on a 2-D hex grid with imperfect
// direction persistence, where history-based direction prediction is
// genuinely uncertain.
func ExtensionHints(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "extension-hints",
		Title: "§7 extension: path/direction information from route guidance (ITS/GPS)",
		PaperClaim: "Proposed as future work: with the next cell known, reservation " +
			"concentrates on the actual destination. Expectation: equal or lower " +
			"P_CB at the same bounded P_HD, and less aggregate reservation, with the " +
			"largest gains where direction is hardest to predict from history.",
	}
	hintVariants := []bool{false, true}
	res, err := variantSweep(opt, rep.ID, len(hintVariants), overloadLoads,
		func(v int, load float64) cellnet.Config {
			top := topology.Hex(4, 4, true)
			cfg := cellnet.PaperBase()
			cfg.Topology = top
			cfg.Policy = core.AC3
			cfg.Mix = traffic.Mix{VoiceRatio: 1.0}
			cfg.Mobility = &mobility.HexWalk{
				Top: top, DiameterKm: 1, Speed: mobility.HighMobility, Persistence: 0.5,
			}
			cfg.Schedule = traffic.Constant{
				Lambda: traffic.RateForLoad(load, cfg.Mix, cfg.MeanLifetime),
				MinKmh: 80, MaxKmh: 120,
			}
			cfg.DirectionHints = hintVariants[v]
			cfg.Seed = opt.Seed
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("hints", "load", "PCB", "PHD", "avgBr")
	for v, hints := range hintVariants {
		for li, load := range overloadLoads {
			r := res[v][li]
			tb.AddRowStrings(fmt.Sprintf("%v", hints), fmtF(load),
				stats.FormatProb(r.PCB), stats.FormatProb(r.PHD),
				fmt.Sprintf("%.2f", r.AvgBr))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// ExtensionWired evaluates the §2/§7 wired-link reservation extension:
// connections also reserve backbone bandwidth BS→gateway and hand-offs
// re-route, comparing full re-routing against anchor extension under a
// constrained backbone.
func ExtensionWired(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "extension-wired",
		Title: "§2/§7 extension: wired-link reservation with re-routing on hand-off",
		PaperClaim: "Deferred by the paper to future work. Expectation: with a " +
			"provisioned backbone the wireless results are unchanged; when the " +
			"backbone is the bottleneck it adds blocking and hand-off drops, and " +
			"anchor extension consumes more backbone bandwidth than full re-routing " +
			"(longer paths) in exchange for cheaper re-route signaling.",
	}
	type variant struct {
		tight    bool
		strategy wired.RerouteStrategy
	}
	var variants []variant
	for _, tight := range []bool{false, true} {
		for _, strategy := range []wired.RerouteStrategy{wired.FullReroute, wired.AnchorExtend} {
			variants = append(variants, variant{tight, strategy})
		}
	}
	scens := make([]runner.Scenario, len(variants))
	for i, v := range variants {
		cfg := stationaryConfig(core.AC3, 200, 1.0, true, opt.Seed)
		interCap, upCap := 4000, 4000
		if v.tight {
			interCap, upCap = 60, 60
		}
		// Each variant mints its own Backbone: the graph is mutable state
		// owned by exactly one Network.
		cfg.Backbone = wired.MeshOfBSs(cfg.Topology, interCap, upCap, v.strategy)
		scens[i] = scenario(fmt.Sprintf("%s/v%d", rep.ID, i), cfg, opt.Duration)
	}
	res, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("backbone", "strategy", "PCB", "PHD", "wired-blocked", "wired-dropped", "backbone-used")
	for i, v := range variants {
		name := "provisioned"
		if v.tight {
			name = "constrained"
		}
		r := res[i]
		tb.AddRowStrings(name, v.strategy.String(),
			stats.FormatProb(r.PCB), stats.FormatProb(r.PHD),
			fmt.Sprintf("%d", r.WiredBlocked), fmt.Sprintf("%d", r.WiredDropped),
			fmt.Sprintf("%d", r.WiredUsed))
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// ExtensionCDMA evaluates the §7 CDMA adaptations: soft hand-off
// (overlap-window make-before-break) and soft capacity (an interference
// margin usable by hand-offs), each of which the paper predicts will
// reduce hand-off drops.
func ExtensionCDMA(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "extension-cdma",
		Title: "§7 extension: CDMA soft hand-off and soft capacity",
		PaperClaim: "Planned as future work: \"hand-off drops can be reduced due to " +
			"(1) soft capacity notion and (2) soft hand-off support\". Expectation: " +
			"either mechanism lowers P_HD at unchanged P_CB; combined they compound.",
	}
	type variant struct {
		name    string
		overlap float64
		margin  int
	}
	variants := []variant{
		{"baseline (hard, FCA)", 0, 0},
		{"soft hand-off 5s", 5, 0},
		{"soft capacity +8BU", 0, 8},
		{"both", 5, 8},
	}
	loads := []float64{200, 300}
	res, err := variantSweep(opt, rep.ID, len(variants), loads,
		func(v int, load float64) cellnet.Config {
			cfg := stationaryConfig(core.AC3, load, 0.5, true, opt.Seed)
			cfg.HandOffMargin = variants[v].margin
			if variants[v].overlap > 0 {
				cfg.SoftHandOff = cellnet.SoftHandOffConfig{Enabled: true, OverlapSeconds: variants[v].overlap}
			}
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("variant", "load", "PCB", "PHD", "soft-saved")
	for v, vr := range variants {
		for li, load := range loads {
			r := res[v][li]
			tb.AddRowStrings(vr.name, fmtF(load),
				stats.FormatProb(r.PCB), stats.FormatProb(r.PHD),
				fmt.Sprintf("%d", r.SoftSaved))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// IntegrationAdaptiveQoS evaluates the §1 integration with adaptive-QoS
// schemes (refs [6,8]): video connections degrade between a minimum and
// 4 BUs, reservation and admission run on the minimum-QoS basis, cells
// downgrade to absorb hand-offs and upgrade when bandwidth frees.
func IntegrationAdaptiveQoS(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "integration-adaptiveqos",
		Title: "§1 integration: adaptive QoS (degradable video) under AC3",
		PaperClaim: "The paper states QoS adaptation composes with its reservation " +
			"(\"bandwidth reservation is made on the basis of the minimum QoS\") and " +
			"that reducing hand-off drops is one of adaptation's roles. Expectation: " +
			"large P_HD and P_CB reductions, paid for in time spent degraded.",
	}
	type variant struct {
		name string
		min  int
	}
	variants := []variant{{"rigid video", 0}, {"video min 2 BU", 2}, {"video min 1 BU", 1}}
	loads := []float64{200, 300}
	res, err := variantSweep(opt, rep.ID, len(variants), loads,
		func(v int, load float64) cellnet.Config {
			cfg := stationaryConfig(core.AC3, load, 0.5, true, opt.Seed)
			if variants[v].min > 0 {
				cfg.AdaptiveQoS = cellnet.AdaptiveQoSConfig{Enabled: true, VideoMinBUs: variants[v].min}
			}
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("variant", "load", "PCB", "PHD", "avg-degraded(BU)", "downgrades")
	for v, vr := range variants {
		for li, load := range loads {
			r := res[v][li]
			tb.AddRowStrings(vr.name, fmtF(load),
				stats.FormatProb(r.PCB), stats.FormatProb(r.PHD),
				fmt.Sprintf("%.2f", r.AvgDegraded), fmt.Sprintf("%d", r.QoSDowngrades))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}

// AblationDropped toggles whether a departure whose hand-off was dropped
// still feeds the estimation functions (our default: yes — the movement
// happened; the paper does not specify).
func AblationDropped(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "ablation-dropped",
		Title: "Recording dropped hand-offs as mobility observations",
		PaperClaim: "Not reported in the paper. Expectation: skipping dropped " +
			"departures starves the estimator exactly where drops concentrate, " +
			"slightly biasing B_r downward under overload.",
	}
	skips := []bool{false, true}
	res, err := variantSweep(opt, rep.ID, len(skips), overloadLoads,
		func(v int, load float64) cellnet.Config {
			cfg := stationaryConfig(core.AC3, load, 1.0, true, opt.Seed)
			cfg.SkipDroppedDepartures = skips[v]
			return cfg
		})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("record-dropped", "load", "PCB", "PHD")
	for v, skip := range skips {
		for li, load := range overloadLoads {
			r := res[v][li]
			tb.AddRowStrings(fmt.Sprintf("%v", !skip), fmtF(load),
				stats.FormatProb(r.PCB), stats.FormatProb(r.PHD))
		}
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "", Table: tb})
	return rep, nil
}
