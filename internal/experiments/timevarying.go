package experiments

import (
	"fmt"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// Fig14 regenerates Figure 14: two days of time-varying traffic and
// mobility (the §5.3 schedule transcribed from Fig. 14(a)) with the
// blocked-request retry model, comparing AC1, AC2 and AC3 per hour.
func Fig14(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	mix := traffic.Mix{VoiceRatio: 1.0}
	sched := traffic.PaperDay(mix, traffic.MeanLifetime)
	end := float64(opt.Days) * traffic.SecondsPerDay
	if opt.Fig14Hours > 0 {
		end = float64(opt.Fig14Hours) * traffic.SecondsPerHour
	}

	rep := &Report{
		ID:    "fig14",
		Title: "Time-varying traffic/mobility over two days (retry model active)",
		PaperClaim: "Outside peak hours both probabilities are negligible. During " +
			"peaks P_HD stays bounded by 0.01 for every scheme, while AC1 shows the " +
			"lowest P_CB; the retry positive-feedback widens the AC1–AC3 P_CB gap " +
			"relative to the stationary case. Actual load L_a exceeds the original " +
			"L_o when blocking is high.",
	}

	policies := []core.Policy{core.AC1, core.AC2, core.AC3}
	top := topology.Ring(10)
	scens := make([]runner.Scenario, len(policies))
	for i, policy := range policies {
		cfg := cellnet.PaperBase()
		cfg.Topology = top
		cfg.Policy = policy
		cfg.Estimation = predict.DailyConfig()
		cfg.Mix = mix
		cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}
		cfg.Schedule = sched
		cfg.Retry = traffic.PaperRetry
		cfg.Seed = opt.Seed
		scens[i] = scenario(fmt.Sprintf("fig14/%s", policy), cfg, end)
	}
	results, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}

	// (a) the schedule itself plus the measured actual offered load.
	type hourRow struct {
		lo, la [3]float64 // per policy
	}
	hours := int(end / traffic.SecondsPerHour)
	rows := make([]hourRow, hours)

	probTb := stats.NewTable("hour", "policy", "PCB", "PHD")
	sc := newCollector()
	for pi, policy := range policies {
		res := results[pi]
		for h := 0; h < hours && h < len(res.Hourly); h++ {
			hc := res.Hourly[h]
			probTb.AddRowStrings(fmt.Sprintf("%d", h), policy.String(),
				stats.FormatProb(hc.PCB()), stats.FormatProb(hc.PHD()))
			sc.add("PCB "+policy.String(), float64(h), hc.PCB())
			sc.add("PHD "+policy.String(), float64(h), hc.PHD())
			// L_a = request rate per cell × E[b] × mean lifetime (Eq. 7 on
			// the measured request stream, retries included).
			reqRate := float64(hc.Requested) / traffic.SecondsPerHour / float64(top.NumCells())
			rows[h].la[pi] = traffic.LoadForRate(reqRate, mix, traffic.MeanLifetime)
			rows[h].lo[pi] = sched.Hour(h % 24).Load
		}
	}

	schedTb := stats.NewTable("hour", "Lo", "speed(km/h)", "La(AC1)", "La(AC2)", "La(AC3)")
	for h := 0; h < hours; h++ {
		spec := sched.Hour(h % 24)
		schedTb.AddRowStrings(fmt.Sprintf("%d", h),
			fmtF(spec.Load), fmt.Sprintf("%.0f±%.0f", spec.MeanKmh, spec.SpreadKmh),
			fmt.Sprintf("%.1f", rows[h].la[0]), fmt.Sprintf("%.1f", rows[h].la[1]),
			fmt.Sprintf("%.1f", rows[h].la[2]))
	}
	rep.Tables = append(rep.Tables,
		LabeledTable{Label: "(a) schedule and measured actual load", Table: schedTb},
		LabeledTable{Label: "(b) hourly P_CB and P_HD per scheme", Table: probTb},
	)
	ch := probChart("Fig. 14(b) hourly probabilities")
	ch.XLabel = "hour of run"
	ch.FloorY = 1e-4
	rep.Charts = append(rep.Charts, sc.into(ch))
	return rep, nil
}
