// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a named function from Options to a
// Report of labeled tables; cmd/experiments runs them from the command
// line and bench_test.go exposes each as a benchmark.
//
// Every experiment expresses its sweep as a list of runner.Scenario
// points executed by internal/runner, so points run in parallel
// (Options.Parallel workers) yet the assembled Report is deterministic:
// the same seed yields byte-identical Report.Bytes output at any worker
// count, because each point is an independent Network and results are
// merged by point index, never by completion order.
//
// Absolute numbers depend on run length and RNG, so each Report states
// the paper's qualitative claim ("shape") that the regenerated data
// should exhibit; EXPERIMENTS.md records a measured-vs-paper comparison.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"cellqos/internal/audit"
	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/plot"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// Options sizes the experiment runs. Zero values take paper-scale
// defaults; tests and benchmarks shrink them.
type Options struct {
	// Duration is the simulated seconds per stationary run (default 20000).
	Duration float64
	// TraceDuration is the Fig. 10/11 run length (default 2000, as in the
	// paper's plots).
	TraceDuration float64
	// Days is the Fig. 14 run length in days (default 2, as in §5.3).
	Days int
	// Fig14Hours, when positive, overrides Days with a run of that many
	// hours for the fig14 experiment — the golden corpus and quick tests
	// use a few hours instead of a multi-day sweep.
	Fig14Hours int
	// Loads is the offered-load sweep (default 60..300).
	Loads []float64
	// Seed drives all RNG.
	Seed uint64
	// Parallel is the scenario worker count (0 = GOMAXPROCS). Results
	// are identical at any worker count.
	Parallel int
	// Context, when non-nil, cancels in-flight sweeps; the experiment
	// then returns the context's error.
	Context context.Context
	// Sink, when non-nil, observes per-point progress.
	Sink runner.Sink
	// Audit, when non-nil, attaches the runtime invariant checker to
	// every scenario of every sweep (cellnet.Config.Audit). The checker
	// is stateless, so sharing one across parallel workers is safe.
	Audit *audit.Checker
	// Shards, when > 1, runs every scenario that does not set its own
	// sharding on a sharded kernel (cellnet.ShardingConfig.Shards) in
	// the zero-latency compat mode. Like Parallel, it never changes
	// results: Report.Bytes is byte-identical at any shard count.
	Shards int
}

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 20000
	}
	if o.TraceDuration == 0 {
		o.TraceDuration = 2000
	}
	if o.Days == 0 {
		o.Days = 2
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{60, 100, 150, 200, 250, 300}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LabeledTable pairs a table with its caption.
type LabeledTable struct {
	Label string
	Table *stats.Table
}

// Report is one regenerated figure or table.
type Report struct {
	ID         string
	Title      string
	PaperClaim string // the qualitative shape the paper reports
	Tables     []LabeledTable
	// Charts render figure-type reports as terminal plots
	// (cmd/experiments -plot).
	Charts []*plot.Chart
}

// Bytes is the report's canonical serialization: metadata, every table
// as CSV, every chart as its rendered text. Identical simulation data
// serializes to identical bytes, which is how the runner's determinism
// guarantee is verified (same seed ⇒ same bytes at any Parallel).
func (r *Report) Bytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "report %s\ntitle %s\nclaim %s\n", r.ID, r.Title, r.PaperClaim)
	for _, lt := range r.Tables {
		fmt.Fprintf(&b, "table %q\n%s", lt.Label, lt.Table.CSV())
	}
	for _, ch := range r.Charts {
		fmt.Fprintf(&b, "chart\n%s\n", ch.Render())
	}
	return b.Bytes()
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig7", "P_CB/P_HD vs load, static reservation G=10", Fig7},
		{"fig8", "P_CB/P_HD vs load, AC3", Fig8},
		{"fig9", "Average B_r and B_u vs load, AC3", Fig9},
		{"fig10", "T_est and B_r vs time, cells <5>,<6>", Fig10},
		{"fig11", "Cumulative P_HD vs time, cells <5>,<6>", Fig11},
		{"fig12", "P_CB/P_HD vs load, AC1 vs AC2 vs AC3", Fig12},
		{"fig13", "Average N_calc vs load", Fig13},
		{"table2", "Per-cell status at load 300, AC1 vs AC3", Table2},
		{"table3", "Per-cell status, one-directional mobiles", Table3},
		{"fig14", "Time-varying traffic/mobility over two days", Fig14},
		{"baseline-expdwell", "AC3 vs exponential-dwell baseline (§6)", BaselineExpDwell},
		{"baseline-mobspec", "AC3 vs mobility-spec reservation (§6)", BaselineMobSpec},
		{"extension-hints", "§7 ITS/GPS path-informed reservation", ExtensionHints},
		{"extension-wired", "§2/§7 wired-link reservation + re-routing", ExtensionWired},
		{"extension-cdma", "§7 CDMA soft hand-off and soft capacity", ExtensionCDMA},
		{"integration-adaptiveqos", "§1 adaptive-QoS integration", IntegrationAdaptiveQoS},
		{"ablation-step", "T_est step policy ablation (§4.2)", AblationStep},
		{"ablation-nquad", "N_quad sensitivity ablation", AblationNQuad},
		{"ablation-dropped", "Recording dropped hand-off departures", AblationDropped},
		{"extension-faults", "Signaling faults and graceful degradation", ExtensionFaults},
		{"metro-sharded", "Metro-scale sharded kernel, async signaling", MetroSharded},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runAll executes scenarios on the shared runner and returns their
// points in declaration order, failing on the first point error.
func runAll(opt Options, scens []runner.Scenario) ([]runner.PointResult, error) {
	if opt.Audit != nil {
		for i := range scens {
			scens[i].Config.Audit = opt.Audit
		}
	}
	if opt.Shards > 1 {
		for i := range scens {
			if scens[i].Config.Sharding.Shards == 0 {
				scens[i].Config.Sharding.Shards = opt.Shards
			}
		}
	}
	r := &runner.Runner{Parallel: opt.Parallel, Sink: opt.Sink}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	points, err := r.Run(ctx, scens)
	if err == nil {
		err = runner.FirstError(points)
	}
	if err != nil {
		return nil, err
	}
	return points, nil
}

// runResults is runAll projected onto the simulation results.
func runResults(opt Options, scens []runner.Scenario) ([]*cellnet.Result, error) {
	points, err := runAll(opt, scens)
	if err != nil {
		return nil, err
	}
	return runner.Results(points), nil
}

// runOne executes a single scenario.
func runOne(opt Options, s runner.Scenario) (*cellnet.Result, error) {
	res, err := runResults(opt, []runner.Scenario{s})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// scenario wraps a config and duration as a runner point.
func scenario(key string, cfg cellnet.Config, duration float64) runner.Scenario {
	return runner.Scenario{Key: key, Config: cfg, Duration: duration}
}

// loadGrid is the shared (group × series × load) sweep behind the
// stationary figures (7–9, 12–13): one scenario per cell of the grid,
// executed by the runner, results reshaped to [group][series][load]
// with loads ascending.
func loadGrid(opt Options, id string, groups, series int,
	build func(g, s int, load float64) cellnet.Config) ([][][]*cellnet.Result, error) {
	loads := sortedLoads(opt)
	scens := make([]runner.Scenario, 0, groups*series*len(loads))
	for g := 0; g < groups; g++ {
		for s := 0; s < series; s++ {
			for _, load := range loads {
				key := fmt.Sprintf("%s/g%d/s%d/load%g", id, g, s, load)
				scens = append(scens, scenario(key, build(g, s, load), opt.Duration))
			}
		}
	}
	flat, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}
	out := make([][][]*cellnet.Result, groups)
	i := 0
	for g := 0; g < groups; g++ {
		out[g] = make([][]*cellnet.Result, series)
		for s := 0; s < series; s++ {
			out[g][s] = flat[i : i+len(loads)]
			i += len(loads)
		}
	}
	return out, nil
}

// variantSweep is the shared (variant × load) sweep behind the baseline,
// extension and ablation tables: results come back as [variant][load].
func variantSweep(opt Options, id string, variants int, loads []float64,
	build func(v int, load float64) cellnet.Config) ([][]*cellnet.Result, error) {
	scens := make([]runner.Scenario, 0, variants*len(loads))
	for v := 0; v < variants; v++ {
		for _, load := range loads {
			key := fmt.Sprintf("%s/v%d/load%g", id, v, load)
			scens = append(scens, scenario(key, build(v, load), opt.Duration))
		}
	}
	flat, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}
	out := make([][]*cellnet.Result, variants)
	for v := 0; v < variants; v++ {
		out[v] = flat[v*len(loads) : (v+1)*len(loads)]
	}
	return out, nil
}

// mobilityName labels the paper's two stationary speed ranges.
func mobilityName(high bool) string {
	if high {
		return "high"
	}
	return "low"
}

func speedRange(high bool) mobility.SpeedRange {
	if high {
		return mobility.HighMobility
	}
	return mobility.LowMobility
}

// stationaryConfig builds the paper's §5.1 scenario: a 10-cell ring,
// 1-km cells, constant Poisson load, bidirectional constant-speed
// mobiles. Each call mints a fresh Config, so the returned value is safe
// to run as its own Network ("one Network per goroutine").
func stationaryConfig(policy core.Policy, load, rvo float64, high bool, seed uint64) cellnet.Config {
	top := topology.Ring(10)
	cfg := cellnet.PaperBase()
	cfg.Topology = top
	cfg.Policy = policy
	cfg.Mix = traffic.Mix{VoiceRatio: rvo}
	sr := speedRange(high)
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: sr}
	cfg.Schedule = traffic.Constant{
		Lambda: traffic.RateForLoad(load, cfg.Mix, cfg.MeanLifetime),
		MinKmh: sr.MinKmh, MaxKmh: sr.MaxKmh,
	}
	cfg.Seed = seed
	return cfg
}

// cellID converts for readability at call sites.
func cellID(i int) topology.CellID { return topology.CellID(i) }

// seriesGrid samples a trace on a uniform grid (sample-and-hold).
func seriesGrid(s *stats.Series, end float64, step float64) []float64 {
	var out []float64
	for t := 0.0; t <= end; t += step {
		v, _ := s.ValueAt(t)
		out = append(out, v)
	}
	return out
}

// sortedLoads returns the option's loads ascending (defensive copy).
func sortedLoads(opt Options) []float64 {
	loads := append([]float64(nil), opt.Loads...)
	sort.Float64s(loads)
	return loads
}

func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }

// probChart builds a log-y chart for probability-vs-load figures.
func probChart(title string) *plot.Chart {
	c := plot.New(title, "offered load (BU)", "probability (log)")
	c.LogY = true
	c.FloorY = 1e-5
	return c
}

// seriesCollector accumulates named (x, y) series in insertion order.
type seriesCollector struct {
	order []string
	data  map[string][2][]float64
}

func newCollector() *seriesCollector {
	return &seriesCollector{data: make(map[string][2][]float64)}
}

func (sc *seriesCollector) add(name string, x, y float64) {
	if _, ok := sc.data[name]; !ok {
		sc.order = append(sc.order, name)
	}
	d := sc.data[name]
	d[0] = append(d[0], x)
	d[1] = append(d[1], y)
	sc.data[name] = d
}

func (sc *seriesCollector) into(c *plot.Chart) *plot.Chart {
	for _, name := range sc.order {
		d := sc.data[name]
		c.Add(name, d[0], d[1])
	}
	return c
}
