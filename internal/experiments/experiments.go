// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a named function from Options to a
// Report of labeled tables; cmd/experiments runs them from the command
// line and bench_test.go exposes each as a benchmark.
//
// Absolute numbers depend on run length and RNG, so each Report states
// the paper's qualitative claim ("shape") that the regenerated data
// should exhibit; EXPERIMENTS.md records a measured-vs-paper comparison.
package experiments

import (
	"fmt"
	"sort"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/plot"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// Options sizes the experiment runs. Zero values take paper-scale
// defaults; tests and benchmarks shrink them.
type Options struct {
	// Duration is the simulated seconds per stationary run (default 20000).
	Duration float64
	// TraceDuration is the Fig. 10/11 run length (default 2000, as in the
	// paper's plots).
	TraceDuration float64
	// Days is the Fig. 14 run length in days (default 2, as in §5.3).
	Days int
	// Loads is the offered-load sweep (default 60..300).
	Loads []float64
	// Seed drives all RNG.
	Seed uint64
}

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 20000
	}
	if o.TraceDuration == 0 {
		o.TraceDuration = 2000
	}
	if o.Days == 0 {
		o.Days = 2
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{60, 100, 150, 200, 250, 300}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LabeledTable pairs a table with its caption.
type LabeledTable struct {
	Label string
	Table *stats.Table
}

// Report is one regenerated figure or table.
type Report struct {
	ID         string
	Title      string
	PaperClaim string // the qualitative shape the paper reports
	Tables     []LabeledTable
	// Charts render figure-type reports as terminal plots
	// (cmd/experiments -plot).
	Charts []*plot.Chart
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *Report
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig7", "P_CB/P_HD vs load, static reservation G=10", Fig7},
		{"fig8", "P_CB/P_HD vs load, AC3", Fig8},
		{"fig9", "Average B_r and B_u vs load, AC3", Fig9},
		{"fig10", "T_est and B_r vs time, cells <5>,<6>", Fig10},
		{"fig11", "Cumulative P_HD vs time, cells <5>,<6>", Fig11},
		{"fig12", "P_CB/P_HD vs load, AC1 vs AC2 vs AC3", Fig12},
		{"fig13", "Average N_calc vs load", Fig13},
		{"table2", "Per-cell status at load 300, AC1 vs AC3", Table2},
		{"table3", "Per-cell status, one-directional mobiles", Table3},
		{"fig14", "Time-varying traffic/mobility over two days", Fig14},
		{"baseline-expdwell", "AC3 vs exponential-dwell baseline (§6)", BaselineExpDwell},
		{"baseline-mobspec", "AC3 vs mobility-spec reservation (§6)", BaselineMobSpec},
		{"extension-hints", "§7 ITS/GPS path-informed reservation", ExtensionHints},
		{"extension-wired", "§2/§7 wired-link reservation + re-routing", ExtensionWired},
		{"extension-cdma", "§7 CDMA soft hand-off and soft capacity", ExtensionCDMA},
		{"integration-adaptiveqos", "§1 adaptive-QoS integration", IntegrationAdaptiveQoS},
		{"ablation-step", "T_est step policy ablation (§4.2)", AblationStep},
		{"ablation-nquad", "N_quad sensitivity ablation", AblationNQuad},
		{"ablation-dropped", "Recording dropped hand-off departures", AblationDropped},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mobilityName labels the paper's two stationary speed ranges.
func mobilityName(high bool) string {
	if high {
		return "high"
	}
	return "low"
}

func speedRange(high bool) mobility.SpeedRange {
	if high {
		return mobility.HighMobility
	}
	return mobility.LowMobility
}

// stationaryConfig builds the paper's §5.1 scenario: a 10-cell ring,
// 1-km cells, constant Poisson load, bidirectional constant-speed
// mobiles.
func stationaryConfig(policy core.Policy, load, rvo float64, high bool, seed uint64) cellnet.Config {
	top := topology.Ring(10)
	cfg := cellnet.PaperBase()
	cfg.Topology = top
	cfg.Policy = policy
	cfg.Mix = traffic.Mix{VoiceRatio: rvo}
	sr := speedRange(high)
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: sr}
	cfg.Schedule = traffic.Constant{
		Lambda: traffic.RateForLoad(load, cfg.Mix, cfg.MeanLifetime),
		MinKmh: sr.MinKmh, MaxKmh: sr.MaxKmh,
	}
	cfg.Seed = seed
	return cfg
}

// runStationary executes one stationary scenario.
func runStationary(policy core.Policy, load, rvo float64, high bool, opt Options) *cellnet.Result {
	cfg := stationaryConfig(policy, load, rvo, high, opt.Seed)
	return cellnet.MustNew(cfg).Run(opt.Duration)
}

// mustRun builds and runs an explicit config.
func mustRun(cfg cellnet.Config, duration float64) *cellnet.Result {
	return cellnet.MustNew(cfg).Run(duration)
}

// mustNet builds a network for runs that need post-run engine access.
func mustNet(cfg cellnet.Config) *cellnet.Network { return cellnet.MustNew(cfg) }

// cellID converts for readability at call sites.
func cellID(i int) topology.CellID { return topology.CellID(i) }

// seriesGrid samples a trace on a uniform grid (sample-and-hold).
func seriesGrid(s *stats.Series, end float64, step float64) []float64 {
	var out []float64
	for t := 0.0; t <= end; t += step {
		v, _ := s.ValueAt(t)
		out = append(out, v)
	}
	return out
}

// sortedLoads returns the option's loads ascending (defensive copy).
func sortedLoads(opt Options) []float64 {
	loads := append([]float64(nil), opt.Loads...)
	sort.Float64s(loads)
	return loads
}

func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }

// probChart builds a log-y chart for probability-vs-load figures.
func probChart(title string) *plot.Chart {
	c := plot.New(title, "offered load (BU)", "probability (log)")
	c.LogY = true
	c.FloorY = 1e-5
	return c
}

// seriesCollector accumulates named (x, y) series in insertion order.
type seriesCollector struct {
	order []string
	data  map[string][2][]float64
}

func newCollector() *seriesCollector {
	return &seriesCollector{data: make(map[string][2][]float64)}
}

func (sc *seriesCollector) add(name string, x, y float64) {
	if _, ok := sc.data[name]; !ok {
		sc.order = append(sc.order, name)
	}
	d := sc.data[name]
	d[0] = append(d[0], x)
	d[1] = append(d[1], y)
	sc.data[name] = d
}

func (sc *seriesCollector) into(c *plot.Chart) *plot.Chart {
	for _, name := range sc.order {
		d := sc.data[name]
		c.Add(name, d[0], d[1])
	}
	return c
}
