package experiments

import (
	"bytes"
	"fmt"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// metroShardCounts is the shard sweep the experiment compares. The
// scenario must validate at every count, so the largest one bounds the
// minimum grid size.
var metroShardCounts = []int{1, 2, 8}

// metroConfig builds the metro-scale async scenario: a wrapped hex grid
// under AC3 with the distributed signaling plane modeled explicitly —
// every hand-off and peer exchange pays a real inter-BS latency and the
// kernel executes the cell clusters concurrently.
func metroConfig(shards int, seed uint64) cellnet.Config {
	top := topology.Hex(8, 8, true)
	cfg := cellnet.PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 0.8}
	cfg.Mobility = &mobility.HexWalk{Top: top, DiameterKm: 1, Speed: mobility.HighMobility, Persistence: 0.8}
	cfg.Schedule = traffic.Constant{
		Lambda: traffic.RateForLoad(200, cfg.Mix, cfg.MeanLifetime),
		MinKmh: mobility.HighMobility.MinKmh, MaxKmh: mobility.HighMobility.MaxKmh,
	}
	cfg.Seed = seed
	cfg.Sharding = cellnet.ShardingConfig{
		Shards:           shards,
		SignalingLatency: 0.25,
		ExchangePeriod:   5,
	}
	return cfg
}

// MetroSharded runs one metro-scale scenario — a 64-cell wrapped hex
// grid with asynchronous inter-BS signaling — once per kernel shard
// count, and reports the QoS metrics side by side. The rows must be
// identical: under the async model the partitioning is an execution
// detail, so any divergence between shard counts is a determinism bug,
// which the experiment checks explicitly.
func MetroSharded(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:    "metro-sharded",
		Title: "Metro-scale sharded kernel: shard-count invariance under async signaling",
		PaperClaim: "The paper's Fig. 1 architecture is distributed — each BS runs its own " +
			"admission control and learns neighbor state over a signaling network. Modeling " +
			"that delay explicitly (rather than zero-latency shared memory) lets the " +
			"simulation itself be partitioned: expectation is identical QoS metrics at any " +
			"shard count, with P_CB/P_HD near the synchronous values since the exchange " +
			"period, not the signaling latency, dominates information staleness.",
	}
	scens := make([]runner.Scenario, len(metroShardCounts))
	for i, sc := range metroShardCounts {
		scens[i] = scenario(fmt.Sprintf("%s/shards%d", rep.ID, sc), metroConfig(sc, opt.Seed), opt.Duration)
	}
	res, err := runResults(opt, scens)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("shards", "PCB", "PHD", "hand-offs", "blocked", "N_calc", "degraded-Br")
	for i, sc := range metroShardCounts {
		r := res[i]
		tb.AddRowStrings(fmt.Sprintf("%d", sc),
			stats.FormatProb(r.PCB), stats.FormatProb(r.PHD),
			fmt.Sprintf("%d", r.Total.HandOffs), fmt.Sprintf("%d", r.Total.Blocked),
			fmtF(r.NCalc), fmt.Sprintf("%d", r.DegradedBrCalcs))
	}
	rep.Tables = append(rep.Tables, LabeledTable{Label: "per shard count (rows must be identical)", Table: tb})

	// The invariance claim, checked rather than eyeballed: all runs must
	// serialize to the same bytes.
	verdict := "identical"
	ref := resultBytes(res[0])
	for i := 1; i < len(res); i++ {
		if !bytes.Equal(resultBytes(res[i]), ref) {
			verdict = fmt.Sprintf("DIVERGED at shards=%d", metroShardCounts[i])
			break
		}
	}
	vt := stats.NewTable("check", "verdict")
	vt.AddRowStrings("shard-count invariance", verdict)
	rep.Tables = append(rep.Tables, LabeledTable{Label: "determinism", Table: vt})
	return rep, nil
}

// resultBytes canonicalizes the fields of a Result that the invariance
// check compares (everything the report prints, plus the full per-cell
// counter set).
func resultBytes(r *cellnet.Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%v %v %v %+v\n", r.PCB, r.PHD, r.NCalc, r.Total)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%d %+v %v %v %v %v\n", c.ID, c.Counters, c.Test, c.Br, c.AvgBr, c.AvgBu)
	}
	return b.Bytes()
}
