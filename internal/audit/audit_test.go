package audit

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/stats"
)

var _ error = (*Violation)(nil)

// goodLedger is a consistent adaptive-policy ledger; each test corrupts
// one field and expects the matching invariant to trip.
func goodLedger() core.Ledger {
	return core.Ledger{
		Capacity:    100,
		Margin:      0,
		Degree:      2,
		Adaptive:    true,
		Used:        10,
		Pledged:     0,
		Connections: 3,
		SumBw:       10,
		SumMin:      6,
		LastBr:      20,
		Test:        5,
	}
}

// wantViolation runs fn and asserts it panics with a *Violation for the
// named invariant, returning the report for further inspection.
func wantViolation(t *testing.T, invariant string, fn func()) *Violation {
	t.Helper()
	var got *Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic, want %s violation", invariant)
			}
			v, ok := r.(*Violation)
			if !ok {
				t.Fatalf("panicked with %T (%v), want *Violation", r, r)
			}
			got = v
		}()
		fn()
	}()
	if got.Invariant != invariant {
		t.Fatalf("violation invariant = %q, want %q (detail: %s)", got.Invariant, invariant, got.Detail)
	}
	return got
}

func TestGoodLedgerPasses(t *testing.T) {
	var ck Checker
	ck.Engine("cell 0", 1, goodLedger())

	// Non-adaptive ledgers carry Test = 0; that must not trip the window check.
	l := goodLedger()
	l.Adaptive = false
	l.Test = 0
	ck.Engine("cell 0", 1, l)

	// Committed bandwidth may spend the CDMA soft-capacity margin.
	l = goodLedger()
	l.Margin = 10
	l.Used, l.SumBw = 100, 100
	l.Pledged = 10
	ck.Engine("cell 0", 1, l)
}

func TestEngineViolations(t *testing.T) {
	var ck Checker
	cases := []struct {
		name      string
		invariant string
		mutate    func(*core.Ledger)
	}{
		{"negative B_u", "bandwidth-conservation", func(l *core.Ledger) { l.Used = -1; l.SumBw = -1 }},
		{"sum mismatch", "bandwidth-conservation", func(l *core.Ledger) { l.SumBw = l.Used + 3 }},
		{"negative pledge", "bandwidth-conservation", func(l *core.Ledger) { l.Pledged = -2 }},
		{"over capacity", "bandwidth-conservation", func(l *core.Ledger) { l.Used, l.SumBw = 80, 80; l.Pledged = 21 }},
		{"bad connection", "connection-record", func(l *core.Ledger) { l.BadConn = "conn 7: bw 5 outside [1,4]" }},
		{"NaN B_r", "reservation-sanity", func(l *core.Ledger) { l.LastBr = math.NaN() }},
		{"negative B_r", "reservation-sanity", func(l *core.Ledger) { l.LastBr = -0.5 }},
		{"B_r over Eq.6 bound", "reservation-sanity", func(l *core.Ledger) { l.LastBr = 201 }},
		{"T_est below floor", "test-window", func(l *core.Ledger) { l.Test = 0.25 }},
		{"infinite T_est", "test-window", func(l *core.Ledger) { l.Test = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := goodLedger()
			tc.mutate(&l)
			v := wantViolation(t, tc.invariant, func() { ck.Engine("cell 3", 42.5, l) })
			if v.Cell != "cell 3" || v.Time != 42.5 {
				t.Errorf("violation located at (%q, %v), want (cell 3, 42.5)", v.Cell, v.Time)
			}
			if v.Snapshot == "" {
				t.Error("violation carries no ledger snapshot")
			}
		})
	}
}

func TestCounterViolations(t *testing.T) {
	var ck Checker
	ck.Counters("system", 1, stats.Counters{Requested: 10, Blocked: 10, HandOffs: 5, Dropped: 5})

	v := wantViolation(t, "counter-consistency", func() {
		ck.Counters("system", 1, stats.Counters{Requested: 3, Blocked: 4})
	})
	if !strings.Contains(v.Detail, "Blocked 4 > Requested 3") {
		t.Errorf("detail %q missing counter values", v.Detail)
	}
	wantViolation(t, "counter-consistency", func() {
		ck.Counters("system", 1, stats.Counters{HandOffs: 2, Dropped: 3})
	})
}

func TestSample(t *testing.T) {
	var nilCk *Checker
	if nilCk.Sample(0) {
		t.Error("nil checker sampled")
	}
	every := &Checker{}
	for i := uint64(0); i < 5; i++ {
		if !every.Sample(i) {
			t.Fatalf("EveryN=0 skipped event %d", i)
		}
	}
	fourth := &Checker{EveryN: 4}
	var hits int
	for i := uint64(0); i < 16; i++ {
		if fourth.Sample(i) {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("EveryN=4 sampled %d of 16 events, want 4", hits)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{
		Invariant: "bandwidth-conservation",
		Cell:      "cell 9",
		Time:      123.5,
		Detail:    "B_u = -1 is negative",
		Snapshot:  "{Used:-1}",
	}
	msg := v.Error()
	for _, want := range []string{"bandwidth-conservation", "cell 9", "123.5", "B_u = -1", "{Used:-1}"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func TestFailf(t *testing.T) {
	var ck Checker
	v := wantViolation(t, "wired-conservation", func() {
		ck.Failf("wired-conservation", "backbone", 7, "snap", "links carry %d, paths need %d", 12, 10)
	})
	if v.Detail != "links carry 12, paths need 10" || v.Snapshot != "snap" {
		t.Errorf("Failf fields = %+v", v)
	}
}

// restoredEngine builds an adaptive engine, checkpoints it, and
// restores the checkpoint into a fresh engine — the state History is
// designed to verify.
func restoredEngine(t *testing.T, lastEvent float64) *core.Engine {
	t.Helper()
	cfg := core.Config{
		Capacity: 100, Degree: 2, Policy: core.AC3, PHDTarget: 0.01, TStart: 1,
		Estimation: predict.StationaryConfig(),
	}
	src := core.NewEngine(cfg)
	for i := 0; i < 10; i++ {
		src.RecordDeparture(predict.Quadruplet{
			Event: lastEvent * float64(i) / 9, Prev: 0, Next: 1, Sojourn: 3,
		})
	}
	var buf bytes.Buffer
	if _, err := src.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	dst := core.NewEngine(cfg)
	if _, err := dst.RestoreHistory(&buf, false); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestHistoryPassesOnCleanRestore(t *testing.T) {
	var ck Checker
	ck.History("cell 0", 100, restoredEngine(t, 90))
	// An engine without an estimator trivially passes too.
	ck.History("cell 1", 100, core.NewEngine(core.Config{Capacity: 10, Degree: 1, Policy: core.None}))
}

func TestHistoryRejectsFutureClock(t *testing.T) {
	var ck Checker
	e := restoredEngine(t, 90)
	wantViolation(t, "history-clock", func() {
		// The service resumed its clock *behind* the restored history:
		// the very next Record would panic on the event-order invariant.
		ck.History("cell 0", 50, e)
	})
}
