// Package audit is a pluggable runtime invariant checker for the
// simulation's conservation-style bookkeeping. The paper's results are
// ratios of counters (P_CB, P_HD — Tables 2–3) over ledgers of per-cell
// used bandwidth B_u and target reservation B_r (Eqs. 5–6); a single
// double-release or forgotten pledge silently corrupts every number
// downstream. A Checker re-verifies the ledgers after simulation events
// and panics with a structured Violation the moment one drifts, so bugs
// surface at the event that introduced them instead of three PRs later.
//
// A Checker holds only configuration and is safe to share across
// concurrently running Networks (internal/runner worker pools). The
// per-engine and per-counter invariants live here; cross-layer checks
// (connection lifecycle, pledge and wired-path conservation) are
// assembled by internal/cellnet from these primitives plus Failf.
package audit

import (
	"bytes"
	"fmt"
	"math"

	"cellqos/internal/core"
	"cellqos/internal/stats"
)

// Violation is a structured invariant-violation report. It implements
// error; the checker delivers it by panicking, so a violation aborts the
// run it corrupted (internal/runner converts the panic into a per-point
// error without taking down sibling scenarios).
type Violation struct {
	// Invariant names the broken rule (e.g. "bandwidth-conservation").
	Invariant string
	// Cell locates the violation ("cell 3", "backbone", "system").
	Cell string
	// Time is the simulation clock when the check ran.
	Time float64
	// Detail states what went wrong, with the offending values.
	Detail string
	// Snapshot is the ledger or counter state backing the verdict.
	Snapshot string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("audit: %s violated at t=%.6g (%s): %s [snapshot: %s]",
		v.Invariant, v.Time, v.Cell, v.Detail, v.Snapshot)
}

// Checker verifies conservation invariants. The zero value checks at
// every opportunity; it has no mutable state, so one Checker may be
// shared by any number of simulations.
type Checker struct {
	// EveryN samples event-boundary checks: only events whose index is a
	// multiple of EveryN are verified (≤ 1 means every event). End-of-run
	// checks (cellnet.Snapshot) always run in full regardless.
	EveryN int
}

// Sample reports whether the event-boundary check should run for the
// eventIndex-th fired event. A nil Checker never samples.
func (c *Checker) Sample(eventIndex uint64) bool {
	if c == nil {
		return false
	}
	if c.EveryN <= 1 {
		return true
	}
	return eventIndex%uint64(c.EveryN) == 0
}

// Failf reports a violation: it panics with a *Violation built from the
// arguments. Higher layers use it for cross-layer invariants the Checker
// cannot see on its own (connection lifecycle, wired conservation).
func (c *Checker) Failf(invariant, cell string, now float64, snapshot, format string, args ...any) {
	panic(&Violation{
		Invariant: invariant,
		Cell:      cell,
		Time:      now,
		Detail:    fmt.Sprintf(format, args...),
		Snapshot:  snapshot,
	})
}

// Engine verifies one cell's bandwidth ledger:
//
//   - bandwidth conservation: 0 ≤ B_u, Σ granted == B_u, pledged ≥ 0,
//     and committed = B_u + pledged ≤ C + hand-off margin (the margin is
//     the §7 CDMA soft-capacity allowance; 0 in the paper's FCA runs);
//   - per-connection sanity: every record has 0 < min ≤ bw ≤ max and a
//     consistent table index (Ledger.BadConn);
//   - reservation sanity: B_r is finite, non-negative, and bounded by
//     Eq. 6's worst case Σ_{i∈A} B_{i,this} ≤ degree × (C + margin) —
//     each neighbor's Eq. 5 sum is capped by its own committed bandwidth,
//     so B_r can exceed one cell's capacity but never the neighborhood's;
//   - T_est sanity: adaptive policies keep the estimation window at or
//     above the controller's 1 s floor (Fig. 6) and finite.
func (c *Checker) Engine(cell string, now float64, l core.Ledger) {
	snap := fmt.Sprintf("%+v", l)
	fail := func(invariant, format string, args ...any) {
		c.Failf(invariant, cell, now, snap, format, args...)
	}
	if l.Used < 0 {
		fail("bandwidth-conservation", "B_u = %d is negative", l.Used)
	}
	if l.SumBw != l.Used {
		fail("bandwidth-conservation", "Σ granted bandwidth %d != tracked B_u %d", l.SumBw, l.Used)
	}
	if l.Pledged < 0 {
		fail("bandwidth-conservation", "pledged bandwidth %d is negative", l.Pledged)
	}
	if limit := l.Capacity + l.Margin; l.Used+l.Pledged > limit {
		fail("bandwidth-conservation", "committed %d (B_u %d + pledged %d) exceeds capacity+margin %d",
			l.Used+l.Pledged, l.Used, l.Pledged, limit)
	}
	if l.BadConn != "" {
		fail("connection-record", "%s", l.BadConn)
	}
	if math.IsNaN(l.LastBr) || math.IsInf(l.LastBr, 0) || l.LastBr < 0 {
		fail("reservation-sanity", "B_r = %v is not a finite non-negative value", l.LastBr)
	}
	if max := float64(l.Degree * (l.Capacity + l.Margin)); l.LastBr > max {
		fail("reservation-sanity", "B_r = %v exceeds the Eq. 6 bound %v (degree %d × (C %d + margin %d))",
			l.LastBr, max, l.Degree, l.Capacity, l.Margin)
	}
	if l.Adaptive {
		if math.IsNaN(l.Test) || math.IsInf(l.Test, 0) || l.Test < 1 {
			fail("test-window", "T_est = %v outside the controller's [1s, ∞) range", l.Test)
		}
	}
	if l.DegradedBrCalcs > l.BrCalcs {
		fail("degraded-accounting", "degraded B_r calcs %d exceed total B_r calcs %d",
			l.DegradedBrCalcs, l.BrCalcs)
	}
	if l.LastBrDegraded && l.DegradedBrCalcs == 0 {
		fail("degraded-accounting", "last B_r flagged degraded but no degraded calc was counted")
	}
}

// Eq5Tolerance bounds the divergence allowed between the engine's
// incremental Eq. 5 cache and the retained from-scratch walk. The cache
// is designed to be bit-exact (same operations in the same order), so
// any drift at all points at a bookkeeping bug; the tolerance only
// leaves room for future maintainers to relax the exactness argument
// deliberately, not for rounding noise.
const Eq5Tolerance = 1e-9

// Eq5Cache verifies one engine's materialized Eq. 5 reservation view
// against the retained from-scratch computation: every finished
// per-direction sum is re-derived via eq5Scratch, every materialized
// per-connection term against a fresh Eq. 4 evaluation, and every
// connection's incremental staleness guard is re-checked (an expired
// guard the advance failed to refresh reports as an infinite
// divergence). A divergence means the fast path is answering neighbors
// with numbers the paper's Eq. 5 does not produce, corrupting every
// downstream B_r and admission decision. Only a view keyed at the
// current timestamp is re-derived (see core.VerifyEq5CacheAt): that is
// the state the event being audited actually consumed, and it keeps
// the sweep from dragging the estimator indexes backward in time.
func (c *Checker) Eq5Cache(cell string, now float64, e *core.Engine) {
	diff, checked := e.VerifyEq5CacheAt(now)
	if !checked || diff <= Eq5Tolerance {
		return
	}
	hits, misses := e.Eq5CacheStats()
	rebuilds, advances, refreshes := e.Eq5ViewStats()
	c.Failf("eq5-incremental", cell, now,
		fmt.Sprintf("maxDiff=%v hits=%d misses=%d rebuilds=%d advances=%d refreshes=%d",
			diff, hits, misses, rebuilds, advances, refreshes),
		"materialized Eq. 5 view diverges from the from-scratch walk by %v (tolerance %v)",
		diff, Eq5Tolerance)
}

// History verifies an engine's hand-off history after a checkpoint
// restore: the estimator state a service resumed from disk must be a
// fixed point of the persistence round trip. The restored engine is
// re-serialized, decoded into a scratch engine with the same
// configuration, and serialized again; any decode error or byte
// difference means the restore left state WriteHistory cannot
// faithfully represent (broken per-pair event order, a stray sample
// outside the cache cap), which would corrupt the *next* checkpoint —
// the failure would otherwise surface only after the following crash.
// It also checks the restored clock: HistoryLastEvent must be finite,
// non-negative, and not ahead of the service's resumed simulation time,
// or every subsequent Record would panic on the event-order invariant.
func (c *Checker) History(cell string, now float64, e *core.Engine) {
	last := e.HistoryLastEvent()
	snap := fmt.Sprintf("lastEvent=%v now=%v", last, now)
	if math.IsNaN(last) || math.IsInf(last, 0) || last < 0 {
		c.Failf("history-clock", cell, now, snap, "restored HistoryLastEvent = %v is not finite and non-negative", last)
	}
	if last > now {
		c.Failf("history-clock", cell, now, snap,
			"restored history's newest event %v is ahead of the resumed clock %v (Record would panic)", last, now)
	}
	var first bytes.Buffer
	if _, err := e.WriteHistory(&first); err != nil {
		c.Failf("history-rederivation", cell, now, snap, "re-serializing restored history: %v", err)
	}
	cfg := e.Config()
	cfg.Lock = nil // the scratch engine is private to this check
	scratch := core.NewEngine(cfg)
	if _, err := scratch.RestoreHistory(bytes.NewReader(first.Bytes()), false); err != nil {
		c.Failf("history-rederivation", cell, now, snap, "decoding re-serialized history: %v", err)
	}
	if got := scratch.HistoryLastEvent(); got != last {
		c.Failf("history-rederivation", cell, now, snap,
			"round trip moved HistoryLastEvent from %v to %v", last, got)
	}
	var second bytes.Buffer
	if _, err := scratch.WriteHistory(&second); err != nil {
		c.Failf("history-rederivation", cell, now, snap, "serializing round-tripped history: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		c.Failf("history-rederivation", cell, now,
			fmt.Sprintf("%s first=%dB second=%dB", snap, first.Len(), second.Len()),
			"restored history is not a persistence fixed point")
	}
}

// Counters verifies counter consistency: a scope can never block more
// connections than were requested nor drop more hand-offs than arrived
// (the Tables 2–3 ratios P_CB = Blocked/Requested and P_HD =
// Dropped/HandOffs must stay in [0,1]).
func (c *Checker) Counters(cell string, now float64, ct stats.Counters) {
	snap := fmt.Sprintf("%+v", ct)
	if ct.Blocked > ct.Requested {
		c.Failf("counter-consistency", cell, now, snap,
			"Blocked %d > Requested %d (P_CB would exceed 1)", ct.Blocked, ct.Requested)
	}
	if ct.Dropped > ct.HandOffs {
		c.Failf("counter-consistency", cell, now, snap,
			"Dropped %d > HandOffs %d (P_HD would exceed 1)", ct.Dropped, ct.HandOffs)
	}
}
