package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSimulatorStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if _, err := s.At(at, func(s *Simulator) { got = append(got, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTiesFireInSchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.MustAfter(7, func(*Simulator) { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated FIFO: got %v", got)
		}
	}
}

func TestPastEventRejected(t *testing.T) {
	s := New()
	s.MustAfter(10, func(*Simulator) {})
	s.Run()
	if _, err := s.At(5, func(*Simulator) {}); err == nil {
		t.Fatal("scheduling in the past succeeded, want error")
	}
}

func TestSameTimeEventAllowed(t *testing.T) {
	s := New()
	fired := false
	s.MustAfter(10, func(s *Simulator) {
		if _, err := s.At(s.Now(), func(*Simulator) { fired = true }); err != nil {
			t.Errorf("At(Now) failed: %v", err)
		}
	})
	s.Run()
	if !fired {
		t.Fatal("event at current time did not fire")
	}
}

func TestNegativeAfterRejected(t *testing.T) {
	s := New()
	s.MustAfter(1, func(*Simulator) {})
	s.Run()
	if _, err := s.After(-0.5, func(*Simulator) {}); err == nil {
		t.Fatal("After(-0.5) succeeded, want error")
	}
}

func TestNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(NaN) did not panic")
		}
	}()
	New().At(nan(), func(*Simulator) {})
}

func nan() float64 { z := 0.0; return z / z }

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.MustAfter(1, func(*Simulator) { fired = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelInvalidHandle(t *testing.T) {
	s := New()
	if s.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle returned true")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	s := New()
	h := s.MustAfter(1, func(*Simulator) {})
	s.Run()
	if s.Cancel(h) {
		t.Fatal("Cancel of already-fired event returned true")
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New()
	fired := false
	var h Handle
	h = s.MustAfter(2, func(*Simulator) { fired = true })
	s.MustAfter(1, func(s *Simulator) { s.Cancel(h) })
	s.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", s.Pending())
	}
}

func TestStop(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 10; i++ {
		s.MustAfter(float64(i), func(s *Simulator) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop at 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", s.Pending())
	}
}

func TestRunResumesAfterStop(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 4; i++ {
		s.MustAfter(float64(i), func(s *Simulator) {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	s.Run()
	if count != 4 {
		t.Fatalf("fired %d events across two Runs, want 4", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		s.MustAfter(at, func(s *Simulator) { got = append(got, s.Now()) })
	}
	end := s.RunUntil(3)
	if end != 3 {
		t.Fatalf("RunUntil returned %v, want 3", end)
	}
	if len(got) != 3 {
		t.Fatalf("fired %d events, want 3 (≤ end)", len(got))
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("remaining events lost: fired %d total, want 5", len(got))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42 with empty queue", s.Now())
	}
}

func TestRunUntilBeforeNowIsNoop(t *testing.T) {
	s := New()
	s.RunUntil(10)
	if got := s.RunUntil(5); got != 10 {
		t.Fatalf("RunUntil(5) after Now=10 returned %v, want 10", got)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	depth := 0
	var recurse func(*Simulator)
	recurse = func(s *Simulator) {
		depth++
		if depth < 100 {
			s.MustAfter(1, recurse)
		}
	}
	s.MustAfter(1, recurse)
	s.Run()
	if depth != 100 {
		t.Fatalf("chain depth = %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.MustAfter(float64(i), func(*Simulator) {})
	}
	h := s.MustAfter(10, func(*Simulator) {})
	s.Cancel(h)
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (canceled events don't count)", s.Fired())
	}
}

func TestNextEventTime(t *testing.T) {
	s := New()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime ok on empty queue")
	}
	h := s.MustAfter(3, func(*Simulator) {})
	s.MustAfter(5, func(*Simulator) {})
	if at, ok := s.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %v,%v want 3,true", at, ok)
	}
	s.Cancel(h)
	if at, ok := s.NextEventTime(); !ok || at != 5 {
		t.Fatalf("NextEventTime after cancel = %v,%v want 5,true", at, ok)
	}
}

// Property: for any multiset of delays, events fire in sorted order and
// the final clock equals the maximum delay.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fireTimes []float64
		for _, r := range raw {
			at := float64(r) / 16
			s.MustAfter(at, func(s *Simulator) { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		want := make([]float64, len(raw))
		for i, r := range raw {
			want[i] = float64(r) / 16
		}
		sort.Float64s(want)
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return s.Now() == want[len(want)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool, seed uint64) bool {
		s := New()
		rng := rand.New(rand.NewPCG(seed, 0))
		fired := make(map[int]bool)
		handles := make([]Handle, len(delays))
		for i, d := range delays {
			i := i
			handles[i] = s.MustAfter(float64(d), func(*Simulator) { fired[i] = true })
		}
		want := make(map[int]bool)
		for i := range delays {
			want[i] = true
		}
		for i := range handles {
			drop := rng.IntN(2) == 0
			if i < len(mask) {
				drop = mask[i]
			}
			if drop {
				s.Cancel(handles[i])
				delete(want, i)
			}
		}
		s.Run()
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	delays := make([]float64, 1024)
	for i := range delays {
		delays[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, d := range delays {
			s.MustAfter(d, func(*Simulator) {})
		}
		s.Run()
	}
}
