package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSimulatorStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if _, err := s.At(at, func(s Scheduler) { got = append(got, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTiesFireInSchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.MustAfter(7, func(Scheduler) { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated FIFO: got %v", got)
		}
	}
}

func TestPastEventRejected(t *testing.T) {
	s := New()
	s.MustAfter(10, func(Scheduler) {})
	s.Run()
	if _, err := s.At(5, func(Scheduler) {}); err == nil {
		t.Fatal("scheduling in the past succeeded, want error")
	}
}

func TestSameTimeEventAllowed(t *testing.T) {
	s := New()
	fired := false
	s.MustAfter(10, func(s Scheduler) {
		if _, err := s.At(s.Now(), func(Scheduler) { fired = true }); err != nil {
			t.Errorf("At(Now) failed: %v", err)
		}
	})
	s.Run()
	if !fired {
		t.Fatal("event at current time did not fire")
	}
}

func TestNegativeAfterRejected(t *testing.T) {
	s := New()
	s.MustAfter(1, func(Scheduler) {})
	s.Run()
	if _, err := s.After(-0.5, func(Scheduler) {}); err == nil {
		t.Fatal("After(-0.5) succeeded, want error")
	}
}

func TestNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(NaN) did not panic")
		}
	}()
	New().At(nan(), func(Scheduler) {})
}

func nan() float64 { z := 0.0; return z / z }

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.MustAfter(1, func(Scheduler) { fired = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelInvalidHandle(t *testing.T) {
	s := New()
	if s.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle returned true")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	s := New()
	h := s.MustAfter(1, func(Scheduler) {})
	s.Run()
	if s.Cancel(h) {
		t.Fatal("Cancel of already-fired event returned true")
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New()
	fired := false
	var h Handle
	h = s.MustAfter(2, func(Scheduler) { fired = true })
	s.MustAfter(1, func(s Scheduler) { s.Cancel(h) })
	s.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", s.Pending())
	}
}

func TestStop(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 10; i++ {
		s.MustAfter(float64(i), func(s Scheduler) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop at 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", s.Pending())
	}
}

func TestRunResumesAfterStop(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 4; i++ {
		s.MustAfter(float64(i), func(s Scheduler) {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	s.Run()
	if count != 4 {
		t.Fatalf("fired %d events across two Runs, want 4", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		s.MustAfter(at, func(s Scheduler) { got = append(got, s.Now()) })
	}
	end := s.RunUntil(3)
	if end != 3 {
		t.Fatalf("RunUntil returned %v, want 3", end)
	}
	if len(got) != 3 {
		t.Fatalf("fired %d events, want 3 (≤ end)", len(got))
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("remaining events lost: fired %d total, want 5", len(got))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42 with empty queue", s.Now())
	}
}

func TestRunUntilBeforeNowIsNoop(t *testing.T) {
	s := New()
	s.RunUntil(10)
	if got := s.RunUntil(5); got != 10 {
		t.Fatalf("RunUntil(5) after Now=10 returned %v, want 10", got)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	depth := 0
	var recurse func(Scheduler)
	recurse = func(s Scheduler) {
		depth++
		if depth < 100 {
			s.MustAfter(1, recurse)
		}
	}
	s.MustAfter(1, recurse)
	s.Run()
	if depth != 100 {
		t.Fatalf("chain depth = %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.MustAfter(float64(i), func(Scheduler) {})
	}
	h := s.MustAfter(10, func(Scheduler) {})
	s.Cancel(h)
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (canceled events don't count)", s.Fired())
	}
}

func TestNextEventTime(t *testing.T) {
	s := New()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime ok on empty queue")
	}
	h := s.MustAfter(3, func(Scheduler) {})
	s.MustAfter(5, func(Scheduler) {})
	if at, ok := s.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %v,%v want 3,true", at, ok)
	}
	s.Cancel(h)
	if at, ok := s.NextEventTime(); !ok || at != 5 {
		t.Fatalf("NextEventTime after cancel = %v,%v want 5,true", at, ok)
	}
}

// Property: for any multiset of delays, events fire in sorted order and
// the final clock equals the maximum delay.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fireTimes []float64
		for _, r := range raw {
			at := float64(r) / 16
			s.MustAfter(at, func(s Scheduler) { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		want := make([]float64, len(raw))
		for i, r := range raw {
			want[i] = float64(r) / 16
		}
		sort.Float64s(want)
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return s.Now() == want[len(want)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool, seed uint64) bool {
		s := New()
		rng := rand.New(rand.NewPCG(seed, 0))
		fired := make(map[int]bool)
		handles := make([]Handle, len(delays))
		for i, d := range delays {
			i := i
			handles[i] = s.MustAfter(float64(d), func(Scheduler) { fired[i] = true })
		}
		want := make(map[int]bool)
		for i := range delays {
			want[i] = true
		}
		for i := range handles {
			drop := rng.IntN(2) == 0
			if i < len(mask) {
				drop = mask[i]
			}
			if drop {
				s.Cancel(handles[i])
				delete(want, i)
			}
		}
		s.Run()
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	delays := make([]float64, 1024)
	for i := range delays {
		delays[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, d := range delays {
			s.MustAfter(d, func(Scheduler) {})
		}
		s.Run()
	}
}

// Regression: canceled events whose timestamps were never reached used to
// be retained forever (the old canceled-map only shrank on pop). Run and
// RunUntil now compact them away at teardown.
func TestCanceledEventsReleasedAtRunUntilTeardown(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		h := s.MustAfter(100+float64(i), func(Scheduler) { t.Error("canceled event fired") })
		s.Cancel(h)
	}
	s.MustAfter(1, func(Scheduler) {})
	s.RunUntil(50) // ends long before any canceled timestamp
	if got := s.CanceledRetained(); got != 0 {
		t.Fatalf("CanceledRetained() = %d after RunUntil teardown, want 0", got)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
}

func TestCanceledEventsReleasedAfterStop(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		h := s.MustAfter(10+float64(i), func(Scheduler) { t.Error("canceled event fired") })
		s.Cancel(h)
	}
	s.MustAfter(1, func(s Scheduler) { s.Stop() })
	s.Run()
	if got := s.CanceledRetained(); got != 0 {
		t.Fatalf("CanceledRetained() = %d after stopped Run, want 0", got)
	}
}

func TestCancelAfterCompactionReturnsFalse(t *testing.T) {
	s := New()
	h := s.MustAfter(100, func(Scheduler) {})
	s.Cancel(h)
	s.RunUntil(1) // compacts the canceled item away
	if s.Cancel(h) {
		t.Fatal("Cancel of compacted event returned true")
	}
}

func TestEventQueueCompactKeepsOrder(t *testing.T) {
	q := NewEventQueue()
	var keep []uint64
	for i := 0; i < 50; i++ {
		seq := q.Schedule(float64((i*37)%50), func(Scheduler) {})
		if i%3 == 0 {
			q.Cancel(seq)
		} else {
			keep = append(keep, seq)
		}
	}
	q.Compact()
	if q.CanceledRetained() != 0 {
		t.Fatalf("CanceledRetained() = %d after Compact, want 0", q.CanceledRetained())
	}
	if q.Len() != len(keep) {
		t.Fatalf("Len() = %d, want %d", q.Len(), len(keep))
	}
	last := -1.0
	n := 0
	for {
		at, _, _, ok := q.Pop()
		if !ok {
			break
		}
		if at < last {
			t.Fatalf("Compact broke heap order: %v after %v", at, last)
		}
		last = at
		n++
	}
	if n != len(keep) {
		t.Fatalf("popped %d events after Compact, want %d", n, len(keep))
	}
}

// Cancel must be O(1): a linear scan (the old implementation) makes this
// benchmark quadratic in queue size and shows up immediately in ns/op.
func BenchmarkCancel(b *testing.B) {
	s := New()
	handles := make([]Handle, b.N)
	for i := range handles {
		handles[i] = s.MustAfter(float64(i%1024)+1, func(Scheduler) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Cancel(handles[i]) {
			b.Fatal("cancel failed")
		}
	}
}
