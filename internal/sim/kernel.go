package sim

// This file defines the kernel abstraction extracted from Simulator.
//
// Two interfaces split the discrete-event kernel's surface by audience:
//
//   - Scheduler is what event callbacks see: the clock plus the ability
//     to book, cancel, and stop. In the single-heap Simulator the
//     Scheduler is the Simulator itself; in the sharded kernel
//     (internal/sim/shard) each event receives the scheduling surface of
//     the shard it runs on, so follow-up events land in the same shard's
//     heap without synchronization.
//   - Kernel is what the simulation driver (internal/cellnet) sees: run
//     control and observability. It deliberately excludes scheduling —
//     pre-run seeding goes through a Scheduler obtained from the
//     concrete kernel, and in-run scheduling goes through the event's
//     own Scheduler argument.
//
// Simulator implements both and remains the shards=1 reference
// implementation; the golden corpus is defined by its event order.

// Scheduler books events on a kernel. Implementations are confined to
// the goroutine currently running the owning shard's events (or, before
// Run, the constructing goroutine).
type Scheduler interface {
	// Now returns the current virtual time in seconds.
	Now() float64
	// At schedules fn at absolute time t (ErrPastEvent if t < Now).
	At(t float64, fn Event) (Handle, error)
	// After schedules fn d seconds from now.
	After(d float64, fn Event) (Handle, error)
	// MustAfter is After for delays known to be non-negative.
	MustAfter(d float64, fn Event) Handle
	// Cancel prevents a scheduled event from firing; it reports whether
	// the event was still pending. Handles are only valid on the
	// Scheduler that issued them.
	Cancel(h Handle) bool
	// Stop aborts the run loop after the current event returns.
	Stop()
}

// Kernel is the run-control surface of a discrete-event kernel.
type Kernel interface {
	// Now returns the current virtual time in seconds.
	Now() float64
	// Run fires events until the queue drains or Stop is called.
	Run() float64
	// RunUntil fires events with timestamps ≤ end, then sets the clock
	// to end. It may be called repeatedly with increasing end times.
	RunUntil(end float64) float64
	// Fired returns the total number of events executed so far.
	Fired() uint64
	// Pending returns the number of scheduled, not-yet-fired,
	// not-canceled events.
	Pending() int
	// AfterEvent registers fn to run after every fired event, at the
	// event boundary. Kernels that execute events concurrently do not
	// support a per-event global hook and panic; they expose a barrier
	// hook instead (shard.Kernel.AtBarrier).
	AfterEvent(fn func())
}

var (
	_ Scheduler = (*Simulator)(nil)
	_ Kernel    = (*Simulator)(nil)
)

// NewHandle wraps a kernel-implementation sequence number in a Handle.
// It exists for kernel implementations outside this package
// (internal/sim/shard); simulation models never mint handles.
func NewHandle(seq uint64) Handle { return Handle{seq: seq} }

// Seq exposes the handle's sequence number for kernel implementations.
func (h Handle) Seq() uint64 { return h.seq }
