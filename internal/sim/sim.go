// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of timestamped
// events. Events fire in non-decreasing time order; ties are broken by
// scheduling order (FIFO), which keeps runs fully deterministic for a
// fixed random seed. The kernel knows nothing about cellular networks:
// higher layers (internal/cellnet, internal/traffic) schedule closures.
//
// Simulator is the single-heap reference kernel; internal/sim/shard
// provides a multi-heap kernel behind the same Kernel/Scheduler
// interfaces for sharded metro-scale runs.
package sim

import (
	"errors"
	"fmt"
)

// Event is a callback fired at a virtual time. The callback receives the
// scheduler that is executing it so it can book follow-up events.
type Event func(s Scheduler)

// Handle identifies a scheduled event so it can be canceled. The zero
// Handle is invalid.
type Handle struct {
	seq uint64
}

// Valid reports whether h refers to an event that was actually scheduled.
func (h Handle) Valid() bool { return h.seq != 0 }

// Simulator is a discrete-event simulation driver. It is not safe for
// concurrent use; all events run on the caller's goroutine.
type Simulator struct {
	now        float64
	queue      *EventQueue
	fired      uint64
	running    bool
	stopped    bool
	afterEvent func()
}

// New returns an empty simulator with the clock at time 0.
func New() *Simulator {
	return &Simulator{queue: NewEventQueue()}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of scheduled, not-yet-fired, not-canceled events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Fired returns the total number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// CanceledRetained returns the number of canceled events still occupying
// queue memory; Run and RunUntil compact this to zero at teardown. It
// exists for leak regression tests.
func (s *Simulator) CanceledRetained() int { return s.queue.CanceledRetained() }

// ErrPastEvent is returned by At when an event is scheduled before Now.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute time t. It panics if t is NaN and
// returns ErrPastEvent if t precedes the current clock; t == Now is
// allowed (the event fires after already-queued events at the same time).
func (s *Simulator) At(t float64, fn Event) (Handle, error) {
	if t < s.now {
		return Handle{}, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, s.now)
	}
	return Handle{seq: s.queue.Schedule(t, fn)}, nil
}

// After schedules fn to run d seconds from now. Negative d is an error.
func (s *Simulator) After(d float64, fn Event) (Handle, error) {
	return s.At(s.now+d, fn)
}

// MustAfter is After for delays known to be non-negative; it panics on error.
func (s *Simulator) MustAfter(d float64, fn Event) Handle {
	h, err := s.After(d, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// Cancel prevents a scheduled event from firing in O(1). It reports
// whether the event was still pending. Canceling an already-fired,
// already-canceled, or invalid handle returns false.
func (s *Simulator) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	return s.queue.Cancel(h.seq)
}

// Stop aborts the run loop after the current event returns. It may be
// called from within an event callback.
func (s *Simulator) Stop() { s.stopped = true }

// AfterEvent registers fn to run after every fired event, at the event
// boundary: the event's callback has returned and all of its state
// mutations are visible, but the clock has not advanced further. Higher
// layers hang invariant checkers here (internal/audit). A nil fn removes
// the hook; when no hook is set the kernel pays only a nil check.
func (s *Simulator) AfterEvent(fn func()) { s.afterEvent = fn }

// step fires the earliest pending event. It reports false when the queue
// is empty.
func (s *Simulator) step() bool {
	at, _, fn, ok := s.queue.Pop()
	if !ok {
		return false
	}
	if at < s.now {
		panic("sim: time went backwards")
	}
	s.now = at
	s.fired++
	fn(s)
	if s.afterEvent != nil {
		s.afterEvent()
	}
	return true
}

// Run fires events until the queue drains or Stop is called. It returns
// the final clock value. Canceled-but-unfired events are compacted away
// at teardown so a stopped run does not retain their memory.
func (s *Simulator) Run() float64 {
	if s.running {
		panic("sim: nested Run")
	}
	s.running = true
	defer func() { s.running = false }()
	defer s.queue.Compact()
	s.stopped = false
	for !s.stopped && s.step() {
	}
	return s.now
}

// RunUntil fires events with timestamps ≤ end, then sets the clock to end
// and returns. Events scheduled after end remain queued; canceled events
// are compacted away at teardown.
func (s *Simulator) RunUntil(end float64) float64 {
	if s.running {
		panic("sim: nested Run")
	}
	if end < s.now {
		return s.now
	}
	s.running = true
	defer func() { s.running = false }()
	defer s.queue.Compact()
	s.stopped = false
	for !s.stopped {
		next, _, ok := s.queue.PeekTime()
		if !ok || next > end {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < end {
		s.now = end
	}
	return s.now
}

// NextEventTime exposes the timestamp of the earliest pending event, for
// tests and pacing logic. ok is false when nothing is queued.
func (s *Simulator) NextEventTime() (t float64, ok bool) {
	t, _, ok = s.queue.PeekTime()
	return t, ok
}
