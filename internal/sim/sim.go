// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of timestamped
// events. Events fire in non-decreasing time order; ties are broken by
// scheduling order (FIFO), which keeps runs fully deterministic for a
// fixed random seed. The kernel knows nothing about cellular networks:
// higher layers (internal/cellnet, internal/traffic) schedule closures.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Event is a callback fired at a virtual time. The callback receives the
// simulator so it can schedule follow-up events.
type Event func(s *Simulator)

// Handle identifies a scheduled event so it can be canceled. The zero
// Handle is invalid.
type Handle struct {
	seq uint64
}

// Valid reports whether h refers to an event that was actually scheduled.
func (h Handle) Valid() bool { return h.seq != 0 }

type item struct {
	at       float64
	seq      uint64
	fn       Event
	canceled bool
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*item)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Simulator is a discrete-event simulation driver. It is not safe for
// concurrent use; all events run on the caller's goroutine.
type Simulator struct {
	now        float64
	seq        uint64
	queue      eventQueue
	canceled   map[uint64]*item
	fired      uint64
	running    bool
	stopped    bool
	afterEvent func()
}

// New returns an empty simulator with the clock at time 0.
func New() *Simulator {
	return &Simulator{canceled: make(map[uint64]*item)}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of scheduled, not-yet-fired, not-canceled events.
func (s *Simulator) Pending() int { return len(s.queue) - len(s.canceled) }

// Fired returns the total number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// ErrPastEvent is returned by At when an event is scheduled before Now.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute time t. It panics if t is NaN and
// returns ErrPastEvent if t precedes the current clock; t == Now is
// allowed (the event fires after already-queued events at the same time).
func (s *Simulator) At(t float64, fn Event) (Handle, error) {
	if math.IsNaN(t) {
		panic("sim: NaN event time")
	}
	if t < s.now {
		return Handle{}, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, s.now)
	}
	s.seq++
	it := &item{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, it)
	return Handle{seq: s.seq}, nil
}

// After schedules fn to run d seconds from now. Negative d is an error.
func (s *Simulator) After(d float64, fn Event) (Handle, error) {
	return s.At(s.now+d, fn)
}

// MustAfter is After for delays known to be non-negative; it panics on error.
func (s *Simulator) MustAfter(d float64, fn Event) Handle {
	h, err := s.After(d, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// Cancel prevents a scheduled event from firing. It reports whether the
// event was still pending. Canceling an already-fired, already-canceled,
// or invalid handle returns false.
func (s *Simulator) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	for _, it := range s.queue {
		if it.seq == h.seq {
			if it.canceled {
				return false
			}
			it.canceled = true
			s.canceled[h.seq] = it
			return true
		}
	}
	return false
}

// Stop aborts the run loop after the current event returns. It may be
// called from within an event callback.
func (s *Simulator) Stop() { s.stopped = true }

// AfterEvent registers fn to run after every fired event, at the event
// boundary: the event's callback has returned and all of its state
// mutations are visible, but the clock has not advanced further. Higher
// layers hang invariant checkers here (internal/audit). A nil fn removes
// the hook; when no hook is set the kernel pays only a nil check.
func (s *Simulator) AfterEvent(fn func()) { s.afterEvent = fn }

// step fires the earliest pending event. It reports false when the queue
// is empty.
func (s *Simulator) step() bool {
	for len(s.queue) > 0 {
		it := heap.Pop(&s.queue).(*item)
		if it.canceled {
			delete(s.canceled, it.seq)
			continue
		}
		if it.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = it.at
		s.fired++
		it.fn(s)
		if s.afterEvent != nil {
			s.afterEvent()
		}
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns
// the final clock value.
func (s *Simulator) Run() float64 {
	if s.running {
		panic("sim: nested Run")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped && s.step() {
	}
	return s.now
}

// RunUntil fires events with timestamps ≤ end, then sets the clock to end
// and returns. Events scheduled after end remain queued.
func (s *Simulator) RunUntil(end float64) float64 {
	if s.running {
		panic("sim: nested Run")
	}
	if end < s.now {
		return s.now
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > end {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < end {
		s.now = end
	}
	return s.now
}

// peek returns the timestamp of the earliest pending event.
func (s *Simulator) peek() (float64, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			it := heap.Pop(&s.queue).(*item)
			delete(s.canceled, it.seq)
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// NextEventTime exposes the timestamp of the earliest pending event, for
// tests and pacing logic. ok is false when nothing is queued.
func (s *Simulator) NextEventTime() (t float64, ok bool) { return s.peek() }
