package sim

import (
	"container/heap"
	"math"
)

type item struct {
	at       float64
	seq      uint64
	fn       Event
	canceled bool
}

type qheap []*item

func (q qheap) Len() int { return len(q) }

func (q qheap) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q qheap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *qheap) Push(x any) { *q = append(*q, x.(*item)) }

func (q *qheap) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// EventQueue is a binary heap of timestamped events ordered by
// (time, seq) with O(1) cancel via a seq index. It is the storage layer
// shared by the kernels in this module: Simulator owns one, and the
// sharded kernel (internal/sim/shard) owns one per shard. Sequence
// numbers start at 1 and increase by scheduling order, so FIFO tie-break
// at equal timestamps is built in. An EventQueue is not safe for
// concurrent use.
type EventQueue struct {
	heap     qheap
	index    map[uint64]*item // queued items (incl. canceled) by seq
	canceled int              // canceled items still occupying the heap
	seq      uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{index: make(map[uint64]*item)}
}

// Len returns the number of pending, not-canceled events.
func (q *EventQueue) Len() int { return len(q.heap) - q.canceled }

// LastSeq returns the most recently assigned sequence number (0 before
// the first Schedule).
func (q *EventQueue) LastSeq() uint64 { return q.seq }

// Schedule books fn at time t and returns its sequence number. It panics
// if t is NaN; callers enforce their own "not in the past" rule because
// only they know the clock.
func (q *EventQueue) Schedule(at float64, fn Event) uint64 {
	if math.IsNaN(at) {
		panic("sim: NaN event time")
	}
	q.seq++
	it := &item{at: at, seq: q.seq, fn: fn}
	heap.Push(&q.heap, it)
	q.index[q.seq] = it
	return q.seq
}

// Cancel marks the event with the given sequence number as canceled in
// O(1). It reports whether the event was still pending; already-fired,
// already-canceled, and unknown seqs return false. The item stays in the
// heap until popped past or compacted.
func (q *EventQueue) Cancel(seq uint64) bool {
	it, ok := q.index[seq]
	if !ok || it.canceled {
		return false
	}
	it.canceled = true
	q.canceled++
	return true
}

// Pop removes and returns the earliest pending event, skipping canceled
// items. ok is false when no live events remain.
func (q *EventQueue) Pop() (at float64, seq uint64, fn Event, ok bool) {
	for len(q.heap) > 0 {
		it := heap.Pop(&q.heap).(*item)
		delete(q.index, it.seq)
		if it.canceled {
			q.canceled--
			continue
		}
		return it.at, it.seq, it.fn, true
	}
	return 0, 0, nil, false
}

// PeekTime returns the timestamp and sequence number of the earliest
// pending event without removing it, discarding canceled heads as a side
// effect. ok is false when no live events remain.
func (q *EventQueue) PeekTime() (at float64, seq uint64, ok bool) {
	for len(q.heap) > 0 {
		if q.heap[0].canceled {
			it := heap.Pop(&q.heap).(*item)
			delete(q.index, it.seq)
			q.canceled--
			continue
		}
		return q.heap[0].at, q.heap[0].seq, true
	}
	return 0, 0, false
}

// CanceledRetained returns the number of canceled items still occupying
// heap and index memory. Kernels call Compact at run teardown to drive
// this to zero; tests use it as a leak probe.
func (q *EventQueue) CanceledRetained() int { return q.canceled }

// Compact drops every canceled item from the heap and index, releasing
// their memory and callback references. Pending events are unaffected.
// It is an O(n) rebuild, so kernels call it at teardown rather than per
// cancel.
func (q *EventQueue) Compact() {
	if q.canceled == 0 {
		return
	}
	live := q.heap[:0]
	for _, it := range q.heap {
		if it.canceled {
			delete(q.index, it.seq)
			continue
		}
		live = append(live, it)
	}
	// Zero the tail so dropped items' callbacks are collectible.
	for i := len(live); i < len(q.heap); i++ {
		q.heap[i] = nil
	}
	q.heap = live
	q.canceled = 0
	heap.Init(&q.heap)
}
