package shard

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"
	"testing"

	"cellqos/internal/sim"
	"cellqos/internal/testleak"
)

// TestTieBreakTimeShardSeq pins the kernel's total order at identical
// timestamps: shard index first, then per-shard FIFO seq — regardless of
// the interleaving of the scheduling calls.
func TestTieBreakTimeShardSeq(t *testing.T) {
	k := New(Config{Shards: 3})
	var got []string
	// Schedule in an order deliberately scrambled across shards: the
	// j-th event booked on shard s is tagged "s/j".
	order := []int{2, 0, 1, 1, 2, 0, 0, 2, 1}
	count := map[int]int{}
	for _, s := range order {
		s, j := s, count[s]
		count[s]++
		k.Shard(s).MustAfter(7, func(sim.Scheduler) {
			got = append(got, fmt.Sprintf("%d/%d", s, j))
		})
	}
	// A strictly earlier event on the highest shard must still fire first.
	k.Shard(2).MustAfter(1, func(sim.Scheduler) {
		got = append(got, "early")
	})
	k.Run()
	want := []string{"early", "0/0", "0/1", "0/2", "1/0", "1/1", "1/2", "2/0", "2/1", "2/2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("(time, shard, seq) order violated:\n got %v\nwant %v", got, want)
	}
}

func TestSerialMatchesSimulatorSingleShard(t *testing.T) {
	// A 1-shard serial kernel must reproduce the reference Simulator's
	// firing order exactly for a random workload.
	rng := rand.New(rand.NewPCG(42, 7))
	type ev struct{ at float64 }
	var evs []ev
	for i := 0; i < 500; i++ {
		evs = append(evs, ev{at: rng.Float64() * 100})
	}
	run := func(s sim.Scheduler, runner func() float64) []float64 {
		var fired []float64
		for _, e := range evs {
			s.MustAfter(e.at, func(s sim.Scheduler) { fired = append(fired, s.Now()) })
		}
		runner()
		return fired
	}
	ref := sim.New()
	want := run(ref, ref.Run)
	k := New(Config{Shards: 1})
	got := run(k.Shard(0), k.Run)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("1-shard serial kernel diverged from Simulator")
	}
}

func TestSerialCrossShardScheduling(t *testing.T) {
	k := New(Config{Shards: 2})
	var got []string
	k.Shard(0).MustAfter(1, func(s sim.Scheduler) {
		got = append(got, "a@0")
		// Serial mode allows scheduling onto another shard directly.
		k.Shard(1).MustAfter(1, func(s sim.Scheduler) { //cellqos:allow shardsafe serial mode runs single-goroutine, so the cross-shard window rule does not apply
			got = append(got, "b@1")
		})
	})
	end := k.Run()
	if want := []string{"a@0", "b@1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if end != 2 {
		t.Fatalf("final clock %v, want 2", end)
	}
}

func TestSerialRunUntilSemantics(t *testing.T) {
	k := New(Config{Shards: 2})
	var fired []float64
	for i, at := range []float64{1, 2, 3, 4, 5} {
		k.Shard(i%2).MustAfter(at, func(s sim.Scheduler) { fired = append(fired, s.Now()) })
	}
	if end := k.RunUntil(3); end != 3 {
		t.Fatalf("RunUntil returned %v, want 3", end)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if k.Now() != 3 || k.Shard(0).Now() != 3 || k.Shard(1).Now() != 3 {
		t.Fatal("clocks not advanced to end")
	}
	k.Run()
	if len(fired) != 5 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestWindowedSendDeliversAtBarrier(t *testing.T) {
	defer testleak.Check(t)()
	k := New(Config{Shards: 2, Lookahead: 1})
	var mu sync.Mutex
	var got []string
	rec := func(tag string) {
		mu.Lock()
		got = append(got, tag)
		mu.Unlock()
	}
	k.Shard(0).MustAfter(0.25, func(s sim.Scheduler) {
		rec("send@0.25")
		s.(*Shard).Send(1, 1.25, 1, func(sim.Scheduler) { rec("recv@1.25") }) //cellqos:allow shardsafe literal send time chosen ≥ now+lookahead by construction (window is 1.0)
	})
	k.Shard(1).MustAfter(0.5, func(sim.Scheduler) { rec("other@0.5") })
	k.RunUntil(3)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[2] != "recv@1.25" {
		t.Fatalf("message not delivered in second window: %v", got)
	}
}

func TestWindowedLookaheadViolationPanics(t *testing.T) {
	k := New(Config{Shards: 2, Lookahead: 1})
	k.Shard(0).MustAfter(0.5, func(s sim.Scheduler) {
		defer func() {
			if recover() == nil {
				t.Error("Send below the lookahead window did not panic")
			}
		}()
		// Window is [0,1]; a message for t=0.75 would arrive in the
		// receiver's past.
		s.(*Shard).Send(1, 0.75, 1, func(sim.Scheduler) {}) //cellqos:allow shardsafe deliberate lookahead violation: this test asserts the Send panics
	})
	k.RunUntil(2)
}

func TestWindowedSameTimeMessagesOrderedByKey(t *testing.T) {
	// Two shards send same-time messages to shard 0; delivery (and
	// hence firing) order must follow the caller-supplied keys, not the
	// shard indices or goroutine timing.
	for trial := 0; trial < 20; trial++ {
		k := New(Config{Shards: 3, Lookahead: 1})
		var mu sync.Mutex
		var got []uint64
		for src := 1; src <= 2; src++ {
			src := src
			key := uint64(3 - src) // shard 1 sends key 2, shard 2 sends key 1
			k.Shard(src).MustAfter(0.5, func(s sim.Scheduler) {
				s.(*Shard).Send(0, 2.0, key, func(sim.Scheduler) { //cellqos:allow shardsafe literal send time chosen ≥ now+lookahead by construction (window is 1.0)
					mu.Lock()
					got = append(got, key)
					mu.Unlock()
				})
			})
		}
		k.RunUntil(3)
		mu.Lock()
		ok := reflect.DeepEqual(got, []uint64{1, 2})
		mu.Unlock()
		if !ok {
			t.Fatalf("trial %d: same-time messages fired as %v, want key order [1 2]", trial, got)
		}
	}
}

func TestWindowedChunkedRunMatchesSingleRun(t *testing.T) {
	defer testleak.Check(t)()
	// The window grid is anchored at 0, so chunked RunUntil calls and a
	// single call produce the same barriers and the same firing order.
	build := func() (*Kernel, *[]float64, *sync.Mutex) {
		k := New(Config{Shards: 2, Lookahead: 0.5})
		var mu sync.Mutex
		fired := &[]float64{}
		rng := rand.New(rand.NewPCG(9, 9))
		for i := 0; i < 200; i++ {
			at := rng.Float64() * 20
			sh := i % 2
			k.Shard(sh).MustAfter(at, func(s sim.Scheduler) {
				mu.Lock()
				*fired = append(*fired, s.Now())
				mu.Unlock()
			})
		}
		return k, fired, &mu
	}
	k1, f1, _ := build()
	k1.RunUntil(20)
	k2, f2, _ := build()
	for end := 1.3; end < 20; end += 1.3 {
		k2.RunUntil(end)
	}
	k2.RunUntil(20)
	sort.Float64s(*f1)
	sort.Float64s(*f2)
	if !reflect.DeepEqual(*f1, *f2) {
		t.Fatal("chunked RunUntil diverged from single RunUntil")
	}
}

func TestAtBarrierQuiescentAndOrdered(t *testing.T) {
	defer testleak.Check(t)()
	k := New(Config{Shards: 2, Lookahead: 1})
	var barriers []float64
	k.AtBarrier(func(now float64) {
		barriers = append(barriers, now)
		// Quiescent: coordinator may inspect all shards here.
		_ = k.Pending()
		_ = k.Fired()
	})
	k.Shard(0).MustAfter(2.5, func(sim.Scheduler) {})
	k.RunUntil(3)
	want := []float64{1, 2, 3}
	if !reflect.DeepEqual(barriers, want) {
		t.Fatalf("barriers %v, want %v", barriers, want)
	}
}

func TestAfterEventPanicsInWindowedMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AfterEvent in windowed mode did not panic")
		}
	}()
	New(Config{Shards: 2, Lookahead: 1}).AfterEvent(func() {})
}

func TestAfterEventSerialMode(t *testing.T) {
	k := New(Config{Shards: 2})
	events, hooks := 0, 0
	k.AfterEvent(func() { hooks++ })
	for i := 0; i < 5; i++ {
		k.Shard(i%2).MustAfter(float64(i+1), func(sim.Scheduler) { events++ })
	}
	k.Run()
	if events != 5 || hooks != 5 {
		t.Fatalf("events=%d hooks=%d, want 5/5", events, hooks)
	}
}

func TestCancelAndTeardownCompaction(t *testing.T) {
	k := New(Config{Shards: 2})
	fired := false
	h := k.Shard(1).MustAfter(50, func(sim.Scheduler) { fired = true })
	if !k.Shard(1).Cancel(h) {
		t.Fatal("Cancel returned false")
	}
	k.Shard(0).MustAfter(1, func(sim.Scheduler) {})
	k.RunUntil(2)
	if fired {
		t.Fatal("canceled event fired")
	}
	if got := k.CanceledRetained(); got != 0 {
		t.Fatalf("CanceledRetained() = %d after teardown, want 0", got)
	}
}

func TestStopWindowedAtBarrier(t *testing.T) {
	k := New(Config{Shards: 2, Lookahead: 1})
	var mu sync.Mutex
	count := 0
	for i := 0; i < 10; i++ {
		k.Shard(i%2).MustAfter(float64(i)+0.5, func(s sim.Scheduler) {
			mu.Lock()
			count++
			mu.Unlock()
			if i == 2 {
				s.Stop()
			}
		})
	}
	k.RunUntil(100)
	mu.Lock()
	defer mu.Unlock()
	if count >= 10 {
		t.Fatal("Stop did not halt the windowed run")
	}
}
