// Package shard provides a multi-heap discrete-event kernel that
// partitions a simulation into S shards, each with its own event queue,
// clock, and sequence counter, behind the same sim.Kernel surface as the
// single-heap sim.Simulator.
//
// Events are totally ordered by (time, shard, seq): time first, then the
// owning shard's index, then the shard-local FIFO sequence number. The
// kernel executes that order in one of two modes, chosen by Lookahead:
//
//   - Serial merge (Lookahead == 0). One goroutine repeatedly pops the
//     globally minimal (time, shard, seq) event across all shard heaps.
//     Events may use any shard's Scheduler, and the per-event AfterEvent
//     hook is supported. This is the compatibility mode: with zero
//     lookahead no shard may run ahead of another, so the merge degenerates
//     to serial execution — deterministic, but no parallelism.
//
//   - Conservative windows (Lookahead L > 0). Virtual time is cut into
//     windows of length L on a fixed grid. Within a window every shard
//     runs its own events concurrently, one goroutine per shard; shards
//     may only touch their own state and scheduler. Cross-shard effects
//     travel as timestamped messages via Shard.Send, which must target a
//     time at or beyond the window end — the conservative guarantee that
//     no shard ever receives an event earlier than a time it has already
//     passed. Outboxes are merged at the window barrier in (time, key)
//     order, with a caller-supplied key that must not depend on the shard
//     count, making delivery order — and hence the whole run — identical
//     at any shard count and any goroutine interleaving.
//
// The model layer (internal/cellnet) guarantees byte-identical Reports
// across shard counts by (a) giving every cell and connection its own
// deterministic RNG stream, (b) routing all cross-cell interaction
// through Send keyed by (source cell, per-cell sequence), and (c)
// ensuring same-time events on different shards touch disjoint state.
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cellqos/internal/sim"
)

// Config parameterizes a sharded kernel.
type Config struct {
	// Shards is the number of event heaps (≥ 1).
	Shards int
	// Lookahead is the conservative window length in seconds. Zero
	// selects serial merged execution; positive values select windowed
	// parallel execution and must be a lower bound on the model's
	// cross-shard signaling latency.
	Lookahead float64
}

// message is a cross-shard event in flight between Send and delivery.
type message struct {
	at  float64
	key uint64
	fn  sim.Event
}

// Shard is one partition's scheduling surface. It implements
// sim.Scheduler; event callbacks running on the shard receive it as
// their Scheduler argument. Outside a window (before Run, between
// RunUntil calls, or in serial mode) any shard may be used from the
// coordinating goroutine; during a parallel window a Shard must only be
// used by events executing on it.
type Shard struct {
	k      *Kernel
	idx    int
	now    float64
	queue  *sim.EventQueue
	fired  uint64
	outbox []outMsg // windowed mode: sends buffered until the barrier
}

type outMsg struct {
	dst int
	m   message
}

// Kernel is a sharded discrete-event kernel. It implements sim.Kernel.
// The coordinating goroutine owns Run/RunUntil; per-shard goroutines
// exist only inside a window.
type Kernel struct {
	cfg       Config
	shards    []*Shard
	barrier   float64 // clock of the coordinating goroutine
	running   bool
	stopped   atomic.Bool
	afterEv   func()
	atBarrier func(now float64)
}

var _ sim.Kernel = (*Kernel)(nil)
var _ sim.Scheduler = (*Shard)(nil)

// New returns a sharded kernel with all clocks at 0.
func New(cfg Config) *Kernel {
	if cfg.Shards < 1 {
		panic("shard: need at least one shard")
	}
	if cfg.Lookahead < 0 || math.IsNaN(cfg.Lookahead) {
		panic("shard: negative lookahead")
	}
	k := &Kernel{cfg: cfg, shards: make([]*Shard, cfg.Shards)}
	for i := range k.shards {
		k.shards[i] = &Shard{k: k, idx: i, queue: sim.NewEventQueue()}
	}
	return k
}

// NumShards returns the configured shard count.
func (k *Kernel) NumShards() int { return k.cfg.Shards }

// Lookahead returns the conservative window length (0 = serial mode).
func (k *Kernel) Lookahead() float64 { return k.cfg.Lookahead }

// Shard returns shard i's scheduling surface.
func (k *Kernel) Shard(i int) *Shard { return k.shards[i] }

// Now returns the coordinating clock: the last window barrier in
// windowed mode, the merged event clock in serial mode.
func (k *Kernel) Now() float64 { return k.barrier }

// Fired returns the total number of events executed across all shards.
// It must not be called from inside a parallel window.
func (k *Kernel) Fired() uint64 {
	var n uint64
	for _, sh := range k.shards {
		n += sh.fired
	}
	return n
}

// Pending returns scheduled, not-yet-fired, not-canceled events across
// all shards. It must not be called from inside a parallel window.
func (k *Kernel) Pending() int {
	n := 0
	for _, sh := range k.shards {
		n += sh.queue.Len()
	}
	return n
}

// CanceledRetained sums the canceled-but-queued events across shards;
// Run/RunUntil compact it to zero at teardown.
func (k *Kernel) CanceledRetained() int {
	n := 0
	for _, sh := range k.shards {
		n += sh.queue.CanceledRetained()
	}
	return n
}

// AfterEvent registers a per-event hook. Only the serial merge supports
// it; in windowed mode events fire concurrently and there is no global
// event boundary, so this panics — use AtBarrier instead.
func (k *Kernel) AfterEvent(fn func()) {
	if k.cfg.Lookahead > 0 && fn != nil {
		panic("shard: AfterEvent unsupported in windowed mode; use AtBarrier")
	}
	k.afterEv = fn
}

// AtBarrier registers fn to run on the coordinating goroutine at every
// window barrier, after the window's events have executed and its
// cross-shard messages have been delivered to the target queues (but not
// executed). All shard state is quiescent during the call; conservation
// audits hang here.
func (k *Kernel) AtBarrier(fn func(now float64)) { k.atBarrier = fn }

// Stop requests the run loop to halt: immediately after the current
// event in serial mode, at the next window barrier in windowed mode.
func (k *Kernel) Stop() { k.stopped.Store(true) }

// Run fires events until every shard's queue drains or Stop is called.
func (k *Kernel) Run() float64 { return k.run(math.Inf(1), false) }

// RunUntil fires events with timestamps ≤ end, then sets all clocks to
// end. Repeated calls with increasing end values resume on the same
// window grid, so a run chunked into many RunUntil calls delivers
// messages at the same barriers as a single call.
func (k *Kernel) RunUntil(end float64) float64 { return k.run(end, true) }

func (k *Kernel) run(end float64, bounded bool) float64 {
	if k.running {
		panic("shard: nested Run")
	}
	if bounded && end < k.barrier {
		return k.barrier
	}
	k.running = true
	defer func() {
		k.running = false
		for _, sh := range k.shards {
			sh.queue.Compact()
		}
	}()
	k.stopped.Store(false)
	if k.cfg.Lookahead == 0 {
		return k.runSerial(end, bounded)
	}
	return k.runWindowed(end, bounded)
}

// runSerial executes the global (time, shard, seq) order one event at a
// time on the coordinating goroutine.
func (k *Kernel) runSerial(end float64, bounded bool) float64 {
	for !k.stopped.Load() {
		best := -1
		var bestAt float64
		for i, sh := range k.shards {
			at, _, ok := sh.queue.PeekTime()
			if !ok {
				continue
			}
			// Total order (time, shard, seq): strictly earlier time
			// wins; at equal times the lower shard index wins (strict
			// <, first hit sticks); seq orders events within a shard,
			// which the per-shard heap already guarantees.
			if best == -1 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best == -1 || (bounded && bestAt > end) {
			break
		}
		sh := k.shards[best]
		at, _, fn, _ := sh.queue.Pop()
		if at < sh.now {
			panic("shard: time went backwards")
		}
		// Advance every shard clock together: serial mode has a single
		// merged clock, and an event may schedule onto any shard.
		k.barrier = at
		for _, s := range k.shards {
			s.now = at
		}
		sh.fired++
		fn(sh)
		if k.afterEv != nil {
			k.afterEv()
		}
	}
	if !k.stopped.Load() && bounded && k.barrier < end {
		k.barrier = end
		for _, sh := range k.shards {
			sh.now = end
		}
	}
	return k.barrier
}

// runWindowed executes fixed-grid conservative windows, one goroutine
// per shard inside each window.
func (k *Kernel) runWindowed(end float64, bounded bool) float64 {
	L := k.cfg.Lookahead
	for !k.stopped.Load() {
		if bounded && k.barrier >= end {
			break
		}
		if !bounded && k.Pending() == 0 {
			break
		}
		// Next grid point strictly after the current barrier. The grid
		// is anchored at 0 and independent of RunUntil chunking, so
		// k*L barriers line up across differently-chunked runs.
		windowEnd := (math.Floor(k.barrier/L) + 1) * L
		if windowEnd <= k.barrier {
			// Guard against float rounding at huge times.
			windowEnd = k.barrier + L
		}
		if bounded && windowEnd > end {
			windowEnd = end
		}
		k.runWindow(windowEnd)
		k.barrier = windowEnd
		k.deliver(windowEnd)
		if k.atBarrier != nil {
			k.atBarrier(windowEnd)
		}
	}
	if !k.stopped.Load() && bounded && k.barrier < end {
		k.barrier = end
		for _, sh := range k.shards {
			sh.now = end
		}
	}
	return k.barrier
}

// runWindow runs every shard's events with timestamps ≤ windowEnd, in
// parallel when there is more than one shard.
func (k *Kernel) runWindow(windowEnd float64) {
	if len(k.shards) == 1 {
		k.shards[0].runTo(windowEnd)
		return
	}
	var wg sync.WaitGroup
	for _, sh := range k.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.runTo(windowEnd)
		}(sh)
	}
	wg.Wait()
}

// deliver merges all shard outboxes and schedules the messages on their
// destination queues in (time, key) order — an order independent of both
// goroutine interleaving (outboxes are only read after the window joins)
// and shard count (keys must not encode shard identity).
func (k *Kernel) deliver(windowEnd float64) {
	var all []outMsg
	for _, sh := range k.shards {
		all = append(all, sh.outbox...)
		sh.outbox = sh.outbox[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].m.at != all[j].m.at {
			return all[i].m.at < all[j].m.at
		}
		return all[i].m.key < all[j].m.key
	})
	for _, om := range all {
		k.shards[om.dst].queue.Schedule(om.m.at, om.m.fn)
	}
}

// runTo fires this shard's events with timestamps ≤ end and leaves the
// shard clock at end.
func (sh *Shard) runTo(end float64) {
	for !sh.k.stopped.Load() {
		at, _, ok := sh.queue.PeekTime()
		if !ok || at > end {
			break
		}
		at, _, fn, _ := sh.queue.Pop()
		if at < sh.now {
			panic("shard: time went backwards")
		}
		sh.now = at
		sh.fired++
		fn(sh)
	}
	if sh.now < end {
		sh.now = end
	}
}

// Index returns the shard's index in the kernel.
func (sh *Shard) Index() int { return sh.idx }

// Now returns the shard's clock.
func (sh *Shard) Now() float64 { return sh.now }

// At schedules fn on this shard at absolute time t.
func (sh *Shard) At(t float64, fn sim.Event) (sim.Handle, error) {
	if t < sh.now {
		return sim.Handle{}, fmt.Errorf("%w: t=%v now=%v", sim.ErrPastEvent, t, sh.now)
	}
	return sim.NewHandle(sh.queue.Schedule(t, fn)), nil
}

// After schedules fn on this shard d seconds from now.
func (sh *Shard) After(d float64, fn sim.Event) (sim.Handle, error) {
	return sh.At(sh.now+d, fn)
}

// MustAfter is After for delays known to be non-negative.
func (sh *Shard) MustAfter(d float64, fn sim.Event) sim.Handle {
	h, err := sh.After(d, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// Cancel prevents one of this shard's scheduled events from firing, in
// O(1). Handles from other shards are not valid here.
func (sh *Shard) Cancel(h sim.Handle) bool {
	if !h.Valid() {
		return false
	}
	return sh.queue.Cancel(h.Seq())
}

// Stop requests the kernel to halt (see Kernel.Stop).
func (sh *Shard) Stop() { sh.k.Stop() }

// Send books fn on shard dst at time at. In windowed mode the message is
// buffered and delivered at the current window's barrier; at must lie at
// or beyond the window end (uniform-latency models satisfy this by
// construction: a message sent at t ≥ windowStart with latency ≥
// lookahead arrives at t+latency ≥ windowEnd). key orders same-time
// deliveries and must be unique per (at, dst) and independent of the
// shard count — internal/cellnet packs (source cell ID, per-cell message
// sequence). In serial mode the message is scheduled immediately.
//
// Send is the only legal way for one shard's event to affect another
// shard.
func (sh *Shard) Send(dst int, at float64, key uint64, fn sim.Event) {
	if dst < 0 || dst >= len(sh.k.shards) {
		panic(fmt.Sprintf("shard: Send to shard %d of %d", dst, len(sh.k.shards)))
	}
	if math.IsNaN(at) {
		panic("shard: NaN message time")
	}
	if sh.k.cfg.Lookahead == 0 {
		if at < sh.now {
			panic(fmt.Sprintf("shard: Send into the past: at=%v now=%v", at, sh.now))
		}
		sh.k.shards[dst].queue.Schedule(at, fn)
		return
	}
	// The conservative guarantee: the destination may already have
	// executed up to the current window's end, so the message must not
	// land before it. sh.now ≤ windowEnd during a window, and the
	// window end is the next grid point after the window started; a
	// message time ≥ now + lookahead always clears it.
	windowEnd := (math.Floor(sh.k.barrier/sh.k.cfg.Lookahead) + 1) * sh.k.cfg.Lookahead
	if at < windowEnd && at < sh.k.barrier+sh.k.cfg.Lookahead {
		panic(fmt.Sprintf("shard: Send violates lookahead: at=%v windowEnd=%v", at, windowEnd))
	}
	sh.outbox = append(sh.outbox, outMsg{dst: dst, m: message{at: at, key: key, fn: fn}})
}
