package allowstale_test

import (
	"testing"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/allowstale"
	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/nodeterm"
)

// TestAllowStale runs allowstale beside nodeterm: staleness only exists
// relative to the other analyzers in the same run, so the fixture goes
// through RunSuite rather than a single-analyzer Run.
func TestAllowStale(t *testing.T) {
	analysistest.RunSuite(t, "testdata",
		[]*analysis.Analyzer{nodeterm.Analyzer, allowstale.Analyzer},
		"cellqos/internal/allowfix")
}

// TestAloneIsSilent: without other analyzers in the run, no directive
// can be judged stale (nothing executed could have used it), and the
// only findings left are missing justifications.
func TestAloneIsSilent(t *testing.T) {
	findings, err := analysis.RunAnalyzers(nil, []*analysis.Analyzer{allowstale.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("allowstale over zero packages reported %v", findings)
	}
}
