// Package allowstale keeps the //cellqos:allow escape hatch honest: an
// annotation that no longer suppresses any diagnostic is itself a
// finding, and so is an annotation missing the justification that
// DESIGN.md §12 makes mandatory. Two categories:
//
//   - stale: a name in the directive's comma-separated list suppressed
//     nothing any analyzer in the run reported. The violation it once
//     excused has been fixed (or the rule changed), and a leftover
//     annotation would silently re-arm if the violation came back —
//     delete it instead;
//   - justification: the directive carries no free-form reason after
//     the name list. Every escape hatch must say why the rule does not
//     apply at that site.
//
// The analyzer itself is an empty shell: staleness only exists relative
// to the full set of analyzers in the same run, and only the driver
// (analysis.RunAnalyzers) holds the suppression ledger that records
// which directive entries fired. The driver audits the ledger after the
// other analyzers ran, but only when this analyzer — recognized by
// analysis.AllowStaleName — is in the set, so a fixture run of one
// analyzer never condemns annotations aimed at the other eight.
// Directive names outside the executed set are likewise skipped.
//
// allowstale findings are themselves suppressible: a directive that
// also names allowstale (or "all") covers its own line, for the rare
// annotation that must outlive the violation it documents.
package allowstale

import "cellqos/internal/analysis"

// Analyzer is the suite's registration handle for the escape-hatch
// audit. Run is a no-op — see the package comment: the real work
// happens in analysis.RunAnalyzers, keyed off this analyzer's presence.
var Analyzer = &analysis.Analyzer{
	Name: analysis.AllowStaleName,
	Doc: "flag //cellqos:allow annotations that suppress no diagnostic of any " +
		"analyzer in the run, and annotations missing their mandatory justification",
	Run: func(*analysis.Pass) (any, error) { return nil, nil },
}
