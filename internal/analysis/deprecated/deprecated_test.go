package deprecated_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/deprecated"
)

func TestDeprecated(t *testing.T) {
	analysistest.Run(t, "testdata", deprecated.Analyzer, "a")
}
