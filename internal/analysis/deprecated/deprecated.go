// Package deprecated machine-checks scheduled API deletions. A
// deprecated wrapper in this repo survives exactly one PR for
// migration (DESIGN.md §11's AddConnection collapse set the
// precedent); this analyzer makes the grace period enforceable: every
// caller shows up as a vet diagnostic, so the deleting PR cannot miss
// a straggler and a new caller cannot sneak in during the grace
// window.
//
// Two detection modes compose:
//
//   - a registry of known cross-package deprecations (kept here, next
//     to the deletion schedule), matched by package path + receiver +
//     method name, which works even though gc export data carries no
//     doc comments;
//   - a generic same-package mode that reads "Deprecated:" doc
//     comments off any function or method declared in the package
//     under analysis.
package deprecated

import (
	"go/ast"
	"go/types"
	"strings"

	"cellqos/internal/analysis"
)

// Analyzer flags calls to deprecated cellqos API.
var Analyzer = &analysis.Analyzer{
	Name: "deprecated",
	Doc: "flag callers of deprecated cellqos API so scheduled deletions are " +
		"machine-checked; the registry lists cross-package deprecations, and " +
		"same-package \"Deprecated:\" doc comments are honored generically",
	Run: run,
}

// registryEntry names one deprecated function or method and its
// replacement.
type registryEntry struct {
	pkgPath  string // declaring package
	receiver string // named receiver type ("" for a plain function)
	name     string
	advice   string
}

// registry is the deletion schedule. Entries stay (guarded by the
// analyzer's own fixtures) even after the symbol is deleted: a revert
// or a stale branch reintroducing a caller still gets flagged while
// the build error is being "fixed" the wrong way.
var registry = []registryEntry{
	{
		pkgPath: "cellqos/internal/core", receiver: "Engine", name: "AddConnectionWithHint",
		advice: "use AddConnection(id, ConnSpec{Min: bw, Prev: prev, Hint: hint}, now)",
	},
	{
		pkgPath: "cellqos/internal/core", receiver: "Engine", name: "AddElasticConnection",
		advice: "use AddConnection(id, ConnSpec{Min: min, Max: max, Prev: prev}, now)",
	},
	{
		pkgPath: "cellqos/internal/core", receiver: "Policy", name: "Admission",
		advice: "use MustPolicy(name) / PolicyByName(name) and set Config.Admission",
	},
	{
		pkgPath: "cellqos/internal/core", receiver: "Policy", name: "Adaptive",
		advice: "use MustPolicy(name).Traits().Adaptive",
	},
}

func run(pass *analysis.Pass) (any, error) {
	local := localDeprecations(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.SelectorExpr:
				callee = pass.TypesInfo.Uses[fun.Sel]
			case *ast.Ident:
				callee = pass.TypesInfo.Uses[fun]
			}
			fn, ok := callee.(*types.Func)
			if !ok {
				return true
			}
			if e := lookupRegistry(fn); e != nil {
				pass.Reportf(call.Pos(), "call to deprecated %s.%s: %s", e.receiver, e.name, e.advice)
				return true
			}
			if note, ok := local[fn]; ok {
				pass.Reportf(call.Pos(), "call to deprecated %s: %s", fn.Name(), note)
			}
			return true
		})
	}
	return nil, nil
}

// lookupRegistry matches a callee against the deletion schedule.
func lookupRegistry(fn *types.Func) *registryEntry {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	recv := receiverTypeName(fn)
	for i := range registry {
		e := &registry[i]
		if e.pkgPath == pkg.Path() && e.receiver == recv && e.name == fn.Name() {
			return e
		}
	}
	return nil
}

// receiverTypeName returns the named type of fn's receiver, "" for a
// plain function.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// localDeprecations maps functions declared in this package whose doc
// comment carries a "Deprecated:" note to the first line of that note.
func localDeprecations(pass *analysis.Pass) map[*types.Func]string {
	out := map[*types.Func]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			note, ok := deprecationNote(fd.Doc.Text())
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = note
			}
		}
	}
	return out
}

// deprecationNote extracts a deprecation note from a doc comment. Per
// the standard Go convention the note is a line (conventionally a
// paragraph) beginning "Deprecated:" — a mid-sentence mention does not
// deprecate anything.
func deprecationNote(doc string) (string, bool) {
	for _, line := range strings.Split(doc, "\n") {
		if note, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:"); ok {
			return strings.TrimSpace(note), true
		}
	}
	return "", false
}
