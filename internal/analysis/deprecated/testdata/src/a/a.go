// Package a is the deprecated-analyzer fixture: cross-package registry
// matches (the regression shape — internal/core/eq5cache_test.go
// called both wrappers until this PR deleted them) and the generic
// same-package "Deprecated:" doc mode.
package a

import "cellqos/internal/core"

// handOffArrival reproduces the pre-fix caller shape byte-for-byte
// modulo names: registering a hinted hand-off via the grace-period
// wrapper.
func handOffArrival(e *core.Engine, id core.ConnID, now float64) {
	e.AddConnectionWithHint(id, 3, 1, now, 2) // want `call to deprecated Engine\.AddConnectionWithHint: use AddConnection\(id, ConnSpec\{Min: bw, Prev: prev, Hint: hint\}, now\)`
}

func elasticAdmission(e *core.Engine, id core.ConnID, now float64) int {
	return e.AddElasticConnection(id, 2, 6, 0, now) // want `call to deprecated Engine\.AddElasticConnection`
}

// migrated is the post-fix form and must not be flagged.
func migrated(e *core.Engine, id core.ConnID, now float64) int {
	return e.AddConnection(id, core.ConnSpec{Min: 2, Max: 6}, now)
}

// oldHelper is deprecated the conventional way; same-package callers
// are flagged without a registry entry.
//
// Deprecated: use newHelper.
func oldHelper() int { return 1 }

func newHelper() int { return 2 }

func caller() int {
	return oldHelper() // want `call to deprecated oldHelper: use newHelper\.`
}

// mentionsDeprecatedMidSentence documents that something else is
// "Deprecated:" in passing; per the Go convention only a line starting
// with the marker deprecates, so calling this is fine.
func mentionsDeprecatedMidSentence() int { return 3 }

func fineCaller() int {
	return mentionsDeprecatedMidSentence() + newHelper()
}

// allowEscapeHatch exercises //cellqos:allow with a justification.
func allowEscapeHatch(e *core.Engine, id core.ConnID) {
	e.AddConnectionWithHint(id, 1, 1, 0, 2) //cellqos:allow deprecated fixture: migration staged in next commit
}

// enumDispatch reproduces the pre-registry caller shape: resolving and
// interrogating a Policy enum value directly.
func enumDispatch(p core.Policy) bool {
	pol := p.Admission() // want `call to deprecated Policy\.Admission: use MustPolicy\(name\) / PolicyByName\(name\) and set Config\.Admission`
	_ = pol
	return p.Adaptive() // want `call to deprecated Policy\.Adaptive: use MustPolicy\(name\)\.Traits\(\)\.Adaptive`
}

// registryDispatch is the post-fix form and must not be flagged.
func registryDispatch() bool {
	return core.MustPolicy("AC3").Traits().Adaptive
}
