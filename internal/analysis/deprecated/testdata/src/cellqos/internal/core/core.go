// Package core is the deprecated-analyzer fixture stub: it freezes the
// PR-4 wrappers exactly as they looked during their one-PR grace
// period, so the registry path stays covered after the real wrappers
// were deleted.
package core

// ConnID identifies a connection.
type ConnID uint64

// LocalIndex mirrors topology.LocalIndex.
type LocalIndex int

// ConnSpec mirrors the consolidated registration parameters.
type ConnSpec struct {
	Min, Max   int
	Prev, Hint LocalIndex
}

// Engine mirrors the per-cell engine.
type Engine struct{}

// AddConnection is the consolidated registration entry point.
func (e *Engine) AddConnection(id ConnID, spec ConnSpec, now float64) int { return spec.Min }

// AddConnectionWithHint registers a rigid connection with a known next
// cell.
//
// Deprecated: call AddConnection with ConnSpec{Min: bw, Prev: prev,
// Hint: hint}.
func (e *Engine) AddConnectionWithHint(id ConnID, bw int, prev LocalIndex, now float64, hint LocalIndex) {
	e.AddConnection(id, ConnSpec{Min: bw, Prev: prev, Hint: hint}, now)
}

// AddElasticConnection registers an adaptive-QoS connection.
//
// Deprecated: call AddConnection with ConnSpec{Min: min, Max: max,
// Prev: prev}.
func (e *Engine) AddElasticConnection(id ConnID, min, max int, prev LocalIndex, now float64) int {
	return e.AddConnection(id, ConnSpec{Min: min, Max: max, Prev: prev}, now)
}

// Policy mirrors the retired admission-policy enum during its
// grace period.
type Policy int

// PolicyTraits mirrors the capability flags.
type PolicyTraits struct{ Adaptive bool }

// AdmissionPolicy mirrors the pluggable interface.
type AdmissionPolicy interface{ Traits() PolicyTraits }

// Admission resolves the enum to its registered implementation.
//
// Deprecated: look the policy up by name with MustPolicy / PolicyByName
// and set Config.Admission.
func (p Policy) Admission() AdmissionPolicy { return nil }

// Adaptive reports whether the enum value names an adaptive scheme.
//
// Deprecated: use MustPolicy(name).Traits().Adaptive.
func (p Policy) Adaptive() bool { return false }

// MustPolicy mirrors the registry lookup.
func MustPolicy(name string) AdmissionPolicy { return nil }
