package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text          string
		want          []string
		justification string
	}{
		{"//cellqos:allow nodeterm", []string{"nodeterm"}, ""},
		{"//cellqos:allow nodeterm wall-clock is fine here", []string{"nodeterm"}, "wall-clock is fine here"},
		{"//cellqos:allow nodeterm,genepoch staged migration", []string{"nodeterm", "genepoch"}, "staged migration"},
		{"//cellqos:allow", nil, ""},
		{"// cellqos:allow nodeterm", nil, ""}, // directives must be unspaced
		{"// plain comment", nil, ""},
	}
	for _, tc := range cases {
		got, justification, ok := parseAllow(tc.text)
		if tc.want == nil {
			if ok {
				t.Errorf("parseAllow(%q) = %v, want no directive", tc.text, got)
			}
			continue
		}
		if !ok || strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("parseAllow(%q) = %v,%v want %v", tc.text, got, ok, tc.want)
		}
		if justification != tc.justification {
			t.Errorf("parseAllow(%q) justification = %q, want %q", tc.text, justification, tc.justification)
		}
	}
}

func TestSuppressionLines(t *testing.T) {
	src := `package p

func f() int {
	a := 1 //cellqos:allow alpha same-line annotation
	//cellqos:allow beta next-line annotation
	b := 2
	c := 3
	return a + b + c
}
`
	fset, files := parseOne(t, src)
	idx := BuildAllowIndex(fset, files)

	posAt := func(line int) token.Pos {
		var pos token.Pos
		ast.Inspect(files[0], func(n ast.Node) bool {
			if n != nil && fset.Position(n.Pos()).Line == line && pos == token.NoPos {
				pos = n.Pos()
			}
			return true
		})
		if pos == token.NoPos {
			t.Fatalf("no node on line %d", line)
		}
		return pos
	}

	if !idx.Suppressed(fset, "alpha", posAt(4)) {
		t.Error("same-line alpha annotation did not suppress")
	}
	if !idx.Suppressed(fset, "beta", posAt(6)) {
		t.Error("line-above beta annotation did not suppress")
	}
	if idx.Suppressed(fset, "alpha", posAt(6)) {
		t.Error("alpha suppressed on a line annotated only for beta")
	}
	if idx.Suppressed(fset, "beta", posAt(7)) {
		t.Error("beta annotation leaked two lines down")
	}
}

func TestRunAnalyzersFiltersAndSorts(t *testing.T) {
	src := `package p

var a = 1 //cellqos:allow toy suppressed on purpose
var b = 2
var c = 3
`
	fset, files := parseOne(t, src)
	toy := &Analyzer{
		Name: "toy",
		Doc:  "report every package-level var, in reverse source order",
		Run: func(pass *Pass) (any, error) {
			var specs []*ast.ValueSpec
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if gd, ok := d.(*ast.GenDecl); ok {
						for _, s := range gd.Specs {
							if vs, ok := s.(*ast.ValueSpec); ok {
								specs = append(specs, vs)
							}
						}
					}
				}
			}
			for i := len(specs) - 1; i >= 0; i-- {
				pass.Reportf(specs[i].Pos(), "var %s", specs[i].Names[0].Name)
			}
			return nil, nil
		},
	}
	pkg := &Package{Path: "p", Fset: fset, Files: files}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{toy})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want b and c only", findings)
	}
	if findings[0].Message != "var b" || findings[1].Message != "var c" {
		t.Errorf("findings not position-sorted: %v", findings)
	}
	if got := findings[0].String(); !strings.Contains(got, "x.go:4:5: var b [toy]") {
		t.Errorf("Finding.String() = %q, want vet-style file:line:col: message [analyzer]", got)
	}
}

// toyVarAnalyzer reports every package-level var.
func toyVarAnalyzer(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "report every package-level var",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					gd, ok := d.(*ast.GenDecl)
					if !ok {
						continue
					}
					for _, s := range gd.Specs {
						if vs, ok := s.(*ast.ValueSpec); ok {
							pass.Reportf(vs.Pos(), "var %s", vs.Names[0].Name)
						}
					}
				}
			}
			return nil, nil
		},
	}
}

func TestAllowStaleLedger(t *testing.T) {
	src := `package p

var a = 1 //cellqos:allow toy suppressed on purpose
var b = 2 //cellqos:allow quiet stale: the quiet analyzer reports nothing
var c = 3 //cellqos:allow notrun an analyzer outside the executed set
var d = 4 //cellqos:allow toy
`
	fset, files := parseOne(t, src)
	quiet := &Analyzer{Name: "quiet", Doc: "never reports", Run: func(*Pass) (any, error) { return nil, nil }}
	stale := &Analyzer{Name: AllowStaleName, Doc: "driver-backed", Run: func(*Pass) (any, error) { return nil, nil }}
	pkg := &Package{Path: "p", Fset: fset, Files: files}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{toyVarAnalyzer("toy"), quiet, stale})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+"/"+f.Category+"@"+f.Posn.String()[strings.Index(f.Posn.String(), ":")+1:])
	}
	// Expected, position-sorted:
	//   line 4: quiet's directive is stale (quiet ran and reported nothing);
	//           var b itself (the quiet annotation does not name toy)
	//   line 5: var c (notrun does not name toy); NO stale finding for
	//           notrun — it is outside the executed set
	//   line 6: toy suppressed var d, but the directive lacks a justification
	want := []string{
		"toy/toy@4:5",
		"allowstale/stale@4:11",
		"toy/toy@5:5",
		"allowstale/justification@6:11",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings = %v\nwant     %v\nfull: %v", got, want, findings)
	}
}

func TestAllowStaleSingleAnalyzerRunsAreExempt(t *testing.T) {
	// Without allowstale in the executed set, stale directives are not
	// judged: a fixture run of one analyzer must not condemn
	// annotations addressed to the other eight.
	src := `package p

var a = 1 //cellqos:allow quiet would be stale under the full suite
`
	fset, files := parseOne(t, src)
	pkg := &Package{Path: "p", Fset: fset, Files: files}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{toyVarAnalyzer("toy")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "toy" {
		t.Errorf("findings = %v, want only toy's var a", findings)
	}
}

func TestAllowStaleSelfSuppression(t *testing.T) {
	src := `package p

var a = 1 //cellqos:allow quiet,allowstale grandfathered during the staged cleanup
`
	fset, files := parseOne(t, src)
	quiet := &Analyzer{Name: "quiet", Doc: "never reports", Run: func(*Pass) (any, error) { return nil, nil }}
	stale := &Analyzer{Name: AllowStaleName, Doc: "driver-backed", Run: func(*Pass) (any, error) { return nil, nil }}
	pkg := &Package{Path: "p", Fset: fset, Files: files}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{quiet, stale})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("findings = %v, want none: naming allowstale in the directive self-suppresses", findings)
	}
}

func TestDiagnosticCategoryAndEnd(t *testing.T) {
	src := `package p

var long = 1
`
	fset, files := parseOne(t, src)
	a := &Analyzer{
		Name: "spans",
		Doc:  "report the var with a range and category",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if gd, ok := d.(*ast.GenDecl); ok {
						pass.ReportRangef(gd, "decl", "whole decl")
					}
				}
			}
			return nil, nil
		},
	}
	pkg := &Package{Path: "p", Fset: fset, Files: files}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	f := findings[0]
	if f.Category != "decl" {
		t.Errorf("Category = %q, want decl", f.Category)
	}
	if f.End.Line != 3 || f.End.Column <= f.Posn.Column {
		t.Errorf("End = %v, want same-line end past start column %d", f.End, f.Posn.Column)
	}
}
