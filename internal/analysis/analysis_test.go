package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//cellqos:allow nodeterm", []string{"nodeterm"}},
		{"//cellqos:allow nodeterm wall-clock is fine here", []string{"nodeterm"}},
		{"//cellqos:allow nodeterm,genepoch staged migration", []string{"nodeterm", "genepoch"}},
		{"//cellqos:allow", nil},
		{"// cellqos:allow nodeterm", nil}, // directives must be unspaced
		{"// plain comment", nil},
	}
	for _, tc := range cases {
		got, ok := parseAllow(tc.text)
		if tc.want == nil {
			if ok {
				t.Errorf("parseAllow(%q) = %v, want no directive", tc.text, got)
			}
			continue
		}
		if !ok || strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("parseAllow(%q) = %v,%v want %v", tc.text, got, ok, tc.want)
		}
	}
}

func TestSuppressionLines(t *testing.T) {
	src := `package p

func f() int {
	a := 1 //cellqos:allow alpha same-line annotation
	//cellqos:allow beta next-line annotation
	b := 2
	c := 3
	return a + b + c
}
`
	fset, files := parseOne(t, src)
	idx := BuildAllowIndex(fset, files)

	posAt := func(line int) token.Pos {
		var pos token.Pos
		ast.Inspect(files[0], func(n ast.Node) bool {
			if n != nil && fset.Position(n.Pos()).Line == line && pos == token.NoPos {
				pos = n.Pos()
			}
			return true
		})
		if pos == token.NoPos {
			t.Fatalf("no node on line %d", line)
		}
		return pos
	}

	if !idx.Suppressed(fset, "alpha", posAt(4)) {
		t.Error("same-line alpha annotation did not suppress")
	}
	if !idx.Suppressed(fset, "beta", posAt(6)) {
		t.Error("line-above beta annotation did not suppress")
	}
	if idx.Suppressed(fset, "alpha", posAt(6)) {
		t.Error("alpha suppressed on a line annotated only for beta")
	}
	if idx.Suppressed(fset, "beta", posAt(7)) {
		t.Error("beta annotation leaked two lines down")
	}
}

func TestRunAnalyzersFiltersAndSorts(t *testing.T) {
	src := `package p

var a = 1 //cellqos:allow toy suppressed on purpose
var b = 2
var c = 3
`
	fset, files := parseOne(t, src)
	toy := &Analyzer{
		Name: "toy",
		Doc:  "report every package-level var, in reverse source order",
		Run: func(pass *Pass) (any, error) {
			var specs []*ast.ValueSpec
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if gd, ok := d.(*ast.GenDecl); ok {
						for _, s := range gd.Specs {
							if vs, ok := s.(*ast.ValueSpec); ok {
								specs = append(specs, vs)
							}
						}
					}
				}
			}
			for i := len(specs) - 1; i >= 0; i-- {
				pass.Reportf(specs[i].Pos(), "var %s", specs[i].Names[0].Name)
			}
			return nil, nil
		},
	}
	pkg := &Package{Path: "p", Fset: fset, Files: files}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{toy})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want b and c only", findings)
	}
	if findings[0].Message != "var b" || findings[1].Message != "var c" {
		t.Errorf("findings not position-sorted: %v", findings)
	}
	if got := findings[0].String(); !strings.Contains(got, "x.go:4:5: var b [toy]") {
		t.Errorf("Finding.String() = %q, want vet-style file:line:col: message [analyzer]", got)
	}
}
