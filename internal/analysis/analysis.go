// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus the cellqos-specific pieces shared by every
// analyzer: the //cellqos:allow suppression index, the allow-staleness
// ledger behind the allowstale analyzer, the baseline fingerprints
// behind `cellqos-vet -baseline`, and the repo-wide runner.
//
// The hermetic build environment bakes in only the Go toolchain — no
// module proxy, no vendored x/tools — so the framework is written
// against the standard library exclusively (go/ast, go/types,
// go/importer, go/token). The exported surface deliberately mirrors
// x/tools so that, should the dependency ever become available, each
// analyzer ports by changing one import line.
//
// Analyzers live in subpackages (nodeterm, maporderflow, peervalue,
// deprecated, genepoch, policycontract, shardsafe, crashorder,
// allowstale — see suite.Analyzers for the full set) and are driven
// either by cmd/cellqos-vet (standalone or as a `go vet -vettool`) or
// by the analysistest fixture harness. Shared dataflow and callgraph
// helpers live in the flow subpackage.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer (minus facts and requires,
// which no cellqos analyzer needs).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cellqos:allow annotations. Lower-case, no spaces.
	Name string
	// Doc is the help text: first sentence = summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// A Pass connects an Analyzer to the single package being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report publishes one diagnostic. The driver wraps it with the
	// //cellqos:allow suppression filter.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic spanning a node, tagged
// with a per-check category (stable across message rewording — the
// baseline fingerprints hash it).
func (p *Pass) ReportRangef(rng ast.Node, category, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      rng.Pos(),
		End:      rng.End(),
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding within the package under analysis.
type Diagnostic struct {
	Pos token.Pos
	// End is the exclusive end of the offending range; NoPos when the
	// analyzer only knows a point.
	End token.Pos
	// Category names the sub-check within the analyzer ("lookahead",
	// "renameorder", ...). Empty defaults to the analyzer name.
	Category string
	Message  string
}

// A Finding is a resolved diagnostic: position turned into a
// token.Position and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Category string
	Posn     token.Position
	// End is the resolved end position (zero Position when unknown).
	End     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Posn, f.Message, f.Analyzer)
}

// AllowStaleName is the reserved analyzer name under which RunAnalyzers
// reports escape-hatch hygiene findings: stale //cellqos:allow
// annotations that suppress nothing, and annotations missing their
// mandatory justification. The allowstale subpackage registers an
// Analyzer by this name whose Run is empty — the real work needs the
// whole suite's suppression ledger, which only the driver has.
const AllowStaleName = "allowstale"

// AllowDirective is the comment prefix of the escape hatch. A comment
//
//	//cellqos:allow nodeterm — wall-clock is for progress display only
//
// suppresses nodeterm diagnostics on the offending line. The
// annotation sits either at the end of that line (covers its own line)
// or on its own line directly above (covers the line below) — never
// both, so a trailing annotation cannot blanket the statement below.
// Several analyzers may be named, comma-separated; everything after
// the first space is a free-form justification, which the review
// policy in DESIGN.md §12 requires (and the allowstale analyzer now
// machine-checks).
const AllowDirective = "//cellqos:allow"

// allowName is one analyzer name within a directive, with its usage
// ledger: whether it ever suppressed a diagnostic in this run.
type allowName struct {
	name string
	used bool
}

// allowDirective is one parsed //cellqos:allow comment.
type allowDirective struct {
	pos       token.Pos
	names     []*allowName
	justified bool
}

// AllowIndex resolves each //cellqos:allow directive to the single
// line it covers and keeps the per-name usage ledger the allowstale
// analyzer reads.
type AllowIndex struct {
	// byLine: file name → covered line → entries allowed on that line.
	byLine     map[string]map[int][]*allowName
	directives []*allowDirective
}

// BuildAllowIndex scans every comment in files for allow directives. A
// trailing annotation (code precedes it on the line) covers exactly
// its own line; an own-line annotation covers the line below it — so
// an end-of-line annotation can never silently blanket the next
// statement.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	idx := &AllowIndex{byLine: map[string]map[int][]*allowName{}}
	for _, f := range files {
		codeCols := earliestCodeColumns(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, justification, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				d := &allowDirective{pos: c.Pos(), justified: justification != ""}
				for _, n := range names {
					d.names = append(d.names, &allowName{name: n})
				}
				idx.directives = append(idx.directives, d)

				posn := fset.Position(c.Pos())
				line := posn.Line
				if col, hasCode := codeCols[line]; !hasCode || col >= posn.Column {
					line++ // own-line annotation: covers the next line
				}
				lines := idx.byLine[posn.Filename]
				if lines == nil {
					lines = map[int][]*allowName{}
					idx.byLine[posn.Filename] = lines
				}
				lines[line] = append(lines[line], d.names...)
			}
		}
	}
	return idx
}

// earliestCodeColumns maps each line of f to the smallest column where
// a non-comment token starts — how BuildAllowIndex tells trailing
// annotations from own-line ones.
func earliestCodeColumns(fset *token.FileSet, f *ast.File) map[int]int {
	cols := map[int]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		posn := fset.Position(n.Pos())
		if c, ok := cols[posn.Line]; !ok || posn.Column < c {
			cols[posn.Line] = posn.Column
		}
		return true
	})
	return cols
}

// parseAllow extracts the analyzer names and justification from one
// comment text.
func parseAllow(text string) (names []string, justification string, ok bool) {
	rest, ok := strings.CutPrefix(text, AllowDirective)
	if !ok {
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	// The name list ends at the first space; the remainder is the
	// justification.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		justification = strings.TrimSpace(rest[i:])
		rest = rest[:i]
	}
	if rest == "" {
		return nil, "", false
	}
	return strings.Split(rest, ","), justification, true
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an allow directive, and marks the covering entry
// used in the staleness ledger. BuildAllowIndex has already resolved
// each directive to the single line it covers (its own line for
// trailing annotations, the line below for own-line ones).
func (idx *AllowIndex) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	if len(idx.byLine) == 0 {
		return false
	}
	posn := fset.Position(pos)
	hit := false
	for _, entry := range idx.byLine[posn.Filename][posn.Line] {
		if entry.name == analyzer || entry.name == "all" {
			entry.used = true
			hit = true
		}
	}
	return hit
}

// staleFindings turns the usage ledger into allowstale diagnostics for
// one package: directives that suppressed nothing any executed analyzer
// reported, and directives missing their mandatory justification. A
// name the executed set does not contain is skipped — a fixture run of
// one analyzer must not condemn annotations for the other eight — so
// staleness is only judged by drivers running the full suite.
// Findings are themselves suppressible: a trailing directive that also
// names allowstale covers its own line.
func (idx *AllowIndex) staleFindings(fset *token.FileSet, executed map[string]bool) []Finding {
	var out []Finding
	emit := func(pos token.Pos, category, msg string) {
		if idx.Suppressed(fset, AllowStaleName, pos) {
			return
		}
		out = append(out, Finding{
			Analyzer: AllowStaleName,
			Category: category,
			Posn:     fset.Position(pos),
			Message:  msg,
		})
	}
	for _, d := range idx.directives {
		if !d.justified {
			emit(d.pos, "justification",
				"//cellqos:allow without a justification: state why the rule does not apply (DESIGN.md §12 makes the reason mandatory)")
		}
		for _, n := range d.names {
			if n.used {
				continue
			}
			if n.name != "all" && !executed[n.name] {
				continue
			}
			emit(d.pos, "stale", fmt.Sprintf(
				"//cellqos:allow %s suppresses no diagnostic: the finding it excused is gone — delete the annotation to keep the escape-hatch ledger honest", n.name))
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// unsuppressed findings sorted by position. Analyzer errors abort the
// run — a broken analyzer must not pass silently as "no findings".
//
// When the set includes the allowstale analyzer (by name), the driver
// additionally audits each package's //cellqos:allow directives after
// the other analyzers ran: an annotation that suppressed nothing, or
// one missing its justification, becomes an allowstale finding.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	executed := map[string]bool{}
	auditAllows := false
	for _, a := range analyzers {
		executed[a.Name] = true
		if a.Name == AllowStaleName {
			auditAllows = true
		}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		idx := BuildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				if idx.Suppressed(pkg.Fset, name, d.Pos) {
					return
				}
				category := d.Category
				if category == "" {
					category = name
				}
				f := Finding{
					Analyzer: name,
					Category: category,
					Posn:     pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				}
				if d.End.IsValid() {
					f.End = pkg.Fset.Position(d.End)
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if auditAllows {
			findings = append(findings, idx.staleFindings(pkg.Fset, executed)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// NewTypesInfo allocates the full types.Info map set every pass needs.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
