// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus the cellqos-specific pieces shared by every
// analyzer: the //cellqos:allow suppression index and the repo-wide
// runner.
//
// The hermetic build environment bakes in only the Go toolchain — no
// module proxy, no vendored x/tools — so the framework is written
// against the standard library exclusively (go/ast, go/types,
// go/importer, go/token). The exported surface deliberately mirrors
// x/tools so that, should the dependency ever become available, each
// analyzer ports by changing one import line.
//
// Analyzers live in subpackages (nodeterm, maporderflow, peervalue,
// deprecated, genepoch — see suite.Analyzers for the full set) and are
// driven either by cmd/cellqos-vet (standalone or as a `go vet
// -vettool`) or by the analysistest fixture harness.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer (minus facts and requires,
// which no cellqos analyzer needs).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cellqos:allow annotations. Lower-case, no spaces.
	Name string
	// Doc is the help text: first sentence = summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// A Pass connects an Analyzer to the single package being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report publishes one diagnostic. The driver wraps it with the
	// //cellqos:allow suppression filter.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding within the package under analysis.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position turned into a
// token.Position and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Posn, f.Message, f.Analyzer)
}

// AllowDirective is the comment prefix of the escape hatch. A comment
//
//	//cellqos:allow nodeterm — wall-clock is for progress display only
//
// suppresses nodeterm diagnostics on the offending line. The
// annotation sits either at the end of that line (covers its own line)
// or on its own line directly above (covers the next line) — never
// both, so a trailing annotation cannot blanket the statement below.
// Several analyzers may be named, comma-separated; everything after
// the first space is a free-form justification, which the review
// policy in DESIGN.md §12 requires.
const AllowDirective = "//cellqos:allow"

// AllowIndex maps file name → line → set of analyzer names allowed on
// that line.
type AllowIndex map[string]map[int]map[string]bool

// BuildAllowIndex scans every comment in files for allow directives. A
// trailing annotation (code precedes it on the line) covers exactly
// its own line; an own-line annotation covers the line below it — so
// an end-of-line annotation can never silently blanket the next
// statement.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) AllowIndex {
	idx := AllowIndex{}
	for _, f := range files {
		codeCols := earliestCodeColumns(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				line := posn.Line
				if col, hasCode := codeCols[line]; !hasCode || col >= posn.Column {
					line++ // own-line annotation: covers the next line
				}
				lines := idx[posn.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[posn.Filename] = lines
				}
				set := lines[line]
				if set == nil {
					set = map[string]bool{}
					lines[line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return idx
}

// earliestCodeColumns maps each line of f to the smallest column where
// a non-comment token starts — how BuildAllowIndex tells trailing
// annotations from own-line ones.
func earliestCodeColumns(fset *token.FileSet, f *ast.File) map[int]int {
	cols := map[int]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		posn := fset.Position(n.Pos())
		if c, ok := cols[posn.Line]; !ok || posn.Column < c {
			cols[posn.Line] = posn.Column
		}
		return true
	})
	return cols
}

// parseAllow extracts the analyzer names from one comment text.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, AllowDirective)
	if !ok {
		return nil, false
	}
	rest = strings.TrimSpace(rest)
	// The name list ends at the first space; the remainder is the
	// justification.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return nil, false
	}
	return strings.Split(rest, ","), true
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an allow directive. BuildAllowIndex has already
// resolved each directive to the single line it covers (its own line
// for trailing annotations, the line below for own-line ones).
func (idx AllowIndex) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	if len(idx) == 0 {
		return false
	}
	posn := fset.Position(pos)
	set := idx[posn.Filename][posn.Line]
	return set[analyzer] || set["all"]
}

// RunAnalyzers applies every analyzer to every package and returns the
// unsuppressed findings sorted by position. Analyzer errors abort the
// run — a broken analyzer must not pass silently as "no findings".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		idx := BuildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				if idx.Suppressed(pkg.Fset, name, d.Pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: name,
					Posn:     pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// NewTypesInfo allocates the full types.Info map set every pass needs.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
