// Package genepoch guards the generation-epoch discipline of the Eq. 5
// fast path (DESIGN.md §11). Estimator-derived quantities
// (SurvivorWeight, HandOffWeight, selected-sample views, ...) are only
// valid for the estimator generation they were computed at: Record,
// ReadFrom, eviction sweeps and lazy rebuilds all bump Generation(),
// and any state cached across such a bump silently drifts from the
// from-scratch Eq. 5 walk — the exact bug class the eq5 cache's
// matches() check exists to prevent.
//
// The analyzer is a function-local, statement-order heuristic: inside
// one function body, a value derived from an estimator query, followed
// by a generation-bumping mutation, followed by a read of the stale
// value with no interleaved Generation() comparison, is flagged.
// Cross-function caching (struct fields) is covered at runtime by
// audit.Checker.Eq5Cache; this analyzer catches the local form at vet
// time. Test files are skipped: before/after-mutation comparisons are
// the legitimate idiom of the estimator's own tests.
package genepoch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cellqos/internal/analysis"
)

// Analyzer reports estimator-derived values read across a
// generation-bumping call without a Generation() check.
var Analyzer = &analysis.Analyzer{
	Name: "genepoch",
	Doc: "flag estimator-derived state cached across a Record/ReadFrom/sweep " +
		"call and read without an interleaved Generation() comparison",
	Run: run,
}

// derivedMethods produce generation-scoped values.
// AppendSojournBreakpoints feeds the materialized Eq. 5 view's
// staleness guards (DESIGN.md §14): the breakpoint tables it returns
// are a pure function of the current selection and die with it.
var derivedMethods = map[string]bool{
	"SurvivorWeight": true, "HandOffWeight": true, "HandOffProb": true,
	"HandOffProbsInto": true, "VisitHandOffProbs": true, "SojournProb": true,
	"AppendSelected": true, "Selected": true, "SelectedCount": true,
	"MaxSojourn": true, "AppendSojournBreakpoints": true,
}

// mutatorMethods bump the generation epoch. EnsureCurrent belongs here
// even though it exists to *pin* the epoch: forcing every lazy
// selection current at a timestamp performs exactly the rebuilds that
// would otherwise fire mid-query, so any value derived before the call
// may be dead after it — the returned generation is for comparing
// against a recorded epoch, not a license to keep older state.
var mutatorMethods = map[string]bool{
	"Record": true, "ReadFrom": true, "SweepAt": true, "EvictBefore": true,
	"EnsureCurrent": true, "Reset": true, "Merge": true,
}

// estimatorReceiver reports whether the method's receiver is an
// estimation type from the predict package (or a fixture standing in
// for it — matching is by package-path suffix so analysistest stubs
// under testdata/src/cellqos/internal/predict participate).
func estimatorReceiver(sel *types.Selection) bool {
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if name := obj.Name(); name != "Estimator" && name != "PatternSet" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "predict" || strings.HasSuffix(path, "/predict")
}

// event is one ordered occurrence inside a function body.
type event struct {
	pos  int // file offset order within the body
	kind int
	obj  types.Object // the cached variable (define/use events)
	node ast.Node
	name string // method name, for the diagnostic
}

const (
	evDefine = iota // var := est.Derived(...)
	evMutate        // est.Record(...) etc.
	evCheck         // est.Generation() observed
	evUse           // read of a cached var
)

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if fname := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// estimatorCall classifies a call as derived/mutator/check on an
// estimation type; returns the method name and kind, or ok=false.
func estimatorCall(pass *analysis.Pass, call *ast.CallExpr) (name string, kind int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal || !estimatorReceiver(selection) {
		return "", 0, false
	}
	n := sel.Sel.Name
	switch {
	case derivedMethods[n]:
		return n, evDefine, true
	case mutatorMethods[n]:
		return n, evMutate, true
	case n == "Generation":
		return n, evCheck, true
	}
	return "", 0, false
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	derivedVars := map[types.Object]string{} // cached var → deriving method

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// var := est.Derived(...) defines cached state.
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if m, kind, ok := estimatorCall(pass, call); ok && kind == evDefine {
						for _, lhs := range n.Lhs {
							id, ok := lhs.(*ast.Ident)
							if !ok || id.Name == "_" {
								continue
							}
							obj := pass.TypesInfo.Defs[id]
							if obj == nil {
								obj = pass.TypesInfo.Uses[id]
							}
							if obj == nil {
								continue
							}
							derivedVars[obj] = m
							events = append(events, event{pos: int(n.Pos()), kind: evDefine, obj: obj, node: n, name: m})
						}
					}
				}
			}
		case *ast.CallExpr:
			if m, kind, ok := estimatorCall(pass, n); ok && kind != evDefine {
				events = append(events, event{pos: int(n.Pos()), kind: kind, node: n, name: m})
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if _, cached := derivedVars[obj]; cached {
					events = append(events, event{pos: int(n.Pos()), kind: evUse, obj: obj, node: n})
				}
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Linear scan: a use of a cached var after a mutation, with no
	// Generation() observation in between, is a stale read.
	defined := map[types.Object]struct {
		method  string
		atOrder int
	}{}
	lastMutate := -1       // index into events of the latest mutation
	lastMutateName := ""   // its method name
	lastCheckAfter := true // a Generation() was seen since the last mutation
	reported := map[types.Object]bool{}
	for i, ev := range events {
		switch ev.kind {
		case evDefine:
			defined[ev.obj] = struct {
				method  string
				atOrder int
			}{derivedVars[ev.obj], i}
		case evMutate:
			lastMutate = i
			lastMutateName = ev.name
			lastCheckAfter = false
		case evCheck:
			lastCheckAfter = true
		case evUse:
			d, ok := defined[ev.obj]
			if !ok || lastMutate < 0 || lastCheckAfter || reported[ev.obj] {
				continue
			}
			if d.atOrder > lastMutate {
				continue // re-derived after the mutation: fresh
			}
			reported[ev.obj] = true
			pass.Reportf(ev.node.Pos(),
				"%s (from %s) is read after %s bumped the estimator generation: re-derive it or gate the cached value on a Generation() comparison", ev.obj.Name(), d.method, lastMutateName)
		}
	}
}
