package genepoch_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/genepoch"
)

func TestGenEpoch(t *testing.T) {
	analysistest.Run(t, "testdata", genepoch.Analyzer, "a")
}
