// Package predict is the genepoch fixture stub: the estimator surface
// whose generation epoch the analyzer guards.
package predict

// Quadruplet mirrors one hand-off event record.
type Quadruplet struct{ T float64 }

// Estimator mirrors the real estimator: queries are generation-scoped,
// mutators bump the generation.
type Estimator struct{ gen uint64 }

// Generation returns the epoch; it changes whenever derived state may.
func (e *Estimator) Generation() uint64 { return e.gen }

// Record feeds one quadruplet (bumps the generation).
func (e *Estimator) Record(q Quadruplet) { e.gen++ }

// SweepAt evicts out-of-date history (may bump the generation).
func (e *Estimator) SweepAt(t float64) { e.gen++ }

// SurvivorWeight is a generation-scoped Eq. 4 query.
func (e *Estimator) SurvivorWeight(t0 float64, prev int, extSoj float64) float64 { return 1 }

// HandOffWeight is a generation-scoped Eq. 5 query.
func (e *Estimator) HandOffWeight(t0 float64, prev, next int, extSoj, test float64) float64 {
	return 1
}

// MaxSojourn is a generation-scoped selected-sample bound.
func (e *Estimator) MaxSojourn(t0 float64) float64 { return 1 }

// EnsureCurrent forces every lazy selection current at t0 (performing
// any pending generation-bumping rebuilds) and returns the pinned
// generation.
func (e *Estimator) EnsureCurrent(t0 float64) uint64 { e.gen++; return e.gen }

// AppendSojournBreakpoints is the generation-scoped breakpoint query
// behind the materialized Eq. 5 view's staleness guards.
func (e *Estimator) AppendSojournBreakpoints(dst []float64, t0 float64, prev int) []float64 {
	return append(dst, 1)
}
