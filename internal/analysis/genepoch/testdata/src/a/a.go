// Package a is the genepoch fixture: estimator-derived values cached
// across a generation bump, next to the approved re-derive and
// Generation()-gated forms. The stale-read shape is exactly the bug
// class the PR-4 eq5 cache's matches() check exists to rule out — an
// early draft cached per-connection denominators across Record and
// drifted from the from-scratch Eq. 5 walk.
package a

import "cellqos/internal/predict"

// staleRead caches a denominator, lets Record move the epoch, then
// reuses the dead value.
func staleRead(e *predict.Estimator, q predict.Quadruplet) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	return denom // want `denom \(from SurvivorWeight\) is read after Record bumped the estimator generation`
}

// staleAfterSweep: eviction sweeps bump the epoch too.
func staleAfterSweep(e *predict.Estimator) float64 {
	bound := e.MaxSojourn(100)
	e.SweepAt(200)
	return bound // want `bound \(from MaxSojourn\) is read after SweepAt bumped the estimator generation`
}

// rederived recomputes after the mutation: fresh, not flagged.
func rederived(e *predict.Estimator, q predict.Quadruplet) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	denom = e.SurvivorWeight(100, 1, 5)
	return denom
}

// generationGated compares epochs before trusting the cache — the
// eq5cache.matches() discipline.
func generationGated(e *predict.Estimator, q predict.Quadruplet, cachedGen uint64) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	if e.Generation() != cachedGen {
		return -1
	}
	return denom
}

// useBeforeMutation is safe: the value is consumed before the epoch
// moves.
func useBeforeMutation(e *predict.Estimator, q predict.Quadruplet) float64 {
	w := e.HandOffWeight(100, 1, 2, 5, 10)
	out := w * 2
	e.Record(q)
	return out
}

// allowEscapeHatch exercises //cellqos:allow with a justification.
func allowEscapeHatch(e *predict.Estimator, q predict.Quadruplet) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	return denom //cellqos:allow genepoch fixture: intentional before/after comparison
}

// The incremental-view shapes (DESIGN.md §14): the materialized Eq. 5
// view caches breakpoint tables and guard state derived from
// AppendSojournBreakpoints, and EnsureCurrent — the view's own pinning
// hook — performs the lazy rebuilds that kill such state.

// staleBreakpoints caches a guard table, lets Record move the epoch,
// then trusts the dead table.
func staleBreakpoints(e *predict.Estimator, q predict.Quadruplet, buf []float64) float64 {
	bps := e.AppendSojournBreakpoints(buf[:0], 100, 1)
	e.Record(q)
	return bps[0] // want `bps \(from AppendSojournBreakpoints\) is read after Record bumped the estimator generation`
}

// staleAcrossEnsure caches a denominator, then pins the estimator at a
// later timestamp: EnsureCurrent may have rebuilt the selection the
// denominator came from.
func staleAcrossEnsure(e *predict.Estimator) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	_ = e.EnsureCurrent(200)
	return denom // want `denom \(from SurvivorWeight\) is read after EnsureCurrent bumped the estimator generation`
}

// ensureThenDerive is the view's rebuild discipline: pin first, derive
// after — nothing outlives a bump.
func ensureThenDerive(e *predict.Estimator, buf []float64) float64 {
	gen := e.EnsureCurrent(200)
	bps := e.AppendSojournBreakpoints(buf[:0], 200, 1)
	if gen != e.Generation() {
		return -1
	}
	return bps[0]
}

// ensureGated keeps pre-pin state only behind a Generation()
// comparison — the advance path's epoch check.
func ensureGated(e *predict.Estimator, cachedGen uint64, buf []float64) float64 {
	bps := e.AppendSojournBreakpoints(buf[:0], 100, 1)
	_ = e.EnsureCurrent(200)
	if e.Generation() != cachedGen {
		return -1
	}
	return bps[0]
}
