// Package a is the genepoch fixture: estimator-derived values cached
// across a generation bump, next to the approved re-derive and
// Generation()-gated forms. The stale-read shape is exactly the bug
// class the PR-4 eq5 cache's matches() check exists to rule out — an
// early draft cached per-connection denominators across Record and
// drifted from the from-scratch Eq. 5 walk.
package a

import "cellqos/internal/predict"

// staleRead caches a denominator, lets Record move the epoch, then
// reuses the dead value.
func staleRead(e *predict.Estimator, q predict.Quadruplet) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	return denom // want `denom \(from SurvivorWeight\) is read after Record bumped the estimator generation`
}

// staleAfterSweep: eviction sweeps bump the epoch too.
func staleAfterSweep(e *predict.Estimator) float64 {
	bound := e.MaxSojourn(100)
	e.SweepAt(200)
	return bound // want `bound \(from MaxSojourn\) is read after SweepAt bumped the estimator generation`
}

// rederived recomputes after the mutation: fresh, not flagged.
func rederived(e *predict.Estimator, q predict.Quadruplet) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	denom = e.SurvivorWeight(100, 1, 5)
	return denom
}

// generationGated compares epochs before trusting the cache — the
// eq5cache.matches() discipline.
func generationGated(e *predict.Estimator, q predict.Quadruplet, cachedGen uint64) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	if e.Generation() != cachedGen {
		return -1
	}
	return denom
}

// useBeforeMutation is safe: the value is consumed before the epoch
// moves.
func useBeforeMutation(e *predict.Estimator, q predict.Quadruplet) float64 {
	w := e.HandOffWeight(100, 1, 2, 5, 10)
	out := w * 2
	e.Record(q)
	return out
}

// allowEscapeHatch exercises //cellqos:allow with a justification.
func allowEscapeHatch(e *predict.Estimator, q predict.Quadruplet) float64 {
	denom := e.SurvivorWeight(100, 1, 5)
	e.Record(q)
	return denom //cellqos:allow genepoch fixture: intentional before/after comparison
}
