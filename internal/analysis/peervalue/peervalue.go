// Package peervalue machine-enforces the core.Peers degraded-value
// contract (DESIGN.md §10): every Peers query reports ok=false when the
// neighbor's state could not be fetched, and the engine must fail
// closed on it — never assume silence means "contributes nothing" or
// "infinitely healthy". PR 3 deleted the old +Inf/MaxInt32 "no answer"
// sentinels in favor of the ok bool plus the core.PeerValue validator;
// this analyzer flags both ways of regressing: discarding the ok
// result, and resurrecting a comparison against the deleted sentinels.
package peervalue

import (
	"go/ast"
	"go/token"
	"go/types"

	"cellqos/internal/analysis"
)

// Analyzer reports Peers results used without their ok bool and
// comparisons against the deleted +Inf/MaxInt32 sentinels.
var Analyzer = &analysis.Analyzer{
	Name: "peervalue",
	Doc: "flag core.Peers results whose ok bool is discarded (use PeerValue " +
		"or branch on ok) and equality comparisons against the deleted " +
		"+Inf/MaxInt32 unreachable-neighbor sentinels",
	Run: run,
}

// peersMethods are the core.Peers interface methods. Matching is by
// name plus trailing-bool signature rather than by interface identity,
// so the check also covers the concrete implementations
// (cellnet.localPeers, signaling.remotePeers) and test doubles.
var peersMethods = map[string]bool{
	"OutgoingReservation":  true,
	"Snapshot":             true,
	"RecomputeReservation": true,
	"MaxSojourn":           true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isPeersCall(pass, call) {
					pass.Reportf(call.Pos(),
						"result of %s discarded: a degraded neighbor reports ok=false and the caller must fail closed (wrap in core.PeerValue or branch on ok)", calleeName(call))
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.BinaryExpr:
				checkSentinel(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkAssign flags `v, _ := peers.X(...)` — a blanked ok bool.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isPeersCall(pass, call) {
		return
	}
	last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(assign.Pos(),
		"ok result of %s blanked: a degraded neighbor reports ok=false and the caller must fail closed (wrap in core.PeerValue or branch on ok)", calleeName(call))
}

// isPeersCall reports whether call invokes a Peers-shaped method: one
// of the interface's method names with a trailing bool result.
func isPeersCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !peersMethods[sel.Sel.Name] {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() < 2 {
		return false
	}
	b, ok := res.At(res.Len() - 1).Type().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// checkSentinel flags ==/!= comparisons against math.Inf(...) or
// math.MaxInt32 — the deleted "unreachable neighbor" encodings. Such a
// test can never fire again (the APIs return ok=false instead) and its
// presence means degraded-state handling is being rebuilt on sentinels.
func checkSentinel(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, side := range [2]ast.Expr{bin.X, bin.Y} {
		switch kind := sentinelKind(pass, side); kind {
		case "":
		default:
			pass.Reportf(bin.Pos(),
				"comparison against the deleted %s unreachable-neighbor sentinel: Peers methods report ok=false instead; branch on ok / core.PeerValue", kind)
			return
		}
	}
}

// sentinelKind classifies an expression as one of the deleted
// sentinels, looking through a numeric conversion like
// float64(math.MaxInt32).
func sentinelKind(pass *analysis.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isMathPkg(pass, sel.X) && sel.Sel.Name == "Inf" {
			return "math.Inf"
		}
		// A conversion: recurse into its operand.
		if len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return sentinelKind(pass, call.Args[0])
			}
		}
		return ""
	}
	if sel, ok := e.(*ast.SelectorExpr); ok && isMathPkg(pass, sel.X) && sel.Sel.Name == "MaxInt32" {
		return "math.MaxInt32"
	}
	return ""
}

func isMathPkg(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "math"
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "the Peers call"
}
