package peervalue_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/peervalue"
)

func TestPeerValue(t *testing.T) {
	analysistest.Run(t, "testdata", peervalue.Analyzer, "a")
}
