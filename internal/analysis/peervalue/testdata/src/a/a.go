// Package a is the peervalue fixture: Peers-shaped calls whose ok
// bool is discarded, and comparisons against the deleted
// +Inf/MaxInt32 unreachable-neighbor sentinels, next to the approved
// PeerValue/ok idioms.
package a

import "math"

// LocalIndex mirrors topology.LocalIndex.
type LocalIndex int

// Peers mirrors the core.Peers degraded-value contract.
type Peers interface {
	OutgoingReservation(li LocalIndex, now, test float64) (res float64, ok bool)
	Snapshot(li LocalIndex) (used, capacity int, lastBr float64, ok bool)
	RecomputeReservation(li LocalIndex, now float64) (used, capacity int, br float64, ok bool)
	MaxSojourn(li LocalIndex, now float64) (tSojMax float64, ok bool)
}

// PeerValue mirrors core.PeerValue.
func PeerValue(v float64, ok bool) (float64, bool) {
	if !ok || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, false
	}
	return v, true
}

// blankedOk reproduces the pre-PR-3 shape: the degraded signal thrown
// away, silence read as "contributes nothing".
func blankedOk(p Peers, li LocalIndex, now, test float64) float64 {
	v, _ := p.OutgoingReservation(li, now, test) // want `ok result of OutgoingReservation blanked`
	return v
}

func blankedSnapshot(p Peers, li LocalIndex) int {
	used, _, _, _ := p.Snapshot(li) // want `ok result of Snapshot blanked`
	return used
}

// discarded drops the whole result: the recompute side effect is kept
// but its health answer ignored.
func discarded(p Peers, li LocalIndex, now float64) {
	p.RecomputeReservation(li, now) // want `result of RecomputeReservation discarded`
}

// checkedOk branches on ok: the approved direct form.
func checkedOk(p Peers, li LocalIndex, now, test float64) float64 {
	if v, ok := p.OutgoingReservation(li, now, test); ok {
		return v
	}
	return 0
}

// wrapped passes the answer straight through the validator: the
// approved chained form.
func wrapped(p Peers, li LocalIndex, now float64) (float64, bool) {
	return PeerValue(p.MaxSojourn(li, now))
}

// infSentinel resurrects the deleted "+Inf = unreachable" encoding.
func infSentinel(v float64) bool {
	return v == math.Inf(1) // want `deleted math\.Inf unreachable-neighbor sentinel`
}

// maxIntSentinel resurrects the deleted MaxInt32 encoding, through a
// conversion.
func maxIntSentinel(v float64) bool {
	return v != float64(math.MaxInt32) // want `deleted math\.MaxInt32 unreachable-neighbor sentinel`
}

// isInfValidation is the PeerValue-style demotion check itself — a
// range validation, not a sentinel protocol — and must not be flagged.
func isInfValidation(v float64) bool {
	return math.IsInf(v, 0) || math.IsNaN(v)
}

// infAssignment writes +Inf as an initial bound (the T_est controller
// cap), which is not a comparison and must not be flagged.
func infAssignment() float64 {
	return math.Inf(1)
}

// allowEscapeHatch exercises //cellqos:allow with a justification.
func allowEscapeHatch(p Peers, li LocalIndex, now float64) float64 {
	v, _ := p.MaxSojourn(li, now) //cellqos:allow peervalue fixture: probing side effect only
	return v
}

// unrelatedSnapshot has a matching name but no trailing ok bool: not a
// Peers-shaped method, so discarding its result is fine.
type unrelatedSnapshot struct{}

func (unrelatedSnapshot) Snapshot(li LocalIndex) int { return int(li) }

func notPeers(u unrelatedSnapshot) {
	u.Snapshot(3)
}
