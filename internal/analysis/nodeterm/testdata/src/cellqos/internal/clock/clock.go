// Package clock is a nodeterm fixture standing in for the real
// cellqos/internal/clock: the one module package exempt from the
// wall-clock rule, because it IS the approved wall-clock adapter.
// Nothing in this file may be flagged.
package clock

import "time"

// Wall reads the real wall clock — the only place in the module
// allowed to do so directly.
type Wall struct{}

// Now returns the current wall time.
func (Wall) Now() time.Time { return time.Now() }

// Since returns wall time elapsed since t.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }
