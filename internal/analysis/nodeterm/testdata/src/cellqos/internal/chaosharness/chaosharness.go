// Package chaosharness is outside nodeterm's deterministic scope
// (only internal/{core,predict,sim,cellnet,runner,experiments} are
// covered): wall-clock deadlines and ambient entropy are legitimate
// here, so nothing in this file may be flagged.
package chaosharness

import (
	"math/rand"
	"time"
)

func deadline() time.Time { return time.Now().Add(5 * time.Second) }

func jitter() int { return rand.Intn(100) }
