// Package chaosharness is outside nodeterm's *entropy* scope (only
// internal/{core,predict,sim,cellnet,runner,experiments} must be
// bit-reproducible, so ambient jitter entropy is legitimate here) but
// inside the module-wide *wall-clock* scope: internal/clock is the
// single approved wall-clock source, so even harness deadlines must
// read through its Clock interface to stay drivable by clock.Manual.
package chaosharness

import (
	"math/rand"
	"time"
)

func deadline() time.Time {
	return time.Now().Add(5 * time.Second) // want `time\.Now is wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since is wall clock`
}

// jitter draws ambient entropy — legitimate outside the deterministic
// packages, so this line must not be flagged.
func jitter() int { return rand.Intn(100) }
