// Package sim is a nodeterm fixture standing in for the deterministic
// simulation core; every flagged line reproduces a pattern the
// analyzer must catch at vet time.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Clock is the only legitimate time source in the real package.
type Clock struct{ now float64 }

// Now returns simulation time; calling a method named Now on a
// non-time package must not be flagged.
func (c *Clock) Now() float64 { return c.now }

func wallClock() float64 {
	t := time.Now() // want `time\.Now is wall clock`
	_ = c.Now()
	return float64(t.UnixNano())
}

var c = &Clock{}

func wallElapsed(start time.Time) float64 {
	// Elapsed-time measurement is as much a wall-clock read as Now.
	return time.Since(start).Seconds() // want `time\.Since is wall clock`
}

func v1Rand() int {
	// The regression shape: pre-PR-1 experiment code drew arrival
	// jitter from math/rand's global source, so two runs with one seed
	// diverged.
	return rand.Intn(10) // want `math/rand \(v1\) is banned`
}

func v1Seeded() int {
	// Even a locally seeded v1 generator is banned: the repo
	// standardized on rand/v2 PCG streams, and the v1 type reference
	// itself is flagged.
	r := rand.New(rand.NewSource(1)) // want `math/rand \(v1\) is banned` `math/rand \(v1\) is banned`
	return r.Intn(3)
}

func v2Global() float64 {
	return randv2.Float64() // want `rand\.Float64 draws from the process-global`
}

func v2Seeded() float64 {
	// The approved idiom: explicitly seeded per-purpose PCG stream.
	r := randv2.New(randv2.NewPCG(42, 7))
	return r.Float64()
}

func allowed() time.Time {
	return time.Now() //cellqos:allow nodeterm fixture: progress display only
}

func allowedAbove() time.Time {
	//cellqos:allow nodeterm fixture: annotation on the line above
	return time.Now()
}
