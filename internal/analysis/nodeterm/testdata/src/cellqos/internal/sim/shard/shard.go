// Package shard is a nodeterm fixture standing in for the sharded
// event kernel: the scope check matches package-path prefixes, so the
// subpackage must be covered by the cellqos/internal/sim entry — a
// wall-clock read or global RNG draw inside the cross-shard merge
// would silently break (time, shard, seq) determinism.
package shard

import (
	randv2 "math/rand/v2"
	"time"
)

// windowDeadline reproduces the tempting bug: pacing a conservative
// window barrier off the wall clock instead of simulation time.
func windowDeadline() float64 {
	t := time.Now() // want `time\.Now is wall clock`
	return float64(t.UnixNano())
}

// tieBreak reproduces drawing a merge tie-break from the global v2
// source; ties must come from the (time, shard, seq) order, never from
// entropy.
func tieBreak() uint64 {
	return randv2.Uint64() // want `rand\.Uint64 draws from the process-global, randomly seeded source`
}
