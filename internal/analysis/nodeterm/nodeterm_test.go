package nodeterm_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterm.Analyzer,
		"cellqos/internal/sim",
		"cellqos/internal/sim/shard",
		"cellqos/internal/chaosharness",
		"cellqos/internal/clock",
	)
}
