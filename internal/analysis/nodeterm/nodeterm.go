// Package nodeterm forbids nondeterministic time and entropy sources
// inside the simulation core. Byte-identical golden Reports across
// worker counts (DESIGN.md §8) hold only because every event is timed
// by the simulation clock and every random draw comes from an
// explicitly seeded per-purpose math/rand/v2 PCG stream. One stray
// time.Now or global-rand call silently decouples replay from seed.
package nodeterm

import (
	"go/ast"
	"strings"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/flow"
)

// Analyzer flags wall-clock and ambient-entropy reads: entropy rules
// in the deterministic packages, wall-clock rules module-wide.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock reads (time.Now, time.Since) everywhere but " +
		"internal/clock, and math/rand (v1) plus the math/rand/v2 global " +
		"source inside the deterministic simulation packages; simulation " +
		"time, internal/clock, and seeded per-purpose PCG streams are the " +
		"only approved clocks and entropy",
	Run: run,
}

// scopePrefixes limits the entropy checks to the packages whose outputs
// must be bit-reproducible from (config, seed) alone. CLIs, signaling
// (which touches real sockets and deadlines) and the chaos harness may
// use ambient entropy for jitter.
var scopePrefixes = []string{
	"cellqos/internal/core",
	"cellqos/internal/predict",
	"cellqos/internal/sim",
	"cellqos/internal/cellnet",
	"cellqos/internal/runner",
	"cellqos/internal/experiments",
}

// clockPackage is the single module package allowed to read the wall
// clock directly. Everything else — CLIs, signaling, benchmarks,
// external test packages included — goes through its Clock interface
// (clock.Wall in production, clock.Manual in tests, clock.Bridge for
// wall-derived simulation time), so every wall-time dependency in the
// module is injectable and every direct read is grep-able in one file.
const clockPackage = "cellqos/internal/clock"

// wallClockExempt reports whether pkg may call time.Now/time.Since:
// the clock package itself and its test variants.
func wallClockExempt(path string) bool {
	return strings.TrimSuffix(path, "_test") == clockPackage
}

// inModule limits the wall-clock rule to this module's packages (the
// fixtures under testdata share the cellqos/ prefix).
func inModule(path string) bool {
	return path == "cellqos" || strings.HasPrefix(path, "cellqos/")
}

func inScope(path string) bool {
	for _, p := range scopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	entropyScope := inScope(path)
	wallScope := inModule(path) && !wallClockExempt(path)
	if !entropyScope && !wallScope {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// The flow classifiers only match package-level selections
			// (pkg.Name), never field or method selections on values.
			if name, isClock := flow.WallClock(pass.TypesInfo, sel); wallScope && isClock {
				switch name {
				case "time.Now":
					pass.Reportf(sel.Pos(),
						"time.Now is wall clock: deterministic code takes time from the simulation clock (sim.Scheduler) or event timestamps; everything else reads through internal/clock (clock.Wall, clock.Manual, clock.Bridge)")
				case "time.Since":
					pass.Reportf(sel.Pos(),
						"time.Since is wall clock: measure elapsed time with clock.Clock.Since (internal/clock) so tests can drive it with clock.Manual")
				}
			}
			if kind, isRand := flow.GlobalRand(pass.TypesInfo, sel); entropyScope && isRand {
				if kind == "v1" {
					pass.Reportf(sel.Pos(),
						"math/rand (v1) is banned in deterministic packages: use an explicitly seeded math/rand/v2 PCG stream (rand.New(rand.NewPCG(seed, stream)))")
				} else {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global, randomly seeded source: use an explicitly seeded per-purpose PCG stream (rand.New(rand.NewPCG(seed, stream)))", kind)
				}
			}
			return true
		})
	}
	return nil, nil
}
