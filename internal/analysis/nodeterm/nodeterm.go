// Package nodeterm forbids nondeterministic time and entropy sources
// inside the simulation core. Byte-identical golden Reports across
// worker counts (DESIGN.md §8) hold only because every event is timed
// by the simulation clock and every random draw comes from an
// explicitly seeded per-purpose math/rand/v2 PCG stream. One stray
// time.Now or global-rand call silently decouples replay from seed.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"cellqos/internal/analysis"
)

// Analyzer flags wall-clock and ambient-entropy reads in the
// deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid time.Now, math/rand (v1) and the math/rand/v2 global source " +
		"inside the deterministic simulation packages; simulation time and " +
		"seeded per-purpose PCG streams are the only clocks and entropy",
	Run: run,
}

// scopePrefixes limits the check to the packages whose outputs must be
// bit-reproducible from (config, seed) alone. CLIs, signaling (which
// touches real sockets and deadlines) and the chaos harness legitimately
// read the wall clock.
var scopePrefixes = []string{
	"cellqos/internal/core",
	"cellqos/internal/predict",
	"cellqos/internal/sim",
	"cellqos/internal/cellnet",
	"cellqos/internal/runner",
	"cellqos/internal/experiments",
}

// globalRandV2 lists the math/rand/v2 top-level functions that draw
// from the shared, randomly-seeded global source. Seeded generators
// (rand.New(rand.NewPCG(seed, stream))) are the approved idiom and are
// not flagged.
var globalRandV2 = map[string]bool{
	"Int": true, "Int32": true, "Int64": true,
	"IntN": true, "Int32N": true, "Int64N": true, "N": true,
	"Uint": true, "Uint32": true, "Uint64": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true,
}

func inScope(path string) bool {
	for _, p := range scopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Only package-level selections (pkg.Name), not field or
			// method selections on values.
			if id, ok := sel.X.(*ast.Ident); !ok {
				return true
			} else if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); !isPkg {
				return true
			}
			switch pkgPath := obj.Pkg().Path(); {
			case pkgPath == "time" && obj.Name() == "Now":
				pass.Reportf(sel.Pos(),
					"time.Now is wall clock: deterministic packages must take time from the simulation clock (sim.Scheduler) or event timestamps")
			case pkgPath == "math/rand":
				pass.Reportf(sel.Pos(),
					"math/rand (v1) is banned in deterministic packages: use an explicitly seeded math/rand/v2 PCG stream (rand.New(rand.NewPCG(seed, stream)))")
			case pkgPath == "math/rand/v2" && globalRandV2[obj.Name()]:
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global, randomly seeded source: use an explicitly seeded per-purpose PCG stream (rand.New(rand.NewPCG(seed, stream)))", obj.Name())
			}
			return true
		})
	}
	return nil, nil
}
