// Package shardfix is the shardsafe fixture: mailbox sends with and
// without a lookahead proof, and kernel reads inside and outside event
// handlers.
package shardfix

import (
	"cellqos/internal/sim"
	"cellqos/internal/sim/shard"
)

// Config mirrors the uniform-latency model knobs.
type Config struct {
	SignalingLatency float64
	PeerExchange     float64
}

// sendUniform is the approved construction: Now() plus a latency-named
// term, through a local.
func sendUniform(sh *shard.Shard, cfg Config, dst int, key uint64, fn sim.Event) {
	at := sh.Now() + cfg.SignalingLatency
	sh.Send(dst, at, key, fn)
}

// sendScaled stays provable through products with constants and a
// Lookahead() call.
func sendScaled(sh *shard.Shard, k *shard.Kernel, dst int, key uint64, fn sim.Event) {
	sh.Send(dst, sh.Now()+2*k.Lookahead(), key, fn)
}

// sendChained stays provable when the offset accumulates two latency
// terms (now + exchange + latency associates left).
func sendChained(sh *shard.Shard, cfg Config, dst int, key uint64, fn sim.Event) {
	at := sh.Now() + cfg.PeerExchange + cfg.SignalingLatency
	sh.Send(dst, at, key, fn)
}

// sendLiteral is the regression shape from the kernel's own tests: a
// literal time that only panics on executions crossing a window.
func sendLiteral(sh *shard.Shard, key uint64, fn sim.Event) {
	sh.Send(1, 1.25, key, fn) // want `Send time 1.25 is not provably now\+lookahead`
}

// sendBareNow forgets the latency offset entirely.
func sendBareNow(sh *shard.Shard, dst int, key uint64, fn sim.Event) {
	sh.Send(dst, sh.Now(), key, fn) // want `Send time sh.Now\(\) is not provably now\+lookahead`
}

// sendMagicOffset adds a constant with no latency pedigree.
func sendMagicOffset(sh *shard.Shard, dst int, key uint64, fn sim.Event) {
	at := sh.Now() + 0.5
	sh.Send(dst, at, key, fn) // want `Send time at is not provably now\+lookahead`
}

// sendExcused is a deliberate violation with the annotated escape
// hatch.
func sendExcused(sh *shard.Shard, key uint64, fn sim.Event) {
	sh.Send(1, 0.75, key, fn) //cellqos:allow shardsafe fixture: deliberate lookahead violation
}

// barrierReads is the approved place for cross-shard reads: the
// AtBarrier hook and plain coordinator code.
func barrierReads(k *shard.Kernel) {
	k.AtBarrier(func(now float64) {
		_ = k.Pending()
		_ = k.Fired()
	})
	_ = k.CanceledRetained()
	_ = k.Shard(0)
}

// eventReads violate the window discipline: the kernel surface from
// inside event handlers, directly and nested.
func eventReads(k *shard.Kernel, sh *shard.Shard) {
	sh.MustAfter(1, func(s sim.Scheduler) {
		_ = k.Fired()                                 // want `Kernel.Fired inside an event handler`
		k.Shard(1).MustAfter(1, func(sim.Scheduler) { // want `Kernel.Shard inside an event handler`
			_ = k.Pending() // want `Kernel.Pending inside an event handler`
		})
	})
}

// eventDecl is an event handler by declaration, not literal: the same
// rule applies.
func eventDecl(s sim.Scheduler) {
	_ = pinnedKernel.CanceledRetained() // want `Kernel.CanceledRetained inside an event handler`
}

var pinnedKernel *shard.Kernel

// eventExcused documents a serial-mode-only handler with the escape
// hatch.
func eventExcused(k *shard.Kernel, sh *shard.Shard) {
	sh.MustAfter(1, func(s sim.Scheduler) {
		_ = k.Fired() //cellqos:allow shardsafe fixture: serial-mode single-goroutine read
	})
}
