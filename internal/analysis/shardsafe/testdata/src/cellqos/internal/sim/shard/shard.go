// Package shard is the shardsafe fixture stub: the mailbox and the
// kernel's barrier-only surface.
package shard

import "cellqos/internal/sim"

// Shard mirrors one shard's scheduling surface.
type Shard struct{ now float64 }

// Now returns the shard clock.
func (sh *Shard) Now() float64 { return sh.now }

// MustAfter mirrors the event booking call.
func (sh *Shard) MustAfter(dt float64, fn sim.Event) {}

// Send mirrors the cross-shard mailbox.
func (sh *Shard) Send(dst int, at float64, key uint64, fn sim.Event) {}

// Kernel mirrors the coordinating kernel.
type Kernel struct{ barrier float64 }

// Shard hands out shard i's surface (barrier-only).
func (k *Kernel) Shard(i int) *Shard { return nil }

// Fired counts executed events (barrier-only).
func (k *Kernel) Fired() uint64 { return 0 }

// Pending counts queued events (barrier-only).
func (k *Kernel) Pending() int { return 0 }

// CanceledRetained counts canceled-but-queued events (barrier-only).
func (k *Kernel) CanceledRetained() int { return 0 }

// Lookahead returns the conservative window length.
func (k *Kernel) Lookahead() float64 { return 0 }

// Now returns the barrier clock.
func (k *Kernel) Now() float64 { return k.barrier }

// AtBarrier registers the quiescent hook.
func (k *Kernel) AtBarrier(fn func(now float64)) {}
