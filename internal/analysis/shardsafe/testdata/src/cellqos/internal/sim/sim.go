// Package sim is the shardsafe fixture stub: the scheduler surface and
// the Event signature the analyzer keys event-handler contexts on.
package sim

// Scheduler mirrors the per-shard scheduling surface.
type Scheduler interface {
	Now() float64
	MustAfter(dt float64, fn Event)
}

// Event mirrors sim.Event.
type Event func(s Scheduler)
