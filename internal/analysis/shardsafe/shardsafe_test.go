package shardsafe_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/shardsafe"
)

func TestShardSafe(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "cellqos/internal/shardfix")
}

// TestStubShardClean: the kernel package itself aggregates shard state
// inside its own plain methods — none of that is an event handler, so
// the analyzer must be silent on it.
func TestStubShardClean(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "cellqos/internal/sim/shard")
}
