// Package shardsafe machine-enforces the sharded kernel's two
// conservative-execution disciplines (DESIGN.md §13):
//
//   - lookahead: every Shard.Send must book its message at a time
//     provably ≥ now+lookahead. The analyzer accepts the uniform-latency
//     construction — an `at` argument that resolves (through local
//     single-assignment substitution) to Now()-derived time plus a
//     latency/lookahead-named term — and flags everything else, most
//     importantly literal times, which panic at run time only on the
//     executions that happen to cross a window boundary;
//   - window: inside an event handler (any func(sim.Scheduler)), the
//     Kernel's cross-shard surface (Shard, Fired, Pending,
//     CanceledRetained) is off limits — those aggregate or hand out
//     other shards' state, which is only quiescent at window barriers
//     (AtBarrier hooks) or between runs. Shard.Send is the one legal
//     cross-shard channel from inside an event.
//
// Serial-mode tests that deliberately exploit the single-goroutine
// guarantee annotate the site with //cellqos:allow shardsafe and a
// justification.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/flow"
)

// Analyzer enforces mailbox lookahead proofs and barrier-only access
// to cross-shard kernel state.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "require every shard mailbox Send to book at a provably conservative " +
		"time (Now() plus a latency/lookahead term) and forbid the Kernel's " +
		"cross-shard surface (Shard/Fired/Pending/CanceledRetained) inside " +
		"event handlers, where other shards are mid-window",
	Run: run,
}

const (
	shardPath = "internal/sim/shard"
	simPath   = "internal/sim"
)

// latencyName matches identifiers that carry a signaling-latency or
// lookahead quantity by naming convention.
var latencyName = regexp.MustCompile(`(?i)latency|lookahead|exchange|delay`)

// windowUnsafe are the Kernel methods that read or hand out other
// shards' state and are documented barrier-only.
var windowUnsafe = map[string]bool{
	"Shard": true, "Fired": true, "Pending": true, "CanceledRetained": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var src map[types.Object][]ast.Expr // lazily built per function
	sources := func() map[types.Object][]ast.Expr {
		if src == nil {
			src = flow.Sources(pass.TypesInfo, fd)
		}
		return src
	}

	// eventDepth tracks how many enclosing func literals are event
	// handlers (func(sim.Scheduler)); the declaration itself counts.
	eventDepth := 0
	if isEventSig(pass, pass.TypesInfo.Defs[fd.Name]) {
		eventDepth = 1
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if litIsEvent(pass, n) {
				eventDepth++
				ast.Inspect(n.Body, walk)
				eventDepth--
				return false
			}
		case *ast.CallExpr:
			checkSend(pass, sources, n)
			if eventDepth > 0 {
				checkWindowRead(pass, n)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkSend proves the `at` argument of a Shard.Send conservative.
func checkSend(pass *analysis.Pass, sources func() map[types.Object][]ast.Expr, call *ast.CallExpr) {
	selection, name, ok := flow.MethodCall(pass.TypesInfo, call)
	if !ok || name != "Send" || len(call.Args) < 2 {
		return
	}
	if !flow.ReceiverNamed(selection, shardPath, "Shard") {
		return
	}
	at := call.Args[1]
	if provenConservative(pass, sources(), at) {
		return
	}
	pass.ReportRangef(call, "lookahead",
		"Send time %s is not provably now+lookahead: book messages at Now() plus a latency/lookahead term, or the send panics on executions that cross a window boundary",
		types.ExprString(at))
}

// provenConservative accepts now-derived + latency-like sums, after
// substituting single-assignment locals.
func provenConservative(pass *analysis.Pass, src map[types.Object][]ast.Expr, e ast.Expr) bool {
	bin, ok := ast.Unparen(flow.Resolve(src, pass.TypesInfo, e, 8)).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	return (nowDerived(pass, src, bin.X) && latencyLike(pass, src, bin.Y)) ||
		(nowDerived(pass, src, bin.Y) && latencyLike(pass, src, bin.X))
}

// nowDerived recognizes a Now() read, possibly already offset by a
// latency term (now + exchange + latency associates left).
func nowDerived(pass *analysis.Pass, src map[types.Object][]ast.Expr, e ast.Expr) bool {
	switch e := ast.Unparen(flow.Resolve(src, pass.TypesInfo, e, 8)).(type) {
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Now"
		case *ast.Ident:
			return fun.Name == "Now"
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return (nowDerived(pass, src, e.X) && latencyLike(pass, src, e.Y)) ||
				(nowDerived(pass, src, e.Y) && latencyLike(pass, src, e.X))
		}
	}
	return false
}

// latencyLike recognizes a latency/lookahead-named value, a Lookahead()
// call, or a sum/product of such terms with constants (2*L, L+slack is
// conservative as long as one factor is latency-like and nothing is
// subtracted).
func latencyLike(pass *analysis.Pass, src map[types.Object][]ast.Expr, e ast.Expr) bool {
	switch e := ast.Unparen(flow.Resolve(src, pass.TypesInfo, e, 8)).(type) {
	case *ast.Ident:
		return latencyName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return latencyName.MatchString(e.Sel.Name)
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Lookahead" || latencyName.MatchString(fun.Sel.Name)
		case *ast.Ident:
			return fun.Name == "Lookahead" || latencyName.MatchString(fun.Name)
		}
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.MUL {
			return false
		}
		lx := latencyLike(pass, src, e.X)
		ly := latencyLike(pass, src, e.Y)
		if !lx && !ly {
			return false
		}
		return (lx || isConst(pass, e.X)) && (ly || isConst(pass, e.Y))
	}
	return false
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// checkWindowRead flags the Kernel's barrier-only surface inside an
// event handler.
func checkWindowRead(pass *analysis.Pass, call *ast.CallExpr) {
	selection, name, ok := flow.MethodCall(pass.TypesInfo, call)
	if !ok || !windowUnsafe[name] {
		return
	}
	if !flow.ReceiverNamed(selection, shardPath, "Kernel") {
		return
	}
	pass.ReportRangef(call, "window",
		"Kernel.%s inside an event handler: other shards are mid-window here — read cross-shard state from an AtBarrier hook or between runs, and cross-shard effects go through Shard.Send", name)
}

// isEventSig reports whether obj is a function taking exactly one
// sim.Scheduler parameter and returning nothing.
func isEventSig(pass *analysis.Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return schedulerSig(fn.Type())
}

func litIsEvent(pass *analysis.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[ast.Expr(lit)]
	if !ok {
		return false
	}
	return schedulerSig(tv.Type)
}

func schedulerSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Params().Len() != 1 {
		return false
	}
	pt := sig.Params().At(0).Type()
	named, ok := pt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Scheduler" && obj.Pkg() != nil && flow.PathMatches(obj.Pkg().Path(), simPath)
}
