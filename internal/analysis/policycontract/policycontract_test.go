package policycontract_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/policycontract"
)

func TestPolicyContract(t *testing.T) {
	analysistest.Run(t, "testdata", policycontract.Analyzer, "cellqos/internal/policyfix")
}

// TestStubCoreClean runs the analyzer over the fixture's own core stub:
// a package that declares the interface but no violating implementation
// must be silent.
func TestStubCoreClean(t *testing.T) {
	analysistest.Run(t, "testdata", policycontract.Analyzer, "cellqos/internal/core")
}
