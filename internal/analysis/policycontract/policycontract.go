// Package policycontract machine-enforces the DESIGN.md §16
// AdmissionPolicy contract on every implementation the package under
// analysis declares:
//
//   - cellstate: a policy whose methods mutate receiver fields carries
//     per-cell state and must implement core.CellStater, otherwise one
//     registry value is shared by every cell and run;
//   - shallowclone: CloneCellState must build a fresh instance (a
//     composite literal of the policy type) and never return the
//     receiver — a shallow hand-back aliases the prototype's state;
//   - okflow: inside DecideNew/DecideHandOff (and the helpers they
//     reach), every Peers/PeerValue read must consume its ok bool —
//     fail closed, per the degraded-peer obligation;
//   - entropy: no wall clock (time.Now/Since) or global RNG inside the
//     decision path — policies must be deterministic given the seeded
//     streams;
//   - maprange: no ranging over a map inside the decision path — Go's
//     random iteration order feeding a float accumulation breaks
//     byte-determinism;
//   - registry: RegisterPolicy is called from init only, with a
//     literal, package-unique (case-insensitive) name, so the registry
//     contents never depend on call timing or computed strings.
//
// The analyzer activates only where core.AdmissionPolicy is visible
// (the package itself or a direct importer); everywhere else it is
// silent.
package policycontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/flow"
)

// Analyzer enforces the AdmissionPolicy implementation contract.
var Analyzer = &analysis.Analyzer{
	Name: "policycontract",
	Doc: "enforce the DESIGN.md §16 AdmissionPolicy contract: per-cell mutable " +
		"state requires CellStater with a deep CloneCellState, decision methods " +
		"consume every Peers/PeerValue ok bool and stay free of wall clock, " +
		"global rand, and map ranging, and RegisterPolicy runs only from init " +
		"with a literal unique name",
	Run: run,
}

const corePath = "internal/core"

func run(pass *analysis.Pass) (any, error) {
	iface := flow.LookupInterface(pass, corePath, "AdmissionPolicy")
	if iface == nil {
		return nil, nil
	}
	ix := flow.NewIndex(pass)
	stater := flow.LookupInterface(pass, corePath, "CellStater")

	checkRegistry(pass, ix)

	seenFn := map[*types.Func]bool{} // shared decision helpers scan once
	for _, impl := range flow.Implementations(pass, iface) {
		methods := ix.MethodsOf(impl)
		checkCellState(pass, impl, methods, stater)
		checkDecisionPath(pass, ix, impl, methods, seenFn)
	}
	return nil, nil
}

func report(pass *analysis.Pass, rng ast.Node, category, format string, args ...any) {
	pass.ReportRangef(rng, category, format, args...)
}

// ---------------------------------------------------------------------
// cellstate + shallowclone

// checkCellState requires CellStater on mutating policies and audits
// CloneCellState bodies for the deep-copy shape.
func checkCellState(pass *analysis.Pass, impl *types.Named, methods map[string]*ast.FuncDecl, stater *types.Interface) {
	node, method := firstReceiverMutation(pass, methods)
	isStater := stater != nil && flow.Implements(impl, stater)
	if node != nil && !isStater {
		report(pass, node, "cellstate",
			"policy %s mutates receiver state in %s but does not implement CellStater: without CloneCellState one registry value is shared by every cell (DESIGN.md §16)",
			impl.Obj().Name(), method)
	}
	if !isStater {
		return
	}
	clone := methods["CloneCellState"]
	if clone == nil || clone.Body == nil {
		return // inherited from an embedded type; audited where declared
	}
	fresh := false
	ast.Inspect(clone.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[ast.Expr(cl)]; ok && namedBase(tv.Type) == impl.Obj() {
			fresh = true
		}
		return true
	})
	recv := receiverObject(pass, clone)
	ast.Inspect(clone.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && recv != nil && pass.TypesInfo.Uses[id] == recv {
				report(pass, ret, "shallowclone",
					"CloneCellState of %s returns its receiver: the clone aliases the prototype's mutable state — build a fresh %s literal instead",
					impl.Obj().Name(), impl.Obj().Name())
			}
		}
		return true
	})
	if !fresh {
		report(pass, clone.Name, "shallowclone",
			"CloneCellState of %s never constructs a fresh %s: a deep per-cell clone must build a new composite literal copying the knobs and resetting mutable fields",
			impl.Obj().Name(), impl.Obj().Name())
	}
}

// firstReceiverMutation finds the earliest assignment (plain, compound,
// or ++/--) to a field of the method receiver across the policy's
// methods, excluding CloneCellState itself (initializing the clone is
// the method's job).
func firstReceiverMutation(pass *analysis.Pass, methods map[string]*ast.FuncDecl) (ast.Node, string) {
	var node ast.Node
	var method string
	consider := func(n ast.Node, name string) {
		if n != nil && (node == nil || n.Pos() < node.Pos()) {
			node, method = n, name
		}
	}
	for name, fd := range methods {
		if name == "CloneCellState" || fd.Body == nil {
			continue
		}
		recv := receiverObject(pass, fd)
		if recv == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if selectsReceiver(pass, lhs, recv) {
						consider(n, name)
					}
				}
			case *ast.IncDecStmt:
				if selectsReceiver(pass, n.X, recv) {
					consider(n, name)
				}
			}
			return true
		})
	}
	return node, method
}

func receiverObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// selectsReceiver reports whether e is a (possibly nested) selector
// rooted at the receiver object: g.guard, t.state.runs, ...
func selectsReceiver(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[x] == recv
		default:
			return false
		}
	}
}

func namedBase(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// ---------------------------------------------------------------------
// okflow + entropy + maprange over the decision path

// checkDecisionPath scans DecideNew and DecideHandOff plus every
// package-local helper they reach — plain functions, or methods on the
// policy type itself (engine/context methods are the framework's
// responsibility, not the policy's).
func checkDecisionPath(pass *analysis.Pass, ix *flow.Index, impl *types.Named, methods map[string]*ast.FuncDecl, seenFn map[*types.Func]bool) {
	var roots []*types.Func
	for _, name := range []string{"DecideNew", "DecideHandOff"} {
		if fd := methods[name]; fd != nil {
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				roots = append(roots, fn)
			}
		}
	}
	follow := func(fn *types.Func) bool {
		base := flow.ReceiverBase(fn)
		return base == nil || base == impl.Obj()
	}
	for _, fn := range ix.Reachable(roots, follow) {
		if seenFn[fn] {
			continue
		}
		seenFn[fn] = true
		scanDecisionFunc(pass, ix.Decl(fn), impl.Obj().Name())
	}
}

func scanDecisionFunc(pass *analysis.Pass, fd *ast.FuncDecl, policy string) {
	if fd == nil || fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if name, ok := flow.WallClock(pass.TypesInfo, n); ok {
				report(pass, n, "entropy",
					"%s on the decision path of policy %s: decisions must depend only on simulation state, never the wall clock", name, policy)
			}
			if kind, ok := flow.GlobalRand(pass.TypesInfo, n); ok {
				what := "global math/rand"
				if kind != "v1" {
					what = "global rand." + kind
				}
				report(pass, n, "entropy",
					"%s on the decision path of policy %s: draw from the run's seeded PCG streams, never ambient entropy", what, policy)
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); ok {
				report(pass, n, "maprange",
					"map range on the decision path of policy %s: iteration order is randomized and poisons byte-determinism — iterate sorted keys", policy)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := okCarrierCall(pass, call); ok {
					report(pass, call, "okflow",
						"result of %s discarded on the decision path of policy %s: a degraded neighbor reports ok=false and the policy must fail closed", name, policy)
				}
			}
		case *ast.AssignStmt:
			checkBlankedOK(pass, n, policy)
		}
		return true
	})
}

// checkBlankedOK flags `v, _ := peers.X(...)` / `v, _ := PeerValue(...)`.
func checkBlankedOK(pass *analysis.Pass, assign *ast.AssignStmt, policy string) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := okCarrierCall(pass, call)
	if !ok {
		return
	}
	last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	report(pass, assign, "okflow",
		"ok result of %s blanked on the decision path of policy %s: a degraded neighbor reports ok=false and the policy must fail closed", name, policy)
}

// peersMethods mirrors the core.Peers interface; matching is by name
// plus trailing-bool signature, as in the peervalue analyzer.
var peersMethods = map[string]bool{
	"OutgoingReservation":  true,
	"Snapshot":             true,
	"RecomputeReservation": true,
	"MaxSojourn":           true,
}

// okCarrierCall classifies a call whose trailing bool carries the
// degraded-peer contract: a Peers-shaped method, or core.PeerValue.
func okCarrierCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && peersMethods[sel.Sel.Name] {
		if selection := pass.TypesInfo.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
			if trailingBool(selection.Type()) {
				return sel.Sel.Name, true
			}
		}
	}
	if fn := flow.Callee(pass.TypesInfo, call); fn != nil && fn.Name() == "PeerValue" &&
		fn.Pkg() != nil && flow.PathMatches(fn.Pkg().Path(), corePath) && trailingBool(fn.Type()) {
		return "PeerValue", true
	}
	return "", false
}

func trailingBool(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() < 2 {
		return false
	}
	b, ok := res.At(res.Len() - 1).Type().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// ---------------------------------------------------------------------
// registry

// checkRegistry audits every RegisterPolicy call in the package: init
// only, literal name, package-unique case-insensitively.
func checkRegistry(pass *analysis.Pass, ix *flow.Index) {
	seen := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := ix.Callee(call)
				if fn == nil || fn.Name() != "RegisterPolicy" ||
					fn.Pkg() == nil || !flow.PathMatches(fn.Pkg().Path(), corePath) {
					return true
				}
				if !inInit {
					report(pass, call, "registry",
						"RegisterPolicy called from %s: the registry is populated from init only, so PolicyNames never depends on call timing", fd.Name.Name)
				}
				if len(call.Args) == 0 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					report(pass, call.Args[0], "registry",
						"RegisterPolicy name is not a string literal: computed names defeat the duplicate check and static greps of the roster")
					return true
				}
				key := strings.ToLower(strings.Trim(lit.Value, "`\""))
				if seen[key] {
					report(pass, call.Args[0], "registry",
						"duplicate policy registration %s in this package: RegisterPolicy panics at run time on the second call", lit.Value)
				}
				seen[key] = true
				return true
			})
		}
	}
}
