// Package core is the policycontract fixture stub: just enough of the
// real cellqos/internal/core surface for fixture policies to compile
// against the same names the analyzer keys on.
package core

import "math"

// PolicyTraits mirrors the machinery declaration.
type PolicyTraits struct{ Adaptive, UsesPeers bool }

// Decision mirrors the admission outcome.
type Decision struct {
	Admitted bool
	Degraded bool
}

// Peers mirrors the core.Peers degraded-value contract.
type Peers interface {
	OutgoingReservation(li int, now, test float64) (res float64, ok bool)
	Snapshot(li int) (used, capacity int, lastBr float64, ok bool)
	RecomputeReservation(li int, now float64) (used, capacity int, br float64, ok bool)
	MaxSojourn(li int, now float64) (tSojMax float64, ok bool)
}

// PeerValue mirrors core.PeerValue.
func PeerValue(v float64, ok bool) (float64, bool) {
	if !ok || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, false
	}
	return v, true
}

// PolicyContext mirrors the per-decision context.
type PolicyContext struct {
	Now       float64
	Bandwidth int
	peers     Peers
}

// Peers returns the neighbor access interface.
func (ctx *PolicyContext) Peers() Peers { return ctx.peers }

// Committed mirrors the committed-bandwidth accessor.
func (ctx *PolicyContext) Committed() int { return 0 }

// Capacity mirrors the capacity accessor.
func (ctx *PolicyContext) Capacity() int { return 0 }

// HandOffRoom mirrors the reserved-room hand-off test.
func (ctx *PolicyContext) HandOffRoom() bool { return true }

// AdmissionPolicy mirrors the pluggable policy interface.
type AdmissionPolicy interface {
	Name() string
	Traits() PolicyTraits
	DecideNew(ctx *PolicyContext) Decision
	DecideHandOff(ctx *PolicyContext) Decision
}

// CellStater mirrors the per-cell-state extension.
type CellStater interface {
	CloneCellState() AdmissionPolicy
}

// PolicyFactory mirrors the registry factory.
type PolicyFactory func() AdmissionPolicy

// RegisterPolicy mirrors the registry entry point.
func RegisterPolicy(name string, f PolicyFactory) {}
