// Package policyfix is the policycontract fixture: AdmissionPolicy
// implementations violating each clause of the DESIGN.md §16 contract
// next to the compliant idioms, plus the registry discipline cases.
package policyfix

import (
	"math/rand/v2"
	"time"

	"cellqos/internal/core"
)

// ---------------------------------------------------------------------
// cellstate: mutable per-cell state without CellStater. This is the
// pre-fix regression shape from the rival-policy sweep: an adaptive
// guard level mutated in place on the shared registry value.

type leakyGuard struct {
	guard int
}

func (p *leakyGuard) Name() string              { return "leaky-guard" }
func (p *leakyGuard) Traits() core.PolicyTraits { return core.PolicyTraits{} }

func (p *leakyGuard) DecideNew(ctx *core.PolicyContext) core.Decision {
	p.guard++ // want `policy leakyGuard mutates receiver state in DecideNew but does not implement CellStater`
	return core.Decision{Admitted: ctx.Committed()+ctx.Bandwidth <= ctx.Capacity()-p.guard}
}

func (p *leakyGuard) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	return core.Decision{Admitted: ctx.HandOffRoom()}
}

// ---------------------------------------------------------------------
// shallowclone: CellStater present but the clone hands back the
// receiver, aliasing the prototype's mutable state.

type shallowBucket struct {
	tokens float64
}

func (p *shallowBucket) Name() string              { return "shallow-bucket" }
func (p *shallowBucket) Traits() core.PolicyTraits { return core.PolicyTraits{} }

// CloneCellState want-cases: the receiver return and the missing fresh
// composite literal are each findings.
func (p *shallowBucket) CloneCellState() core.AdmissionPolicy { // want `CloneCellState of shallowBucket never constructs a fresh shallowBucket`
	return p // want `CloneCellState of shallowBucket returns its receiver`
}

func (p *shallowBucket) DecideNew(ctx *core.PolicyContext) core.Decision {
	p.tokens -= float64(ctx.Bandwidth)
	return core.Decision{Admitted: p.tokens >= 0}
}

func (p *shallowBucket) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	return core.Decision{Admitted: ctx.HandOffRoom()}
}

// ---------------------------------------------------------------------
// Compliant: mutable state behind CellStater with a deep clone.

type goodBucket struct {
	Burst  float64
	tokens float64
}

func (p *goodBucket) Name() string              { return "good-bucket" }
func (p *goodBucket) Traits() core.PolicyTraits { return core.PolicyTraits{} }

// CloneCellState builds a fresh instance: knobs copied, state reset.
func (p *goodBucket) CloneCellState() core.AdmissionPolicy {
	return &goodBucket{Burst: p.Burst, tokens: p.Burst}
}

func (p *goodBucket) DecideNew(ctx *core.PolicyContext) core.Decision {
	p.tokens -= float64(ctx.Bandwidth)
	return core.Decision{Admitted: p.tokens >= 0}
}

func (p *goodBucket) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	return core.Decision{Admitted: ctx.HandOffRoom()}
}

// ---------------------------------------------------------------------
// entropy + maprange: wall clock, global rand, and map ranging on the
// decision path, including through a package-local helper.

type noisyPolicy struct{}

func (noisyPolicy) Name() string              { return "noisy" }
func (noisyPolicy) Traits() core.PolicyTraits { return core.PolicyTraits{} }

func (noisyPolicy) DecideNew(ctx *core.PolicyContext) core.Decision {
	deadline := time.Now().Add(time.Second) // want `time.Now on the decision path of policy noisyPolicy`
	_ = deadline
	loads := map[int]float64{1: 0.5}
	sum := 0.0
	for _, v := range loads { // want `map range on the decision path of policy noisyPolicy`
		sum += v
	}
	return core.Decision{Admitted: sum < 1}
}

func (noisyPolicy) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	return core.Decision{Admitted: jitteredRoom(ctx)}
}

// jitteredRoom is reached from DecideHandOff: the helper's entropy is
// on the decision path too.
func jitteredRoom(ctx *core.PolicyContext) bool {
	return rand.Float64() < 0.5 // want `global rand.Float64 on the decision path of policy noisyPolicy`
}

// ---------------------------------------------------------------------
// okflow: Peers/PeerValue reads with the degraded signal thrown away,
// next to the compliant branch-on-ok idiom.

type deafPolicy struct{}

func (deafPolicy) Name() string              { return "deaf" }
func (deafPolicy) Traits() core.PolicyTraits { return core.PolicyTraits{UsesPeers: true} }

func (deafPolicy) DecideNew(ctx *core.PolicyContext) core.Decision {
	peers := ctx.Peers()
	peers.RecomputeReservation(0, ctx.Now)             // want `result of RecomputeReservation discarded on the decision path of policy deafPolicy`
	v, _ := peers.OutgoingReservation(0, ctx.Now, 1.0) // want `ok result of OutgoingReservation blanked on the decision path of policy deafPolicy`
	return core.Decision{Admitted: v < 1}
}

func (deafPolicy) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	w, _ := core.PeerValue(ctx.Peers().MaxSojourn(0, ctx.Now)) // want `ok result of PeerValue blanked on the decision path of policy deafPolicy`
	return core.Decision{Admitted: w > 0}
}

type listeningPolicy struct{}

func (listeningPolicy) Name() string              { return "listening" }
func (listeningPolicy) Traits() core.PolicyTraits { return core.PolicyTraits{UsesPeers: true} }

// DecideNew is the compliant idiom: every ok consumed, fail closed.
func (listeningPolicy) DecideNew(ctx *core.PolicyContext) core.Decision {
	v, ok := core.PeerValue(ctx.Peers().OutgoingReservation(0, ctx.Now, 1.0))
	if !ok {
		return core.Decision{Degraded: true}
	}
	return core.Decision{Admitted: v < 1}
}

func (listeningPolicy) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	return core.Decision{Admitted: ctx.HandOffRoom()}
}

// ---------------------------------------------------------------------
// Suppression: the escape hatch holds for an acknowledged violation.

type excusedPolicy struct{}

func (excusedPolicy) Name() string              { return "excused" }
func (excusedPolicy) Traits() core.PolicyTraits { return core.PolicyTraits{} }

func (excusedPolicy) DecideNew(ctx *core.PolicyContext) core.Decision {
	_ = time.Now() //cellqos:allow policycontract fixture: suppression coverage for the entropy clause
	return core.Decision{Admitted: true}
}

func (excusedPolicy) DecideHandOff(ctx *core.PolicyContext) core.Decision {
	return core.Decision{Admitted: ctx.HandOffRoom()}
}

// ---------------------------------------------------------------------
// registry: init-only, literal, unique names.

var lateName = "computed-" + "name"

func init() {
	core.RegisterPolicy("leaky-guard", func() core.AdmissionPolicy { return &leakyGuard{} })
	core.RegisterPolicy("Leaky-Guard", func() core.AdmissionPolicy { return &leakyGuard{} }) // want `duplicate policy registration "Leaky-Guard" in this package`
	core.RegisterPolicy(lateName, func() core.AdmissionPolicy { return noisyPolicy{} })      // want `RegisterPolicy name is not a string literal`
}

// registerLate is the timing violation: a registry mutated outside
// init makes PolicyNames depend on who called what first.
func registerLate() {
	core.RegisterPolicy("late", func() core.AdmissionPolicy { return deafPolicy{} }) // want `RegisterPolicy called from registerLate`
}
