// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixture layout: <testdata>/src/<import path>/*.go. A fixture package
// may import another fixture package by its path (so stubs can stand
// in for cellqos/internal/core etc.); any other import (the standard
// library, or a real repo package) resolves through the source
// importer.
//
// Expectations: a comment of the form
//
//	code() // want `regexp`
//	code() // want "regexp one" "regexp two"
//
// asserts that the analyzer reports, on that line, exactly as many
// diagnostics as there are patterns, each matched (in any order) by
// one pattern. Diagnostics on lines without a want comment fail the
// test, as do unmatched wants. //cellqos:allow suppression is applied
// before matching, so fixtures also exercise the escape hatch.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cellqos/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, pkgPaths...)
}

// RunSuite is Run for several analyzers at once: the fixture package is
// analyzed by all of them in one RunAnalyzers call, so want comments
// see the merged diagnostic stream. This is how allowstale is tested —
// staleness only exists relative to the other analyzers in the same
// run — and how cross-analyzer fixtures assert that one line trips
// exactly the checks it should.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*analysis.Package{},
		loading:  map[string]bool{},
	}
	l.fallback = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		check(t, analyzers, pkg)
	}
}

// loader resolves fixture packages recursively, falling back to the
// source importer for everything outside the fixture tree.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*analysis.Package
	loading  map[string]bool
	fallback types.Importer
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if fixtureExists(l.testdata, ipath) {
			pkg, err := l.load(ipath)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return l.fallback.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &analysis.Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

func fixtureExists(testdata, path string) bool {
	fi, err := os.Stat(filepath.Join(testdata, "src", filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one want pattern at a file line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// check runs the analyzers on one fixture package and diffs findings
// against the package's want comments.
func check(t *testing.T, analyzers []*analysis.Analyzer, pkg *analysis.Package) {
	t.Helper()
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("analyzers on %s: %v", pkg.Path, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkg.Path, err)
	}

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.Path, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg.Path, w.file, w.line, w.raw)
		}
	}
}

// matchWant consumes the first unmatched expectation on the finding's
// line whose pattern matches.
func matchWant(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Posn.Filename || w.line != f.Posn.Line {
			continue
		}
		if w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment in the package.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := wantPayload(c.Text)
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", posn.Filename, posn.Line, err)
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad pattern %q: %v", posn.Filename, posn.Line, p, err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, rx: rx, raw: p})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// wantPayload extracts the pattern list from a want comment. The usual
// form is a line comment `// want ...`; the block form `/* want ... */`
// exists for lines whose trailing line comment is already claimed by a
// //cellqos:allow directive (a // comment runs to end of line, so the
// two cannot share one) — allowstale fixtures assert on the directive's
// own line this way.
func wantPayload(text string) (string, bool) {
	if rest, ok := strings.CutPrefix(text, "// want "); ok {
		return rest, true
	}
	if rest, ok := strings.CutPrefix(text, "/* want "); ok {
		if inner, ok := strings.CutSuffix(rest, "*/"); ok {
			return strings.TrimSpace(inner), true
		}
	}
	return "", false
}

// parsePatterns splits a want payload into its quoted or backquoted
// regexp strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` pattern")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Find the closing quote respecting escapes, then Unquote.
			i := 1
			for i < len(s) {
				if s[i] == '\\' {
					i += 2
					continue
				}
				if s[i] == '"' {
					break
				}
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated \" pattern")
			}
			q, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, q)
			s = strings.TrimSpace(s[i+1:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return out, nil
}
