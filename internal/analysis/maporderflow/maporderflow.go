// Package maporderflow flags map iteration whose order escapes into an
// order-sensitive sink: a float accumulation (float addition is not
// associative), a slice appended across iterations (element order ends
// up random), or an ordered writer (report/plot output bytes differ
// run to run). This is exactly the class of bug that breaks
// byte-identical golden Reports at parallel=1 vs parallel=8 — the
// invariant TestReportDeterministicAcrossWorkers and the golden corpus
// defend at runtime, caught here at vet time instead.
//
// The approved fix is the sorted-keys idiom: collect the keys, sort
// them, range over the sorted slice. The analyzer recognizes that
// idiom's first half — a key-collecting append whose slice is passed
// to sort/slices ordering functions later in the same file — and does
// not flag it.
package maporderflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"cellqos/internal/analysis"
)

// Analyzer reports map ranges whose iteration order reaches an
// order-sensitive sink.
var Analyzer = &analysis.Analyzer{
	Name: "maporderflow",
	Doc: "flag range-over-map loops whose iteration order escapes into a float " +
		"accumulation, an out-living slice append, or an ordered writer; sort " +
		"the keys first",
	Run: run,
}

// writerMethods are method names whose calls emit bytes in call order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtOrderedWriters maps fmt functions to the index of their writer
// argument (-1 = implicit os.Stdout).
var fmtOrderedWriters = map[string]int{
	"Fprintf": 0, "Fprintln": 0, "Fprint": 0,
	"Printf": -1, "Println": -1, "Print": -1,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, f, rng)
			return true
		})
	}
	return nil, nil
}

// checkBody walks one map-range body for order-sensitive sinks.
func checkBody(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := n.Lhs[0]
				if !isFloat(pass.TypesInfo.Types[lhs].Type) {
					return true
				}
				if obj := rootObject(pass, lhs); declaredOutside(obj, rng) {
					pass.Reportf(n.Pos(),
						"float accumulation into %s inside a map range: float addition is not associative, so the result depends on map iteration order; range over sorted keys instead", name(obj))
				}
			case token.ASSIGN, token.DEFINE:
				// x = append(x, ...) growing a slice that outlives the loop.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					return true
				}
				obj := rootObject(pass, n.Lhs[0])
				if !declaredOutside(obj, rng) {
					return true
				}
				if sortedAfter(pass, file, rng, obj) {
					return true // the sorted-keys idiom's collection pass
				}
				pass.Reportf(n.Pos(),
					"append to %s inside a map range builds a slice in map iteration order; sort it (or collect keys and sort) before the order can escape", name(obj))
			}
		case *ast.CallExpr:
			checkOrderedWrite(pass, rng, n)
		}
		return true
	})
}

// checkOrderedWrite flags byte-emitting calls whose destination
// outlives the loop.
func checkOrderedWrite(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg := pkgNameOf(pass, sel.X); pkg != nil {
		switch pkg.Imported().Path() {
		case "fmt":
			argIdx, ok := fmtOrderedWriters[sel.Sel.Name]
			if !ok {
				return
			}
			if argIdx < 0 {
				pass.Reportf(call.Pos(),
					"fmt.%s inside a map range writes lines in map iteration order; range over sorted keys instead", sel.Sel.Name)
				return
			}
			if obj := rootObject(pass, call.Args[argIdx]); declaredOutside(obj, rng) {
				pass.Reportf(call.Pos(),
					"fmt.%s to %s inside a map range emits bytes in map iteration order; range over sorted keys instead", sel.Sel.Name, name(obj))
			}
		case "io":
			if sel.Sel.Name != "WriteString" || len(call.Args) == 0 {
				return
			}
			if obj := rootObject(pass, call.Args[0]); declaredOutside(obj, rng) {
				pass.Reportf(call.Pos(),
					"io.WriteString to %s inside a map range emits bytes in map iteration order; range over sorted keys instead", name(obj))
			}
		}
		return
	}
	if !writerMethods[sel.Sel.Name] {
		return
	}
	// A method write: only order-sensitive when the receiver outlives
	// the loop (a per-iteration strings.Builder is fine).
	if obj := rootObject(pass, sel.X); declaredOutside(obj, rng) {
		pass.Reportf(call.Pos(),
			"%s.%s inside a map range emits bytes in map iteration order; range over sorted keys instead", name(obj), sel.Sel.Name)
	}
}

// sortedAfter reports whether obj is handed to a sort/slices ordering
// call positioned after the range statement, i.e. the collection half
// of the sorted-keys idiom.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgNameOf(pass, sel.X)
		if pkg == nil {
			return true
		}
		if p := pkg.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// pkgNameOf returns the *types.PkgName if e is a package identifier.
func pkgNameOf(pass *analysis.Pass, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pkg, _ := pass.TypesInfo.Uses[id].(*types.PkgName)
	return pkg
}

// rootObject resolves the leftmost identifier of an lvalue-ish
// expression (x, x.f, x[i], *x, &x ...) to its object.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement's span. A nil or position-less object (package-level
// from another file, os.Stdout, a dotted import) counts as outside —
// conservative in the flagging direction.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	if obj == nil {
		return true
	}
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return false // a package qualifier is not a destination value
	}
	pos := obj.Pos()
	if !pos.IsValid() {
		return true
	}
	return pos < rng.Pos() || pos > rng.End()
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func name(obj types.Object) string {
	if obj == nil {
		return "a value"
	}
	return obj.Name()
}
