package maporderflow_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/maporderflow"
)

func TestMapOrderFlow(t *testing.T) {
	analysistest.Run(t, "testdata", maporderflow.Analyzer, "a")
}
