// Package a is the maporderflow fixture: map ranges whose iteration
// order escapes into order-sensitive sinks, next to the approved
// sorted-keys idioms that must stay quiet.
package a

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
)

// floatAccumulation reproduces the class of pre-PR-1 bug that broke
// byte-identical Reports at parallel=1 vs 8: Eq. 5-style float sums
// walked in map order.
func floatAccumulation(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside a map range`
	}
	return sum
}

// intAccumulation is order-independent (integer addition is
// associative) and must not be flagged.
func intAccumulation(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// escapingAppend builds a caller-visible slice in map order.
func escapingAppend(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out inside a map range`
	}
	return out
}

// sortedKeysIdiom is the approved fix: collect keys, sort, then range
// the slice. The collection append is recognized and not flagged.
func sortedKeysIdiom(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// slicesSortIdiom covers the slices-package spelling of the idiom.
func slicesSortIdiom(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// writerInOrder emits report bytes in map order.
func writerInOrder(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s,%v\n", k, v) // want `fmt\.Fprintf to w inside a map range`
	}
}

// stdoutInOrder prints in map order.
func stdoutInOrder(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside a map range`
	}
}

// builderAcrossIterations accumulates text in map order.
func builderAcrossIterations(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside a map range`
	}
	return b.String()
}

// perIterationBuilder is scoped to one key: no cross-iteration order
// escapes, so it must not be flagged.
func perIterationBuilder(m map[string][]string, cell func(string) string) map[string]string {
	out := make(map[string]string, len(m))
	for k, parts := range m {
		var b strings.Builder
		for _, p := range parts {
			b.WriteString(cell(p))
		}
		out[k] = b.String()
	}
	return out
}

// allowEscapeHatch exercises //cellqos:allow with a justification.
func allowEscapeHatch(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //cellqos:allow maporderflow fixture: result is compared with a tolerance
	}
	return sum
}
