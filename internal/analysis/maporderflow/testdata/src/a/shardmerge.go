package a

import "sort"

// This fixture models the sharded kernel's barrier merge
// (internal/sim/shard): per-shard outboxes of timestamped messages
// merged into one delivery sequence. The merge IS the determinism
// boundary — if messages reach the receiving heaps in map order, the
// cross-shard event order (and with it every golden Report) varies run
// to run.

type msg struct {
	at  float64
	key uint64
}

// mergeUnordered drains a map of per-shard outboxes straight into the
// delivery slice: the messages arrive in map order, so same-time
// messages from different shards fire in random order.
func mergeUnordered(outboxes map[int][]msg) []msg {
	var delivery []msg
	for _, box := range outboxes {
		for _, m := range box {
			delivery = append(delivery, m) // want `append to delivery inside a map range`
		}
	}
	return delivery
}

// mergeByShardID is the approved idiom: collect the shard IDs, sort
// them, then drain the outboxes in shard order and order the combined
// sequence by (at, key). Nothing here may be flagged.
func mergeByShardID(outboxes map[int][]msg) []msg {
	shards := make([]int, 0, len(outboxes))
	for s := range outboxes {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var delivery []msg
	for _, s := range shards {
		delivery = append(delivery, outboxes[s]...)
	}
	sort.SliceStable(delivery, func(i, j int) bool {
		if delivery[i].at != delivery[j].at {
			return delivery[i].at < delivery[j].at
		}
		return delivery[i].key < delivery[j].key
	})
	return delivery
}
