package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"cellqos/internal/analysis"
)

// typecheck parses and type-checks one file as a synthetic package and
// wraps it in a Pass (no Report hook — flow never reports).
func typecheck(t *testing.T, path, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

func funcNamed(t *testing.T, pass *analysis.Pass, name string) *types.Func {
	t.Helper()
	fn, ok := pass.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in test package", name)
	}
	return fn
}

func TestIndexAndReachable(t *testing.T) {
	pass := typecheck(t, "p", `package p

type widget struct{}

func (w *widget) spin() { helper() }

func root()    { mid(); skipped() }
func mid()     { leaf() }
func leaf()    {}
func skipped() { leaf() }
func helper()  {}
func orphan()  {}
`)
	ix := NewIndex(pass)
	root := funcNamed(t, pass, "root")
	if ix.Decl(root) == nil {
		t.Fatal("Decl(root) = nil")
	}

	names := func(fns []*types.Func) []string {
		var out []string
		for _, fn := range fns {
			out = append(out, fn.Name())
		}
		return out
	}

	all := names(ix.Reachable([]*types.Func{root}, nil))
	if got, want := len(all), 4; got != want {
		t.Fatalf("Reachable = %v, want root,mid,skipped,leaf", all)
	}
	if all[0] != "root" || all[1] != "mid" || all[2] != "skipped" || all[3] != "leaf" {
		t.Errorf("Reachable order = %v, want BFS discovery order", all)
	}

	filtered := names(ix.Reachable([]*types.Func{root}, func(fn *types.Func) bool {
		return fn.Name() != "skipped"
	}))
	for _, n := range filtered {
		if n == "skipped" {
			t.Errorf("follow filter did not prune: %v", filtered)
		}
	}
	if len(filtered) != 3 { // root, mid, leaf
		t.Errorf("filtered Reachable = %v, want root,mid,leaf", filtered)
	}
}

func TestMethodsOfAndReceiverBase(t *testing.T) {
	pass := typecheck(t, "p", `package p

type widget struct{}

func (w *widget) Spin() {}
func (w widget) Stop()  {}
func free()             {}
`)
	ix := NewIndex(pass)
	named := pass.Pkg.Scope().Lookup("widget").(*types.TypeName).Type().(*types.Named)
	methods := ix.MethodsOf(named)
	if len(methods) != 2 || methods["Spin"] == nil || methods["Stop"] == nil {
		t.Errorf("MethodsOf(widget) = %v, want Spin and Stop", methods)
	}
	if ReceiverBase(funcNamed(t, pass, "free")) != nil {
		t.Error("ReceiverBase(free) != nil for a plain function")
	}
}

func TestSourcesAndResolve(t *testing.T) {
	pass := typecheck(t, "p", `package p

func f(now float64) float64 {
	lat := 0.25
	at := now + lat
	mixed := 1.0
	mixed = 2.0
	return at + mixed
}
`)
	ix := NewIndex(pass)
	fd := ix.Decl(funcNamed(t, pass, "f"))
	src := Sources(pass.TypesInfo, fd.Body)

	// Find the `at + mixed` return expression's operands.
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	sum := ret.Results[0].(*ast.BinaryExpr)

	// `at` has one source: it resolves to `now + lat`.
	resolved := Resolve(src, pass.TypesInfo, sum.X, 4)
	bin, ok := resolved.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "+" {
		t.Fatalf("Resolve(at) = %T %v, want the now+lat binary expr", resolved, resolved)
	}
	// `mixed` has two sources: it resolves to itself.
	if got := Resolve(src, pass.TypesInfo, sum.Y, 4); got != sum.Y {
		t.Errorf("Resolve(mixed) = %v, want the identifier itself (two sources)", got)
	}
}

func TestSelectorClassification(t *testing.T) {
	pass := typecheck(t, "p", `package p

import (
	"math/rand/v2"
	"time"
)

func f() {
	_ = time.Now()
	_ = time.Until(time.Time{})
	_ = rand.Float64()
	r := rand.New(rand.NewPCG(1, 2))
	_ = r.Float64()
}
`)
	type hit struct {
		wall, rand string
	}
	var hits []hit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var h hit
			if name, ok := WallClock(pass.TypesInfo, sel); ok {
				h.wall = name
			}
			if kind, ok := GlobalRand(pass.TypesInfo, sel); ok {
				h.rand = kind
			}
			if h != (hit{}) {
				hits = append(hits, h)
			}
			return true
		})
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want exactly time.Now and global rand.Float64", hits)
	}
	if hits[0].wall != "time.Now" {
		t.Errorf("hits[0] = %v, want time.Now (time.Until is not a wall read)", hits[0])
	}
	if hits[1].rand != "Float64" {
		t.Errorf("hits[1] = %v, want global Float64 (seeded r.Float64 exempt)", hits[1])
	}
}

func TestLookupInterfaceAndImplementations(t *testing.T) {
	pass := typecheck(t, "fixture/internal/core", `package core

type Decider interface {
	Decide() bool
}

type yes struct{}
func (yes) Decide() bool { return true }

type ptrYes struct{}
func (*ptrYes) Decide() bool { return true }

type no struct{}
`)
	iface := LookupInterface(pass, "internal/core", "Decider")
	if iface == nil {
		t.Fatal("LookupInterface failed on a path-suffix match")
	}
	impls := Implementations(pass, iface)
	if len(impls) != 2 || impls[0].Obj().Name() != "ptrYes" || impls[1].Obj().Name() != "yes" {
		t.Errorf("Implementations = %v, want ptrYes,yes in name order", impls)
	}
	if !Implements(impls[0], iface) {
		t.Error("Implements(ptrYes) = false, pointer receiver should satisfy")
	}
}

func TestConstStrings(t *testing.T) {
	pass := typecheck(t, "p", `package p

const checkpointFile = "checkpoint.cqsc"

type ck struct{}

func (ck) CurrentPath() string { return "" }

func f(c ck) []string {
	return []string{checkpointFile + ".tmp", c.CurrentPath()}
}
`)
	ix := NewIndex(pass)
	fd := ix.Decl(funcNamed(t, pass, "f"))
	var lit ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CompositeLit); ok {
			lit = c
		}
		return true
	})
	got := map[string]bool{}
	for _, s := range ConstStrings(pass.TypesInfo, lit) {
		got[s] = true
	}
	for _, want := range []string{"checkpoint.cqsc", ".tmp", "currentpath", "checkpointfile"} {
		if !got[want] {
			t.Errorf("ConstStrings missing %q (got %v)", want, got)
		}
	}
}
