// Package flow is the shared dataflow and callgraph helper layer under
// the cellqos-vet analyzers. The PR-5 suite grew five analyzers that
// each re-implemented the same ad-hoc walks — "find the declaration of
// this function", "what does this identifier hold", "is this selector
// time.Now" — with slightly different bugs. This package centralizes
// the three facilities every contract analyzer needs:
//
//   - a function index (declaration lookup, receiver-method tables,
//     static callee resolution, intra-package reachability), so checks
//     like "no wall clock anywhere on the decision path" follow calls
//     instead of inspecting one body;
//   - intra-procedural value tracking (Sources/Resolve), a deliberately
//     simple single-assignment substitution over go/types objects —
//     enough to prove facts like "this `at` argument is now+latency"
//     without an SSA package the hermetic build cannot import;
//   - selector classification (wall clock, global entropy, interface
//     lookup by package-path suffix), shared with nodeterm so the
//     entropy tables exist exactly once.
//
// Everything here is intra-package and intra-procedural by design: the
// analyzers trade whole-program precision for byte-stable, dependency-
// free checks that run per package under the vettool protocol.
package flow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"cellqos/internal/analysis"
)

// Index is the per-pass function table: every function and method
// declared in the package, addressable by its types.Func object.
type Index struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	order []*types.Func // source order, for deterministic iteration
}

// NewIndex builds the function index for one pass.
func NewIndex(pass *analysis.Pass) *Index {
	ix := &Index{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ix.decls[obj] = fd
			ix.order = append(ix.order, obj)
		}
	}
	return ix
}

// Decl returns the declaration of fn, or nil when fn is not declared in
// this package (imported, interface method, or synthetic).
func (ix *Index) Decl(fn *types.Func) *ast.FuncDecl { return ix.decls[fn] }

// MethodsOf returns the methods declared in this package whose receiver
// base type is named, keyed by method name.
func (ix *Index) MethodsOf(named *types.Named) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, obj := range ix.order {
		fd := ix.decls[obj]
		if fd.Recv == nil {
			continue
		}
		if ReceiverBase(obj) == named.Obj() {
			out[fd.Name.Name] = fd
		}
	}
	return out
}

// ReceiverBase returns the *types.TypeName of fn's receiver base type
// (through one pointer), or nil for plain functions.
func ReceiverBase(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// Callee statically resolves the function or method a call invokes:
// a plain identifier, a package-qualified selector, or a method value
// selection. Calls through function-typed variables, interfaces with no
// static receiver, and built-ins resolve to nil.
func (ix *Index) Callee(call *ast.CallExpr) *types.Func {
	return Callee(ix.pass.TypesInfo, call)
}

// Callee is Index.Callee without an index: static callee resolution
// from type information alone.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Reachable computes the set of package-local functions reachable from
// roots through static calls, expanding only into callees for which
// follow returns true (follow == nil follows every package-local
// callee). Roots are included. The result preserves discovery order —
// breadth-first from the roots in the order given — so analyzers that
// iterate it report deterministically.
func (ix *Index) Reachable(roots []*types.Func, follow func(*types.Func) bool) []*types.Func {
	seen := map[*types.Func]bool{}
	var order, frontier []*types.Func
	push := func(fn *types.Func) {
		if fn == nil || seen[fn] || ix.decls[fn] == nil {
			return
		}
		seen[fn] = true
		order = append(order, fn)
		frontier = append(frontier, fn)
	}
	for _, r := range roots {
		push(r)
	}
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		ast.Inspect(ix.decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ix.Callee(call)
			if callee == nil || ix.decls[callee] == nil {
				return true
			}
			if follow == nil || follow(callee) {
				push(callee)
			}
			return true
		})
	}
	return order
}

// ---------------------------------------------------------------------
// Intra-procedural value tracking.

// Sources maps every object assigned within root (a function body or
// any subtree) to the expressions assigned to it, in source order.
// Tuple assignments from a single call (v, ok := f()) record the call
// for every left-hand side, so callers can at least recognize the
// producing call; positional multi-assign (a, b = x, y) records each
// side's own expression.
func Sources(info *types.Info, root ast.Node) map[types.Object][]ast.Expr {
	src := map[types.Object][]ast.Expr{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		src[obj] = append(src[obj], rhs)
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch {
			case len(n.Lhs) == len(n.Rhs):
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			case len(n.Rhs) == 1:
				for _, lhs := range n.Lhs {
					record(lhs, n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			} else if len(n.Values) == 1 {
				for _, name := range n.Names {
					record(name, n.Values[0])
				}
			}
		}
		return true
	})
	return src
}

// Resolve follows e through single-assignment locals: an identifier
// with exactly one recorded source resolves to that source, repeatedly,
// up to depth substitutions. Identifiers with zero (parameters, package
// vars) or multiple sources resolve to themselves — the value is not
// provably any one expression.
func Resolve(src map[types.Object][]ast.Expr, info *types.Info, e ast.Expr, depth int) ast.Expr {
	for range depth {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return e
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		exprs := src[obj]
		if obj == nil || len(exprs) != 1 || exprs[0] == e {
			return e
		}
		e = exprs[0]
	}
	return e
}

// ---------------------------------------------------------------------
// Type and selector classification.

// PathMatches reports whether a package path is, or ends with, the
// given suffix ("internal/core" matches both "cellqos/internal/core"
// and an analysistest fixture re-rooted at the same suffix).
func PathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// LookupInterface finds the named interface type in the pass's own
// package or any direct import whose path matches the suffix. Returns
// nil when no such interface is visible — the caller's check simply
// does not apply to this package.
func LookupInterface(pass *analysis.Pass, pathSuffix, name string) *types.Interface {
	candidates := []*types.Package{pass.Pkg}
	candidates = append(candidates, pass.Pkg.Imports()...)
	for _, pkg := range candidates {
		if pkg == nil || !PathMatches(pkg.Path(), pathSuffix) {
			continue
		}
		obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// Implementations returns the package-level named types declared in the
// pass's package that implement iface (directly or through a pointer
// receiver), in declaration-name order.
func Implementations(pass *analysis.Pass, iface *types.Interface) []*types.Named {
	var out []*types.Named
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, named)
		}
	}
	return out
}

// Implements reports whether t or *t satisfies iface.
func Implements(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// PkgSelector decomposes a package-qualified selector (pkg.Name) into
// the imported package path and selected name. Field and method
// selections on values report ok=false.
func PkgSelector(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pkgName, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// WallClock classifies a selector as a direct wall-clock read:
// time.Now or time.Since. The returned name is the dotted form for
// diagnostics.
func WallClock(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	path, name, ok := PkgSelector(info, sel)
	if !ok || path != "time" {
		return "", false
	}
	if name == "Now" || name == "Since" {
		return "time." + name, true
	}
	return "", false
}

// globalRandV2 lists the math/rand/v2 top-level functions that draw
// from the shared, randomly-seeded global source. Seeded generators
// (rand.New(rand.NewPCG(seed, stream))) are the approved idiom and are
// not classified.
var globalRandV2 = map[string]bool{
	"Int": true, "Int32": true, "Int64": true,
	"IntN": true, "Int32N": true, "Int64N": true, "N": true,
	"Uint": true, "Uint32": true, "Uint64": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true,
}

// GlobalRand classifies a selector as ambient entropy: any math/rand
// (v1) package-level reference, or a math/rand/v2 function on the
// process-global source. The returned kind distinguishes the two for
// diagnostics: "v1" or the v2 function name.
func GlobalRand(info *types.Info, sel *ast.SelectorExpr) (kind string, ok bool) {
	path, name, selOK := PkgSelector(info, sel)
	if !selOK {
		return "", false
	}
	switch path {
	case "math/rand":
		return "v1", true
	case "math/rand/v2":
		if globalRandV2[name] {
			return name, true
		}
	}
	return "", false
}

// MethodCall returns the selection of a method-value call (x.M(...))
// along with the method name; ok=false for anything else.
func MethodCall(info *types.Info, call *ast.CallExpr) (*types.Selection, string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selection, sel.Sel.Name, true
}

// ReceiverNamed reports whether a method selection's receiver base type
// is the named type in a package whose path matches the suffix.
func ReceiverNamed(selection *types.Selection, pathSuffix, typeName string) bool {
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && PathMatches(obj.Pkg().Path(), pathSuffix)
}

// ConstStrings collects every string that could name what an expression
// refers to: string literal values, constant string values, identifier
// and selector names, and called method names — the raw material for
// "does this path expression mention a checkpoint file" style checks.
// All strings are lower-cased.
func ConstStrings(info *types.Info, e ast.Expr) []string {
	var out []string
	add := func(s string) {
		if s != "" {
			out = append(out, strings.ToLower(s))
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			add(n.Name)
			if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				add(constant.StringVal(tv.Value))
			}
		case *ast.SelectorExpr:
			add(n.Sel.Name)
		case *ast.BasicLit:
			if n.Kind == token.STRING {
				if v, err := strconv.Unquote(n.Value); err == nil {
					add(v)
				}
			}
		}
		return true
	})
	return out
}
