package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Fingerprint identifies one finding stably across commits. It hashes
// the analyzer, category, slash-separated root-relative file path,
// message, and the finding's occurrence index among identical
// (analyzer, category, file, message) tuples — deliberately NOT the
// line or column, so gofmt-only moves and unrelated edits above the
// finding keep the fingerprint stable. The occurrence index keeps two
// textually identical findings in one file distinct while staying
// order-stable (findings arrive position-sorted from RunAnalyzers).
func Fingerprint(analyzer, category, relFile, message string, occurrence int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%d", analyzer, category, relFile, message, occurrence)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// RelFile normalizes a finding's file path for fingerprinting: root-
// relative when possible, always slash-separated.
func RelFile(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// Fingerprints computes the fingerprint for each finding in a
// position-sorted slice, resolving occurrence indices. The result is
// index-aligned with findings.
func Fingerprints(findings []Finding, root string) []string {
	seen := map[string]int{}
	out := make([]string, len(findings))
	for i, f := range findings {
		key := f.Analyzer + "\x00" + f.Category + "\x00" + RelFile(root, f.Posn.Filename) + "\x00" + f.Message
		occ := seen[key]
		seen[key] = occ + 1
		out[i] = Fingerprint(f.Analyzer, f.Category, RelFile(root, f.Posn.Filename), f.Message, occ)
	}
	return out
}

// A BaselineEntry records one accepted finding. Fingerprint alone
// decides matching; the remaining fields exist so humans reviewing
// lint-baseline.json can tell what each entry excuses.
type BaselineEntry struct {
	Fingerprint string `json:"fingerprint"`
	Analyzer    string `json:"analyzer"`
	Category    string `json:"category,omitempty"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Message     string `json:"message"`
}

// A Baseline is the checked-in ledger of known findings that
// `cellqos-vet -baseline` suppresses. New findings (fingerprints not
// in the ledger) still fail the run, so the gate ratchets: the debt
// can shrink but never silently grow.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an error — an
// empty ledger must be an explicit, checked-in decision.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// NewBaseline builds a ledger accepting exactly the given findings.
func NewBaseline(findings []Finding, root string) *Baseline {
	fps := Fingerprints(findings, root)
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for i, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Fingerprint: fps[i],
			Analyzer:    f.Analyzer,
			Category:    f.Category,
			File:        RelFile(root, f.Posn.Filename),
			Line:        f.Posn.Line,
			Message:     f.Message,
		})
	}
	return b
}

// Write serializes the baseline deterministically (entries sorted by
// file, line, fingerprint) with a trailing newline.
func (b *Baseline) Write(path string) error {
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		return a.Fingerprint < c.Fingerprint
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into new (not in the baseline) and known, and
// additionally returns the stale ledger entries whose finding no
// longer occurs — candidates for deletion via -update-baseline.
func (b *Baseline) Filter(findings []Finding, root string) (fresh, known []Finding, stale []BaselineEntry) {
	accepted := map[string]bool{}
	for _, e := range b.Findings {
		accepted[e.Fingerprint] = true
	}
	fps := Fingerprints(findings, root)
	seen := map[string]bool{}
	for i, f := range findings {
		if accepted[fps[i]] {
			known = append(known, f)
			seen[fps[i]] = true
		} else {
			fresh = append(fresh, f)
		}
	}
	for _, e := range b.Findings {
		if !seen[e.Fingerprint] {
			stale = append(stale, e)
		}
	}
	return fresh, known, stale
}
