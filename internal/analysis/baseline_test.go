package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func mkFinding(analyzer, category, file string, line int, msg string) Finding {
	return Finding{
		Analyzer: analyzer,
		Category: category,
		Posn:     token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestFingerprintsStableAcrossLineMoves(t *testing.T) {
	root := "/repo"
	before := []Finding{mkFinding("nodeterm", "wallclock", "/repo/a/b.go", 10, "time.Now outside internal/clock")}
	after := []Finding{mkFinding("nodeterm", "wallclock", "/repo/a/b.go", 42, "time.Now outside internal/clock")}
	if Fingerprints(before, root)[0] != Fingerprints(after, root)[0] {
		t.Error("fingerprint changed when only the line number moved")
	}
}

func TestFingerprintsDistinguishOccurrences(t *testing.T) {
	root := "/repo"
	fs := []Finding{
		mkFinding("nodeterm", "wallclock", "/repo/a/b.go", 10, "same message"),
		mkFinding("nodeterm", "wallclock", "/repo/a/b.go", 20, "same message"),
		mkFinding("nodeterm", "wallclock", "/repo/a/c.go", 10, "same message"),
	}
	fps := Fingerprints(fs, root)
	if fps[0] == fps[1] {
		t.Error("two identical findings in one file share a fingerprint")
	}
	if fps[0] == fps[2] {
		t.Error("findings in different files share a fingerprint")
	}
}

func TestFingerprintsChangeWithCategory(t *testing.T) {
	root := "/repo"
	a := Fingerprints([]Finding{mkFinding("shardsafe", "lookahead", "/repo/x.go", 1, "m")}, root)[0]
	b := Fingerprints([]Finding{mkFinding("shardsafe", "window", "/repo/x.go", 1, "m")}, root)[0]
	if a == b {
		t.Error("category does not influence the fingerprint")
	}
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "lint-baseline.json")
	old := mkFinding("crashorder", "writefile", filepath.Join(root, "svc.go"), 5, "os.WriteFile onto checkpoint path")
	if err := NewBaseline([]Finding{old}, root).Write(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 || b.Findings[0].Analyzer != "crashorder" || b.Findings[0].File != "svc.go" {
		t.Fatalf("round-tripped baseline = %+v", b.Findings)
	}

	fresh := mkFinding("shardsafe", "lookahead", filepath.Join(root, "net.go"), 9, "Send at below now+lookahead")
	newF, known, stale := b.Filter([]Finding{old, fresh}, root)
	if len(known) != 1 || known[0].Analyzer != "crashorder" {
		t.Errorf("known = %v, want the baselined crashorder finding", known)
	}
	if len(newF) != 1 || newF[0].Analyzer != "shardsafe" {
		t.Errorf("fresh = %v, want the shardsafe finding", newF)
	}
	if len(stale) != 0 {
		t.Errorf("stale = %v, want none", stale)
	}

	// The old finding got fixed: its ledger entry is now stale.
	newF, known, stale = b.Filter([]Finding{fresh}, root)
	if len(newF) != 1 || len(known) != 0 {
		t.Errorf("fresh=%v known=%v after fix", newF, known)
	}
	if len(stale) != 1 || stale[0].Analyzer != "crashorder" {
		t.Errorf("stale = %v, want the fixed crashorder entry", stale)
	}
}

func TestLoadBaselineRejectsUnknownVersion(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "bad.json")
	if err := os.WriteFile(path, []byte(`{"version":2,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("LoadBaseline accepted an unsupported version")
	}
}
