package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	// Path is the import path with any test-variant suffix stripped
	// (the path go/types reports for the package).
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns below dir with
// `go list -export -json -deps`, then parses and typechecks each
// matched module package from source, resolving every dependency
// (standard library included) through the gc export data the go
// command just produced. It is fully offline: no module proxy, no
// x/tools — only the baked-in toolchain and its build cache.
//
// With tests set, `go list -test` is used and each package's
// test-augmented variant replaces the plain variant (its file set is a
// superset), so _test.go helpers are analyzed too; external _test
// packages are loaded as their own packages. Synthetic ".test" main
// packages are skipped.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-export", "-json", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exports := map[string]string{} // full ImportPath (variant suffix kept) → export file
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		q := p
		listed = append(listed, &q)
	}

	// Select the packages to analyze: the pattern matches (!DepOnly),
	// minus synthetic test-binary mains, and with each test-augmented
	// variant shadowing its plain sibling so files are analyzed once.
	byClean := map[string]*listPackage{}
	var order []string
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.CgoFiles) > 0 {
			continue
		}
		clean := cleanImportPath(p.ImportPath)
		if strings.HasSuffix(clean, ".test") {
			continue // generated _testmain.go package
		}
		prev, seen := byClean[clean]
		if !seen {
			order = append(order, clean)
		}
		if !seen || (p.ForTest != "" && prev.ForTest == "") {
			byClean[clean] = p
		}
	}

	var pkgs []*Package
	for _, clean := range order {
		pkg, err := typecheck(byClean[clean], clean, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// cleanImportPath strips go list's test-variant suffix:
// "a/b [a/b.test]" → "a/b".
func cleanImportPath(ip string) string {
	if i := strings.Index(ip, " ["); i >= 0 {
		return ip[:i]
	}
	return ip
}

// typecheck parses one listed package's files and typechecks them
// against gc export data for every import.
func typecheck(p *listPackage, path string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", full, err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(ipath string) (io.ReadCloser, error) {
		if real, ok := p.ImportMap[ipath]; ok {
			ipath = real
		}
		exp, ok := exports[ipath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (importer of %q)", ipath, path)
		}
		return os.Open(exp)
	})
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}
