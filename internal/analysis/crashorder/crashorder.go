// Package crashorder machine-enforces the crash-ordered checkpoint
// sequence in internal/service (DESIGN.md §15): a live checkpoint
// artifact is only ever replaced by temp file → write → fsync → rename
// → directory fsync. Two regressions are flagged:
//
//   - writefile: os.WriteFile aimed at a checkpoint path replaces the
//     live artifact in place — a crash mid-write leaves a torn file
//     under the current name, which is exactly what the rename
//     protocol exists to rule out. Tests that corrupt checkpoints on
//     purpose annotate the site with //cellqos:allow crashorder;
//   - order: an os.Rename committing a temp file over a live
//     checkpoint name must have a Sync call before it in the same
//     function (the temp-file fsync — without it the rename can commit
//     a file whose data blocks never hit disk) and a Sync call after
//     it (the directory fsync — without it a power cut can forget the
//     rename itself).
//
// Matching is intra-procedural by design: path arguments are resolved
// through local single-assignment substitution and classified by the
// strings they mention (checkpoint/.cqsc/CurrentPath), so the analyzer
// stays byte-stable and dependency-free. The analyzer only runs on
// internal/service packages (including their external test packages).
package crashorder

import (
	"go/ast"
	"go/types"
	"strings"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/flow"
)

// Analyzer enforces the tmp→fsync→rename→dir-sync checkpoint protocol.
var Analyzer = &analysis.Analyzer{
	Name: "crashorder",
	Doc: "flag os.WriteFile onto checkpoint paths and os.Rename commits over a " +
		"live checkpoint that are not preceded by a temp-file Sync and followed " +
		"by a directory Sync in the same function (internal/service only)",
	Run: run,
}

const servicePath = "internal/service"

func run(pass *analysis.Pass) (any, error) {
	if !inService(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// inService matches the service package and its external test package.
func inService(path string) bool {
	return flow.PathMatches(strings.TrimSuffix(path, "_test"), servicePath)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	src := flow.Sources(pass.TypesInfo, fd)

	// Collect every Sync() call position in this function first: the
	// order check is positional within the function body.
	var syncs []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
			syncs = append(syncs, call)
		}
		return true
	})
	syncBefore := func(n ast.Node) bool {
		for _, s := range syncs {
			if s.Pos() < n.Pos() {
				return true
			}
		}
		return false
	}
	syncAfter := func(n ast.Node) bool {
		for _, s := range syncs {
			if s.Pos() > n.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := osCall(pass, call)
		if !ok {
			return true
		}
		switch {
		case name == "WriteFile" && len(call.Args) >= 1:
			if checkpointPathy(pass, src, call.Args[0]) {
				pass.ReportRangef(call, "writefile",
					"os.WriteFile onto a checkpoint path replaces the live artifact in place: a crash mid-write leaves a torn file — go through Checkpointer.Save's tmp→fsync→rename sequence")
			}
		case name == "Rename" && len(call.Args) >= 2:
			if !commitRename(pass, src, call) {
				return true
			}
			if !syncBefore(call) {
				pass.ReportRangef(call, "order",
					"checkpoint commit rename is not preceded by a Sync in this function: without the temp-file fsync the rename can commit data blocks that never reached disk")
			}
			if !syncAfter(call) {
				pass.ReportRangef(call, "order",
					"checkpoint commit rename is not followed by a Sync in this function: without the directory fsync a power cut can forget the rename itself")
			}
		}
		return true
	})
}

// osCall matches os.<Name>(...) package-qualified calls.
func osCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	pkgPath, name, ok := flow.PkgSelector(pass.TypesInfo, sel)
	if !ok || pkgPath != "os" {
		return "", false
	}
	return name, true
}

// commitRename recognizes Rename(tmp-like, live-checkpoint): the
// protocol step the order check guards.
func commitRename(pass *analysis.Pass, src map[types.Object][]ast.Expr, call *ast.CallExpr) bool {
	oldNames := gather(pass, src, call.Args[0])
	newNames := gather(pass, src, call.Args[1])
	return mentionsAny(oldNames, "tmp") && liveCheckpoint(newNames)
}

// checkpointPathy reports whether a path expression mentions the
// checkpoint artifacts by literal, constant, or accessor name.
func checkpointPathy(pass *analysis.Pass, src map[types.Object][]ast.Expr, e ast.Expr) bool {
	names := gather(pass, src, e)
	return mentionsAny(names, "checkpoint", ".cqsc", "currentpath")
}

// liveCheckpoint: checkpoint-pathy but neither the temp nor the rotated
// backup name.
func liveCheckpoint(names []string) bool {
	if !mentionsAny(names, "checkpoint", ".cqsc") {
		return false
	}
	return !mentionsAny(names, "tmp", "prev")
}

// gather resolves e through locals and collects the strings it
// mentions.
func gather(pass *analysis.Pass, src map[types.Object][]ast.Expr, e ast.Expr) []string {
	return flow.ConstStrings(pass.TypesInfo, flow.Resolve(src, pass.TypesInfo, e, 8))
}

func mentionsAny(names []string, subs ...string) bool {
	for _, n := range names {
		for _, s := range subs {
			if strings.Contains(n, s) {
				return true
			}
		}
	}
	return false
}
