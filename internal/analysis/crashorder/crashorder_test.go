package crashorder_test

import (
	"testing"

	"cellqos/internal/analysis/analysistest"
	"cellqos/internal/analysis/crashorder"
)

func TestCrashOrder(t *testing.T) {
	analysistest.Run(t, "testdata", crashorder.Analyzer, "cellqos/internal/service")
}

// TestOutOfScopeSilent: the same shapes outside internal/service are
// none of this analyzer's business.
func TestOutOfScopeSilent(t *testing.T) {
	analysistest.Run(t, "testdata", crashorder.Analyzer, "cellqos/internal/other")
}
