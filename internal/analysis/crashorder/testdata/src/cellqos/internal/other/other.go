// Package other holds the same artifact-clobbering shapes outside
// internal/service: the crashorder analyzer must stay silent here.
package other

import "os"

// clobber would be a writefile finding inside internal/service.
func clobber(data []byte) error {
	return os.WriteFile("state/checkpoint.cqsc", data, 0o644)
}

// rawRename would be an order finding inside internal/service.
func rawRename() error {
	return os.Rename("state/checkpoint.cqsc.tmp", "state/checkpoint.cqsc")
}
