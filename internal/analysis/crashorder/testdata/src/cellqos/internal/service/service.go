// Package service is the crashorder fixture: the compliant
// tmp→fsync→rename→dir-sync checkpoint sequence next to each way of
// breaking it. The package path matters — the analyzer only activates
// under internal/service.
package service

import (
	"os"
	"path/filepath"
)

const (
	checkpointFile = "checkpoint.cqsc"
	checkpointPrev = "checkpoint.cqsc.prev"
	checkpointTmp  = "checkpoint.cqsc.tmp"
)

// saveOrdered is the real Checkpointer.Save shape: write+fsync the temp
// file, rotate, commit, fsync the directory. Fully compliant.
func saveOrdered(dir string, data []byte) error {
	tmp := filepath.Join(dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cur := filepath.Join(dir, checkpointFile)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(dir, checkpointPrev)); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// saveNoFsync commits a temp file that was never synced: the rename can
// land while the data blocks are still only in the page cache.
func saveNoFsync(dir string, data []byte) error {
	tmp := filepath.Join(dir, checkpointTmp)
	if err := writeRaw(tmp, data); err != nil {
		return err
	}
	cur := filepath.Join(dir, checkpointFile)
	if err := os.Rename(tmp, cur); err != nil { // want `checkpoint commit rename is not preceded by a Sync` `checkpoint commit rename is not followed by a Sync`
		return err
	}
	return nil
}

// saveReordered fsyncs the temp file after the commit: the protocol
// order inverted, both halves of the guarantee lost and regained in the
// wrong order. The rename sees no Sync before it.
func saveReordered(dir string, data []byte) error {
	tmp := filepath.Join(dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	cur := filepath.Join(dir, checkpointFile)
	if err := os.Rename(tmp, cur); err != nil { // want `checkpoint commit rename is not preceded by a Sync`
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeInPlace clobbers the live artifact directly.
func writeInPlace(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, checkpointFile), data, 0o644) // want `os.WriteFile onto a checkpoint path`
}

// pather mirrors the Checkpointer's path accessor.
type pather struct{ dir string }

func (p pather) CurrentPath() string { return filepath.Join(p.dir, checkpointFile) }

// writeViaAccessor clobbers the live artifact through the accessor —
// the shape a test corrupting checkpoints uses.
func writeViaAccessor(p pather, data []byte) error {
	return os.WriteFile(p.CurrentPath(), data, 0o644) // want `os.WriteFile onto a checkpoint path`
}

// writeExcused is the annotated deliberate corruption.
func writeExcused(p pather, data []byte) error {
	return os.WriteFile(p.CurrentPath(), data, 0o644) //cellqos:allow crashorder fixture: deliberate corruption to exercise the prev fallback
}

// writeUnrelated writes a non-checkpoint file: out of scope.
func writeUnrelated(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "metrics.json"), data, 0o644)
}

// renameUnrelated moves a log file: no checkpoint involved, no order
// obligation.
func renameUnrelated(dir string) error {
	return os.Rename(filepath.Join(dir, "a.log"), filepath.Join(dir, "b.log"))
}

// writeRaw exists so saveNoFsync's write happens out of line (the
// order check is intra-procedural on purpose).
func writeRaw(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
