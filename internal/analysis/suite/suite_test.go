package suite_test

import (
	"testing"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/suite"
)

// TestSuiteRegistry pins the analyzer set: nine analyzers, unique
// names, documented.
func TestSuiteRegistry(t *testing.T) {
	as := suite.Analyzers()
	if len(as) != 9 {
		t.Fatalf("suite has %d analyzers, want 9", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{
		"nodeterm", "maporderflow", "peervalue", "deprecated", "genepoch",
		"policycontract", "shardsafe", "crashorder", "allowstale",
	} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
}

// TestRepoSweepClean is the in-process twin of `make lint`: the whole
// module, test files included, must carry zero unsuppressed
// diagnostics from the nine analyzers. It keeps the invariant
// enforceable even where the vettool step is not wired up, and it
// exercises the export-data loader end to end (so a loader regression
// cannot hide behind a green fixture suite).
//
// Skipped under -short: the loader shells out to `go list -export`,
// which compiles the module on a cold build cache.
func TestRepoSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide sweep builds the module; skipped under -short")
	}
	pkgs, err := analysis.Load("../../..", true, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is dropping module packages", len(pkgs))
	}
	findings, err := analysis.RunAnalyzers(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed diagnostic: %s", f)
	}
}
