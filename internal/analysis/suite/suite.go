// Package suite registers the full cellqos-vet analyzer set. It is the
// single source of truth consumed by cmd/cellqos-vet (standalone and
// vettool modes) and by the repo-wide sweep test that keeps `make
// lint` green.
package suite

import (
	"cellqos/internal/analysis"
	"cellqos/internal/analysis/allowstale"
	"cellqos/internal/analysis/crashorder"
	"cellqos/internal/analysis/deprecated"
	"cellqos/internal/analysis/genepoch"
	"cellqos/internal/analysis/maporderflow"
	"cellqos/internal/analysis/nodeterm"
	"cellqos/internal/analysis/peervalue"
	"cellqos/internal/analysis/policycontract"
	"cellqos/internal/analysis/shardsafe"
)

// Analyzers returns the nine cellqos invariant analyzers in stable
// order. allowstale runs last by convention — it audits the
// //cellqos:allow ledger the others populate, though the driver
// enforces that ordering itself regardless of position here.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		crashorder.Analyzer,
		deprecated.Analyzer,
		genepoch.Analyzer,
		maporderflow.Analyzer,
		nodeterm.Analyzer,
		peervalue.Analyzer,
		policycontract.Analyzer,
		shardsafe.Analyzer,
		allowstale.Analyzer,
	}
}
