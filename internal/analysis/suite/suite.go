// Package suite registers the full cellqos-vet analyzer set. It is the
// single source of truth consumed by cmd/cellqos-vet (standalone and
// vettool modes) and by the repo-wide sweep test that keeps `make
// lint` green.
package suite

import (
	"cellqos/internal/analysis"
	"cellqos/internal/analysis/deprecated"
	"cellqos/internal/analysis/genepoch"
	"cellqos/internal/analysis/maporderflow"
	"cellqos/internal/analysis/nodeterm"
	"cellqos/internal/analysis/peervalue"
)

// Analyzers returns the five cellqos invariant analyzers in stable
// order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		deprecated.Analyzer,
		genepoch.Analyzer,
		maporderflow.Analyzer,
		nodeterm.Analyzer,
		peervalue.Analyzer,
	}
}
