// Package signaling implements the inter-BS communication of the paper's
// §2 (Fig. 1): the queries that bandwidth reservation and admission
// control need to send between base stations — Eq. 5 outgoing-reservation
// evaluations, status snapshots, B_r recomputations and T_soj,max
// lookups — as a small framed binary protocol that runs over any
// net.Conn (TCP in production, net.Pipe in tests).
//
// Two deployment shapes are supported, matching the paper's Fig. 1:
//
//   - full mesh: every pair of neighboring BSs keeps a direct connection
//     and a BS answers its neighbors' queries itself;
//   - star: every BS connects only to the Mobile Switching Center, which
//     relays messages between BSs (and would, in the currently-deployed
//     systems the paper describes, run the admission tests itself).
//
// The RemotePeers adapter implements core.Peers on top of either shape,
// so the same Engine logic drives both the in-process simulation
// (internal/cellnet) and a distributed deployment.
package signaling

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType identifies a protocol message. Responses set RespBit.
type MsgType uint8

// RespBit marks a message as a response to the request type it carries
// in its low bits.
const RespBit MsgType = 0x80

// Request types.
const (
	// MsgOutgoing asks the destination BS to evaluate Eq. 5 toward the
	// sender: the expected hand-off bandwidth into the sender's cell
	// within Test seconds. Response carries the value in F1.
	MsgOutgoing MsgType = iota + 1
	// MsgSnapshot asks for (used bandwidth, capacity, last B_r) without
	// recomputation. Response: U1, U2, F1.
	MsgSnapshot
	// MsgRecompute asks the destination BS to recompute its own B_r.
	// Response: U1 (used), U2 (capacity), F1 (fresh B_r).
	MsgRecompute
	// MsgMaxSojourn asks for the destination's current T_soj,max.
	// Response: F1.
	MsgMaxSojourn
	// MsgError is a response indicating the request failed; F1 is unused
	// and the U1 field carries an error code.
	MsgError = 0x7f
)

// Request reports whether t is a request type.
func (t MsgType) Request() bool { return t&RespBit == 0 && t != MsgError }

// Response returns the response type for a request.
func (t MsgType) Response() MsgType { return t | RespBit }

// String names the type.
func (t MsgType) String() string {
	resp := ""
	b := t
	if t&RespBit != 0 {
		resp = "-resp"
		b = t &^ RespBit
	}
	switch b {
	case MsgOutgoing:
		return "outgoing" + resp
	case MsgSnapshot:
		return "snapshot" + resp
	case MsgRecompute:
		return "recompute" + resp
	case MsgMaxSojourn:
		return "max-sojourn" + resp
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("MsgType(%#x)", uint8(t))
	}
}

// NodeID addresses a protocol participant: cell IDs for BSs, MSCNode for
// the switching center.
type NodeID uint32

// MSCNode is the reserved address of the Mobile Switching Center.
const MSCNode NodeID = 0xFFFFFFFF

// Message is one protocol frame. The fixed field set keeps the codec
// trivial; unused fields are zero.
type Message struct {
	Type MsgType
	Seq  uint32 // request/response correlation, per (From) origin
	From NodeID
	To   NodeID
	Now  float64 // sender's current time (simulation or wall)
	Test float64 // T_est for MsgOutgoing
	F1   float64 // primary float result
	U1   uint32  // used bandwidth / error code
	U2   uint32  // capacity
}

// frameSize is the wire size of an encoded message.
const frameSize = 1 + 4 + 4 + 4 + 8 + 8 + 8 + 4 + 4

// maxFrame guards against corrupt length prefixes in future variable-
// length versions; with fixed frames it documents the invariant.
const maxFrame = frameSize

// Encode writes the message to w in fixed-size big-endian framing.
func Encode(w io.Writer, m Message) error {
	var buf [frameSize]byte
	buf[0] = byte(m.Type)
	binary.BigEndian.PutUint32(buf[1:], m.Seq)
	binary.BigEndian.PutUint32(buf[5:], uint32(m.From))
	binary.BigEndian.PutUint32(buf[9:], uint32(m.To))
	binary.BigEndian.PutUint64(buf[13:], math.Float64bits(m.Now))
	binary.BigEndian.PutUint64(buf[21:], math.Float64bits(m.Test))
	binary.BigEndian.PutUint64(buf[29:], math.Float64bits(m.F1))
	binary.BigEndian.PutUint32(buf[37:], m.U1)
	binary.BigEndian.PutUint32(buf[41:], m.U2)
	_, err := w.Write(buf[:])
	return err
}

// Decode reads one message from r.
func Decode(r io.Reader) (Message, error) {
	var buf [frameSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Message{}, err
	}
	m := Message{
		Type: MsgType(buf[0]),
		Seq:  binary.BigEndian.Uint32(buf[1:]),
		From: NodeID(binary.BigEndian.Uint32(buf[5:])),
		To:   NodeID(binary.BigEndian.Uint32(buf[9:])),
		Now:  math.Float64frombits(binary.BigEndian.Uint64(buf[13:])),
		Test: math.Float64frombits(binary.BigEndian.Uint64(buf[21:])),
		F1:   math.Float64frombits(binary.BigEndian.Uint64(buf[29:])),
		U1:   binary.BigEndian.Uint32(buf[37:]),
		U2:   binary.BigEndian.Uint32(buf[41:]),
	}
	if m.Type == 0 {
		return Message{}, fmt.Errorf("signaling: zero message type")
	}
	return m, nil
}
