package signaling

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"cellqos/internal/core"
	"cellqos/internal/topology"
)

// BSNode hosts one cell's reservation engine and speaks the signaling
// protocol: it answers neighbors' queries against its engine and
// implements core.Peers for its own engine by querying neighbors over
// attached links (directly in a mesh, via the MSC in a star).
//
// The engine is guarded by the node's mutex (passed as core.Config.Lock),
// which the engine releases across remote fan-outs — so a neighbor's
// query arriving while this node waits on that neighbor cannot deadlock.
type BSNode struct {
	id     topology.CellID
	top    *topology.Topology
	mu     sync.Mutex // engine state lock (see core.Config.Lock)
	engine *core.Engine

	linkMu sync.Mutex
	links  map[NodeID]*Peer

	// remoteErrs counts failed peer calls answered with conservative
	// defaults (0 reservation / healthy snapshot).
	remoteErrs atomic.Uint64
}

// NewBSNode builds a node for cell id. The config's Degree and Lock are
// filled in from the topology and the node's own mutex.
func NewBSNode(id topology.CellID, top *topology.Topology, cfg core.Config) *BSNode {
	n := &BSNode{id: id, top: top, links: make(map[NodeID]*Peer)}
	cfg.Degree = top.Degree(id)
	cfg.Lock = &n.mu
	n.engine = core.NewEngine(cfg)
	return n
}

// ID returns the node's cell ID.
func (n *BSNode) ID() topology.CellID { return n.id }

// Engine exposes the node's engine (connection management, admission).
func (n *BSNode) Engine() *core.Engine { return n.engine }

// RemoteErrors returns the count of peer queries that failed and were
// substituted with conservative defaults.
func (n *BSNode) RemoteErrors() uint64 { return n.remoteErrs.Load() }

// Attach wires a connection to a remote node (a neighbor BS in a mesh,
// or the MSC in a star) and starts answering its queries. It returns the
// peer link, whose Stats count this link's traffic.
func (n *BSNode) Attach(remote NodeID, conn io.ReadWriteCloser) *Peer {
	p := NewPeer(conn, n.handle)
	n.linkMu.Lock()
	n.links[remote] = p
	n.linkMu.Unlock()
	return p
}

// Close tears down every link.
func (n *BSNode) Close() {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	for id, p := range n.links {
		p.Close()
		delete(n.links, id)
	}
}

// linkFor resolves the link that reaches cell nb: a direct mesh link if
// present, otherwise the MSC relay.
func (n *BSNode) linkFor(nb NodeID) *Peer {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if p, ok := n.links[nb]; ok {
		return p
	}
	return n.links[MSCNode]
}

// handle answers one incoming request against the local engine.
func (n *BSNode) handle(req Message) Message {
	switch req.Type {
	case MsgOutgoing:
		from := topology.CellID(req.From)
		toward, ok := n.top.LocalOf(n.id, from)
		if !ok {
			return Message{Type: MsgError, U1: 2}
		}
		return Message{F1: n.engine.OutgoingReservation(req.Now, toward, req.Test)}
	case MsgSnapshot:
		return Message{
			U1: uint32(n.engine.UsedBandwidth()),
			U2: uint32(n.engine.Capacity()),
			F1: n.engine.LastTargetReservation(),
		}
	case MsgRecompute:
		br := n.engine.ComputeTargetReservation(req.Now, n.Peers())
		return Message{
			U1: uint32(n.engine.UsedBandwidth()),
			U2: uint32(n.engine.Capacity()),
			F1: br,
		}
	case MsgMaxSojourn:
		return Message{F1: n.engine.MaxSojourn(req.Now)}
	default:
		return Message{Type: MsgError, U1: 3}
	}
}

// Peers returns the node's remote view of its neighbors, for passing to
// Engine.AdmitNew / ComputeTargetReservation / NoteHandOffArrival.
func (n *BSNode) Peers() core.Peers { return remotePeers{n} }

// remotePeers implements core.Peers over signaling links.
type remotePeers struct{ n *BSNode }

func (r remotePeers) call(li topology.LocalIndex, req Message) (Message, bool) {
	nb, ok := r.n.top.FromLocal(r.n.id, li)
	if !ok {
		panic(fmt.Sprintf("signaling: bad local index %d at cell %d", li, r.n.id))
	}
	req.From = NodeID(r.n.id)
	req.To = NodeID(nb)
	link := r.n.linkFor(req.To)
	if link == nil {
		r.n.remoteErrs.Add(1)
		return Message{}, false
	}
	resp, err := link.Call(req)
	if err != nil {
		r.n.remoteErrs.Add(1)
		return Message{}, false
	}
	return resp, true
}

// OutgoingReservation implements core.Peers; an unreachable neighbor
// contributes no reservation.
func (r remotePeers) OutgoingReservation(li topology.LocalIndex, now, test float64) float64 {
	resp, ok := r.call(li, Message{Type: MsgOutgoing, Now: now, Test: test})
	if !ok {
		return 0
	}
	return resp.F1
}

// Snapshot implements core.Peers; an unreachable neighbor reads as
// healthy (AC3 then skips it).
func (r remotePeers) Snapshot(li topology.LocalIndex) (int, int, float64) {
	resp, ok := r.call(li, Message{Type: MsgSnapshot})
	if !ok {
		return 0, int(^uint32(0) >> 1), 0
	}
	return int(resp.U1), int(resp.U2), resp.F1
}

// RecomputeReservation implements core.Peers.
func (r remotePeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64) {
	resp, ok := r.call(li, Message{Type: MsgRecompute, Now: now})
	if !ok {
		return 0, int(^uint32(0) >> 1), 0
	}
	return int(resp.U1), int(resp.U2), resp.F1
}

// MaxSojourn implements core.Peers.
func (r remotePeers) MaxSojourn(li topology.LocalIndex, now float64) float64 {
	resp, ok := r.call(li, Message{Type: MsgMaxSojourn, Now: now})
	if !ok {
		return math.Inf(1) // leave T_est uncapped rather than frozen
	}
	return resp.F1
}
