package signaling

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"cellqos/internal/core"
	"cellqos/internal/topology"
)

// CallPolicy bounds one logical peer query: each attempt gets a deadline,
// failed attempts are retried up to MaxAttempts with exponential backoff
// and deterministic jitter. The zero value degrades to the historical
// behavior — one attempt, no deadline — so existing wiring is unchanged
// until a node opts in via BSNode.SetCallPolicy.
type CallPolicy struct {
	// Timeout is the per-attempt deadline (0 = block until the link dies).
	Timeout time.Duration
	// MaxAttempts is the total number of attempts, including the first
	// (values < 1 mean 1: no retries).
	MaxAttempts int
	// Backoff is the sleep before the second attempt; it doubles per
	// further attempt, capped at MaxBackoff. 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 1 s when 0).
	MaxBackoff time.Duration
	// JitterSeed seeds the node's deterministic jitter stream; each
	// backoff sleep is stretched by up to 50% drawn from that stream, so
	// two runs with the same seed de-synchronize retries identically.
	JitterSeed uint64
}

// DefaultCallPolicy is a sane starting point for faulty links: 3 attempts
// with a 50 ms deadline each and 5 ms base backoff.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{Timeout: 50 * time.Millisecond, MaxAttempts: 3, Backoff: 5 * time.Millisecond}
}

// attempts normalizes MaxAttempts.
func (cp CallPolicy) attempts() int {
	if cp.MaxAttempts < 1 {
		return 1
	}
	return cp.MaxAttempts
}

// delay computes the backoff before attempt (1-based retry index),
// without jitter.
func (cp CallPolicy) delay(retry int) time.Duration {
	if cp.Backoff <= 0 {
		return 0
	}
	d := cp.Backoff << uint(retry-1)
	max := cp.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	return d
}

// BSNode hosts one cell's reservation engine and speaks the signaling
// protocol: it answers neighbors' queries against its engine and
// implements core.Peers for its own engine by querying neighbors over
// attached links (directly in a mesh, via the MSC in a star).
//
// The engine is guarded by the node's mutex (passed as core.Config.Lock),
// which the engine releases across remote fan-outs — so a neighbor's
// query arriving while this node waits on that neighbor cannot deadlock.
type BSNode struct {
	id     topology.CellID
	top    *topology.Topology
	mu     sync.Mutex // engine state lock (see core.Config.Lock)
	engine *core.Engine

	linkMu sync.Mutex
	links  map[NodeID]*Peer

	// Resilience configuration: per-call retry policy, per-link breaker
	// factory, and the reconnect hook for crashed links. All set before
	// traffic starts; polMu guards the policy + jitter stream.
	polMu      sync.Mutex
	policy     CallPolicy
	jitter     *rand.Rand
	newBreaker func() *Breaker

	recMu     sync.Mutex // serializes reconnect attempts
	reconnect func(remote NodeID) (io.ReadWriteCloser, error)

	// remoteErrs counts peer queries that exhausted every attempt and
	// were answered ok=false (the engine then degrades per its fallback
	// policy). reconnects counts dead links replaced via the hook.
	remoteErrs atomic.Uint64
	reconnects atomic.Uint64
}

// NewBSNode builds a node for cell id. The config's Degree and Lock are
// filled in from the topology and the node's own mutex.
func NewBSNode(id topology.CellID, top *topology.Topology, cfg core.Config) *BSNode {
	n := &BSNode{id: id, top: top, links: make(map[NodeID]*Peer)}
	cfg.Degree = top.Degree(id)
	cfg.Lock = &n.mu
	n.engine = core.NewEngine(cfg)
	return n
}

// ID returns the node's cell ID.
func (n *BSNode) ID() topology.CellID { return n.id }

// Engine exposes the node's engine (connection management, admission).
func (n *BSNode) Engine() *core.Engine { return n.engine }

// RemoteErrors returns the count of peer queries that failed every
// attempt and degraded to the engine's fallback policy.
func (n *BSNode) RemoteErrors() uint64 { return n.remoteErrs.Load() }

// Reconnects returns how many dead links were replaced via the hook.
func (n *BSNode) Reconnects() uint64 { return n.reconnects.Load() }

// SetCallPolicy installs the retry/deadline policy for outgoing peer
// queries and seeds the jitter stream (per-node stream split off the
// seed so identical seeds on different cells do not march in lockstep).
// Call before traffic starts.
func (n *BSNode) SetCallPolicy(p CallPolicy) {
	n.polMu.Lock()
	defer n.polMu.Unlock()
	n.policy = p
	n.jitter = rand.New(rand.NewPCG(p.JitterSeed, uint64(n.id)+0x9e3779b97f4a7c15))
}

// SetBreakerConfig installs a circuit breaker on every current and
// future link: threshold consecutive failures open it, cooldown later a
// single probe is allowed through (see Breaker). Call before traffic
// starts; threshold ≤ 0 disables breakers for future links.
func (n *BSNode) SetBreakerConfig(threshold int, cooldown time.Duration) {
	n.polMu.Lock()
	if threshold <= 0 {
		n.newBreaker = nil
	} else {
		n.newBreaker = func() *Breaker { return NewBreaker(threshold, cooldown) }
	}
	factory := n.newBreaker
	n.polMu.Unlock()
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	for _, p := range n.links {
		if factory == nil {
			p.SetBreaker(nil)
		} else {
			p.SetBreaker(factory())
		}
	}
}

// SetReconnect installs the hook used to re-dial a crashed link. When a
// query finds its link dead (read pump exited), the node asks the hook
// for a fresh connection to the same remote and attaches it in place.
// Call before traffic starts.
func (n *BSNode) SetReconnect(hook func(remote NodeID) (io.ReadWriteCloser, error)) {
	n.recMu.Lock()
	defer n.recMu.Unlock()
	n.reconnect = hook
}

// callPolicy snapshots the current policy.
func (n *BSNode) callPolicy() CallPolicy {
	n.polMu.Lock()
	defer n.polMu.Unlock()
	return n.policy
}

// backoffSleep blocks for the policy's delay before the retry-th
// re-attempt, stretched by up to 50% of deterministic jitter.
func (n *BSNode) backoffSleep(pol CallPolicy, retry int) {
	d := pol.delay(retry)
	if d <= 0 {
		return
	}
	n.polMu.Lock()
	if n.jitter != nil {
		d += time.Duration(n.jitter.Int64N(int64(d)/2 + 1))
	}
	n.polMu.Unlock()
	time.Sleep(d)
}

// Attach wires a connection to a remote node (a neighbor BS in a mesh,
// or the MSC in a star) and starts answering its queries. It returns the
// peer link, whose Stats count this link's traffic. If a breaker config
// is installed the new link gets a fresh breaker.
func (n *BSNode) Attach(remote NodeID, conn io.ReadWriteCloser) *Peer {
	p := NewPeer(conn, n.handle)
	n.polMu.Lock()
	if n.newBreaker != nil {
		p.SetBreaker(n.newBreaker())
	}
	n.polMu.Unlock()
	n.linkMu.Lock()
	n.links[remote] = p
	n.linkMu.Unlock()
	return p
}

// Close tears down every link.
func (n *BSNode) Close() {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	for id, p := range n.links {
		p.Close()
		delete(n.links, id)
	}
}

// Link returns the current link to a remote node (nil if none). Tests
// use it to reach per-link Stats and breakers.
func (n *BSNode) Link(remote NodeID) *Peer {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	return n.links[remote]
}

// linkDead reports whether the link's read pump has exited.
func linkDead(p *Peer) bool {
	select {
	case <-p.Done():
		return true
	default:
		return false
	}
}

// linkFor resolves the link that reaches cell nb: a direct mesh link if
// present, otherwise the MSC relay. A dead link is re-dialed through the
// reconnect hook when one is installed.
func (n *BSNode) linkFor(nb NodeID) *Peer {
	n.linkMu.Lock()
	id := nb
	p, ok := n.links[nb]
	if !ok {
		id = MSCNode
		p = n.links[MSCNode]
	}
	n.linkMu.Unlock()
	if p == nil || !linkDead(p) {
		return p
	}
	n.recMu.Lock()
	defer n.recMu.Unlock()
	if n.reconnect == nil {
		return p
	}
	// Re-check under recMu: a racing caller may have already replaced it.
	n.linkMu.Lock()
	cur := n.links[id]
	n.linkMu.Unlock()
	if cur != nil && !linkDead(cur) {
		return cur
	}
	conn, err := n.reconnect(id)
	if err != nil || conn == nil {
		return cur
	}
	n.reconnects.Add(1)
	return n.Attach(id, conn)
}

// handle answers one incoming request against the local engine.
func (n *BSNode) handle(req Message) Message {
	switch req.Type {
	case MsgOutgoing:
		from := topology.CellID(req.From)
		toward, ok := n.top.LocalOf(n.id, from)
		if !ok {
			return Message{Type: MsgError, U1: 2}
		}
		return Message{F1: n.engine.OutgoingReservation(req.Now, toward, req.Test)}
	case MsgSnapshot:
		return Message{
			U1: uint32(n.engine.UsedBandwidth()),
			U2: uint32(n.engine.Capacity()),
			F1: n.engine.LastTargetReservation(),
		}
	case MsgRecompute:
		br := n.engine.ComputeTargetReservation(req.Now, n.Peers())
		return Message{
			U1: uint32(n.engine.UsedBandwidth()),
			U2: uint32(n.engine.Capacity()),
			F1: br,
		}
	case MsgMaxSojourn:
		return Message{F1: n.engine.MaxSojourn(req.Now)}
	default:
		return Message{Type: MsgError, U1: 3}
	}
}

// Peers returns the node's remote view of its neighbors, for passing to
// Engine.AdmitNew / ComputeTargetReservation / NoteHandOffArrival.
func (n *BSNode) Peers() core.Peers { return remotePeers{n} }

// remotePeers implements core.Peers over signaling links. Every method
// reports ok=false when the neighbor stayed unreachable through the full
// retry budget; the engine then applies its explicit degradation policy
// (core.Fallback) instead of this layer smuggling in sentinel values —
// the old +Inf MaxSojourn and "infinitely healthy" MaxInt32 snapshots.
type remotePeers struct{ n *BSNode }

func (r remotePeers) call(li topology.LocalIndex, req Message) (Message, bool) {
	nb, ok := r.n.top.FromLocal(r.n.id, li)
	if !ok {
		panic(fmt.Sprintf("signaling: bad local index %d at cell %d", li, r.n.id))
	}
	req.From = NodeID(r.n.id)
	req.To = NodeID(nb)
	pol := r.n.callPolicy()
	for attempt := 0; attempt < pol.attempts(); attempt++ {
		if attempt > 0 {
			r.n.backoffSleep(pol, attempt)
		}
		link := r.n.linkFor(req.To)
		if link == nil {
			continue
		}
		if attempt > 0 {
			link.Stats().Retries.Add(1)
		}
		if !link.Allow() {
			// Breaker open: fail fast; the cooldown probe will test the
			// link, not this call.
			continue
		}
		resp, err := link.CallTimeout(req, pol.Timeout)
		link.Record(err == nil)
		if err == nil {
			return resp, true
		}
	}
	r.n.remoteErrs.Add(1)
	return Message{}, false
}

// OutgoingReservation implements core.Peers.
func (r remotePeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	resp, ok := r.call(li, Message{Type: MsgOutgoing, Now: now, Test: test})
	if !ok {
		return 0, false
	}
	return resp.F1, true
}

// Snapshot implements core.Peers.
func (r remotePeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	resp, ok := r.call(li, Message{Type: MsgSnapshot})
	if !ok {
		return 0, 0, 0, false
	}
	return int(resp.U1), int(resp.U2), resp.F1, true
}

// RecomputeReservation implements core.Peers.
func (r remotePeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	resp, ok := r.call(li, Message{Type: MsgRecompute, Now: now})
	if !ok {
		return 0, 0, 0, false
	}
	return int(resp.U1), int(resp.U2), resp.F1, true
}

// MaxSojourn implements core.Peers. The answer travels the wire as a raw
// float64; the engine-side caller clamps non-finite values, so a
// neighbor's cold-start +Inf can never inflate this cell's T_est cap.
func (r remotePeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	resp, ok := r.call(li, Message{Type: MsgMaxSojourn, Now: now})
	if !ok {
		return 0, false
	}
	return resp.F1, true
}
