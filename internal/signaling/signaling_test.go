package signaling

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/testleak"
	"cellqos/internal/topology"
)

func TestCodecRoundTrip(t *testing.T) {
	m := Message{
		Type: MsgOutgoing, Seq: 42, From: 3, To: 7,
		Now: 123.456, Test: 9, F1: -1.5, U1: 100, U2: 200,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != frameSize {
		t.Fatalf("frame size %d, want %d", buf.Len(), frameSize)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}
}

func TestCodecRejectsZeroType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameSize))
	if _, err := Decode(&buf); err == nil {
		t.Fatal("zero-type frame decoded")
	}
}

func TestCodecShortFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{1, 2, 3})
	if _, err := Decode(&buf); err == nil {
		t.Fatal("short frame decoded")
	}
}

// Property: arbitrary messages survive encode/decode.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, seq uint32, from, to uint32, now, test, f1 float64, u1, u2 uint32) bool {
		if typ == 0 {
			typ = 1
		}
		m := Message{
			Type: MsgType(typ), Seq: seq, From: NodeID(from), To: NodeID(to),
			Now: now, Test: test, F1: f1, U1: u1, U2: u2,
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		// NaN != NaN; compare bit patterns via formatting.
		eq := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}
		return got.Type == m.Type && got.Seq == m.Seq && got.From == m.From &&
			got.To == m.To && eq(got.Now, m.Now) && eq(got.Test, m.Test) &&
			eq(got.F1, m.F1) && got.U1 == m.U1 && got.U2 == m.U2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeClassification(t *testing.T) {
	if !MsgOutgoing.Request() || MsgOutgoing.Response().Request() {
		t.Fatal("request/response bits wrong")
	}
	if MsgType(MsgError).Request() {
		t.Fatal("MsgError classified as request")
	}
	if MsgOutgoing.Response() != MsgOutgoing|RespBit {
		t.Fatal("Response() wrong")
	}
}

func TestPeerCallEcho(t *testing.T) {
	c1, c2 := net.Pipe()
	server := NewPeer(c2, func(req Message) Message {
		return Message{F1: req.Test * 2}
	})
	defer server.Close()
	client := NewPeer(c1, nil)
	defer client.Close()

	resp, err := client.Call(Message{Type: MsgOutgoing, Test: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.F1 != 42 {
		t.Fatalf("F1 = %v, want 42", resp.F1)
	}
	if resp.Type != MsgOutgoing.Response() {
		t.Fatalf("response type %v", resp.Type)
	}
}

func TestPeerConcurrentBidirectionalCalls(t *testing.T) {
	defer testleak.Check(t)()
	c1, c2 := net.Pipe()
	mk := func(conn net.Conn) *Peer {
		return NewPeer(conn, func(req Message) Message {
			return Message{F1: req.Test + 1}
		})
	}
	a, b := mk(c1), mk(c2)
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for i := 0; i < 100; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			resp, err := a.Call(Message{Type: MsgOutgoing, Test: float64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.F1 != float64(i)+1 {
				t.Errorf("a: got %v want %v", resp.F1, i+1)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			resp, err := b.Call(Message{Type: MsgSnapshot, Test: float64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.F1 != float64(i)+1 {
				t.Errorf("b: got %v want %v", resp.F1, i+1)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPeerNilHandlerRejects(t *testing.T) {
	c1, c2 := net.Pipe()
	server := NewPeer(c2, nil)
	defer server.Close()
	client := NewPeer(c1, nil)
	defer client.Close()
	if _, err := client.Call(Message{Type: MsgSnapshot}); err == nil {
		t.Fatal("nil handler answered successfully")
	}
}

func TestPeerClosedCallFails(t *testing.T) {
	c1, c2 := net.Pipe()
	server := NewPeer(c2, nil)
	client := NewPeer(c1, nil)
	server.Close()
	client.Close()
	if _, err := client.Call(Message{Type: MsgSnapshot}); err == nil {
		t.Fatal("Call on closed peer succeeded")
	}
	select {
	case <-client.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed")
	}
}

func TestPeerCallRejectsResponseType(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	p := NewPeer(c1, nil)
	defer p.Close()
	if _, err := p.Call(Message{Type: MsgOutgoing.Response()}); err == nil {
		t.Fatal("Call accepted a response type")
	}
}

func TestPeerStats(t *testing.T) {
	c1, c2 := net.Pipe()
	server := NewPeer(c2, func(Message) Message { return Message{} })
	defer server.Close()
	client := NewPeer(c1, nil)
	defer client.Close()
	for i := 0; i < 5; i++ {
		if _, err := client.Call(Message{Type: MsgSnapshot}); err != nil {
			t.Fatal(err)
		}
	}
	if got := client.Stats().Sent.Load(); got != 5 {
		t.Fatalf("client sent %d, want 5", got)
	}
	if got := client.Stats().Received.Load(); got != 5 {
		t.Fatalf("client received %d, want 5", got)
	}
	if got := client.Stats().BytesSent.Load(); got != 5*frameSize {
		t.Fatalf("client bytes %d, want %d", got, 5*frameSize)
	}
}

// threeNodeLine builds BS nodes on Line(3) with AC2 engines and a known
// state:
//   - node 0: one 4-BU connection, history saying it hands off to cell 1
//     with sojourn 10.5 s
//   - node 2: one 1-BU connection, same shape
//   - node 1: empty
//
// At now=10 with T_est=1 the Eq. 4 window is (10, 11]: both connections
// hand off into cell 1 with probability 1, so node 1's B_r = 5.
func threeNodeLine(t *testing.T, policy core.Policy) []*BSNode {
	t.Helper()
	top := topology.Line(3)
	mk := func(id topology.CellID) *BSNode {
		return NewBSNode(id, top, core.Config{
			Capacity:   100,
			Policy:     policy,
			PHDTarget:  0.01,
			TStart:     1,
			Estimation: predict.StationaryConfig(),
		})
	}
	nodes := []*BSNode{mk(0), mk(1), mk(2)}

	// Local index of cell 1 from cells 0 and 2 is 1 (their only neighbor).
	nodes[0].Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
	nodes[0].Engine().AddConnection(1, core.ConnSpec{Min: 4, Prev: topology.Self}, 0)
	nodes[2].Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
	nodes[2].Engine().AddConnection(2, core.ConnSpec{Min: 1, Prev: topology.Self}, 0)
	return nodes
}

func TestMeshDistributedReservation(t *testing.T) {
	defer testleak.Check(t)()
	nodes := threeNodeLine(t, core.AC1)
	ConnectMesh(nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	br := nodes[1].Engine().ComputeTargetReservation(10, nodes[1].Peers())
	if math.Abs(br-5) > 1e-12 {
		t.Fatalf("distributed B_r = %v, want 5", br)
	}
}

func TestMeshDistributedAC2Admission(t *testing.T) {
	// AC2 at node 1 makes both neighbors recompute their own B_r, which
	// fans back into node 1 — the reentrancy that the lock discipline
	// must survive.
	nodes := threeNodeLine(t, core.AC2)
	ConnectMesh(nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	done := make(chan core.Decision, 1)
	go func() {
		done <- nodes[1].Engine().AdmitNew(10, 2, nodes[1].Peers())
	}()
	select {
	case d := <-done:
		if !d.Admitted || d.BrCalcs != 3 {
			t.Fatalf("AC2 distributed decision: %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("distributed AC2 admission deadlocked")
	}
	// Node 1's own B_r must have been refreshed to 5: 2-BU fits under
	// 100 − 5.
	if br := nodes[1].Engine().LastTargetReservation(); math.Abs(br-5) > 1e-12 {
		t.Fatalf("node1 B_r = %v, want 5", br)
	}
}

func TestStarDistributedAC2Admission(t *testing.T) {
	defer testleak.Check(t)()
	nodes := threeNodeLine(t, core.AC2)
	msc := NewMSC()
	ConnectStar(msc, nodes)
	defer msc.Close()
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	done := make(chan core.Decision, 1)
	go func() {
		done <- nodes[1].Engine().AdmitNew(10, 2, nodes[1].Peers())
	}()
	select {
	case d := <-done:
		if !d.Admitted || d.BrCalcs != 3 {
			t.Fatalf("AC2 star decision: %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("star AC2 admission deadlocked")
	}
}

func TestStarCostsMoreMessagesThanMesh(t *testing.T) {
	// The same workload should move more frames in a star (every query
	// crosses two links) than in a mesh (one link).
	run := func(star bool) uint64 {
		nodes := threeNodeLine(t, core.AC1)
		var msc *MSC
		if star {
			msc = NewMSC()
			ConnectStar(msc, nodes)
		} else {
			ConnectMesh(nodes)
		}
		nodes[1].Engine().ComputeTargetReservation(10, nodes[1].Peers())
		var frames uint64
		for _, n := range nodes {
			n.linkMu.Lock()
			for _, p := range n.links {
				frames += p.Stats().Sent.Load()
			}
			n.linkMu.Unlock()
		}
		if msc != nil {
			msc.mu.Lock()
			for _, p := range msc.links {
				frames += p.Stats().Sent.Load()
			}
			msc.mu.Unlock()
			msc.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
		return frames
	}
	mesh, star := run(false), run(true)
	if star <= mesh {
		t.Fatalf("star frames %d not > mesh frames %d", star, mesh)
	}
	if mesh != 4 { // 2 neighbors × (request + response)
		t.Fatalf("mesh frames = %d, want 4", mesh)
	}
	if star != 8 { // each of those crosses BS→MSC and MSC→BS
		t.Fatalf("star frames = %d, want 8", star)
	}
}

func TestRemotePeersConservativeDefaultsAfterClose(t *testing.T) {
	nodes := threeNodeLine(t, core.AC1)
	ConnectMesh(nodes)
	for _, n := range nodes {
		n.Close() // kill all links
	}
	peers := nodes[1].Peers()
	if got, ok := peers.OutgoingReservation(1, 10, 5); ok || got != 0 {
		t.Fatalf("dead link reservation = %v,%v, want 0,false", got, ok)
	}
	used, capacity, br, ok := peers.Snapshot(1)
	if ok || used != 0 || capacity != 0 || br != 0 {
		t.Fatalf("dead link snapshot = %d,%d,%v,%v, want zeros and false", used, capacity, br, ok)
	}
	if m, ok := peers.MaxSojourn(1, 10); ok || m != 0 {
		t.Fatalf("dead link max sojourn = %v,%v, want 0,false", m, ok)
	}
	if _, _, _, ok := peers.RecomputeReservation(1, 10); ok {
		t.Fatal("dead link recompute reported ok")
	}
	if got, want := nodes[1].RemoteErrors(), uint64(4); got != want {
		t.Fatalf("remote errors = %d, want %d (one per failed query)", got, want)
	}
}

func TestTCPLoopbackQuery(t *testing.T) {
	defer testleak.Check(t)()
	top := topology.Line(2)
	mk := func(id topology.CellID) *BSNode {
		return NewBSNode(id, top, core.Config{
			Capacity: 100, Policy: core.AC1, PHDTarget: 0.01, TStart: 1,
			Estimation: predict.StationaryConfig(),
		})
	}
	n0, n1 := mk(0), mk(1)
	defer n0.Close()
	defer n1.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			accepted <- err
			return
		}
		remote, err := AcceptHello(conn)
		if err != nil {
			accepted <- err
			return
		}
		if remote != NodeID(1) {
			t.Errorf("hello remote = %d, want 1", remote)
		}
		n0.Attach(remote, conn)
		accepted <- nil
	}()
	conn, err := DialTCP(ln.Addr().String(), NodeID(1))
	if err != nil {
		t.Fatal(err)
	}
	n1.Attach(NodeID(0), conn)
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}

	// Seed node 0 and query it from node 1 over real TCP.
	n0.Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
	n0.Engine().AddConnection(1, core.ConnSpec{Min: 4, Prev: topology.Self}, 0)
	got, ok := n1.Peers().OutgoingReservation(1, 10, 5)
	if !ok || math.Abs(got-4) > 1e-12 {
		t.Fatalf("TCP OutgoingReservation = %v,%v, want 4,true", got, ok)
	}
}

func TestCallTimeout(t *testing.T) {
	c1, c2 := net.Pipe()
	block := make(chan struct{})
	server := NewPeer(c2, func(req Message) Message {
		<-block // hold the response hostage
		return Message{}
	})
	defer server.Close()
	defer close(block)
	client := NewPeer(c1, nil)
	defer client.Close()

	wall := clock.Wall{}
	start := wall.Now()
	_, err := client.CallTimeout(Message{Type: MsgSnapshot}, 50*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if wall.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestCallTimeoutZeroIsPlainCall(t *testing.T) {
	c1, c2 := net.Pipe()
	server := NewPeer(c2, func(Message) Message { return Message{F1: 9} })
	defer server.Close()
	client := NewPeer(c1, nil)
	defer client.Close()
	resp, err := client.CallTimeout(Message{Type: MsgSnapshot}, 0)
	if err != nil || resp.F1 != 9 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
}

func TestCallTimeoutLateResponseDropped(t *testing.T) {
	defer testleak.Check(t)()
	c1, c2 := net.Pipe()
	release := make(chan struct{})
	server := NewPeer(c2, func(req Message) Message {
		if req.Test == 1 {
			<-release
		}
		return Message{F1: req.Test}
	})
	defer server.Close()
	client := NewPeer(c1, nil)
	defer client.Close()

	if _, err := client.CallTimeout(Message{Type: MsgSnapshot, Test: 1}, 30*time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	close(release) // the stale response arrives now and must be discarded
	resp, err := client.Call(Message{Type: MsgSnapshot, Test: 2})
	if err != nil || resp.F1 != 2 {
		t.Fatalf("follow-up got %+v, %v (stale response leaked?)", resp, err)
	}
}
