package signaling

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// MSC is the Mobile Switching Center of the paper's star topology
// (Fig. 1(a)): base stations connect only to it, and it relays their
// queries to the destination BS. Every relayed query therefore costs two
// link traversals instead of one — the complexity difference between the
// star and full-mesh deployments.
type MSC struct {
	mu    sync.Mutex
	links map[NodeID]*Peer
}

// NewMSC builds an empty switching center.
func NewMSC() *MSC {
	return &MSC{links: make(map[NodeID]*Peer)}
}

// Attach registers a BS connection and starts relaying for it.
func (m *MSC) Attach(bs NodeID, conn io.ReadWriteCloser) *Peer {
	p := NewPeer(conn, m.relay)
	m.mu.Lock()
	m.links[bs] = p
	m.mu.Unlock()
	return p
}

// Close tears down all BS links.
func (m *MSC) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, p := range m.links {
		p.Close()
		delete(m.links, id)
	}
}

// relay forwards a request to its destination BS and returns that BS's
// response. The Peer layer re-stamps sequence numbers on each hop, so
// concurrent relays through the MSC do not collide.
func (m *MSC) relay(req Message) Message {
	m.mu.Lock()
	out := m.links[req.To]
	m.mu.Unlock()
	if out == nil {
		return Message{Type: MsgError, U1: 4}
	}
	resp, err := out.Call(req)
	if err != nil {
		return Message{Type: MsgError, U1: 5}
	}
	return resp
}

// --- wiring helpers ---

// ConnectMesh wires every pair of neighboring BS nodes with an in-memory
// duplex pipe (net.Pipe), the Fig. 1(b) full-mesh deployment. Use the
// TCP helpers below for real sockets.
func ConnectMesh(nodes []*BSNode) {
	for _, a := range nodes {
		for _, nbID := range a.top.Neighbors(a.id) {
			if nbID <= a.id {
				continue // wire each edge once
			}
			b := nodes[nbID]
			c1, c2 := net.Pipe()
			a.Attach(NodeID(b.id), c1)
			b.Attach(NodeID(a.id), c2)
		}
	}
}

// ConnectStar wires every BS node to the MSC with in-memory pipes, the
// Fig. 1(a) star deployment.
func ConnectStar(msc *MSC, nodes []*BSNode) {
	for _, n := range nodes {
		c1, c2 := net.Pipe()
		n.Attach(MSCNode, c1)
		msc.Attach(NodeID(n.id), c2)
	}
}

// --- TCP handshake ---
//
// A dialer introduces itself with a 4-byte big-endian node ID before the
// message stream starts, so the acceptor knows which cell (or the MSC)
// is on the other end.

// DialTCP connects to addr and sends the hello for node self. The caller
// then Attaches the returned conn to its node.
func DialTCP(addr string, self NodeID) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(self))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("signaling: hello: %w", err)
	}
	return conn, nil
}

// AcceptHello reads the dialer's identity from a freshly accepted conn.
func AcceptHello(conn net.Conn) (NodeID, error) {
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("signaling: hello: %w", err)
	}
	return NodeID(binary.BigEndian.Uint32(hello[:])), nil
}
