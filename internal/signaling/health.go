package signaling

import (
	"sync"
	"time"

	"cellqos/internal/clock"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes calls through (healthy link).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls outright until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing again and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-link health tracker: after Threshold consecutive
// failures it opens and callers skip the link entirely — the engine falls
// back to its degradation policy immediately instead of burning a full
// timeout+retry cycle per B_r term on a neighbor that is known dead.
// After Cooldown one probe call is let through (half-open); success
// closes the breaker, failure re-opens it for another cooldown.
//
// All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	opens    uint64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (min 1, default 3 when ≤0) and half-opens after cooldown
// (default 100 ms when ≤0).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: clock.Wall{}.Now}
}

// SetClock replaces the wall clock (tests drive state transitions without
// sleeping). Call before the breaker is shared.
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// Allow reports whether a call may proceed. In the half-open state only
// one probe is admitted at a time; concurrent callers are rejected until
// the probe's Record settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one call outcome into the tracker. Success closes the
// breaker and zeroes the failure streak; failure extends the streak
// (closed) or re-opens immediately (half-open probe lost).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		if b.fails >= b.threshold {
			b.open()
		}
	}
}

// open transitions to BreakerOpen; callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.opens++
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts transitions into the open state over the breaker's life.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
