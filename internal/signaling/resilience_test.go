package signaling

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/testleak"
	"cellqos/internal/topology"
)

// TestCallTimeoutSemantics pins CallTimeout's contract, per case: the
// error returned, the Stats.Timeouts count, and — crucially — that a
// later call never receives an earlier call's (possibly late) response.
func TestCallTimeoutSemantics(t *testing.T) {
	cases := []struct {
		name         string
		hold         bool // server withholds the first response until released
		timeout      time.Duration
		wantErr      error
		wantTimeouts uint64
	}{
		{"response-in-time", false, 200 * time.Millisecond, nil, 0},
		{"zero-timeout-degrades-to-plain-call", false, 0, nil, 0},
		{"deadline-expires", true, 30 * time.Millisecond, ErrTimeout, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1, c2 := net.Pipe()
			release := make(chan struct{})
			server := NewPeer(c2, func(req Message) Message {
				if tc.hold && req.Test == 1 {
					<-release
				}
				return Message{F1: req.Test}
			})
			defer server.Close()
			client := NewPeer(c1, nil)
			defer client.Close()

			resp, err := client.CallTimeout(Message{Type: MsgSnapshot, Test: 1}, tc.timeout)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if err == nil && resp.F1 != 1 {
				t.Fatalf("resp.F1 = %v, want 1", resp.F1)
			}
			if got := client.Stats().Timeouts.Load(); got != tc.wantTimeouts {
				t.Fatalf("Timeouts = %d, want %d", got, tc.wantTimeouts)
			}

			// Release any held response; the stale frame must be dropped,
			// and a follow-up call must get its own answer.
			close(release)
			resp, err = client.Call(Message{Type: MsgSnapshot, Test: 2})
			if err != nil || resp.F1 != 2 {
				t.Fatalf("follow-up = %+v, %v (stale response leaked?)", resp, err)
			}
			if got := client.Stats().Timeouts.Load(); got != tc.wantTimeouts {
				t.Fatalf("Timeouts after follow-up = %d, want %d", got, tc.wantTimeouts)
			}
		})
	}
}

// TestCallPolicyDelay pins the exponential backoff schedule.
func TestCallPolicyDelay(t *testing.T) {
	cp := CallPolicy{Backoff: 5 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		35 * time.Millisecond, 35 * time.Millisecond,
	}
	for i, w := range want {
		if got := cp.delay(i + 1); got != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (CallPolicy{}).delay(1); got != 0 {
		t.Fatalf("zero-policy delay = %v, want 0", got)
	}
	// A huge retry index must not shift into a negative duration.
	if got := cp.delay(70); got != 35*time.Millisecond {
		t.Fatalf("overflowed delay = %v, want cap", got)
	}
}

// TestBreakerStateMachine walks the closed → open → half-open cycle on a
// fake clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, time.Second)
	b.SetClock(func() time.Time { return now })

	// Two failures stay under the threshold.
	b.Record(false)
	b.Record(false)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed+allowing", b.State())
	}
	// A success resets the streak: two more failures still don't open.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("streak not reset by success: %v", b.State())
	}
	// Third consecutive failure opens.
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state = %v opens = %d, want open/1", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	// Cooldown elapses: exactly one probe goes through.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe fails: re-open and wait out another cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state = %v opens = %d, want open/2", b.State(), b.Opens())
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected after second cooldown")
	}
	// Probe succeeds: closed and fully allowing again.
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() || !b.Allow() {
		t.Fatalf("state = %v, want closed and allowing", b.State())
	}
}

// resilienceNode builds a lone BSNode on a 2-cell line whose only
// neighbor (cell 0) is played by a raw Peer with a scripted handler.
func resilienceNode(t *testing.T, handler Handler) (*BSNode, *Peer) {
	t.Helper()
	top := topology.Line(2)
	n := NewBSNode(1, top, core.Config{
		Capacity: 100, Policy: core.AC1, PHDTarget: 0.01, TStart: 1,
		Estimation: predict.StationaryConfig(),
	})
	c1, c2 := net.Pipe()
	n.Attach(NodeID(0), c1)
	server := NewPeer(c2, handler)
	t.Cleanup(func() { n.Close(); server.Close() })
	return n, server
}

// TestCallRetriesUntilSuccess verifies the bounded-retry path: two
// attempts miss their deadline, the third lands, and the link's Retries
// and Timeouts counters record exactly that.
func TestCallRetriesUntilSuccess(t *testing.T) {
	// resilienceNode tears down via t.Cleanup, so the leak check must
	// also run at cleanup time (cleanups run LIFO: close, then verify).
	testleak.CheckCleanup(t)
	var calls atomic.Int32
	n, _ := resilienceNode(t, func(req Message) Message {
		if calls.Add(1) < 3 {
			time.Sleep(300 * time.Millisecond) // miss the per-attempt deadline
		}
		return Message{F1: 7}
	})
	n.SetCallPolicy(CallPolicy{Timeout: 40 * time.Millisecond, MaxAttempts: 3, Backoff: time.Millisecond, JitterSeed: 1})

	got, ok := n.Peers().OutgoingReservation(1, 0, 1)
	if !ok || got != 7 {
		t.Fatalf("OutgoingReservation = %v,%v, want 7,true", got, ok)
	}
	st := n.Link(NodeID(0)).Stats()
	if r := st.Retries.Load(); r != 2 {
		t.Fatalf("Retries = %d, want 2", r)
	}
	if to := st.Timeouts.Load(); to != 2 {
		t.Fatalf("Timeouts = %d, want 2", to)
	}
	if n.RemoteErrors() != 0 {
		t.Fatalf("RemoteErrors = %d, want 0 (the call eventually succeeded)", n.RemoteErrors())
	}
}

// TestBreakerFailsFast verifies the breaker integration: after the
// threshold of timed-out calls the breaker opens and further queries
// fail immediately without burning another deadline.
func TestBreakerFailsFast(t *testing.T) {
	testleak.CheckCleanup(t) // resilienceNode closes via t.Cleanup

	block := make(chan struct{})
	n, _ := resilienceNode(t, func(req Message) Message {
		<-block
		return Message{}
	})
	defer close(block)
	n.SetCallPolicy(CallPolicy{Timeout: 30 * time.Millisecond, MaxAttempts: 1})
	n.SetBreakerConfig(2, time.Hour)

	for i := 0; i < 2; i++ {
		if _, ok := n.Peers().OutgoingReservation(1, 0, 1); ok {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	link := n.Link(NodeID(0))
	if s := link.Breaker().State(); s != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", s)
	}
	wall := clock.Wall{}
	start := wall.Now()
	if _, ok := n.Peers().OutgoingReservation(1, 0, 1); ok {
		t.Fatal("call through an open breaker succeeded")
	}
	if d := wall.Since(start); d > 20*time.Millisecond {
		t.Fatalf("open-breaker call took %v, want fail-fast", d)
	}
	if to := link.Stats().Timeouts.Load(); to != 2 {
		t.Fatalf("Timeouts = %d, want 2 (fail-fast call must not add one)", to)
	}
	if got := n.RemoteErrors(); got != 3 {
		t.Fatalf("RemoteErrors = %d, want 3", got)
	}
	if opens := link.Breaker().Opens(); opens != 1 {
		t.Fatalf("breaker opens = %d, want 1", opens)
	}
}

// TestReconnectHookRestoresLink kills the only link to a neighbor, then
// verifies the reconnect hook transparently restores service.
func TestReconnectHookRestoresLink(t *testing.T) {
	defer testleak.Check(t)()
	top := topology.Line(2)
	mk := func(id topology.CellID) *BSNode {
		return NewBSNode(id, top, core.Config{
			Capacity: 100, Policy: core.AC1, PHDTarget: 0.01, TStart: 1,
			Estimation: predict.StationaryConfig(),
		})
	}
	n0, n1 := mk(0), mk(1)
	defer n0.Close()
	defer n1.Close()
	c0, c1 := net.Pipe()
	n0.Attach(NodeID(1), c0)
	n1.Attach(NodeID(0), c1)
	n0.Engine().RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 10.5})
	n0.Engine().AddConnection(1, core.ConnSpec{Min: 4, Prev: topology.Self}, 0)

	if got, ok := n1.Peers().OutgoingReservation(1, 10, 5); !ok || got != 4 {
		t.Fatalf("healthy query = %v,%v, want 4,true", got, ok)
	}

	// Crash the link. Without a hook the query degrades.
	n1.Link(NodeID(0)).Close()
	if _, ok := n1.Peers().OutgoingReservation(1, 10, 5); ok {
		t.Fatal("query over a dead link reported ok")
	}
	if n1.RemoteErrors() != 1 {
		t.Fatalf("RemoteErrors = %d, want 1", n1.RemoteErrors())
	}

	// Install the hook: the next query re-dials and succeeds.
	n1.SetReconnect(func(remote NodeID) (io.ReadWriteCloser, error) {
		if remote != NodeID(0) {
			t.Errorf("reconnect asked for node %d, want 0", remote)
		}
		a, b := net.Pipe()
		n0.Attach(NodeID(1), b)
		return a, nil
	})
	if got, ok := n1.Peers().OutgoingReservation(1, 10, 5); !ok || got != 4 {
		t.Fatalf("post-reconnect query = %v,%v, want 4,true", got, ok)
	}
	if got := n1.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	if got := n1.RemoteErrors(); got != 1 {
		t.Fatalf("RemoteErrors after heal = %d, want 1 (no new failures)", got)
	}
}
