package signaling

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts traffic on one link.
type Stats struct {
	Sent, Received atomic.Uint64
	BytesSent      atomic.Uint64
	BytesReceived  atomic.Uint64
	// Timeouts counts CallTimeout deadlines that expired before the
	// response arrived (the late response, if any, is dropped).
	Timeouts atomic.Uint64
	// Retries counts re-attempts issued on this link by a retrying
	// caller (BSNode's call policy); the first attempt is not a retry.
	Retries atomic.Uint64
}

// Handler answers an incoming request. It runs on its own goroutine, so
// it may itself issue Calls on other links (a B_r recomputation fans out
// to the node's own neighbors).
type Handler func(req Message) Message

// Peer is one bidirectional message channel to another node. Both sides
// may issue requests concurrently: a read pump dispatches incoming
// requests to the handler and routes responses to waiting Calls by
// sequence number.
type Peer struct {
	conn    io.ReadWriteCloser
	handler Handler
	stats   *Stats

	writeMu sync.Mutex
	mu      sync.Mutex
	pending map[uint32]chan Message
	seq     uint32
	closed  bool
	err     error
	done    chan struct{}

	breaker atomic.Pointer[Breaker]
}

// ErrPeerClosed is returned by Call after the link shuts down.
var ErrPeerClosed = errors.New("signaling: peer closed")

// NewPeer wraps a connection. handler answers incoming requests (nil
// means reject everything with MsgError). The read pump starts
// immediately; Close tears it down.
func NewPeer(conn io.ReadWriteCloser, handler Handler) *Peer {
	p := &Peer{
		conn:    conn,
		handler: handler,
		stats:   &Stats{},
		pending: make(map[uint32]chan Message),
		done:    make(chan struct{}),
	}
	go p.readLoop()
	return p
}

// Stats exposes the link's traffic counters.
func (p *Peer) Stats() *Stats { return p.stats }

// SetBreaker installs a circuit breaker on the link (nil removes it).
func (p *Peer) SetBreaker(b *Breaker) { p.breaker.Store(b) }

// Breaker returns the installed breaker, or nil.
func (p *Peer) Breaker() *Breaker { return p.breaker.Load() }

// Allow asks the link's breaker whether a call may proceed; a link
// without a breaker always allows.
func (p *Peer) Allow() bool {
	b := p.breaker.Load()
	return b == nil || b.Allow()
}

// Record feeds a call outcome to the link's breaker, if any.
func (p *Peer) Record(ok bool) {
	if b := p.breaker.Load(); b != nil {
		b.Record(ok)
	}
}

// Close shuts the link down; pending Calls fail with ErrPeerClosed.
func (p *Peer) Close() error {
	p.fail(ErrPeerClosed)
	return p.conn.Close()
}

func (p *Peer) fail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.err = err
	for seq, ch := range p.pending {
		close(ch)
		delete(p.pending, seq)
	}
	close(p.done)
}

func (p *Peer) send(m Message) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	// Count before writing: on synchronous transports (net.Pipe) the
	// receiver may act on the frame before a post-write increment runs,
	// making counters appear to lag. "Sent" therefore means "attempted".
	p.stats.Sent.Add(1)
	p.stats.BytesSent.Add(frameSize)
	return Encode(p.conn, m)
}

// Call sends a request and blocks until its response arrives or the link
// dies.
func (p *Peer) Call(req Message) (Message, error) {
	if !req.Type.Request() {
		return Message{}, fmt.Errorf("signaling: Call with non-request type %v", req.Type)
	}
	ch := make(chan Message, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Message{}, p.err
	}
	p.seq++
	req.Seq = p.seq
	p.pending[req.Seq] = ch
	p.mu.Unlock()

	if err := p.send(req); err != nil {
		p.mu.Lock()
		delete(p.pending, req.Seq)
		p.mu.Unlock()
		return Message{}, err
	}
	resp, ok := <-ch
	if !ok {
		return Message{}, ErrPeerClosed
	}
	if resp.Type == MsgError {
		return Message{}, fmt.Errorf("signaling: remote error code %d", resp.U1)
	}
	return resp, nil
}

// ErrTimeout is returned by CallTimeout when the deadline passes.
var ErrTimeout = errors.New("signaling: call timed out")

// CallTimeout is Call with a deadline: if the response does not arrive
// in time it returns ErrTimeout and abandons the pending slot (a late
// response is dropped by the pump). A zero or negative timeout degrades
// to a plain Call.
func (p *Peer) CallTimeout(req Message, timeout time.Duration) (Message, error) {
	if timeout <= 0 {
		return p.Call(req)
	}
	if !req.Type.Request() {
		return Message{}, fmt.Errorf("signaling: Call with non-request type %v", req.Type)
	}
	ch := make(chan Message, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Message{}, p.err
	}
	p.seq++
	req.Seq = p.seq
	p.pending[req.Seq] = ch
	p.mu.Unlock()

	if err := p.send(req); err != nil {
		p.mu.Lock()
		delete(p.pending, req.Seq)
		p.mu.Unlock()
		return Message{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return Message{}, ErrPeerClosed
		}
		if resp.Type == MsgError {
			return Message{}, fmt.Errorf("signaling: remote error code %d", resp.U1)
		}
		return resp, nil
	case <-timer.C:
		p.mu.Lock()
		delete(p.pending, req.Seq)
		p.mu.Unlock()
		p.stats.Timeouts.Add(1)
		return Message{}, ErrTimeout
	}
}

// readLoop pumps incoming frames: responses are matched to pending
// Calls; requests are handled on fresh goroutines so a handler that
// fans out further Calls cannot stall the pump.
func (p *Peer) readLoop() {
	for {
		m, err := Decode(p.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				p.fail(fmt.Errorf("signaling: read: %w", err))
			} else {
				p.fail(ErrPeerClosed)
			}
			return
		}
		p.stats.Received.Add(1)
		p.stats.BytesReceived.Add(frameSize)
		if m.Type.Request() {
			go p.serve(m)
			continue
		}
		p.mu.Lock()
		ch := p.pending[m.Seq]
		delete(p.pending, m.Seq)
		p.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

func (p *Peer) serve(req Message) {
	var resp Message
	if p.handler == nil {
		resp = Message{Type: MsgError, U1: 1}
	} else {
		resp = p.handler(req)
	}
	resp.Seq = req.Seq
	resp.From, resp.To = req.To, req.From
	if resp.Type != MsgError {
		resp.Type = req.Type.Response()
	}
	_ = p.send(resp) // a dead link is detected by the read loop
}

// Done is closed when the link shuts down.
func (p *Peer) Done() <-chan struct{} { return p.done }
