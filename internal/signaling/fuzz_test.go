package signaling

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary — truncated, corrupted, oversized —
// byte streams to the frame decoder, which sits directly behind every
// network read in the signaling plane (internal/faults deliberately
// manufactures such streams). Decode must never panic: it either
// rejects with an error or returns a frame that re-encodes to exactly
// the bytes it consumed (the codec has no non-canonical encodings, so
// accept ⇒ byte-stable round trip). The spare bytes after one frame
// must be left unread, or a slow TCP segment boundary would eat the
// next frame.
func FuzzDecodeFrame(f *testing.F) {
	encode := func(m Message) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	// Seed corpus: every request type, a response, an error frame, edge
	// floats, then malformed variants — empty, short, zero-type,
	// bit-flipped, and a frame with trailing garbage.
	f.Add(encode(Message{Type: MsgOutgoing, Seq: 1, From: 3, To: 7, Now: 12.5, Test: 4}))
	f.Add(encode(Message{Type: MsgSnapshot, Seq: 2, U1: 40, U2: 100, F1: 5.25}))
	f.Add(encode(Message{Type: MsgRecompute, Seq: 3, Now: 99}))
	f.Add(encode(Message{Type: MsgMaxSojourn.Response(), Seq: 4, F1: math.Inf(1)}))
	f.Add(encode(Message{Type: MsgError, Seq: 5, U1: 2}))
	f.Add(encode(Message{Type: MsgOutgoing, F1: math.NaN(), Now: math.Inf(-1)}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, frameSize))
	corrupted := encode(Message{Type: MsgSnapshot, Seq: 9})
	corrupted[17] ^= 0x40
	f.Add(corrupted)
	f.Add(append(encode(Message{Type: MsgOutgoing, Seq: 6}), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := Decode(r)
		if err != nil {
			return // rejection is fine; panics are what we hunt
		}
		if m.Type == 0 {
			t.Fatal("Decode accepted a zero-type frame")
		}
		if consumed := len(data) - r.Len(); consumed != frameSize {
			t.Fatalf("Decode consumed %d bytes, want exactly %d", consumed, frameSize)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		// NaN payloads break naive equality; compare the wire bytes,
		// which is the property the protocol actually needs.
		if !bytes.Equal(buf.Bytes(), data[:frameSize]) {
			t.Fatalf("round trip drifted:\n in  %x\n out %x", data[:frameSize], buf.Bytes())
		}
	})
}
