package cellnet

import (
	"reflect"
	"testing"

	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/topology"
)

// shardedScenario is scenario() with the kernel sharded. latency == 0 is
// the compat mode (serial merge, legacy RNG); latency > 0 the async
// signaling model.
func shardedScenario(policy core.Policy, shards int, latency float64, seed uint64) Config {
	cfg := scenario(policy, 150, 0.8, mobility.HighMobility, seed)
	cfg.Sharding = ShardingConfig{Shards: shards, SignalingLatency: latency, ExchangePeriod: 5}
	return cfg
}

// stripTraces zeroes the map identity noise so Results compare with
// reflect.DeepEqual (no traces are configured in these scenarios).
func stripTraces(r *Result) *Result {
	r.Traces = nil
	return r
}

// TestCompatShardedMatchesSingleHeap: at zero signaling latency the
// sharded kernel is a serial merge consuming the shared RNG in global
// event order, so every statistic must match the single-heap reference
// byte for byte at any shard count.
func TestCompatShardedMatchesSingleHeap(t *testing.T) {
	ref := stripTraces(MustNew(scenario(core.AC3, 150, 0.8, mobility.HighMobility, 7)).Run(1500))
	for _, shards := range []int{2, 5, 10} {
		got := stripTraces(MustNew(shardedScenario(core.AC3, shards, 0, 7)).Run(1500))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("shards=%d diverged from single-heap reference:\n got %+v\nwant %+v", shards, got, ref)
		}
	}
}

// TestAsyncShardCountInvariance: under the async signaling model the
// result is a function of the scenario, not of the partitioning — per
// cell/connection RNG streams plus the keyed mailbox make every shard
// count produce identical Results, including a repeat run at the same
// shard count.
func TestAsyncShardCountInvariance(t *testing.T) {
	ref := stripTraces(MustNew(shardedScenario(core.AC3, 1, 0.5, 7)).Run(1500))
	if ref.Total.Requested == 0 || ref.Total.HandOffs == 0 {
		t.Fatalf("async reference run generated no traffic: %+v", ref.Total)
	}
	for _, shards := range []int{1, 2, 3, 5} {
		got := stripTraces(MustNew(shardedScenario(core.AC3, shards, 0.5, 7)).Run(1500))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("async shards=%d diverged from 1-shard async run:\n got %+v\nwant %+v", shards, got, ref)
		}
	}
}

// TestAsyncConservation: connections admitted equal connections
// accounted for, modulo hand-offs still in flight between shards when
// the run stops (the barrier audit checks the same law continuously).
func TestAsyncConservation(t *testing.T) {
	n := MustNew(shardedScenario(core.AC3, 3, 0.5, 2))
	res := n.Run(2000)
	admitted := res.Total.Requested - res.Total.Blocked
	accounted := res.Total.Completed + res.Total.Dropped + res.Total.Exited + uint64(n.ActiveConnections())
	var inFlight uint64
	for _, st := range n.shards {
		inFlight += st.sentHO - st.recvHO
	}
	if admitted != accounted+inFlight {
		t.Fatalf("conservation violated: admitted %d, accounted %d, in flight %d", admitted, accounted, inFlight)
	}
	if res.Total.Exited != 0 {
		t.Fatalf("ring run had %d coverage exits", res.Total.Exited)
	}
}

// TestAsyncWarmupDegradation: before the first exchange replies land,
// admission tests must fall back (neighbor state unknown) rather than
// fail — the degradation counters record that window.
func TestAsyncWarmupDegradation(t *testing.T) {
	res := MustNew(shardedScenario(core.AC2, 2, 0.5, 3)).Run(1500)
	if res.DegradedBrCalcs == 0 {
		t.Fatal("async warmup produced no degraded B_r calculations; mirror should start cold")
	}
	if res.Total.BrCalcs == 0 {
		t.Fatal("no B_r calculations at all")
	}
}

// TestAsyncRejectsUnsupportedFeatures pins the Validate gate: models
// that require synchronous cross-cell state cannot run under the async
// plane.
func TestAsyncRejectsUnsupportedFeatures(t *testing.T) {
	base := func() Config { return shardedScenario(core.AC3, 2, 0.5, 1) }
	mut := map[string]func(*Config){
		"mobspec":   func(c *Config) { c.Policy = core.MobSpec },
		"soft":      func(c *Config) { c.SoftHandOff.Enabled = true; c.SoftHandOff.OverlapSeconds = 1 },
		"faults":    func(c *Config) { c.Faults.Enabled = true; c.Faults.Drop = 0.1 },
		"skipdrops": func(c *Config) { c.SkipDroppedDepartures = true },
	}
	for name, m := range mut {
		cfg := base()
		m(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: async config unexpectedly validated", name)
		}
	}
	// More shards than cells is invalid in any mode.
	cfg := base()
	cfg.Sharding.Shards = 11
	if _, err := New(cfg); err == nil {
		t.Error("11 shards on a 10-cell ring unexpectedly validated")
	}
	// Exchange period below the signaling latency cannot be serviced.
	cfg = base()
	cfg.Sharding.ExchangePeriod = 0.1
	if _, err := New(cfg); err == nil {
		t.Error("exchange period < latency unexpectedly validated")
	}
}

// TestPartitionBoundaryRouting runs async on a wrapped hex grid so
// hand-offs cross row-aligned shard boundaries in both directions.
func TestPartitionBoundaryRouting(t *testing.T) {
	top := topology.Hex(6, 6, true)
	cfg := scenario(core.AC3, 150, 0.8, mobility.HighMobility, 5)
	cfg.Topology = top
	cfg.Mobility = &mobility.HexWalk{Top: top, DiameterKm: 1, Speed: mobility.HighMobility, Persistence: 0.8}
	cfg.Sharding = ShardingConfig{Shards: 3, SignalingLatency: 0.5, ExchangePeriod: 5}
	n := MustNew(cfg)
	res := n.Run(1500)
	if res.Total.HandOffs == 0 {
		t.Fatal("no hand-offs on hex grid")
	}
	var crossed uint64
	for _, st := range n.shards {
		crossed += st.sentHO
	}
	if crossed == 0 {
		t.Fatal("no hand-off messages crossed the mailbox")
	}
}
