package cellnet

import (
	"testing"

	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/traffic"
)

func TestScheduleWithoutSpeedsUsesModelRange(t *testing.T) {
	// A bare Constant{Lambda} (no speed fields) must not freeze mobiles:
	// the mobility model's own range applies.
	top := scenario(core.AC3, 0, 1, mobility.HighMobility, 0).Topology
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 1}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}
	cfg.Schedule = traffic.Constant{Lambda: traffic.RateForLoad(150, cfg.Mix, cfg.MeanLifetime)}
	cfg.Seed = 81
	res := MustNew(cfg).Run(1000)
	if res.Total.HandOffs == 0 {
		t.Fatal("zero-speed schedule froze the mobiles")
	}
}
