// Package cellnet assembles the full cellular-network simulation: it
// wires the discrete-event kernel (internal/sim), topology, mobility and
// traffic substrates to one core.Engine per cell, processes new-connection
// requests, hand-offs, drops and completions, and collects the paper's
// evaluation metrics.
package cellnet

import (
	"fmt"

	"cellqos/internal/audit"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

// Config describes one simulation scenario.
type Config struct {
	// Topology is the cell adjacency graph.
	Topology *topology.Topology
	// Capacity is each cell's wireless link capacity in BUs (A6: 100).
	Capacity int
	// Policy is the admission-control scheme under test, named by the
	// legacy enum. Ignored when Admission is non-nil.
	Policy core.Policy
	// Admission, when non-nil, selects the admission-control scheme
	// directly as a core.AdmissionPolicy (typically obtained from
	// core.PolicyByName). It takes precedence over Policy, which then
	// only serves old callers and flag spellings.
	Admission core.AdmissionPolicy
	// StaticReserve is G for the Static policy.
	StaticReserve int
	// PHDTarget is P_HD,target (0.01 in the paper).
	PHDTarget float64
	// TStart is the initial T_est (1 s in the paper).
	TStart float64
	// Step is the T_est adjustment policy (UnitStep in the paper).
	Step core.StepPolicy
	// Estimation configures the hand-off estimation functions.
	Estimation predict.Config
	// Calendar optionally routes weekday/weekend patterns.
	Calendar predict.Calendar
	// ExpDwellMean and ExpDwellWindow parameterize the core.ExpDwell
	// baseline (assumed mean dwell τ and fixed estimation window T).
	ExpDwellMean   float64
	ExpDwellWindow float64
	// Mobility mints mobile movement paths.
	Mobility mobility.Model
	// Mix is the voice/video class mixture (A3).
	Mix traffic.Mix
	// MeanLifetime is the mean connection lifetime in seconds (A5: 120).
	MeanLifetime float64
	// Schedule drives per-cell arrival rates and speed ranges over time.
	Schedule traffic.Schedule
	// Retry is the blocked-request retry behavior (§5.3).
	Retry traffic.RetryPolicy
	// Seed makes runs reproducible.
	Seed uint64
	// Backbone, when non-nil, adds wired-link bandwidth reservation (the
	// paper's §2/§7 extension): every connection also routes and reserves
	// a path from its serving BS to a gateway; hand-offs re-route it.
	// Wired shortfalls block new connections and drop hand-offs on top of
	// the wireless admission tests.
	Backbone *wired.Backbone
	// AdaptiveQoS enables the §1 integration with adaptive-QoS schemes
	// (refs [6,8]): video connections become elastic between VideoMinBUs
	// and the full 4 BUs — cells downgrade them to absorb hand-offs and
	// upgrade them when bandwidth frees; reservation uses minimum QoS.
	AdaptiveQoS AdaptiveQoSConfig
	// MobSpecHorizon sizes the core.MobSpec baseline's mobility
	// specification: a new connection pledges its bandwidth in every
	// cell within this many hops (default 2). Ignored by other policies.
	MobSpecHorizon int
	// HandOffMargin models CDMA soft capacity (§7): hand-offs may use up
	// to Capacity+HandOffMargin BUs.
	HandOffMargin int
	// SoftHandOff enables the §7 CDMA soft hand-off extension: a mobile
	// crossing into a full cell keeps its old-cell link for up to
	// OverlapSeconds (macrodiversity in the overlap region) and the
	// hand-off completes as soon as the new cell frees capacity; it
	// drops only when the window expires.
	SoftHandOff SoftHandOffConfig
	// DirectionHints enables the paper's §7 ITS/GPS extension: every
	// mobile's next cell is known from route guidance, so Eq. 5 only
	// estimates the hand-off time and concentrates reservation on the
	// known destination.
	DirectionHints bool
	// SkipDroppedDepartures, when set, excludes departures whose hand-off
	// was dropped from the estimation functions. The default (false)
	// records them: the movement happened even though the connection
	// died, and the estimator models mobility, not admission.
	SkipDroppedDepartures bool
	// Faults models a degraded signaling plane inside the in-process
	// simulation (the distributed deployment injects real link faults via
	// internal/faults): each peer information exchange independently
	// fails with probability Faults.Drop, drawn from a dedicated
	// deterministic RNG stream, and the engines degrade per
	// Faults.Fallback instead of silently under-reserving.
	Faults FaultConfig
	// Audit, when non-nil, re-verifies the bandwidth ledgers, counters,
	// pledges and wired reservations after simulation events (sampled per
	// audit.Checker.EveryN) and in full at every Snapshot; a violation
	// panics with a structured report. Nil — the default — costs nothing.
	// A Checker is stateless, so one may be shared across the concurrent
	// Networks of a runner sweep.
	Audit *audit.Checker
	// TraceCells lists cells whose T_est, B_r and cumulative P_HD are
	// recorded over time (Figs. 10–11).
	TraceCells []topology.CellID
	// TraceMinGap thins trace series (seconds between kept points).
	TraceMinGap float64
	// Sharding partitions one run's cells across event-kernel shards
	// (internal/sim/shard) for metro-scale runs. The zero value — one
	// shard, zero latency — is the classic single-heap simulation.
	Sharding ShardingConfig
}

// ShardingConfig selects the event kernel and, with a positive
// signaling latency, the asynchronous peer-exchange model that makes
// genuinely parallel execution deterministic.
type ShardingConfig struct {
	// Shards is the number of kernel shards; 0 and 1 both mean the
	// single-heap sim.Simulator. With SignalingLatency == 0, shards > 1
	// selects the serial (time, shard, seq) merge: cells are
	// partitioned across per-shard heaps but events still interleave
	// one at a time, so classic synchronous semantics — and the golden
	// corpus — are preserved at any shard count.
	Shards int
	// SignalingLatency, when positive, switches the run to the
	// asynchronous signaling model: every cross-cell interaction (peer
	// state exchange and hand-off control) travels as a timestamped
	// message with this one-way delay in seconds, cells draw from
	// per-cell and per-connection RNG streams, and shards execute
	// concurrently under a conservative lookahead equal to this
	// latency. Results are byte-identical at any shard count by
	// construction, but differ from the zero-latency model: peer state
	// is refreshed by periodic exchange rounds instead of synchronous
	// queries. Requires a plain scenario — no Backbone, MobSpec, soft
	// hand-off, fault injection, or SkipDroppedDepartures.
	SignalingLatency float64
	// ExchangePeriod is the interval between peer-exchange rounds in
	// the asynchronous model (each round refreshes every cell's view of
	// its neighbors). Defaults to 1 s when zero.
	ExchangePeriod float64
}

// Async reports whether the asynchronous signaling model is selected.
func (s ShardingConfig) Async() bool { return s.SignalingLatency > 0 }

// NumShards returns the effective shard count (≥ 1).
func (s ShardingConfig) NumShards() int {
	if s.Shards < 1 {
		return 1
	}
	return s.Shards
}

// exchangeEvery returns the effective peer-exchange period.
func (s ShardingConfig) exchangeEvery() float64 {
	if s.ExchangePeriod > 0 {
		return s.ExchangePeriod
	}
	return 1
}

// Validate checks sharding invariants in isolation; cross-field checks
// against the rest of the scenario live in Config.Validate.
func (s ShardingConfig) Validate() error {
	if s.Shards < 0 {
		return fmt.Errorf("cellnet: negative shard count %d", s.Shards)
	}
	if s.SignalingLatency < 0 {
		return fmt.Errorf("cellnet: negative signaling latency %v", s.SignalingLatency)
	}
	if s.ExchangePeriod < 0 {
		return fmt.Errorf("cellnet: negative exchange period %v", s.ExchangePeriod)
	}
	if s.Async() && s.ExchangePeriod > 0 && s.ExchangePeriod < s.SignalingLatency {
		return fmt.Errorf("cellnet: exchange period %v shorter than signaling latency %v",
			s.ExchangePeriod, s.SignalingLatency)
	}
	return nil
}

// FaultConfig parameterizes in-simulation signaling faults.
type FaultConfig struct {
	Enabled bool
	// Drop is the probability that one peer exchange fails (both the
	// request and any response lost; the caller sees an unreachable
	// neighbor).
	Drop float64
	// Fallback selects what an unreachable neighbor contributes to B_r
	// (core degradation policy; zero value = last-known with decay).
	Fallback core.Fallback
}

// Validate checks fault-model invariants.
func (f FaultConfig) Validate() error {
	if !f.Enabled {
		return nil
	}
	if f.Drop < 0 || f.Drop > 1 {
		return fmt.Errorf("cellnet: fault drop probability %v outside [0,1]", f.Drop)
	}
	return f.Fallback.Validate()
}

// AdaptiveQoSConfig parameterizes the adaptive-QoS integration.
type AdaptiveQoSConfig struct {
	Enabled bool
	// VideoMinBUs is the minimum acceptable video bandwidth (1–4).
	VideoMinBUs int
}

// Validate checks adaptive-QoS invariants.
func (a AdaptiveQoSConfig) Validate() error {
	if !a.Enabled {
		return nil
	}
	if a.VideoMinBUs < 1 || a.VideoMinBUs > 4 {
		return fmt.Errorf("cellnet: video minimum %d outside [1,4]", a.VideoMinBUs)
	}
	return nil
}

// SoftHandOffConfig parameterizes the CDMA soft hand-off extension.
type SoftHandOffConfig struct {
	Enabled bool
	// OverlapSeconds is how long the mobile can hold both links (paper's
	// "communicate via two adjacent BSs simultaneously for a while").
	OverlapSeconds float64
	// RetryInterval is how often the pending hand-off re-tests the new
	// cell (default 0.5 s).
	RetryInterval float64
}

// Validate checks soft hand-off invariants.
func (s SoftHandOffConfig) Validate() error {
	if !s.Enabled {
		return nil
	}
	if s.OverlapSeconds <= 0 {
		return fmt.Errorf("cellnet: soft hand-off needs positive overlap, got %v", s.OverlapSeconds)
	}
	if s.RetryInterval < 0 {
		return fmt.Errorf("cellnet: negative soft hand-off retry interval")
	}
	return nil
}

// retryEvery returns the effective polling interval.
func (s SoftHandOffConfig) retryEvery() float64 {
	if s.RetryInterval > 0 {
		return s.RetryInterval
	}
	return 0.5
}

// Validate checks scenario invariants.
func (c Config) Validate() error {
	if c.Topology == nil {
		return fmt.Errorf("cellnet: nil topology")
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("cellnet: capacity %d", c.Capacity)
	}
	if c.Mobility == nil {
		return fmt.Errorf("cellnet: nil mobility model")
	}
	if c.Schedule == nil {
		return fmt.Errorf("cellnet: nil schedule")
	}
	if c.Mix.VoiceRatio < 0 || c.Mix.VoiceRatio > 1 {
		return fmt.Errorf("cellnet: voice ratio %v", c.Mix.VoiceRatio)
	}
	if c.MeanLifetime <= 0 {
		return fmt.Errorf("cellnet: mean lifetime %v", c.MeanLifetime)
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if err := c.SoftHandOff.Validate(); err != nil {
		return err
	}
	if err := c.AdaptiveQoS.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	for _, id := range c.TraceCells {
		if !c.Topology.Valid(id) {
			return fmt.Errorf("cellnet: trace cell %d out of range", id)
		}
	}
	if c.Backbone != nil && c.Backbone.Cells() < c.Topology.NumCells() {
		return fmt.Errorf("cellnet: backbone maps %d cells, topology has %d",
			c.Backbone.Cells(), c.Topology.NumCells())
	}
	if err := c.Sharding.Validate(); err != nil {
		return err
	}
	if c.Sharding.NumShards() > c.Topology.NumCells() {
		return fmt.Errorf("cellnet: %d shards for %d cells", c.Sharding.NumShards(), c.Topology.NumCells())
	}
	if c.Sharding.Async() {
		// The asynchronous model owns every cross-cell interaction; the
		// extensions below reach across cells synchronously (multi-hop
		// pledges, dual-cell links, shared fault streams) or condition a
		// departure record on a remote admission outcome, none of which
		// survive a signaling delay.
		switch {
		case c.Backbone != nil:
			return fmt.Errorf("cellnet: wired backbone unsupported with async sharding")
		case c.admissionTraits().MobSpec:
			return fmt.Errorf("cellnet: mobility-specification policies unsupported with async sharding")
		case c.SoftHandOff.Enabled:
			return fmt.Errorf("cellnet: soft hand-off unsupported with async sharding")
		case c.Faults.Enabled:
			return fmt.Errorf("cellnet: fault injection unsupported with async sharding")
		case c.SkipDroppedDepartures:
			return fmt.Errorf("cellnet: SkipDroppedDepartures unsupported with async sharding")
		}
	}
	engCfg := c.engineConfig(0)
	return engCfg.Validate()
}

// admissionPolicy resolves the scheme under test: the explicit Admission
// value when set, the legacy Policy enum otherwise. May return nil for an
// invalid enum; Validate rejects such configs before any engine is built.
func (c Config) admissionPolicy() core.AdmissionPolicy {
	return core.ResolvePolicy(c.Admission, c.Policy)
}

// admissionTraits returns the resolved policy's behavioral traits, or the
// zero traits when the config names no valid policy.
func (c Config) admissionTraits() core.PolicyTraits {
	if pol := c.admissionPolicy(); pol != nil {
		return pol.Traits()
	}
	return core.PolicyTraits{}
}

// engineConfig derives the per-cell engine configuration.
func (c Config) engineConfig(id topology.CellID) core.Config {
	return core.Config{
		Capacity:       c.Capacity,
		Degree:         c.Topology.Degree(id),
		Policy:         c.Policy,
		Admission:      c.Admission,
		StaticReserve:  c.StaticReserve,
		PHDTarget:      c.PHDTarget,
		TStart:         c.TStart,
		Step:           c.Step,
		Estimation:     c.Estimation,
		Calendar:       c.Calendar,
		ExpDwellMean:   c.ExpDwellMean,
		ExpDwellWindow: c.ExpDwellWindow,
		Fallback:       c.Faults.Fallback,
		HandOffMargin:  c.HandOffMargin,
	}
}

// PaperBase returns a config pre-filled with the paper's §5.1 constants
// (capacity 100 BU, P_HD,target 0.01, T_start 1 s, N_quad 100, mean
// lifetime 120 s, stationary estimation). Callers fill in topology,
// policy, mobility, mix and schedule.
func PaperBase() Config {
	return Config{
		Capacity:     100,
		PHDTarget:    0.01,
		TStart:       1,
		Estimation:   predict.StationaryConfig(),
		MeanLifetime: traffic.MeanLifetime,
	}
}
