package cellnet

import (
	"testing"

	"cellqos/internal/core"
	"cellqos/internal/mobility"
)

// benchRun measures end-to-end simulation throughput for a policy.
func benchRun(b *testing.B, policy core.Policy, load float64) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := scenario(policy, load, 0.8, mobility.HighMobility, uint64(i+1))
		cfg.StaticReserve = 10
		n := MustNew(cfg)
		n.Run(500)
		events += n.EventsFired()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkRunStatic(b *testing.B) { benchRun(b, core.Static, 200) }
func BenchmarkRunAC1(b *testing.B)    { benchRun(b, core.AC1, 200) }
func BenchmarkRunAC2(b *testing.B)    { benchRun(b, core.AC2, 200) }
func BenchmarkRunAC3(b *testing.B)    { benchRun(b, core.AC3, 200) }

func BenchmarkRunAC3Overloaded(b *testing.B) { benchRun(b, core.AC3, 300) }

func BenchmarkRunAC3AllFeatures(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := scenario(core.AC3, 250, 0.6, mobility.HighMobility, uint64(i+1))
		cfg.AdaptiveQoS = AdaptiveQoSConfig{Enabled: true, VideoMinBUs: 2}
		cfg.SoftHandOff = SoftHandOffConfig{Enabled: true, OverlapSeconds: 4}
		cfg.DirectionHints = true
		MustNew(cfg).Run(500)
	}
}
