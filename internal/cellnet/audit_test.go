package cellnet

import (
	"testing"

	"cellqos/internal/audit"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/wired"
)

// wantAuditViolation runs fn and asserts it panics with a *audit.Violation
// for the named invariant.
func wantAuditViolation(t *testing.T, invariant string, fn func()) *audit.Violation {
	t.Helper()
	var got *audit.Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic, want %s violation", invariant)
			}
			v, ok := r.(*audit.Violation)
			if !ok {
				t.Fatalf("panicked with %T (%v), want *audit.Violation", r, r)
			}
			got = v
		}()
		fn()
	}()
	if got.Invariant != invariant {
		t.Fatalf("violation invariant = %q, want %q (detail: %s)", got.Invariant, invariant, got.Detail)
	}
	return got
}

// warmNetwork runs a short audited scenario until connections are live.
func warmNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	n := MustNew(cfg)
	n.RunUntil(300)
	if n.ActiveConnections() == 0 {
		t.Fatal("warmup produced no live connections")
	}
	return n
}

// anyLiveConn returns one live connection (deterministically the one
// with the smallest ID, so failures reproduce).
func anyLiveConn(n *Network) *connection {
	var best *connection
	for _, c := range n.conns {
		if best == nil || c.id < best.id {
			best = c
		}
	}
	return best
}

// TestAuditCatchesEngineLeak: tearing a connection down in the engine
// while the network still tracks it is exactly the class of bug the
// audit exists for — the next check trips connection-lifecycle.
func TestAuditCatchesEngineLeak(t *testing.T) {
	n := warmNetwork(t, scenario(core.AC3, 200, 1.0, mobility.HighMobility, 81))
	conn := anyLiveConn(n)
	n.cells[conn.cell].engine.RemoveConnection(conn.id)
	v := wantAuditViolation(t, "connection-lifecycle", func() { n.Snapshot() })
	if v.Snapshot == "" || v.Time != 300 {
		t.Errorf("violation not located: %+v", v)
	}
}

// TestAuditCatchesPledgeCorruption: a pledge not backed by any live
// connection (the signature of a rollback bug) trips pledge-conservation.
func TestAuditCatchesPledgeCorruption(t *testing.T) {
	n := warmNetwork(t, scenario(core.AC3, 200, 1.0, mobility.HighMobility, 82))
	if !n.cells[4].engine.Pledge(1) {
		t.Fatal("seeding pledge failed")
	}
	v := wantAuditViolation(t, "pledge-conservation", func() { n.Snapshot() })
	if v.Cell != "cell 4" {
		t.Errorf("violation cell = %q, want cell 4", v.Cell)
	}
}

// TestAuditCatchesCounterCorruption: Blocked running ahead of Requested
// would print P_CB > 1 in Table 2; the audit refuses to build the Result.
func TestAuditCatchesCounterCorruption(t *testing.T) {
	n := warmNetwork(t, scenario(core.AC3, 200, 1.0, mobility.HighMobility, 83))
	n.cells[2].counters.Blocked = n.cells[2].counters.Requested + 1
	wantAuditViolation(t, "counter-consistency", func() { n.Snapshot() })
}

// TestAuditCatchesWiredLeak: an extra backbone reservation with no
// owning path trips wired-conservation.
func TestAuditCatchesWiredLeak(t *testing.T) {
	cfg := scenario(core.AC3, 150, 1.0, mobility.HighMobility, 84)
	cfg.Backbone = wired.StarOfMSCs(cfg.Topology, 2, 1000, 5000, wired.FullReroute)
	n := warmNetwork(t, cfg)
	conn := anyLiveConn(n)
	if !cfg.Backbone.Graph().Reserve(conn.wpath, 1) {
		t.Fatal("seeding wired reservation failed")
	}
	v := wantAuditViolation(t, "wired-conservation", func() { n.Snapshot() })
	if v.Cell != "backbone" {
		t.Errorf("violation cell = %q, want backbone", v.Cell)
	}
}

// TestAuditCatchesMidRunCorruption: corruption seeded between run slices
// is caught by the event-boundary hook during the next slice, not only
// at Snapshot.
func TestAuditCatchesMidRunCorruption(t *testing.T) {
	n := warmNetwork(t, scenario(core.AC3, 200, 1.0, mobility.HighMobility, 85))
	if !n.cells[0].engine.Pledge(3) {
		t.Fatal("seeding pledge failed")
	}
	wantAuditViolation(t, "pledge-conservation", func() { n.RunUntil(400) })
}

// TestAuditDoesNotPerturbResults: auditing is read-only — a run with the
// checker attached produces byte-for-byte the counters of a run without.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	audited := scenario(core.AC3, 200, 0.8, mobility.HighMobility, 86)
	plain := audited
	plain.Audit = nil
	a := MustNew(audited).Run(1500)
	b := MustNew(plain).Run(1500)
	if a.Total != b.Total {
		t.Fatalf("audit perturbed the run:\n%+v\n%+v", a.Total, b.Total)
	}
}

// TestAuditSampledStillChecksSnapshot: with sparse event sampling the
// Snapshot-time check still runs in full and catches corruption.
func TestAuditSampledStillChecksSnapshot(t *testing.T) {
	cfg := scenario(core.AC3, 200, 1.0, mobility.HighMobility, 87)
	cfg.Audit = &audit.Checker{EveryN: 1 << 30} // effectively never at events
	n := warmNetwork(t, cfg)
	if !n.cells[1].engine.Pledge(2) {
		t.Fatal("seeding pledge failed")
	}
	n.RunUntil(350) // sampled hook stays quiet
	wantAuditViolation(t, "pledge-conservation", func() { n.Snapshot() })
}

// TestMobSpecBackboneBlockRollsBackPledges is the regression test for a
// real leak the audit surfaced: under MobSpec with a wired backbone, a
// connection whose pledges succeeded but whose backbone route was then
// blocked left its pledges held forever. With auditing on, the leak
// would trip pledge-conservation at the next event.
func TestMobSpecBackboneBlockRollsBackPledges(t *testing.T) {
	cfg := scenario(core.MobSpec, 250, 1.0, mobility.HighMobility, 88)
	cfg.MobSpecHorizon = 2
	// Starved BS uplinks: plenty of wireless room, frequent wired blocks.
	cfg.Backbone = wired.StarOfMSCs(cfg.Topology, 2, 10, 5000, wired.FullReroute)
	n := MustNew(cfg)
	res := n.Run(2000)
	if res.WiredBlocked == 0 {
		t.Fatal("scenario produced no wired blocks; regression not exercised")
	}
}
