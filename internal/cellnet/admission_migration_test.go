package cellnet

import (
	"reflect"
	"testing"

	"cellqos/internal/core"
	"cellqos/internal/mobility"
)

// TestEnumRegistryDifferential is the migration proof for the enum's
// deprecation window: a config selecting a scheme through the legacy
// Policy enum and one selecting the same scheme through Config.Admission
// produce byte-identical results, per policy. (The full corpus proof is
// internal/golden; this differential pins the Config-level equivalence
// directly and runs in the ordinary test tier.)
func TestEnumRegistryDifferential(t *testing.T) {
	cases := []struct {
		enum core.Policy
		name string
	}{
		{core.AC1, "AC1"},
		{core.AC3, "AC3"},
		{core.Static, "static"},
		{core.None, "none"},
		{core.ExpDwell, "exp-dwell"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy := scenario(tc.enum, 200, 0.8, mobility.HighMobility, 7)
			legacy.ExpDwellMean, legacy.ExpDwellWindow = 35, 30
			viaEnum := MustNew(legacy).Run(600)

			registry := scenario(tc.enum, 200, 0.8, mobility.HighMobility, 7)
			registry.ExpDwellMean, registry.ExpDwellWindow = 35, 30
			registry.Policy = 0 // zero enum must be ignored when Admission is set
			registry.Admission = core.MustPolicy(tc.name)
			viaRegistry := MustNew(registry).Run(600)

			if !reflect.DeepEqual(viaEnum, viaRegistry) {
				t.Fatalf("enum and registry runs diverged for %s:\nenum:     %+v\nregistry: %+v",
					tc.name, viaEnum, viaRegistry)
			}
		})
	}
}
