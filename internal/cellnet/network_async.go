package cellnet

import (
	"fmt"
	"math"
	"math/rand/v2"

	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/sim"
	"cellqos/internal/sim/shard"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

// This file implements the asynchronous signaling model selected by
// Config.Sharding.SignalingLatency > 0: the metro-scale mode where one
// run executes across all kernel shards concurrently.
//
// The synchronous model cannot be parallelized bit-exactly — it consumes
// one shared RNG stream in global event order and queries neighbor
// engines with zero latency. The async model replaces both with
// constructions whose results are independent of the shard count:
//
//   - Randomness: each cell owns a PCG stream (arrivals, class mix,
//     lifetimes, retries) and each connection owns a PCG stream seeded
//     from its ID (mobility path draws, which happen hop by hop as the
//     connection migrates across shards). Streams are keyed by cell and
//     connection IDs, never by shard.
//   - Cross-cell interaction: every hand-off and every peer-state
//     exchange travels as a mailbox message (shard.Shard.Send) with the
//     uniform one-way SignalingLatency. Messages are delivered at
//     window barriers ordered by (time, source cell, per-cell sequence)
//     — all shard-count independent.
//   - Peer state: instead of synchronous queries, every ExchangePeriod
//     each cell sends a query to each neighbor (arriving one latency
//     later); the neighbor evaluates Eq. 5 toward the asker plus its
//     snapshot state and replies (one more latency). Replies land in
//     the asker's mirror, which then serves core.Peers reads locally.
//     Until the first reply arrives a neighbor reads as unreachable and
//     the engine's Fallback policy applies — the same degradation
//     machinery the fault-injection mode exercises, now modeling
//     information delay instead of loss.
//
// Same-time events on different cells are safe to reorder: they either
// touch disjoint per-cell state or interact only through the keyed
// mailbox. That, plus the kernel's deterministic merge, is the whole
// determinism argument (DESIGN.md §13).

// cellStream derives cell id's RNG stream selector (splitmix-style odd
// multiplier keeps streams well separated for adjacent IDs).
func cellStream(id topology.CellID) uint64 {
	return 0x9e3779b97f4a7c15 ^ (uint64(id)+1)*0xbf58476d1ce4e5b9
}

// connStream derives a connection's RNG stream selector from its
// shard-count-independent ID.
func connStream(id core.ConnID) uint64 {
	return 0x2545f4914f6cdd1d ^ (uint64(id)+1)*0x94d049bb133111eb
}

// mirrorEntry is one neighbor's last replied state.
type mirrorEntry struct {
	ok         bool    // a reply has arrived
	outgoing   float64 // Eq. 5 contribution toward this cell, at reply time
	used, cap  int
	lastBr     float64
	maxSojourn float64
}

// mirrorPeers serves core.Peers from the cell's mirror: reads are local
// and immediate; freshness is bounded by ExchangePeriod + 2·latency.
// The now/test arguments are ignored — they were fixed when the mirror
// entry was computed, which is exactly the staleness the model is about.
type mirrorPeers struct{ c *cell }

func (p *mirrorPeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	e := p.c.mirror[li]
	return e.outgoing, e.ok
}

func (p *mirrorPeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	e := p.c.mirror[li]
	return e.used, e.cap, e.lastBr, e.ok
}

func (p *mirrorPeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	// A delayed plane cannot force a synchronous recompute; the last
	// replied B_r stands in. AC2/AC3 therefore see Exchange-period-old
	// neighbor reservations, which is the point of the model.
	e := p.c.mirror[li]
	return e.used, e.cap, e.lastBr, e.ok
}

func (p *mirrorPeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	e := p.c.mirror[li]
	return e.maxSojourn, e.ok
}

// shardState is one shard's ownership table: the cells it hosts and the
// connections currently resident in them. Only events executing on the
// shard touch it; the coordinator reads it at barriers and between runs.
type shardState struct {
	idx   int
	sh    *shard.Shard
	cells []*cell // owned cells, ascending ID
	conns map[core.ConnID]*connection

	// Single-writer lifecycle counters for the barrier conservation
	// audit: births/deaths of connections on this shard, and hand-off
	// messages sent to/received from the mailbox.
	births, deaths uint64
	sentHO, recvHO uint64
}

// send books a mailbox message from cell c with the model's uniform
// signaling latency and a (source cell, per-cell sequence) ordering key.
func (n *Network) send(c *cell, dstCell topology.CellID, fn sim.Event) {
	c.msgSeq++
	key := uint64(c.id)<<32 | (c.msgSeq & 0xffffffff)
	at := c.sched.Now() + n.cfg.Sharding.SignalingLatency
	c.sched.(*shard.Shard).Send(n.part.ShardOf(dstCell), at, key, fn)
}

// startAsync finishes construction for the async model: ownership
// tables, initial arrivals, per-shard history sweeps, peer-exchange
// rounds, and the barrier audit.
func (n *Network) startAsync() {
	n.shards = make([]*shardState, n.shk.NumShards())
	for s := range n.shards {
		st := &shardState{idx: s, sh: n.shk.Shard(s), conns: make(map[core.ConnID]*connection)}
		for _, id := range n.part.Cells(s) {
			st.cells = append(st.cells, n.cells[id])
		}
		n.shards[s] = st
	}
	usesPeers := n.traits.UsesPeers
	for _, st := range n.shards {
		for _, c := range st.cells {
			n.scheduleNextArrivalAsync(st, c)
		}
		if n.traits.Adaptive && !math.IsInf(n.cfg.Estimation.Tint, 1) {
			n.scheduleShardSweep(st, n.cfg.Estimation.Period)
		}
		if usesPeers {
			n.scheduleExchange(st, n.cfg.Sharding.exchangeEvery())
		}
	}
	if n.cfg.Audit != nil {
		n.shk.AtBarrier(func(now float64) {
			n.barrierTick++
			if n.cfg.Audit.Sample(n.barrierTick) {
				n.auditAsyncNow(now)
			}
		})
	}
}

// scheduleNextArrivalAsync books cell c's next Poisson new-connection
// request from its own stream.
func (n *Network) scheduleNextArrivalAsync(st *shardState, c *cell) {
	at, ok := traffic.NextArrival(c.rng, n.cfg.Schedule, c.sched.Now())
	if !ok {
		return // no load ever again
	}
	if _, err := c.sched.At(at, func(sim.Scheduler) {
		class := n.cfg.Mix.Sample(c.rng)
		min, max := class.Bandwidth, class.Bandwidth
		if n.cfg.AdaptiveQoS.Enabled && class == traffic.Video {
			min = n.cfg.AdaptiveQoS.VideoMinBUs
		}
		n.requestAsync(st, c, min, max, serviceClass(class), 1)
		n.scheduleNextArrivalAsync(st, c)
	}); err != nil {
		panic(err)
	}
}

// requestAsync runs the admission test for a new connection in cell c.
// Reservation state of neighbors comes from the mirror, so the test is
// local and immediate; only its inputs are delayed.
func (n *Network) requestAsync(st *shardState, c *cell, min, max int, svc core.ServiceClass, nRet int) {
	now := c.sched.Now()
	d := c.engine.AdmitNewRequest(now, core.Request{Bandwidth: min, Class: svc}, c.peers)
	c.counters.RecordAdmissionTest(d.BrCalcs)
	admitted := d.Admitted
	c.counters.RecordRequest(!admitted)
	c.hourly.RecordRequest(now, !admitted)
	n.noteBr(c, now)
	if admitted {
		n.establishAsync(st, c, min, max, svc, now)
		return
	}
	if n.cfg.Retry.ShouldRetry(c.rng, nRet) {
		c.sched.MustAfter(n.cfg.Retry.WaitSeconds, func(sim.Scheduler) {
			n.requestAsync(st, c, min, max, svc, nRet+1)
		})
	}
}

// establishAsync creates an admitted connection in cell c with a
// shard-count-independent ID and its own mobility stream.
func (n *Network) establishAsync(st *shardState, c *cell, min, max int, svc core.ServiceClass, now float64) {
	c.connSeq++
	id := core.ConnID(uint64(c.id)<<32 | (c.connSeq & 0xffffffff))
	conn := &connection{
		id:         id,
		bw:         min,
		min:        min,
		max:        max,
		class:      svc,
		cell:       c.id,
		prevInCell: topology.Self,
		enteredAt:  now,
		diesAt:     now + traffic.Lifetime(c.rng, n.cfg.MeanLifetime),
		rng:        rand.New(rand.NewPCG(n.cfg.Seed, connStream(id))),
	}
	conn.path = n.newPathFrom(conn.rng, c.id, now)
	st.conns[id] = conn
	st.births++
	hop, ok := conn.path.NextHop()
	if min == max {
		c.engine.AddConnection(id, core.ConnSpec{Min: min, Prev: topology.Self, Hint: n.hintFor(c.id, hop, ok), Class: svc}, now)
	} else {
		conn.bw = c.engine.AddConnection(id, core.ConnSpec{Min: min, Max: max, Prev: topology.Self, Class: svc}, now)
	}
	n.noteBu(c, now)
	n.scheduleDepartureAsync(st, conn, hop, ok)
}

// newPathFrom is newPath against an explicit stream and clock.
func (n *Network) newPathFrom(rng *rand.Rand, start topology.CellID, now float64) mobility.Path {
	if sa, ok := n.cfg.Mobility.(mobility.SpeedAware); ok {
		lo, hi := n.cfg.Schedule.Speed(now)
		if hi > 0 {
			return sa.NewPathWithSpeed(rng, start, mobility.SpeedRange{MinKmh: lo, MaxKmh: hi})
		}
	}
	return n.cfg.Mobility.NewPath(rng, start)
}

// scheduleDepartureAsync books the connection's next event on the shard
// owning its current cell. A connection can arrive from a hand-off with
// its lifetime already expired (it died in transit); the remaining
// lifetime clamps to zero and the completion fires immediately.
func (n *Network) scheduleDepartureAsync(st *shardState, conn *connection, hop mobility.Hop, ok bool) {
	c := n.cells[conn.cell]
	now := c.sched.Now()
	if ok && !math.IsInf(hop.Sojourn, 1) && now+hop.Sojourn < conn.diesAt {
		c.sched.MustAfter(hop.Sojourn, func(sim.Scheduler) { n.onCrossingAsync(st, conn.id, hop) })
		return
	}
	d := conn.diesAt - now
	if d < 0 {
		d = 0
	}
	c.sched.MustAfter(d, func(sim.Scheduler) { n.onLifetimeEndAsync(st, conn.id) })
}

// onCrossingAsync processes a mobile reaching its cell boundary: the
// departing cell releases and records immediately; the connection then
// travels to the destination cell as a mailbox message and the admission
// outcome is decided there, one signaling latency later.
func (n *Network) onCrossingAsync(st *shardState, id core.ConnID, hop mobility.Hop) {
	conn, ok := st.conns[id]
	if !ok {
		panic(fmt.Sprintf("cellnet: crossing for dead connection %d", id))
	}
	from := n.cells[conn.cell]
	now := from.sched.Now()
	tSoj := now - conn.enteredAt

	if hop.Next == topology.None {
		from.engine.RemoveConnection(id)
		n.reclaim(from, now)
		from.counters.Exited++
		st.deaths++
		delete(st.conns, id)
		return
	}

	nextLocal, okLocal := n.cfg.Topology.LocalOf(from.id, hop.Next)
	if !okLocal {
		panic(fmt.Sprintf("cellnet: crossing %d→%d between non-neighbors", from.id, hop.Next))
	}
	from.engine.RemoveConnection(id)
	n.reclaim(from, now)
	// The movement is always recorded: with a delayed control plane the
	// departing cell cannot know the remote admission outcome (Config
	// validation rejects SkipDroppedDepartures in this mode).
	from.engine.RecordDeparture(predict.Quadruplet{
		Event: now, Prev: conn.prevInCell, Next: nextLocal, Sojourn: tSoj,
	})
	delete(st.conns, id)
	st.sentHO++
	fromID, toID := from.id, hop.Next
	dstState := n.shards[n.part.ShardOf(toID)]
	n.send(from, toID, func(sim.Scheduler) {
		n.onHandOffArrive(dstState, conn, fromID, toID)
	})
}

// onHandOffArrive processes a hand-off message at the destination cell.
func (n *Network) onHandOffArrive(st *shardState, conn *connection, fromID, toID topology.CellID) {
	to := n.cells[toID]
	now := to.sched.Now()
	st.recvHO++
	admitted := to.engine.AdmitHandOffRequest(now, core.Request{Bandwidth: conn.min, Class: conn.class}, to.peers).Admitted
	if !admitted && n.cfg.AdaptiveQoS.Enabled {
		admitted = to.engine.DowngradeToFit(conn.min)
		n.noteBu(to, now)
	}
	to.counters.RecordHandOff(!admitted)
	to.hourly.RecordHandOff(now, !admitted)
	to.engine.NoteHandOffArrival(now, !admitted, to.peers)
	if to.trace != nil {
		to.trace.Test.Append(now, to.engine.Test())
		to.trace.PHD.Append(now, to.counters.PHD())
	}
	if !admitted {
		st.deaths++ // hand-off drop: the connection dies in transit
		return
	}
	prevLocal, _ := n.cfg.Topology.LocalOf(toID, fromID)
	nextHop, okNext := conn.path.NextHop()
	if conn.min == conn.max {
		to.engine.AddConnection(conn.id, core.ConnSpec{Min: conn.min, Prev: prevLocal, Hint: n.hintFor(toID, nextHop, okNext), Class: conn.class}, now)
	} else {
		conn.bw = to.engine.AddConnection(conn.id, core.ConnSpec{Min: conn.min, Max: conn.max, Prev: prevLocal, Class: conn.class}, now)
	}
	n.noteBu(to, now)
	conn.cell = toID
	conn.prevInCell = prevLocal
	conn.enteredAt = now
	st.conns[conn.id] = conn
	n.scheduleDepartureAsync(st, conn, nextHop, okNext)
}

// onLifetimeEndAsync completes a connection naturally.
func (n *Network) onLifetimeEndAsync(st *shardState, id core.ConnID) {
	conn, ok := st.conns[id]
	if !ok {
		panic(fmt.Sprintf("cellnet: lifetime end for dead connection %d", id))
	}
	c := n.cells[conn.cell]
	c.engine.RemoveConnection(id)
	n.reclaim(c, c.sched.Now())
	c.counters.Completed++
	st.deaths++
	delete(st.conns, id)
}

// scheduleShardSweep books the §3.1 cache-deletion pass over this
// shard's cells only.
func (n *Network) scheduleShardSweep(st *shardState, period float64) {
	st.sh.MustAfter(period, func(sim.Scheduler) {
		t := st.sh.Now()
		for _, c := range st.cells {
			c.engine.SweepHistory(t)
		}
		n.scheduleShardSweep(st, period)
	})
}

// scheduleExchange books the shard's next peer-exchange round: each
// owned cell queries each neighbor. A round is one event per shard, not
// per cell — rounds across shards share a timestamp, which is safe
// because each cell's part touches only that cell plus the mailbox.
func (n *Network) scheduleExchange(st *shardState, period float64) {
	st.sh.MustAfter(period, func(sim.Scheduler) {
		now := st.sh.Now()
		for _, c := range st.cells {
			n.exchangeCell(c, now)
		}
		n.scheduleExchange(st, period)
	})
}

// exchangeCell queries every neighbor of c for the round. The neighbor
// answers with its Eq. 5 contribution toward c (evaluated with c's
// T_est as of the query) and its snapshot state; the reply lands in c's
// mirror two latencies after now.
//
// The round's queries are batched into one mailbox message per
// destination shard instead of one per neighbor: the per-neighbor
// onPeerQuery calls touch disjoint neighbor state and previously
// executed back-to-back anyway (consecutive per-cell keys at one
// timestamp), so executing them in local-index order inside a single
// delivery preserves the exact event order while cutting mailbox
// traffic per exchange round from degree messages to the number of
// neighboring shards. Exchange accounting stays per query — Exchanges
// counts information exchanges, not transport messages.
func (n *Network) exchangeCell(c *cell, now float64) {
	test := c.engine.Test()
	deg := n.cfg.Topology.Degree(c.id)
	type query struct {
		li   topology.LocalIndex
		nbID topology.CellID
	}
	type bundle struct {
		shard   int
		queries []query
	}
	var bundles []bundle
	for i := 1; i <= deg; i++ {
		li := topology.LocalIndex(i)
		nbID, ok := n.cfg.Topology.FromLocal(c.id, li)
		if !ok {
			panic(fmt.Sprintf("cellnet: bad local index %d for cell %d", li, c.id))
		}
		c.exchanges++
		s := n.part.ShardOf(nbID)
		found := false
		for bi := range bundles {
			if bundles[bi].shard == s {
				bundles[bi].queries = append(bundles[bi].queries, query{li, nbID})
				found = true
				break
			}
		}
		if !found {
			bundles = append(bundles, bundle{shard: s, queries: []query{{li, nbID}}})
		}
	}
	srcID := c.id
	for _, b := range bundles {
		qs := b.queries
		n.send(c, qs[0].nbID, func(sim.Scheduler) {
			for _, q := range qs {
				n.onPeerQuery(srcID, q.nbID, q.li, test)
			}
		})
	}
}

// onPeerQuery answers a peer-state query at the neighbor and mails the
// reply back to the asker.
func (n *Network) onPeerQuery(srcID, nbID topology.CellID, liAtSrc topology.LocalIndex, test float64) {
	nb := n.cells[nbID]
	now := nb.sched.Now()
	toward, ok := n.cfg.Topology.LocalOf(nbID, srcID)
	if !ok {
		panic("cellnet: asymmetric neighborhood")
	}
	e := mirrorEntry{
		ok:         true,
		outgoing:   nb.engine.OutgoingReservation(now, toward, test),
		used:       nb.engine.UsedBandwidth(),
		cap:        nb.engine.Capacity(),
		lastBr:     nb.engine.LastTargetReservation(),
		maxSojourn: nb.engine.MaxSojourn(now),
	}
	n.send(nb, srcID, func(sim.Scheduler) {
		n.cells[srcID].mirror[liAtSrc] = e
	})
}

// auditAsyncNow is the cross-shard conservation sweep, run at window
// barriers (all shards quiescent, outboxes delivered). On top of the
// per-cell ledger/counter checks it verifies shard ownership and the
// hand-off conservation law: connections born minus connections dead
// equals connections resident in engines plus hand-offs still in the
// mailbox. The synchronous fault-free "no degraded accounting" check
// does not apply here — before a cell's first exchange reply its
// neighbors legitimately read as unreachable.
func (n *Network) auditAsyncNow(now float64) {
	ck := n.cfg.Audit
	n.auditTick++
	const eq5Stride = 4
	checkEq5 := n.auditTick%eq5Stride == 0
	engineConns := 0
	var sys stats.Counters
	for _, c := range n.cells {
		name := fmt.Sprintf("cell %d", c.id)
		l := c.engine.Ledger()
		ck.Engine(name, now, l)
		if checkEq5 {
			ck.Eq5Cache(name, now, c.engine)
		}
		ck.Counters(name, now, c.counters)
		engineConns += l.Connections
		sys.Add(&c.counters)
	}
	ck.Counters("system", now, sys)

	live := 0
	var births, deaths, sent, recv uint64
	for _, st := range n.shards {
		for id, conn := range st.conns {
			if _, _, _, ok := n.cells[conn.cell].engine.Connection(id); !ok {
				ck.Failf("connection-lifecycle", fmt.Sprintf("shard %d", st.idx), now,
					fmt.Sprintf("conn %d cell=%d", id, conn.cell),
					"live connection %d is not registered in its cell's engine", id)
			}
			if n.part.ShardOf(conn.cell) != st.idx {
				ck.Failf("shard-ownership", fmt.Sprintf("shard %d", st.idx), now,
					fmt.Sprintf("conn %d cell=%d", id, conn.cell),
					"connection %d resides in cell %d owned by shard %d, tracked by shard %d",
					id, conn.cell, n.part.ShardOf(conn.cell), st.idx)
			}
		}
		live += len(st.conns)
		births += st.births
		deaths += st.deaths
		sent += st.sentHO
		recv += st.recvHO
	}
	if recv > sent {
		ck.Failf("handoff-conservation", "system", now,
			fmt.Sprintf("sent=%d recv=%d", sent, recv),
			"more hand-off messages received (%d) than sent (%d)", recv, sent)
	}
	inFlight := int(sent - recv)
	if engineConns != live {
		ck.Failf("connection-lifecycle", "system", now,
			fmt.Sprintf("engines=%d shards=%d", engineConns, live),
			"engines hold %d connection entries, shard tables track %d", engineConns, live)
	}
	if int(births)-int(deaths) != live+inFlight {
		ck.Failf("handoff-conservation", "system", now,
			fmt.Sprintf("births=%d deaths=%d live=%d inflight=%d", births, deaths, live, inFlight),
			"conservation broken: %d born - %d dead != %d resident + %d in flight",
			births, deaths, live, inFlight)
	}
}
