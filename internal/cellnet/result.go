package cellnet

import (
	"cellqos/internal/stats"
	"cellqos/internal/topology"
)

// CellResult is one cell's end-of-run status (the rows of the paper's
// Tables 2–3).
type CellResult struct {
	ID       topology.CellID
	Counters stats.Counters
	PCB      float64
	PHD      float64
	Test     float64 // T_est at the end of the run
	Br       float64 // target reservation bandwidth at the end
	Bu       int     // used bandwidth at the end
	AvgBr    float64 // time-averaged target reservation
	AvgBu    float64 // time-averaged used bandwidth
	// Exchanges counts peer information exchanges this cell initiated.
	Exchanges uint64
}

// Result summarizes a run.
type Result struct {
	Duration float64
	Cells    []CellResult
	// Total aggregates every cell's counters.
	Total stats.Counters
	// PCB, PHD and NCalc are system-wide (paper Figs. 7–8, 12–13).
	PCB, PHD, NCalc float64
	// AvgBr and AvgBu are the per-cell time averages, averaged over
	// cells (paper Fig. 9).
	AvgBr, AvgBu float64
	// Hourly aggregates per-hour counters system-wide (Fig. 14(b)).
	Hourly []stats.Counters
	// Traces holds the per-cell time series requested via TraceCells.
	Traces map[topology.CellID]*Trace
	// Exchanges totals peer information exchanges.
	Exchanges uint64
	// Wired backbone outcomes (zero unless a Backbone is configured):
	// connections blocked / hand-offs dropped for lack of wired capacity,
	// successful re-routes, and the backbone bandwidth in use at the end.
	WiredBlocked  uint64
	WiredDropped  uint64
	WiredReroutes uint64
	WiredUsed     int
	// Soft hand-off outcomes (§7 CDMA extension): hand-offs completed
	// inside the overlap window vs dropped at its expiry.
	SoftSaved   uint64
	SoftExpired uint64
	// Adaptive-QoS outcomes (§1 integration): time-averaged degraded
	// bandwidth per cell and lifetime adaptation event counts.
	AvgDegraded   float64
	QoSDowngrades uint64
	QoSUpgrades   uint64
	// Degraded signaling-plane outcomes (Config.Faults): injected
	// exchange failures, B_r computations that substituted a fallback
	// contribution, and admission tests decided on unknown neighbor
	// state. All zero in a fault-free run.
	PeerFaults         uint64
	DegradedBrCalcs    uint64
	DegradedAdmissions uint64
}

// Run advances the simulation until the clock reaches end (absolute
// simulation seconds) and returns the accumulated results. It may be
// called repeatedly with increasing end times; statistics accumulate
// unless ResetStats is called in between.
func (n *Network) Run(end float64) *Result {
	n.RunUntil(end)
	return n.Snapshot()
}

// RunUntil advances the simulation clock to end (absolute seconds)
// without building a Result. Slicing a run into several RunUntil calls
// fires exactly the same events as one call with the final end time;
// internal/runner uses this to check for cancellation between slices.
func (n *Network) RunUntil(end float64) { n.kernel.RunUntil(end) }

// ResetStats zeroes all counters, hourly buckets and time averages while
// keeping connections, estimators and T_est state — used to discard a
// warm-up period.
func (n *Network) ResetStats() {
	now := n.now()
	for _, c := range n.cells {
		c.counters = stats.Counters{}
		c.hourly = stats.Hourly{}
		c.exchanges = 0
		br, bu := c.engine.LastTargetReservation(), float64(c.engine.UsedBandwidth())
		c.brTW = stats.TimeWeighted{}
		c.buTW = stats.TimeWeighted{}
		c.degTW = stats.TimeWeighted{}
		c.brTW.Set(now, br)
		c.buTW.Set(now, bu)
		c.degTW.Set(now, float64(c.engine.DegradedBandwidth()))
		if c.trace != nil {
			c.trace.Test = stats.Series{MinGap: n.cfg.TraceMinGap}
			c.trace.Br = stats.Series{MinGap: n.cfg.TraceMinGap}
			c.trace.PHD = stats.Series{MinGap: n.cfg.TraceMinGap}
		}
	}
}

// Snapshot builds a Result from the current statistics without
// advancing the simulation. When auditing is configured the full
// invariant check runs first — regardless of event sampling — so no
// Result is ever built from ledgers that would fail the audit.
func (n *Network) Snapshot() *Result {
	if n.cfg.Audit != nil {
		if n.shards != nil {
			n.auditAsyncNow(n.now())
		} else {
			n.auditNow()
		}
	}
	now := n.now()
	res := &Result{
		Duration: now,
		Cells:    make([]CellResult, len(n.cells)),
		Traces:   make(map[topology.CellID]*Trace),
	}
	maxHours := 0
	for i, c := range n.cells {
		res.Cells[i] = CellResult{
			ID:        c.id,
			Counters:  c.counters,
			PCB:       c.counters.PCB(),
			PHD:       c.counters.PHD(),
			Test:      c.engine.Test(),
			Br:        c.engine.LastTargetReservation(),
			Bu:        c.engine.UsedBandwidth(),
			AvgBr:     c.brTW.Mean(now),
			AvgBu:     c.buTW.Mean(now),
			Exchanges: c.exchanges,
		}
		res.Total.Add(&c.counters)
		res.AvgBr += res.Cells[i].AvgBr
		res.AvgBu += res.Cells[i].AvgBu
		res.Exchanges += c.exchanges
		if h := c.hourly.Hours(); h > maxHours {
			maxHours = h
		}
		if c.trace != nil {
			res.Traces[c.id] = c.trace
		}
	}
	nc := float64(len(n.cells))
	res.AvgBr /= nc
	res.AvgBu /= nc
	res.PCB = res.Total.PCB()
	res.PHD = res.Total.PHD()
	res.NCalc = res.Total.NCalc()
	res.Hourly = make([]stats.Counters, maxHours)
	for _, c := range n.cells {
		for h := 0; h < maxHours; h++ {
			hc := c.hourly.Hour(h)
			res.Hourly[h].Add(&hc)
		}
	}
	if b := n.cfg.Backbone; b != nil {
		res.WiredBlocked = b.Blocked
		res.WiredDropped = b.Dropped
		res.WiredReroutes = b.Reroutes
		res.WiredUsed = b.Graph().TotalUsed()
	}
	res.SoftSaved = n.softSaved
	res.SoftExpired = n.softExpired
	res.PeerFaults = n.peerFaults
	for _, c := range n.cells {
		res.DegradedBrCalcs += c.engine.DegradedBrCalcs()
		res.DegradedAdmissions += c.engine.DegradedAdmissions()
	}
	if n.cfg.AdaptiveQoS.Enabled {
		for _, c := range n.cells {
			res.AvgDegraded += c.degTW.Mean(now)
			down, up := c.engine.QoSAdaptations()
			res.QoSDowngrades += down
			res.QoSUpgrades += up
		}
		res.AvgDegraded /= nc
	}
	return res
}
