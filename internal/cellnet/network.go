package cellnet

import (
	"fmt"
	"math"
	"math/rand/v2"

	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/sim"
	"cellqos/internal/sim/shard"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

// Trace records a cell's control state over time (Figs. 10–11).
type Trace struct {
	// Test is T_est after each hand-off arrival.
	Test stats.Series
	// Br is the target reservation bandwidth after each recomputation.
	Br stats.Series
	// PHD is the cumulative hand-off dropping probability after each
	// hand-off arrival.
	PHD stats.Series
}

// cell bundles one base station's engine with its metrics.
type cell struct {
	id       topology.CellID
	engine   *core.Engine
	peers    core.Peers
	sched    sim.Scheduler // the cell's kernel shard (the whole kernel at 1 shard)
	counters stats.Counters
	hourly   stats.Hourly
	brTW     stats.TimeWeighted
	buTW     stats.TimeWeighted
	degTW    stats.TimeWeighted // degraded adaptive-QoS bandwidth
	// exchanges counts peer information exchanges initiated by this cell
	// (each is one request/response round trip on the signaling network).
	exchanges uint64
	trace     *Trace

	// Asynchronous-signaling state (Config.Sharding.Async); nil/zero in
	// the classic synchronous modes.
	rng     *rand.Rand    // per-cell stream: arrivals, class mix, lifetimes, retries
	mirror  []mirrorEntry // last known neighbor state, by local index (entry 0 unused)
	connSeq uint64        // per-cell connection counter (IDs: cell<<32 | seq)
	msgSeq  uint64        // per-cell message counter (mailbox ordering keys)
}

// connection is the network-level state of one mobile's connection.
type connection struct {
	id         core.ConnID
	bw         int
	cell       topology.CellID
	prevInCell topology.LocalIndex // local index (in cell's space) of the previous cell
	enteredAt  float64
	diesAt     float64
	path       mobility.Path
	wpath      wired.Path        // reserved backbone path (when a Backbone is configured)
	pledges    []topology.CellID // cells holding a MobSpec pledge for this connection
	min, max   int               // QoS range; rigid connections have min == max == bw
	class      core.ServiceClass // service class (voice = 0, video = streaming)
	// rng is the connection's private stream (async sharding only): the
	// mobility path draws per hop while the connection migrates across
	// shards, so the draws must follow the connection, not a cell or the
	// run. Nil in the classic synchronous modes, which share one stream.
	rng *rand.Rand
}

// Network is a runnable cellular-network simulation.
//
// In the classic synchronous modes a Network is single-threaded and
// confined to one goroutine: engines, counters, the event kernel and the
// RNG are all unsynchronized ("one Network per goroutine"). Concurrent
// sweeps (internal/runner) build one Network per scenario point from an
// independent Config; the only Config field that cannot be shared
// between Networks is the mutable Backbone pointer, which New claims via
// wired.Backbone.Attach.
//
// With Config.Sharding the cells are partitioned across the shards of an
// internal/sim/shard kernel. At zero signaling latency the shards merge
// serially — same semantics, same goldens. At positive latency the run
// switches to the asynchronous signaling model (see network_async.go)
// and the shards execute concurrently; each shard then only ever touches
// the cells and connections it owns, and Run/RunUntil/Snapshot remain
// single-goroutine entry points.
type Network struct {
	cfg    Config
	traits core.PolicyTraits // resolved admission-policy traits
	kernel sim.Kernel
	shk    *shard.Kernel        // non-nil when Sharding selects the sharded kernel
	part   *topology.Partition  // cell→shard ownership (nil with the single-heap kernel)
	shards []*shardState        // async mode only: per-shard ownership tables
	rng    *rand.Rand           // shared stream (nil in async mode)
	cells  []*cell
	conns  map[core.ConnID]*connection // synchronous modes only; async owns conns per shard
	nextID core.ConnID

	// Soft hand-off outcome counters (§7 CDMA extension).
	softSaved   uint64 // hand-offs completed within the overlap window
	softExpired uint64 // pending hand-offs dropped at window expiry

	// Fault-injection state (Config.Faults): a dedicated RNG stream so
	// the fault schedule never perturbs the traffic/mobility draws, and
	// the count of injected exchange failures.
	faultRng   *rand.Rand
	peerFaults uint64

	// specCache memoizes the MobSpec within-horizon cell set per start
	// cell (specOK marks computed entries — an empty spec is a valid
	// result). Topology and horizon are immutable for the life of a
	// Network, so the BFS runs once per cell per run and an admission
	// burst walks precomputed specs, paying only the pledge calls.
	specCache [][]topology.CellID
	specOK    []bool

	// auditTick counts auditNow passes; the expensive Eq. 5 cache
	// re-derivation runs on a stride of it (see audit.go).
	auditTick uint64

	// barrierTick counts windowed-kernel barriers in the async model;
	// the cross-shard audit samples on it (see network_async.go).
	barrierTick uint64
}

// now returns the serial simulation clock. Valid in the synchronous
// modes (single-heap or serial merge), where the kernel clock is the
// current event time; async event code reads its shard clock instead.
func (n *Network) now() float64 { return n.kernel.Now() }

// New builds a network from a validated config.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Backbone != nil {
		if err := cfg.Backbone.Attach(); err != nil {
			return nil, err
		}
	}
	n := &Network{cfg: cfg, traits: cfg.admissionTraits()}
	async := cfg.Sharding.Async()
	if !async {
		n.rng = rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
		n.conns = make(map[core.ConnID]*connection)
	}
	if cfg.Faults.Enabled {
		n.faultRng = rand.New(rand.NewPCG(cfg.Seed, 0xfa17_fa17_fa17_fa17))
	}
	// Pick the event kernel. One shard at zero latency keeps the classic
	// single-heap Simulator; otherwise the cells are partitioned across a
	// sharded kernel — merged serially at zero latency (same semantics),
	// windowed in parallel under the async signaling model.
	nshards := cfg.Sharding.NumShards()
	var single *sim.Simulator
	if nshards == 1 && !async {
		single = sim.New()
		n.kernel = single
	} else {
		n.part = topology.NewPartition(cfg.Topology, nshards)
		n.shk = shard.New(shard.Config{Shards: nshards, Lookahead: cfg.Sharding.SignalingLatency})
		n.kernel = n.shk
	}
	num := cfg.Topology.NumCells()
	n.cells = make([]*cell, num)
	for i := 0; i < num; i++ {
		id := topology.CellID(i)
		c := &cell{id: id, engine: core.NewEngine(cfg.engineConfig(id))}
		if single != nil {
			c.sched = single
		} else {
			c.sched = n.shk.Shard(n.part.ShardOf(id))
		}
		if async {
			c.peers = &mirrorPeers{c: c}
			c.rng = rand.New(rand.NewPCG(cfg.Seed, cellStream(id)))
			c.mirror = make([]mirrorEntry, cfg.Topology.Degree(id)+1)
		} else {
			c.peers = &memPeers{n: n, c: c}
		}
		c.brTW.Set(0, c.engine.LastTargetReservation())
		c.buTW.Set(0, 0)
		n.cells[i] = c
	}
	for _, id := range cfg.TraceCells {
		gap := cfg.TraceMinGap
		n.cells[id].trace = &Trace{
			Test: stats.Series{MinGap: gap},
			Br:   stats.Series{MinGap: gap},
			PHD:  stats.Series{MinGap: gap},
		}
	}
	if async {
		n.startAsync()
		return n, nil
	}
	for _, c := range n.cells {
		n.scheduleNextArrival(c)
	}
	if n.traits.Adaptive && !math.IsInf(cfg.Estimation.Tint, 1) {
		// Periodically apply the §3.1 cache-deletion rule so long runs
		// don't accumulate out-of-date quadruplets in idle pairs.
		n.scheduleSweep(cfg.Estimation.Period)
	}
	if cfg.Audit != nil {
		// Invariant auditing at event boundaries: every event's state
		// mutations are complete when the hook fires, so any ledger drift
		// is pinned to the event that introduced it.
		n.kernel.AfterEvent(func() {
			if cfg.Audit.Sample(n.kernel.Fired()) {
				n.auditNow()
			}
		})
	}
	return n, nil
}

// scheduleSweep books a recurring estimation-cache eviction pass. The
// sweep touches every cell, which is only legal because the synchronous
// modes execute serially; the async model schedules per-shard sweeps.
func (n *Network) scheduleSweep(period float64) {
	n.cells[0].sched.MustAfter(period, func(sim.Scheduler) {
		t := n.now()
		for _, c := range n.cells {
			c.engine.SweepHistory(t)
		}
		n.scheduleSweep(period)
	})
}

// MustNew is New for configs known to be valid; it panics on error.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Now returns the simulation clock.
func (n *Network) Now() float64 { return n.now() }

// Engine exposes a cell's engine for tests and diagnostics.
func (n *Network) Engine(id topology.CellID) *core.Engine { return n.cells[id].engine }

// ActiveConnections returns the number of live connections system-wide.
// In the async model this excludes hand-offs in flight between shards.
func (n *Network) ActiveConnections() int {
	if n.shards != nil {
		total := 0
		for _, st := range n.shards {
			total += len(st.conns)
		}
		return total
	}
	return len(n.conns)
}

// EventsFired returns the number of simulation events executed.
func (n *Network) EventsFired() uint64 { return n.kernel.Fired() }

// scheduleNextArrival books the cell's next Poisson new-connection
// request from the schedule.
func (n *Network) scheduleNextArrival(c *cell) {
	at, ok := traffic.NextArrival(n.rng, n.cfg.Schedule, n.now())
	if !ok {
		return // no load ever again
	}
	if _, err := c.sched.At(at, func(sim.Scheduler) {
		class := n.cfg.Mix.Sample(n.rng)
		min, max := class.Bandwidth, class.Bandwidth
		if n.cfg.AdaptiveQoS.Enabled && class == traffic.Video {
			min = n.cfg.AdaptiveQoS.VideoMinBUs
		}
		n.request(c, min, max, serviceClass(class), 1)
		n.scheduleNextArrival(c)
	}); err != nil {
		panic(err)
	}
}

// serviceClass maps the traffic mix onto admission service classes:
// voice is the highest priority, video the degradable streaming class.
func serviceClass(class traffic.Class) core.ServiceClass {
	if class == traffic.Video {
		return core.ClassStreaming
	}
	return core.ClassRealTime
}

// request runs the admission test for a new connection needing at least
// min and at most max BUs in cell c; nRet counts requests made so far by
// this user (for the retry model). Admission — and reservation — is on
// the minimum-QoS basis (§1).
func (n *Network) request(c *cell, min, max int, svc core.ServiceClass, nRet int) {
	now := n.now()
	d := c.engine.AdmitNewRequest(now, core.Request{Bandwidth: min, Class: svc}, c.peers)
	c.counters.RecordAdmissionTest(d.BrCalcs)
	admitted := d.Admitted
	var pledges []topology.CellID
	if admitted && n.traits.MobSpec {
		// Ref. [14]-style baseline: pledge the bandwidth in every cell of
		// the mobility specification, all-or-nothing.
		pledges, admitted = n.pledgeSpec(c.id, min)
	}
	var wpath wired.Path
	if admitted && n.cfg.Backbone != nil {
		// Wired-link reservation (§2/§7 extension): the backbone must
		// also carry the connection, or it blocks.
		wpath, admitted = n.cfg.Backbone.Connect(c.id, min)
		if !admitted && len(pledges) > 0 {
			// The MobSpec pledges were provisional on the whole admission:
			// a wired block means no connection, so roll them back.
			for _, id := range pledges {
				n.cells[id].engine.Unpledge(min)
			}
			pledges = nil
		}
	}
	c.counters.RecordRequest(!admitted)
	c.hourly.RecordRequest(now, !admitted)
	n.noteBr(c, now)
	if admitted {
		n.establish(c, min, max, svc, wpath, pledges)
		return
	}
	if n.cfg.Retry.ShouldRetry(n.rng, nRet) {
		c.sched.MustAfter(n.cfg.Retry.WaitSeconds, func(sim.Scheduler) {
			n.request(c, min, max, svc, nRet+1)
		})
	}
}

// pledgeSpec reserves bw in every cell within the MobSpec horizon of
// start, rolling back on the first refusal. The spec itself comes from
// the per-cell cache (mobSpec), so a burst of admissions in one cell
// repeats only the pledge calls, not the topology BFS.
func (n *Network) pledgeSpec(start topology.CellID, bw int) ([]topology.CellID, bool) {
	spec := n.mobSpec(start)
	for i, id := range spec {
		if !n.cells[id].engine.Pledge(bw) {
			for _, back := range spec[:i] {
				n.cells[back].engine.Unpledge(bw)
			}
			return nil, false
		}
	}
	if len(spec) == 0 {
		return nil, true
	}
	// The pledge list is per-connection mutable state (dropPledge and
	// hand-off re-pledges edit it in place): hand out a copy, never the
	// cached spec.
	return append([]topology.CellID(nil), spec...), true
}

// mobSpec returns the memoized within-horizon cell set for start.
func (n *Network) mobSpec(start topology.CellID) []topology.CellID {
	if n.specCache == nil {
		n.specCache = make([][]topology.CellID, len(n.cells))
		n.specOK = make([]bool, len(n.cells))
	}
	if !n.specOK[start] {
		h := n.cfg.MobSpecHorizon
		if h <= 0 {
			h = 2
		}
		n.specCache[start] = n.cfg.Topology.WithinHops(start, h)
		n.specOK[start] = true
	}
	return n.specCache[start]
}

// dropPledge releases the connection's pledge at one cell, if any.
func (n *Network) dropPledge(conn *connection, at topology.CellID) bool {
	for i, id := range conn.pledges {
		if id == at {
			n.cells[id].engine.Unpledge(conn.min)
			conn.pledges = append(conn.pledges[:i], conn.pledges[i+1:]...)
			return true
		}
	}
	return false
}

// releasePledges frees every remaining pledge of a dying connection.
func (n *Network) releasePledges(conn *connection) {
	for _, id := range conn.pledges {
		n.cells[id].engine.Unpledge(conn.min)
	}
	conn.pledges = nil
}

// establish creates an admitted connection in cell c.
func (n *Network) establish(c *cell, min, max int, svc core.ServiceClass, wpath wired.Path, pledges []topology.CellID) {
	now := n.now()
	n.nextID++
	conn := &connection{
		id:         n.nextID,
		bw:         min,
		min:        min,
		max:        max,
		class:      svc,
		cell:       c.id,
		prevInCell: topology.Self,
		enteredAt:  now,
		diesAt:     now + traffic.Lifetime(n.rng, n.cfg.MeanLifetime),
		path:       n.newPath(c.id),
		wpath:      wpath,
		pledges:    pledges,
	}
	n.conns[conn.id] = conn
	hop, ok := conn.path.NextHop()
	if min == max {
		c.engine.AddConnection(conn.id, core.ConnSpec{Min: min, Prev: topology.Self, Hint: n.hintFor(c.id, hop, ok), Class: svc}, now)
	} else {
		conn.bw = c.engine.AddConnection(conn.id, core.ConnSpec{Min: min, Max: max, Prev: topology.Self, Class: svc}, now)
	}
	n.noteBu(c, now)
	n.scheduleDeparture(conn, hop, ok)
}

// hintFor converts a known upcoming hop into a §7 direction hint when
// the scenario enables route-guidance information.
func (n *Network) hintFor(cur topology.CellID, hop mobility.Hop, ok bool) topology.LocalIndex {
	if !n.cfg.DirectionHints || !ok || hop.Next == topology.None {
		return core.NoHint
	}
	li, found := n.cfg.Topology.LocalOf(cur, hop.Next)
	if !found {
		return core.NoHint
	}
	return li
}

// newPath mints a movement path honoring the schedule's current speed
// range when the model supports it. A schedule that doesn't specify
// speeds (zero range, e.g. a bare traffic.Constant{Lambda: …}) defers to
// the model's own configured range.
func (n *Network) newPath(start topology.CellID) mobility.Path {
	if sa, ok := n.cfg.Mobility.(mobility.SpeedAware); ok {
		lo, hi := n.cfg.Schedule.Speed(n.now())
		if hi > 0 {
			return sa.NewPathWithSpeed(n.rng, start, mobility.SpeedRange{MinKmh: lo, MaxKmh: hi})
		}
	}
	return n.cfg.Mobility.NewPath(n.rng, start)
}

// scheduleDeparture books the single next event for a connection that
// just entered its current cell: either the boundary crossing or, when
// the connection dies first (or the mobile never moves), its natural
// end. The hop has already been drawn from the path (the engine may
// have consumed it as a direction hint).
func (n *Network) scheduleDeparture(conn *connection, hop mobility.Hop, ok bool) {
	now := n.now()
	sched := n.cells[conn.cell].sched
	if ok && !math.IsInf(hop.Sojourn, 1) && now+hop.Sojourn < conn.diesAt {
		sched.MustAfter(hop.Sojourn, func(sim.Scheduler) { n.onCrossing(conn.id, hop) })
		return
	}
	sched.MustAfter(conn.diesAt-now, func(sim.Scheduler) { n.onLifetimeEnd(conn.id) })
}

// onCrossing processes a mobile reaching its cell boundary.
func (n *Network) onCrossing(id core.ConnID, hop mobility.Hop) {
	conn, ok := n.conns[id]
	if !ok {
		panic(fmt.Sprintf("cellnet: crossing for dead connection %d", id))
	}
	now := n.now()
	from := n.cells[conn.cell]
	tSoj := now - conn.enteredAt

	if hop.Next == topology.None {
		// The mobile leaves the coverage area (open-line border).
		from.engine.RemoveConnection(id)
		n.reclaim(from, now)
		from.counters.Exited++
		n.releaseWired(conn)
		n.releasePledges(conn)
		delete(n.conns, id)
		return
	}

	to := n.cells[hop.Next]
	nextLocal, okLocal := n.cfg.Topology.LocalOf(from.id, to.id)
	if !okLocal {
		panic(fmt.Sprintf("cellnet: crossing %d→%d between non-neighbors", from.id, to.id))
	}
	// A MobSpec pledge at the destination converts into used bandwidth.
	n.dropPledge(conn, to.id)
	admitted := to.engine.AdmitHandOffRequest(now, core.Request{Bandwidth: conn.min, Class: conn.class}, to.peers).Admitted
	if !admitted && n.cfg.AdaptiveQoS.Enabled {
		// Adaptive QoS absorbs the hand-off by degrading existing
		// connections toward their minima (§1).
		admitted = to.engine.DowngradeToFit(conn.min)
		n.noteBu(to, now)
	}
	if admitted && n.cfg.Backbone != nil {
		// The backbone must re-route the wired path too, or the
		// hand-off drops despite wireless capacity.
		if wp, ok := n.cfg.Backbone.HandOff(conn.wpath, to.id, conn.min); ok {
			conn.wpath = wp
		} else {
			admitted = false
		}
	}

	// The departing cell observes the hand-off event (§3.1). Whether a
	// dropped hand-off still counts as a mobility observation is an
	// ablation toggle; the default records it.
	if admitted || !n.cfg.SkipDroppedDepartures {
		from.engine.RecordDeparture(predict.Quadruplet{
			Event: now, Prev: conn.prevInCell, Next: nextLocal, Sojourn: tSoj,
		})
	}

	if !admitted && n.cfg.SoftHandOff.Enabled {
		// §7 CDMA soft hand-off: hold both links for up to the overlap
		// window; the hand-off resolves (and is counted) later.
		deadline := math.Min(now+n.cfg.SoftHandOff.OverlapSeconds, conn.diesAt)
		n.scheduleSoftRetry(conn, from, to, deadline)
		return
	}

	n.resolveHandOff(conn, from, to, admitted)
	if !admitted {
		return
	}
	n.enterCell(conn, from, to)
}

// resolveHandOff books a hand-off outcome: counters, the T_est
// controller, traces, and teardown on a drop. The connection is removed
// from its old cell either way.
func (n *Network) resolveHandOff(conn *connection, from, to *cell, admitted bool) {
	now := n.now()
	to.counters.RecordHandOff(!admitted)
	to.hourly.RecordHandOff(now, !admitted)
	to.engine.NoteHandOffArrival(now, !admitted, to.peers)
	if to.trace != nil {
		to.trace.Test.Append(now, to.engine.Test())
		to.trace.PHD.Append(now, to.counters.PHD())
	}
	from.engine.RemoveConnection(conn.id)
	n.reclaim(from, now)
	if !admitted {
		n.releaseWired(conn)
		n.releasePledges(conn)
		delete(n.conns, conn.id) // hand-off drop: the connection dies
	}
}

// reclaim lets degraded adaptive-QoS connections grow back into freed
// bandwidth, then refreshes the cell's usage average.
func (n *Network) reclaim(c *cell, now float64) {
	if n.cfg.AdaptiveQoS.Enabled {
		c.engine.RedistributeFree()
	}
	n.noteBu(c, now)
}

// enterCell completes a successful hand-off: the connection joins the
// new cell and its next departure is scheduled.
func (n *Network) enterCell(conn *connection, from, to *cell) {
	now := n.now()
	prevLocal, _ := n.cfg.Topology.LocalOf(to.id, from.id)
	nextHop, okNext := conn.path.NextHop()
	if conn.min == conn.max {
		to.engine.AddConnection(conn.id, core.ConnSpec{Min: conn.min, Prev: prevLocal, Hint: n.hintFor(to.id, nextHop, okNext), Class: conn.class}, now)
	} else {
		conn.bw = to.engine.AddConnection(conn.id, core.ConnSpec{Min: conn.min, Max: conn.max, Prev: prevLocal, Class: conn.class}, now)
	}
	n.noteBu(to, now)
	conn.cell = to.id
	conn.prevInCell = prevLocal
	conn.enteredAt = now
	if n.traits.MobSpec {
		// Ref. [14] keeps the specification reserved for the whole
		// connection lifetime: the cell just left goes back on pledge
		// (the mobile may revisit it, e.g. by looping around a ring).
		// The bandwidth was freed this instant, so the pledge holds.
		if from.engine.Pledge(conn.min) {
			conn.pledges = append(conn.pledges, from.id)
		}
	}
	n.scheduleDeparture(conn, nextHop, okNext)
}

// scheduleSoftRetry books the next capacity re-test of a pending soft
// hand-off. While pending, the connection keeps its old-cell bandwidth
// (macrodiversity in the overlap region) and no other events exist for it.
func (n *Network) scheduleSoftRetry(conn *connection, from, to *cell, deadline float64) {
	now := n.now()
	next := math.Min(now+n.cfg.SoftHandOff.retryEvery(), deadline)
	n.cells[conn.cell].sched.MustAfter(next-now, func(sim.Scheduler) {
		n.onSoftRetry(conn.id, from, to, deadline)
	})
}

// onSoftRetry re-tests a pending soft hand-off.
func (n *Network) onSoftRetry(id core.ConnID, from, to *cell, deadline float64) {
	conn, ok := n.conns[id]
	if !ok {
		panic(fmt.Sprintf("cellnet: soft retry for dead connection %d", id))
	}
	now := n.now()
	if now >= conn.diesAt {
		// The call ended naturally while in the overlap region, still
		// served by the old cell.
		from.engine.RemoveConnection(id)
		n.reclaim(from, now)
		from.counters.Completed++
		n.releaseWired(conn)
		n.releasePledges(conn)
		delete(n.conns, id)
		return
	}
	// A MobSpec pledge at the destination converts into used bandwidth.
	n.dropPledge(conn, to.id)
	admitted := to.engine.AdmitHandOffRequest(now, core.Request{Bandwidth: conn.min, Class: conn.class}, to.peers).Admitted
	if !admitted && n.cfg.AdaptiveQoS.Enabled {
		admitted = to.engine.DowngradeToFit(conn.min)
		n.noteBu(to, now)
	}
	if admitted && n.cfg.Backbone != nil {
		if wp, wok := n.cfg.Backbone.HandOff(conn.wpath, to.id, conn.min); wok {
			conn.wpath = wp
		} else {
			admitted = false
		}
	}
	if admitted {
		n.softSaved++
		n.resolveHandOff(conn, from, to, true)
		n.enterCell(conn, from, to)
		return
	}
	if now >= deadline {
		n.softExpired++
		n.resolveHandOff(conn, from, to, false)
		return
	}
	n.scheduleSoftRetry(conn, from, to, deadline)
}

// onLifetimeEnd completes a connection naturally.
func (n *Network) onLifetimeEnd(id core.ConnID) {
	conn, ok := n.conns[id]
	if !ok {
		panic(fmt.Sprintf("cellnet: lifetime end for dead connection %d", id))
	}
	c := n.cells[conn.cell]
	c.engine.RemoveConnection(id)
	n.reclaim(c, n.now())
	c.counters.Completed++
	n.releaseWired(conn)
	n.releasePledges(conn)
	delete(n.conns, id)
}

// releaseWired frees a connection's backbone reservation, if any (the
// backbone always carries the minimum-QoS bandwidth).
func (n *Network) releaseWired(conn *connection) {
	if n.cfg.Backbone != nil && conn.wpath.Valid() {
		n.cfg.Backbone.Disconnect(conn.wpath, conn.min)
	}
}

// noteBu updates a cell's used-bandwidth time average (and, when
// adaptive QoS is on, the degradation average).
func (n *Network) noteBu(c *cell, now float64) {
	c.buTW.Set(now, float64(c.engine.UsedBandwidth()))
	if n.cfg.AdaptiveQoS.Enabled {
		c.degTW.Set(now, float64(c.engine.DegradedBandwidth()))
	}
}

// noteBr updates a cell's target-reservation time average and trace.
func (n *Network) noteBr(c *cell, now float64) {
	br := c.engine.LastTargetReservation()
	c.brTW.Set(now, br)
	if c.trace != nil {
		c.trace.Br.Append(now, br)
	}
}

// memPeers implements core.Peers by direct in-process calls to neighbor
// engines, counting one exchange per query (what a real deployment would
// send over the Fig. 1 signaling network). With Config.Faults enabled,
// each exchange independently fails with the configured probability —
// the in-process model of a lossy signaling plane — and the caller's
// engine degrades per its Fallback policy.
type memPeers struct {
	n *Network
	c *cell
}

func (p *memPeers) neighbor(li topology.LocalIndex) *cell {
	gid, ok := p.n.cfg.Topology.FromLocal(p.c.id, li)
	if !ok {
		panic(fmt.Sprintf("cellnet: bad local index %d for cell %d", li, p.c.id))
	}
	return p.n.cells[gid]
}

// faulted draws one Bernoulli trial from the dedicated fault stream.
func (p *memPeers) faulted() bool {
	if p.n.faultRng == nil {
		return false
	}
	if p.n.faultRng.Float64() >= p.n.cfg.Faults.Drop {
		return false
	}
	p.n.peerFaults++
	return true
}

// OutgoingReservation implements core.Peers (Eq. 5 at the neighbor).
func (p *memPeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	p.c.exchanges++
	if p.faulted() {
		return 0, false
	}
	nb := p.neighbor(li)
	toward, ok := p.n.cfg.Topology.LocalOf(nb.id, p.c.id)
	if !ok {
		panic("cellnet: asymmetric neighborhood")
	}
	return nb.engine.OutgoingReservation(now, toward, test), true
}

// Snapshot implements core.Peers.
func (p *memPeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	p.c.exchanges++
	if p.faulted() {
		return 0, 0, 0, false
	}
	nb := p.neighbor(li)
	return nb.engine.UsedBandwidth(), nb.engine.Capacity(), nb.engine.LastTargetReservation(), true
}

// RecomputeReservation implements core.Peers: the neighbor recomputes
// its own B_r (Eq. 6) with its own T_est and peers.
func (p *memPeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	p.c.exchanges++
	if p.faulted() {
		return 0, 0, 0, false
	}
	nb := p.neighbor(li)
	br := nb.engine.ComputeTargetReservation(now, nb.peers)
	p.n.noteBr(nb, now)
	return nb.engine.UsedBandwidth(), nb.engine.Capacity(), br, true
}

// MaxSojourn implements core.Peers.
func (p *memPeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	p.c.exchanges++
	if p.faulted() {
		return 0, false
	}
	return p.neighbor(li).engine.MaxSojourn(now), true
}
