package cellnet

import (
	"fmt"

	"cellqos/internal/stats"
)

// auditNow runs the full invariant audit against the network's current
// state (cfg.Audit must be non-nil). Per-engine ledger and counter
// checks delegate to the checker; the cross-layer conservation laws —
// which need the network's connection table — are assembled here:
//
//   - connection lifecycle: every live connection is registered in
//     exactly one engine, the one of its recorded cell. Together with
//     Σ engine connection counts == len(conns) that means no connection
//     leaked an engine entry on teardown and none is double-registered.
//   - pledge conservation: each cell's pledged pool equals the sum of
//     min-QoS bandwidth of live connections pledging there (MobSpec);
//     pledges released exactly once, never leaked past a teardown.
//   - wired conservation: backbone link usage equals the sum over live
//     paths of hops × min-QoS bandwidth; paths released exactly once.
func (n *Network) auditNow() {
	ck := n.cfg.Audit
	now := n.now()
	n.auditTick++
	// The Eq. 5 cache re-derivation repeats every cached direction's
	// from-scratch walk — by far the costliest check here — so it runs
	// on a stride of the already-sampled audit passes. The property test
	// and core unit tests cover the invariant densely; this sweep only
	// needs to catch drift in real simulation traffic eventually.
	const eq5Stride = 4
	checkEq5 := n.auditTick%eq5Stride == 0
	engineConns := 0
	var sys stats.Counters
	for _, c := range n.cells {
		name := fmt.Sprintf("cell %d", c.id)
		l := c.engine.Ledger()
		ck.Engine(name, now, l)
		if checkEq5 {
			ck.Eq5Cache(name, now, c.engine)
		}
		ck.Counters(name, now, c.counters)
		if !n.cfg.Faults.Enabled && (l.DegradedBrCalcs != 0 || l.DegradedAdmissions != 0) {
			// A fault-free in-process network can never lose a peer
			// exchange; any degraded-mode accounting here means an
			// ok=false path fired spuriously and the fallback policy is
			// silently distorting B_r.
			ck.Failf("degraded-accounting", name, now, fmt.Sprintf("%+v", l),
				"fault-free run recorded %d degraded B_r calcs / %d degraded admissions",
				l.DegradedBrCalcs, l.DegradedAdmissions)
		}
		engineConns += l.Connections
		sys.Add(&c.counters)
	}
	ck.Counters("system", now, sys)

	if engineConns != len(n.conns) {
		ck.Failf("connection-lifecycle", "system", now,
			fmt.Sprintf("engines=%d network=%d", engineConns, len(n.conns)),
			"engines hold %d connection entries, network tracks %d live connections",
			engineConns, len(n.conns))
	}
	pledgedWant := make([]int, len(n.cells))
	wiredWant := 0
	for id, conn := range n.conns {
		if _, _, _, ok := n.cells[conn.cell].engine.Connection(id); !ok {
			// With the count equality above, presence in the recorded cell
			// implies presence in exactly one cell.
			ck.Failf("connection-lifecycle", fmt.Sprintf("cell %d", conn.cell), now,
				fmt.Sprintf("conn %d bw=%d entered=%.6g", id, conn.bw, conn.enteredAt),
				"live connection %d is not registered in its cell's engine", id)
		}
		for _, pid := range conn.pledges {
			pledgedWant[pid] += conn.min
		}
		if conn.wpath.Valid() {
			wiredWant += len(conn.wpath.Links) * conn.min
		}
	}
	for i, c := range n.cells {
		if got := c.engine.PledgedBandwidth(); got != pledgedWant[i] {
			ck.Failf("pledge-conservation", fmt.Sprintf("cell %d", c.id), now,
				fmt.Sprintf("pledged=%d expected=%d", got, pledgedWant[i]),
				"engine pledge pool %d BUs != %d BUs pledged by live connections", got, pledgedWant[i])
		}
	}
	if b := n.cfg.Backbone; b != nil {
		if got := b.Graph().TotalUsed(); got != wiredWant {
			ck.Failf("wired-conservation", "backbone", now,
				fmt.Sprintf("links=%d paths=%d", got, wiredWant),
				"backbone links carry %d BUs, live paths account for %d", got, wiredWant)
		}
	}
}
