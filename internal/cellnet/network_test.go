package cellnet

import (
	"testing"

	"cellqos/internal/audit"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

// testAudit is attached to every cellnet test scenario: the invariant
// set is verified at sampled event boundaries (every 32nd event keeps
// the suite's wall-clock overhead ~25%) and in full at every Snapshot.
var testAudit = &audit.Checker{EveryN: 32}

// scenario builds a paper-style 10-cell ring config.
func scenario(policy core.Policy, load, rvo float64, sr mobility.SpeedRange, seed uint64) Config {
	top := topology.Ring(10)
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = policy
	cfg.Mix = traffic.Mix{VoiceRatio: rvo}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: sr}
	cfg.Schedule = traffic.Constant{
		Lambda: traffic.RateForLoad(load, cfg.Mix, cfg.MeanLifetime),
		MinKmh: sr.MinKmh, MaxKmh: sr.MaxKmh,
	}
	cfg.Seed = seed
	cfg.Audit = testAudit
	return cfg
}

func TestSmokeRunAC3(t *testing.T) {
	n := MustNew(scenario(core.AC3, 150, 1.0, mobility.HighMobility, 1))
	res := n.Run(2000)
	if res.Total.Requested == 0 {
		t.Fatal("no connection requests generated")
	}
	if res.Total.HandOffs == 0 {
		t.Fatal("no hand-offs occurred at high mobility")
	}
	if res.PCB < 0 || res.PCB > 1 || res.PHD < 0 || res.PHD > 1 {
		t.Fatalf("probabilities out of range: PCB=%v PHD=%v", res.PCB, res.PHD)
	}
	for _, c := range res.Cells {
		if c.Bu > 100 {
			t.Fatalf("cell %d used %d > capacity", c.ID, c.Bu)
		}
		if c.AvgBu < 0 || c.AvgBu > 100 {
			t.Fatalf("cell %d AvgBu %v out of range", c.ID, c.AvgBu)
		}
	}
}

func TestConnectionConservation(t *testing.T) {
	n := MustNew(scenario(core.AC3, 200, 0.8, mobility.HighMobility, 2))
	res := n.Run(3000)
	admitted := res.Total.Requested - res.Total.Blocked
	accounted := res.Total.Completed + res.Total.Dropped + res.Total.Exited + uint64(n.ActiveConnections())
	if admitted != accounted {
		t.Fatalf("conservation violated: admitted %d, accounted %d (completed %d dropped %d exited %d active %d)",
			admitted, accounted, res.Total.Completed, res.Total.Dropped, res.Total.Exited, n.ActiveConnections())
	}
	// On a ring nobody leaves coverage.
	if res.Total.Exited != 0 {
		t.Fatalf("ring run had %d coverage exits", res.Total.Exited)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustNew(scenario(core.AC3, 150, 0.8, mobility.HighMobility, 7)).Run(1500)
	b := MustNew(scenario(core.AC3, 150, 0.8, mobility.HighMobility, 7)).Run(1500)
	if a.Total != b.Total {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Total, b.Total)
	}
	if a.PCB != b.PCB || a.PHD != b.PHD || a.NCalc != b.NCalc {
		t.Fatal("same seed produced different probabilities")
	}
	c := MustNew(scenario(core.AC3, 150, 0.8, mobility.HighMobility, 8)).Run(1500)
	if a.Total == c.Total {
		t.Fatal("different seeds produced identical totals (suspicious)")
	}
}

func TestZeroLoadProducesNothing(t *testing.T) {
	cfg := scenario(core.AC3, 0, 1.0, mobility.HighMobility, 3)
	n := MustNew(cfg)
	res := n.Run(1000)
	if res.Total.Requested != 0 || res.Total.HandOffs != 0 {
		t.Fatalf("zero load produced traffic: %+v", res.Total)
	}
}

func TestStationaryMobilesNeverHandOff(t *testing.T) {
	cfg := scenario(core.AC3, 100, 1.0, mobility.HighMobility, 4)
	cfg.Mobility = mobility.Stationary{}
	n := MustNew(cfg)
	res := n.Run(2000)
	if res.Total.HandOffs != 0 || res.Total.Dropped != 0 {
		t.Fatalf("stationary mobiles handed off: %+v", res.Total)
	}
	for _, c := range res.Cells {
		if c.Test != 1 {
			t.Fatalf("cell %d T_est = %v, want untouched 1", c.ID, c.Test)
		}
	}
	if res.Total.Completed == 0 {
		t.Fatal("no connections completed")
	}
}

func TestOverloadBlocks(t *testing.T) {
	n := MustNew(scenario(core.AC3, 300, 1.0, mobility.HighMobility, 5))
	res := n.Run(2000)
	if res.PCB < 0.3 {
		t.Fatalf("PCB at load 300 = %v, expected heavy blocking", res.PCB)
	}
	// Offered load 300 on capacity 100: used bandwidth should be near
	// capacity on average after rampup.
	if res.AvgBu < 50 {
		t.Fatalf("AvgBu = %v, expected heavily used system", res.AvgBu)
	}
}

func TestAC3MeetsTargetUnderOverload(t *testing.T) {
	n := MustNew(scenario(core.AC3, 300, 1.0, mobility.HighMobility, 6))
	res := n.Run(4000)
	// The paper's design goal: P_HD ≤ 0.01 (we allow measurement noise
	// headroom on a short run; the full experiments use long runs).
	if res.PHD > 0.015 {
		t.Fatalf("AC3 P_HD = %v, want ≤ target 0.01 (+noise)", res.PHD)
	}
	if res.Total.HandOffs < 1000 {
		t.Fatalf("too few hand-offs (%d) for a meaningful P_HD", res.Total.HandOffs)
	}
}

func TestStaticUnderReservesForVideo(t *testing.T) {
	// Paper Fig. 7: G=10 violates the target for R_vo = 0.5 under load.
	cfg := scenario(core.Static, 300, 0.5, mobility.HighMobility, 7)
	cfg.StaticReserve = 10
	res := MustNew(cfg).Run(4000)
	if res.PHD <= 0.01 {
		t.Fatalf("static G=10, R_vo=0.5: P_HD = %v, paper expects target violation", res.PHD)
	}
}

func TestStaticZeroEqualsNone(t *testing.T) {
	cfgS := scenario(core.Static, 200, 1.0, mobility.HighMobility, 8)
	cfgS.StaticReserve = 0
	cfgN := scenario(core.None, 200, 1.0, mobility.HighMobility, 8)
	a := MustNew(cfgS).Run(1500)
	b := MustNew(cfgN).Run(1500)
	if a.Total != b.Total {
		t.Fatalf("static G=0 != none:\n%+v\n%+v", a.Total, b.Total)
	}
}

func TestNCalcPerPolicy(t *testing.T) {
	// AC1 always performs exactly 1 B_r calculation per admission test;
	// AC2 exactly 3 on a ring (2 neighbors + self); AC3 in [1, 3].
	for _, tc := range []struct {
		policy   core.Policy
		min, max float64
	}{
		{core.AC1, 1, 1},
		{core.AC2, 3, 3},
		{core.AC3, 1, 3},
	} {
		n := MustNew(scenario(tc.policy, 200, 1.0, mobility.HighMobility, 9))
		res := n.Run(1000)
		if res.NCalc < tc.min-1e-9 || res.NCalc > tc.max+1e-9 {
			t.Errorf("%v NCalc = %v, want in [%v,%v]", tc.policy, res.NCalc, tc.min, tc.max)
		}
	}
}

func TestAC3NCalcRisesWithLoad(t *testing.T) {
	lo := MustNew(scenario(core.AC3, 60, 1.0, mobility.HighMobility, 10)).Run(2000)
	hi := MustNew(scenario(core.AC3, 300, 1.0, mobility.HighMobility, 10)).Run(2000)
	if !(hi.NCalc > lo.NCalc) {
		t.Fatalf("AC3 NCalc low-load %v !< high-load %v (Fig. 13 shape)", lo.NCalc, hi.NCalc)
	}
	if lo.NCalc > 1.1 {
		t.Fatalf("AC3 NCalc at light load = %v, want ≈ 1", lo.NCalc)
	}
}

func TestTracesRecorded(t *testing.T) {
	cfg := scenario(core.AC3, 300, 1.0, mobility.HighMobility, 11)
	cfg.TraceCells = []topology.CellID{4, 5}
	n := MustNew(cfg)
	res := n.Run(1500)
	for _, id := range cfg.TraceCells {
		tr := res.Traces[id]
		if tr == nil {
			t.Fatalf("no trace for cell %d", id)
		}
		if tr.Test.Len() == 0 || tr.PHD.Len() == 0 || tr.Br.Len() == 0 {
			t.Fatalf("cell %d trace empty: test=%d phd=%d br=%d", id, tr.Test.Len(), tr.PHD.Len(), tr.Br.Len())
		}
	}
	if res.Traces[0] != nil {
		t.Fatal("untraced cell has a trace")
	}
}

func TestRetriesIncreaseActualLoad(t *testing.T) {
	base := scenario(core.AC3, 300, 1.0, mobility.HighMobility, 12)
	with := base
	with.Retry = traffic.PaperRetry
	a := MustNew(base).Run(1500)
	b := MustNew(with).Run(1500)
	if b.Total.Requested <= a.Total.Requested {
		t.Fatalf("retries did not increase requests: %d vs %d", b.Total.Requested, a.Total.Requested)
	}
}

func TestResetStatsKeepsConnections(t *testing.T) {
	n := MustNew(scenario(core.AC3, 150, 1.0, mobility.HighMobility, 13))
	n.Run(1000)
	active := n.ActiveConnections()
	if active == 0 {
		t.Fatal("no active connections after warmup")
	}
	n.ResetStats()
	res := n.Snapshot()
	if res.Total.Requested != 0 || res.Total.HandOffs != 0 {
		t.Fatalf("counters not reset: %+v", res.Total)
	}
	if n.ActiveConnections() != active {
		t.Fatal("reset dropped connections")
	}
	res = n.Run(2000)
	if res.Total.Requested == 0 {
		t.Fatal("no traffic after reset")
	}
}

func TestForwardOnlyLineBorderCell(t *testing.T) {
	// Table 3 scenario: open line, all mobiles moving 0→9. Cell 0 never
	// receives hand-offs; mobiles exit past cell 9.
	top := topology.Line(10)
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 1}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility, Direction: mobility.ForwardOnly}
	cfg.Schedule = traffic.Constant{Lambda: traffic.RateForLoad(200, cfg.Mix, cfg.MeanLifetime), MinKmh: 80, MaxKmh: 120}
	cfg.Seed = 14
	cfg.Audit = testAudit
	res := MustNew(cfg).Run(3000)
	if res.Cells[0].Counters.HandOffs != 0 {
		t.Fatalf("cell 0 received %d hand-offs in one-way flow", res.Cells[0].Counters.HandOffs)
	}
	if res.Cells[0].PHD != 0 {
		t.Fatalf("cell 0 PHD = %v, want 0 (Table 3)", res.Cells[0].PHD)
	}
	if res.Total.Exited == 0 {
		t.Fatal("no mobiles exited the open line")
	}
	if res.Cells[5].Counters.HandOffs == 0 {
		t.Fatal("mid-line cell saw no hand-offs")
	}
}

func TestHourlyBucketsSumToTotals(t *testing.T) {
	n := MustNew(scenario(core.AC3, 150, 0.8, mobility.LowMobility, 15))
	res := n.Run(3 * 3600)
	var req, blk, ho, dr uint64
	for _, h := range res.Hourly {
		req += h.Requested
		blk += h.Blocked
		ho += h.HandOffs
		dr += h.Dropped
	}
	if req != res.Total.Requested || blk != res.Total.Blocked || ho != res.Total.HandOffs || dr != res.Total.Dropped {
		t.Fatalf("hourly sums %d/%d/%d/%d != totals %d/%d/%d/%d",
			req, blk, ho, dr, res.Total.Requested, res.Total.Blocked, res.Total.HandOffs, res.Total.Dropped)
	}
}

func TestHexNetworkRuns(t *testing.T) {
	top := topology.Hex(4, 4, true)
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 0.8}
	cfg.Mobility = &mobility.HexWalk{Top: top, DiameterKm: 1, Speed: mobility.HighMobility, Persistence: 0.8}
	cfg.Schedule = traffic.Constant{Lambda: traffic.RateForLoad(150, cfg.Mix, cfg.MeanLifetime), MinKmh: 80, MaxKmh: 120}
	cfg.Seed = 16
	cfg.Audit = testAudit
	res := MustNew(cfg).Run(2000)
	if res.Total.HandOffs == 0 {
		t.Fatal("hex run produced no hand-offs")
	}
	if res.PHD > 0.05 {
		t.Fatalf("hex AC3 PHD = %v, far above target", res.PHD)
	}
}

func TestTimeVaryingScheduleRuns(t *testing.T) {
	top := topology.Ring(10)
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Estimation = predict.DailyConfig()
	cfg.Mix = traffic.Mix{VoiceRatio: 1}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}
	cfg.Schedule = traffic.PaperDay(cfg.Mix, cfg.MeanLifetime)
	cfg.Retry = traffic.PaperRetry
	cfg.Seed = 17
	cfg.Audit = testAudit
	res := MustNew(cfg).Run(12 * 3600) // half a day covers the morning peak
	if len(res.Hourly) < 10 {
		t.Fatalf("hourly buckets = %d, want ≥ 10", len(res.Hourly))
	}
	// Quiet night hours (0–5) vs morning peak (hour 9): peak has far more
	// requests.
	if !(res.Hourly[9].Requested > 5*res.Hourly[2].Requested) {
		t.Fatalf("peak hour requests %d not ≫ night %d", res.Hourly[9].Requested, res.Hourly[2].Requested)
	}
}

// TestPropertyRunInvariants runs short scenarios across seeds, policies
// and mixes, checking the system-level invariants: probability ranges,
// per-cell capacity, connection conservation, and hand-off/drop
// accounting consistency.
func TestPropertyRunInvariants(t *testing.T) {
	policies := []core.Policy{core.AC1, core.AC2, core.AC3, core.Static, core.None}
	for seed := uint64(1); seed <= 5; seed++ {
		policy := policies[int(seed)%len(policies)]
		rvo := []float64{1.0, 0.8, 0.5}[int(seed)%3]
		load := []float64{80, 200, 300}[int(seed)%3]
		cfg := scenario(policy, load, rvo, mobility.HighMobility, seed)
		cfg.StaticReserve = 10
		if seed%2 == 0 {
			cfg.Retry = traffic.PaperRetry
		}
		n := MustNew(cfg)
		res := n.Run(600)

		if res.PCB < 0 || res.PCB > 1 || res.PHD < 0 || res.PHD > 1 {
			t.Fatalf("seed %d: probabilities out of range %v %v", seed, res.PCB, res.PHD)
		}
		if res.Total.Blocked > res.Total.Requested || res.Total.Dropped > res.Total.HandOffs {
			t.Fatalf("seed %d: counter inversion %+v", seed, res.Total)
		}
		admitted := res.Total.Requested - res.Total.Blocked
		accounted := res.Total.Completed + res.Total.Dropped + res.Total.Exited + uint64(n.ActiveConnections())
		if admitted != accounted {
			t.Fatalf("seed %d (%v): conservation violated: %d != %d", seed, policy, admitted, accounted)
		}
		for _, c := range res.Cells {
			if c.Bu < 0 || c.Bu > cfg.Capacity {
				t.Fatalf("seed %d: cell %d used %d outside [0,%d]", seed, c.ID, c.Bu, cfg.Capacity)
			}
			if c.AvgBu < 0 || c.AvgBu > float64(cfg.Capacity) {
				t.Fatalf("seed %d: cell %d avgBu %v", seed, c.ID, c.AvgBu)
			}
			if c.Br < 0 {
				t.Fatalf("seed %d: negative Br %v", seed, c.Br)
			}
			if core.MustPolicy(policy.String()).Traits().Adaptive && c.Test < 1 {
				t.Fatalf("seed %d: Test %v below floor", seed, c.Test)
			}
		}
	}
}

func TestBackboneIntegration(t *testing.T) {
	// Ample backbone: behaves like the wireless-only run, but every live
	// connection holds a wired path; on teardown nothing leaks.
	cfg := scenario(core.AC3, 150, 1.0, mobility.HighMobility, 31)
	cfg.Backbone = wired.StarOfMSCs(cfg.Topology, 2, 1000, 5000, wired.FullReroute)
	n := MustNew(cfg)
	res := n.Run(1500)
	if res.WiredBlocked != 0 || res.WiredDropped != 0 {
		t.Fatalf("ample backbone blocked=%d dropped=%d", res.WiredBlocked, res.WiredDropped)
	}
	if res.WiredReroutes == 0 {
		t.Fatal("no wired re-routes despite hand-offs")
	}
	// Every active connection holds exactly a 2-hop path (BS→MSC→GW).
	var activeBW int
	for c := topology.CellID(0); c < 10; c++ {
		activeBW += n.Engine(c).UsedBandwidth()
	}
	if res.WiredUsed != 2*activeBW {
		t.Fatalf("backbone used %d, want 2×%d", res.WiredUsed, activeBW)
	}
}

func TestBackboneConstrainedBlocksAndDrops(t *testing.T) {
	// A starved backbone becomes the bottleneck: wired blocks and wired
	// drops appear, and conservation still holds.
	cfg := scenario(core.None, 200, 1.0, mobility.HighMobility, 32)
	cfg.Backbone = wired.StarOfMSCs(cfg.Topology, 2, 40, 100, wired.FullReroute)
	n := MustNew(cfg)
	res := n.Run(1500)
	if res.WiredBlocked == 0 {
		t.Fatal("starved backbone blocked nothing")
	}
	if res.WiredDropped == 0 {
		t.Fatal("starved backbone dropped no hand-offs")
	}
	if res.Total.Blocked < res.WiredBlocked {
		t.Fatalf("wired blocks %d not included in total blocks %d", res.WiredBlocked, res.Total.Blocked)
	}
	admitted := res.Total.Requested - res.Total.Blocked
	accounted := res.Total.Completed + res.Total.Dropped + res.Total.Exited + uint64(n.ActiveConnections())
	if admitted != accounted {
		t.Fatalf("conservation violated with backbone: %d != %d", admitted, accounted)
	}
	// Wired reservations must match live connections exactly after the
	// run (no leaks on drops/completions).
	var activeBW int
	for c := topology.CellID(0); c < 10; c++ {
		activeBW += n.Engine(c).UsedBandwidth()
	}
	if res.WiredUsed != 2*activeBW {
		t.Fatalf("backbone used %d, want 2×%d (leak?)", res.WiredUsed, activeBW)
	}
}

func TestBackboneAnchorExtend(t *testing.T) {
	cfg := scenario(core.AC3, 100, 1.0, mobility.HighMobility, 33)
	cfg.Backbone = wired.MeshOfBSs(cfg.Topology, 2000, 2000, wired.AnchorExtend)
	n := MustNew(cfg)
	res := n.Run(1000)
	if res.WiredReroutes == 0 {
		t.Fatal("no anchor extensions")
	}
	// Anchor extension uses strictly more backbone bandwidth than the
	// 1-hop minimum per connection.
	var activeBW int
	for c := topology.CellID(0); c < 10; c++ {
		activeBW += n.Engine(c).UsedBandwidth()
	}
	if res.WiredUsed < activeBW {
		t.Fatalf("backbone used %d < active %d", res.WiredUsed, activeBW)
	}
}

func TestBackboneCellCountValidation(t *testing.T) {
	cfg := scenario(core.AC3, 100, 1.0, mobility.HighMobility, 34)
	cfg.Backbone = wired.StarOfMSCs(topology.Ring(4), 1, 100, 100, wired.FullReroute)
	if cfg.Validate() == nil {
		t.Fatal("undersized backbone accepted")
	}
}

func TestDirectionHintsRun(t *testing.T) {
	// §7 extension smoke test: with route-guidance hints enabled the
	// system still meets the target and remains conservation-consistent.
	cfg := scenario(core.AC3, 200, 1.0, mobility.HighMobility, 21)
	cfg.DirectionHints = true
	n := MustNew(cfg)
	res := n.Run(2500)
	if res.Total.HandOffs == 0 {
		t.Fatal("no hand-offs")
	}
	if res.PHD > 0.02 {
		t.Fatalf("hinted AC3 PHD = %v", res.PHD)
	}
	admitted := res.Total.Requested - res.Total.Blocked
	accounted := res.Total.Completed + res.Total.Dropped + res.Total.Exited + uint64(n.ActiveConnections())
	if admitted != accounted {
		t.Fatalf("conservation violated with hints: %d != %d", admitted, accounted)
	}
}

func TestMobSpecBaseline(t *testing.T) {
	// Ref. [14]: when the specification covers every cell the mobile can
	// visit (horizon 5 = the whole 10-ring), hand-offs are undroppable —
	// at the price of heavy blocking (the paper's "usually excessive"
	// critique). Partial specs are exercised by the baseline-mobspec
	// experiment and fail in both directions.
	spec := scenario(core.MobSpec, 200, 1.0, mobility.HighMobility, 51)
	spec.MobSpecHorizon = 5
	ns := MustNew(spec)
	rs := ns.Run(2500)
	ac3 := MustNew(scenario(core.AC3, 200, 1.0, mobility.HighMobility, 51)).Run(2500)

	if rs.PHD != 0 {
		t.Fatalf("full-spec MobSpec PHD = %v, want exactly 0", rs.PHD)
	}
	if !(rs.PCB > ac3.PCB) {
		t.Fatalf("MobSpec PCB %v not above AC3 %v (excessive reservation)", rs.PCB, ac3.PCB)
	}
	// Pledge conservation: engine pledges equal the live connections'
	// outstanding pledge bandwidth.
	var enginePledged int
	for c := topology.CellID(0); c < 10; c++ {
		enginePledged += ns.Engine(c).PledgedBandwidth()
	}
	admitted := rs.Total.Requested - rs.Total.Blocked
	accounted := rs.Total.Completed + rs.Total.Dropped + rs.Total.Exited + uint64(ns.ActiveConnections())
	if admitted != accounted {
		t.Fatalf("conservation violated under MobSpec: %d != %d", admitted, accounted)
	}
	if ns.ActiveConnections() == 0 && enginePledged != 0 {
		t.Fatalf("pledges leaked: %d with no live connections", enginePledged)
	}
}

func TestMobSpecPledgesReleasedOnDrain(t *testing.T) {
	cfg := scenario(core.MobSpec, 150, 1.0, mobility.HighMobility, 52)
	cfg.MobSpecHorizon = 2
	n := MustNew(cfg)
	n.Run(800)
	// Stop traffic and let every connection finish: switch is not
	// supported mid-run, so just run far beyond max lifetime with the
	// arrival stream still on — instead verify the invariant pledged ==
	// Σ live bw × remaining pledges by draining via a long quiet period:
	// easiest check: every cell satisfies used+pledged ≤ capacity.
	for c := topology.CellID(0); c < 10; c++ {
		e := n.Engine(c)
		if e.UsedBandwidth()+e.PledgedBandwidth() > e.Capacity() {
			t.Fatalf("cell %d oversubscribed: used %d + pledged %d", c, e.UsedBandwidth(), e.PledgedBandwidth())
		}
	}
}

func TestAdaptiveQoSAbsorbsHandOffs(t *testing.T) {
	// §1 integration: degradable video slashes drops and blocking at the
	// cost of reduced quality under load.
	base := scenario(core.AC3, 300, 0.5, mobility.HighMobility, 61)
	adaptive := base
	adaptive.AdaptiveQoS = AdaptiveQoSConfig{Enabled: true, VideoMinBUs: 1}
	a := MustNew(base).Run(2500)
	nb := MustNew(adaptive)
	b := nb.Run(2500)

	if !(b.PHD < a.PHD) {
		t.Fatalf("adaptive PHD %v not below rigid %v", b.PHD, a.PHD)
	}
	if !(b.PCB < a.PCB) {
		t.Fatalf("adaptive PCB %v not below rigid %v (min-QoS admission)", b.PCB, a.PCB)
	}
	if b.QoSDowngrades == 0 || b.QoSUpgrades == 0 {
		t.Fatalf("no adaptation events: down=%d up=%d", b.QoSDowngrades, b.QoSUpgrades)
	}
	if b.AvgDegraded <= 0 {
		t.Fatalf("AvgDegraded = %v under overload", b.AvgDegraded)
	}
	// Conservation with elastic grants.
	admitted := b.Total.Requested - b.Total.Blocked
	accounted := b.Total.Completed + b.Total.Dropped + b.Total.Exited + uint64(nb.ActiveConnections())
	if admitted != accounted {
		t.Fatalf("conservation violated: %d != %d", admitted, accounted)
	}
	// Capacity invariant per cell.
	for _, c := range b.Cells {
		if c.Bu > 100 {
			t.Fatalf("cell %d used %d > capacity", c.ID, c.Bu)
		}
	}
}

func TestAdaptiveQoSDisabledUnchanged(t *testing.T) {
	// The elastic plumbing must not disturb rigid runs: with adaptive
	// QoS off, results equal the pre-feature behavior deterministically.
	a := MustNew(scenario(core.AC3, 150, 0.8, mobility.HighMobility, 62)).Run(1200)
	cfg := scenario(core.AC3, 150, 0.8, mobility.HighMobility, 62)
	cfg.AdaptiveQoS = AdaptiveQoSConfig{} // explicitly zero
	b := MustNew(cfg).Run(1200)
	if a.Total != b.Total {
		t.Fatal("zero-valued adaptive config changed results")
	}
	if a.QoSDowngrades != 0 || a.AvgDegraded != 0 {
		t.Fatal("rigid run reported adaptations")
	}
}

func TestAdaptiveQoSValidation(t *testing.T) {
	cfg := scenario(core.AC3, 100, 0.5, mobility.HighMobility, 63)
	cfg.AdaptiveQoS = AdaptiveQoSConfig{Enabled: true, VideoMinBUs: 0}
	if cfg.Validate() == nil {
		t.Fatal("VideoMinBUs=0 accepted")
	}
	cfg.AdaptiveQoS.VideoMinBUs = 5
	if cfg.Validate() == nil {
		t.Fatal("VideoMinBUs=5 accepted")
	}
}

func TestSoftHandOffReducesDrops(t *testing.T) {
	// §7 CDMA extension: an overlap window converts some would-be drops
	// into deferred completions, so P_HD falls for the same workload.
	base := scenario(core.None, 300, 1.0, mobility.HighMobility, 41)
	soft := base
	soft.SoftHandOff = SoftHandOffConfig{Enabled: true, OverlapSeconds: 5}
	a := MustNew(base).Run(2500)
	nb := MustNew(soft)
	b := nb.Run(2500)
	if b.SoftSaved == 0 {
		t.Fatal("overlap window saved no hand-offs")
	}
	if !(b.PHD < a.PHD) {
		t.Fatalf("soft hand-off PHD %v not below hard PHD %v", b.PHD, a.PHD)
	}
	// Conservation still holds with pending hand-offs resolved in-run.
	admitted := b.Total.Requested - b.Total.Blocked
	accounted := b.Total.Completed + b.Total.Dropped + b.Total.Exited + uint64(nb.ActiveConnections())
	// Pending soft hand-offs at the end of the run are still active
	// connections (they hold old-cell bandwidth), so they are counted in
	// ActiveConnections and the books balance.
	if admitted != accounted {
		t.Fatalf("conservation violated with soft hand-off: %d != %d", admitted, accounted)
	}
	if b.SoftSaved+b.SoftExpired == 0 {
		t.Fatal("no soft resolutions recorded")
	}
}

func TestSoftHandOffValidation(t *testing.T) {
	cfg := scenario(core.AC3, 100, 1.0, mobility.HighMobility, 42)
	cfg.SoftHandOff = SoftHandOffConfig{Enabled: true, OverlapSeconds: 0}
	if cfg.Validate() == nil {
		t.Fatal("zero overlap accepted")
	}
}

func TestSoftCapacityMarginAdmitsMoreHandOffs(t *testing.T) {
	base := scenario(core.None, 300, 0.5, mobility.HighMobility, 43)
	margin := base
	margin.HandOffMargin = 8
	a := MustNew(base).Run(2000)
	b := MustNew(margin).Run(2000)
	if !(b.PHD < a.PHD) {
		t.Fatalf("soft capacity PHD %v not below hard PHD %v", b.PHD, a.PHD)
	}
	for _, c := range b.Cells {
		if c.Bu > 108 {
			t.Fatalf("cell %d exceeded capacity+margin: %d", c.ID, c.Bu)
		}
	}
}

func TestDailySweepKeepsCacheBounded(t *testing.T) {
	// A finite-Tint run across several days must evict out-of-date
	// quadruplets (the §3.1 deletion rule) via the periodic sweep.
	top := topology.Ring(5)
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	// A compressed "day" keeps the test fast: windows of ±600 s repeating
	// every 7200 s, so the horizon (1·7200 + 600) passes within the run.
	cfg.Estimation = predict.Config{
		Tint: 600, Period: 7200, NwinPeriods: 1,
		Weights: []float64{1, 1}, NQuad: 50, RebuildEvery: 60,
	}
	cfg.Mix = traffic.Mix{VoiceRatio: 1}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}
	cfg.Schedule = traffic.Constant{Lambda: traffic.RateForLoad(60, cfg.Mix, cfg.MeanLifetime), MinKmh: 80, MaxKmh: 120}
	cfg.Seed = 3
	cfg.Audit = testAudit
	n := MustNew(cfg)
	n.Run(20000)
	evicted := uint64(0)
	for c := 0; c < 5; c++ {
		est := n.Engine(topology.CellID(c)).Estimator(0)
		evicted += est.Evicted()
	}
	if evicted == 0 {
		t.Fatal("three-day daily-config run evicted nothing")
	}
}

func TestEverythingEnabledInteraction(t *testing.T) {
	// All features at once: AC3 + adaptive QoS + soft hand-off + soft
	// capacity + direction hints + wired backbone + retries + daily
	// schedule. Guards against pairwise feature interactions breaking
	// the bookkeeping invariants.
	top := topology.Ring(10)
	cfg := PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Estimation = predict.DailyConfig()
	cfg.Mix = traffic.Mix{VoiceRatio: 0.6}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}
	cfg.Schedule = traffic.PaperDay(cfg.Mix, cfg.MeanLifetime)
	cfg.Retry = traffic.PaperRetry
	cfg.AdaptiveQoS = AdaptiveQoSConfig{Enabled: true, VideoMinBUs: 2}
	cfg.SoftHandOff = SoftHandOffConfig{Enabled: true, OverlapSeconds: 4}
	cfg.HandOffMargin = 4
	cfg.DirectionHints = true
	cfg.Backbone = wired.MeshOfBSs(top, 300, 300, wired.FullReroute)
	cfg.Seed = 71
	cfg.Audit = testAudit
	n := MustNew(cfg)
	res := n.Run(10 * 3600) // through the morning peak

	if res.Total.Requested == 0 || res.Total.HandOffs == 0 {
		t.Fatal("no traffic")
	}
	admitted := res.Total.Requested - res.Total.Blocked
	accounted := res.Total.Completed + res.Total.Dropped + res.Total.Exited + uint64(n.ActiveConnections())
	if admitted != accounted {
		t.Fatalf("conservation violated: %d != %d", admitted, accounted)
	}
	for _, c := range res.Cells {
		e := n.Engine(c.ID)
		if e.UsedBandwidth()+e.PledgedBandwidth() > e.Capacity()+cfg.HandOffMargin {
			t.Fatalf("cell %d oversubscribed", c.ID)
		}
	}
	// Backbone reservations match live connections' minimum bandwidths
	// exactly (each path is 1 hop BS→MSC... plus re-routes on rings stay
	// 1 hop in MeshOfBSs only via MSC — verify no leak bound instead).
	if res.WiredUsed < 0 {
		t.Fatal("negative backbone usage")
	}
	if n.ActiveConnections() == 0 && res.WiredUsed != 0 {
		t.Fatalf("backbone leak: %d BUs with no live connections", res.WiredUsed)
	}
	if res.PHD > 0.02 {
		t.Fatalf("PHD = %v with every protection enabled", res.PHD)
	}
}

func TestConfigValidation(t *testing.T) {
	good := scenario(core.AC3, 100, 1.0, mobility.HighMobility, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Topology = nil
	if bad.Topology != nil || bad.Validate() == nil {
		t.Fatal("nil topology accepted")
	}
	bad = good
	bad.Mobility = nil
	if bad.Validate() == nil {
		t.Fatal("nil mobility accepted")
	}
	bad = good
	bad.Schedule = nil
	if bad.Validate() == nil {
		t.Fatal("nil schedule accepted")
	}
	bad = good
	bad.MeanLifetime = 0
	if bad.Validate() == nil {
		t.Fatal("zero lifetime accepted")
	}
	bad = good
	bad.TraceCells = []topology.CellID{99}
	if bad.Validate() == nil {
		t.Fatal("out-of-range trace cell accepted")
	}
}
