package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"cellqos/internal/predict"
)

// Engine history checkpointing: the learned hand-off quadruplets are
// the only engine state worth persisting across a base-station restart.
// Everything else reconverges — the connection table empties as calls
// tear down, the T_est controller is purely sequence-driven, and B_r is
// recomputed from the estimator on the next admission — but the
// estimator embodies hours of observed mobility, so losing it to a
// crash sets prediction quality back to cold-start (§3.1's cache is
// exactly what Eq. 4 is built from).
//
// The stream is the concatenation of one predict persistence stream per
// day class, prefixed with the class count; each inner stream is
// self-framed (magic + version) and self-delimiting. Integrity framing
// (checksums, atomic replacement) is the service layer's job: see
// internal/service.Snapshot.

// WriteHistory serializes every day class's estimator under the engine
// lock, so a concurrently serving BS checkpoints a consistent cut. A
// non-adaptive engine (no estimator) writes a zero class count.
func (e *Engine) WriteHistory(w io.Writer) (int64, error) {
	e.lock()
	defer e.unlock()
	classes := 0
	if e.patterns != nil {
		classes = e.patterns.Classes()
	}
	if err := binary.Write(w, binary.BigEndian, uint16(classes)); err != nil {
		return 0, err
	}
	n := int64(2)
	for c := 0; c < classes; c++ {
		m, err := e.patterns.ByClass(predict.DayClass(c)).WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// RestoreHistory loads a WriteHistory stream into the engine's
// estimators under the engine lock. With merge false each class is
// Reset and replaced (the restart path: the estimators are empty
// anyway); with merge true the stream's samples are unioned with any
// live history (the late-restore path, predict.Estimator.Merge). The
// class count must match the engine's — restoring an adaptive
// checkpoint into a non-adaptive engine (or vice versa) is a config
// mismatch, not recoverable data.
func (e *Engine) RestoreHistory(r io.Reader, merge bool) (int64, error) {
	e.lock()
	defer e.unlock()
	var classes16 uint16
	if err := binary.Read(r, binary.BigEndian, &classes16); err != nil {
		return 0, err
	}
	n := int64(2)
	want := 0
	if e.patterns != nil {
		want = e.patterns.Classes()
	}
	if int(classes16) != want {
		return n, fmt.Errorf("core: history has %d day classes, engine expects %d", classes16, want)
	}
	for c := 0; c < want; c++ {
		est := e.patterns.ByClass(predict.DayClass(c))
		var m int64
		var err error
		if merge {
			m, err = est.Merge(r)
		} else {
			est.Reset()
			m, err = est.ReadFrom(r)
		}
		n += m
		if err != nil {
			return n, fmt.Errorf("core: restore day class %d: %w", c, err)
		}
	}
	return n, nil
}

// HistoryLastEvent returns the newest estimator event time across all
// day classes (zero for an empty or non-adaptive engine). A restored
// service resumes its simulation clock at or after this instant so the
// estimators' event-order invariant holds across the restart.
func (e *Engine) HistoryLastEvent() float64 {
	e.lock()
	defer e.unlock()
	if e.patterns == nil {
		return 0
	}
	return e.patterns.LastEvent()
}
