package core

import (
	"math"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// eq5Cache memoizes the Eq. 5 state of one engine for a single query
// key (now, test, estimator, estimator generation). The admission fast
// path hits the same key repeatedly — every neighbor a burst of
// admissions fans out to asks this engine at the same timestamp and
// window — so the expensive per-connection Eq. 4 denominators are built
// once and each direction's sum is accumulated lazily on first request.
//
// Everything here must stay bit-exact with the retained from-scratch
// walk (eq5Scratch): the golden corpus pins simulation bytes, and float
// addition is not associative. Three rules keep it exact:
//
//   - the denominator of each connection is the same SurvivorWeight sum
//     a scalar HandOffProb query performs, cached — not reassociated;
//   - per-direction sums accumulate over connections in table order,
//     the order the from-scratch walk uses;
//   - a new connection appends at the end of the table, so extending a
//     live sum by its contribution equals a from-scratch recomputation;
//     any mutation that reorders or removes connections invalidates
//     instead (subtracting floats back out would not round-trip).
//
// The buffers are reused across keys, so a steady-state query is
// allocation-free.
type eq5Cache struct {
	valid  bool
	now    float64
	test   float64
	est    *predict.Estimator
	estGen uint64

	// Per-connection state aligned with Engine.conns: ext is the
	// clamped extant sojourn; den the Eq. 4 denominator (survivor
	// weight) for hint-less connections; hintP the §7 sojourn
	// probability for hinted connections, applied only toward the hint.
	ext   []float64
	den   []float64
	hintP []float64

	// Per-direction running Eq. 5 sums, indexed by int(toward) with
	// index 0 unused; done marks directions already accumulated.
	sums []float64
	done []bool

	hits, misses uint64 // lifetime accounting, exposed via Eq5CacheStats
}

// matches reports whether the live cache answers for this query key.
func (c *eq5Cache) matches(now, test float64, est *predict.Estimator) bool {
	return c.valid && c.now == now && c.test == test && c.est == est &&
		c.estGen == est.Generation()
}

// invalidate discards the cached state (buffers are kept for reuse).
func (c *eq5Cache) invalidate() { c.valid = false }

// grow returns f resized to n without reallocating when capacity allows.
func grow(f []float64, n int) []float64 {
	if cap(f) < n {
		return make([]float64, n)
	}
	return f[:n]
}

// eq5BuildAccumulate rebuilds the cache for a fresh query key and
// answers the requesting direction in one fused walk: each connection's
// base state (extant sojourn, Eq. 4 denominator or hinted sojourn
// probability) is computed and its term toward the requested direction
// accumulated immediately, so a key queried exactly once — the
// steady-simulation pattern, where timestamps only advance — costs a
// single pass over the table, like the from-scratch walk. The fusion is
// value-neutral: per connection the same operations run in the same
// order, and the direction sum still accumulates in table order.
// Called under the engine lock.
func (e *Engine) eq5BuildAccumulate(now, test float64, est *predict.Estimator, toward topology.LocalIndex) float64 {
	c := &e.eq5
	c.valid = true
	c.now, c.test, c.est = now, test, est
	n := len(e.conns)
	c.ext = grow(c.ext, n)
	c.den = grow(c.den, n)
	c.hintP = grow(c.hintP, n)
	sum := 0.0
	for i := range e.conns {
		e.eq5Base(i)
		sum += e.eq5Term(i, toward)
	}
	d := e.cfg.Degree + 1
	c.sums = grow(c.sums, d)
	if cap(c.done) < d {
		c.done = make([]bool, d)
	} else {
		c.done = c.done[:d]
		for t := range c.done {
			c.done[t] = false
		}
	}
	if t := int(toward); t >= 1 && t < d {
		c.sums[t] = sum
		c.done[t] = true
	}
	// Read the generation after the walks above: any lazy index rebuild
	// they triggered happened at this key's timestamp and is part of the
	// state the cache was computed from.
	c.estGen = est.Generation()
	return sum
}

// eq5Base fills the cached per-connection state for table slot i at the
// cache's key.
func (e *Engine) eq5Base(i int) {
	c := &e.eq5
	cn := &e.conns[i]
	ext := c.now - cn.enteredAt
	if ext < 0 {
		ext = 0
	}
	c.ext[i] = ext
	if cn.hint != NoHint {
		c.den[i] = 0
		c.hintP[i] = c.est.SojournProb(c.now, cn.prev, cn.hint, ext, c.test)
		return
	}
	c.hintP[i] = 0
	c.den[i] = c.est.SurvivorWeight(c.now, cn.prev, ext)
}

// eq5Term returns connection i's Eq. 5 term toward one direction, from
// the cached base state — bit-identical to the from-scratch term.
func (e *Engine) eq5Term(i int, toward topology.LocalIndex) float64 {
	c := &e.eq5
	cn := &e.conns[i]
	b := float64(cn.min)
	if cn.hint != NoHint {
		if cn.hint == toward {
			return b * c.hintP[i]
		}
		return 0
	}
	p := 0.0
	if c.den[i] != 0 {
		// A never-seen (prev, toward) pair yields weight 0 and p = +0,
		// exactly like the scalar HandOffProb query.
		p = c.est.HandOffWeight(c.now, cn.prev, toward, c.ext[i], c.test) / c.den[i]
	}
	return b * p
}

// eq5Accumulate walks the connection table once for one direction using
// the cached base state. Summation order matches eq5Scratch.
func (e *Engine) eq5Accumulate(toward topology.LocalIndex) float64 {
	sum := 0.0
	for i := range e.conns {
		sum += e.eq5Term(i, toward)
	}
	return sum
}

// eq5Extend incorporates the connection just appended at table slot i
// into any live cache: when the key still matches, its base state is
// computed and every already-accumulated direction extended — exactly
// what a from-scratch walk at this key would now produce, since the new
// connection sits at the end of the table. Any mismatch simply drops
// the cache. Called under the engine lock by AddConnection.
func (e *Engine) eq5Extend(i int, now float64) {
	c := &e.eq5
	if !c.valid {
		return
	}
	if e.patterns == nil || c.now != now {
		c.invalidate()
		return
	}
	est := e.patterns.Estimator(now)
	if est != c.est || est.Generation() != c.estGen {
		c.invalidate()
		return
	}
	c.ext = append(c.ext[:i], 0)
	c.den = append(c.den[:i], 0)
	c.hintP = append(c.hintP[:i], 0)
	e.eq5Base(i)
	// As in eq5BuildAccumulate, lazy rebuilds triggered by the new
	// connection's first query at this timestamp move the generation
	// without changing any value the cache already holds.
	c.estGen = est.Generation()
	for t := 1; t < len(c.done); t++ {
		if c.done[t] {
			c.sums[t] += e.eq5Term(i, topology.LocalIndex(t))
		}
	}
}

// eq5Scratch is the retained from-scratch Eq. 5 walk — the reference
// semantics the cache must reproduce bit-for-bit, kept both as the
// verifier's oracle and as documentation of the paper's sum:
// B_{this,toward} = Σ_j b(C_j) · p_h(C_j → toward within test).
func (e *Engine) eq5Scratch(now float64, toward topology.LocalIndex, test float64, est *predict.Estimator) float64 {
	sum := 0.0
	for i := range e.conns {
		c := &e.conns[i]
		extSoj := now - c.enteredAt
		if extSoj < 0 {
			extSoj = 0
		}
		// Reservation is made on the basis of each connection's minimum
		// QoS (§1: integration with adaptive-QoS schemes).
		b := float64(c.min)
		if c.hint != NoHint {
			// §7 extension: the next cell is known; only the hand-off
			// time is estimated.
			if c.hint == toward {
				sum += b * est.SojournProb(now, c.prev, c.hint, extSoj, test)
			}
			continue
		}
		sum += b * est.HandOffProb(now, c.prev, extSoj, test, toward)
	}
	return sum
}

// Eq5CacheStats returns the lifetime (hit, miss) counts of the Eq. 5
// query cache: hits answered from a memoized per-direction sum, misses
// paid for an accumulation walk (diagnostics; not part of any report).
func (e *Engine) Eq5CacheStats() (hits, misses uint64) {
	e.lock()
	defer e.unlock()
	return e.eq5.hits, e.eq5.misses
}

// VerifyEq5Cache recomputes every cached per-direction Eq. 5 sum from
// scratch at the cache's own key and returns the largest absolute
// divergence observed; checked is false when no live cached sum was
// comparable (no cache, stale generation, or nothing accumulated yet).
// internal/audit wires this into the invariant sweep with a 1e-9
// tolerance, keeping the incremental fast path honest against the
// retained from-scratch path.
func (e *Engine) VerifyEq5Cache() (maxDiff float64, checked bool) {
	if e.patterns == nil {
		return 0, false
	}
	e.lock()
	defer e.unlock()
	return e.verifyEq5Locked()
}

// VerifyEq5CacheAt is VerifyEq5Cache restricted to a cache whose key
// timestamp equals now. The event-boundary invariant sweep uses it: it
// certifies exactly the sums the just-fired event's admission queries
// consumed, and the from-scratch walks run at the current timestamp, so
// they never force the estimator indexes backward in time (re-verifying
// a stale key would rebuild each windowed selection at the old
// timestamp and again at the next real query, thrashing every audited
// event).
func (e *Engine) VerifyEq5CacheAt(now float64) (maxDiff float64, checked bool) {
	if e.patterns == nil {
		return 0, false
	}
	e.lock()
	defer e.unlock()
	if e.eq5.now != now {
		return 0, false
	}
	return e.verifyEq5Locked()
}

func (e *Engine) verifyEq5Locked() (maxDiff float64, checked bool) {
	c := &e.eq5
	if !c.valid {
		return 0, false
	}
	if est := e.patterns.Estimator(c.now); est != c.est || est.Generation() != c.estGen {
		// Stale key: the next query discards the cache anyway; there is
		// no live state to certify.
		return 0, false
	}
	for t := 1; t < len(c.done); t++ {
		if !c.done[t] {
			continue
		}
		scratch := e.eq5Scratch(c.now, topology.LocalIndex(t), c.test, c.est)
		if d := math.Abs(scratch - c.sums[t]); d > maxDiff {
			maxDiff = d
		}
		checked = true
	}
	return maxDiff, checked
}
