package core

import (
	"math"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// eq5Cache maintains the Eq. 5 state of one engine as a materialized
// view: per-connection base state (extant sojourn, Eq. 4 denominator or
// hinted sojourn probability), per-direction term columns, and
// per-direction sums, updated by deltas as events arrive instead of
// recomputed per query. The admission fast path advances `now` on every
// burst, so the PR-4 memo cache — keyed on an exact (now, test,
// generation) triple — paid a full connection-table walk per burst; the
// view instead *advances* across timestamps in O(live connections)
// guard checks and refreshes only the connections whose Eq. 4 queries
// actually change value.
//
// Everything here must stay bit-exact with the retained from-scratch
// walk (eq5Scratch): the golden corpus pins simulation bytes, and float
// addition is not associative. The rules that keep it exact:
//
//   - Eq. 4 queries are piecewise-constant step functions of the extant
//     sojourn: every query reduces to binary searches over the selected
//     sojourn times of the connection's prev-group, so the cached
//     values stay bit-identical while the (clamped) extant sojourn and
//     its +test edge stay inside the same inter-breakpoint intervals.
//     Each connection carries the next breakpoint past each edge
//     (nextLo/nextHi); staleness is evaluated with the *same float
//     expressions* the estimator's binary searches consume (ext :=
//     now − enteredAt clamped; ext+test), so there is no ulp hazard.
//   - The estimator generation is the other invalidation axis: the view
//     is built under predict.EnsureCurrent(now) — after which no lazy
//     selection rebuild can fire at that timestamp — and any later
//     generation mismatch (Record, eviction, windowed-selection drift,
//     ReadFrom) forces a full rebuild.
//   - Per-direction sums always accumulate over the term columns in
//     table order, the order the from-scratch walk uses. Sums are never
//     patched by subtraction: removal swap-moves the per-connection
//     state exactly like the connection table and re-accumulates;
//     addition appends at the end of the table, where extending a live
//     sum equals a from-scratch recomputation.
//
// The buffers are reused across rebuilds, so steady state — advances,
// refreshes, extends, removes, queries — is allocation-free.
type eq5Cache struct {
	valid  bool
	now    float64
	test   float64
	est    *predict.Estimator
	estGen uint64

	// Per-connection base state aligned with Engine.conns: ext is the
	// clamped extant sojourn *as of the last base computation* (kept
	// deliberately stale across advances while the guards below hold —
	// the binary searches land on the same indices, so every derived
	// value is bit-identical); den the Eq. 4 denominator (survivor
	// weight) for hint-less connections; hintP the §7 sojourn
	// probability for hinted connections.
	ext   []float64
	den   []float64
	hintP []float64

	// Staleness guards: the base state of connection i is valid at a
	// later timestamp while
	//
	//	extNew < nextLo[i] && extNew+test < nextHi[i]
	//
	// where extNew is computed exactly as eq5Base computes it. nextLo
	// is the smallest selected sojourn of the connection's prev-group
	// strictly above the ext the state was computed at; nextHi the
	// smallest strictly above ext+test. +Inf when no breakpoint remains.
	nextLo []float64
	nextHi []float64

	// expAt[i] is a timestamp at which connection i's guards were
	// *verified* to still hold (with the exact guard expressions), and
	// expiry the minimum over the table. Guard validity is
	// downward-closed in now — fl(now − enteredAt) and its +test edge
	// are nondecreasing in now — so an advance to any now ≤ expiry
	// cannot expire a guard and is O(1). Past the bound, the indexed
	// min-heap below (heapIdx a heap of table slots ordered by expAt,
	// heapPos its inverse) yields exactly the connections whose
	// verified point was crossed, so an advance costs O(crossed · log n)
	// instead of a full table scan.
	expAt   []float64
	expiry  float64
	heapIdx []int
	heapPos []int

	// terms[t][i] is connection i's Eq. 5 term toward direction t;
	// termsDone[t] marks columns that are materialized for the current
	// table. done[t] marks directions whose sum is accumulated (done[t]
	// implies termsDone[t]). Advances and removals clear done only —
	// the cached terms stay valid per connection and sums are lazily
	// re-accumulated in table order.
	terms     [][]float64
	termsDone []bool
	sums      []float64
	done      []bool

	// Per-prev sorted sojourn-breakpoint tables used to compute the
	// guards, built lazily per (estimator, generation).
	bps    [][]float64
	bpsOK  []bool
	bpsEst *predict.Estimator
	bpsGen uint64

	hits, misses uint64 // per-query accounting, exposed via Eq5CacheStats

	// Materialized-view event accounting, exposed via Eq5ViewStats and
	// the engine Ledger.
	rebuilds  uint64 // full from-scratch view rebuilds
	advances  uint64 // timestamp advances served incrementally
	refreshes uint64 // per-connection base-state refreshes during advances
	adoptions uint64 // estimator generations adopted without a rebuild
}

// invalidate discards the view (buffers are kept for reuse).
func (c *eq5Cache) invalidate() { c.valid = false }

// grow returns f resized to n without reallocating when capacity allows.
func grow(f []float64, n int) []float64 {
	if cap(f) < n {
		return make([]float64, n)
	}
	return f[:n]
}

// growBool returns b resized to n, cleared to false.
func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// nextAbove returns the smallest value in the sorted slice s strictly
// greater than x, or +Inf when none exists. The search mirrors
// predict's weightAbove binary search, so a guard computed from it
// expires exactly when the estimator's searches would land on a
// different index.
func nextAbove(s []float64, x float64) float64 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) {
		return math.Inf(1)
	}
	return s[lo]
}

// eq5Current reports whether the live view answers for (now, test, est),
// advancing it across a timestamp change when the per-connection guards
// allow. On false the caller performs a full rebuild. Called under the
// engine lock.
func (e *Engine) eq5Current(now, test float64, est *predict.Estimator) bool {
	c := &e.eq5
	if !c.valid || c.test != test || c.est != est {
		return false
	}
	if c.now == now {
		// Same timestamp, but the estimator may have moved underneath —
		// a Record landing between two queries at equal now.
		return est.Generation() == c.estGen
	}
	return e.eq5Advance(now, est)
}

// eq5Advance moves the view from c.now to a later now. The estimator is
// pinned first (EnsureCurrent): if its generation moved — a Record, an
// eviction, or a windowed-selection drift rebuild at the new timestamp —
// the cached terms were computed against a dead selection and the view
// must be rebuilt from scratch. Otherwise each connection's guards are
// checked with the exact float expressions the estimator's binary
// searches consume; connections whose extant sojourn crossed a
// breakpoint get their base state, guards, and materialized term
// columns refreshed, and the direction sums are lazily re-accumulated.
// When no guard expired the finished sums remain valid as-is: every
// cached term is bit-identical to the from-scratch term at the new
// timestamp. Called under the engine lock.
func (e *Engine) eq5Advance(now float64, est *predict.Estimator) bool {
	c := &e.eq5
	if now < c.now {
		return false // time went backwards: not an advance
	}
	if est.EnsureCurrent(now) != c.estGen {
		return false
	}
	c.advances++
	if now <= c.expiry {
		// No guard can expire at or before the verified expiry bound:
		// the advance is O(1) and every cached term and finished sum
		// stays bit-valid as-is.
		c.now = now
		return true
	}
	c.now = now
	refreshed := false
	// Pop every connection whose verified point was crossed. The heap
	// holds only the view's own table — during eq5Extend the engine
	// table has already grown by the appended connection, which the
	// view incorporates only after the advance. A popped connection
	// whose guards still hold (the approximate bound undershot the real
	// crossing) is re-verified at now itself, which keeps the loop
	// monotone; eq5Guards clamps refreshed bounds to ≥ now the same way.
	for len(c.heapIdx) > 0 {
		i := c.heapIdx[0]
		if c.expAt[i] >= now {
			break
		}
		if e.eq5GuardAt(i, now) {
			c.expAt[i] = now
		} else {
			e.eq5Refresh(i)
			refreshed = true
		}
		c.heapDown(0)
	}
	c.expiry = c.heapTopExpiry()
	if refreshed {
		for t := range c.done {
			c.done[t] = false
		}
	}
	return true
}

// eq5GuardAt reports whether connection i's cached guards hold at
// timestamp t, using the exact float expressions the estimator's binary
// searches consume.
func (e *Engine) eq5GuardAt(i int, t float64) bool {
	c := &e.eq5
	ext := t - e.conns[i].enteredAt
	if ext < 0 {
		ext = 0
	}
	return ext < c.nextLo[i] && ext+c.test < c.nextHi[i]
}

// The expiry heap: a classic indexed binary min-heap over table slots,
// ordered by expAt. heapPos is the inverse permutation, kept so that a
// slot's entry can be fixed up or deleted in O(log n) when its bound
// changes (refresh), it is appended (extend), or the table swap-removes
// it. No slice here ever shrinks capacity, so steady state stays
// allocation-free.

func (c *eq5Cache) heapLess(a, b int) bool {
	return c.expAt[c.heapIdx[a]] < c.expAt[c.heapIdx[b]]
}

func (c *eq5Cache) heapSwap(a, b int) {
	c.heapIdx[a], c.heapIdx[b] = c.heapIdx[b], c.heapIdx[a]
	c.heapPos[c.heapIdx[a]] = a
	c.heapPos[c.heapIdx[b]] = b
}

func (c *eq5Cache) heapUp(p int) {
	for p > 0 {
		q := (p - 1) / 2
		if !c.heapLess(p, q) {
			return
		}
		c.heapSwap(p, q)
		p = q
	}
}

func (c *eq5Cache) heapDown(p int) {
	n := len(c.heapIdx)
	for {
		l := 2*p + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && c.heapLess(r, l) {
			m = r
		}
		if !c.heapLess(m, p) {
			return
		}
		c.heapSwap(p, m)
		p = m
	}
}

// heapInit (re)builds the heap over table slots 0..n-1 in O(n).
func (c *eq5Cache) heapInit(n int) {
	c.heapIdx = growInt(c.heapIdx, n)
	c.heapPos = growInt(c.heapPos, n)
	for i := 0; i < n; i++ {
		c.heapIdx[i] = i
		c.heapPos[i] = i
	}
	for p := n/2 - 1; p >= 0; p-- {
		c.heapDown(p)
	}
}

// heapPush appends slot i (expAt[i] must already be set).
func (c *eq5Cache) heapPush(i int) {
	c.heapIdx = append(c.heapIdx, i)
	c.heapPos = append(c.heapPos[:i], len(c.heapIdx)-1)
	c.heapUp(len(c.heapIdx) - 1)
}

// heapDelete removes slot i's entry. Its heapPos slot is left stale;
// the caller renames or truncates it immediately after.
func (c *eq5Cache) heapDelete(i int) {
	p := c.heapPos[i]
	n := len(c.heapIdx) - 1
	if p != n {
		c.heapIdx[p] = c.heapIdx[n]
		c.heapPos[c.heapIdx[p]] = p
	}
	c.heapIdx = c.heapIdx[:n]
	if p != n {
		c.heapDown(p)
		c.heapUp(p)
	}
}

// heapRename re-points the entry of table slot from to slot to (the
// expAt value moved with the table swap, so order is untouched).
func (c *eq5Cache) heapRename(from, to int) {
	p := c.heapPos[from]
	c.heapIdx[p] = to
	c.heapPos[to] = p
}

// heapTopExpiry returns the smallest verified expiry point, +Inf for an
// empty table.
func (c *eq5Cache) heapTopExpiry() float64 {
	if len(c.heapIdx) == 0 {
		return math.Inf(1)
	}
	return c.expAt[c.heapIdx[0]]
}

// growInt returns s resized to n without reallocating when capacity
// allows.
func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// eq5Refresh recomputes one connection's base state, guards, and any
// materialized term-column entries at the view's current timestamp.
// The caller clears the direction sums. Called under the engine lock.
func (e *Engine) eq5Refresh(i int) {
	c := &e.eq5
	c.refreshes++
	e.eq5Base(i)
	e.eq5Guards(i)
	for t := 1; t < len(c.termsDone); t++ {
		if c.termsDone[t] {
			c.terms[t][i] = e.eq5Term(i, topology.LocalIndex(t))
		}
	}
}

// eq5Rebuild builds the view from scratch for (now, test, est) and
// answers the requesting direction in one fused walk: each connection's
// base state and guards are computed and its term toward the requested
// direction materialized and accumulated immediately, so a key queried
// exactly once costs a single pass over the table like the from-scratch
// walk. The estimator is pinned with EnsureCurrent before the walk, so
// no lazy selection rebuild can move the generation mid-build. Called
// under the engine lock.
func (e *Engine) eq5Rebuild(now, test float64, est *predict.Estimator, toward topology.LocalIndex) float64 {
	c := &e.eq5
	c.rebuilds++
	c.valid = true
	c.now, c.test, c.est = now, test, est
	c.estGen = est.EnsureCurrent(now)
	if c.bpsEst != est || c.bpsGen != c.estGen {
		c.bpsEst, c.bpsGen = est, c.estGen
		for p := range c.bpsOK {
			c.bpsOK[p] = false
		}
	}
	n := len(e.conns)
	c.ext = grow(c.ext, n)
	c.den = grow(c.den, n)
	c.hintP = grow(c.hintP, n)
	c.nextLo = grow(c.nextLo, n)
	c.nextHi = grow(c.nextHi, n)
	c.expAt = grow(c.expAt, n)
	d := e.cfg.Degree + 1
	c.sums = grow(c.sums, d)
	c.done = growBool(c.done, d)
	c.termsDone = growBool(c.termsDone, d)
	for len(c.terms) < d {
		c.terms = append(c.terms, nil)
	}
	c.terms = c.terms[:d]
	t := int(toward)
	var col []float64
	if t >= 1 && t < d {
		c.terms[t] = grow(c.terms[t], n)
		col = c.terms[t]
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		e.eq5Base(i)
		e.eq5Guards(i)
		v := e.eq5Term(i, toward)
		if col != nil {
			col[i] = v
		}
		sum += v
	}
	c.heapInit(n)
	c.expiry = c.heapTopExpiry()
	if col != nil {
		c.sums[t] = sum
		c.done[t] = true
		c.termsDone[t] = true
	}
	return sum
}

// eq5Base fills the cached per-connection base state for table slot i
// at the view's current timestamp.
func (e *Engine) eq5Base(i int) {
	c := &e.eq5
	cn := &e.conns[i]
	ext := c.now - cn.enteredAt
	if ext < 0 {
		ext = 0
	}
	c.ext[i] = ext
	if cn.hint != NoHint {
		c.den[i] = 0
		c.hintP[i] = c.est.SojournProb(c.now, cn.prev, cn.hint, ext, c.test)
		return
	}
	c.hintP[i] = 0
	c.den[i] = c.est.SurvivorWeight(c.now, cn.prev, ext)
}

// eq5Guards recomputes connection i's staleness guards from its
// prev-group's breakpoint table, and the verified expiry point derived
// from them. Must run after eq5Base (it reads the ext the base state
// was computed at).
func (e *Engine) eq5Guards(i int) {
	c := &e.eq5
	bp := e.eq5Breakpoints(e.conns[i].prev)
	c.nextLo[i] = nextAbove(bp, c.ext[i])
	c.nextHi[i] = nextAbove(bp, c.ext[i]+c.test)
	// Fresh guards hold strictly at c.now (nextAbove is strictly above
	// both edges), so the bound is clamped to ≥ c.now: the advance
	// pop-loop relies on a refreshed connection never re-entering the
	// expired region of the heap at the same timestamp.
	b := e.eq5ExpiryBound(i)
	if b < c.now {
		b = c.now
	}
	c.expAt[i] = b
}

// eq5ExpiryBound returns a timestamp at which connection i's guards
// provably still hold. The approximate crossing enteredAt + min(nextLo,
// nextHi−test) is walked down by ulps until the exact guard expressions
// accept it — float addition can overshoot the true crossing, and the
// skip rule in eq5Advance relies on the returned point being verified,
// not estimated. Falls back to the view's current timestamp (guards
// always hold there) if no nearby point verifies, which merely costs a
// scan on the next advance.
func (e *Engine) eq5ExpiryBound(i int) float64 {
	c := &e.eq5
	lim := c.nextLo[i]
	if h := c.nextHi[i] - c.test; h < lim {
		lim = h
	}
	cand := e.conns[i].enteredAt + lim
	for k := 0; k < 8; k++ {
		if e.eq5GuardAt(i, cand) {
			return cand
		}
		cand = math.Nextafter(cand, math.Inf(-1))
	}
	if e.eq5GuardAt(i, cand) {
		return cand
	}
	return c.now
}

// eq5Breakpoints returns the sorted sojourn breakpoints of one
// prev-group at the current (estimator, generation), building the table
// lazily. The group table covers every Eq. 4 query a connection from
// that prev can issue: the group selection is the union of its pairs'
// selections, so pair numerators, the group denominator, hinted sojourn
// probabilities, and the hinted pair→group-marginal fallback flip all
// change value only at these points.
func (e *Engine) eq5Breakpoints(prev topology.LocalIndex) []float64 {
	c := &e.eq5
	p := int(prev)
	for p >= len(c.bps) {
		c.bps = append(c.bps, nil)
		c.bpsOK = append(c.bpsOK, false)
	}
	if !c.bpsOK[p] {
		c.bps[p] = c.est.AppendSojournBreakpoints(c.bps[p][:0], c.now, prev)
		c.bpsOK[p] = true
	}
	return c.bps[p]
}

// eq5Term returns connection i's Eq. 5 term toward one direction, from
// the cached base state — bit-identical to the from-scratch term while
// the guards hold.
func (e *Engine) eq5Term(i int, toward topology.LocalIndex) float64 {
	c := &e.eq5
	cn := &e.conns[i]
	b := float64(cn.min)
	if cn.hint != NoHint {
		if cn.hint == toward {
			return b * c.hintP[i]
		}
		return 0
	}
	p := 0.0
	if c.den[i] != 0 {
		// A never-seen (prev, toward) pair yields weight 0 and p = +0,
		// exactly like the scalar HandOffProb query.
		p = c.est.HandOffWeight(c.now, cn.prev, toward, c.ext[i], c.test) / c.den[i]
	}
	return b * p
}

// eq5Accumulate answers one direction from the view: the term column is
// materialized on first use and the sum accumulated over it in table
// order, matching eq5Scratch. Called under the engine lock.
func (e *Engine) eq5Accumulate(toward topology.LocalIndex) float64 {
	c := &e.eq5
	t := int(toward)
	n := len(e.conns)
	if t < 1 || t >= len(c.termsDone) {
		// Out-of-range direction (never a live neighbor): answer without
		// touching the view's column state.
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += e.eq5Term(i, toward)
		}
		return sum
	}
	if !c.termsDone[t] {
		c.terms[t] = grow(c.terms[t], n)
		col := c.terms[t]
		for i := 0; i < n; i++ {
			col[i] = e.eq5Term(i, toward)
		}
		c.termsDone[t] = true
	}
	sum := 0.0
	for _, v := range c.terms[t][:n] {
		sum += v
	}
	return sum
}

// eq5Extend incorporates the connection just appended at table slot i
// into the live view. A timestamp change is first advanced across like
// any query would; the new connection's base state, guards, and
// materialized term-column entries are then appended, and every
// finished direction sum extended by its term — exactly what a
// from-scratch walk would now produce, since the new connection sits at
// the end of the table. Any key mismatch simply drops the view. Called
// under the engine lock by AddConnection.
func (e *Engine) eq5Extend(i int, now float64) {
	c := &e.eq5
	if !c.valid {
		return
	}
	if e.patterns == nil {
		c.invalidate()
		return
	}
	est := e.patterns.Estimator(now)
	if est != c.est {
		c.invalidate()
		return
	}
	if c.now != now {
		if !e.eq5Advance(now, est) {
			c.invalidate()
			return
		}
	} else if est.Generation() != c.estGen {
		c.invalidate()
		return
	}
	c.ext = append(c.ext[:i], 0)
	c.den = append(c.den[:i], 0)
	c.hintP = append(c.hintP[:i], 0)
	c.nextLo = append(c.nextLo[:i], 0)
	c.nextHi = append(c.nextHi[:i], 0)
	c.expAt = append(c.expAt[:i], 0)
	e.eq5Base(i)
	e.eq5Guards(i)
	c.heapPush(i)
	if c.expAt[i] < c.expiry {
		c.expiry = c.expAt[i]
	}
	for t := 1; t < len(c.termsDone); t++ {
		if !c.termsDone[t] {
			continue
		}
		v := e.eq5Term(i, topology.LocalIndex(t))
		c.terms[t] = append(c.terms[t][:i], v)
		if c.done[t] {
			c.sums[t] += v
		}
	}
}

// eq5Remove mirrors the engine's swap-removal of table slot i (the old
// last slot moved into i) in the per-connection view state and clears
// the direction sums: the cached terms stay valid per connection, but a
// float sum cannot be patched by subtraction and re-accumulating in the
// new table order is what the from-scratch walk now does. Called under
// the engine lock by RemoveConnection, after the table swap, with last
// = the new table length.
func (e *Engine) eq5Remove(i, last int) {
	c := &e.eq5
	if !c.valid {
		return
	}
	c.heapDelete(i)
	if i != last {
		c.ext[i] = c.ext[last]
		c.den[i] = c.den[last]
		c.hintP[i] = c.hintP[last]
		c.nextLo[i] = c.nextLo[last]
		c.nextHi[i] = c.nextHi[last]
		c.expAt[i] = c.expAt[last]
		c.heapRename(last, i)
	}
	c.ext = c.ext[:last]
	c.den = c.den[:last]
	c.hintP = c.hintP[:last]
	c.nextLo = c.nextLo[:last]
	c.nextHi = c.nextHi[:last]
	c.expAt = c.expAt[:last]
	c.heapPos = c.heapPos[:last]
	c.expiry = c.heapTopExpiry()
	for t := 1; t < len(c.termsDone); t++ {
		if !c.termsDone[t] {
			continue
		}
		if i != last {
			c.terms[t][i] = c.terms[t][last]
		}
		c.terms[t] = c.terms[t][:last]
	}
	for t := range c.done {
		c.done[t] = false
	}
}

// eq5NoteRecord lets the live view absorb a just-recorded quadruplet
// without the rebuild a generation mismatch would otherwise force, when
// the record provably cannot change any value the view serves. Two
// facts gate adoption, both restricted to stationary estimation
// (infinite T_int), where Record rebuilds the affected pair eagerly so
// the observed generation is final:
//
//   - A selection-invisible record (Estimator.Record returned false)
//     leaves every estimator query bit-identical, so the whole view —
//     cached terms, guards, breakpoint tables — remains exact.
//   - A visible record only changes queries against prev-group q.Prev.
//     When no live connection enters from that direction, the view
//     reads nothing from the group; only its lazily-built breakpoint
//     table must be dropped.
//
// In both cases the view adopts the estimator's new generation in
// place. preGen is the estimator's generation immediately before the
// record: adoption requires the view to have been current at that
// point — a view already stale from an earlier unadopted mutation must
// not be laundered to the newest generation by a later harmless
// record. Called under the engine lock, after PatternSet.Record.
func (e *Engine) eq5NoteRecord(q predict.Quadruplet, visible bool, preGen uint64) {
	c := &e.eq5
	if !c.valid || c.estGen != preGen {
		return
	}
	est := e.patterns.Estimator(q.Event)
	if est != c.est || !math.IsInf(est.Config().Tint, 1) {
		return
	}
	if visible {
		for i := range e.conns {
			if e.conns[i].prev == q.Prev {
				return // the group feeds a live connection: rebuild
			}
		}
	}
	gen := est.Generation()
	if c.estGen == gen {
		return
	}
	c.estGen = gen
	c.adoptions++
	if c.bpsEst == est {
		c.bpsGen = gen
		if visible && int(q.Prev) < len(c.bpsOK) {
			c.bpsOK[q.Prev] = false
		}
	}
}

// eq5Scratch is the retained from-scratch Eq. 5 walk — the reference
// semantics the view must reproduce bit-for-bit, kept both as the
// verifier's oracle and as documentation of the paper's sum:
// B_{this,toward} = Σ_j b(C_j) · p_h(C_j → toward within test).
func (e *Engine) eq5Scratch(now float64, toward topology.LocalIndex, test float64, est *predict.Estimator) float64 {
	sum := 0.0
	for i := range e.conns {
		c := &e.conns[i]
		extSoj := now - c.enteredAt
		if extSoj < 0 {
			extSoj = 0
		}
		// Reservation is made on the basis of each connection's minimum
		// QoS (§1: integration with adaptive-QoS schemes).
		b := float64(c.min)
		if c.hint != NoHint {
			// §7 extension: the next cell is known; only the hand-off
			// time is estimated.
			if c.hint == toward {
				sum += b * est.SojournProb(now, c.prev, c.hint, extSoj, test)
			}
			continue
		}
		sum += b * est.HandOffProb(now, c.prev, extSoj, test, toward)
	}
	return sum
}

// Eq5CacheStats returns the lifetime (hit, miss) counts of the Eq. 5
// view: hits answered from a finished per-direction sum, misses paid
// for a rebuild or an accumulation walk (diagnostics; not part of any
// report).
func (e *Engine) Eq5CacheStats() (hits, misses uint64) {
	e.lock()
	defer e.unlock()
	return e.eq5.hits, e.eq5.misses
}

// Eq5ViewStats returns the materialized view's lifetime event counts:
// full rebuilds, incremental timestamp advances, and per-connection
// refreshes performed during those advances (diagnostics; not part of
// any report).
func (e *Engine) Eq5ViewStats() (rebuilds, advances, refreshes uint64) {
	e.lock()
	defer e.unlock()
	return e.eq5.rebuilds, e.eq5.advances, e.eq5.refreshes
}

// Eq5Adoptions returns how many estimator generations the view adopted
// in place instead of rebuilding (see eq5NoteRecord).
func (e *Engine) Eq5Adoptions() uint64 {
	e.lock()
	defer e.unlock()
	return e.eq5.adoptions
}

// VerifyEq5Cache re-derives the live view against the from-scratch
// oracle at the view's own timestamp and returns the largest absolute
// divergence observed; checked is false when there was no live view to
// compare (no view, stale generation, or nothing accumulated yet). The
// sweep re-derives three layers: every finished per-direction sum
// against eq5Scratch, every materialized term against a fresh Eq. 4
// evaluation, and every connection's staleness guards (a guard that no
// longer holds means an advance failed to refresh the connection —
// reported as an infinite divergence, since the cached state is then
// untrustworthy regardless of its current numeric luck). internal/audit
// wires this into the invariant sweep with a 1e-9 tolerance, keeping
// the incremental fast path honest against the retained from-scratch
// path.
func (e *Engine) VerifyEq5Cache() (maxDiff float64, checked bool) {
	if e.patterns == nil {
		return 0, false
	}
	e.lock()
	defer e.unlock()
	return e.verifyEq5Locked()
}

// VerifyEq5CacheAt is VerifyEq5Cache restricted to a view whose current
// timestamp equals now. The event-boundary invariant sweep uses it: it
// certifies exactly the state the just-fired event's admission queries
// consumed, and the from-scratch walks run at the current timestamp, so
// they never force the estimator indexes backward in time (re-verifying
// a stale key would rebuild each windowed selection at the old
// timestamp and again at the next real query, thrashing every audited
// event).
func (e *Engine) VerifyEq5CacheAt(now float64) (maxDiff float64, checked bool) {
	if e.patterns == nil {
		return 0, false
	}
	e.lock()
	defer e.unlock()
	if e.eq5.now != now {
		return 0, false
	}
	return e.verifyEq5Locked()
}

func (e *Engine) verifyEq5Locked() (maxDiff float64, checked bool) {
	c := &e.eq5
	if !c.valid {
		return 0, false
	}
	if est := e.patterns.Estimator(c.now); est != c.est || est.Generation() != c.estGen {
		// Stale key: the next query discards the view anyway; there is
		// no live state to certify.
		return 0, false
	}
	// Layer 1: per-connection guards and the expiry machinery above
	// them. Guard validity is downward-closed in the timestamp, so
	// checking each connection at max(now, expAt[i]) certifies both the
	// view's current state and the verified point the advance fast path
	// will trust — catching a too-optimistic bound before an advance
	// ever skips past a real breakpoint crossing. The expiry heap must
	// be a consistent indexed min-heap whose top equals the scalar
	// bound, or the pop-loop can miss crossed connections regardless of
	// the per-connection numbers.
	if len(c.heapIdx) != len(e.conns) || len(c.heapPos) != len(e.conns) || c.expiry != c.heapTopExpiry() {
		return math.Inf(1), true
	}
	for p := range c.heapIdx {
		i := c.heapIdx[p]
		if i < 0 || i >= len(e.conns) || c.heapPos[i] != p {
			return math.Inf(1), true
		}
		if p > 0 && c.heapLess(p, (p-1)/2) {
			return math.Inf(1), true
		}
	}
	for i := range e.conns {
		at := c.now
		if c.expAt[i] > at {
			at = c.expAt[i]
		}
		if !e.eq5GuardAt(i, at) {
			return math.Inf(1), true
		}
	}
	// Layer 2: materialized term columns against fresh Eq. 4
	// evaluations at the view's timestamp.
	for t := 1; t < len(c.termsDone); t++ {
		if !c.termsDone[t] {
			continue
		}
		toward := topology.LocalIndex(t)
		for i := range e.conns {
			cn := &e.conns[i]
			ext := c.now - cn.enteredAt
			if ext < 0 {
				ext = 0
			}
			b := float64(cn.min)
			fresh := 0.0
			if cn.hint != NoHint {
				if cn.hint == toward {
					fresh = b * c.est.SojournProb(c.now, cn.prev, cn.hint, ext, c.test)
				}
			} else {
				fresh = b * c.est.HandOffProb(c.now, cn.prev, ext, c.test, toward)
			}
			if d := math.Abs(fresh - c.terms[t][i]); d > maxDiff {
				maxDiff = d
			}
		}
		checked = true
	}
	// Layer 3: finished direction sums against the from-scratch walk.
	for t := 1; t < len(c.done); t++ {
		if !c.done[t] {
			continue
		}
		scratch := e.eq5Scratch(c.now, topology.LocalIndex(t), c.test, c.est)
		if d := math.Abs(scratch - c.sums[t]); d > maxDiff {
			maxDiff = d
		}
		checked = true
	}
	return maxDiff, checked
}
