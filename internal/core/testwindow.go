package core

import (
	"fmt"
	"math"
)

// StepPolicy selects how consecutive T_est adjustments scale. The paper
// (§4.2) fixes both increment and decrement at 1 after experimenting with
// additive (1,2,3,…) and multiplicative (1,2,4,…) step growth, which were
// "found to cause over-reactions"; the alternatives are kept here for the
// ablation benchmarks.
type StepPolicy int

const (
	// UnitStep is the paper's choice: ±1 second per adjustment.
	UnitStep StepPolicy = iota
	// AdditiveStep grows the step by 1 for each consecutive same-direction
	// adjustment (1, 2, 3, …).
	AdditiveStep
	// MultiplicativeStep doubles the step for each consecutive
	// same-direction adjustment (1, 2, 4, …).
	MultiplicativeStep
)

// String names the policy.
func (p StepPolicy) String() string {
	switch p {
	case UnitStep:
		return "unit"
	case AdditiveStep:
		return "additive"
	case MultiplicativeStep:
		return "multiplicative"
	default:
		return fmt.Sprintf("StepPolicy(%d)", int(p))
	}
}

// TestController adapts the mobility-estimation time window T_est from
// observed hand-off drops, implementing the paper's Fig. 6 pseudocode.
//
// Let w = ⌈1/P_HD,target⌉. The controller watches hand-offs into the
// cell in an observation window of W_obs hand-offs (initially w). A
// hand-off drop beyond the permitted W_obs/w budget widens the window by
// w and raises T_est; completing a window within budget lowers T_est and
// resets the window. T_est never exceeds T_soj,max (supplied per-event by
// the caller from adjacent cells' estimation functions) on the way up
// and never drops below 1 s.
type TestController struct {
	w      int // reference window size
	wObs   int // observation window size W_obs
	test   float64
	nH     int // hand-offs counted in this window
	nHD    int // drops counted in this window
	policy StepPolicy
	upRun  int // consecutive increments (for non-unit policies)
	dnRun  int // consecutive decrements

	increments uint64
	decrements uint64
}

// NewTestController builds a controller for a hand-off drop target
// (e.g. 0.01) starting from T_est = tStart (the paper's T_start, 1 s).
func NewTestController(phdTarget, tStart float64, policy StepPolicy) *TestController {
	if phdTarget <= 0 || phdTarget > 1 {
		panic(fmt.Sprintf("core: PHD target %v outside (0,1]", phdTarget))
	}
	if tStart < 1 {
		panic("core: tStart must be ≥ 1 second")
	}
	w := int(math.Ceil(1 / phdTarget))
	return &TestController{w: w, wObs: w, test: math.Floor(tStart), policy: policy}
}

// Test returns the current estimation window T_est in seconds.
func (tc *TestController) Test() float64 { return tc.test }

// Window returns (n_H, n_HD, W_obs) for diagnostics.
func (tc *TestController) Window() (nH, nHD, wObs int) { return tc.nH, tc.nHD, tc.wObs }

// Adjustments returns the lifetime counts of T_est increments and
// decrements.
func (tc *TestController) Adjustments() (up, down uint64) { return tc.increments, tc.decrements }

func (tc *TestController) step(run int) float64 {
	switch tc.policy {
	case AdditiveStep:
		return float64(run)
	case MultiplicativeStep:
		return math.Pow(2, float64(run-1))
	default:
		return 1
	}
}

// OnHandOff feeds one hand-off arrival into the controller. dropped says
// whether the hand-off was dropped for lack of bandwidth; tSojMax is the
// current T_soj,max from the adjacent cells' hand-off estimation
// functions (pass math.Inf(1) to leave T_est uncapped).
func (tc *TestController) OnHandOff(dropped bool, tSojMax float64) {
	tc.nH++
	if dropped {
		tc.nHD++
		if tc.nHD > tc.wObs/tc.w {
			tc.wObs += tc.w
			if tc.test < tSojMax {
				tc.upRun++
				tc.dnRun = 0
				tc.test += tc.step(tc.upRun)
				if tc.test > tSojMax {
					tc.test = math.Max(1, math.Floor(tSojMax))
				}
				tc.increments++
			}
		}
		return
	}
	if tc.nH > tc.wObs {
		if tc.nHD <= tc.wObs/tc.w && tc.test > 1 {
			tc.dnRun++
			tc.upRun = 0
			tc.test -= tc.step(tc.dnRun)
			if tc.test < 1 {
				tc.test = 1
			}
			tc.decrements++
		}
		tc.wObs = tc.w
		tc.nH = 0
		tc.nHD = 0
	}
}
