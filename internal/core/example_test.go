package core_test

import (
	"fmt"

	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// examplePeers wires three engines on a 3-cell line directly, playing
// the role internal/cellnet (in-process) or internal/signaling (TCP)
// normally plays.
type examplePeers struct {
	top     *topology.Topology
	self    topology.CellID
	engines []*core.Engine
	peers   []core.Peers
}

func (p examplePeers) nb(li topology.LocalIndex) (topology.CellID, *core.Engine) {
	id, _ := p.top.FromLocal(p.self, li)
	return id, p.engines[id]
}

func (p examplePeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	id, e := p.nb(li)
	toward, _ := p.top.LocalOf(id, p.self)
	return e.OutgoingReservation(now, toward, test), true
}

func (p examplePeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	_, e := p.nb(li)
	return e.UsedBandwidth(), e.Capacity(), e.LastTargetReservation(), true
}

func (p examplePeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	id, e := p.nb(li)
	return e.UsedBandwidth(), e.Capacity(), e.ComputeTargetReservation(now, p.peers[id]), true
}

func (p examplePeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	_, e := p.nb(li)
	return e.MaxSojourn(now), true
}

// Admission control with predictive reservation: the middle cell of a
// 3-cell line reserves bandwidth for the hand-offs its neighbors'
// estimators predict, then tests a new connection against what is left.
func ExampleEngine_AdmitNew() {
	top := topology.Line(3)
	cfg := core.Config{
		Capacity:   100,
		Policy:     core.AC3,
		PHDTarget:  0.01,
		TStart:     30, // a warmed-up estimation window for the example
		Estimation: predict.StationaryConfig(),
	}
	engines := make([]*core.Engine, 3)
	peers := make([]core.Peers, 3)
	for i := range engines {
		c := cfg
		c.Degree = top.Degree(topology.CellID(i))
		engines[i] = core.NewEngine(c)
	}
	for i := range engines {
		peers[i] = examplePeers{top: top, self: topology.CellID(i), engines: engines, peers: peers}
	}

	// Cell 0 holds a 4-BU video call that history says will hand off
	// into cell 1 within ~20 s.
	engines[0].RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 20})
	engines[0].AddConnection(1, core.ConnSpec{Min: 4, Prev: topology.Self}, 90)

	// Cell 1 is nearly full: 95 of 100 BUs in use.
	engines[1].AddConnection(2, core.ConnSpec{Min: 95, Prev: topology.Self}, 0)

	// A new 4-BU request in cell 1 must clear C − B_r = 100 − 4: the
	// predicted hand-off keeps the last BUs free.
	d := engines[1].AdmitNew(100, 4, peers[1])
	fmt.Printf("admit 4 BU: %v (B_r = %.0f)\n", d.Admitted, engines[1].LastTargetReservation())

	// A 1-BU voice call still fits beside the reservation.
	d = engines[1].AdmitNew(100, 1, peers[1])
	fmt.Printf("admit 1 BU: %v\n", d.Admitted)

	// Output:
	// admit 4 BU: false (B_r = 4)
	// admit 1 BU: true
}
