package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// TestPropertyIncrementalBr is the differential harness for the
// materialized Eq. 5 view: it drives random interleavings of
// AddConnection, RemoveConnection, hand-off departures, estimator
// Records, EvictBefore sweeps, and clock advances, and after *every*
// event queries a reservation and compares it against the retained
// from-scratch oracle (eq5Scratch) to the audit tolerance, then
// re-certifies the whole view via VerifyEq5Cache. Unlike
// TestPropertyEq5Incremental it holds the estimation window to a small
// set of values, so the view survives across events and the incremental
// advance/refresh/extend/remove delta paths — not the rebuild path —
// are what answer most queries. Run under -race via `make race`.
func TestPropertyIncrementalBr(t *testing.T) {
	cfgs := []struct {
		name string
		est  predict.Config
	}{
		{"stationary", predict.StationaryConfig()},
		{"windowed", predict.Config{Tint: 40, Period: 200, NwinPeriods: 1, NQuad: 30, RebuildEvery: 5}},
	}
	for _, tc := range cfgs {
		for seed := uint64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				runIncrementalBrOps(t, tc.est, seed)
			})
		}
	}
}

func runIncrementalBrOps(t *testing.T, estCfg predict.Config, seed uint64) {
	t.Helper()
	cfg := Config{
		Capacity: 200, Degree: 4, Policy: AC1,
		PHDTarget: 0.01, TStart: 1, Estimation: estCfg,
	}
	e := NewEngine(cfg)
	r := rand.New(rand.NewPCG(0x1BCB41EC, seed))
	now := 0.0
	var live []ConnID
	nextID := ConnID(1)

	randDir := func() topology.LocalIndex {
		return topology.LocalIndex(1 + r.IntN(cfg.Degree))
	}
	// A narrow window set keeps the view alive across events: the same
	// (test, estimator) key recurs, so timestamp changes advance the
	// view instead of rebuilding it.
	windows := []float64{5, 12.5}
	check := func(step int, what string) {
		t.Helper()
		toward := randDir()
		test := windows[r.IntN(len(windows))]
		got := e.OutgoingReservation(now, toward, test)
		want := e.eq5Scratch(now, toward, test, e.patterns.Estimator(now))
		if math.Abs(got-want) > eq5PropTolerance {
			t.Fatalf("step %d after %s: OutgoingReservation(now=%v, toward=%d, test=%v) = %v, from-scratch = %v (diff %v)",
				step, what, now, toward, test, got, want, math.Abs(got-want))
		}
		if diff, checked := e.VerifyEq5Cache(); checked && diff > eq5PropTolerance {
			t.Fatalf("step %d after %s: VerifyEq5Cache reports divergence %v (tolerance %v)",
				step, what, diff, eq5PropTolerance)
		}
	}

	for step := 0; step < 500; step++ {
		what := "query"
		switch op := r.IntN(14); {
		case op < 3: // admit a new connection
			what = "add"
			min := 1 + r.IntN(5)
			if e.used+min > cfg.Capacity {
				break
			}
			spec := ConnSpec{Min: min, Prev: topology.Self}
			if r.IntN(3) == 0 {
				spec.Max = min + r.IntN(4)
			}
			if r.IntN(4) == 0 {
				spec.Hint = randDir()
			}
			e.AddConnection(nextID, spec, now)
			live = append(live, nextID)
			nextID++
		case op < 5: // connection ends
			what = "remove"
			if len(live) == 0 {
				break
			}
			i := r.IntN(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			e.RemoveConnection(id)
		case op < 7: // hand-off out: departure recorded, then a fresh arrival
			what = "hand-off"
			if len(live) == 0 {
				break
			}
			i := r.IntN(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			e.RecordDeparture(predict.Quadruplet{
				Event: now, Prev: topology.Self, Next: randDir(),
				Sojourn: r.Float64() * 50,
			})
			e.RemoveConnection(id)
			min := 1 + r.IntN(5)
			if e.used+min <= cfg.Capacity {
				e.AddConnection(nextID, ConnSpec{Min: min, Prev: randDir()}, now)
				live = append(live, nextID)
				nextID++
			}
		case op < 9: // estimator learns a quadruplet
			what = "record"
			prev := topology.Self
			if r.IntN(2) == 0 {
				prev = randDir()
			}
			e.RecordDeparture(predict.Quadruplet{
				Event: now, Prev: prev, Next: randDir(),
				Sojourn: r.Float64() * 50,
			})
		case op == 9: // explicit estimator eviction
			what = "evict"
			e.patterns.Estimator(now).EvictBefore(now - 20 - r.Float64()*100)
		case op == 10: // §3.1 deletion rule
			what = "sweep"
			e.SweepHistory(now)
		case op < 13: // clock advance — the view's hot path
			what = "advance"
			now += r.Float64() * 5
		default:
		}
		check(step, what)
	}
	// Final full fan-out at one key: every direction must agree.
	for toward := topology.LocalIndex(1); int(toward) <= cfg.Degree; toward++ {
		for _, test := range windows {
			got := e.OutgoingReservation(now, toward, test)
			want := e.eq5Scratch(now, toward, test, e.patterns.Estimator(now))
			if math.Abs(got-want) > eq5PropTolerance {
				t.Fatalf("final: toward %d test %v: view %v vs from-scratch %v", toward, test, got, want)
			}
		}
	}
}

// TestEq5ViewEdgeCases pins the invalidation edge cases of the
// materialized view in table form: same-timestamp add/remove pairs
// (including the swap-remove of a middle slot), a Record landing
// between two queries at one timestamp, and evict-triggered generation
// bumps — with and without samples actually dropping.
func TestEq5ViewEdgeCases(t *testing.T) {
	type viewState struct {
		rebuilds uint64
		live     bool // VerifyEq5Cache checked
	}
	cases := []struct {
		name string
		run  func(t *testing.T, e *Engine) viewState
	}{
		{
			// Add then remove the same connection at one timestamp: the
			// view extends, then swap-shrinks, and keeps answering
			// without a rebuild.
			name: "same-timestamp add/remove pair",
			run: func(t *testing.T, e *Engine) viewState {
				e.OutgoingReservation(100, 1, 30)
				e.AddConnection(50, ConnSpec{Min: 3, Prev: 1}, 100)
				e.RemoveConnection(50)
				r, _, _ := e.Eq5ViewStats()
				return viewState{rebuilds: r, live: true}
			},
		},
		{
			// Remove a *middle* slot at the cache timestamp: the last
			// connection swaps into its place and every per-connection
			// column must move with it.
			name: "same-timestamp middle swap-remove",
			run: func(t *testing.T, e *Engine) viewState {
				e.OutgoingReservation(100, 1, 30)
				e.AddConnection(50, ConnSpec{Min: 3, Prev: 1}, 100)
				e.AddConnection(51, ConnSpec{Min: 7, Prev: 2, Hint: 1}, 100)
				e.RemoveConnection(1) // seeded conn at slot 0: 51 swaps in
				r, _, _ := e.Eq5ViewStats()
				return viewState{rebuilds: r, live: true}
			},
		},
		{
			// A Record between two queries at equal now: the second
			// query must see the new selection (full rebuild), not the
			// memoized sum.
			name: "record between equal-now queries",
			run: func(t *testing.T, e *Engine) viewState {
				e.OutgoingReservation(100, 1, 30)
				e.RecordDeparture(predict.Quadruplet{Event: 100, Prev: topology.Self, Next: 1, Sojourn: 12})
				r0, _, _ := e.Eq5ViewStats()
				e.OutgoingReservation(100, 1, 30)
				r1, _, _ := e.Eq5ViewStats()
				if r1 != r0+1 {
					t.Fatalf("equal-now query after Record did not rebuild (rebuilds %d -> %d)", r0, r1)
				}
				return viewState{rebuilds: r1, live: true}
			},
		},
		{
			// EvictBefore that drops samples bumps the generation: the
			// next query rebuilds against the shrunken selection.
			name: "evict drops samples",
			run: func(t *testing.T, e *Engine) viewState {
				e.OutgoingReservation(100, 1, 30)
				est := e.patterns.Estimator(100)
				gen := est.Generation()
				est.EvictBefore(1.5) // drops the Event=0 and Event=1 quadruplets
				if est.Generation() == gen {
					t.Fatal("EvictBefore dropped samples without bumping the generation")
				}
				r0, _, _ := e.Eq5ViewStats()
				e.OutgoingReservation(100, 1, 30)
				r1, _, _ := e.Eq5ViewStats()
				if r1 != r0+1 {
					t.Fatalf("query after dropping evict did not rebuild (rebuilds %d -> %d)", r0, r1)
				}
				return viewState{rebuilds: r1, live: true}
			},
		},
		{
			// EvictBefore that drops nothing leaves the generation — and
			// the live view — alone: the next query is a plain hit.
			name: "evict drops nothing",
			run: func(t *testing.T, e *Engine) viewState {
				e.OutgoingReservation(100, 1, 30)
				est := e.patterns.Estimator(100)
				gen := est.Generation()
				est.EvictBefore(-1)
				if est.Generation() != gen {
					t.Fatal("no-op EvictBefore bumped the generation")
				}
				h0, _ := e.Eq5CacheStats()
				e.OutgoingReservation(100, 1, 30)
				if h1, _ := e.Eq5CacheStats(); h1 != h0+1 {
					t.Fatalf("query after no-op evict was not a hit (hits %d -> %d)", h0, h1)
				}
				r, _, _ := e.Eq5ViewStats()
				return viewState{rebuilds: r, live: true}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := seedEq5Engine()
			st := tc.run(t, e)
			// Whatever the path, the surviving state must re-derive
			// cleanly and the next answers must match the oracle.
			if diff, checked := e.VerifyEq5Cache(); checked != st.live || diff > eq5PropTolerance {
				t.Fatalf("VerifyEq5Cache = (%v, %v), want live=%v within tolerance", diff, checked, st.live)
			}
			for _, toward := range []topology.LocalIndex{1, 2} {
				got := e.OutgoingReservation(100, toward, 30)
				want := e.eq5Scratch(100, toward, 30, e.patterns.Estimator(100))
				if got != want {
					t.Fatalf("toward %d: view %v != from-scratch %v", toward, got, want)
				}
			}
		})
	}
}

// TestEq5ViewAdvanceAllocationFree pins the steady-state cost model:
// once the view is warm, advancing the clock and re-querying allocates
// nothing, even when guard expiries force per-connection refreshes.
func TestEq5ViewAdvanceAllocationFree(t *testing.T) {
	e := seedEq5Engine()
	for i := 0; i < 30; i++ {
		e.RecordDeparture(predict.Quadruplet{
			Event: float64(3 + i), Prev: topology.LocalIndex(i % 3),
			Next: topology.LocalIndex(1 + i%2), Sojourn: float64(5 + (i*7)%40),
		})
	}
	now := 100.0
	e.OutgoingReservation(now, 1, 30) // warm the view
	e.OutgoingReservation(now, 2, 30)
	allocs := testing.AllocsPerRun(200, func() {
		now += 0.25
		e.OutgoingReservation(now, 1, 30)
		e.OutgoingReservation(now, 2, 30)
	})
	if allocs != 0 {
		t.Fatalf("steady-state advance allocated %v times per run, want 0", allocs)
	}
}
