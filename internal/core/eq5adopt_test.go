package core

import (
	"math"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// adoptConfig uses a tiny N_quad so a (prev, next) pair fills in two
// records and equal-sojourn replacements become selection-invisible.
func adoptConfig() Config {
	return Config{
		Capacity: 100, Degree: 2, Policy: AC1,
		PHDTarget: 0.01, TStart: 1,
		Estimation: predict.Config{Tint: math.Inf(1), NQuad: 2},
	}
}

// TestEq5AdoptsInvisibleRecord: a selection-invisible departure record
// must not cost the materialized view anything — the view adopts the
// estimator's new generation and the next query is still a cache hit.
func TestEq5AdoptsInvisibleRecord(t *testing.T) {
	e := NewEngine(adoptConfig())
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 200})
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 30})
	e.RecordDeparture(predict.Quadruplet{Event: 2, Prev: 1, Next: 2, Sojourn: 30})
	e.AddConnection(1, ConnSpec{Min: 4, Prev: topology.Self}, 90)

	before := e.OutgoingReservation(100, 1, 30)
	if h, m := e.Eq5CacheStats(); h != 0 || m != 1 {
		t.Fatalf("warm-up: hits=%d misses=%d", h, m)
	}
	// Pair (1,2) is full of 30s: recording another 30 is invisible.
	e.RecordDeparture(predict.Quadruplet{Event: 101, Prev: 1, Next: 2, Sojourn: 30})
	if got := e.Eq5Adoptions(); got != 1 {
		t.Fatalf("Eq5Adoptions = %d, want 1", got)
	}
	if got := e.OutgoingReservation(100, 1, 30); got != before {
		t.Fatalf("reservation moved after invisible record: %v -> %v", before, got)
	}
	if h, m := e.Eq5CacheStats(); h != 1 || m != 1 {
		t.Fatalf("post-adoption query missed: hits=%d misses=%d, want 1/1", h, m)
	}
	if r, _, _ := e.Eq5ViewStats(); r != 1 {
		t.Fatalf("view rebuilt %d times, want 1 (adoption spared the rebuild)", r)
	}
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache = (%v, %v), want (0, true)", diff, checked)
	}
}

// TestEq5AdoptsVisibleRecordOffLivePrev: a visible record on a prev
// direction no live connection uses cannot change any term the view
// serves, so the view adopts and only that direction's breakpoint set
// is dropped.
func TestEq5AdoptsVisibleRecordOffLivePrev(t *testing.T) {
	e := NewEngine(adoptConfig())
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 200})
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 30})
	e.AddConnection(1, ConnSpec{Min: 4, Prev: topology.Self}, 90)

	before := e.OutgoingReservation(100, 1, 30)
	// Visible record (new sojourn value) — but on prev 1, and the only
	// live connection entered from Self.
	e.RecordDeparture(predict.Quadruplet{Event: 101, Prev: 1, Next: 2, Sojourn: 55})
	if got := e.Eq5Adoptions(); got != 1 {
		t.Fatalf("Eq5Adoptions = %d, want 1", got)
	}
	if got := e.OutgoingReservation(100, 1, 30); got != before {
		t.Fatalf("reservation moved: %v -> %v", before, got)
	}
	if h, m := e.Eq5CacheStats(); h != 1 || m != 1 {
		t.Fatalf("post-adoption query missed: hits=%d misses=%d, want 1/1", h, m)
	}
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache = (%v, %v), want (0, true)", diff, checked)
	}
}

// TestEq5RefusesVisibleRecordOnLivePrev: a visible record on a prev a
// live connection entered from CAN change the view's terms, so adoption
// must refuse, and — the staleness-laundering guard — a later invisible
// record must not adopt across the refused generation.
func TestEq5RefusesVisibleRecordOnLivePrev(t *testing.T) {
	e := NewEngine(adoptConfig())
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 30})
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 30})
	e.AddConnection(1, ConnSpec{Min: 4, Prev: 1}, 90)

	e.OutgoingReservation(100, 1, 30)
	// Visible (evicts a 30 for a 70) on prev 1 = the live connection's
	// entry direction: no adoption.
	e.RecordDeparture(predict.Quadruplet{Event: 101, Prev: 1, Next: 2, Sojourn: 70})
	if got := e.Eq5Adoptions(); got != 0 {
		t.Fatalf("Eq5Adoptions = %d, want 0 (refusal)", got)
	}
	// Pair is now [30, 70]; recording a 30 is invisible in isolation,
	// but the view already missed a generation — adopting here would
	// launder the stale state. preGen check must refuse.
	e.RecordDeparture(predict.Quadruplet{Event: 102, Prev: 1, Next: 2, Sojourn: 30})
	if got := e.Eq5Adoptions(); got != 0 {
		t.Fatalf("Eq5Adoptions = %d, want 0 (laundering guard)", got)
	}
	// The next query rebuilds against the real history.
	e.OutgoingReservation(100, 1, 30)
	if h, m := e.Eq5CacheStats(); h != 0 || m != 2 {
		t.Fatalf("stale view served a hit: hits=%d misses=%d, want 0/2", h, m)
	}
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache = (%v, %v), want (0, true)", diff, checked)
	}
}

// TestLedgerReportsAdoptions: the adoption counter reaches the ledger
// snapshot next to the rebuild counters it offsets.
func TestLedgerReportsAdoptions(t *testing.T) {
	e := NewEngine(adoptConfig())
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: 1, Next: 2, Sojourn: 30})
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 30})
	e.AddConnection(1, ConnSpec{Min: 4, Prev: topology.Self}, 90)
	e.OutgoingReservation(100, 1, 30)
	e.RecordDeparture(predict.Quadruplet{Event: 101, Prev: 1, Next: 2, Sojourn: 30})
	if led := e.Ledger(); led.Eq5Adoptions != 1 {
		t.Fatalf("Ledger().Eq5Adoptions = %d, want 1", led.Eq5Adoptions)
	}
}
