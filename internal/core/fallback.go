package core

import (
	"fmt"
	"math"
)

// FallbackMode selects the conservative estimate substituted for an
// unreachable neighbor's Eq. 5 contribution to B_r. The paper's
// reservation scheme is distributed — every B_r computation fans out to
// the adjacent base stations (Eqs. 5–6) — so a lost or slow inter-BS
// link would otherwise silently under-reserve and let P_HD drift past
// P_HD,target exactly when the network is least healthy.
type FallbackMode int

const (
	// FallbackDecay substitutes the neighbor's last successfully fetched
	// contribution, decayed exponentially with the time since it was
	// observed (stale mobility information loses predictive value, but
	// dropping it to zero instantly is the worst possible estimate). A
	// neighbor that never answered falls back to the guard value.
	FallbackDecay FallbackMode = iota
	// FallbackGuard substitutes a static guard fraction of this cell's
	// capacity share per neighbor — the conservative per-class
	// reservation the adaptive-allocation literature falls back to when
	// prediction is unavailable.
	FallbackGuard
	// FallbackZero reproduces the legacy behavior: an unreachable
	// neighbor contributes nothing. Kept for ablation; it under-reserves
	// under faults.
	FallbackZero
)

// String names the mode.
func (m FallbackMode) String() string {
	switch m {
	case FallbackDecay:
		return "decay"
	case FallbackGuard:
		return "guard"
	case FallbackZero:
		return "zero"
	default:
		return fmt.Sprintf("FallbackMode(%d)", int(m))
	}
}

// Fallback is the degradation policy applied when a neighbor cannot be
// reached during a B_r computation. The zero value selects FallbackDecay
// with the default time constant and guard fraction.
type Fallback struct {
	// Mode selects the conservative estimate.
	Mode FallbackMode
	// DecayTau is the e-folding time in seconds for FallbackDecay
	// (default 30 — a few mean cell-boundary crossings at paper speeds).
	DecayTau float64
	// GuardFraction is the fraction of C/Degree substituted per
	// unreachable neighbor under FallbackGuard, and the floor for
	// FallbackDecay when no last-known value exists (default 0.05).
	GuardFraction float64
}

// withDefaults fills zero fields.
func (f Fallback) withDefaults() Fallback {
	if f.DecayTau == 0 {
		f.DecayTau = 30
	}
	if f.GuardFraction == 0 {
		f.GuardFraction = 0.05
	}
	return f
}

// Validate checks fallback invariants.
func (f Fallback) Validate() error {
	if f.Mode < FallbackDecay || f.Mode > FallbackZero {
		return fmt.Errorf("core: unknown fallback mode %d", int(f.Mode))
	}
	if f.DecayTau < 0 || math.IsNaN(f.DecayTau) || math.IsInf(f.DecayTau, 0) {
		return fmt.Errorf("core: fallback decay tau %v must be a finite non-negative time", f.DecayTau)
	}
	if f.GuardFraction < 0 || f.GuardFraction > 1 || math.IsNaN(f.GuardFraction) {
		return fmt.Errorf("core: guard fraction %v outside [0,1]", f.GuardFraction)
	}
	return nil
}

// guardValue is the static conservative per-neighbor contribution.
func (f Fallback) guardValue(capacity, degree int) float64 {
	return f.GuardFraction * float64(capacity) / float64(degree)
}

// fallbackContribution computes the conservative Eq. 5 substitute for
// neighbor li under the engine lock: last-known decayed value, guard
// fraction, or zero. The result is always finite and non-negative so a
// degraded B_r still passes the audit's reservation-sanity invariant.
func (e *Engine) fallbackContribution(li int, now float64) float64 {
	f := e.cfg.Fallback.withDefaults()
	switch f.Mode {
	case FallbackZero:
		return 0
	case FallbackGuard:
		return f.guardValue(e.cfg.Capacity, e.cfg.Degree)
	}
	last, at := e.lastOut[li-1], e.lastOutAt[li-1]
	if math.IsNaN(at) {
		// Never heard from this neighbor: no history to decay.
		return f.guardValue(e.cfg.Capacity, e.cfg.Degree)
	}
	age := now - at
	if age < 0 {
		age = 0
	}
	v := last * math.Exp(-age/f.DecayTau)
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}
