package core

import (
	"fmt"
	"math"
	"sync"
)

// This file implements three admission-control rivals from the wider
// hand-off literature, registered alongside the paper's schemes so the
// arena (internal/arena) can rank them under identical workloads:
//
//   - "guard-dynamic": dynamic guard channels with channel borrowing —
//     the classic guard-channel scheme made adaptive by moving the guard
//     level on observed hand-off outcomes (after the dynamic
//     guard-channel literature, e.g. arXiv:1206.3375).
//   - "multi-class": adaptive multi-class degradation — the Eq. 5/6
//     reservation test backed by class-aware downgrading of lower
//     priority elastic connections (after multi-class adaptive
//     frameworks, e.g. arXiv:1502.06388).
//   - "token-bucket": an overload gate in front of the plain capacity
//     test — new-call attempts drain a per-cell token bucket so admission
//     bursts are smoothed while hand-offs bypass the gate entirely
//     (adapted from the production admission server's internal/service
//     gate, re-based from wall-clock to simulation time).

// ---------------------------------------------------------------------
// Dynamic guard channels with borrowing.

// guardDynamicPolicy reserves an integer guard band for hand-offs and
// adapts it per cell: every dropped hand-off raises the guard by Step,
// every SuccessRun consecutive successes lowers it by Step. New calls
// may "borrow" guard bandwidth down to Min when the cell has seen no
// hand-off arrival for BorrowIdle seconds — idle guard capacity is
// lent to new calls instead of sitting blocked.
//
// The struct doubles as the registry prototype (knobs only) and, via
// CloneCellState, the per-cell instance carrying mutable state. State is
// guarded by a mutex because neighbors may read the guard level through
// the peer fan-out while the owning cell adapts it.
type guardDynamicPolicy struct {
	// Start is the initial guard level in BUs.
	Start int
	// Min and Max clamp the adaptive guard level.
	Min, Max int
	// Step is the per-adjustment guard increment/decrement in BUs.
	Step int
	// SuccessRun is how many consecutive successful hand-offs lower the
	// guard by one Step.
	SuccessRun int
	// BorrowIdle is how long (seconds) the cell must go without any
	// hand-off arrival before new calls may borrow into the guard band.
	BorrowIdle float64

	mu     sync.Mutex
	guard  int     // current guard level in BUs
	okRun  int     // consecutive successful hand-offs since last change
	lastHO float64 // time of the most recent hand-off arrival
}

// defaultGuardDynamic returns the registry prototype with its default
// knobs: a 5-BU starting guard adapting within [2,20] by 1-BU steps,
// relaxing after 8 clean hand-offs, borrowable after 30 idle seconds.
func defaultGuardDynamic() *guardDynamicPolicy {
	return &guardDynamicPolicy{Start: 5, Min: 2, Max: 20, Step: 1, SuccessRun: 8, BorrowIdle: 30, guard: 5}
}

func (g *guardDynamicPolicy) Name() string         { return "guard-dynamic" }
func (g *guardDynamicPolicy) Traits() PolicyTraits { return PolicyTraits{} }

// CloneCellState gives each cell its own guard level.
func (g *guardDynamicPolicy) CloneCellState() AdmissionPolicy {
	return &guardDynamicPolicy{
		Start: g.Start, Min: g.Min, Max: g.Max, Step: g.Step,
		SuccessRun: g.SuccessRun, BorrowIdle: g.BorrowIdle,
		guard: g.Start,
	}
}

// FixedReservation seeds B_r^prev with the guard level and answers the
// engine's generic ComputeTargetReservation with it, so metrics and
// peer snapshots report the live guard as the cell's reservation.
func (g *guardDynamicPolicy) FixedReservation(Config) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.guard)
}

// ObserveHandOff adapts the guard to observed hand-off pressure.
func (g *guardDynamicPolicy) ObserveHandOff(e *Engine, now float64, dropped bool) {
	g.mu.Lock()
	g.lastHO = now
	if dropped {
		g.okRun = 0
		if g.guard < g.Max {
			g.guard += g.Step
			if g.guard > g.Max {
				g.guard = g.Max
			}
		}
	} else {
		g.okRun++
		if g.okRun >= g.SuccessRun {
			g.okRun = 0
			if g.guard > g.Min {
				g.guard -= g.Step
				if g.guard < g.Min {
					g.guard = g.Min
				}
			}
		}
	}
	guard := g.guard
	g.mu.Unlock()
	e.PublishReservation(float64(guard))
}

func (g *guardDynamicPolicy) DecideNew(ctx *PolicyContext) Decision {
	g.mu.Lock()
	guard := g.guard
	idle := ctx.Now-g.lastHO >= g.BorrowIdle
	g.mu.Unlock()
	total := ctx.Committed() + ctx.Bandwidth
	if total <= ctx.Capacity()-guard {
		return Decision{Admitted: true}
	}
	// Borrowing: idle guard capacity is lent down to Min.
	if idle && total <= ctx.Capacity()-g.Min {
		return Decision{Admitted: true}
	}
	return Decision{}
}

func (g *guardDynamicPolicy) DecideHandOff(ctx *PolicyContext) Decision {
	return handOffRoomDecision(ctx)
}

func (g *guardDynamicPolicy) ValidateConfig(cfg Config) error {
	if g.Min < 0 || g.Max < g.Min || g.Start < g.Min || g.Start > g.Max {
		return fmt.Errorf("core: guard-dynamic levels start=%d outside [%d,%d]", g.Start, g.Min, g.Max)
	}
	if g.Max > cfg.Capacity {
		return fmt.Errorf("core: guard-dynamic max %d exceeds capacity %d", g.Max, cfg.Capacity)
	}
	if g.Step <= 0 || g.SuccessRun <= 0 || g.BorrowIdle < 0 {
		return fmt.Errorf("core: guard-dynamic knobs step=%d run=%d idle=%v", g.Step, g.SuccessRun, g.BorrowIdle)
	}
	return nil
}

// ---------------------------------------------------------------------
// Multi-class adaptive degradation.

// multiClassPolicy runs the paper's predictive reservation test (Eq. 6,
// AC1 form) but, where AC1 would block, tries to make room by degrading
// lower-priority elastic connections toward their minima — admission by
// degradation rather than rejection. Hand-offs get the same treatment
// above the plain capacity test, so a full cell sheds streaming quality
// before dropping an active call.
type multiClassPolicy struct{}

func (multiClassPolicy) Name() string         { return "multi-class" }
func (multiClassPolicy) Traits() PolicyTraits { return PolicyTraits{Adaptive: true, UsesPeers: true} }

func (multiClassPolicy) DecideNew(ctx *PolicyContext) Decision {
	br := ctx.ComputeTargetReservation()
	d := Decision{BrCalcs: 1, Degraded: ctx.BrDegraded()}
	limit := int(math.Floor(float64(ctx.Capacity()) - br))
	if ctx.Committed()+ctx.Bandwidth <= limit {
		d.Admitted = true
		return d
	}
	// Blocked at current grants: degrade strictly lower-priority
	// connections toward their minima until the request fits under the
	// same reservation-respecting limit.
	d.Admitted = ctx.DowngradeClassToFit(ctx.Bandwidth, ctx.Class, limit)
	return d
}

func (multiClassPolicy) DecideHandOff(ctx *PolicyContext) Decision {
	if ctx.HandOffRoom() {
		return Decision{Admitted: true}
	}
	// A full cell degrades streaming quality before dropping the call.
	return Decision{
		Admitted: ctx.DowngradeClassToFit(ctx.Bandwidth, ctx.Class, ctx.Capacity()+ctx.HandOffMargin()),
	}
}

// ---------------------------------------------------------------------
// Token-bucket overload gate.

// tokenBucketPolicy meters new-call admission attempts through a
// per-cell token bucket running on simulation time: each attempt needs
// one token; the bucket refills at Rate tokens/second up to Burst. An
// empty bucket sheds the attempt outright — before any capacity test —
// which smooths admission bursts into the cell. Hand-offs never consume
// tokens: the gate protects hand-offs from new-call surges, not the
// other way around.
type tokenBucketPolicy struct {
	// Burst is the bucket depth (maximum tokens, also the initial fill).
	Burst float64
	// Rate is the refill rate in tokens per simulated second.
	Rate float64

	tokens float64
	last   float64
}

// defaultTokenBucket returns the registry prototype: bursts of 10
// admissions, refilling at 0.5 tokens/s (steady-state 30 calls/min).
func defaultTokenBucket() *tokenBucketPolicy {
	return &tokenBucketPolicy{Burst: 10, Rate: 0.5}
}

func (t *tokenBucketPolicy) Name() string         { return "token-bucket" }
func (t *tokenBucketPolicy) Traits() PolicyTraits { return PolicyTraits{} }

// CloneCellState gives each cell its own bucket, initially full.
func (t *tokenBucketPolicy) CloneCellState() AdmissionPolicy {
	return &tokenBucketPolicy{Burst: t.Burst, Rate: t.Rate, tokens: t.Burst}
}

// FixedReservation: the gate reserves no bandwidth.
func (t *tokenBucketPolicy) FixedReservation(Config) float64 { return 0 }

func (t *tokenBucketPolicy) DecideNew(ctx *PolicyContext) Decision {
	// Refill on simulation time. DecideNew runs serialized per cell, so
	// the bucket needs no lock.
	if dt := ctx.Now - t.last; dt > 0 {
		t.tokens = math.Min(t.Burst, t.tokens+dt*t.Rate)
	}
	t.last = ctx.Now
	if t.tokens < 1 {
		return Decision{} // shed: overload gate closed
	}
	t.tokens--
	return Decision{Admitted: ctx.Committed()+ctx.Bandwidth <= ctx.Capacity()}
}

func (t *tokenBucketPolicy) DecideHandOff(ctx *PolicyContext) Decision {
	return handOffRoomDecision(ctx)
}

func (t *tokenBucketPolicy) ValidateConfig(Config) error {
	if t.Burst < 1 || t.Rate <= 0 {
		return fmt.Errorf("core: token-bucket burst=%v rate=%v invalid", t.Burst, t.Rate)
	}
	return nil
}

func init() {
	RegisterPolicy("guard-dynamic", func() AdmissionPolicy { return defaultGuardDynamic() })
	RegisterPolicy("multi-class", func() AdmissionPolicy { return multiClassPolicy{} })
	RegisterPolicy("token-bucket", func() AdmissionPolicy { return defaultTokenBucket() })
}
