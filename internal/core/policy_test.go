package core

import (
	"sort"
	"strings"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// TestPolicyNameRoundTrip pins the registry to the enum's spellings:
// every legacy Policy value resolves by its String() name to an
// implementation reporting that same name, so configs and CLI flags
// written against the enum era keep meaning the same scheme.
func TestPolicyNameRoundTrip(t *testing.T) {
	for _, p := range []Policy{AC1, AC2, AC3, Static, None, MobSpec, ExpDwell} {
		pol, err := PolicyByName(p.String())
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", p.String(), err)
			continue
		}
		if pol.Name() != p.String() {
			t.Errorf("PolicyByName(%q).Name() = %q", p.String(), pol.Name())
		}
		// The registry is case-insensitive: the CLI's historical
		// lowercase spellings keep parsing.
		lower, err := PolicyByName(strings.ToLower(p.String()))
		if err != nil {
			t.Errorf("PolicyByName(lower %q): %v", p.String(), err)
			continue
		}
		if lower.Name() != pol.Name() {
			t.Errorf("case-insensitive lookup of %q resolved %q", p.String(), lower.Name())
		}
	}
}

// TestPolicyByNameUnknown checks the error names the offender and lists
// the registered alternatives, which is what CLI users see.
func TestPolicyByNameUnknown(t *testing.T) {
	_, err := PolicyByName("AC9")
	if err == nil {
		t.Fatal("want error for unknown policy")
	}
	msg := err.Error()
	for _, want := range []string{`"AC9"`, "registered:", "ac3", "guard-dynamic"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if MustPolicy("token-bucket") == nil {
		t.Fatal("MustPolicy returned nil for registered name")
	}
}

// TestPolicyNamesComplete pins the full roster: the six enum-era
// schemes plus the three rivals.
func TestPolicyNamesComplete(t *testing.T) {
	got := PolicyNames()
	// `cellsim -policy list` and `cmd/arena -list` print this slice
	// verbatim: it must be sorted regardless of registration order.
	if !sort.StringsAreSorted(got) {
		t.Fatalf("PolicyNames() = %v, not sorted", got)
	}
	want := []string{"ac1", "ac2", "ac3", "exp-dwell", "guard-dynamic",
		"mob-spec", "multi-class", "none", "static", "token-bucket"}
	if len(got) != len(want) {
		t.Fatalf("PolicyNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolicyNames() = %v, want %v", got, want)
		}
	}
}

// TestResolvePolicy covers the deprecation-window precedence rule: an
// explicit AdmissionPolicy wins over the legacy enum, the enum resolves
// when no explicit policy is set, and an out-of-range enum yields nil.
func TestResolvePolicy(t *testing.T) {
	explicit := MustPolicy("static")
	if got := ResolvePolicy(explicit, AC3); got != explicit {
		t.Fatal("explicit policy did not take precedence over enum")
	}
	if got := ResolvePolicy(nil, AC3); got == nil || got.Name() != "AC3" {
		t.Fatalf("legacy enum resolved to %v", got)
	}
	if got := ResolvePolicy(nil, Policy(99)); got != nil {
		t.Fatalf("out-of-range enum resolved to %v", got)
	}
}

// ---------------------------------------------------------------------
// Rival unit tests.

func guardEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(Config{Capacity: 100, Degree: 2, Admission: MustPolicy("guard-dynamic")})
}

// TestGuardDynamicAdmission exercises the guard band and its borrowing
// rule: new calls stop at C − guard unless the cell has seen no
// hand-off for BorrowIdle seconds, in which case idle guard capacity is
// lent down to Min.
func TestGuardDynamicAdmission(t *testing.T) {
	e := guardEngine(t)
	// Default guard 5: 95 fits, 96 does not (not yet idle at t=0).
	if d := e.AdmitNewRequest(0, Request{Bandwidth: 95}, nil); !d.Admitted {
		t.Fatal("95 ≤ C−guard rejected")
	}
	if d := e.AdmitNewRequest(0, Request{Bandwidth: 96}, nil); d.Admitted {
		t.Fatal("96 > C−guard admitted before idle")
	}
	// 40 s with no hand-off arrival: borrowing down to Min=2 opens.
	if d := e.AdmitNewRequest(40, Request{Bandwidth: 98}, nil); !d.Admitted {
		t.Fatal("idle borrowing did not lend guard capacity")
	}
	if d := e.AdmitNewRequest(40, Request{Bandwidth: 99}, nil); d.Admitted {
		t.Fatal("borrowing went below Min")
	}
	// A hand-off arrival resets the idle clock: borrowing closes.
	e.NoteHandOffArrival(40, false, nil)
	if d := e.AdmitNewRequest(50, Request{Bandwidth: 96}, nil); d.Admitted {
		t.Fatal("borrowing allowed 10 s after a hand-off")
	}
	// Hand-offs themselves ignore the guard band.
	if d := e.AdmitHandOffRequest(50, Request{Bandwidth: 100}, nil); !d.Admitted {
		t.Fatal("hand-off within capacity rejected")
	}
}

// TestGuardDynamicAdaptation drives the guard level through the
// observer: a drop widens the band by Step, SuccessRun clean hand-offs
// relax it, and the published reservation tracks the live level.
func TestGuardDynamicAdaptation(t *testing.T) {
	e := guardEngine(t)
	if br := e.LastTargetReservation(); br != 5 {
		t.Fatalf("initial published guard = %v, want 5", br)
	}
	e.NoteHandOffArrival(10, true, nil)
	if br := e.LastTargetReservation(); br != 6 {
		t.Fatalf("guard after drop = %v, want 6", br)
	}
	for i := 0; i < 8; i++ {
		e.NoteHandOffArrival(11+float64(i), false, nil)
	}
	if br := e.LastTargetReservation(); br != 5 {
		t.Fatalf("guard after 8 clean hand-offs = %v, want 5", br)
	}
}

// TestGuardDynamicPerCellState verifies CellStater isolation: two
// engines built from the same registry prototype adapt independently.
func TestGuardDynamicPerCellState(t *testing.T) {
	proto := MustPolicy("guard-dynamic")
	e1 := NewEngine(Config{Capacity: 100, Degree: 2, Admission: proto})
	e2 := NewEngine(Config{Capacity: 100, Degree: 2, Admission: proto})
	e1.NoteHandOffArrival(1, true, nil)
	if br := e1.LastTargetReservation(); br != 6 {
		t.Fatalf("e1 guard = %v, want 6", br)
	}
	if br := e2.LastTargetReservation(); br != 5 {
		t.Fatalf("e2 guard moved with e1's drop: %v, want 5", br)
	}
}

// TestTokenBucketGate exercises the overload gate: Burst admissions
// pass at t=0, the empty bucket sheds, simulated time refills at Rate,
// and hand-offs never consume tokens.
func TestTokenBucketGate(t *testing.T) {
	e := NewEngine(Config{Capacity: 100, Degree: 1, Admission: MustPolicy("token-bucket")})
	for i := 0; i < 10; i++ {
		if d := e.AdmitNewRequest(0, Request{Bandwidth: 1}, nil); !d.Admitted {
			t.Fatalf("attempt %d shed within burst", i)
		}
	}
	if d := e.AdmitNewRequest(0, Request{Bandwidth: 1}, nil); d.Admitted {
		t.Fatal("empty bucket admitted")
	}
	// Hand-offs bypass the gate entirely.
	if d := e.AdmitHandOffRequest(0, Request{Bandwidth: 1}, nil); !d.Admitted {
		t.Fatal("hand-off gated by empty bucket")
	}
	// 2 s at 0.5 tokens/s refills exactly one token.
	if d := e.AdmitNewRequest(2, Request{Bandwidth: 1}, nil); !d.Admitted {
		t.Fatal("refilled token not honored")
	}
	if d := e.AdmitNewRequest(2, Request{Bandwidth: 1}, nil); d.Admitted {
		t.Fatal("second admission on one refilled token")
	}
	// A token only buys the attempt; the capacity test still applies.
	e.AddConnection(1, ConnSpec{Min: 100, Prev: topology.Self}, 0)
	if d := e.AdmitNewRequest(10, Request{Bandwidth: 1}, nil); d.Admitted {
		t.Fatal("token admitted past capacity")
	}
}

// TestMultiClassDegradation checks admission-by-degradation: where AC1
// blocks, multi-class shrinks strictly lower-priority streaming
// connections toward their minima to fit a real-time request, and a
// full cell degrades rather than dropping a hand-off.
func TestMultiClassDegradation(t *testing.T) {
	cfg := Config{
		Capacity: 100, Degree: 2, Admission: MustPolicy("multi-class"),
		PHDTarget: 0.01, TStart: 1, Estimation: predict.StationaryConfig(),
	}
	e := NewEngine(cfg)
	peers := &fakePeers{} // all neighbors reachable, zero Eq. 5 answers
	// One elastic streaming connection takes the whole cell (min 10).
	if grant := e.AddConnection(1, ConnSpec{Min: 10, Max: 100, Prev: topology.Self, Class: ClassStreaming}, 0); grant != 100 {
		t.Fatalf("streaming grant = %d, want 100", grant)
	}
	// AC1 on the same state blocks a 20-BU voice call outright.
	ref := NewEngine(Config{Capacity: 100, Degree: 2, Admission: MustPolicy("AC1"),
		PHDTarget: 0.01, TStart: 1, Estimation: predict.StationaryConfig()})
	ref.AddConnection(1, ConnSpec{Min: 10, Max: 100, Prev: topology.Self, Class: ClassStreaming}, 0)
	if d := ref.AdmitNewRequest(1, Request{Bandwidth: 20, Class: ClassRealTime}, peers); d.Admitted {
		t.Fatal("AC1 admitted into a full cell")
	}
	// Multi-class makes room by degrading the streaming connection.
	d := e.AdmitNewRequest(1, Request{Bandwidth: 20, Class: ClassRealTime}, peers)
	if !d.Admitted {
		t.Fatalf("multi-class did not degrade to admit: %+v", d)
	}
	if used := e.UsedBandwidth(); used != 80 {
		t.Fatalf("used after degradation = %d, want 80", used)
	}
	// Same-class requests must not cannibalize their own class.
	if d := e.AdmitNewRequest(2, Request{Bandwidth: 90, Class: ClassStreaming}, peers); d.Admitted {
		t.Fatal("streaming request degraded its own class past room")
	}
	// A hand-off into the (re-filled) cell degrades instead of dropping.
	e2 := NewEngine(cfg)
	e2.AddConnection(1, ConnSpec{Min: 10, Max: 100, Prev: topology.Self, Class: ClassStreaming}, 0)
	if d := e2.AdmitHandOffRequest(1, Request{Bandwidth: 30, Class: ClassRealTime}, peers); !d.Admitted {
		t.Fatal("hand-off dropped where degradation had room")
	}
}

// TestRivalValidateConfig checks PolicyValidator wiring: invalid rival
// knobs surface as Config.Validate errors.
func TestRivalValidateConfig(t *testing.T) {
	bad := &guardDynamicPolicy{Start: 1, Min: 2, Max: 20, Step: 1, SuccessRun: 8}
	cfg := Config{Capacity: 100, Degree: 2, Admission: bad}
	if err := cfg.Validate(); err == nil {
		t.Fatal("guard-dynamic start below min validated")
	}
	overCap := &guardDynamicPolicy{Start: 5, Min: 2, Max: 500, Step: 1, SuccessRun: 8}
	if err := (Config{Capacity: 100, Degree: 2, Admission: overCap}).Validate(); err == nil {
		t.Fatal("guard-dynamic max beyond capacity validated")
	}
	badTB := &tokenBucketPolicy{Burst: 0, Rate: 1}
	if err := (Config{Capacity: 100, Degree: 2, Admission: badTB}).Validate(); err == nil {
		t.Fatal("token-bucket zero burst validated")
	}
}
