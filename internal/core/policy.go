package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"cellqos/internal/topology"
)

// ServiceClass ranks a connection's traffic class for multi-class
// admission policies: 0 is the highest priority, larger values are
// increasingly degradable. The paper's two-class mix maps voice to
// ClassRealTime and video to ClassStreaming; policies that ignore
// classes treat every request alike.
type ServiceClass int

const (
	// ClassRealTime is the highest-priority class (the paper's voice).
	ClassRealTime ServiceClass = 0
	// ClassStreaming marks degradable streaming traffic (the paper's
	// video, the natural target of adaptive-QoS downgrades).
	ClassStreaming ServiceClass = 1
)

// Request describes one admission question: how much bandwidth, for
// which service class. The zero Class is the highest priority, so
// callers that predate service classes keep their behavior.
type Request struct {
	// Bandwidth is the requested minimum bandwidth in BUs.
	Bandwidth int
	// Class is the request's service class (0 = highest priority).
	Class ServiceClass
}

// PolicyTraits declares what machinery a policy needs from its engine
// and network. The wiring layers branch on traits instead of enum
// identity, so a policy added tomorrow composes with sharding, async
// signaling and the estimator without touching them.
type PolicyTraits struct {
	// Adaptive policies run the predictive reservation machinery: the
	// quadruplet estimator, the T_est controller, and the periodic
	// history sweep.
	Adaptive bool
	// UsesPeers policies consult neighbor cells while deciding (Eq. 5/6
	// fan-out), so the async wiring must maintain mirror peers for them.
	UsesPeers bool
	// MobSpec policies need the network layer to pledge bandwidth along
	// each connection's mobility specification (the §6 baseline); the
	// async wiring rejects them.
	MobSpec bool
}

// AdmissionPolicy is the pluggable admission-control scheme: one value
// decides new-call and hand-off admissions for a cell through the
// primitives a PolicyContext exposes. Implementations must be
// deterministic functions of the context and their own per-cell state —
// no wall clock, no global RNG — so simulations stay reproducible.
//
// Degraded-peer obligation: a policy that consults peers must treat a
// failed peer answer (ok=false, or a value rejected by PeerValue) as
// unknown — fail closed (deny, reserve conservatively) and report
// Decision.Degraded — never as "contributes nothing". The built-in
// AC2/AC3 implementations are the reference behavior.
//
// Optional extension interfaces: CellStater (per-cell mutable state),
// HandOffObserver (feedback from hand-off outcomes),
// FixedReservationPolicy (non-adaptive B_r), OutgoingModel (analytic
// Eq. 5 replacement), PolicyValidator (config invariants).
type AdmissionPolicy interface {
	// Name is the registry name (also the CLI -policy spelling).
	Name() string
	// Traits declares the machinery this policy needs.
	Traits() PolicyTraits
	// DecideNew runs the policy's admission test for a new connection.
	DecideNew(ctx *PolicyContext) Decision
	// DecideHandOff runs the policy's admission test for a hand-off
	// arrival. Reserved bandwidth is usable by hand-offs, so most
	// policies answer with ctx.HandOffRoom().
	DecideHandOff(ctx *PolicyContext) Decision
}

// CellStater is implemented by policies with per-cell mutable state
// (token buckets, dynamic guard levels). NewEngine calls CloneCellState
// once per cell and dispatches to the returned instance, so state never
// leaks between cells or between runs sharing one registry value. The
// clone must be deep: every mutable field reset or copied, never shared
// through a pointer, slice, or map with the prototype — the
// policycontract analyzer enforces this shape.
type CellStater interface {
	CloneCellState() AdmissionPolicy
}

// HandOffObserver receives every hand-off arrival at the cell, dropped
// or not, before the engine's own T_est controller sees it. Policies
// use it to adapt per-cell state (e.g. a dynamic guard level) to
// observed hand-off pressure. Called without the engine lock held.
type HandOffObserver interface {
	ObserveHandOff(e *Engine, now float64, dropped bool)
}

// FixedReservationPolicy is implemented by policies whose target
// reservation does not come from the Eq. 5/6 neighbor fan-out:
// ComputeTargetReservation returns FixedReservation directly (without
// counting an Eq. 6 evaluation), and NewEngine seeds B_r^prev with it.
type FixedReservationPolicy interface {
	FixedReservation(cfg Config) float64
}

// OutgoingModel replaces the history-based Eq. 5 evaluation of
// Engine.OutgoingReservation with an analytic model (the ExpDwell
// baseline's memoryless exponential). Called without the engine lock
// held; use the engine's exported accessors.
type OutgoingModel interface {
	ModelOutgoing(e *Engine, now float64, toward topology.LocalIndex, test float64) float64
}

// PolicyValidator lets a policy check the config fields it consumes;
// Config.Validate calls it after the generic invariants.
type PolicyValidator interface {
	ValidateConfig(cfg Config) error
}

// PolicyContext exposes the engine primitives an admission decision may
// consult. One context is reused per engine (the admission hot path is
// allocation-free), so policies must not retain it past the decision.
type PolicyContext struct {
	// Now is the decision time in simulation seconds.
	Now float64
	// Bandwidth is the requested bandwidth in BUs.
	Bandwidth int
	// Class is the request's service class (0 = highest priority).
	Class ServiceClass
	// HandOff marks a hand-off admission (vs a new call).
	HandOff bool

	engine *Engine
	peers  Peers
}

// Committed returns B_u plus pledged bandwidth — what admissions must
// clear.
func (ctx *PolicyContext) Committed() int { return ctx.engine.committed() }

// Used returns B_u, the bandwidth of active connections.
func (ctx *PolicyContext) Used() int { return ctx.engine.UsedBandwidth() }

// Pledged returns bandwidth pledged to expected visitors.
func (ctx *PolicyContext) Pledged() int { return ctx.engine.PledgedBandwidth() }

// Capacity returns the cell's link capacity C.
func (ctx *PolicyContext) Capacity() int { return ctx.engine.cfg.Capacity }

// HandOffMargin returns the CDMA soft-capacity margin.
func (ctx *PolicyContext) HandOffMargin() int { return ctx.engine.cfg.HandOffMargin }

// Degree returns the number of adjacent cells.
func (ctx *PolicyContext) Degree() int { return ctx.engine.cfg.Degree }

// Config returns the engine's configuration.
func (ctx *PolicyContext) Config() Config { return ctx.engine.cfg }

// Peers returns the neighbor access interface for this decision.
func (ctx *PolicyContext) Peers() Peers { return ctx.peers }

// ComputeTargetReservation evaluates Eq. 6 at the decision time,
// updating B_r^prev and the engine's calculation counters.
func (ctx *PolicyContext) ComputeTargetReservation() float64 {
	return ctx.engine.ComputeTargetReservation(ctx.Now, ctx.peers)
}

// BrDegraded reports whether the most recent B_r computation had to
// substitute a fallback contribution for an unreachable neighbor.
func (ctx *PolicyContext) BrDegraded() bool { return ctx.engine.BrDegraded() }

// LastTargetReservation returns B_r^prev without recomputing.
func (ctx *PolicyContext) LastTargetReservation() float64 {
	return ctx.engine.LastTargetReservation()
}

// PublishReservation records br as the engine's current target
// reservation B_r^prev (visible to AC3 snapshots, RedistributeFree and
// metrics) without counting an Eq. 6 evaluation. Policies that maintain
// their own reservation level (dynamic guard channels) publish it here.
func (ctx *PolicyContext) PublishReservation(br float64) {
	ctx.engine.PublishReservation(br)
}

// HandOffRoom runs the base hand-off capacity test: reserved bandwidth
// is usable by hand-offs, so the only constraint is capacity (plus the
// CDMA soft-capacity margin).
func (ctx *PolicyContext) HandOffRoom() bool { return ctx.engine.AdmitHandOff(ctx.Bandwidth) }

// DowngradeClassToFit shrinks adaptive-QoS connections of service
// class strictly lower-priority than keep toward their minima until
// need BUs fit under limit; see Engine.DowngradeClassToFit.
func (ctx *PolicyContext) DowngradeClassToFit(need int, keep ServiceClass, limit int) bool {
	return ctx.engine.DowngradeClassToFit(need, keep, limit)
}

// ---------------------------------------------------------------------
// Registry

// PolicyFactory builds a registry policy with its default knobs.
type PolicyFactory func() AdmissionPolicy

var (
	policyMu       sync.RWMutex
	policyRegistry = map[string]PolicyFactory{}
)

// RegisterPolicy adds a named policy to the registry. Names are matched
// case-insensitively by PolicyByName; registering a duplicate panics.
func RegisterPolicy(name string, f PolicyFactory) {
	key := strings.ToLower(name)
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyRegistry[key]; dup {
		panic(fmt.Sprintf("core: duplicate policy registration %q", name))
	}
	policyRegistry[key] = f
}

// PolicyByName returns a registered policy by name (case-insensitive).
// Unknown names return an error listing the registered names.
func PolicyByName(name string) (AdmissionPolicy, error) {
	policyMu.RLock()
	f, ok := policyRegistry[strings.ToLower(name)]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (registered: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return f(), nil
}

// MustPolicy is PolicyByName for statically known names; it panics on
// unknown names.
func MustPolicy(name string) AdmissionPolicy {
	p, err := PolicyByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// PolicyNames lists every registered policy name, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyRegistry))
	for key := range policyRegistry {
		names = append(names, key)
	}
	sort.Strings(names)
	return names
}

// ResolvePolicy returns the explicit policy when non-nil, else the
// implementation of the legacy enum value (nil for an out-of-range
// enum). Config consumers resolve through it so configs may set either
// field during the enum's deprecation window.
func ResolvePolicy(explicit AdmissionPolicy, legacy Policy) AdmissionPolicy {
	if explicit != nil {
		return explicit
	}
	return policyFromEnum(legacy)
}

// Admission returns the AdmissionPolicy implementation of the enum
// value.
//
// Deprecated: the Policy enum survives only as a config shim for one
// release; obtain policies from PolicyByName (or set Config.Admission
// directly) instead.
func (p Policy) Admission() AdmissionPolicy { return policyFromEnum(p) }

// policyFromEnum maps the legacy enum to the registry singletons.
func policyFromEnum(p Policy) AdmissionPolicy {
	switch p {
	case AC1:
		return ac1Singleton
	case AC2:
		return ac2Singleton
	case AC3:
		return ac3Singleton
	case Static:
		return staticSingleton
	case None:
		return noneSingleton
	case MobSpec:
		return mobSpecSingleton
	case ExpDwell:
		return expDwellSingleton
	default:
		return nil
	}
}

// ---------------------------------------------------------------------
// Built-in schemes (paper Table 1 and §6 baselines). Each admission
// body is the verbatim port of the pre-interface enum switch case, so
// the golden corpus pins them byte-identical across the redesign.

// handOffRoomDecision is the shared hand-off test of every built-in:
// the pre-interface engines admitted hand-offs on the base capacity
// check alone, whatever the policy.
func handOffRoomDecision(ctx *PolicyContext) Decision {
	return Decision{Admitted: ctx.HandOffRoom()}
}

// decideReservedNew is the AC1/ExpDwell new-call test: admit iff
// B_u + b_new ≤ C − B_r with B_r freshly computed.
func decideReservedNew(ctx *PolicyContext) Decision {
	br := ctx.ComputeTargetReservation()
	return Decision{
		Admitted: float64(ctx.Committed()+ctx.Bandwidth) <= float64(ctx.Capacity())-br,
		BrCalcs:  1,
		Degraded: ctx.BrDegraded(),
	}
}

type ac1Policy struct{}

func (ac1Policy) Name() string        { return "AC1" }
func (ac1Policy) Traits() PolicyTraits { return PolicyTraits{Adaptive: true, UsesPeers: true} }
func (ac1Policy) DecideNew(ctx *PolicyContext) Decision     { return decideReservedNew(ctx) }
func (ac1Policy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

type ac2Policy struct{}

func (ac2Policy) Name() string        { return "AC2" }
func (ac2Policy) Traits() PolicyTraits { return PolicyTraits{Adaptive: true, UsesPeers: true} }
func (ac2Policy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

func (ac2Policy) DecideNew(ctx *PolicyContext) Decision {
	ok := true
	degraded := false
	calcs := 0
	peers := ctx.Peers()
	for li := topology.LocalIndex(1); int(li) <= ctx.Degree(); li++ {
		used, cap_, nbr, okCall := peers.RecomputeReservation(li, ctx.Now)
		calcs++
		if !okCall {
			// Unknown neighbor state: conservatively assume it cannot
			// reserve its target — protect P_HD at the cost of P_CB.
			degraded = true
			ok = false
			continue
		}
		if float64(used) > float64(cap_)-nbr {
			ok = false
		}
	}
	br := ctx.ComputeTargetReservation()
	calcs++
	if ctx.BrDegraded() {
		degraded = true
	}
	if float64(ctx.Committed()+ctx.Bandwidth) > float64(ctx.Capacity())-br {
		ok = false
	}
	return Decision{Admitted: ok, BrCalcs: calcs, Degraded: degraded}
}

type ac3Policy struct{}

func (ac3Policy) Name() string        { return "AC3" }
func (ac3Policy) Traits() PolicyTraits { return PolicyTraits{Adaptive: true, UsesPeers: true} }
func (ac3Policy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

func (ac3Policy) DecideNew(ctx *PolicyContext) Decision {
	ok := true
	degraded := false
	calcs := 0
	peers := ctx.Peers()
	for li := topology.LocalIndex(1); int(li) <= ctx.Degree(); li++ {
		used, cap_, lastBr, okSnap := peers.Snapshot(li)
		if okSnap && float64(used)+lastBr <= float64(cap_) {
			continue // neighbor appears able to reserve its target
		}
		// The neighbor appears unable — or its health is unknown
		// (!okSnap), which must not read as "healthy": make it
		// recompute and prove it has room.
		usedNew, capNew, nbr, okRe := peers.RecomputeReservation(li, ctx.Now)
		calcs++
		if !okRe {
			degraded = true
			ok = false
			continue
		}
		if float64(usedNew) > float64(capNew)-nbr {
			ok = false
		}
	}
	br := ctx.ComputeTargetReservation()
	calcs++
	if ctx.BrDegraded() {
		degraded = true
	}
	if float64(ctx.Committed()+ctx.Bandwidth) > float64(ctx.Capacity())-br {
		ok = false
	}
	return Decision{Admitted: ok, BrCalcs: calcs, Degraded: degraded}
}

type staticPolicy struct{}

func (staticPolicy) Name() string        { return "static" }
func (staticPolicy) Traits() PolicyTraits { return PolicyTraits{} }

func (staticPolicy) DecideNew(ctx *PolicyContext) Decision {
	return Decision{Admitted: ctx.Committed()+ctx.Bandwidth <= ctx.Capacity()-ctx.Config().StaticReserve}
}

func (staticPolicy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

func (staticPolicy) FixedReservation(cfg Config) float64 { return float64(cfg.StaticReserve) }

func (staticPolicy) ValidateConfig(cfg Config) error {
	if cfg.StaticReserve < 0 || cfg.StaticReserve > cfg.Capacity {
		return fmt.Errorf("core: static reserve %d outside [0,%d]", cfg.StaticReserve, cfg.Capacity)
	}
	return nil
}

type nonePolicy struct{}

func (nonePolicy) Name() string        { return "none" }
func (nonePolicy) Traits() PolicyTraits { return PolicyTraits{} }

func (nonePolicy) DecideNew(ctx *PolicyContext) Decision {
	return Decision{Admitted: ctx.Committed()+ctx.Bandwidth <= ctx.Capacity()}
}

func (nonePolicy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

func (nonePolicy) FixedReservation(Config) float64 { return 0 }

type mobSpecPolicy struct{}

func (mobSpecPolicy) Name() string        { return "mob-spec" }
func (mobSpecPolicy) Traits() PolicyTraits { return PolicyTraits{MobSpec: true} }

func (mobSpecPolicy) DecideNew(ctx *PolicyContext) Decision {
	// The own-cell test; the network layer additionally pledges the
	// bandwidth across the mobility specification.
	return Decision{Admitted: ctx.Committed()+ctx.Bandwidth <= ctx.Capacity()}
}

func (mobSpecPolicy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

type expDwellPolicy struct{}

func (expDwellPolicy) Name() string        { return "exp-dwell" }
func (expDwellPolicy) Traits() PolicyTraits { return PolicyTraits{UsesPeers: true} }
func (expDwellPolicy) DecideNew(ctx *PolicyContext) Decision     { return decideReservedNew(ctx) }
func (expDwellPolicy) DecideHandOff(ctx *PolicyContext) Decision { return handOffRoomDecision(ctx) }

// ModelOutgoing is the Naghshineh–Schwartz analytic Eq. 5:
// P(hand-off within test) = 1 − e^(−test/τ), direction uniform over the
// cell's neighbors. The extant sojourn is irrelevant — the exponential
// is memoryless, which is precisely the assumption the paper rejects.
func (expDwellPolicy) ModelOutgoing(e *Engine, now float64, toward topology.LocalIndex, test float64) float64 {
	used := e.UsedBandwidth()
	cfg := e.Config()
	p := (1 - math.Exp(-test/cfg.ExpDwellMean)) / float64(cfg.Degree)
	return float64(used) * p
}

func (expDwellPolicy) ValidateConfig(cfg Config) error {
	if cfg.ExpDwellMean <= 0 || cfg.ExpDwellWindow <= 0 {
		return fmt.Errorf("core: ExpDwell requires positive mean dwell and window, got τ=%v T=%v",
			cfg.ExpDwellMean, cfg.ExpDwellWindow)
	}
	return nil
}

var (
	ac1Singleton      AdmissionPolicy = ac1Policy{}
	ac2Singleton      AdmissionPolicy = ac2Policy{}
	ac3Singleton      AdmissionPolicy = ac3Policy{}
	staticSingleton   AdmissionPolicy = staticPolicy{}
	noneSingleton     AdmissionPolicy = nonePolicy{}
	mobSpecSingleton  AdmissionPolicy = mobSpecPolicy{}
	expDwellSingleton AdmissionPolicy = expDwellPolicy{}
)

func init() {
	RegisterPolicy("AC1", func() AdmissionPolicy { return ac1Singleton })
	RegisterPolicy("AC2", func() AdmissionPolicy { return ac2Singleton })
	RegisterPolicy("AC3", func() AdmissionPolicy { return ac3Singleton })
	RegisterPolicy("static", func() AdmissionPolicy { return staticSingleton })
	RegisterPolicy("none", func() AdmissionPolicy { return noneSingleton })
	RegisterPolicy("mob-spec", func() AdmissionPolicy { return mobSpecSingleton })
	RegisterPolicy("exp-dwell", func() AdmissionPolicy { return expDwellSingleton })
}
