package core

import (
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

func TestElasticGrantClampsToRoom(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 7, Prev: topology.Self}, 0)
	grant := e.AddConnection(2, ConnSpec{Min: 1, Max: 4, Prev: topology.Self}, 0)
	if grant != 3 {
		t.Fatalf("grant = %d, want clamped 3", grant)
	}
	if e.UsedBandwidth() != 10 {
		t.Fatalf("used = %d", e.UsedBandwidth())
	}
}

func TestElasticGrantFullWhenRoom(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	if grant := e.AddConnection(1, ConnSpec{Min: 1, Max: 4, Prev: topology.Self}, 0); grant != 4 {
		t.Fatalf("grant = %d, want 4", grant)
	}
}

func TestElasticMinOverCapacityPanics(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 10, Prev: topology.Self}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("elastic min over capacity did not panic")
		}
	}()
	e.AddConnection(2, ConnSpec{Min: 1, Max: 4, Prev: topology.Self}, 0)
}

func TestDowngradeToFit(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 1, Max: 4, Prev: topology.Self}, 0) // granted 4
	e.AddConnection(2, ConnSpec{Min: 2, Max: 6, Prev: topology.Self}, 0) // granted 6
	// A 4-BU hand-off needs 4 BUs: degrade 10 → 6.
	if !e.DowngradeToFit(4) {
		t.Fatal("downgrade failed despite 7 reclaimable BUs")
	}
	if e.UsedBandwidth() != 6 {
		t.Fatalf("used after downgrade = %d, want 6", e.UsedBandwidth())
	}
	if !e.AdmitHandOff(4) {
		t.Fatal("hand-off still refused after downgrade")
	}
	e.AddConnection(3, ConnSpec{Min: 4, Prev: 1}, 1)
	if e.DegradedBandwidth() != 4 {
		t.Fatalf("degraded = %d, want 4", e.DegradedBandwidth())
	}
	down, _ := e.QoSAdaptations()
	if down != 1 {
		t.Fatalf("downgrade events = %d", down)
	}
}

func TestDowngradeAllOrNothing(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 3, Max: 4, Prev: topology.Self}, 0) // 1 reclaimable
	e.AddConnection(2, ConnSpec{Min: 6, Prev: topology.Self}, 0)
	before := e.UsedBandwidth()
	if e.DowngradeToFit(3) {
		t.Fatal("impossible downgrade succeeded")
	}
	if e.UsedBandwidth() != before {
		t.Fatal("failed downgrade mutated grants")
	}
}

func TestDowngradeNoopWhenFits(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 1, Max: 4, Prev: topology.Self}, 0)
	if !e.DowngradeToFit(2) {
		t.Fatal("fit refused")
	}
	if e.UsedBandwidth() != 4 {
		t.Fatal("needless downgrade happened")
	}
	if d, _ := e.QoSAdaptations(); d != 0 {
		t.Fatal("noop counted as downgrade")
	}
}

func TestRedistributeFreeRespectsReservation(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	e.AddConnection(1, ConnSpec{Min: 1, Max: 40, Prev: topology.Self}, 0) // granted 40
	e.DowngradeToFit(99)                               // short = 40+99−100 = 39 → degrade to the 1-BU minimum
	if e.UsedBandwidth() != 1 {
		t.Fatalf("setup: used = %d, want 1", e.UsedBandwidth())
	}
	// Pretend a previous Eq. 6 run reserved 70 BUs.
	p := &fakePeers{outgoing: map[topology.LocalIndex]float64{1: 35, 2: 35}}
	e.ComputeTargetReservation(0, p)
	restored := e.RedistributeFree()
	// Headroom = 100 − 70 = 30; used 1 → can restore 29.
	if restored != 29 {
		t.Fatalf("restored = %d, want 29", restored)
	}
	if e.UsedBandwidth() != 30 {
		t.Fatalf("used = %d, want 30", e.UsedBandwidth())
	}
	if _, up := e.QoSAdaptations(); up != 1 {
		t.Fatal("upgrade event not counted")
	}
}

func TestElasticReservationUsesMinQoS(t *testing.T) {
	// §1: "bandwidth reservation is made on the basis of the minimum QoS
	// of each connection".
	e := NewEngine(adaptiveConfig(AC1))
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 50})
	e.AddConnection(1, ConnSpec{Min: 1, Max: 4, Prev: topology.Self}, 10) // granted 4, min 1
	if got := e.OutgoingReservation(20, 1, 100); got != 1 {
		t.Fatalf("Eq.5 contribution = %v, want min QoS 1", got)
	}
}

func TestElasticRemoveFreesCurrentGrant(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 2, Max: 8, Prev: topology.Self}, 0)
	e.RemoveConnection(1)
	if e.UsedBandwidth() != 0 {
		t.Fatalf("used = %d after remove", e.UsedBandwidth())
	}
}
