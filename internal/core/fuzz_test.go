package core

import (
	"math"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// FuzzIncrementalBr decodes an event stream from the fuzz input and
// drives the materialized Eq. 5 view through it, cross-checking every
// reservation answer against the retained from-scratch oracle
// (eq5Scratch) and re-certifying the view after each event. The
// encoding is one opcode byte followed by payload bytes, all reduced
// modulo their valid ranges, so any byte string is a valid program —
// the fuzzer explores event orderings and timings the seeded property
// test's distribution never draws.
func FuzzIncrementalBr(f *testing.F) {
	// Seeds: an add/query/advance burst, a remove-heavy stream, a
	// record-then-query-at-equal-now stream, and an evict storm.
	f.Add([]byte{0, 10, 1, 0x80, 5, 2, 4, 3, 5, 2, 12})
	f.Add([]byte{0, 3, 0, 20, 1, 9, 5, 0, 2, 200, 1, 40, 5, 1})
	f.Add([]byte{3, 30, 5, 0, 3, 31, 5, 0, 3, 32, 5, 1})
	f.Add([]byte{0, 4, 4, 100, 5, 0, 4, 1, 5, 1, 4, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		const degree = 4
		cfg := Config{
			Capacity: 120, Degree: degree, Policy: AC1,
			PHDTarget: 0.01, TStart: 1,
			Estimation: predict.Config{Tint: 40, Period: 200, NwinPeriods: 1, NQuad: 30, RebuildEvery: 5},
		}
		e := NewEngine(cfg)
		now := 0.0
		var live []ConnID
		nextID := ConnID(1)
		windows := []float64{5, 12.5, 30}

		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		check := func(toward topology.LocalIndex, test float64) {
			got := e.OutgoingReservation(now, toward, test)
			want := e.eq5Scratch(now, toward, test, e.patterns.Estimator(now))
			if math.Abs(got-want) > eq5PropTolerance {
				t.Fatalf("OutgoingReservation(now=%v, toward=%d, test=%v) = %v, from-scratch = %v",
					now, toward, test, got, want)
			}
			if diff, checked := e.VerifyEq5Cache(); checked && diff > eq5PropTolerance {
				t.Fatalf("VerifyEq5Cache divergence %v at now=%v", diff, now)
			}
		}

		for len(data) > 0 {
			switch next() % 6 {
			case 0: // add
				b := next()
				min := 1 + int(b%5)
				if e.used+min > cfg.Capacity {
					continue
				}
				spec := ConnSpec{Min: min, Prev: topology.LocalIndex(int(b>>3) % (degree + 1))}
				if b&0x80 != 0 {
					spec.Hint = topology.LocalIndex(1 + int(next())%degree)
				}
				e.AddConnection(nextID, spec, now)
				live = append(live, nextID)
				nextID++
			case 1: // remove
				if len(live) == 0 {
					continue
				}
				i := int(next()) % len(live)
				id := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				e.RemoveConnection(id)
			case 2: // clock advance (quantized so equal timestamps recur)
				now += float64(next()) / 8
			case 3: // record a departure quadruplet
				b := next()
				e.RecordDeparture(predict.Quadruplet{
					Event:   now,
					Prev:    topology.LocalIndex(int(b) % (degree + 1)),
					Next:    topology.LocalIndex(1 + int(b>>4)%degree),
					Sojourn: float64(next()) / 4,
				})
			case 4: // evict history
				e.patterns.Estimator(now).EvictBefore(now - float64(next()))
			case 5: // query + certify
				b := next()
				check(topology.LocalIndex(1+int(b)%degree), windows[int(b>>4)%len(windows)])
			}
		}
		// Whatever the stream did, a final fan-out must agree everywhere.
		for toward := topology.LocalIndex(1); int(toward) <= degree; toward++ {
			check(toward, windows[0])
		}
	})
}
