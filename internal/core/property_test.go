package core_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"cellqos/internal/audit"
	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// zeroPeers is the quietest possible neighborhood: no outgoing hand-off
// traffic, idle neighbors. It lets AdmitNew run the full Eq. 4–6
// machinery without scripting neighbor behavior.
type zeroPeers struct{}

func (zeroPeers) OutgoingReservation(topology.LocalIndex, float64, float64) (float64, bool) {
	return 0, true
}
func (zeroPeers) Snapshot(topology.LocalIndex) (int, int, float64, bool) { return 0, 100, 0, true }
func (zeroPeers) RecomputeReservation(topology.LocalIndex, float64) (int, int, float64, bool) {
	return 0, 100, 0, true
}
func (zeroPeers) MaxSojourn(topology.LocalIndex, float64) (float64, bool) { return 0, true }

// TestPropertyEngineRandomOps drives an Engine through long random
// operation sequences while a shadow model tracks what the bandwidth
// accounting must look like. After every operation the audit checker
// verifies the paper's conservation invariants on a fresh Ledger, and
// the model cross-checks connection counts, QoS ranges, and the pledge
// pool. Run under -race via `make race`.
func TestPropertyEngineRandomOps(t *testing.T) {
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"none-with-margin", core.Config{Capacity: 60, Degree: 3, Policy: core.None, HandOffMargin: 6}},
		{"ac1-adaptive", core.Config{
			Capacity: 60, Degree: 3, Policy: core.AC1,
			PHDTarget: 0.01, TStart: 1, Estimation: predict.StationaryConfig(),
		}},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			runEngineOps(t, tc.cfg, rand.New(rand.NewPCG(42, uint64(len(tc.name)))))
		})
	}
}

func runEngineOps(t *testing.T, cfg core.Config, r *rand.Rand) {
	t.Helper()
	e := core.NewEngine(cfg)
	ck := &audit.Checker{}
	type rng struct{ min, max int }
	model := map[core.ConnID]rng{}
	pledged := 0
	nextID := core.ConnID(1)
	now := 0.0

	check := func(op string) {
		t.Helper()
		l := e.Ledger()
		ck.Engine("property", now, l) // panics with a Violation on any breach
		if l.Connections != len(model) {
			t.Fatalf("after %s: ledger has %d connections, model has %d", op, l.Connections, len(model))
		}
		if l.Pledged != pledged {
			t.Fatalf("after %s: ledger pledged %d, model %d", op, l.Pledged, pledged)
		}
		summin, summax := 0, 0
		for _, m := range model {
			summin += m.min
			summax += m.max
		}
		if l.SumMin != summin {
			t.Fatalf("after %s: ledger Σmin %d, model %d", op, l.SumMin, summin)
		}
		if l.Used < summin || l.Used > summax {
			t.Fatalf("after %s: used %d outside model range [%d,%d]", op, l.Used, summin, summax)
		}
	}
	room := func() int {
		l := e.Ledger()
		return cfg.Capacity + cfg.HandOffMargin - l.Used - l.Pledged
	}
	anyConn := func() (core.ConnID, rng, bool) {
		for id, m := range model {
			return id, m, true
		}
		return 0, rng{}, false
	}

	check("init")
	for op := 0; op < 3000; op++ {
		now += r.Float64() * 5
		label := ""
		switch k := r.IntN(10); k {
		case 0, 1: // rigid add, gated by the hand-off admission test
			bw := 1 + r.IntN(8)
			if e.AdmitHandOff(bw) {
				e.AddConnection(nextID, core.ConnSpec{Min: bw, Prev: topology.LocalIndex(1+r.IntN(cfg.Degree))}, now)
				model[nextID] = rng{bw, bw}
				nextID++
			}
			label = fmt.Sprintf("op %d add-rigid", op)
		case 2: // rigid add gated by AdmitNew (full Eq. 4–6 path when adaptive)
			bw := 1 + r.IntN(8)
			if dec := e.AdmitNew(now, bw, zeroPeers{}); dec.Admitted {
				e.AddConnection(nextID, core.ConnSpec{Min: bw, Prev: topology.Self}, now)
				model[nextID] = rng{bw, bw}
				nextID++
			}
			label = fmt.Sprintf("op %d admit-new", op)
		case 3: // elastic add
			min := 1 + r.IntN(4)
			max := min + r.IntN(7)
			if got := room(); got >= min {
				grant := e.AddConnection(nextID, core.ConnSpec{Min: min, Max: max, Prev: topology.Self}, now)
				if grant < min || grant > max || grant > got {
					t.Fatalf("op %d: elastic grant %d outside [%d,%d] with room %d", op, grant, min, max, got)
				}
				model[nextID] = rng{min, max}
				nextID++
			}
			label = fmt.Sprintf("op %d add-elastic", op)
		case 4, 5: // remove a live connection
			if id, m, ok := anyConn(); ok {
				bw, _, _, found := e.Connection(id)
				if !found || bw < m.min || bw > m.max {
					t.Fatalf("op %d: conn %d reports bw %d found=%v, model range [%d,%d]", op, id, bw, found, m.min, m.max)
				}
				e.RemoveConnection(id)
				if _, _, _, still := e.Connection(id); still {
					t.Fatalf("op %d: conn %d survives removal", op, id)
				}
				delete(model, id)
			}
			label = fmt.Sprintf("op %d remove", op)
		case 6: // pledge (MobSpec pool); must fail exactly when over capacity
			bw := 1 + r.IntN(10)
			l := e.Ledger()
			want := l.Used+l.Pledged+bw <= cfg.Capacity
			if got := e.Pledge(bw); got != want {
				t.Fatalf("op %d: Pledge(%d) = %v with used %d pledged %d cap %d", op, bw, got, l.Used, l.Pledged, cfg.Capacity)
			} else if got {
				pledged += bw
			}
			label = fmt.Sprintf("op %d pledge", op)
		case 7: // unpledge part of the pool
			if pledged > 0 {
				amt := 1 + r.IntN(pledged)
				e.Unpledge(amt)
				pledged -= amt
			}
			label = fmt.Sprintf("op %d unpledge", op)
		case 8: // downgrade elastic connections to absorb a hand-off
			need := 1 + r.IntN(6)
			before := e.Ledger()
			ok := e.DowngradeToFit(need)
			after := e.Ledger()
			limit := cfg.Capacity + cfg.HandOffMargin
			if ok && after.Used+after.Pledged+need > limit {
				t.Fatalf("op %d: DowngradeToFit(%d) claimed success but room is %d", op, need, limit-after.Used-after.Pledged)
			}
			if !ok {
				if reclaimable := before.SumBw - before.SumMin; before.Used+before.Pledged+need-limit <= reclaimable {
					t.Fatalf("op %d: DowngradeToFit(%d) refused with %d BU reclaimable", op, need, reclaimable)
				}
				if after.Used != before.Used {
					t.Fatalf("op %d: failed downgrade changed used %d -> %d", op, before.Used, after.Used)
				}
			}
			label = fmt.Sprintf("op %d downgrade", op)
		case 9: // restore degraded QoS from free bandwidth
			before := e.Ledger()
			restored := e.RedistributeFree()
			after := e.Ledger()
			if restored < 0 || after.Used != before.Used+restored {
				t.Fatalf("op %d: RedistributeFree returned %d, used %d -> %d", op, restored, before.Used, after.Used)
			}
			label = fmt.Sprintf("op %d redistribute", op)
		}
		check(label)
		// Feed the estimator occasionally so the adaptive config's
		// Eq. 5–6 path sees real history.
		if e.Traits().Adaptive && op%17 == 0 {
			e.RecordDeparture(predict.Quadruplet{
				Event:   now,
				Prev:    topology.LocalIndex(r.IntN(cfg.Degree + 1)),
				Next:    topology.LocalIndex(1 + r.IntN(cfg.Degree)),
				Sojourn: r.Float64() * 40,
			})
		}
	}
	// Drain: remove everything and verify the ledger returns to zero.
	for id := range model {
		e.RemoveConnection(id)
		delete(model, id)
	}
	if pledged > 0 {
		e.Unpledge(pledged)
		pledged = 0
	}
	check("drain")
	if l := e.Ledger(); l.Used != 0 || l.Pledged != 0 || l.Connections != 0 {
		t.Fatalf("after drain: used %d pledged %d conns %d, want all zero", l.Used, l.Pledged, l.Connections)
	}
}
