package core

import (
	"bytes"
	"math"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

func adaptiveEngine() *Engine {
	return NewEngine(Config{
		Capacity: 100, Degree: 2, Policy: AC3, PHDTarget: 0.01, TStart: 1,
		Estimation: predict.StationaryConfig(),
	})
}

// TestHistoryRoundTrip: WriteHistory → RestoreHistory reproduces the
// estimator's predictions and LastEvent exactly.
func TestHistoryRoundTrip(t *testing.T) {
	src := adaptiveEngine()
	for i := 0; i < 50; i++ {
		src.RecordDeparture(predict.Quadruplet{
			Event: float64(i), Prev: topology.LocalIndex(i % 2),
			Next: topology.LocalIndex(1 + i%2), Sojourn: 5 + float64(i%7),
		})
	}
	var buf bytes.Buffer
	if _, err := src.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}

	dst := adaptiveEngine()
	if _, err := dst.RestoreHistory(bytes.NewReader(buf.Bytes()), false); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.HistoryLastEvent(), src.HistoryLastEvent(); got != want {
		t.Fatalf("HistoryLastEvent = %v, want %v", got, want)
	}
	for _, prev := range []topology.LocalIndex{0, 1} {
		for _, ext := range []float64{0, 3, 8} {
			want := src.Estimator(100).HandOffProb(100, prev, ext, 4, 1)
			got := dst.Estimator(100).HandOffProb(100, prev, ext, 4, 1)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("restored ph(prev=%d, ext=%v) = %v, want %v", prev, ext, got, want)
			}
		}
	}
	// The restored engine keeps recording at or after LastEvent.
	dst.RecordDeparture(predict.Quadruplet{Event: dst.HistoryLastEvent(), Prev: 0, Next: 1, Sojourn: 2})
}

// TestHistoryRestoreReplacesStaleState: restore with merge=false wipes
// whatever the estimators held (replace-on-restore).
func TestHistoryRestoreReplacesStaleState(t *testing.T) {
	src := adaptiveEngine()
	src.RecordDeparture(predict.Quadruplet{Event: 10, Prev: 0, Next: 1, Sojourn: 3})
	var buf bytes.Buffer
	src.WriteHistory(&buf)

	dst := adaptiveEngine()
	dst.RecordDeparture(predict.Quadruplet{Event: 99, Prev: 1, Next: 2, Sojourn: 7})
	if _, err := dst.RestoreHistory(&buf, false); err != nil {
		t.Fatal(err)
	}
	if got := dst.HistoryLastEvent(); got != 10 {
		t.Fatalf("HistoryLastEvent = %v, want the checkpoint's 10", got)
	}
	if got := dst.Estimator(100).SurvivorWeight(100, 1, 0); got != 0 {
		t.Fatalf("pre-restore sample survived a replace: weight %v", got)
	}
}

// TestHistoryRestoreMerge: merge=true unions checkpoint and live
// samples.
func TestHistoryRestoreMerge(t *testing.T) {
	src := adaptiveEngine()
	src.RecordDeparture(predict.Quadruplet{Event: 10, Prev: 0, Next: 1, Sojourn: 3})
	var buf bytes.Buffer
	src.WriteHistory(&buf)

	dst := adaptiveEngine()
	dst.RecordDeparture(predict.Quadruplet{Event: 99, Prev: 0, Next: 2, Sojourn: 7})
	if _, err := dst.RestoreHistory(&buf, true); err != nil {
		t.Fatal(err)
	}
	if got := dst.HistoryLastEvent(); got != 99 {
		t.Fatalf("HistoryLastEvent = %v, want the live 99", got)
	}
	est := dst.Estimator(100)
	if got := est.SurvivorWeight(100, 0, 0); got != 2 {
		t.Fatalf("merged survivor weight = %v, want both samples", got)
	}
}

// TestHistoryNonAdaptiveEngine: a policy without an estimator writes an
// empty (but valid) stream and restores it as a no-op.
func TestHistoryNonAdaptiveEngine(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	var buf bytes.Buffer
	if _, err := e.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 2 {
		t.Fatalf("non-adaptive stream is %d bytes, want the 2-byte class count", buf.Len())
	}
	if _, err := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None}).RestoreHistory(&buf, false); err != nil {
		t.Fatal(err)
	}
	if got := e.HistoryLastEvent(); got != 0 {
		t.Fatalf("non-adaptive HistoryLastEvent = %v, want 0", got)
	}
}

// TestHistoryClassCountMismatch: an adaptive checkpoint cannot restore
// into a non-adaptive engine, and vice versa.
func TestHistoryClassCountMismatch(t *testing.T) {
	var adaptive bytes.Buffer
	adaptiveEngine().WriteHistory(&adaptive)
	plain := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	if _, err := plain.RestoreHistory(&adaptive, false); err == nil {
		t.Fatal("adaptive checkpoint accepted by non-adaptive engine")
	}
	var empty bytes.Buffer
	plain.WriteHistory(&empty)
	if _, err := adaptiveEngine().RestoreHistory(&empty, false); err == nil {
		t.Fatal("non-adaptive checkpoint accepted by adaptive engine")
	}
}

// TestHistoryRestoreRejectsTruncation: a cut-off stream errors rather
// than silently restoring a partial history.
func TestHistoryRestoreRejectsTruncation(t *testing.T) {
	src := adaptiveEngine()
	for i := 0; i < 20; i++ {
		src.RecordDeparture(predict.Quadruplet{Event: float64(i), Prev: 0, Next: 1, Sojourn: 3})
	}
	var buf bytes.Buffer
	src.WriteHistory(&buf)
	raw := buf.Bytes()
	for _, cut := range []int{1, 3, len(raw) / 2, len(raw) - 1} {
		if _, err := adaptiveEngine().RestoreHistory(bytes.NewReader(raw[:cut]), false); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
