package core

import (
	"math"
	"testing"

	"cellqos/internal/topology"
)

// TestMaxSojournClampOnDrop is the regression test for the unbounded
// T_est bug: a dead signaling link used to answer MaxSojourn with +Inf,
// which reached TestController.OnHandOff as an infinite T_soj,max and
// let the window grow without bound. The engine now clamps at the call
// site: non-finite or failed answers mark the neighbor unknown, and an
// all-unknown neighborhood freezes T_est instead of uncapping it.
func TestMaxSojournClampOnDrop(t *testing.T) {
	drops := 10
	cases := []struct {
		name     string
		peers    *fakePeers
		wantTest float64
	}{
		{
			// The old remotePeers dead-link sentinel arriving over the
			// wire: finite clamp must treat it as unknown and freeze.
			name:     "all-infinite",
			peers:    &fakePeers{maxSoj: map[topology.LocalIndex]float64{1: math.Inf(1), 2: math.Inf(1)}},
			wantTest: 1,
		},
		{
			name:     "all-unreachable",
			peers:    &fakePeers{down: map[topology.LocalIndex]bool{1: true, 2: true}},
			wantTest: 1,
		},
		{
			name:     "nan-answer",
			peers:    &fakePeers{maxSoj: map[topology.LocalIndex]float64{1: math.NaN(), 2: math.NaN()}},
			wantTest: 1,
		},
		{
			// One neighbor dark, the other supplies a real T_soj,max:
			// growth proceeds but caps at the known value.
			name: "partial-outage-caps",
			peers: &fakePeers{
				down:   map[topology.LocalIndex]bool{1: true},
				maxSoj: map[topology.LocalIndex]float64{2: 3},
			},
			wantTest: 3,
		},
		{
			// Genuine cold start — every neighbor reachable, none has
			// estimation data yet: T_est stays uncapped and grows one
			// step per over-budget drop (drops 2..10 ⇒ 1+9).
			name:     "cold-start-uncapped",
			peers:    &fakePeers{maxSoj: map[topology.LocalIndex]float64{1: 0, 2: 0}},
			wantTest: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(adaptiveConfig(AC1))
			for i := 0; i < drops; i++ {
				e.NoteHandOffArrival(float64(i), true, tc.peers)
			}
			if got := e.Test(); got != tc.wantTest {
				t.Fatalf("T_est after %d dropped hand-offs = %v, want %v", drops, got, tc.wantTest)
			}
			if got := e.Test(); math.IsInf(got, 0) || math.IsNaN(got) {
				t.Fatalf("T_est = %v is not finite", got)
			}
		})
	}
}

// TestFallbackContributions pins the three degradation policies for an
// unreachable neighbor's Eq. 5 term (capacity 100, degree 2; guard value
// = fraction × C/degree).
func TestFallbackContributions(t *testing.T) {
	up := map[topology.LocalIndex]float64{1: 2.5, 2: 1.5}
	cases := []struct {
		name     string
		fallback Fallback
		wantBr   float64
	}{
		{"zero", Fallback{Mode: FallbackZero}, 2.5},
		{"guard", Fallback{Mode: FallbackGuard, GuardFraction: 0.1}, 2.5 + 0.1*100/2},
		// Decay with no prior observation falls back to the default
		// guard (0.05 × 100/2 = 2.5).
		{"decay-never-heard", Fallback{}, 2.5 + 2.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := adaptiveConfig(AC1)
			cfg.Fallback = tc.fallback
			e := NewEngine(cfg)
			p := &fakePeers{outgoing: up, down: map[topology.LocalIndex]bool{2: true}}
			br := e.ComputeTargetReservation(0, p)
			if math.Abs(br-tc.wantBr) > 1e-12 {
				t.Fatalf("degraded B_r = %v, want %v", br, tc.wantBr)
			}
			if !e.BrDegraded() {
				t.Fatal("BrDegraded = false after fallback substitution")
			}
			if got := e.DegradedBrCalcs(); got != 1 {
				t.Fatalf("DegradedBrCalcs = %d, want 1", got)
			}
			l := e.Ledger()
			if l.DegradedBrCalcs != 1 || !l.LastBrDegraded {
				t.Fatalf("ledger degraded fields = %d,%v, want 1,true", l.DegradedBrCalcs, l.LastBrDegraded)
			}
		})
	}
}

// TestFallbackDecayUsesLastKnown verifies the default policy: an
// unreachable neighbor contributes its last observed Eq. 5 value decayed
// exponentially with age (τ = 30 s default), and recovery clears the
// degraded flag without losing count history.
func TestFallbackDecayUsesLastKnown(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	p := &fakePeers{outgoing: map[topology.LocalIndex]float64{1: 2.5, 2: 1.5}}

	if br := e.ComputeTargetReservation(0, p); math.Abs(br-4) > 1e-12 {
		t.Fatalf("healthy B_r = %v, want 4", br)
	}
	if e.BrDegraded() {
		t.Fatal("healthy computation flagged degraded")
	}

	p.down = map[topology.LocalIndex]bool{2: true}
	want := 2.5 + 1.5*math.Exp(-30.0/30.0)
	if br := e.ComputeTargetReservation(30, p); math.Abs(br-want) > 1e-12 {
		t.Fatalf("decayed B_r = %v, want %v", br, want)
	}
	if !e.BrDegraded() || e.DegradedBrCalcs() != 1 {
		t.Fatalf("degraded flags = %v,%d, want true,1", e.BrDegraded(), e.DegradedBrCalcs())
	}

	// Neighbor heals: the flag clears, the counter keeps its history.
	p.down = nil
	if br := e.ComputeTargetReservation(60, p); math.Abs(br-4) > 1e-12 {
		t.Fatalf("healed B_r = %v, want 4", br)
	}
	if e.BrDegraded() {
		t.Fatal("BrDegraded still set after recovery")
	}
	if got := e.DegradedBrCalcs(); got != 1 {
		t.Fatalf("DegradedBrCalcs after recovery = %d, want 1", got)
	}
}

// TestDegradedAdmissions verifies the conservative fail-closed policy:
// AC2 and AC3 reject when a neighbor's state is unknown, flag the
// decision degraded, and the engine counts it.
func TestDegradedAdmissions(t *testing.T) {
	healthy := func() *fakePeers {
		return &fakePeers{
			outgoing: map[topology.LocalIndex]float64{1: 1, 2: 1},
			used:     map[topology.LocalIndex]int{1: 10, 2: 10},
			capacity: map[topology.LocalIndex]int{1: 100, 2: 100},
			lastBr:   map[topology.LocalIndex]float64{1: 1, 2: 1},
			freshBr:  map[topology.LocalIndex]float64{1: 1, 2: 1},
		}
	}
	for _, pol := range []Policy{AC2, AC3} {
		t.Run(pol.String(), func(t *testing.T) {
			e := NewEngine(adaptiveConfig(pol))

			d := e.AdmitNew(0, 1, healthy())
			if !d.Admitted || d.Degraded {
				t.Fatalf("healthy decision = %+v, want admitted and not degraded", d)
			}
			if got := e.DegradedAdmissions(); got != 0 {
				t.Fatalf("DegradedAdmissions after healthy admit = %d, want 0", got)
			}

			p := healthy()
			p.down = map[topology.LocalIndex]bool{2: true}
			d = e.AdmitNew(1, 1, p)
			if d.Admitted {
				t.Fatalf("%v admitted with an unknown neighbor", pol)
			}
			if !d.Degraded {
				t.Fatalf("%v decision not flagged degraded", pol)
			}
			if got := e.DegradedAdmissions(); got != 1 {
				t.Fatalf("DegradedAdmissions = %d, want 1", got)
			}
		})
	}
}

// TestAC1DegradedStillDecides verifies AC1 keeps admitting on fallback
// data (it only needs its own B_r) but flags the decision.
func TestAC1DegradedStillDecides(t *testing.T) {
	cfg := adaptiveConfig(AC1)
	cfg.Fallback = Fallback{Mode: FallbackZero}
	e := NewEngine(cfg)
	p := &fakePeers{
		outgoing: map[topology.LocalIndex]float64{1: 1},
		down:     map[topology.LocalIndex]bool{2: true},
	}
	d := e.AdmitNew(0, 1, p)
	if !d.Admitted || !d.Degraded {
		t.Fatalf("decision = %+v, want admitted on fallback data and flagged degraded", d)
	}
	if got := e.DegradedAdmissions(); got != 1 {
		t.Fatalf("DegradedAdmissions = %d, want 1", got)
	}
}
