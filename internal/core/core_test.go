package core

import (
	"math"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// fakePeers scripts neighbor behavior for engine tests. Neighbors
// listed in down are unreachable: every query returns ok=false.
type fakePeers struct {
	outgoing      map[topology.LocalIndex]float64 // Eq. 5 answers per neighbor
	used          map[topology.LocalIndex]int
	capacity      map[topology.LocalIndex]int
	lastBr        map[topology.LocalIndex]float64
	freshBr       map[topology.LocalIndex]float64 // value returned on recompute
	maxSoj        map[topology.LocalIndex]float64
	down          map[topology.LocalIndex]bool
	recomputed    []topology.LocalIndex
	outgoingCalls int
}

func (f *fakePeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	f.outgoingCalls++
	if f.down[li] {
		return 0, false
	}
	return f.outgoing[li], true
}

func (f *fakePeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	if f.down[li] {
		return 0, 0, 0, false
	}
	return f.used[li], f.capacity[li], f.lastBr[li], true
}

func (f *fakePeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	if f.down[li] {
		return 0, 0, 0, false
	}
	f.recomputed = append(f.recomputed, li)
	br := f.freshBr[li]
	f.lastBr[li] = br
	return f.used[li], f.capacity[li], br, true
}

func (f *fakePeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	if f.down[li] {
		return 0, false
	}
	return f.maxSoj[li], true
}

func adaptiveConfig(p Policy) Config {
	return Config{
		Capacity:   100,
		Degree:     2,
		Policy:     p,
		PHDTarget:  0.01,
		TStart:     1,
		Estimation: predict.StationaryConfig(),
	}
}

func TestEngineBandwidthAccounting(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	e.AddConnection(1, ConnSpec{Min: 4, Prev: topology.Self}, 0)
	e.AddConnection(2, ConnSpec{Min: 1, Prev: 1}, 10)
	if e.UsedBandwidth() != 5 || e.ConnectionCount() != 2 {
		t.Fatalf("used=%d count=%d", e.UsedBandwidth(), e.ConnectionCount())
	}
	bw, prev, at, ok := e.Connection(2)
	if !ok || bw != 1 || prev != 1 || at != 10 {
		t.Fatalf("Connection(2) = %d,%d,%v,%v", bw, prev, at, ok)
	}
	e.RemoveConnection(1)
	if e.UsedBandwidth() != 1 {
		t.Fatalf("used after remove = %d, want 1", e.UsedBandwidth())
	}
	if _, _, _, ok := e.Connection(1); ok {
		t.Fatal("removed connection still present")
	}
}

func TestEngineDuplicateConnPanics(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	e.AddConnection(1, ConnSpec{Min: 1, Prev: topology.Self}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddConnection did not panic")
		}
	}()
	e.AddConnection(1, ConnSpec{Min: 1, Prev: topology.Self}, 0)
}

func TestEngineOverCapacityPanics(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	e.AddConnection(1, ConnSpec{Min: 100, Prev: topology.Self}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity AddConnection did not panic")
		}
	}()
	e.AddConnection(2, ConnSpec{Min: 1, Prev: topology.Self}, 0)
}

func TestEngineRemoveUnknownPanics(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveConnection(99) did not panic")
		}
	}()
	e.RemoveConnection(99)
}

func TestStaticAdmission(t *testing.T) {
	cfg := Config{Capacity: 100, Degree: 2, Policy: Static, StaticReserve: 10}
	e := NewEngine(cfg)
	e.AddConnection(1, ConnSpec{Min: 86, Prev: topology.Self}, 0)
	// 86 + 4 = 90 ≤ 100 − 10: admitted.
	if d := e.AdmitNew(0, 4, nil); !d.Admitted || d.BrCalcs != 0 {
		t.Fatalf("static admit 4: %+v", d)
	}
	// 86 + 5 = 91 > 90: blocked.
	if d := e.AdmitNew(0, 5, nil); d.Admitted {
		t.Fatalf("static admit 5 should block: %+v", d)
	}
	// Hand-offs may use the guard band: 86 + 14 = 100 ≤ 100.
	if !e.AdmitHandOff(14) {
		t.Fatal("hand-off within capacity rejected")
	}
	if e.AdmitHandOff(15) {
		t.Fatal("hand-off beyond capacity admitted")
	}
	if e.LastTargetReservation() != 10 {
		t.Fatalf("static B_r = %v, want 10", e.LastTargetReservation())
	}
}

func TestNonePolicyAdmission(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: None})
	e.AddConnection(1, ConnSpec{Min: 9, Prev: topology.Self}, 0)
	if d := e.AdmitNew(0, 1, nil); !d.Admitted {
		t.Fatal("None policy must admit up to capacity")
	}
	if d := e.AdmitNew(0, 2, nil); d.Admitted {
		t.Fatal("None policy admitted beyond capacity")
	}
}

func TestOutgoingReservationEq5(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	// History: from prev 1, mobiles hand off to next 2 after 30 s (3
	// observations) or to next 1 after 60 s (1 observation).
	for i := 0; i < 3; i++ {
		e.RecordDeparture(predict.Quadruplet{Event: float64(i), Prev: 1, Next: 2, Sojourn: 30})
	}
	e.RecordDeparture(predict.Quadruplet{Event: 3, Prev: 1, Next: 1, Sojourn: 60})

	// A 4-BU connection that entered from prev 1 at t=100, now t=110
	// (extant sojourn 10): within Test=25 s, window (10,35] catches the
	// 30-s sojourns only: p_h(→2) = 3/4.
	e.AddConnection(1, ConnSpec{Min: 4, Prev: 1}, 100)
	got := e.OutgoingReservation(110, 2, 25)
	if math.Abs(got-4*0.75) > 1e-12 {
		t.Fatalf("B toward 2 = %v, want 3", got)
	}
	// Toward next 1: the 60-s sojourn is outside (10,35]: 0.
	if got := e.OutgoingReservation(110, 1, 25); got != 0 {
		t.Fatalf("B toward 1 = %v, want 0", got)
	}
	// Longer window (10,70] catches everything: 4·(3/4) and 4·(1/4).
	if got := e.OutgoingReservation(110, 2, 60); math.Abs(got-3) > 1e-12 {
		t.Fatalf("B toward 2 long = %v, want 3", got)
	}
	if got := e.OutgoingReservation(110, 1, 60); math.Abs(got-1) > 1e-12 {
		t.Fatalf("B toward 1 long = %v, want 1", got)
	}
}

func TestOutgoingReservationMultipleConnections(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 50})
	e.AddConnection(1, ConnSpec{Min: 1, Prev: topology.Self}, 100) // extSoj 20 at t=120
	e.AddConnection(2, ConnSpec{Min: 4, Prev: topology.Self}, 110) // extSoj 10 at t=120
	// Both have p_h(→1) = 1 within Test=100: sum = 5.
	if got := e.OutgoingReservation(120, 1, 100); math.Abs(got-5) > 1e-12 {
		t.Fatalf("sum = %v, want 5", got)
	}
}

func TestComputeTargetReservationEq6(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	p := &fakePeers{outgoing: map[topology.LocalIndex]float64{1: 2.5, 2: 1.5}}
	br := e.ComputeTargetReservation(0, p)
	if br != 4 {
		t.Fatalf("B_r = %v, want 4", br)
	}
	if e.LastTargetReservation() != 4 {
		t.Fatalf("B_r^prev = %v, want 4", e.LastTargetReservation())
	}
	if e.BrCalcCount() != 1 {
		t.Fatalf("BrCalcCount = %d, want 1", e.BrCalcCount())
	}
	if p.outgoingCalls != 2 {
		t.Fatalf("outgoing calls = %d, want one per neighbor", p.outgoingCalls)
	}
}

func TestAC1Admission(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	e.AddConnection(1, ConnSpec{Min: 90, Prev: topology.Self}, 0)
	p := &fakePeers{outgoing: map[topology.LocalIndex]float64{1: 3, 2: 3}} // B_r = 6
	// 90 + 4 = 94 ≤ 100 − 6: admitted, exactly at the boundary.
	d := e.AdmitNew(10, 4, p)
	if !d.Admitted || d.BrCalcs != 1 {
		t.Fatalf("AC1 admit: %+v", d)
	}
	// 90 + 5 = 95 > 94: blocked.
	if d := e.AdmitNew(10, 5, p); d.Admitted {
		t.Fatalf("AC1 should block: %+v", d)
	}
}

func TestAC2Admission(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC2))
	p := &fakePeers{
		outgoing: map[topology.LocalIndex]float64{1: 1, 2: 1}, // own B_r = 2
		used:     map[topology.LocalIndex]int{1: 50, 2: 80},
		capacity: map[topology.LocalIndex]int{1: 100, 2: 100},
		lastBr:   map[topology.LocalIndex]float64{},
		freshBr:  map[topology.LocalIndex]float64{1: 10, 2: 15},
	}
	d := e.AdmitNew(0, 4, p)
	// Neighbor 1: 50 ≤ 100−10 ok; neighbor 2: 80 ≤ 100−15 ok; own:
	// 0+4 ≤ 100−2 ok. N_calc = 3 (deg 2 + self).
	if !d.Admitted || d.BrCalcs != 3 {
		t.Fatalf("AC2 admit: %+v", d)
	}
	if len(p.recomputed) != 2 {
		t.Fatalf("AC2 recomputed %v, want both neighbors", p.recomputed)
	}
	// A neighbor that cannot reserve its target blocks the admission.
	p.freshBr[2] = 25 // 80 > 100−25
	if d := e.AdmitNew(0, 4, p); d.Admitted {
		t.Fatalf("AC2 should block on neighbor overload: %+v", d)
	}
}

func TestAC3SkipsHealthyNeighbors(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC3))
	p := &fakePeers{
		outgoing: map[topology.LocalIndex]float64{1: 1, 2: 1},
		used:     map[topology.LocalIndex]int{1: 50, 2: 80},
		capacity: map[topology.LocalIndex]int{1: 100, 2: 100},
		lastBr:   map[topology.LocalIndex]float64{1: 10, 2: 10}, // 50+10 ≤ 100, 80+10 ≤ 100
		freshBr:  map[topology.LocalIndex]float64{1: 10, 2: 10},
	}
	d := e.AdmitNew(0, 4, p)
	if !d.Admitted || d.BrCalcs != 1 {
		t.Fatalf("AC3 with healthy neighbors: %+v, want admitted with 1 calc", d)
	}
	if len(p.recomputed) != 0 {
		t.Fatalf("AC3 recomputed %v, want none", p.recomputed)
	}
}

func TestAC3RecomputesSuspectNeighbor(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC3))
	p := &fakePeers{
		outgoing: map[topology.LocalIndex]float64{1: 1, 2: 1},
		used:     map[topology.LocalIndex]int{1: 50, 2: 95},
		capacity: map[topology.LocalIndex]int{1: 100, 2: 100},
		lastBr:   map[topology.LocalIndex]float64{1: 10, 2: 10}, // 95+10 > 100: suspect
		freshBr:  map[topology.LocalIndex]float64{1: 10, 2: 3},  // fresh: 95 ≤ 100−3 ok
	}
	d := e.AdmitNew(0, 4, p)
	if !d.Admitted || d.BrCalcs != 2 {
		t.Fatalf("AC3 with one suspect: %+v, want admitted with 2 calcs", d)
	}
	if len(p.recomputed) != 1 || p.recomputed[0] != 2 {
		t.Fatalf("AC3 recomputed %v, want [2]", p.recomputed)
	}
	// B_r,i^prev must have been refreshed on the neighbor.
	if p.lastBr[2] != 3 {
		t.Fatalf("neighbor lastBr = %v, want refreshed to 3", p.lastBr[2])
	}
	// Suspect neighbor genuinely overloaded blocks.
	p.used[2] = 99
	p.freshBr[2] = 5 // 99 > 100−5
	if d := e.AdmitNew(0, 4, p); d.Admitted {
		t.Fatalf("AC3 should block: %+v", d)
	}
}

func TestNoteHandOffArrivalDrivesController(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	p := &fakePeers{maxSoj: map[topology.LocalIndex]float64{1: 40, 2: 70}}
	e.NoteHandOffArrival(0, true, p)
	e.NoteHandOffArrival(0, true, p)
	if e.Test() != 2 {
		t.Fatalf("Test = %v, want 2 after two drops", e.Test())
	}
}

func TestNoteHandOffArrivalNoEstimationDataUncapped(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	p := &fakePeers{maxSoj: map[topology.LocalIndex]float64{1: 0, 2: 0}}
	for i := 0; i < 10; i++ {
		e.NoteHandOffArrival(0, true, p)
	}
	if e.Test() < 5 {
		t.Fatalf("Test = %v; cold-start drops must still grow T_est", e.Test())
	}
}

func TestNoteHandOffNonAdaptiveNoop(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: Static, StaticReserve: 1})
	e.NoteHandOffArrival(0, true, nil) // must not panic
	if e.Test() != 0 {
		t.Fatalf("static Test = %v, want 0", e.Test())
	}
}

func TestEngineConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid AC3", adaptiveConfig(AC3), true},
		{"zero capacity", Config{Capacity: 0, Degree: 1, Policy: None}, false},
		{"zero degree", Config{Capacity: 10, Degree: 0, Policy: None}, false},
		{"static reserve over capacity", Config{Capacity: 10, Degree: 1, Policy: Static, StaticReserve: 11}, false},
		{"adaptive bad target", Config{Capacity: 10, Degree: 1, Policy: AC1, PHDTarget: 0, TStart: 1, Estimation: predict.StationaryConfig()}, false},
		{"adaptive bad estimation", Config{Capacity: 10, Degree: 1, Policy: AC1, PHDTarget: 0.01, TStart: 1, Estimation: predict.Config{}}, false},
		{"static valid", Config{Capacity: 10, Degree: 1, Policy: Static, StaticReserve: 10}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{AC1: "AC1", AC2: "AC2", AC3: "AC3", Static: "static", None: "none"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if !MustPolicy("AC3").Traits().Adaptive || MustPolicy("static").Traits().Adaptive || MustPolicy("none").Traits().Adaptive {
		t.Error("Adaptive trait misclassifies")
	}
}

func TestDirectionHintConcentratesReservation(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	// History from prev 1: half the mobiles went to 1, half to 2, all
	// with 30 s sojourns.
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: 1, Next: 1, Sojourn: 30})
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 30})

	// Without a hint, a 4-BU connection splits its expected bandwidth.
	e.AddConnection(1, ConnSpec{Min: 4, Prev: 1}, 100)
	if got := e.OutgoingReservation(110, 2, 60); math.Abs(got-2) > 1e-12 {
		t.Fatalf("unhinted toward 2 = %v, want 2", got)
	}
	e.RemoveConnection(1)

	// With a §7 hint the whole 4 BUs concentrate on the known next cell,
	// timed by the sojourn distribution.
	e.AddConnection(2, ConnSpec{Min: 4, Prev: 1, Hint: 2}, 100)
	if got := e.OutgoingReservation(110, 2, 60); math.Abs(got-4) > 1e-12 {
		t.Fatalf("hinted toward 2 = %v, want 4", got)
	}
	if got := e.OutgoingReservation(110, 1, 60); got != 0 {
		t.Fatalf("hinted toward 1 = %v, want 0", got)
	}
	// A short window that excludes the 30 s sojourn reserves nothing yet.
	if got := e.OutgoingReservation(110, 2, 5); got != 0 {
		t.Fatalf("hinted short window = %v, want 0", got)
	}
}

func TestDirectionHintFallbackToMarginal(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	// No samples for pair (prev=1 → next=2), but prev-1 mobiles are known
	// to dwell ~30 s (they all went to next 1): the sojourn estimate
	// falls back to the marginal.
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: 1, Next: 1, Sojourn: 30})
	e.AddConnection(1, ConnSpec{Min: 4, Prev: 1, Hint: 2}, 100)
	if got := e.OutgoingReservation(110, 2, 60); math.Abs(got-4) > 1e-12 {
		t.Fatalf("fallback hinted reservation = %v, want 4", got)
	}
}

func TestDirectionHintOutOfRangePanics(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	defer func() {
		if recover() == nil {
			t.Fatal("hint 9 on degree-2 cell did not panic")
		}
	}()
	e.AddConnection(1, ConnSpec{Min: 1, Prev: topology.Self, Hint: 9}, 0)
}

func TestExpDwellOutgoingReservation(t *testing.T) {
	// τ = 36 s, window T = 36 s: P(leave) = 1 − e^(−1) ≈ 0.632, split
	// uniformly over 2 neighbors.
	cfg := Config{Capacity: 100, Degree: 2, Policy: ExpDwell, ExpDwellMean: 36, ExpDwellWindow: 36}
	e := NewEngine(cfg)
	e.AddConnection(1, ConnSpec{Min: 10, Prev: topology.Self}, 0)
	want := 10 * (1 - math.Exp(-1)) / 2
	if got := e.OutgoingReservation(100, 1, 36); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpDwell outgoing = %v, want %v", got, want)
	}
	// Memorylessness: the extant sojourn must not matter — same answer
	// regardless of entry time (contrast with the estimator-based path).
	e.RemoveConnection(1)
	e.AddConnection(2, ConnSpec{Min: 10, Prev: topology.Self}, 99)
	if got := e.OutgoingReservation(100, 1, 36); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpDwell outgoing after re-entry = %v, want %v", got, want)
	}
}

func TestExpDwellAdmission(t *testing.T) {
	cfg := Config{Capacity: 100, Degree: 2, Policy: ExpDwell, ExpDwellMean: 36, ExpDwellWindow: 36}
	e := NewEngine(cfg)
	e.AddConnection(1, ConnSpec{Min: 90, Prev: topology.Self}, 0)
	p := &fakePeers{outgoing: map[topology.LocalIndex]float64{1: 3, 2: 3}}
	d := e.AdmitNew(10, 4, p)
	if !d.Admitted || d.BrCalcs != 1 {
		t.Fatalf("ExpDwell admit: %+v", d)
	}
	if d := e.AdmitNew(10, 5, p); d.Admitted {
		t.Fatalf("ExpDwell should block: %+v", d)
	}
	// The fixed window is what the fan-out receives.
	if e.Test() != 0 {
		t.Fatalf("ExpDwell has no adaptive T_est, got %v", e.Test())
	}
}

func TestExpDwellValidation(t *testing.T) {
	bad := Config{Capacity: 100, Degree: 2, Policy: ExpDwell}
	if bad.Validate() == nil {
		t.Fatal("ExpDwell without parameters validated")
	}
}

func TestPledgeAccounting(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 2, Policy: MobSpec})
	if !e.Pledge(6) {
		t.Fatal("pledge refused on empty cell")
	}
	if e.PledgedBandwidth() != 6 {
		t.Fatalf("pledged = %d", e.PledgedBandwidth())
	}
	// used + pledged + bw must clear capacity for admissions.
	if d := e.AdmitNew(0, 5, nil); d.Admitted {
		t.Fatal("admission ignored pledges")
	}
	if d := e.AdmitNew(0, 4, nil); !d.Admitted {
		t.Fatal("admission within pledge headroom refused")
	}
	e.AddConnection(1, ConnSpec{Min: 4, Prev: topology.Self}, 0)
	// Hand-offs too: 4 used + 6 pledged + 1 > 10.
	if e.AdmitHandOff(1) {
		t.Fatal("hand-off broke a pledge")
	}
	// The pledged mobile arrives: unpledge then add.
	e.Unpledge(6)
	if !e.AdmitHandOff(6) {
		t.Fatal("pledged arrival refused after unpledge")
	}
	e.AddConnection(2, ConnSpec{Min: 6, Prev: 1}, 1)
	if e.UsedBandwidth() != 10 || e.PledgedBandwidth() != 0 {
		t.Fatalf("used=%d pledged=%d", e.UsedBandwidth(), e.PledgedBandwidth())
	}
}

func TestPledgeRefusedWhenFull(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: MobSpec})
	e.AddConnection(1, ConnSpec{Min: 8, Prev: topology.Self}, 0)
	if e.Pledge(3) {
		t.Fatal("over-capacity pledge accepted")
	}
	if e.PledgedBandwidth() != 0 {
		t.Fatal("failed pledge left residue")
	}
}

func TestOverUnpledgePanics(t *testing.T) {
	e := NewEngine(Config{Capacity: 10, Degree: 1, Policy: MobSpec})
	defer func() {
		if recover() == nil {
			t.Fatal("over-unpledge did not panic")
		}
	}()
	e.Unpledge(1)
}

func TestEngineMaxSojourn(t *testing.T) {
	e := NewEngine(adaptiveConfig(AC1))
	if e.MaxSojourn(0) != 0 {
		t.Fatal("empty estimator MaxSojourn != 0")
	}
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: 1, Next: 2, Sojourn: 42})
	if got := e.MaxSojourn(2); got != 42 {
		t.Fatalf("MaxSojourn = %v, want 42", got)
	}
}
