package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestControllerInit(t *testing.T) {
	tc := NewTestController(0.01, 1, UnitStep)
	if tc.Test() != 1 {
		t.Fatalf("initial Test = %v, want 1", tc.Test())
	}
	if _, _, wObs := tc.Window(); wObs != 100 {
		t.Fatalf("initial W_obs = %d, want w = ⌈1/0.01⌉ = 100", wObs)
	}
}

func TestControllerWComputation(t *testing.T) {
	tc := NewTestController(0.03, 1, UnitStep)
	if _, _, wObs := tc.Window(); wObs != 34 {
		t.Fatalf("W_obs = %d, want ⌈1/0.03⌉ = 34", wObs)
	}
}

func TestControllerBadTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("target 0 did not panic")
		}
	}()
	NewTestController(0, 1, UnitStep)
}

func TestControllerFirstDropTolerated(t *testing.T) {
	// W_obs/w = 1, so the first drop (n_HD = 1) is within budget: no
	// increment (Fig. 6 line 8 uses strict >).
	tc := NewTestController(0.01, 1, UnitStep)
	tc.OnHandOff(true, math.Inf(1))
	if tc.Test() != 1 {
		t.Fatalf("Test after first drop = %v, want 1", tc.Test())
	}
}

func TestControllerSecondDropIncrements(t *testing.T) {
	tc := NewTestController(0.01, 1, UnitStep)
	tc.OnHandOff(true, math.Inf(1))
	tc.OnHandOff(true, math.Inf(1))
	if tc.Test() != 2 {
		t.Fatalf("Test after second drop = %v, want 2", tc.Test())
	}
	if _, _, wObs := tc.Window(); wObs != 200 {
		t.Fatalf("W_obs = %d, want widened to 200", wObs)
	}
	// Each further drop beyond the growing budget increments again.
	tc.OnHandOff(true, math.Inf(1))
	if tc.Test() != 3 {
		t.Fatalf("Test after third drop = %v, want 3", tc.Test())
	}
}

func TestControllerCleanWindowDecrements(t *testing.T) {
	tc := NewTestController(0.01, 5, UnitStep)
	// 101 successful hand-offs complete the 100-wide window.
	for i := 0; i < 101; i++ {
		tc.OnHandOff(false, math.Inf(1))
	}
	if tc.Test() != 4 {
		t.Fatalf("Test after clean window = %v, want 4", tc.Test())
	}
	nH, nHD, wObs := tc.Window()
	if nH != 0 || nHD != 0 || wObs != 100 {
		t.Fatalf("window not reset: nH=%d nHD=%d wObs=%d", nH, nHD, wObs)
	}
}

func TestControllerFloorAtOne(t *testing.T) {
	tc := NewTestController(0.01, 1, UnitStep)
	for i := 0; i < 500; i++ {
		tc.OnHandOff(false, math.Inf(1))
	}
	if tc.Test() != 1 {
		t.Fatalf("Test = %v, want floor 1", tc.Test())
	}
	// Window still resets even when no decrement is possible.
	if nH, _, _ := tc.Window(); nH >= 101 {
		t.Fatalf("window did not reset at floor: nH = %d", nH)
	}
}

func TestControllerCapAtTSojMax(t *testing.T) {
	tc := NewTestController(0.01, 1, UnitStep)
	for i := 0; i < 50; i++ {
		tc.OnHandOff(true, 3.7)
	}
	if tc.Test() != 3 {
		t.Fatalf("Test = %v, want capped at ⌊3.7⌋ = 3", tc.Test())
	}
}

func TestControllerDropWithinBudgetAfterWiden(t *testing.T) {
	// After widening to 200, budget is 2 drops: a window with exactly 2
	// drops then 201 hand-offs decrements.
	tc := NewTestController(0.01, 3, UnitStep)
	tc.OnHandOff(true, math.Inf(1)) // nHD=1, within budget 1
	tc.OnHandOff(true, math.Inf(1)) // nHD=2 > 1: widen to 200, Test 3→4
	if tc.Test() != 4 {
		t.Fatalf("Test = %v, want 4", tc.Test())
	}
	for i := 0; i < 199; i++ { // reach nH = 201 > 200
		tc.OnHandOff(false, math.Inf(1))
	}
	if tc.Test() != 3 {
		t.Fatalf("Test after completed widened window = %v, want 3", tc.Test())
	}
}

func TestControllerAdditiveSteps(t *testing.T) {
	tc := NewTestController(0.01, 1, AdditiveStep)
	tc.OnHandOff(true, math.Inf(1))
	tc.OnHandOff(true, math.Inf(1)) // +1 → 2
	tc.OnHandOff(true, math.Inf(1)) // +2 → 4
	tc.OnHandOff(true, math.Inf(1)) // +3 → 7
	if tc.Test() != 7 {
		t.Fatalf("additive Test = %v, want 7", tc.Test())
	}
}

func TestControllerMultiplicativeSteps(t *testing.T) {
	tc := NewTestController(0.01, 1, MultiplicativeStep)
	tc.OnHandOff(true, math.Inf(1))
	tc.OnHandOff(true, math.Inf(1)) // +1 → 2
	tc.OnHandOff(true, math.Inf(1)) // +2 → 4
	tc.OnHandOff(true, math.Inf(1)) // +4 → 8
	if tc.Test() != 8 {
		t.Fatalf("multiplicative Test = %v, want 8", tc.Test())
	}
}

func TestControllerRunResetOnDirectionChange(t *testing.T) {
	tc := NewTestController(0.5, 5, AdditiveStep) // w = 2
	tc.OnHandOff(true, math.Inf(1))
	tc.OnHandOff(true, math.Inf(1)) // nHD=2 > 2/2=1: widen to 4, +1 → 6
	if tc.Test() != 6 {
		t.Fatalf("Test = %v, want 6", tc.Test())
	}
	for i := 0; i < 5; i++ { // complete window of 4: nH reaches... we already have nH=2
		tc.OnHandOff(false, math.Inf(1))
	}
	// Decrement run restarts at step 1: 6 → 5.
	if tc.Test() != 5 {
		t.Fatalf("Test = %v, want 5 (fresh decrement run)", tc.Test())
	}
}

func TestControllerAdjustmentCounters(t *testing.T) {
	tc := NewTestController(0.01, 1, UnitStep)
	tc.OnHandOff(true, math.Inf(1))
	tc.OnHandOff(true, math.Inf(1))
	up, down := tc.Adjustments()
	if up != 1 || down != 0 {
		t.Fatalf("adjustments = %d,%d want 1,0", up, down)
	}
}

// Property: under any hand-off/drop sequence, Test stays in
// [1, max(1, ⌊cap⌋)] and W_obs remains a positive multiple of w.
func TestPropertyControllerInvariants(t *testing.T) {
	f := func(seed uint64, capRaw uint8, policyRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		cap_ := 1 + float64(capRaw%50)
		tc := NewTestController(0.02, 1, StepPolicy(policyRaw%3))
		w := 50 // ⌈1/0.02⌉
		for i := 0; i < 3000; i++ {
			tc.OnHandOff(r.Float64() < 0.1, cap_)
			if tc.Test() < 1 || tc.Test() > math.Max(1, math.Floor(cap_)) {
				return false
			}
			if _, _, wObs := tc.Window(); wObs < w || wObs%w != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a drop-free stream never increments Test.
func TestPropertyNoDropsNoGrowth(t *testing.T) {
	f := func(nRaw uint16) bool {
		tc := NewTestController(0.01, 10, UnitStep)
		for i := 0; i < int(nRaw); i++ {
			tc.OnHandOff(false, math.Inf(1))
		}
		up, _ := tc.Adjustments()
		return up == 0 && tc.Test() <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
