package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// eq5PropTolerance mirrors audit.Eq5Tolerance (the audit package cannot
// be imported here without a cycle through core_test helpers; keep the
// two constants in sync).
const eq5PropTolerance = 1e-9

// TestPropertyEq5Incremental drives an engine through long random
// interleavings of connection adds and removals, hand-off departures
// feeding the estimator, history sweeps, and clock advances, and after
// every reservation query compares the incrementally maintained Eq. 5
// answer with the retained from-scratch walk (eq5Scratch). Every step
// also re-certifies all live cached sums via VerifyEq5Cache. Run under
// -race via `make race`.
func TestPropertyEq5Incremental(t *testing.T) {
	cfgs := []struct {
		name string
		est  predict.Config
	}{
		// Infinite window: the selection changes only on Record.
		{"stationary", predict.StationaryConfig()},
		// Finite window with a small rebuild budget: exercises lazy
		// drift rebuilds and eviction bumping the generation mid-run.
		{"windowed", predict.Config{Tint: 40, Period: 200, NwinPeriods: 1, NQuad: 30, RebuildEvery: 5}},
	}
	for _, tc := range cfgs {
		for seed := uint64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				runEq5Ops(t, tc.est, seed)
			})
		}
	}
}

func runEq5Ops(t *testing.T, estCfg predict.Config, seed uint64) {
	t.Helper()
	cfg := Config{
		Capacity: 200, Degree: 4, Policy: AC1,
		PHDTarget: 0.01, TStart: 1, Estimation: estCfg,
	}
	e := NewEngine(cfg)
	r := rand.New(rand.NewPCG(0xE55CACE, seed))
	now := 0.0
	var live []ConnID
	nextID := ConnID(1)

	randDir := func() topology.LocalIndex {
		return topology.LocalIndex(1 + r.IntN(cfg.Degree))
	}
	query := func(step int) {
		toward := randDir()
		test := 1 + r.Float64()*9
		got := e.OutgoingReservation(now, toward, test)
		want := e.eq5Scratch(now, toward, test, e.patterns.Estimator(now))
		if math.Abs(got-want) > eq5PropTolerance {
			t.Fatalf("step %d: OutgoingReservation(now=%v, toward=%d, test=%v) = %v, from-scratch = %v (diff %v)",
				step, now, toward, test, got, want, math.Abs(got-want))
		}
	}

	for step := 0; step < 400; step++ {
		switch op := r.IntN(12); {
		case op < 3: // admit or hand a connection in
			min := 1 + r.IntN(5)
			if e.used+min > cfg.Capacity {
				break
			}
			spec := ConnSpec{Min: min, Prev: topology.Self}
			if r.IntN(2) == 0 {
				spec.Prev = randDir() // hand-off arrival
			}
			if r.IntN(3) == 0 {
				spec.Max = min + r.IntN(4) // adaptive QoS
			}
			if r.IntN(4) == 0 {
				spec.Hint = randDir() // §7 route guidance
			}
			e.AddConnection(nextID, spec, now)
			live = append(live, nextID)
			nextID++
		case op < 5: // connection leaves (drop or hand-off departure)
			if len(live) == 0 {
				break
			}
			i := r.IntN(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if r.IntN(2) == 0 {
				e.RecordDeparture(predict.Quadruplet{
					Event: now, Prev: topology.Self, Next: randDir(),
					Sojourn: r.Float64() * 50,
				})
			}
			e.RemoveConnection(id)
		case op < 7: // estimator learns a quadruplet
			prev := topology.Self
			if r.IntN(2) == 0 {
				prev = randDir()
			}
			e.RecordDeparture(predict.Quadruplet{
				Event: now, Prev: prev, Next: randDir(),
				Sojourn: r.Float64() * 50,
			})
		case op == 7: // §3.1 deletion rule
			e.SweepHistory(now)
		case op == 8: // clock advance
			now += r.Float64() * 5
		default:
			query(step)
		}
		if diff, checked := e.VerifyEq5Cache(); checked && diff > eq5PropTolerance {
			t.Fatalf("step %d: VerifyEq5Cache reports divergence %v (tolerance %v)",
				step, diff, eq5PropTolerance)
		}
	}
	// Final full fan-out at one key: every direction must agree.
	for toward := topology.LocalIndex(1); int(toward) <= cfg.Degree; toward++ {
		test := 1 + r.Float64()*9
		got := e.OutgoingReservation(now, toward, test)
		want := e.eq5Scratch(now, toward, test, e.patterns.Estimator(now))
		if math.Abs(got-want) > eq5PropTolerance {
			t.Fatalf("final: toward %d: cached %v vs from-scratch %v", toward, got, want)
		}
	}
}
