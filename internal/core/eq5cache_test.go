package core

import (
	"math"
	"testing"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// seedEq5Engine builds an AC1 engine with enough hand-off history that
// Eq. 5 sums are non-trivial in both directions, plus a few live
// connections.
func seedEq5Engine() *Engine {
	e := NewEngine(adaptiveConfig(AC1))
	e.RecordDeparture(predict.Quadruplet{Event: 0, Prev: topology.Self, Next: 1, Sojourn: 20})
	e.RecordDeparture(predict.Quadruplet{Event: 1, Prev: topology.Self, Next: 2, Sojourn: 40})
	e.RecordDeparture(predict.Quadruplet{Event: 2, Prev: 1, Next: 2, Sojourn: 30})
	e.AddConnection(1, ConnSpec{Min: 4, Prev: topology.Self}, 90)
	e.AddConnection(2, ConnSpec{Min: 2, Prev: 1}, 95)
	return e
}

func TestEq5CacheHitsAndMisses(t *testing.T) {
	e := seedEq5Engine()
	v1 := e.OutgoingReservation(100, 1, 30)
	if h, m := e.Eq5CacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/1", h, m)
	}
	// Same key, same direction: memoized sum, bit-identical (the fused
	// build already accumulated this direction).
	if v := e.OutgoingReservation(100, 1, 30); v != v1 {
		t.Fatalf("repeat query = %v, want %v", v, v1)
	}
	if h, m := e.Eq5CacheStats(); h != 1 || m != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", h, m)
	}
	// Same key, other direction: one more accumulation over the shared
	// per-connection base, then memoized.
	e.OutgoingReservation(100, 2, 30)
	e.OutgoingReservation(100, 2, 30)
	if h, m := e.Eq5CacheStats(); h != 2 || m != 2 {
		t.Fatalf("after second direction: hits=%d misses=%d, want 2/2", h, m)
	}
	// New timestamp, no extant sojourn crosses a selected-sojourn
	// breakpoint: the view advances in place and the finished sum is
	// still a hit — the whole point of the materialized view.
	e.OutgoingReservation(105, 1, 30)
	if h, m := e.Eq5CacheStats(); h != 3 || m != 2 {
		t.Fatalf("after advance: hits=%d misses=%d, want 3/2", h, m)
	}
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache = (%v, %v), want (0, true)", diff, checked)
	}
	// At now=110 connection 1 (entered 90, prev Self) reaches ext=20 —
	// exactly the smallest selected Self-sojourn — so its guard expires:
	// the advance refreshes it, the sums are re-accumulated, and the
	// query is a miss again.
	e.OutgoingReservation(110, 1, 30)
	if h, m := e.Eq5CacheStats(); h != 3 || m != 3 {
		t.Fatalf("after breakpoint crossing: hits=%d misses=%d, want 3/3", h, m)
	}
	if r, a, f := e.Eq5ViewStats(); r != 1 || a != 2 || f != 1 {
		t.Fatalf("view stats = rebuilds %d / advances %d / refreshes %d, want 1/2/1", r, a, f)
	}
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache after refresh = (%v, %v), want (0, true)", diff, checked)
	}
}

func TestEq5CacheExtendsOnSameTimestampAdd(t *testing.T) {
	e := seedEq5Engine()
	now := 100.0
	before := e.OutgoingReservation(now, 2, 30)
	// Append a connection at the cache's own timestamp: the live sums
	// extend incrementally instead of invalidating.
	e.AddConnection(3, ConnSpec{Min: 5, Prev: topology.Self}, now)
	got := e.OutgoingReservation(now, 2, 30)
	if h, _ := e.Eq5CacheStats(); h != 1 {
		t.Fatalf("post-add query was not a cache hit (hits=%d)", h)
	}
	want := e.eq5Scratch(now, 2, 30, e.patterns.Estimator(now))
	if got != want {
		t.Fatalf("extended sum %v != from-scratch %v", got, want)
	}
	if got < before {
		t.Fatalf("adding load decreased Eq. 5 sum: %v -> %v", before, got)
	}
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache = (%v, %v), want (0, true)", diff, checked)
	}
}

func TestEq5CacheSurvivesRemove(t *testing.T) {
	e := seedEq5Engine()
	e.OutgoingReservation(100, 1, 30)
	e.RemoveConnection(1)
	// The view mirrors the swap-removal: the cached per-connection terms
	// stay live (and verifiable), only the direction sums are dropped
	// for re-accumulation in the new table order.
	if diff, checked := e.VerifyEq5Cache(); !checked || diff != 0 {
		t.Fatalf("VerifyEq5Cache after remove = (%v, %v), want (0, true)", diff, checked)
	}
	// The next query re-accumulates over the cached terms — a miss, but
	// no full rebuild — and answers for the shrunken table.
	got := e.OutgoingReservation(100, 1, 30)
	want := e.eq5Scratch(100, 1, 30, e.patterns.Estimator(100))
	if got != want {
		t.Fatalf("post-remove query %v != from-scratch %v", got, want)
	}
	if h, m := e.Eq5CacheStats(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", h, m)
	}
	if r, _, _ := e.Eq5ViewStats(); r != 1 {
		t.Fatalf("rebuilds = %d, want 1 (removal must not force a rebuild)", r)
	}
}

func TestEq5CacheInvalidatesOnNewHistory(t *testing.T) {
	e := seedEq5Engine()
	v1 := e.OutgoingReservation(100, 1, 30)
	// New quadruplet bumps the estimator generation: the cached sums
	// were computed from a selection that no longer exists.
	e.RecordDeparture(predict.Quadruplet{Event: 99, Prev: topology.Self, Next: 2, Sojourn: 10})
	got := e.OutgoingReservation(100, 1, 30)
	want := e.eq5Scratch(100, 1, 30, e.patterns.Estimator(100))
	if got != want {
		t.Fatalf("post-record query %v != from-scratch %v", got, want)
	}
	if h, m := e.Eq5CacheStats(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (generation change must miss)", h, m)
	}
	_ = v1
}

func TestPeerValue(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		ok   bool
		want bool
	}{
		{"ok-positive", 12.5, true, true},
		{"ok-zero", 0, true, true},
		{"not-ok", 12.5, false, false},
		{"nan", math.NaN(), true, false},
		{"pos-inf", math.Inf(1), true, false},
		{"neg-inf", math.Inf(-1), true, false},
		{"negative", -0.5, true, false},
	}
	for _, tc := range cases {
		v, ok := PeerValue(tc.v, tc.ok)
		if ok != tc.want {
			t.Errorf("%s: PeerValue(%v, %v) ok = %v, want %v", tc.name, tc.v, tc.ok, ok, tc.want)
		}
		if ok && v != tc.v {
			t.Errorf("%s: PeerValue altered accepted value: %v -> %v", tc.name, tc.v, v)
		}
	}
}

// TestConnSpecForms pins the ConnSpec semantics the deleted PR-4
// migration wrappers delegated to: a rigid hinted connection and an
// adaptive-QoS range (their grace period is up; the deprecated
// analyzer keeps any resurrection from going unnoticed).
func TestConnSpecForms(t *testing.T) {
	e := seedEq5Engine()
	e.AddConnection(10, ConnSpec{Min: 3, Prev: 1, Hint: 2}, 100)
	if c := e.conns[e.index[10]]; c.min != 3 || c.max != 3 || c.prev != 1 || c.hint != 2 {
		t.Fatalf("hinted rigid ConnSpec: conn 10 = %+v, want rigid 3 from 1 hinted 2", c)
	}
	if grant := e.AddConnection(11, ConnSpec{Min: 2, Max: 6, Prev: topology.Self}, 100); grant != 6 {
		t.Fatalf("adaptive ConnSpec grant = %d, want 6", grant)
	}
	if c := e.conns[e.index[11]]; c.min != 2 || c.max != 6 || c.hint != NoHint {
		t.Fatalf("adaptive ConnSpec: conn 11 = %+v, want [2,6] unhinted", c)
	}
}
